#!/bin/sh
# One-shot CI gate for the whole repository: configure, build, run the test
# suite, lint every shipped instance, round-trip a certificate for each
# instance through the independent checker (tools/rtlb_check), and smoke an
# instrumented --trace run per instance (tools/trace_validate). Any failing
# leg aborts the script (set -e), so "ci.sh exited 0" is the full gate the
# ROADMAP tier-1 line refers to. The sanitizer legs are separate on purpose
# (tools/tsan.sh, tools/sanitize.sh) -- they rebuild the tree and triple the
# wall time, so they are run on demand rather than per push.
#
# Usage: tools/ci.sh [build-dir]   (default: build-ci)
set -eu
cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-ci}"

cmake -B "$BUILD_DIR" -S .
cmake --build "$BUILD_DIR" -j "$(nproc)"
ctest --test-dir "$BUILD_DIR" --output-on-failure

# Static gate: the shipped (good) instances must carry no error findings.
# (Warnings and notes are expected -- the paper's own example has eleven
# zero-slack tasks -- so no --werror here.)
"$BUILD_DIR/tools/rtlb_lint" --quiet examples/instances/*.rtlb

# Audit gate: the repository's OWN sources must satisfy the project
# invariants in audit/rules.json (layering, determinism, parallel-write and
# numeric discipline) modulo the committed audit.baseline. Then a jq schema
# gate on the JSON output: the clean-run counters, and the per-finding keys
# exercised via the planted corpus (whose nonzero exit is expected and
# swallowed -- only the schema is under test here; test_audit pins the exact
# findings).
"$BUILD_DIR/tools/rtlb_audit" --baseline audit.baseline
if command -v jq >/dev/null 2>&1; then
  "$BUILD_DIR/tools/rtlb_audit" --format=json --baseline audit.baseline \
    > "$BUILD_DIR/audit_head.json"
  jq -e '(.files_scanned > 0) and .errors == 0 and (.findings | type) == "array"
         and has("warnings") and has("notes") and has("suppressed")
         and has("baselined")' "$BUILD_DIR/audit_head.json" > /dev/null || {
    echo "ci.sh: rtlb_audit JSON lost its top-level schema" >&2; exit 1;
  }
  "$BUILD_DIR/tools/rtlb_audit" --manifest audit/rules.json \
    --root tests/audit/bad --format=json > "$BUILD_DIR/audit_corpus.json" || true
  jq -e '(.errors > 0) and ([.findings[]
           | has("file") and has("line") and has("code") and has("severity")
             and has("subject") and has("message") and has("hint")
             and has("baselined")] | all)' \
    "$BUILD_DIR/audit_corpus.json" > /dev/null || {
    echo "ci.sh: rtlb_audit JSON lost its per-finding schema" >&2; exit 1;
  }
else
  echo "ci.sh: jq not on PATH; skipping the audit schema check" >&2
fi

# Fix-it gate: copy the bad-instance corpus aside, apply every machine fix
# in place, and require the repair to hold: a second --fix application must
# change nothing (byte-stable fixed point), and the known-fixable instances
# must re-lint with no error findings at all. parse_error is skipped (no
# model, no fixes); the rest of the corpus rides along to prove --fix never
# corrupts a file it cannot help.
FIXDIR="$BUILD_DIR/lint-fix-smoke"
rm -rf "$FIXDIR" && mkdir -p "$FIXDIR"
cp examples/instances/bad/*.rtlb "$FIXDIR"
rm -f "$FIXDIR/parse_error.rtlb"
for f in "$FIXDIR"/*.rtlb; do
  "$BUILD_DIR/tools/rtlb_lint" --quiet --fix "$f" > /dev/null || true
  cp "$f" "$f.once"
  "$BUILD_DIR/tools/rtlb_lint" --quiet --fix "$f" > /dev/null || true
  cmp -s "$f" "$f.once" || { echo "ci.sh: --fix not idempotent on $f" >&2; exit 1; }
done
"$BUILD_DIR/tools/rtlb_lint" --quiet \
  "$FIXDIR/tight_window.rtlb" "$FIXDIR/no_host.rtlb" \
  "$FIXDIR/window_collapse.rtlb" "$FIXDIR/camera_contention.rtlb" \
  "$FIXDIR/redundant_edge.rtlb" \
  "$FIXDIR/period_zero.rtlb" "$FIXDIR/offset_outside.rtlb" \
  "$FIXDIR/late_release.rtlb" "$FIXDIR/deadline_overrun.rtlb" \
  "$FIXDIR/template_window.rtlb" "$FIXDIR/sporadic_unbounded.rtlb"

# Certificate gate: every shipped instance round-trips through --emit and the
# independent checker; the model is auto-selected from the file's node lines.
for f in examples/instances/*.rtlb; do
  cert="$BUILD_DIR/$(basename "$f" .rtlb).cert.json"
  "$BUILD_DIR/tools/rtlb_check" --emit "$f" > "$cert"
  "$BUILD_DIR/tools/rtlb_check" "$f" "$cert"
done

# Trace smoke: an instrumented run on every shipped instance must emit a
# Chrome trace-event file that parses and names all five pipeline stages
# exhaustively (tools/trace_validate re-checks against the Stage enum).
for f in examples/instances/*.rtlb; do
  tracefile="$BUILD_DIR/$(basename "$f" .rtlb).trace.json"
  "$BUILD_DIR/examples/example_analyze_file" --trace "$tracefile" "$f" > /dev/null
  "$BUILD_DIR/tools/trace_validate" "$tracefile"
done

# Bench smoke: a one-rep pipeline profile must run to completion and keep
# the committed BENCH_pipeline.json schema -- same key paths, values are
# machine-dependent and not compared. Catches a bench that silently stops
# exporting a field (reps, hardware_concurrency, degraded, a stage) as a CI
# failure instead of a quietly thinner profile. RTLB_BENCH_REPS=1 keeps the
# leg at two pipeline runs; RTLB_CSV_DIR keeps the fresh JSON out of the
# tree.
RTLB_BENCH_REPS=1 RTLB_CSV_DIR="$BUILD_DIR" \
  "$BUILD_DIR/bench/bench_pipeline" --benchmark_filter='^$' > /dev/null
if command -v jq >/dev/null 2>&1; then
  jq -r '[paths(scalars) | join(".")] | sort | .[]' \
    BENCH_pipeline.json > "$BUILD_DIR/bench_pipeline.schema.committed"
  jq -r '[paths(scalars) | join(".")] | sort | .[]' \
    "$BUILD_DIR/BENCH_pipeline.json" > "$BUILD_DIR/bench_pipeline.schema.fresh"
  diff -u "$BUILD_DIR/bench_pipeline.schema.committed" \
    "$BUILD_DIR/bench_pipeline.schema.fresh"
else
  echo "ci.sh: jq not on PATH; skipping the bench schema check" >&2
fi

# Fleet smoke: the full differential gauntlet (serial vs parallel vs
# warm-session bit-identity, certificate emit->check round-trip, lint-gate
# agreement) over the ~200-instance smoke grid must come back clean --
# rtlb_fleet exits 0 only when the run is complete with ZERO divergences.
# The same grid is then re-run as two shards and merged; the merged report
# must be byte-identical to the single-process one (the determinism contract
# that makes sharded 10^5-instance runs trustworthy).
FLEETDIR="$BUILD_DIR/fleet-smoke"
rm -rf "$FLEETDIR" && mkdir -p "$FLEETDIR"
"$BUILD_DIR/tools/rtlb_fleet" run --spec examples/fleet/smoke.json \
  --out "$FLEETDIR/whole.json"
"$BUILD_DIR/tools/rtlb_fleet" run --spec examples/fleet/smoke.json \
  --shards 2 --shard 0 --out "$FLEETDIR/s0.json"
"$BUILD_DIR/tools/rtlb_fleet" run --spec examples/fleet/smoke.json \
  --shards 2 --shard 1 --out "$FLEETDIR/s1.json"
"$BUILD_DIR/tools/rtlb_fleet" merge --out "$FLEETDIR/merged.json" \
  "$FLEETDIR/s0.json" "$FLEETDIR/s1.json"
cmp "$FLEETDIR/whole.json" "$FLEETDIR/merged.json" || {
  echo "ci.sh: sharded fleet merge is not byte-identical to the whole run" >&2
  exit 1
}

# Fleet bench smoke + schema check, mirroring the BENCH_pipeline leg: one
# scaled-down rep must complete and keep the committed BENCH_fleet.json key
# paths.
RTLB_BENCH_REPS=1 RTLB_CSV_DIR="$BUILD_DIR" "$BUILD_DIR/bench/bench_fleet" > /dev/null
if command -v jq >/dev/null 2>&1; then
  jq -r '[paths(scalars) | join(".")] | sort | .[]' \
    BENCH_fleet.json > "$BUILD_DIR/bench_fleet.schema.committed"
  jq -r '[paths(scalars) | join(".")] | sort | .[]' \
    "$BUILD_DIR/BENCH_fleet.json" > "$BUILD_DIR/bench_fleet.schema.fresh"
  diff -u "$BUILD_DIR/bench_fleet.schema.committed" \
    "$BUILD_DIR/bench_fleet.schema.fresh"

  # Bench honesty gate: a committed benchmark row recorded with more workers
  # than hardware threads (degraded: true) measures oversubscription, so it
  # must not publish a speedup headline -- its speedup_vs_serial must be
  # null, with the reason recorded alongside.
  jq -e '[.configs[] | select(.degraded == true and .speedup_vs_serial != null)]
         | length == 0' BENCH_lower_bound.json > /dev/null || {
    echo "ci.sh: BENCH_lower_bound.json has a degraded row with a speedup headline" >&2
    exit 1
  }
  jq -e '.degraded == false or ([.configs[].instances_per_sec] | length) == 0' \
    BENCH_fleet.json > /dev/null || {
    echo "ci.sh: BENCH_fleet.json throughput rows were recorded degraded" >&2
    exit 1
  }
else
  echo "ci.sh: jq not on PATH; skipping the fleet schema/honesty checks" >&2
fi

# Workload bench smoke + schema check: one scaled-down rep must complete and
# keep the committed BENCH_workloads.json key paths (the grid is
# rep-independent by construction).
RTLB_BENCH_REPS=1 RTLB_CSV_DIR="$BUILD_DIR" "$BUILD_DIR/bench/bench_workloads" > /dev/null
if command -v jq >/dev/null 2>&1; then
  jq -r '[paths(scalars) | join(".")] | sort | .[]' \
    BENCH_workloads.json > "$BUILD_DIR/bench_workloads.schema.committed"
  jq -r '[paths(scalars) | join(".")] | sort | .[]' \
    "$BUILD_DIR/BENCH_workloads.json" > "$BUILD_DIR/bench_workloads.schema.fresh"
  diff -u "$BUILD_DIR/bench_workloads.schema.committed" \
    "$BUILD_DIR/bench_workloads.schema.fresh"
else
  echo "ci.sh: jq not on PATH; skipping the workload bench schema check" >&2
fi

# Committed golden certificate stays in sync with the checker.
"$BUILD_DIR/tools/rtlb_check" examples/instances/paper.rtlb \
  examples/certificates/paper_dedicated.cert.json

# clang-tidy leg: DEFAULT-ON (the check set in .clang-tidy is part of the
# gate), with two escape hatches:
#   RTLB_CI_TIDY=0        skip explicitly (the leg reconfigures and rebuilds
#                         the tree, roughly doubling the gate's wall time);
#   no clang-tidy on PATH loud skip -- environments without the LLVM
#                         toolchain still get the rest of the gate, and the
#                         skip line makes the reduced coverage visible in the
#                         CI log instead of silently passing.
if [ "${RTLB_CI_TIDY:-1}" = "0" ]; then
  echo "ci.sh: tidy leg skipped (RTLB_CI_TIDY=0)" >&2
elif ! command -v clang-tidy >/dev/null 2>&1; then
  echo "ci.sh: tidy leg SKIPPED -- no clang-tidy on PATH (install clang-tidy for full coverage)" >&2
else
  tools/tidy.sh "${BUILD_DIR}-tidy"
fi

echo "ci.sh: all gates passed"
