// rtlb-lint: multi-pass static diagnostics for rtlb problem instances.
//
//   $ rtlb_lint examples/instances/bad/window_collapse.rtlb
//   examples/instances/bad/window_collapse.rtlb:8: error: task 'alert' (#2):
//       derived window [E=18, L=16] cannot contain C=2 (slack -4) [RTLB-E101]
//
//   $ rtlb_lint --format=json file.rtlb          # machine-readable
//   $ rtlb_lint --werror --max-errors 5 *.rtlb   # CI gate
//   $ rtlb_lint --explain RTLB-E101              # code documentation
//
// Flags:
//   --format=text|json   output format (default text)
//   --werror             promote warnings to errors (affects the exit code)
//   --max-errors N       stop after N error findings per file (0 = unlimited)
//   --quiet              suppress notes in text output
//   --explain CODE       print the registry entry for a diagnostic code
//   --trace FILE         write a Chrome trace-event file with one lint_gate
//                        span per linted file
//
// Exit status: 0 = no error findings in any file; 1 = at least one error
// (after --werror promotion); 2 = usage or I/O failure. The error verdict
// is the analysis pipeline's own kErrors gate policy
// (lint_gate_refuses, src/core/pipeline.hpp), so this tool refuses exactly
// the instances `analyze()` at LintLevel::kErrors would.
//
// Files with `node` lines are additionally checked against the dedicated
// model (host coverage). Structurally broken files are parsed without
// validation so EVERY finding is reported, not just the first.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "src/common/json.hpp"
#include "src/core/pipeline.hpp"
#include "src/lint/linter.hpp"
#include "src/model/io.hpp"
#include "src/obs/trace.hpp"

using namespace rtlb;

namespace {

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--format=text|json] [--werror] [--max-errors N] [--quiet]\n"
               "          [--explain CODE] [--trace FILE] <instance-file>...\n",
               argv0);
  std::exit(2);
}

int explain_code(const std::string& code) {
  const DiagInfo* info = diag_info(code);
  if (info == nullptr) {
    std::fprintf(stderr, "unknown diagnostic code '%s'; known codes:\n", code.c_str());
    for (const DiagInfo& d : all_diag_info()) std::fprintf(stderr, "  %s\n", d.code);
    return 2;
  }
  std::printf("%s (%s)\n  %s\n  fix: %s\n", info->code, severity_name(info->severity),
              info->summary, info->fixit);
  return 0;
}

/// Lint one file. Parse failures become a synthetic RTLB-E000 finding so the
/// output shape is uniform for tooling.
LintResult lint_file(const std::string& path, const LintOptions& options, bool* io_error,
                     Trace* trace) {
  ScopedSpan span(trace, "lint_gate");
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "cannot open '%s'\n", path.c_str());
    *io_error = true;
    return {};
  }
  ProblemInstance inst;
  try {
    inst = parse_instance(in, ParseOptions{.validate = false});
  } catch (const ModelError& e) {
    LintResult result;
    DiagnosticSink sink(result, options);
    Diagnostic d = sink.make("RTLB-E000", "", e.what());
    // parse errors carry "line N: ..." text; surface N structurally and
    // drop the now-redundant prefix from the message.
    if (int line = 0; std::sscanf(e.what(), "line %d:", &line) == 1) {
      d.line = line;
      if (const char* colon = std::strchr(e.what(), ':')) d.message = colon + 2;
    }
    sink.emit(std::move(d));
    return result;
  }
  const DedicatedPlatform* platform =
      inst.platform.num_node_types() > 0 ? &inst.platform : nullptr;
  LintResult result = lint(*inst.app, platform, &inst.lines, options);
  span.count("diagnostics", static_cast<std::int64_t>(result.diagnostics.size()));
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  LintOptions options;
  std::string format = "text";
  std::string trace_path;
  Trace trace;
  bool quiet = false;
  std::vector<std::string> paths;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--format" || arg.rfind("--format=", 0) == 0) {
      if (arg == "--format") {
        if (++i >= argc) usage(argv[0]);
        format = argv[i];
      } else {
        format = arg.substr(std::strlen("--format="));
      }
      if (format != "text" && format != "json") usage(argv[0]);
    } else if (arg == "--werror") {
      options.werror = true;
    } else if (arg == "--max-errors" || arg.rfind("--max-errors=", 0) == 0) {
      std::string value;
      if (arg == "--max-errors") {
        if (++i >= argc) usage(argv[0]);
        value = argv[i];
      } else {
        value = arg.substr(std::strlen("--max-errors="));
      }
      options.max_errors = std::atoi(value.c_str());
      if (options.max_errors < 0) usage(argv[0]);
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg == "--explain") {
      if (++i >= argc) usage(argv[0]);
      return explain_code(argv[i]);
    } else if (arg == "--trace") {
      if (++i >= argc) usage(argv[0]);
      trace_path = argv[i];
    } else if (!arg.empty() && arg[0] == '-') {
      usage(argv[0]);
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.empty()) usage(argv[0]);

  bool io_error = false;
  bool any_error = false;
  Json files = Json::array();

  for (const std::string& path : paths) {
    const LintResult result =
        lint_file(path, options, &io_error, trace_path.empty() ? nullptr : &trace);
    // The CI exit verdict IS the pipeline's kErrors gate policy (--werror
    // already promoted warnings inside the sink, so they count as errors
    // here exactly as they would refuse an analyze() call).
    any_error |= lint_gate_refuses(result, LintLevel::kErrors);

    if (format == "json") {
      Json entry = Json::object();
      entry.set("file", path).set("lint", lint_json(result));
      files.push(std::move(entry));
      continue;
    }
    if (paths.size() > 1) std::printf("== %s ==\n", path.c_str());
    for (const Diagnostic& d : result.diagnostics) {
      if (quiet && d.severity == Severity::kNote) continue;
      std::printf("%s\n", format_diagnostic(d, path).c_str());
    }
    std::printf("%s: %d error(s), %d warning(s), %d note(s)%s\n", path.c_str(),
                result.errors, result.warnings, result.notes,
                result.truncated ? " (truncated by --max-errors)" : "");
  }

  if (format == "json") std::printf("%s\n", files.dump(2).c_str());
  if (!trace_path.empty()) {
    std::ofstream out(trace_path);
    out << trace.chrome_json().dump(2) << "\n";
  }
  if (io_error) return 2;
  return any_error ? 1 : 0;
}
