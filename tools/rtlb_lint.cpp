// rtlb-lint: multi-pass static diagnostics for rtlb problem instances.
//
//   $ rtlb_lint examples/instances/bad/window_collapse.rtlb
//   examples/instances/bad/window_collapse.rtlb:8: error: task 'alert' (#2):
//       derived window [E=18, L=16] cannot contain C=2 (slack -4) [RTLB-E101]
//
//   $ rtlb_lint --format=json file.rtlb          # machine-readable
//   $ rtlb_lint --werror --max-errors 5 *.rtlb   # CI gate
//   $ rtlb_lint --explain RTLB-E101              # code documentation
//   $ rtlb_lint --fix-dry-run file.rtlb          # preview machine repairs
//   $ rtlb_lint --fix file.rtlb                  # apply them in place
//   $ rtlb_lint --baseline-write known.txt *.rtlb   # snapshot findings
//   $ rtlb_lint --baseline known.txt *.rtlb         # gate on NEW findings
//
// Flags:
//   --format=text|json   output format (default text)
//   --werror             promote warnings to errors (affects the exit code)
//   --max-errors N       stop after N error findings per file (0 = unlimited)
//   --quiet              suppress notes in text output
//   --explain CODE       print the registry entry for a diagnostic code
//   --trace FILE         write a Chrome trace-event file with one lint_gate
//                        span per linted file
//   --fix                apply machine-applicable fixes in place, then
//                        re-parse and re-lint; findings and the exit verdict
//                        reflect the REPAIRED file
//   --fix-dry-run        print the would-be repairs as a unified diff; the
//                        file, findings, and verdict are untouched
//   --baseline FILE      suppress findings whose "CODE<TAB>subject" key
//                        appears in FILE; only NEW findings are reported and
//                        judged (missing FILE is a usage error)
//   --baseline-write FILE  write the sorted, de-duplicated key set of every
//                        finding to FILE and exit 0 (a fresh baseline always
//                        passes itself)
//
// Exit status contract (stable, golden-tested):
//   0  no error findings in any file (after --werror promotion, after --fix
//      repairs, and after --baseline suppression), or --baseline-write
//      completed;
//   1  at least one (new) error finding survived;
//   2  usage error or I/O failure (unreadable input, unreadable --baseline
//      file, unwritable --fix or --baseline-write target).
// The error verdict is the analysis pipeline's own kErrors gate policy
// (lint_gate_refuses, src/core/pipeline.hpp), so this tool refuses exactly
// the instances `analyze()` at LintLevel::kErrors would.
//
// Files with `node` lines are additionally checked against the dedicated
// model (host coverage). Structurally broken files are parsed without
// validation so EVERY finding is reported, not just the first.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "src/common/json.hpp"
#include "src/core/pipeline.hpp"
#include "src/lint/baseline.hpp"
#include "src/lint/fixit.hpp"
#include "src/lint/linter.hpp"
#include "src/lint/recurrent.hpp"
#include "src/model/io.hpp"
#include "src/workload/workload.hpp"
#include "src/obs/trace.hpp"

using namespace rtlb;

namespace {

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--format=text|json] [--werror] [--max-errors N] [--quiet]\n"
               "          [--explain CODE] [--trace FILE] [--fix | --fix-dry-run]\n"
               "          [--baseline FILE | --baseline-write FILE] <instance-file>...\n",
               argv0);
  std::exit(2);
}

int explain_code(const std::string& code) {
  const DiagInfo* info = diag_info(code);
  if (info == nullptr) {
    std::fprintf(stderr, "unknown diagnostic code '%s'; known codes:\n", code.c_str());
    for (const DiagInfo& d : all_diag_info()) std::fprintf(stderr, "  %s\n", d.code);
    return 2;
  }
  std::printf("%s (%s)\n  %s\n  fix: %s\n", info->code, severity_name(info->severity),
              info->summary, info->fixit);
  return 0;
}

/// The stable baseline identity of one finding. Deliberately line-free: a
/// baseline must survive unrelated edits that renumber the file.
std::string baseline_key(const Diagnostic& d) {
  return std::string(d.code) + "\t" + d.subject;
}

/// Lint one source text (already read from `path`, which is used only for
/// messages). Parse failures become a synthetic RTLB-E000 finding so the
/// output shape is uniform for tooling.
struct FileLint {
  bool parsed = false;   ///< inst holds a model (lint findings may still exist)
  ProblemInstance inst;  ///< valid only when parsed
  LintResult result;
};

FileLint lint_text(const std::string& text, const LintOptions& options, Trace* trace) {
  ScopedSpan span(trace, "lint_gate");
  FileLint out;
  try {
    out.inst = parse_instance_string(text, ParseOptions{.validate = false});
    out.parsed = true;
  } catch (const ModelError& e) {
    DiagnosticSink sink(out.result, options);
    Diagnostic d = sink.make("RTLB-E000", "", e.what());
    // parse errors carry "line N: ..." text; surface N structurally and
    // drop the now-redundant prefix from the message.
    if (int line = 0; std::sscanf(e.what(), "line %d:", &line) == 1) {
      d.line = line;
      if (const char* colon = std::strchr(e.what(), ':')) d.message = colon + 2;
    }
    sink.emit(std::move(d));
    return out;
  }
  const DedicatedPlatform* platform =
      out.inst.platform.num_node_types() > 0 ? &out.inst.platform : nullptr;
  if (!out.inst.workload.empty()) {
    // Recurrent front door: lint the templates first; on template errors the
    // report is the template batch ALONE (lowering would throw, and the flat
    // passes would mis-judge declarations the templates use -- e.g. W201's
    // fix would delete a proctype line the ttasks reference). Clean templates
    // are lowered and the flat half -- lowered instances included -- is
    // spliced behind them into one report.
    LintResult templates = lint_workload(*out.inst.catalog, out.inst.workload, platform, options);
    if (templates.errors > 0) {
      out.result = std::move(templates);
      span.count("diagnostics", static_cast<std::int64_t>(out.result.diagnostics.size()));
      return out;
    }
    lower_instance(out.inst, LowerOptions{.chain_instances = true, .validate = false});
    out.result = merge_lint_results(std::move(templates),
                                    lint(*out.inst.app, platform, &out.inst.lines, options));
  } else {
    out.result = lint(*out.inst.app, platform, &out.inst.lines, options);
  }
  span.count("diagnostics", static_cast<std::int64_t>(out.result.diagnostics.size()));
  return out;
}

/// Drop baselined findings and recount. Keeps `truncated` (the cap applied
/// to the unfiltered run; "possibly more findings" stays true).
LintResult suppress_baselined(const LintResult& result,
                              const std::set<std::string>& baseline) {
  LintResult out;
  out.truncated = result.truncated;
  for (const Diagnostic& d : result.diagnostics) {
    if (baseline.count(baseline_key(d)) > 0) continue;
    switch (d.severity) {
      case Severity::kError: ++out.errors; break;
      case Severity::kWarning: ++out.warnings; break;
      case Severity::kNote: ++out.notes; break;
    }
    out.diagnostics.push_back(d);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  LintOptions options;
  std::string format = "text";
  std::string trace_path;
  Trace trace;
  bool quiet = false;
  bool fix = false;
  bool fix_dry_run = false;
  std::string baseline_path;
  std::string baseline_write_path;
  std::vector<std::string> paths;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--format" || arg.rfind("--format=", 0) == 0) {
      if (arg == "--format") {
        if (++i >= argc) usage(argv[0]);
        format = argv[i];
      } else {
        format = arg.substr(std::strlen("--format="));
      }
      if (format != "text" && format != "json") usage(argv[0]);
    } else if (arg == "--werror") {
      options.werror = true;
    } else if (arg == "--max-errors" || arg.rfind("--max-errors=", 0) == 0) {
      std::string value;
      if (arg == "--max-errors") {
        if (++i >= argc) usage(argv[0]);
        value = argv[i];
      } else {
        value = arg.substr(std::strlen("--max-errors="));
      }
      options.max_errors = std::atoi(value.c_str());
      if (options.max_errors < 0) usage(argv[0]);
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg == "--fix") {
      fix = true;
    } else if (arg == "--fix-dry-run") {
      fix_dry_run = true;
    } else if (arg == "--baseline") {
      if (++i >= argc) usage(argv[0]);
      baseline_path = argv[i];
    } else if (arg == "--baseline-write") {
      if (++i >= argc) usage(argv[0]);
      baseline_write_path = argv[i];
    } else if (arg == "--explain") {
      if (++i >= argc) usage(argv[0]);
      return explain_code(argv[i]);
    } else if (arg == "--trace") {
      if (++i >= argc) usage(argv[0]);
      trace_path = argv[i];
    } else if (!arg.empty() && arg[0] == '-') {
      usage(argv[0]);
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.empty()) usage(argv[0]);
  if (fix && fix_dry_run) usage(argv[0]);
  if (!baseline_path.empty() && !baseline_write_path.empty()) usage(argv[0]);

  std::set<std::string> baseline;
  if (!baseline_path.empty()) {
    try {
      baseline = read_baseline_file(baseline_path);
    } catch (const ModelError& e) {
      std::fprintf(stderr, "%s\n", e.what());
      return 2;
    }
  }

  bool io_error = false;
  bool any_error = false;
  std::set<std::string> baseline_out;
  Json files = Json::array();

  for (const std::string& path : paths) {
    std::ifstream in(path);
    if (!in) {
      std::fprintf(stderr, "cannot open '%s'\n", path.c_str());
      io_error = true;
      continue;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    std::string text = buf.str();

    Trace* tr = trace_path.empty() ? nullptr : &trace;
    FileLint file = lint_text(text, options, tr);
    LintResult result = std::move(file.result);

    int fixes_applied = 0;
    int fixes_skipped = 0;
    if ((fix || fix_dry_run) && file.parsed) {
      const FixApplication repair = apply_fixes(text, result);
      fixes_applied = repair.applied;
      fixes_skipped = repair.skipped_conflict;
      if (fix_dry_run && repair.changed() && format != "json") {
        std::printf("%s", fix_diff(text, repair.text, path).c_str());
      }
      if (fix && repair.changed()) {
        std::ofstream out(path, std::ios::trunc);
        if (!out || !(out << repair.text)) {
          std::fprintf(stderr, "cannot write '%s'\n", path.c_str());
          io_error = true;
          continue;
        }
        out.close();
        // Findings and the verdict now describe the repaired file.
        result = lint_text(repair.text, options, tr).result;
      }
    }

    if (!baseline_write_path.empty()) {
      for (const Diagnostic& d : result.diagnostics) baseline_out.insert(baseline_key(d));
      continue;
    }
    if (!baseline.empty()) result = suppress_baselined(result, baseline);

    // The CI exit verdict IS the pipeline's kErrors gate policy (--werror
    // already promoted warnings inside the sink, so they count as errors
    // here exactly as they would refuse an analyze() call).
    any_error |= lint_gate_refuses(result, LintLevel::kErrors);

    if (format == "json") {
      Json entry = Json::object();
      entry.set("file", path).set("lint", lint_json(result));
      if (fix || fix_dry_run) {
        entry.set("fixes_applied", static_cast<std::int64_t>(fixes_applied))
            .set("fixes_skipped", static_cast<std::int64_t>(fixes_skipped));
      }
      files.push(std::move(entry));
      continue;
    }
    if (paths.size() > 1) std::printf("== %s ==\n", path.c_str());
    for (const Diagnostic& d : result.diagnostics) {
      if (quiet && d.severity == Severity::kNote) continue;
      std::printf("%s\n", format_diagnostic(d, path).c_str());
    }
    if (fix || fix_dry_run) {
      std::printf("%s: %s %d fix(es)%s\n", path.c_str(),
                  fix ? "applied" : "would apply", fixes_applied,
                  fixes_skipped > 0
                      ? (" (" + std::to_string(fixes_skipped) + " conflict(s) skipped)").c_str()
                      : "");
    }
    std::printf("%s: %d error(s), %d warning(s), %d note(s)%s\n", path.c_str(),
                result.errors, result.warnings, result.notes,
                result.truncated ? " (truncated by --max-errors)" : "");
  }

  if (!baseline_write_path.empty()) {
    try {
      write_baseline_file(baseline_write_path, baseline_out);
    } catch (const ModelError& e) {
      std::fprintf(stderr, "%s\n", e.what());
      return 2;
    }
    return io_error ? 2 : 0;
  }

  if (format == "json") std::printf("%s\n", files.dump(2).c_str());
  if (!trace_path.empty()) {
    std::ofstream out(trace_path);
    out << trace.chrome_json().dump(2) << "\n";
  }
  if (io_error) return 2;
  return any_error ? 1 : 0;
}
