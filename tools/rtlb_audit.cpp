// rtlb-audit: project-invariant static analyzer over the repo's OWN C++
// sources. Enforces the declarative manifest (audit/rules.json): module
// layering (RTLB-A0xx), determinism hygiene in bound-critical modules
// (RTLB-A1xx), parallel-write discipline at ThreadPool sites (RTLB-A2xx),
// and numeric hygiene in the exact-arithmetic hot files (RTLB-A3xx).
//
//   $ rtlb_audit                                # audit the manifest roots
//   $ rtlb_audit src/core/lower_bound.cpp       # audit listed files only
//   $ rtlb_audit --format=json                  # machine-readable
//   $ rtlb_audit --explain RTLB-A201            # code documentation
//   $ rtlb_audit --baseline audit.baseline      # gate on NEW findings (CI)
//   $ rtlb_audit --baseline-write audit.baseline  # snapshot current findings
//
// Flags:
//   --manifest FILE      rules manifest (default <root>/audit/rules.json)
//   --root DIR           repository root the manifest paths are relative to
//                        (default ".")
//   --format=text|json   output format (default text)
//   --quiet              drop hint lines from text output
//   --explain CODE       print the registry entry for an audit code
//   --baseline FILE      findings whose "file<TAB>code<TAB>subject" key is in
//                        FILE are reported as baselined and do not fail the
//                        run (missing FILE is a usage error)
//   --baseline-write FILE  write the key set of every finding to FILE and
//                        exit 0
//
// Exit status contract (stable, golden-tested, same shape as rtlb_lint):
//   0  no non-baselined findings (or --baseline-write / --explain succeeded);
//   1  at least one new finding;
//   2  usage error or I/O failure (bad flag, unreadable manifest/baseline/
//      input, unknown --explain code, unwritable --baseline-write target).
#include <cstdio>
#include <cstring>
#include <set>
#include <string>
#include <vector>

#include "src/audit/audit.hpp"
#include "src/audit/registry.hpp"
#include "src/common/types.hpp"
#include "src/lint/baseline.hpp"

using namespace rtlb;
using namespace rtlb::audit;

namespace {

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--manifest FILE] [--root DIR] [--format=text|json] [--quiet]\n"
               "          [--explain CODE] [--baseline FILE | --baseline-write FILE]\n"
               "          [source-file...]\n",
               argv0);
  std::exit(2);
}

int explain_code(const std::string& code) {
  const DiagInfo* info = audit_info(code);
  if (info == nullptr) {
    std::fprintf(stderr, "unknown audit code '%s'; known codes:\n", code.c_str());
    for (const DiagInfo& d : all_audit_info()) std::fprintf(stderr, "  %s\n", d.code);
    return 2;
  }
  std::printf("%s (%s)\n  %s\n  fix: %s\n", info->code, severity_name(info->severity),
              info->summary, info->fixit);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string manifest_path;
  std::string root = ".";
  std::string format = "text";
  std::string baseline_path;
  std::string baseline_write_path;
  bool quiet = false;
  std::vector<std::string> paths;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--manifest") {
      if (++i >= argc) usage(argv[0]);
      manifest_path = argv[i];
    } else if (arg == "--root") {
      if (++i >= argc) usage(argv[0]);
      root = argv[i];
    } else if (arg == "--format" || arg.rfind("--format=", 0) == 0) {
      if (arg == "--format") {
        if (++i >= argc) usage(argv[0]);
        format = argv[i];
      } else {
        format = arg.substr(std::strlen("--format="));
      }
      if (format != "text" && format != "json") usage(argv[0]);
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg == "--explain") {
      if (++i >= argc) usage(argv[0]);
      return explain_code(argv[i]);
    } else if (arg == "--baseline") {
      if (++i >= argc) usage(argv[0]);
      baseline_path = argv[i];
    } else if (arg == "--baseline-write") {
      if (++i >= argc) usage(argv[0]);
      baseline_write_path = argv[i];
    } else if (!arg.empty() && arg[0] == '-') {
      usage(argv[0]);
    } else {
      paths.push_back(arg);
    }
  }
  if (!baseline_path.empty() && !baseline_write_path.empty()) usage(argv[0]);
  if (manifest_path.empty()) manifest_path = root + "/audit/rules.json";

  try {
    const Manifest manifest = load_manifest_file(manifest_path);
    Result result = run_audit(manifest, root, paths);

    if (!baseline_write_path.empty()) {
      std::set<std::string> keys;
      for (const Finding& f : result.findings) keys.insert(baseline_key(f));
      write_baseline_file(baseline_write_path, keys,
                          "rtlb_audit baseline: file<TAB>code<TAB>subject per line.\n"
                          "Every entry needs a justifying comment; see docs/AUDIT.md.");
      return 0;
    }
    if (!baseline_path.empty()) {
      apply_baseline(result, read_baseline_file(baseline_path));
    }

    if (format == "json") {
      std::printf("%s\n", audit_json(result).dump(2).c_str());
    } else {
      std::printf("%s", format_audit_text(result, quiet).c_str());
    }
    return result.new_findings() > 0 ? 1 : 0;
  } catch (const ModelError& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 2;
  }
}
