#!/bin/sh
# Build the full tree with clang-tidy running alongside the compiler
# (RTLB_CLANG_TIDY=ON; the check set lives in .clang-tidy, warnings are
# surfaced for src/lint and src/model headers). Mirrors tools/tsan.sh.
#
# Usage: tools/tidy.sh [build-dir]   (default: build-tidy)
set -eu
cd "$(dirname "$0")/.."
if ! command -v clang-tidy >/dev/null 2>&1; then
  echo "tidy.sh: no clang-tidy executable on PATH; install clang-tidy and re-run" >&2
  exit 1
fi
BUILD_DIR="${1:-build-tidy}"
cmake -B "$BUILD_DIR" -S . -DRTLB_CLANG_TIDY=ON -DCMAKE_EXPORT_COMPILE_COMMANDS=ON
cmake --build "$BUILD_DIR" -j "$(nproc)"
