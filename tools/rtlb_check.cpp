// rtlb-check: independent certificate checker for rtlb analysis results.
//
//   $ rtlb_check --emit examples/instances/paper.rtlb > paper.cert.json
//   $ rtlb_check examples/instances/paper.rtlb paper.cert.json
//   paper.rtlb: certificate OK (15 window facts, 1 bound, dedicated cost)
//
// Check mode (the default) loads an instance plus a certificate JSON file
// and re-judges every recorded fact against the theorem side-conditions
// using ONLY the problem model -- none of the optimized pipeline code is
// linked into the verdict (see src/verify/checker.hpp). Emit mode runs the
// pipeline and prints the certificate JSON for the result, so a cert can be
// produced on one machine and audited on another.
//
// Flags:
//   --emit               analyze the instance, print its certificate JSON
//   --model shared|dedicated   emit-mode analysis model (default: dedicated
//                              when the file has `node` lines, else shared)
//   --joint              emit-mode: include the conjunctive pair-bound
//                        extension rows
//   --trace FILE         emit-mode: write a Chrome trace-event file of the
//                        pipeline run that produced the certificate
//   --format=text|json   check-mode verdict format (default text)
//   --quiet              check-mode: verdict line only, no failure detail
//
// Exit status: 0 = certificate valid (every side-condition holds);
// 1 = certificate well-formed but INVALID, each violated side-condition
// pinpointed as stage/rule subject; 2 = malformed input (unreadable or
// structurally broken instance, unparseable JSON, ill-formed certificate)
// or bad usage.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "src/common/json.hpp"
#include "src/core/analysis.hpp"
#include "src/core/pipeline.hpp"
#include "src/lint/recurrent.hpp"
#include "src/model/io.hpp"
#include "src/obs/trace.hpp"
#include "src/workload/workload.hpp"
#include "src/verify/certificate.hpp"
#include "src/verify/checker.hpp"

using namespace rtlb;

namespace {

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--format=text|json] [--quiet] <instance-file> <certificate-json>\n"
               "       %s --emit [--model shared|dedicated] [--joint] [--trace FILE]\n"
               "          <instance-file>\n",
               argv0, argv0);
  std::exit(2);
}

/// Structural pre-gate: a certificate is judged against a well-formed model,
/// so structurally broken instances are "malformed input" (exit 2), not a
/// checker verdict. The judgment is the analysis pipeline's own kReport gate
/// (run_lint_gate, src/core/pipeline.hpp) -- the same refusal set as
/// Application::validate(), but reporting EVERY structural finding at once.
bool load_instance(const std::string& path, ProblemInstance* inst) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "cannot open '%s'\n", path.c_str());
    return false;
  }
  try {
    *inst = parse_instance(in, ParseOptions{.validate = false});
    const DedicatedPlatform* platform =
        inst->platform.num_node_types() > 0 ? &inst->platform : nullptr;
    if (!inst->workload.empty()) {
      // Recurrent files must pass the template gate before lowering; the
      // certificate is then judged against the LOWERED application, exactly
      // the model analyze(Workload) proved its facts on.
      LintResult templates = lint_workload(*inst->catalog, inst->workload, platform);
      if (templates.errors > 0) throw LintGateError(std::move(templates));
      lower_instance(*inst, LowerOptions{.chain_instances = true, .validate = false});
      inst->app->validate();
    }
    run_lint_gate(*inst->app, platform, LintLevel::kReport, &inst->lines);
  } catch (const LintGateError& e) {
    std::fprintf(stderr, "%s: malformed instance:\n%s", path.c_str(),
                 format_lint_text(e.result(), path).c_str());
    return false;
  } catch (const ModelError& e) {
    std::fprintf(stderr, "%s: malformed instance: %s\n", path.c_str(), e.what());
    return false;
  }
  return true;
}

int run_emit(const std::string& path, SystemModel model, bool model_given, bool joint,
             const std::string& trace_path) {
  ProblemInstance inst;
  if (!load_instance(path, &inst)) return 2;
  const DedicatedPlatform* platform =
      inst.platform.num_node_types() > 0 ? &inst.platform : nullptr;

  Trace trace;
  AnalysisOptions options;
  options.model = model_given ? model
                  : platform  ? SystemModel::Dedicated
                              : SystemModel::Shared;
  options.joint_bounds = joint;
  options.emit_certificates = true;
  if (!trace_path.empty()) options.trace = &trace;
  if (options.model == SystemModel::Dedicated && platform == nullptr) {
    std::fprintf(stderr, "--model dedicated needs `node` lines in the instance file\n");
    return 2;
  }

  const AnalysisResult result = analyze(*inst.app, options, platform);
  std::printf("%s\n", certificate_json(*result.certificate).dump(2).c_str());
  if (!trace_path.empty()) {
    std::ofstream out(trace_path);
    out << trace.chrome_json().dump(2) << "\n";
  }
  return 0;
}

int run_check(const std::string& instance_path, const std::string& cert_path,
              const std::string& format, bool quiet) {
  ProblemInstance inst;
  if (!load_instance(instance_path, &inst)) return 2;

  std::ifstream in(cert_path);
  if (!in) {
    std::fprintf(stderr, "cannot open '%s'\n", cert_path.c_str());
    return 2;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();

  Certificate cert;
  try {
    cert = parse_certificate_text(buffer.str());
  } catch (const JsonParseError& e) {
    std::fprintf(stderr, "%s: malformed JSON: %s\n", cert_path.c_str(), e.what());
    return 2;
  } catch (const CertificateFormatError& e) {
    std::fprintf(stderr, "%s: malformed certificate: %s\n", cert_path.c_str(), e.what());
    return 2;
  }

  const DedicatedPlatform* platform =
      inst.platform.num_node_types() > 0 ? &inst.platform : nullptr;
  const CheckReport report = check_certificate(cert, *inst.app, platform);

  if (format == "json") {
    Json root = Json::object();
    root.set("instance", instance_path)
        .set("certificate", cert_path)
        .set("valid", report.valid);
    Json failures = Json::array();
    for (const CheckFailure& f : report.failures) {
      failures.push(Json::object()
                        .set("stage", f.stage)
                        .set("rule", f.rule)
                        .set("subject", f.subject)
                        .set("detail", f.detail));
    }
    root.set("failures", std::move(failures));
    std::printf("%s\n", root.dump(2).c_str());
    return report.valid ? 0 : 1;
  }

  if (report.valid) {
    std::printf("%s: certificate OK (%zu window facts, %zu bounds%s%s)\n",
                instance_path.c_str(), cert.windows.size(), cert.bounds.size(),
                cert.has_joint ? ", joint rows" : "",
                cert.dedicated_cost ? ", dedicated cost" : "");
    return 0;
  }
  if (!quiet) std::printf("%s", report.summary().c_str());
  std::printf("%s: certificate INVALID (%zu violated side-condition%s)\n",
              instance_path.c_str(), report.failures.size(),
              report.failures.size() == 1 ? "" : "s");
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  bool emit = false;
  bool joint = false;
  bool quiet = false;
  bool model_given = false;
  SystemModel model = SystemModel::Shared;
  std::string format = "text";
  std::string trace_path;
  std::vector<std::string> paths;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--emit") {
      emit = true;
    } else if (arg == "--joint") {
      joint = true;
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg == "--trace") {
      if (++i >= argc) usage(argv[0]);
      trace_path = argv[i];
    } else if (arg == "--model") {
      if (++i >= argc) usage(argv[0]);
      const std::string value = argv[i];
      if (value == "shared") model = SystemModel::Shared;
      else if (value == "dedicated") model = SystemModel::Dedicated;
      else usage(argv[0]);
      model_given = true;
    } else if (arg == "--format" || arg.rfind("--format=", 0) == 0) {
      if (arg == "--format") {
        if (++i >= argc) usage(argv[0]);
        format = argv[i];
      } else {
        format = arg.substr(std::strlen("--format="));
      }
      if (format != "text" && format != "json") usage(argv[0]);
    } else if (!arg.empty() && arg[0] == '-') {
      usage(argv[0]);
    } else {
      paths.push_back(arg);
    }
  }

  if (emit) {
    if (paths.size() != 1) usage(argv[0]);
    return run_emit(paths[0], model, model_given, joint, trace_path);
  }
  if (paths.size() != 2) usage(argv[0]);
  return run_check(paths[0], paths[1], format, quiet);
}
