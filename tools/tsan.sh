#!/bin/sh
# Build the full tree with ThreadSanitizer (plus assertions, -UNDEBUG) and
# run the test suite. The parallel lower-bound engine is the main customer:
# tests/test_parallel_bound and tests/test_thread_pool exercise the pool and
# the fan-out/merge paths under TSan.
#
# Usage: tools/tsan.sh [build-dir]   (default: build-tsan)
set -eu
cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-tsan}"
cmake -B "$BUILD_DIR" -S . -DRTLB_SANITIZE=thread
cmake --build "$BUILD_DIR" -j "$(nproc)"
ctest --test-dir "$BUILD_DIR" --output-on-failure
