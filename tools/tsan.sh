#!/bin/sh
# Build the full tree with ThreadSanitizer (plus assertions, -UNDEBUG) and
# run the test suite. The parallel paths are the main customers: the
# lower-bound engine fan-out (tests/test_parallel_bound,
# tests/test_thread_pool) and the chunked parallel sensitivity sweeps /
# memoized sessions (tests/test_sensitivity, tests/test_session).
# RTLB_SESSION_VERIFY is forced on so every session query under TSan is also
# cross-checked against a cold analyze(), and RTLB_WINDOWS_REFERENCE so every
# compute_windows() call (including the parallel source/sink rounds) is
# cross-checked against the verbatim Figure 2/3 reference implementation.
#
# Usage: tools/tsan.sh [build-dir]   (default: build-tsan)
set -eu
cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-tsan}"
cmake -B "$BUILD_DIR" -S . -DRTLB_SANITIZE=thread -DRTLB_SESSION_VERIFY=ON \
  -DRTLB_WINDOWS_REFERENCE=ON
cmake --build "$BUILD_DIR" -j "$(nproc)"
ctest --test-dir "$BUILD_DIR" --output-on-failure

# Fleet smoke grid under TSan: the ~200-instance differential gauntlet
# (serial vs parallel vs warm-session legs) is the densest ThreadPool
# workload in the repo -- every instance exercises the parallel block scan,
# the chunked sensitivity sweeps and the session memo under real contention.
# TSan forces a nonzero exit on any report, so set -eu turns a single data
# race anywhere in the grid into a failed leg. The second run raises both
# the outer ThreadPool and the parallel oracle's worker counts to widen the
# interleaving space beyond the defaults; the reports must still be
# byte-identical (the fleet determinism contract).
"$BUILD_DIR/tools/rtlb_fleet" run --spec examples/fleet/smoke.json \
  --out "$BUILD_DIR/fleet-tsan.json"
"$BUILD_DIR/tools/rtlb_fleet" run --spec examples/fleet/smoke.json \
  --threads 4 --parallel-threads 5 \
  --out "$BUILD_DIR/fleet-tsan-mt.json"
cmp "$BUILD_DIR/fleet-tsan.json" "$BUILD_DIR/fleet-tsan-mt.json" || {
  echo "tsan.sh: fleet report differs across worker counts" >&2
  exit 1
}
