#!/bin/sh
# Build the full tree with AddressSanitizer + UndefinedBehaviorSanitizer
# (comma-list RTLB_SANITIZE, plus assertions via -UNDEBUG) and run the test
# suite. The memory-facing paths are the main customers: the JSON parser and
# certificate (de)serialization (tests/test_common, tests/test_verify), the
# text-format reader (tests/test_io), and the I128 arithmetic of the
# independent checker. RTLB_SESSION_VERIFY is forced on so every session
# query under the sanitizers is also cross-checked against a cold analyze(),
# and RTLB_WINDOWS_REFERENCE so every compute_windows() call is cross-checked
# against the verbatim Figure 2/3 reference implementation.
# Sibling of tools/tsan.sh (TSan cannot be combined with ASan, hence two
# scripts).
#
# Usage: tools/sanitize.sh [build-dir]   (default: build-asan)
set -eu
cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-asan}"
cmake -B "$BUILD_DIR" -S . -DRTLB_SANITIZE=address,undefined -DRTLB_SESSION_VERIFY=ON \
  -DRTLB_WINDOWS_REFERENCE=ON
cmake --build "$BUILD_DIR" -j "$(nproc)"
ctest --test-dir "$BUILD_DIR" --output-on-failure
