// trace-validate: CI auditor for pipeline trace files.
//
//   $ example_analyze_file --trace t.json file.rtlb && trace_validate t.json
//   t.json: trace OK (7 events, all 5 stages present)
//
// Validates a Chrome trace-event file emitted by an instrumented run
// (analyze_file --trace, rtlb_check --emit --trace):
//   * the file parses as JSON with a "traceEvents" array of complete ("X")
//     events carrying name/ts/dur;
//   * exactly one "pipeline" root event is present;
//   * EVERY pipeline stage name (src/core/pipeline.hpp stage_names()) is
//     present -- the check is exhaustive against the enum, so adding a
//     Stage without instrumenting it fails CI;
//   * no event lies outside its "pipeline" root's [ts, ts+dur] envelope.
//
// Exit status: 0 = valid; 1 = structurally sound JSON that violates the
// trace contract; 2 = unreadable or unparseable input, or bad usage.
#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <string>

#include "src/common/json.hpp"
#include "src/core/pipeline.hpp"

using namespace rtlb;

namespace {

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr, "usage: %s <trace-json>...\n", argv0);
  std::exit(2);
}

int validate(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "cannot open '%s'\n", path.c_str());
    return 2;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();

  Json root;
  try {
    root = Json::parse(buffer.str());
  } catch (const JsonParseError& e) {
    std::fprintf(stderr, "%s: malformed JSON: %s\n", path.c_str(), e.what());
    return 2;
  }

  const Json* events = root.find("traceEvents");
  if (events == nullptr || !events->is_array()) {
    std::fprintf(stderr, "%s: no \"traceEvents\" array\n", path.c_str());
    return 1;
  }

  std::set<std::string> seen;
  int pipelines = 0;
  std::int64_t pipeline_start = 0;
  std::int64_t pipeline_end = 0;
  for (std::size_t i = 0; i < events->size(); ++i) {
    const Json& ev = events->at(i);
    const Json* name = ev.find("name");
    const Json* ph = ev.find("ph");
    const Json* ts = ev.find("ts");
    const Json* dur = ev.find("dur");
    if (name == nullptr || !name->is_string() || ph == nullptr || !ph->is_string() ||
        ts == nullptr || !ts->is_number() || dur == nullptr || !dur->is_number()) {
      std::fprintf(stderr, "%s: event %zu lacks name/ph/ts/dur\n", path.c_str(), i);
      return 1;
    }
    if (ph->as_string() != "X") {
      std::fprintf(stderr, "%s: event %zu: ph \"%s\" is not a complete event\n",
                   path.c_str(), i, ph->as_string().c_str());
      return 1;
    }
    seen.insert(name->as_string());
    if (name->as_string() == "pipeline") {
      ++pipelines;
      pipeline_start = ts->as_int();
      pipeline_end = ts->as_int() + dur->as_int();
    }
  }

  if (pipelines != 1) {
    std::fprintf(stderr, "%s: expected exactly one \"pipeline\" event, found %d\n",
                 path.c_str(), pipelines);
    return 1;
  }
  for (const char* stage : stage_names()) {
    if (!seen.contains(stage)) {
      std::fprintf(stderr, "%s: stage \"%s\" missing from the trace\n", path.c_str(),
                   stage);
      return 1;
    }
  }
  for (std::size_t i = 0; i < events->size(); ++i) {
    const Json& ev = events->at(i);
    const std::int64_t ts = ev.find("ts")->as_int();
    const std::int64_t end = ts + ev.find("dur")->as_int();
    if (ts < pipeline_start || end > pipeline_end) {
      std::fprintf(stderr,
                   "%s: event \"%s\" [%lld, %lld] escapes the pipeline envelope "
                   "[%lld, %lld]\n",
                   path.c_str(), ev.find("name")->as_string().c_str(),
                   static_cast<long long>(ts), static_cast<long long>(end),
                   static_cast<long long>(pipeline_start),
                   static_cast<long long>(pipeline_end));
      return 1;
    }
  }

  std::printf("%s: trace OK (%zu events, all %d stages present)\n", path.c_str(),
              events->size(), kNumStages);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) usage(argv[0]);
  int worst = 0;
  for (int i = 1; i < argc; ++i) {
    if (!argv[i] || argv[i][0] == '-') usage(argv[0]);
    const int rc = validate(argv[i]);
    if (rc > worst) worst = rc;
  }
  return worst;
}
