// rtlb_fleet: the differential-testing fleet runner.
//
//   $ rtlb_fleet run --spec examples/fleet/smoke.json --out report.json
//   $ rtlb_fleet run --spec grid.json --shards 4 --shard 0 \
//       --checkpoint shard0.ckpt --out shard0.json
//   $ rtlb_fleet merge --out merged.json shard0.json shard1.json ...
//   $ rtlb_fleet print-spec --spec grid.json
//
// `run` streams every instance of the scenario grid (generator family x
// task count x laxity x platform model) through the differential oracles
// documented in src/fleet/runner.hpp and writes the aggregate report JSON.
// With --checkpoint, progress is persisted atomically after every chunk;
// re-running the same command after a crash (or kill -9) resumes from the
// last chunk boundary and produces byte-identical final aggregates. With
// --shards S / --shard K, this process evaluates only global indices g with
// g % S == K; `merge` combines the per-shard reports into the exact bytes a
// single-process run would have produced.
//
// run flags:
//   --spec FILE           scenario spec JSON (required)
//   --out FILE            report JSON destination (default: stdout)
//   --threads N           ThreadPool workers (<=0: one per hardware thread)
//   --shards S --shard K  process-level sharding (defaults 1 / 0)
//   --checkpoint FILE     resumable checkpoint path
//   --checkpoint-every N  instances per checkpoint chunk (default 512)
//   --limit N             stop after N instances THIS run (kill -9 stand-in)
//   --repro-dir DIR       write minimized .rtlb reproducers for divergences
//   --warm                serve baselines from warm AnalysisSessions
//   --no-parallel / --no-session / --no-certificate / --no-lint
//                         disable individual oracles
//   --parallel-threads N  worker count of the parallel oracle (default 4)
//   --progress            progress line per chunk on stderr
//
// Exit status: 0 = run complete and clean (no divergences); 1 = run
// complete but divergences were recorded (see the report); 2 = usage or
// input error; 3 = incomplete (--limit cut the run short; checkpoint holds
// the cursor).
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "src/common/checkpoint.hpp"
#include "src/fleet/runner.hpp"

using namespace rtlb;

namespace {

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s run --spec FILE [--out FILE] [--threads N]\n"
               "          [--shards S --shard K] [--checkpoint FILE]\n"
               "          [--checkpoint-every N] [--limit N] [--repro-dir DIR]\n"
               "          [--warm] [--no-parallel] [--no-session]\n"
               "          [--no-certificate] [--no-lint] [--parallel-threads N]\n"
               "          [--progress]\n"
               "       %s merge --out FILE shard-report.json...\n"
               "       %s print-spec --spec FILE\n",
               argv0, argv0, argv0);
  std::exit(2);
}

ScenarioSpec load_spec(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw ModelError("cannot open spec '" + path + "'");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return ScenarioSpec::from_text(buffer.str());
}

int write_report(const Json& report, const std::string& out_path) {
  const std::string text = report.dump(2) + "\n";
  if (out_path.empty()) {
    std::fputs(text.c_str(), stdout);
    return 0;
  }
  if (!atomic_write_file(out_path, text)) {
    std::fprintf(stderr, "cannot write '%s'\n", out_path.c_str());
    return 2;
  }
  return 0;
}

int long_arg(int argc, char** argv, int* i, const char* argv0) {
  if (++*i >= argc) usage(argv0);
  return std::atoi(argv[*i]);
}

int run_command(int argc, char** argv) {
  std::string spec_path, out_path;
  FleetOptions opts;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--spec") {
      if (++i >= argc) usage(argv[0]);
      spec_path = argv[i];
    } else if (arg == "--out") {
      if (++i >= argc) usage(argv[0]);
      out_path = argv[i];
    } else if (arg == "--threads") {
      opts.threads = long_arg(argc, argv, &i, argv[0]);
    } else if (arg == "--shards") {
      opts.shards = long_arg(argc, argv, &i, argv[0]);
    } else if (arg == "--shard") {
      opts.shard = long_arg(argc, argv, &i, argv[0]);
    } else if (arg == "--checkpoint") {
      if (++i >= argc) usage(argv[0]);
      opts.checkpoint_path = argv[i];
    } else if (arg == "--checkpoint-every") {
      const int n = long_arg(argc, argv, &i, argv[0]);
      if (n < 1) usage(argv[0]);
      opts.checkpoint_every = static_cast<std::size_t>(n);
    } else if (arg == "--limit") {
      const int n = long_arg(argc, argv, &i, argv[0]);
      if (n < 1) usage(argv[0]);
      opts.stop_after = static_cast<std::uint64_t>(n);
    } else if (arg == "--repro-dir") {
      if (++i >= argc) usage(argv[0]);
      opts.repro_dir = argv[i];
    } else if (arg == "--warm") {
      opts.warm_sessions = true;
    } else if (arg == "--no-parallel") {
      opts.oracles.parallel = false;
    } else if (arg == "--no-session") {
      opts.oracles.session = false;
    } else if (arg == "--no-certificate") {
      opts.oracles.certificate = false;
    } else if (arg == "--no-lint") {
      opts.oracles.lint = false;
    } else if (arg == "--parallel-threads") {
      opts.oracles.parallel_threads = long_arg(argc, argv, &i, argv[0]);
    } else if (arg == "--progress") {
      opts.progress = true;
    } else {
      usage(argv[0]);
    }
  }
  if (spec_path.empty()) usage(argv[0]);

  const ScenarioSpec spec = load_spec(spec_path);
  const FleetRunResult result = run_fleet(spec, opts);
  const Json report =
      fleet_report_json(spec, result.aggregates, opts.shards, opts.shard, result.complete);
  const int write_rc = write_report(report, out_path);
  if (write_rc != 0) return write_rc;

  std::fprintf(stderr, "rtlb_fleet: %s%llu instances, %llu analyses, %zu divergences%s\n",
               result.resumed ? "resumed; " : "",
               static_cast<unsigned long long>(result.aggregates.instances),
               static_cast<unsigned long long>(result.aggregates.analyses),
               result.aggregates.divergences.size(),
               result.complete ? "" : " (incomplete; --limit reached)");
  if (!result.complete) return 3;
  return result.aggregates.clean() ? 0 : 1;
}

int merge_command(int argc, char** argv) {
  std::string out_path;
  std::vector<Json> reports;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--out") {
      if (++i >= argc) usage(argv[0]);
      out_path = argv[i];
    } else if (!arg.empty() && arg[0] == '-') {
      usage(argv[0]);
    } else {
      std::ifstream in(arg);
      if (!in) throw ModelError("cannot open shard report '" + arg + "'");
      std::ostringstream buffer;
      buffer << in.rdbuf();
      reports.push_back(Json::parse(buffer.str()));
    }
  }
  if (reports.empty()) usage(argv[0]);

  const Json merged = merge_fleet_reports(reports);
  const int write_rc = write_report(merged, out_path);
  if (write_rc != 0) return write_rc;
  const Json* agg = merged.find("aggregates");
  const std::int64_t divergences =
      agg != nullptr && agg->find("divergence_count") != nullptr
          ? agg->find("divergence_count")->as_int()
          : 0;
  return divergences == 0 ? 0 : 1;
}

int print_spec_command(int argc, char** argv) {
  std::string spec_path;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--spec") {
      if (++i >= argc) usage(argv[0]);
      spec_path = argv[i];
    } else {
      usage(argv[0]);
    }
  }
  if (spec_path.empty()) usage(argv[0]);
  const ScenarioSpec spec = load_spec(spec_path);
  std::printf("%s\n", spec.to_json().dump(2).c_str());
  std::fprintf(stderr, "cells: %zu  instances: %llu  fingerprint: %llx\n", spec.num_cells(),
               static_cast<unsigned long long>(spec.total_instances()),
               static_cast<unsigned long long>(spec.fingerprint()));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) usage(argv[0]);
  const std::string command = argv[1];
  try {
    if (command == "run") return run_command(argc, argv);
    if (command == "merge") return merge_command(argc, argv);
    if (command == "print-spec") return print_spec_command(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "rtlb_fleet: %s\n", e.what());
    return 2;
  }
  usage(argv[0]);
}
