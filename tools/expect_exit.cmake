# Golden-exit-code test driver: run a command, assert its exact exit status
# and (optionally) that its combined output matches a regex. ctest's WILL_FAIL
# only distinguishes zero from nonzero; the rtlb_check contract distinguishes
# "invalid certificate" (1) from "malformed input" (2), so the assertion has
# to be exact.
#
#   cmake -DCMD=/path/to/rtlb_check "-DARGS=a.rtlb a.cert.json"
#         -DEXPECT_RC=1 [-DEXPECT_MATCH=regex] -P expect_exit.cmake
if(NOT DEFINED CMD OR NOT DEFINED EXPECT_RC)
  message(FATAL_ERROR "expect_exit.cmake needs -DCMD=... and -DEXPECT_RC=...")
endif()
separate_arguments(ARGS)
execute_process(
  COMMAND ${CMD} ${ARGS}
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err)
message(STATUS "exit ${rc}\n${out}${err}")
if(NOT rc EQUAL ${EXPECT_RC})
  message(FATAL_ERROR "expected exit ${EXPECT_RC}, got ${rc}")
endif()
if(DEFINED EXPECT_MATCH AND NOT "${out}${err}" MATCHES "${EXPECT_MATCH}")
  message(FATAL_ERROR "output did not match '${EXPECT_MATCH}'")
endif()
