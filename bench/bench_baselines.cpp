// Experiment C1 (DESIGN.md): the paper's positioning against prior art.
// On each baseline's own model class the paper's LB_r must match or beat it,
// and on the full constraint model the baselines are not even applicable
// (they ignore deadlines, releases, resources, heterogeneity).
#include <benchmark/benchmark.h>

#include <cstdio>

#include "src/baselines/al_mohummed.hpp"
#include "src/baselines/fernandez_bussell.hpp"
#include "src/baselines/trivial_bounds.hpp"
#include "src/common/table.hpp"
#include "src/core/analysis.hpp"
#include "src/workload/taskset_gen.hpp"

using namespace rtlb;

namespace {

/// Force a single global deadline (the horizon the 1973/1990 models use).
void flatten_deadlines(Application& app) {
  Time horizon = 0;
  for (TaskId i = 0; i < app.num_tasks(); ++i) {
    horizon = std::max(horizon, app.task(i).deadline);
  }
  for (TaskId i = 0; i < app.num_tasks(); ++i) app.task(i).deadline = horizon;
}

void print_report() {
  std::printf("== Experiment C1a: Fernandez-Bussell model class"
              " (1 proc type, zero comm, common deadline) ==\n");
  Table t1({"seed", "tasks", "work bound", "F-B 1973", "ours (LB_P)", "ours >= F-B"});
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    WorkloadParams params;
    params.seed = seed * 7;
    params.num_tasks = 24;
    params.num_proc_types = 1;
    params.num_resources = 0;
    params.msg_min = params.msg_max = 0;
    params.laxity = 1.0;
    ProblemInstance inst = generate_workload(params);
    flatten_deadlines(*inst.app);
    const AnalysisResult res = analyze(*inst.app);
    const FernandezBussellResult fb =
        fernandez_bussell_bound(*inst.app, inst.app->task(0).deadline);
    const ResourceId p = inst.catalog->find("P1");
    t1.add(seed * 7, inst.app->num_tasks(), work_bound(*inst.app, res.windows, p),
           fb.processors, res.bound_for(p).value(), res.bound_for(p).value() >= fb.processors ? "yes" : "NO");
  }
  std::printf("%s\n", t1.to_string().c_str());

  std::printf("== Experiment C1b: Al-Mohummed model class"
              " (1 proc type, non-zero comm, common deadline) ==\n");
  Table t2({"seed", "tasks", "F-B 1973", "A-M 1990", "ours (LB_P)", "ours >= A-M"});
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    WorkloadParams params;
    params.seed = seed * 13;
    params.num_tasks = 20;
    params.num_proc_types = 1;
    params.num_resources = 0;
    params.msg_min = 1;
    params.msg_max = 6;
    params.laxity = 1.0;
    ProblemInstance inst = generate_workload(params);
    flatten_deadlines(*inst.app);
    const AnalysisResult res = analyze(*inst.app);
    const Time horizon = inst.app->task(0).deadline;
    const FernandezBussellResult fb = fernandez_bussell_bound(*inst.app, horizon);
    const AlMohummedResult am = al_mohummed_bound(*inst.app, horizon);
    const ResourceId p = inst.catalog->find("P1");
    t2.add(seed * 13, inst.app->num_tasks(), fb.processors, am.processors, res.bound_for(p).value(),
           res.bound_for(p).value() >= am.processors ? "yes" : "NO");
  }
  std::printf("%s(A-M sees the communication F-B ignores; our analysis reduces to A-M\n"
              " on this class and must never be weaker)\n\n",
              t2.to_string().c_str());

  std::printf("== Experiment C1c: full constraint model"
              " (deadlines, releases, resources, 2 proc types) ==\n");
  Table t3({"seed", "resource", "work bound", "ours (LB_r)", "tighter by"});
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    WorkloadParams params;
    params.seed = seed * 19;
    params.num_tasks = 24;
    params.num_proc_types = 2;
    params.num_resources = 2;
    params.resource_prob = 0.5;
    params.laxity = 1.3;
    params.release_spread = 0.4;
    ProblemInstance inst = generate_workload(params);
    const AnalysisResult res = analyze(*inst.app);
    for (ResourceId r : inst.app->resource_set()) {
      const std::int64_t wb = work_bound(*inst.app, res.windows, r);
      t3.add(seed * 19, inst.catalog->name(r), wb, res.bound_for(r).value(),
             res.bound_for(r).value() - wb);
    }
  }
  std::printf("%s(no prior bound handles this class at all; the work bound is the only\n"
              " applicable comparator and the interval analysis dominates it)\n\n",
              t3.to_string().c_str());
}

void BM_OursVsBaselines(benchmark::State& state) {
  WorkloadParams params;
  params.seed = 23;
  params.num_tasks = static_cast<std::size_t>(state.range(0));
  params.num_proc_types = 1;
  params.num_resources = 0;
  params.laxity = 1.0;
  ProblemInstance inst = generate_workload(params);
  flatten_deadlines(*inst.app);
  for (auto _ : state) {
    benchmark::DoNotOptimize(analyze(*inst.app));
  }
}
BENCHMARK(BM_OursVsBaselines)->RangeMultiplier(2)->Range(32, 256);

void BM_FernandezBussell(benchmark::State& state) {
  WorkloadParams params;
  params.seed = 23;
  params.num_tasks = static_cast<std::size_t>(state.range(0));
  params.num_proc_types = 1;
  params.num_resources = 0;
  params.laxity = 1.0;
  ProblemInstance inst = generate_workload(params);
  for (auto _ : state) {
    benchmark::DoNotOptimize(fernandez_bussell_bound(*inst.app));
  }
}
BENCHMARK(BM_FernandezBussell)->RangeMultiplier(2)->Range(32, 256);

void BM_AlMohummed(benchmark::State& state) {
  WorkloadParams params;
  params.seed = 23;
  params.num_tasks = static_cast<std::size_t>(state.range(0));
  params.num_proc_types = 1;
  params.num_resources = 0;
  params.msg_max = 6;
  params.laxity = 1.0;
  ProblemInstance inst = generate_workload(params);
  for (auto _ : state) {
    benchmark::DoNotOptimize(al_mohummed_bound(*inst.app));
  }
}
BENCHMARK(BM_AlMohummed)->RangeMultiplier(2)->Range(32, 256);

}  // namespace

int main(int argc, char** argv) {
  print_report();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
