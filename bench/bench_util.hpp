// Shared helpers for the benchmark binaries.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

#include "src/common/table.hpp"

namespace rtlb::benchutil {

/// When RTLB_CSV_DIR is set, mirror a report table to <dir>/<name>.csv so
/// the series can be replotted without scraping the ASCII output.
inline void export_csv(const Table& table, const char* name) {
  const char* dir = std::getenv("RTLB_CSV_DIR");
  if (dir == nullptr) return;
  const std::string path = std::string(dir) + "/" + name + ".csv";
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "[csv] cannot write %s\n", path.c_str());
    return;
  }
  table.to_csv(out);
  std::printf("[csv] wrote %s\n", path.c_str());
}

}  // namespace rtlb::benchutil
