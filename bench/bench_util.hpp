// Shared helpers for the benchmark binaries.
#pragma once

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

#include "src/common/json.hpp"
#include "src/common/table.hpp"

namespace rtlb::benchutil {

/// When RTLB_CSV_DIR is set, mirror a report table to <dir>/<name>.csv so
/// the series can be replotted without scraping the ASCII output.
inline void export_csv(const Table& table, const char* name) {
  const char* dir = std::getenv("RTLB_CSV_DIR");
  if (dir == nullptr) return;
  const std::string path = std::string(dir) + "/" + name + ".csv";
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "[csv] cannot write %s\n", path.c_str());
    return;
  }
  table.to_csv(out);
  std::printf("[csv] wrote %s\n", path.c_str());
}

/// Write a JSON document to <RTLB_CSV_DIR or .>/<name>.json -- used by the
/// benches that record machine-readable results (BENCH_lower_bound.json).
inline void export_json(const Json& root, const char* name) {
  const char* dir = std::getenv("RTLB_CSV_DIR");
  const std::string path = (dir ? std::string(dir) + "/" : std::string()) + name + ".json";
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "[json] cannot write %s\n", path.c_str());
    return;
  }
  out << root.dump(2) << "\n";
  std::printf("[json] wrote %s\n", path.c_str());
}

/// Best-of-`reps` wall-clock milliseconds of fn().
template <typename Fn>
double time_ms(Fn&& fn, int reps = 3) {
  double best = -1.0;
  for (int i = 0; i < reps; ++i) {
    const auto start = std::chrono::steady_clock::now();
    fn();
    const auto stop = std::chrono::steady_clock::now();
    const double ms = std::chrono::duration<double, std::milli>(stop - start).count();
    if (best < 0 || ms < best) best = ms;
  }
  return best;
}

}  // namespace rtlb::benchutil
