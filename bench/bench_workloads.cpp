// Workload front-door benchmarks: what does recurrence COST, and what does
// the paper's bound BUY on lowered periodic/sporadic instances?
//
// Three sections, recorded to BENCH_workloads.json:
//  (a) lowering cost -- lower_workload() wall time for generated periodic
//      and sporadic template sets at growing task counts. Lowering is a
//      straight unroll; the section pins that it stays negligible next to
//      the analysis itself.
//  (b) analysis cost vs hyperperiod -- one fixed template pair whose slow
//      transaction's period doubles per row, doubling the hyperperiod and
//      hence the number of lowered activations. The paper's partitioning
//      keeps the growth near-linear: every activation slot becomes its own
//      partition block (Theorem 5), so the scans never cross slots.
//  (c) resource-LB vs long-paths tightness -- the head-to-head behind the
//      EXPERIMENTS.md table: the Alqadi-Ramanathan LB_P (a NECESSARY
//      processor count, computed from the lowered per-activation windows)
//      against He et al.'s long-paths sufficiency (arXiv 2307.13401; the
//      smallest m whose response-time bound meets the latest lowered
//      deadline). Models are aligned the way the path literature assumes:
//      one processor type, no extra resources, zero-size messages. The
//      tightness column is necessity/sufficiency in permille -- 1000 means
//      the sandwich is closed and the true requirement is pinned exactly.
//
// RTLB_BENCH_REPS overrides the rep count (CI smoke sets 1); the grid shape
// is rep-independent so the committed JSON's key paths stay stable.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <thread>

#include "bench_util.hpp"
#include "src/baselines/long_paths.hpp"
#include "src/core/analysis.hpp"
#include "src/workload/taskset_gen.hpp"
#include "src/workload/workload.hpp"

using namespace rtlb;

namespace {

int rep_count() {
  if (const char* env = std::getenv("RTLB_BENCH_REPS")) {
    const int reps = std::atoi(env);
    if (reps > 0) return reps;
  }
  return 5;
}

const char* kind_name(ReleaseKind kind) {
  return kind == ReleaseKind::kSporadic ? "sporadic" : "periodic";
}

// ---------------------------------------------------------------- section a

Json lowering_cost(int reps) {
  std::printf("== lowering cost (best of %d) ==\n", reps);
  Table t({"kind", "num_tasks", "templates", "lowered", "ms"});
  Json rows = Json::array();
  for (const ReleaseKind kind : {ReleaseKind::kPeriodic, ReleaseKind::kSporadic}) {
    for (const std::size_t n : {16, 32, 64}) {
      WorkloadParams params;
      params.seed = 29 + n;
      params.num_tasks = n;
      ProblemInstance inst = generate_recurrent_instance(params, kind);
      std::size_t lowered = 0;
      const double ms = benchutil::time_ms(
          [&] { lowered = lower_workload(*inst.catalog, inst.workload).num_tasks(); },
          reps);
      char ms_s[32];
      std::snprintf(ms_s, sizeof ms_s, "%.3f", ms);
      t.add(kind_name(kind), std::to_string(n),
            std::to_string(inst.workload.transactions.size()), std::to_string(lowered),
            ms_s);
      Json row = Json::object();
      row.set("kind", kind_name(kind))
          .set("num_tasks", static_cast<std::int64_t>(n))
          .set("transactions", static_cast<std::int64_t>(inst.workload.transactions.size()))
          .set("lowered_tasks", static_cast<std::int64_t>(lowered))
          .set("ms", ms);
      rows.push(std::move(row));
    }
  }
  std::printf("%s\n", t.to_string().c_str());
  benchutil::export_csv(t, "workload_lowering");
  return rows;
}

// ---------------------------------------------------------------- section b

Json analysis_vs_hyperperiod(int reps) {
  std::printf("== analysis cost vs hyperperiod (best of %d) ==\n", reps);
  Table t({"hyperperiod", "lowered", "analyze_ms", "lower_ms"});
  Json rows = Json::array();
  ResourceCatalog cat;
  const ResourceId cpu = cat.add_processor_type("CPU", 10);
  const ResourceId dsp = cat.add_processor_type("DSP", 25);

  const auto make_task = [](const char* name, Time comp, ResourceId proc) {
    TemplateTask t;
    t.name = name;
    t.comp = comp;
    t.proc = proc;
    return t;
  };
  for (int doubling = 0; doubling <= 3; ++doubling) {
    Workload w;
    Transaction fast;
    fast.name = "fast";
    fast.period = 24;
    fast.tasks = {make_task("sense", 3, cpu), make_task("filter", 5, dsp),
                  make_task("act", 2, cpu)};
    fast.edges = {{0, 1, 2}, {1, 2, 1}};
    Transaction slow;
    slow.name = "slow";
    slow.period = 24 << doubling;  // doubles the shared hyperperiod per row
    slow.tasks = {make_task("plan", 7, dsp), make_task("log", 2, cpu)};
    slow.edges = {{0, 1, 3}};
    w.transactions = {fast, slow};

    const double lower_ms =
        benchutil::time_ms([&] { (void)lower_workload(cat, w); }, reps);
    const Application app = lower_workload(cat, w);
    const double analyze_ms = benchutil::time_ms([&] { (void)analyze(app); }, reps);

    char a_s[32], l_s[32];
    std::snprintf(a_s, sizeof a_s, "%.3f", analyze_ms);
    std::snprintf(l_s, sizeof l_s, "%.3f", lower_ms);
    t.add(std::to_string(hyperperiod(w.transactions)), std::to_string(app.num_tasks()),
          a_s, l_s);
    Json row = Json::object();
    row.set("hyperperiod", static_cast<std::int64_t>(hyperperiod(w.transactions)))
        .set("lowered_tasks", static_cast<std::int64_t>(app.num_tasks()))
        .set("analyze_ms", analyze_ms)
        .set("lower_ms", lower_ms);
    rows.push(std::move(row));
  }
  std::printf("%s(per-slot partition blocks keep the growth near-linear)\n\n",
              t.to_string().c_str());
  benchutil::export_csv(t, "workload_hyperperiod");
  return rows;
}

// ---------------------------------------------------------------- section c

Json tightness(int /*reps*/) {
  std::printf("== resource-LB necessity vs long-paths sufficiency ==\n");
  Table t({"kind", "num_tasks", "LB_P (mean)", "suff (mean)", "tightness permille"});
  Json rows = Json::array();
  constexpr std::uint64_t kSeeds = 8;
  for (const ReleaseKind kind : {ReleaseKind::kPeriodic, ReleaseKind::kSporadic}) {
    for (const std::size_t n : {16, 32}) {
      std::int64_t lb_sum = 0;
      std::int64_t suff_sum = 0;
      std::int64_t permille_sum = 0;
      for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
        WorkloadParams params;
        params.seed = seed * 23;
        params.num_tasks = n;
        params.num_proc_types = 1;
        params.num_resources = 0;
        params.msg_min = params.msg_max = 0;  // the path-literature model
        params.laxity = 1.5;
        ProblemInstance inst = generate_recurrent_instance(params, kind);
        const AnalysisResult res = analyze(*inst.app);
        const std::int64_t lb = res.bound_for(inst.catalog->find("P1")).value_or(0);

        Time latest = 0;
        for (TaskId i = 0; i < inst.app->num_tasks(); ++i) {
          latest = std::max(latest, inst.app->task(i).deadline);
        }
        const LongPathsDecomposition d = long_paths_decompose(*inst.app);
        const int suff = long_paths_min_processors(d, latest);

        lb_sum += lb;
        suff_sum += suff;
        permille_sum += suff > 0 ? 1000 * lb / suff : 0;
      }
      const std::int64_t permille = permille_sum / static_cast<std::int64_t>(kSeeds);
      char lb_s[32], sf_s[32];
      std::snprintf(lb_s, sizeof lb_s, "%.2f",
                    static_cast<double>(lb_sum) / static_cast<double>(kSeeds));
      std::snprintf(sf_s, sizeof sf_s, "%.2f",
                    static_cast<double>(suff_sum) / static_cast<double>(kSeeds));
      t.add(kind_name(kind), std::to_string(n), lb_s, sf_s, std::to_string(permille));
      Json row = Json::object();
      row.set("kind", kind_name(kind))
          .set("num_tasks", static_cast<std::int64_t>(n))
          .set("seeds", static_cast<std::int64_t>(kSeeds))
          .set("lb_mean", static_cast<double>(lb_sum) / static_cast<double>(kSeeds))
          .set("sufficient_mean", static_cast<double>(suff_sum) / static_cast<double>(kSeeds))
          .set("tightness_permille", permille);
      rows.push(std::move(row));
    }
  }
  std::printf("%s(1000 permille = the necessary and sufficient counts meet: the\n"
              " sandwich pins the true processor requirement exactly)\n\n",
              t.to_string().c_str());
  benchutil::export_csv(t, "workload_tightness");
  return rows;
}

}  // namespace

int main() {
  const int reps = rep_count();
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());

  Json root = Json::object();
  root.set("bench",
           "bench_workloads: lowering cost, analysis vs hyperperiod, LB vs long-paths")
      .set("reps", static_cast<std::int64_t>(reps))
      .set("hardware_concurrency", static_cast<std::int64_t>(hw))
      .set("degraded", false)  // single-threaded measurements throughout
      .set("lowering", lowering_cost(reps))
      .set("analysis_vs_hyperperiod", analysis_vs_hyperperiod(reps))
      .set("tightness", tightness(reps));
  benchutil::export_json(root, "BENCH_workloads");
  return 0;
}
