// Experiments F5 and C4 (DESIGN.md): the five overlap geometries of
// Figure 5 under Theorems 3 and 4, and the effect of preemptability on the
// final bounds (Section 6's only model knob), plus Psi microbenchmarks.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "src/common/table.hpp"
#include "src/core/analysis.hpp"
#include "src/core/overlap.hpp"
#include "src/sched/preemptive.hpp"
#include "src/workload/taskset_gen.hpp"

using namespace rtlb;

namespace {

void print_report() {
  std::printf("== Experiment F5: the five cases of Figure 5 ==\n");
  // One representative geometry per case; window [E, L], interval [t1, t2].
  struct Row {
    const char* name;
    Time c, e, l, t1, t2;
  };
  const Row rows[] = {
      {"1: disjoint", 3, 0, 5, 6, 9},
      {"2: window inside interval", 3, 4, 8, 2, 10},
      {"3: enters from the left", 5, 0, 8, 2, 10},
      {"4: exits to the right", 5, 4, 12, 0, 8},
      {"5: interval inside window", 9, 0, 12, 4, 8},
  };
  Table t({"case", "C", "[E,L]", "[t1,t2]", "Psi preemptive", "Psi non-preemptive"});
  for (const Row& r : rows) {
    char window[32], interval[32];
    std::snprintf(window, sizeof window, "[%lld,%lld]", static_cast<long long>(r.e),
                  static_cast<long long>(r.l));
    std::snprintf(interval, sizeof interval, "[%lld,%lld]", static_cast<long long>(r.t1),
                  static_cast<long long>(r.t2));
    t.add(r.name, r.c, window, interval, overlap_preemptive(r.c, r.e, r.l, r.t1, r.t2),
          overlap_nonpreemptive(r.c, r.e, r.l, r.t1, r.t2));
  }
  std::printf("%s(case 5 is where Theorems 3 and 4 part ways: a preemptive task can\n"
              " split around the interval, a non-preemptive one cannot)\n\n",
              t.to_string().c_str());

  std::printf("== Experiment C4: preemptive vs non-preemptive bounds ==\n");
  Table b({"seed", "resource", "LB (non-preemptive)", "LB (preemptive)", "delta"});
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    WorkloadParams params;
    params.seed = seed * 31;
    params.num_tasks = 20;
    params.laxity = 1.4;
    params.num_resources = 1;
    ProblemInstance inst = generate_workload(params);

    const AnalysisResult non = analyze(*inst.app);
    for (TaskId i = 0; i < inst.app->num_tasks(); ++i) {
      inst.app->task(i).preemptive = true;
    }
    const AnalysisResult pre = analyze(*inst.app);
    for (ResourceId r : inst.app->resource_set()) {
      b.add(seed * 31, inst.catalog->name(r), non.bound_for(r).value(), pre.bound_for(r).value(),
            non.bound_for(r).value() - pre.bound_for(r).value());
    }
  }
  std::printf("%s(non-preemptive demand is pointwise >= preemptive, so its bound can\n"
              " only be equal or larger; equality is common because the candidate\n"
              " intervals are window endpoints)\n\n",
              b.to_string().c_str());

  std::printf("== The split, operationally: A(C8,[0,12]) + B(C4,[4,8]) on one CPU ==\n");
  {
    ResourceCatalog cat;
    const ResourceId p = cat.add_processor_type("P", 1);
    auto build = [&](bool a_preemptive) {
      Application app(cat);
      Task a;
      a.name = "A";
      a.comp = 8;
      a.deadline = 12;
      a.proc = p;
      a.preemptive = a_preemptive;
      app.add_task(a);
      Task bt;
      bt.name = "B";
      bt.comp = 4;
      bt.release = 4;
      bt.deadline = 8;
      bt.proc = p;
      app.add_task(bt);
      return app;
    };
    const Application pre = build(true);
    const Application rigid = build(false);
    Capacities caps(cat.size(), 1);
    const PreemptiveResult run = edf_preemptive_shared(pre, caps);
    std::printf("  Theorem 3 (A preemptive):     LB_P = %lld; preemptive EDF %s"
                " (A splits [0,4]+[8,12] around B)\n",
                static_cast<long long>(analyze(pre).bound_for(p).value()),
                run.feasible ? "schedules it on 1 CPU" : "FAILS");
    std::printf("  Theorem 4 (A non-preemptive): LB_P = %lld; no contiguous placement"
                " exists on 1 CPU (exhaustively checked in tests)\n\n",
                static_cast<long long>(analyze(rigid).bound_for(p).value()));
  }
}

void BM_OverlapPreemptive(benchmark::State& state) {
  Time acc = 0;
  Time t = 0;
  for (auto _ : state) {
    t = (t + 7) % 40;
    acc += overlap_preemptive(9, t % 13, t % 13 + 15, 10, 24);
  }
  benchmark::DoNotOptimize(acc);
}
BENCHMARK(BM_OverlapPreemptive);

void BM_OverlapNonpreemptive(benchmark::State& state) {
  Time acc = 0;
  Time t = 0;
  for (auto _ : state) {
    t = (t + 7) % 40;
    acc += overlap_nonpreemptive(9, t % 13, t % 13 + 15, 10, 24);
  }
  benchmark::DoNotOptimize(acc);
}
BENCHMARK(BM_OverlapNonpreemptive);

void BM_DemandOverTaskSet(benchmark::State& state) {
  WorkloadParams params;
  params.seed = 3;
  params.num_tasks = static_cast<std::size_t>(state.range(0));
  ProblemInstance inst = generate_workload(params);
  SharedMergeOracle oracle;
  const TaskWindows w = compute_windows(*inst.app, oracle);
  const ResourceId p = inst.catalog->find("P1");
  const std::vector<TaskId> st = inst.app->tasks_using(p);
  for (auto _ : state) {
    benchmark::DoNotOptimize(demand(*inst.app, w, st, 5, 50));
  }
}
BENCHMARK(BM_DemandOverTaskSet)->RangeMultiplier(4)->Range(16, 1024);

}  // namespace

int main(int argc, char** argv) {
  print_report();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
