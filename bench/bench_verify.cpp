// Cost of the certificate layer: what does proof-carrying analysis add on
// top of the pipeline it certifies?
//
// Four timings per workload size, dedicated model with joint rows (the
// heaviest certificate):
//   analyze        the plain pipeline (the baseline being certified)
//   + emit         pipeline plus build_certificate (witness assembly and the
//                  explicit dual LP solve)
//   + check        pipeline plus emission plus the independent checker --
//                  the check_certificates=true tripwire configuration
//   check only     check_certificate on a prebuilt certificate: the cost an
//                  auditor pays via tools/rtlb_check, without the pipeline
//   round-trip     certificate_json -> dump -> parse_certificate_text, the
//                  serialization cost of shipping the certificate
// Results go to BENCH_verify.json (benchutil::export_json).
#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "src/core/analysis.hpp"
#include "src/verify/certificate.hpp"
#include "src/verify/checker.hpp"
#include "src/verify/emit.hpp"
#include "src/workload/taskset_gen.hpp"

using namespace rtlb;

namespace {

ProblemInstance make_workload(std::size_t num_tasks, std::uint64_t seed = 41) {
  WorkloadParams params;
  params.seed = seed;
  params.shape = GraphShape::Layered;
  params.num_tasks = num_tasks;
  params.num_layers = std::max<std::size_t>(4, num_tasks / 8);
  params.preemptive_prob = 0.25;
  params.release_spread = 0.3;
  return generate_workload(params);
}

AnalysisOptions verify_options(bool emit, bool check) {
  AnalysisOptions options;
  options.model = SystemModel::Dedicated;
  options.joint_bounds = true;
  options.emit_certificates = emit;
  options.check_certificates = check;
  return options;
}

void run_report() {
  Table t({"tasks", "analyze ms", "+emit ms", "+check ms", "check-only ms",
           "round-trip ms", "cert KiB", "check overhead"});
  Json series = Json::array();

  for (const std::size_t n : {16u, 32u, 64u, 128u}) {
    ProblemInstance inst = make_workload(n);
    const Application& app = *inst.app;
    const DedicatedPlatform* platform = &inst.platform;

    const double analyze_ms =
        benchutil::time_ms([&] { analyze(app, verify_options(false, false), platform); });
    const double emit_ms =
        benchutil::time_ms([&] { analyze(app, verify_options(true, false), platform); });
    const double check_ms =
        benchutil::time_ms([&] { analyze(app, verify_options(true, true), platform); });

    const AnalysisResult result = analyze(app, verify_options(true, false), platform);
    const Certificate& cert = *result.certificate;
    const double check_only_ms =
        benchutil::time_ms([&] { check_certificate(cert, app, platform); });
    const std::string text = certificate_json(cert).dump(2);
    const double round_trip_ms = benchutil::time_ms([&] {
      const Certificate reparsed = parse_certificate_text(certificate_json(cert).dump(2));
      benchmark::DoNotOptimize(reparsed.num_tasks);
    });

    const double overhead = analyze_ms > 0 ? check_ms / analyze_ms : 0.0;
    char a[32], e[32], c[32], co[32], rt[32], kib[32], ov[32];
    std::snprintf(a, sizeof a, "%.3f", analyze_ms);
    std::snprintf(e, sizeof e, "%.3f", emit_ms);
    std::snprintf(c, sizeof c, "%.3f", check_ms);
    std::snprintf(co, sizeof co, "%.3f", check_only_ms);
    std::snprintf(rt, sizeof rt, "%.3f", round_trip_ms);
    std::snprintf(kib, sizeof kib, "%.1f", static_cast<double>(text.size()) / 1024.0);
    std::snprintf(ov, sizeof ov, "%.2fx", overhead);
    t.add(n, a, e, c, co, rt, kib, ov);

    Json point = Json::object();
    point.set("tasks", static_cast<std::int64_t>(n))
        .set("analyze_ms", analyze_ms)
        .set("emit_ms", emit_ms)
        .set("check_ms", check_ms)
        .set("check_only_ms", check_only_ms)
        .set("round_trip_ms", round_trip_ms)
        .set("cert_bytes", static_cast<std::int64_t>(text.size()))
        .set("check_overhead", overhead);
    series.push(std::move(point));
  }

  std::printf("== certificate layer cost (dedicated model, joint rows) ==\n%s\n",
              t.to_string().c_str());
  benchutil::export_csv(t, "BENCH_verify");

  Json root = Json::object();
  root.set("config", "dedicated+joint");
  root.set("series", std::move(series));
  benchutil::export_json(root, "BENCH_verify");
}

void BM_EmitCertificate(benchmark::State& state) {
  ProblemInstance inst = make_workload(static_cast<std::size_t>(state.range(0)));
  const AnalysisOptions options = verify_options(true, false);
  const AnalysisResult result = analyze(*inst.app, options, &inst.platform);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        build_certificate(*inst.app, options, &inst.platform, result));
  }
}
BENCHMARK(BM_EmitCertificate)->RangeMultiplier(2)->Range(16, 128);

void BM_CheckCertificate(benchmark::State& state) {
  ProblemInstance inst = make_workload(static_cast<std::size_t>(state.range(0)));
  const AnalysisOptions options = verify_options(true, false);
  const AnalysisResult result = analyze(*inst.app, options, &inst.platform);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        check_certificate(*result.certificate, *inst.app, &inst.platform).valid);
  }
}
BENCHMARK(BM_CheckCertificate)->RangeMultiplier(2)->Range(16, 128);

}  // namespace

int main(int argc, char** argv) {
  run_report();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
