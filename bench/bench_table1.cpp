// Experiment T1/S2/S3 (DESIGN.md): regenerate the paper's Table 1, the
// step-2 partitions, the step-3 demands and bounds -- paper value next to
// measured value -- then microbenchmark the step-1/2/3 pipeline.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "src/common/table.hpp"
#include "bench_util.hpp"
#include "src/core/analysis.hpp"
#include "src/core/overlap.hpp"
#include "src/workload/paper_example.hpp"
#include "src/workload/taskset_gen.hpp"

using namespace rtlb;

namespace {

void print_report() {
  ProblemInstance inst = paper_example();
  const Application& app = *inst.app;
  AnalysisOptions options;
  options.model = SystemModel::Dedicated;
  const AnalysisResult result = analyze(app, options, &inst.platform);

  std::printf("== Experiment T1: Table 1 (paper vs measured) ==\n");
  const ExpectedWindows expected = paper_expected_windows();
  Table t({"Task", "E_i (paper)", "E_i (ours)", "L_i (paper)", "L_i (ours)", "match"});
  bool all = true;
  for (int i = 0; i < 15; ++i) {
    const TaskId id = app.find_task("T" + std::to_string(i + 1));
    const bool match = result.windows.est[id] == expected.est[i] &&
                       result.windows.lct[id] == expected.lct[i];
    all &= match;
    t.add(app.task(id).name, expected.est[i], result.windows.est[id], expected.lct[i],
          result.windows.lct[id], match ? "yes" : "NO");
  }
  benchutil::export_csv(t, "table1_windows");
  std::printf("%s(expected values are Table 1 with the paper's three typos corrected;\n"
              " see EXPERIMENTS.md)\noverall: %s\n\n",
              t.to_string().c_str(), all ? "MATCH" : "MISMATCH");

  std::printf("== Experiment S2: step-2 partitions ==\n%s",
              format_partitions(app, result.partitions).c_str());
  std::printf("paper: ST_P1 = {1,2,3,4,5} < {9} < {10,11,13,14} < {12,15}\n");
  std::printf("       ST_P2 = {6,7} < {8};  ST_r1 = {1,2} < {5} < {10,13,14} < {15}\n");
  std::printf("(T12's block follows from the corrected E_12 = 25; windows match:\n"
              " [0,15], [16,19], [19,30], [30,36] as in the paper)\n\n");

  std::printf("== Experiment S3: step-3 demands and bounds ==\n");
  const ResourceId p1 = inst.catalog->find("P1");
  const std::vector<TaskId> st = app.tasks_using(p1);
  Table d({"quantity", "paper", "measured"});
  d.add("Theta(P1,0,3)", 6, demand(app, result.windows, st, 0, 3));
  d.add("Theta(P1,3,6)", 9, demand(app, result.windows, st, 3, 6));
  d.add("Theta(P1,3,8)", 11, demand(app, result.windows, st, 3, 8));
  d.add("LB_P1", 3, result.bound_for(p1).value());
  d.add("LB_P2", 2, result.bound_for(inst.catalog->find("P2")).value());
  d.add("LB_r1", 2, result.bound_for(inst.catalog->find("r1")).value());
  benchutil::export_csv(d, "table1_bounds");
  std::printf("%s\n", d.to_string().c_str());
}

void BM_PaperExampleFullAnalysis(benchmark::State& state) {
  ProblemInstance inst = paper_example();
  AnalysisOptions options;
  options.model = SystemModel::Dedicated;
  for (auto _ : state) {
    benchmark::DoNotOptimize(analyze(*inst.app, options, &inst.platform));
  }
}
BENCHMARK(BM_PaperExampleFullAnalysis);

void BM_WindowsScaling(benchmark::State& state) {
  WorkloadParams params;
  params.seed = 11;
  params.num_tasks = static_cast<std::size_t>(state.range(0));
  params.num_layers = params.num_tasks / 5 + 1;
  ProblemInstance inst = generate_workload(params);
  SharedMergeOracle oracle;
  for (auto _ : state) {
    benchmark::DoNotOptimize(compute_windows(*inst.app, oracle));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_WindowsScaling)->RangeMultiplier(2)->Range(64, 1024)->Complexity();

void BM_FullAnalysisScaling(benchmark::State& state) {
  WorkloadParams params;
  params.seed = 12;
  params.num_tasks = static_cast<std::size_t>(state.range(0));
  params.num_layers = params.num_tasks / 5 + 1;
  ProblemInstance inst = generate_workload(params);
  for (auto _ : state) {
    benchmark::DoNotOptimize(analyze(*inst.app));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_FullAnalysisScaling)->RangeMultiplier(2)->Range(64, 512)->Complexity();

}  // namespace

int main(int argc, char** argv) {
  print_report();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
