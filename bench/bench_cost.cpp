// Experiment S4 (DESIGN.md): the step-4 cost bounds on the paper example
// (shared weighted sum; dedicated ILP with solution x = (2,1,2)), plus a
// sweep of ILP-vs-LP-relaxation gaps on random workloads (Section 7's remark
// that the relaxation is a weaker but valid bound), and ILP solve timing.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "src/common/table.hpp"
#include "src/core/analysis.hpp"
#include "src/core/joint_bound.hpp"
#include "src/workload/paper_example.hpp"
#include "src/workload/taskset_gen.hpp"

using namespace rtlb;

namespace {

void print_report() {
  {
    ProblemInstance inst = paper_example();
    AnalysisOptions options;
    options.model = SystemModel::Dedicated;
    const AnalysisResult result = analyze(*inst.app, options, &inst.platform);

    std::printf("== Experiment S4: step-4 cost bounds on the paper example ==\n");
    std::printf("shared:    cost >= 3*CostR(P1) + 2*CostR(P2) + 2*CostR(r1)"
                " = 3*5 + 2*7 + 2*4 = %lld\n",
                static_cast<long long>(result.shared_cost.total));
    const auto& ded = *result.dedicated_cost;
    std::printf("dedicated: ILP x = (%lld,%lld,%lld)  [paper: (2,1,2)],"
                " cost >= %lld, LP relaxation %.2f\n\n",
                static_cast<long long>(ded.node_counts[0]),
                static_cast<long long>(ded.node_counts[1]),
                static_cast<long long>(ded.node_counts[2]),
                static_cast<long long>(ded.total), ded.relaxation);
  }

  std::printf("== ILP vs LP relaxation across random workloads ==\n");
  Table t({"seed", "tasks", "node types", "LP relax", "ILP", "gap %", "B&B nodes"});
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    WorkloadParams params;
    params.seed = seed * 17;
    params.num_tasks = 18;
    params.num_proc_types = 2;
    params.num_resources = 2;
    params.resource_prob = 0.5;
    params.laxity = 1.6;
    ProblemInstance inst = generate_workload(params);
    AnalysisOptions options;
    options.model = SystemModel::Dedicated;
    const AnalysisResult result = analyze(*inst.app, options, &inst.platform);
    if (!result.dedicated_cost || !result.dedicated_cost->feasible) continue;
    const auto& ded = *result.dedicated_cost;
    const double gap =
        ded.total > 0 ? 100.0 * (static_cast<double>(ded.total) - ded.relaxation) /
                            static_cast<double>(ded.total)
                      : 0.0;
    char relax[32], gap_s[32];
    std::snprintf(relax, sizeof relax, "%.2f", ded.relaxation);
    std::snprintf(gap_s, sizeof gap_s, "%.1f", gap);
    t.add(seed * 17, inst.app->num_tasks(), inst.platform.num_node_types(), relax,
          ded.total, gap_s, ded.ilp_nodes);
  }
  std::printf("%s(the ILP is always >= its relaxation; both are valid floors)\n\n",
              t.to_string().c_str());

  std::printf("== Extension: conjunctive (joint) rows vs plain Section-7 rows ==\n");
  Table j({"seed", "pairs", "plain ILP", "joint ILP", "gain %"});
  int improved = 0;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    WorkloadParams params;
    params.seed = seed * 43;
    params.num_tasks = 16;
    params.num_proc_types = 1;
    params.num_resources = 2;
    params.resource_prob = 0.6;
    params.laxity = 1.3;
    ProblemInstance inst = generate_workload(params);
    // The generator prices nodes additively, which never favors buying
    // single-resource nodes over combos; real integration carries a premium.
    // Doubling multi-resource node costs creates the split-supply economics
    // where the conjunctive rows matter.
    DedicatedPlatform menu;
    for (const NodeType& node : inst.platform.node_types()) {
      NodeType priced = node;
      if (priced.resources.size() >= 2) priced.cost *= 2;
      menu.add_node_type(std::move(priced));
    }
    AnalysisOptions options;
    options.model = SystemModel::Dedicated;
    const AnalysisResult result = analyze(*inst.app, options, &menu);
    if (!result.dedicated_cost || !result.dedicated_cost->feasible) continue;
    const auto joint = joint_lower_bounds(*inst.app, result.windows);
    const DedicatedCostBound strong =
        dedicated_cost_bound_joint(*inst.app, menu, result.bounds, joint);
    if (!strong.feasible) continue;
    const Cost plain_total = result.dedicated_cost->total;
    const double gain =
        plain_total > 0
            ? 100.0 * static_cast<double>(strong.total - plain_total) /
                  static_cast<double>(plain_total)
            : 0.0;
    if (strong.total > plain_total) ++improved;
    char gain_s[16];
    std::snprintf(gain_s, sizeof gain_s, "%.1f", gain);
    j.add(seed * 43, joint.size(), plain_total, strong.total, gain_s);
  }
  std::printf("%sjoint rows strictly tightened %d workloads (they can never loosen;\n"
              " the gap appears when a pair's supply is split across node types --\n"
              " see tests/test_joint_bound.cpp for a certified instance)\n\n",
              j.to_string().c_str(), improved);
}

void BM_DedicatedCostBoundPaper(benchmark::State& state) {
  ProblemInstance inst = paper_example();
  AnalysisOptions options;
  options.model = SystemModel::Dedicated;
  const AnalysisResult result = analyze(*inst.app, options, &inst.platform);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dedicated_cost_bound(*inst.app, inst.platform, result.bounds));
  }
}
BENCHMARK(BM_DedicatedCostBoundPaper);

void BM_IlpScalingWithMenuSize(benchmark::State& state) {
  WorkloadParams params;
  params.seed = 5;
  params.num_tasks = 24;
  params.num_proc_types = static_cast<std::size_t>(state.range(0));
  params.num_resources = 3;
  params.resource_prob = 0.5;
  ProblemInstance inst = generate_workload(params);
  const AnalysisResult result = analyze(*inst.app);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dedicated_cost_bound(*inst.app, inst.platform, result.bounds));
  }
}
BENCHMARK(BM_IlpScalingWithMenuSize)->DenseRange(1, 4);

}  // namespace

int main(int argc, char** argv) {
  print_report();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
