// Periodic-workload experiments (the paper's domain, beyond its single-shot
// example):
//  (a) hyperperiod unrolling -- the analysis cost and partition-block count
//      scale with the number of slots, while LB_r stabilizes once the
//      steady-state slot is represented;
//  (b) communication-to-computation ratio (CCR) -- how communication
//      pressure moves the bounds on DAG workloads (the standard knob of the
//      scheduling literature).
#include <benchmark/benchmark.h>

#include <cstdio>

#include "src/common/table.hpp"
#include "src/core/analysis.hpp"
#include "src/workload/workload.hpp"
#include "src/workload/taskset_gen.hpp"

using namespace rtlb;

namespace {

/// A base transaction set whose hyperperiod we stretch with a long slow
/// transaction: fast control loop + medium sensor loop on 2 proc types.
std::vector<Transaction> transaction_set(const ResourceCatalog& catalog, Time slow_period) {
  const ResourceId p1 = catalog.find("P1");
  const ResourceId p2 = catalog.find("P2");
  Transaction fast;
  fast.name = "fast";
  fast.period = 10;
  fast.tasks = {PeriodicTask{"a", 3, 0, 0, p1, {}, false},
                PeriodicTask{"b", 2, 0, 0, p1, {}, false}};
  fast.edges = {{0, 1, 1}};
  Transaction medium;
  medium.name = "med";
  medium.period = 20;
  medium.tasks = {PeriodicTask{"x", 5, 0, 0, p2, {}, false},
                  PeriodicTask{"y", 4, 0, 0, p1, {}, false}};
  medium.edges = {{0, 1, 2}};
  Transaction slow;
  slow.name = "slow";
  slow.period = slow_period;
  slow.tasks = {PeriodicTask{"s", 6, 0, 0, p2, {}, false}};
  return {fast, medium, slow};
}

void print_report() {
  ResourceCatalog catalog;
  catalog.add_processor_type("P1", 5);
  catalog.add_processor_type("P2", 7);

  std::printf("== Hyperperiod unrolling: slots, blocks, bounds ==\n");
  Table t({"slow period", "hyperperiod", "tasks", "blocks P1", "LB_P1", "LB_P2"});
  for (Time slow : {20, 40, 80, 160, 320}) {
    const auto transactions = transaction_set(catalog, slow);
    const Application app = unroll(catalog, transactions);
    const AnalysisResult res = analyze(app);
    std::size_t blocks_p1 = 0;
    for (const ResourcePartition& p : res.partitions) {
      if (p.resource == catalog.find("P1")) blocks_p1 = p.blocks.size();
    }
    t.add(slow, hyperperiod(transactions), app.num_tasks(), blocks_p1,
          res.bound_for(catalog.find("P1")).value(), res.bound_for(catalog.find("P2")).value());
  }
  std::printf("%s(the bound stabilizes once one steady-state slot is represented;\n"
              " blocks grow with slots, keeping per-block work flat -- Theorem 5 is\n"
              " what makes long hyperperiods tractable)\n\n",
              t.to_string().c_str());

  std::printf("== CCR sweep on random DAG workloads (laxity 1.4) ==\n");
  Table c({"CCR", "seed", "LB_P1", "LB_P2", "window-infeasible"});
  for (double ccr : {0.1, 0.5, 1.0, 2.0, 5.0}) {
    for (std::uint64_t seed : {11ull, 22ull}) {
      WorkloadParams params;
      params.seed = seed;
      params.num_tasks = 20;
      params.num_proc_types = 2;
      params.num_resources = 0;
      params.laxity = 1.4;
      params.ccr = ccr;
      ProblemInstance inst = generate_workload(params);
      const AnalysisResult res = analyze(*inst.app);
      char f[16];
      std::snprintf(f, sizeof f, "%.1f", ccr);
      c.add(f, seed, res.bound_for(inst.catalog->find("P1")).value(),
            res.bound_for(inst.catalog->find("P2")).value(),
            res.infeasible(*inst.app) ? "yes" : "no");
    }
  }
  std::printf("%s(deadlines scale with the comm-aware critical path, so higher CCR\n"
              " mostly widens absolute windows; merging absorbs co-locatable\n"
              " messages and the bounds stay driven by processor contention)\n\n",
              c.to_string().c_str());
}

void BM_UnrollScaling(benchmark::State& state) {
  ResourceCatalog catalog;
  catalog.add_processor_type("P1", 5);
  catalog.add_processor_type("P2", 7);
  const auto transactions = transaction_set(catalog, state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(unroll(catalog, transactions));
  }
}
BENCHMARK(BM_UnrollScaling)->RangeMultiplier(2)->Range(20, 320);

void BM_AnalyzeUnrolled(benchmark::State& state) {
  ResourceCatalog catalog;
  catalog.add_processor_type("P1", 5);
  catalog.add_processor_type("P2", 7);
  const Application app = unroll(catalog, transaction_set(catalog, state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(analyze(app));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_AnalyzeUnrolled)->RangeMultiplier(2)->Range(20, 320)->Complexity();

}  // namespace

int main(int argc, char** argv) {
  print_report();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
