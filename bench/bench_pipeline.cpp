// Per-stage cost profile of the unified analysis pipeline, plus the price
// of the instrumentation itself.
//
// Two questions, answered on a generated workload and on the delta-sweep
// shape bench_session uses:
//  (a) where does a cold run spend its time? One traced run per rep; the
//      per-stage span durations (lint_gate / windows / partitions / bounds
//      / costs) are recorded per rep and summarized as MEDIANS, so a perf
//      regression shows up AS a stage, not as an undifferentiated total.
//  (b) what does tracing cost? The same run is timed with options.trace
//      null (the shipping configuration) and with a live Trace; the
//      null-pointer design means the disabled overhead must stay under 1%
//      (the acceptance bar; see src/obs/trace.hpp).
//
// Measurement discipline: traced and untraced iterations are INTERLEAVED
// (u, t, u, t, ...) and summarized by median. The original back-to-back
// design (all untraced reps, then all traced reps) let any drift between
// the two batches -- frequency scaling, cache warmup, a background process
// -- land entirely on one side, which is how the committed profile once
// reported a negative tracing overhead (-0.62%). Interleaving puts drift on
// both sides equally; medians discard the outlier iterations entirely.
//
// Results go to BENCH_pipeline.json (benchutil::export_json), including
// hardware_concurrency and a "degraded" flag that is true when the run asked
// for more workers than the machine has -- numbers from such a run measure
// oversubscription, not the engine.
//
// RTLB_BENCH_REPS overrides the rep count (CI smoke runs set it to 1, which
// keeps the schema intact while costing one pipeline run per side).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "src/common/thread_pool.hpp"
#include "src/core/pipeline.hpp"
#include "src/obs/trace.hpp"
#include "src/workload/taskset_gen.hpp"

using namespace rtlb;

namespace {

double median(std::vector<double> v) {
  if (v.empty()) return 0.0;
  const std::size_t mid = v.size() / 2;
  std::nth_element(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(mid), v.end());
  double m = v[mid];
  if (v.size() % 2 == 0) {
    m = (m + *std::max_element(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(mid))) / 2.0;
  }
  return m;
}

double time_once_ms(const std::function<void()>& fn) {
  const auto start = std::chrono::steady_clock::now();
  fn();
  const auto stop = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(stop - start).count();
}

int rep_count() {
  if (const char* env = std::getenv("RTLB_BENCH_REPS")) {
    const int reps = std::atoi(env);
    if (reps > 0) return reps;
  }
  return 9;
}

/// True (with a stderr warning) when the options ask for more workers than
/// the machine has -- the timings then measure oversubscription.
bool check_degraded(int num_threads) {
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  const unsigned requested = ThreadPool::resolve_threads(num_threads);
  if (requested <= hw) return false;
  std::fprintf(stderr,
               "warning: benchmark requested %u workers on %u hardware threads; "
               "timings are degraded by oversubscription\n",
               requested, hw);
  return true;
}

void run_report() {
  WorkloadParams params;
  params.seed = 61;
  params.num_tasks = 192;
  params.laxity = 1.3;
  ProblemInstance inst = generate_workload(params);

  AnalysisOptions options;
  options.lower_bound.enable_pruning = true;

  const int reps = rep_count();
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  const bool degraded = check_degraded(options.lower_bound.num_threads);

  // Interleaved u/t iterations; traced reps also carry the stage spans.
  Trace trace;
  AnalysisOptions traced_options = options;
  traced_options.trace = &trace;
  std::vector<double> untraced_samples, traced_samples;
  std::map<std::string, std::vector<double>> stage_samples;
  for (int i = 0; i < reps; ++i) {
    untraced_samples.push_back(time_once_ms(
        [&] { benchmark::DoNotOptimize(run_pipeline(*inst.app, options)); }));
    trace.clear();
    traced_samples.push_back(time_once_ms(
        [&] { benchmark::DoNotOptimize(run_pipeline(*inst.app, traced_options)); }));
    std::map<std::string, double> rep_totals;
    for (const TraceSpan& span : trace.spans()) {
      rep_totals[span.name] += static_cast<double>(span.dur_ns) / 1e6;
    }
    for (const auto& [name, ms] : rep_totals) stage_samples[name].push_back(ms);
  }

  const double untraced_ms = median(untraced_samples);
  const double traced_ms = median(traced_samples);
  const double overhead_pct =
      untraced_ms > 0 ? 100.0 * (traced_ms - untraced_ms) / untraced_ms : 0;

  Table t({"stage", "median ms"});
  double pipeline_ms = 0;
  std::map<std::string, double> stages;
  for (const auto& [name, samples] : stage_samples) {
    const double ms = median(samples);
    stages[name] = ms;
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.3f", ms);
    t.add(name, buf);
    if (name == "pipeline") pipeline_ms = ms;
  }
  std::printf("== per-stage pipeline profile (%zu tasks, %d interleaved reps) ==\n%s\n",
              static_cast<std::size_t>(params.num_tasks), reps, t.to_string().c_str());
  std::printf("untraced %.3f ms, traced %.3f ms (overhead %.2f%%, medians)\n\n",
              untraced_ms, traced_ms, overhead_pct);
  benchutil::export_csv(t, "bench_pipeline_stages");

  Json root = Json::object();
  Json workload = Json::object();
  workload.set("seed", static_cast<std::int64_t>(params.seed))
      .set("num_tasks", static_cast<std::int64_t>(params.num_tasks))
      .set("laxity", params.laxity);
  root.set("workload", std::move(workload));
  Json stage_json = Json::object();
  for (const auto& [name, ms] : stages) {
    if (name != "pipeline") stage_json.set(name, ms);
  }
  root.set("stages_ms", std::move(stage_json));
  root.set("pipeline_ms", pipeline_ms);
  root.set("untraced_ms", untraced_ms);
  root.set("traced_ms", traced_ms);
  root.set("trace_overhead_percent", overhead_pct);
  root.set("reps", static_cast<std::int64_t>(reps));
  root.set("hardware_concurrency", static_cast<std::int64_t>(hw));
  root.set("degraded", degraded);
  benchutil::export_json(root, "BENCH_pipeline");
}

void BM_PipelineUntraced(benchmark::State& state) {
  WorkloadParams params;
  params.seed = 61;
  params.num_tasks = static_cast<std::size_t>(state.range(0));
  ProblemInstance inst = generate_workload(params);
  AnalysisOptions options;
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_pipeline(*inst.app, options));
  }
}
BENCHMARK(BM_PipelineUntraced)->RangeMultiplier(2)->Range(32, 128);

void BM_PipelineTraced(benchmark::State& state) {
  WorkloadParams params;
  params.seed = 61;
  params.num_tasks = static_cast<std::size_t>(state.range(0));
  ProblemInstance inst = generate_workload(params);
  Trace trace;
  AnalysisOptions options;
  options.trace = &trace;
  for (auto _ : state) {
    trace.clear();
    benchmark::DoNotOptimize(run_pipeline(*inst.app, options));
  }
}
BENCHMARK(BM_PipelineTraced)->RangeMultiplier(2)->Range(32, 128);

}  // namespace

int main(int argc, char** argv) {
  run_report();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
