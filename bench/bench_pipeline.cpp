// Per-stage cost profile of the unified analysis pipeline, plus the price
// of the instrumentation itself.
//
// Two questions, answered on a generated workload and on the delta-sweep
// shape bench_session uses:
//  (a) where does a cold run spend its time? One traced run per rep; the
//      per-stage span durations (lint_gate / windows / partitions / bounds
//      / costs) are averaged and recorded, so a perf regression shows up AS
//      a stage, not as an undifferentiated total.
//  (b) what does tracing cost? The same run is timed with options.trace
//      null (the shipping configuration) and with a live Trace; the
//      null-pointer design means the disabled overhead must stay under 1%
//      (the acceptance bar; see src/obs/trace.hpp).
// Results go to BENCH_pipeline.json (benchutil::export_json).
#include <benchmark/benchmark.h>

#include <cstdio>
#include <map>
#include <string>

#include "bench_util.hpp"
#include "src/core/pipeline.hpp"
#include "src/obs/trace.hpp"
#include "src/workload/taskset_gen.hpp"

using namespace rtlb;

namespace {

/// Mean per-stage span durations (ms) over `reps` traced cold runs.
std::map<std::string, double> stage_profile(const Application& app,
                                            const AnalysisOptions& base, int reps) {
  std::map<std::string, double> totals;
  for (int i = 0; i < reps; ++i) {
    Trace trace;
    AnalysisOptions options = base;
    options.trace = &trace;
    benchmark::DoNotOptimize(run_pipeline(app, options));
    for (const TraceSpan& span : trace.spans()) {
      totals[span.name] += static_cast<double>(span.dur_ns) / 1e6;
    }
  }
  for (auto& [name, ms] : totals) ms /= reps;
  return totals;
}

void run_report() {
  WorkloadParams params;
  params.seed = 61;
  params.num_tasks = 192;
  params.laxity = 1.3;
  ProblemInstance inst = generate_workload(params);

  AnalysisOptions options;
  options.lower_bound.enable_pruning = true;

  const int kReps = 5;
  const std::map<std::string, double> stages = stage_profile(*inst.app, options, kReps);

  // Overhead: identical runs, trace pointer null vs live.
  const double untraced_ms =
      benchutil::time_ms([&] { benchmark::DoNotOptimize(run_pipeline(*inst.app, options)); });
  Trace trace;
  AnalysisOptions traced = options;
  traced.trace = &trace;
  const double traced_ms = benchutil::time_ms([&] {
    trace.clear();
    benchmark::DoNotOptimize(run_pipeline(*inst.app, traced));
  });
  const double overhead_pct =
      untraced_ms > 0 ? 100.0 * (traced_ms - untraced_ms) / untraced_ms : 0;

  Table t({"stage", "mean ms"});
  double pipeline_ms = 0;
  for (const auto& [name, ms] : stages) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.3f", ms);
    t.add(name, buf);
    if (name == "pipeline") pipeline_ms = ms;
  }
  std::printf("== per-stage pipeline profile (%zu tasks, %d reps) ==\n%s\n",
              static_cast<std::size_t>(params.num_tasks), kReps, t.to_string().c_str());
  std::printf("untraced %.3f ms, traced %.3f ms (overhead %.2f%%)\n\n", untraced_ms,
              traced_ms, overhead_pct);
  benchutil::export_csv(t, "bench_pipeline_stages");

  Json root = Json::object();
  Json workload = Json::object();
  workload.set("seed", static_cast<std::int64_t>(params.seed))
      .set("num_tasks", static_cast<std::int64_t>(params.num_tasks))
      .set("laxity", params.laxity);
  root.set("workload", std::move(workload));
  Json stage_json = Json::object();
  for (const auto& [name, ms] : stages) {
    if (name != "pipeline") stage_json.set(name, ms);
  }
  root.set("stages_ms", std::move(stage_json));
  root.set("pipeline_ms", pipeline_ms);
  root.set("untraced_ms", untraced_ms);
  root.set("traced_ms", traced_ms);
  root.set("trace_overhead_percent", overhead_pct);
  benchutil::export_json(root, "BENCH_pipeline");
}

void BM_PipelineUntraced(benchmark::State& state) {
  WorkloadParams params;
  params.seed = 61;
  params.num_tasks = static_cast<std::size_t>(state.range(0));
  ProblemInstance inst = generate_workload(params);
  AnalysisOptions options;
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_pipeline(*inst.app, options));
  }
}
BENCHMARK(BM_PipelineUntraced)->RangeMultiplier(2)->Range(32, 128);

void BM_PipelineTraced(benchmark::State& state) {
  WorkloadParams params;
  params.seed = 61;
  params.num_tasks = static_cast<std::size_t>(state.range(0));
  ProblemInstance inst = generate_workload(params);
  Trace trace;
  AnalysisOptions options;
  options.trace = &trace;
  for (auto _ : state) {
    trace.clear();
    benchmark::DoNotOptimize(run_pipeline(*inst.app, options));
  }
}
BENCHMARK(BM_PipelineTraced)->RangeMultiplier(2)->Range(32, 128);

}  // namespace

int main(int argc, char** argv) {
  run_report();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
