// Experiment C2 (DESIGN.md): "the bounds can serve as a baseline for
// evaluating scheduling algorithms." The bracket
//
//     LB_r  <=  exhaustive optimum  <=  EDF-provisioned units
//
// is measured on small instances (exact optimum) and medium instances
// (heuristic upper bound). The distance of each side from LB_r is the
// quantity a designer reads off: bound quality below, heuristic quality
// above.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>

#include "src/common/random.hpp"
#include "src/common/table.hpp"
#include "bench_util.hpp"
#include "src/core/analysis.hpp"
#include "src/model/io.hpp"
#include "src/sched/list_scheduler.hpp"
#include "src/sched/optimal.hpp"
#include "src/workload/taskset_gen.hpp"

using namespace rtlb;

namespace {

/// Small instances with bounded horizons for the exhaustive search.
ProblemInstance small_instance(std::uint64_t seed) {
  Rng rng(seed);
  ProblemInstance inst;
  inst.catalog = std::make_unique<ResourceCatalog>();
  const ResourceId p = inst.catalog->add_processor_type("P", 5);
  const ResourceId r = inst.catalog->add_resource("r", 2);
  inst.app = std::make_unique<Application>(*inst.catalog);
  const std::size_t n = static_cast<std::size_t>(rng.uniform(4, 6));
  for (std::size_t i = 0; i < n; ++i) {
    Task t;
    t.name = "t" + std::to_string(i);
    t.comp = rng.uniform(1, 3);
    t.release = rng.uniform(0, 2);
    t.deadline = t.release + t.comp + rng.uniform(0, 4);
    t.proc = p;
    if (rng.chance(0.4)) t.resources = {r};
    inst.app->add_task(std::move(t));
  }
  for (std::uint32_t u = 0; u < n; ++u) {
    for (std::uint32_t v = u + 1; v < n; ++v) {
      if (rng.chance(0.2)) {
        const Time m = rng.uniform(0, 2);
        inst.app->add_edge(u, v, m);
        Task& tv = inst.app->task(v);
        tv.deadline = std::max(tv.deadline, inst.app->task(u).release +
                                                inst.app->task(u).comp + m + tv.comp + 2);
      }
    }
  }
  inst.app->validate();
  return inst;
}

void print_report() {
  std::printf("== Experiment C2a: LB vs exact optimum (small instances) ==\n");
  Table t({"seed", "resource", "LB_r", "exact min units", "gap"});
  int exact_hits = 0, rows = 0;
  for (std::uint64_t seed = 1; seed <= 14; ++seed) {
    ProblemInstance inst = small_instance(seed);
    const AnalysisResult res = analyze(*inst.app);
    if (res.infeasible(*inst.app)) continue;
    SearchLimits limits;
    limits.max_window = 48;
    limits.max_nodes = 50'000'000;
    for (const ResourceBound& b : res.bounds) {
      Capacities generous(inst.catalog->size(), 4);
      const auto min_units =
          min_units_exhaustive(*inst.app, b.resource, generous, 4, limits);
      if (!min_units.has_value()) continue;
      ++rows;
      if (*min_units == b.bound) ++exact_hits;
      t.add(seed, inst.catalog->name(b.resource), b.bound, *min_units,
            *min_units - b.bound);
    }
  }
  benchutil::export_csv(t, "tightness_exact");
  std::printf("%sbound exactly tight on %d of %d resource instances\n\n",
              t.to_string().c_str(), exact_hits, rows);

  std::printf("== Experiment C2b: LB vs EDF-provisioned units (medium instances) ==\n");
  Table m({"seed", "tasks", "resource", "LB_r", "EDF units", "gap"});
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    WorkloadParams params;
    params.seed = seed * 29;
    params.num_tasks = 24;
    params.num_proc_types = 2;
    params.num_resources = 1;
    params.laxity = 1.8;
    ProblemInstance inst = generate_workload(params);
    const AnalysisResult res = analyze(*inst.app);
    if (res.infeasible(*inst.app)) continue;
    Capacities start(inst.catalog->size(), 0);
    for (const ResourceBound& b : res.bounds) {
      start.set(b.resource, static_cast<int>(b.bound));
    }
    const ProvisioningResult prov = provision_shared(*inst.app, start, 80);
    if (!prov.feasible) continue;
    for (const ResourceBound& b : res.bounds) {
      m.add(seed * 29, inst.app->num_tasks(), inst.catalog->name(b.resource), b.bound,
            prov.caps.of(b.resource), prov.caps.of(b.resource) - b.bound);
    }
  }
  benchutil::export_csv(m, "tightness_heuristic");
  std::printf("%s(gap = heuristic overprovisioning the designer would pay; LB_r is the\n"
              " floor no scheduler can beat)\n\n",
              m.to_string().c_str());
}

void BM_ExhaustiveSearchSmall(benchmark::State& state) {
  ProblemInstance inst = small_instance(3);
  Capacities caps(inst.catalog->size(), 2);
  SearchLimits limits;
  limits.max_window = 48;
  for (auto _ : state) {
    benchmark::DoNotOptimize(exists_feasible_schedule_shared(*inst.app, caps, limits));
  }
}
BENCHMARK(BM_ExhaustiveSearchSmall);

void BM_ListSchedulerMedium(benchmark::State& state) {
  WorkloadParams params;
  params.seed = 29;
  params.num_tasks = static_cast<std::size_t>(state.range(0));
  params.laxity = 2.0;
  ProblemInstance inst = generate_workload(params);
  Capacities caps(inst.catalog->size(), 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(list_schedule_shared(*inst.app, caps));
  }
}
BENCHMARK(BM_ListSchedulerMedium)->RangeMultiplier(2)->Range(16, 256);

}  // namespace

int main(int argc, char** argv) {
  print_report();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
