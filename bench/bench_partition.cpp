// Experiment F6/T5 (DESIGN.md): Theorem 5 operationally -- per-block
// evaluation returns exactly the same LB_r as scanning the full range of
// ST_r while evaluating far fewer candidate intervals. The report shows
// bound equality, interval counts, and block statistics across workload
// sizes; the timed section measures the wall-clock effect.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "src/common/table.hpp"
#include "bench_util.hpp"
#include "src/core/analysis.hpp"
#include "src/workload/taskset_gen.hpp"

using namespace rtlb;

namespace {

/// Frame-structured workload: the application runs as F periodic frames of
/// ~10 tasks each; every frame's tasks are released at the frame start and
/// due by the frame end. This is the classic phased shape of control-loop
/// applications (and of the paper's own example, whose ST_P1 splits into
/// four blocks): each frame becomes one partition block. On a single flat
/// burst of work the partition degenerates to one block and saves nothing;
/// the paper targets exactly these phased task sets.
ProblemInstance frame_workload(std::size_t n, std::uint64_t seed) {
  constexpr std::size_t kFrameTasks = 10;
  const std::size_t frames = std::max<std::size_t>(1, n / kFrameTasks);
  Rng rng(seed);

  ProblemInstance inst;
  inst.catalog = std::make_unique<ResourceCatalog>();
  const ResourceId p = inst.catalog->add_processor_type("P1", 5);
  inst.app = std::make_unique<Application>(*inst.catalog);

  const Time period = 40;
  for (std::size_t f = 0; f < frames; ++f) {
    const Time frame_start = static_cast<Time>(f) * period;
    std::vector<TaskId> frame_ids;
    for (std::size_t k = 0; k < kFrameTasks; ++k) {
      Task t;
      t.name = "f" + std::to_string(f) + "_t" + std::to_string(k);
      t.comp = rng.uniform(2, 8);  // ~50 ticks of frame work in a 40-tick period
      t.release = frame_start;
      t.deadline = frame_start + period;
      t.proc = p;
      frame_ids.push_back(inst.app->add_task(std::move(t)));
    }
    // Sparse precedence inside the frame.
    for (std::size_t a = 0; a < kFrameTasks; ++a) {
      for (std::size_t b = a + 1; b < kFrameTasks; ++b) {
        if (rng.chance(0.15)) {
          inst.app->add_edge(frame_ids[a], frame_ids[b], rng.uniform(0, 2));
        }
      }
    }
  }
  inst.app->validate();
  return inst;
}

void print_report() {
  std::printf("== Experiment F6/T5: partitioned vs full-range bound evaluation ==\n");
  Table t({"tasks", "blocks", "largest block", "LB (part.)", "LB (naive)", "equal",
           "intervals (part.)", "intervals (naive)", "savings x"});
  for (std::size_t n : {50, 100, 200, 400, 800, 1600}) {
    ProblemInstance inst = frame_workload(n, 97);
    SharedMergeOracle oracle;
    const TaskWindows w = compute_windows(*inst.app, oracle);
    const ResourceId p = inst.catalog->find("P1");

    const ResourcePartition part = partition_tasks(*inst.app, w, p);
    std::size_t largest = 0;
    for (const auto& b : part.blocks) largest = std::max(largest, b.tasks.size());

    LowerBoundOptions with, without;
    with.use_partitioning = true;
    without.use_partitioning = false;
    const ResourceBound a = resource_lower_bound(*inst.app, w, p, with);
    const ResourceBound b = resource_lower_bound(*inst.app, w, p, without);

    char savings[32];
    std::snprintf(savings, sizeof savings, "%.1f",
                  static_cast<double>(b.intervals_evaluated) /
                      static_cast<double>(std::max<std::uint64_t>(1, a.intervals_evaluated)));
    t.add(n, part.blocks.size(), largest, a.bound, b.bound,
          a.bound == b.bound ? "yes" : "NO", a.intervals_evaluated, b.intervals_evaluated,
          savings);
  }
  benchutil::export_csv(t, "partition_savings");
  std::printf("%s(Theorem 5: identical bounds; the savings factor is the paper's\n"
              " complexity-reduction claim for Section 5)\n\n",
              t.to_string().c_str());

  std::printf("== Scan engine: serial vs parallel vs pruned (same bounds) ==\n");
  Table e({"tasks", "serial ms", "4-thread ms", "pruned ms", "4-thread+pruned ms",
           "speedup", "equal"});
  for (std::size_t n : {200, 400, 800, 1600}) {
    ProblemInstance inst = frame_workload(n, 97);
    SharedMergeOracle oracle;
    const TaskWindows w = compute_windows(*inst.app, oracle);
    const ResourceId p = inst.catalog->find("P1");

    auto run = [&](int threads, bool prune) {
      LowerBoundOptions opts;
      opts.num_threads = threads;
      opts.enable_pruning = prune;
      return resource_lower_bound(*inst.app, w, p, opts);
    };
    ResourceBound serial_bound, best_bound;
    const double serial_ms = benchutil::time_ms([&] { serial_bound = run(1, false); });
    const double par_ms = benchutil::time_ms([&] { run(4, false); });
    const double prune_ms = benchutil::time_ms([&] { run(1, true); });
    const double both_ms = benchutil::time_ms([&] { best_bound = run(4, true); });
    // Bound and peak density must match exactly; the pruned witness may
    // differ from the unpruned one only on an exact density tie.
    const bool equal = serial_bound.bound == best_bound.bound &&
                       serial_bound.peak_density == best_bound.peak_density;
    char s0[32], s1[32], s2[32], s3[32], sp[32];
    std::snprintf(s0, sizeof s0, "%.1f", serial_ms);
    std::snprintf(s1, sizeof s1, "%.1f", par_ms);
    std::snprintf(s2, sizeof s2, "%.1f", prune_ms);
    std::snprintf(s3, sizeof s3, "%.1f", both_ms);
    std::snprintf(sp, sizeof sp, "%.1f", both_ms > 0 ? serial_ms / both_ms : 0.0);
    e.add(n, s0, s1, s2, s3, sp, equal ? "yes" : "NO");
  }
  benchutil::export_csv(e, "engine_comparison");
  std::printf("%s(the parallel+pruned engine returns bit-identical bounds; see\n"
              " bench_contention for the BENCH_lower_bound.json record)\n\n",
              e.to_string().c_str());
}

void BM_BoundPartitioned(benchmark::State& state) {
  ProblemInstance inst = frame_workload(static_cast<std::size_t>(state.range(0)), 97);
  SharedMergeOracle oracle;
  const TaskWindows w = compute_windows(*inst.app, oracle);
  const ResourceId p = inst.catalog->find("P1");
  LowerBoundOptions opts;
  opts.use_partitioning = true;
  for (auto _ : state) {
    benchmark::DoNotOptimize(resource_lower_bound(*inst.app, w, p, opts));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_BoundPartitioned)->RangeMultiplier(2)->Range(50, 800)->Complexity();

void BM_BoundNaive(benchmark::State& state) {
  ProblemInstance inst = frame_workload(static_cast<std::size_t>(state.range(0)), 97);
  SharedMergeOracle oracle;
  const TaskWindows w = compute_windows(*inst.app, oracle);
  const ResourceId p = inst.catalog->find("P1");
  LowerBoundOptions opts;
  opts.use_partitioning = false;
  for (auto _ : state) {
    benchmark::DoNotOptimize(resource_lower_bound(*inst.app, w, p, opts));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_BoundNaive)->RangeMultiplier(2)->Range(50, 800)->Complexity();

void BM_BoundParallelPruned(benchmark::State& state) {
  ProblemInstance inst = frame_workload(static_cast<std::size_t>(state.range(0)), 97);
  SharedMergeOracle oracle;
  const TaskWindows w = compute_windows(*inst.app, oracle);
  const ResourceId p = inst.catalog->find("P1");
  LowerBoundOptions opts;
  opts.num_threads = 4;
  opts.enable_pruning = true;
  for (auto _ : state) {
    benchmark::DoNotOptimize(resource_lower_bound(*inst.app, w, p, opts));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_BoundParallelPruned)->RangeMultiplier(2)->Range(50, 800)->Complexity();

}  // namespace

int main(int argc, char** argv) {
  print_report();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
