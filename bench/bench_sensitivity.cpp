// Design-sensitivity experiments (the workflow of the paper's conclusion):
//  (a) LB_r and the cost floor as functions of deadline laxity -- from the
//      parallelism-forced peak down to the work-bound plateau;
//  (b) the same as functions of communication scaling;
//  (c) node-menu variants ranked by the dedicated cost bound, on the paper
//      example -- "modify the set of resources dedicated to a processor and
//      quickly estimate its effect on the overall system cost."
#include <benchmark/benchmark.h>

#include <cstdio>

#include "src/common/table.hpp"
#include "bench_util.hpp"
#include "src/core/sensitivity.hpp"
#include "src/workload/paper_example.hpp"
#include "src/workload/taskset_gen.hpp"

using namespace rtlb;

namespace {

void print_report() {
  WorkloadParams params;
  params.seed = 61;
  params.num_tasks = 24;
  params.num_proc_types = 2;
  params.num_resources = 1;
  params.resource_prob = 0.5;
  params.laxity = 1.0;  // anchor at the critical time; sweep relaxes from here
  ProblemInstance inst = generate_workload(params);
  const auto rs = inst.app->resource_set();

  std::printf("== LB_r vs deadline laxity (24-task workload, anchored at t_c) ==\n");
  {
    const std::vector<double> factors{1.0, 1.25, 1.5, 2.0, 3.0, 5.0, 10.0};
    const auto sweep = deadline_laxity_sweep(*inst.app, factors);
    std::vector<std::string> header{"laxity"};
    for (ResourceId r : rs) header.push_back("LB_" + inst.catalog->name(r));
    header.push_back("shared cost");
    Table t(header);
    for (const SweepPoint& p : sweep) {
      std::vector<std::string> row;
      char f[16];
      std::snprintf(f, sizeof f, "%.2f", p.factor);
      row.emplace_back(f);
      for (std::int64_t b : p.bounds) row.push_back(std::to_string(b));
      row.push_back(std::to_string(p.shared_cost));
      t.add_row(std::move(row));
    }
    benchutil::export_csv(t, "laxity_sweep");
    std::printf("%s(bounds fall from the deadline-forced peak toward the work-density\n"
                " floor as slack grows)\n\n",
                t.to_string().c_str());
  }

  std::printf("== LB_r vs message scaling (same workload, laxity 1.5) ==\n");
  {
    WorkloadParams relaxed = params;
    relaxed.laxity = 1.5;
    ProblemInstance inst2 = generate_workload(relaxed);
    const std::vector<double> factors{0.0, 0.5, 1.0, 2.0, 4.0};
    const auto sweep = message_scale_sweep(*inst2.app, factors);
    std::vector<std::string> header{"msg scale"};
    for (ResourceId r : inst2.app->resource_set()) {
      header.push_back("LB_" + inst2.catalog->name(r));
    }
    header.push_back("infeasible?");
    Table t(header);
    for (const SweepPoint& p : sweep) {
      std::vector<std::string> row;
      char f[16];
      std::snprintf(f, sizeof f, "%.1f", p.factor);
      row.emplace_back(f);
      for (std::int64_t b : p.bounds) row.push_back(std::to_string(b));
      row.push_back(p.infeasible ? "yes" : "no");
      t.add_row(std::move(row));
    }
    std::printf("%s(heavier messages squeeze windows; merging soaks part of it until\n"
                " the constraints become impossible)\n\n",
                t.to_string().c_str());
  }

  std::printf("== Node-menu variants on the paper example ==\n");
  {
    ProblemInstance paper = paper_example();
    DedicatedPlatform no_bare;
    no_bare.add_node_type(paper.platform.node_type(0));
    no_bare.add_node_type(paper.platform.node_type(2));
    DedicatedPlatform dual_r1;
    NodeType dual = paper.platform.node_type(0);
    dual.name = "N1x2";
    dual.resources = {{paper.catalog->find("r1"), 2}};
    dual.cost = 13;
    dual_r1.add_node_type(dual);
    for (std::size_t n = 0; n < paper.platform.num_node_types(); ++n) {
      dual_r1.add_node_type(paper.platform.node_type(n));
    }
    std::vector<std::pair<std::string, DedicatedPlatform>> menus;
    menus.emplace_back("paper menu {P1+r1, P1, P2}", paper.platform);
    menus.emplace_back("drop bare P1 node", no_bare);
    menus.emplace_back("add dual-r1 node (cost 13)", dual_r1);
    Table t({"menu", "feasible", "cost bound", "LP relaxation"});
    for (const MenuVariantResult& r : menu_variants(*paper.app, menus)) {
      char relax[16];
      std::snprintf(relax, sizeof relax, "%.2f", r.relaxation);
      t.add(r.name, r.feasible ? "yes" : "no", r.dedicated_cost, relax);
    }
    std::printf("%s\n", t.to_string().c_str());
  }
}

void BM_LaxitySweep(benchmark::State& state) {
  WorkloadParams params;
  params.seed = 61;
  params.num_tasks = static_cast<std::size_t>(state.range(0));
  params.laxity = 1.0;
  ProblemInstance inst = generate_workload(params);
  const std::vector<double> factors{1.0, 1.5, 2.0, 3.0};
  for (auto _ : state) {
    benchmark::DoNotOptimize(deadline_laxity_sweep(*inst.app, factors));
  }
}
BENCHMARK(BM_LaxitySweep)->RangeMultiplier(2)->Range(16, 128);

void BM_MenuVariantsPaper(benchmark::State& state) {
  ProblemInstance paper = paper_example();
  std::vector<std::pair<std::string, DedicatedPlatform>> menus;
  menus.emplace_back("paper", paper.platform);
  for (auto _ : state) {
    benchmark::DoNotOptimize(menu_variants(*paper.app, menus));
  }
}
BENCHMARK(BM_MenuVariantsPaper);

}  // namespace

int main(int argc, char** argv) {
  print_report();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
