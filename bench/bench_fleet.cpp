// Fleet throughput: instances/second through run_fleet(), cold baselines
// vs warm AnalysisSession baselines -- the capacity-planning number for
// sizing a 10^5..10^6-instance differential run.
//
// Two rows are recorded:
//  (a) "analysis only": all oracles off, so each instance costs one
//      generate_workload + one baseline analyze. This is the pure pipeline
//      throughput ceiling, measured cold and warm (the warm pool keeps the
//      content-keyed block cache across instances; results are bit-identical
//      by the session contract, asserted in tests/test_fleet.cpp).
//  (b) "all oracles": the full differential configuration the fleet smoke
//      and the committed 10^5 run use (serial + parallel + warm-session +
//      certificate round-trip + lint agreement), i.e. what a divergence hunt
//      actually costs per instance.
//
// Results go to BENCH_fleet.json with reps/hardware_concurrency/degraded
// recorded like BENCH_pipeline.json. No speedup-style headline is derived
// from a degraded row. RTLB_BENCH_REPS overrides the rep count (CI smoke
// sets 1; the measurement instance count is scaled down as well so the CI
// leg stays cheap while the schema stays intact).
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <thread>

#include "bench_util.hpp"
#include "src/common/thread_pool.hpp"
#include "src/fleet/runner.hpp"

using namespace rtlb;

namespace {

int rep_count() {
  if (const char* env = std::getenv("RTLB_BENCH_REPS")) {
    const int reps = std::atoi(env);
    if (reps > 0) return reps;
  }
  return 5;
}

ScenarioSpec bench_spec(std::size_t instances_per_cell) {
  ScenarioSpec spec = ScenarioSpec::from_text(R"({
    "name": "bench",
    "seed": 61,
    "axes": {
      "shape": ["layered", "fork_join", "series_parallel"],
      "num_tasks": [16, 32],
      "laxity": [1.5, 3],
      "model": ["shared", "dedicated"]
    },
    "defaults": {"num_resources": 3, "resource_prob": 0.4}
  })");
  spec.instances_per_cell = instances_per_cell;
  return spec;
}

struct Row {
  const char* config;
  bool warm;
  bool oracles;
};

void fleet_throughput_report() {
  const int reps = rep_count();
  // Full reps measure 24 cells x 25 = 600 instances per rep; CI smoke
  // (reps == 1) scales down to 120 so the leg costs a couple of seconds.
  const std::size_t per_cell = reps > 1 ? 25 : 5;
  const ScenarioSpec spec = bench_spec(per_cell);
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  // One worker per hardware thread, never more: fleet throughput is a
  // capacity-planning number, so oversubscribed timings would be noise.
  const int threads = static_cast<int>(hw);
  const bool degraded = ThreadPool::resolve_threads(threads) > hw;  // never, by construction

  const Row rows[] = {
      {"cold", false, false},
      {"warm", true, false},
      {"cold+oracles", false, true},
      {"warm+oracles", true, true},
  };

  std::printf("== fleet throughput (%llu instances/rep, %d reps, %d workers) ==\n",
              static_cast<unsigned long long>(spec.total_instances()), reps, threads);
  Table t({"config", "baselines", "oracles", "ms", "instances/sec"});
  Json entries = Json::array();
  for (const Row& row : rows) {
    FleetOptions opts;
    opts.threads = threads;
    opts.warm_sessions = row.warm;
    if (!row.oracles) {
      opts.oracles.parallel = false;
      opts.oracles.session = false;
      opts.oracles.certificate = false;
      opts.oracles.lint = false;
    }
    std::uint64_t divergences = 0;
    const double ms = benchutil::time_ms(
        [&] { divergences += run_fleet(spec, opts).aggregates.divergences.size(); }, reps);
    const double per_sec =
        ms > 0 ? 1000.0 * static_cast<double>(spec.total_instances()) / ms : 0.0;
    char ms_s[32], ps_s[32];
    std::snprintf(ms_s, sizeof ms_s, "%.1f", ms);
    std::snprintf(ps_s, sizeof ps_s, "%.0f", per_sec);
    t.add(row.config, row.warm ? "warm" : "cold", row.oracles ? "all" : "off", ms_s, ps_s);

    Json entry = Json::object();
    entry.set("config", row.config)
        .set("warm_sessions", row.warm)
        .set("oracles", row.oracles ? "all" : "off")
        .set("ms", ms)
        .set("instances_per_sec", per_sec)
        .set("divergences", static_cast<std::int64_t>(divergences));
    entries.push(std::move(entry));
  }
  std::printf("%s(best-of-%d wall time per config; every config reproduces the same\n"
              " aggregate bytes -- tests/test_fleet.cpp pins warm==cold and the\n"
              " thread-count independence)\n",
              t.to_string().c_str(), reps);
  benchutil::export_csv(t, "fleet_throughput");

  Json root = Json::object();
  root.set("bench", "bench_fleet throughput: instances/sec cold vs warm")
      .set("spec", spec.to_json())
      .set("instances_per_run", static_cast<std::int64_t>(spec.total_instances()))
      .set("threads", threads)
      .set("reps", static_cast<std::int64_t>(reps))
      .set("hardware_concurrency", static_cast<std::int64_t>(hw))
      .set("degraded", degraded)
      .set("configs", std::move(entries));
  benchutil::export_json(root, "BENCH_fleet");
}

}  // namespace

int main() {
  fleet_throughput_report();
  return 0;
}
