// Cold-vs-warm cost of repeated-query analysis through AnalysisSession.
//
// Three sweep workloads, each timed twice -- once as the pre-session
// workflow (copy the application, apply the delta, cold analyze()) and once
// through one memoized session:
//  (a) delta sweep: perturb ONE task's deadline per query on a many-block
//      workload -- the synthesis/annealing inner-loop shape. Only the
//      touched block is rescanned; every other block replays from the
//      cache. This is the headline speedup recorded as "speedup".
//  (b) deadline laxity sweep: every deadline scales per point, so the warm
//      path mostly measures the session's overhead on global invalidation
//      (factor pairs that clip/saturate to identical windows still hit).
//  (c) menu sweep: price variants of the node menu under the dedicated
//      model -- windows/partitions/scans are platform-independent here, so
//      the session re-solves only the covering ILP per variant.
// Results go to BENCH_session.json (benchutil::export_json).
#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>
#include <vector>

#include "bench_util.hpp"
#include "src/core/report.hpp"
#include "src/core/sensitivity.hpp"
#include "src/core/session.hpp"
#include "src/workload/taskset_gen.hpp"

using namespace rtlb;

namespace {

/// The delta-sweep instance: `groups` independent clusters of `per_group`
/// tasks, each cluster on its own processor type with overlapping windows.
/// Every cluster is one partition block, so a single-task delta invalidates
/// exactly one of `groups` blocks.
struct DeltaWorkload {
  std::unique_ptr<ResourceCatalog> catalog;
  std::unique_ptr<Application> app;
};

DeltaWorkload make_delta_workload(std::size_t groups, std::size_t per_group) {
  DeltaWorkload w;
  w.catalog = std::make_unique<ResourceCatalog>();
  std::vector<ResourceId> procs;
  for (std::size_t g = 0; g < groups; ++g) {
    procs.push_back(w.catalog->add_processor_type("P" + std::to_string(g), 3));
  }
  w.app = std::make_unique<Application>(*w.catalog);
  for (std::size_t g = 0; g < groups; ++g) {
    for (std::size_t k = 0; k < per_group; ++k) {
      Task t;
      t.name = "g" + std::to_string(g) + "t" + std::to_string(k);
      t.comp = 3 + static_cast<Time>(k % 5);
      t.release = static_cast<Time>(2 * k);
      t.deadline = t.release + 40 + static_cast<Time>(3 * (k % 7));
      t.proc = procs[g];
      w.app->add_task(std::move(t));
    }
  }
  return w;
}

struct SweepTiming {
  double cold_ms = 0;
  double warm_ms = 0;
  double speedup() const { return warm_ms > 0 ? cold_ms / warm_ms : 0; }
};

/// (a) One-task-deadline deltas: what synthesis and annealing inner loops
/// look like between candidate evaluations.
SweepTiming time_delta_sweep(const Application& base, int queries, SessionStats* stats) {
  SweepTiming timing;
  // `tick` keeps advancing across time_ms reps (and 24 % 5 != 0), so a task
  // revisited in a later rep gets a DIFFERENT deadline -- every query is a
  // real delta, never a no-op the session could answer as a pure query hit.
  auto deadline_at = [&](int q, int tick) {
    const TaskId t = static_cast<TaskId>((q * 7) % base.num_tasks());
    return std::pair<TaskId, Time>(t, base.task(t).deadline + 1 + (tick % 5));
  };

  int cold_tick = 0;
  timing.cold_ms = benchutil::time_ms([&] {
    for (int q = 0; q < queries; ++q) {
      Application scaled = base;  // the pre-session workflow copies + reanalyzes
      const auto [t, d] = deadline_at(q, cold_tick++);
      scaled.task(t).deadline = d;
      benchmark::DoNotOptimize(analyze(scaled));
    }
  });

  AnalysisSession session(base);
  session.set_verify(false);  // timing run; correctness is ctest's job
  int warm_tick = 0;
  timing.warm_ms = benchutil::time_ms([&] {
    for (int q = 0; q < queries; ++q) {
      const auto [t, d] = deadline_at(q, warm_tick++);
      session.set_deadline(t, d);
      benchmark::DoNotOptimize(session.analyze());
    }
  });
  if (stats != nullptr) *stats = session.stats();
  return timing;
}

/// (b) The global laxity sweep (every deadline rescaled per point).
SweepTiming time_laxity_sweep(const Application& base, const std::vector<double>& factors) {
  SweepTiming timing;
  timing.cold_ms = benchutil::time_ms([&] {
    for (double factor : factors) {
      Application scaled = base;
      for (TaskId i = 0; i < base.num_tasks(); ++i) {
        const Task& t = base.task(i);
        Time window = scale_time(factor, t.deadline - t.release);
        if (window < t.comp) window = t.comp;
        scaled.task(i).deadline = t.release + window;
      }
      benchmark::DoNotOptimize(analyze(scaled));
    }
  });
  timing.warm_ms = benchutil::time_ms(
      [&] { benchmark::DoNotOptimize(deadline_laxity_sweep(base, factors)); });
  return timing;
}

/// (c) Menu variants under the dedicated model: only the ILP differs when
/// the merge behaviour of the menus coincides.
SweepTiming time_menu_sweep(const Application& app,
                            const std::vector<std::pair<std::string, DedicatedPlatform>>& menus) {
  SweepTiming timing;
  AnalysisOptions options;
  options.model = SystemModel::Dedicated;
  timing.cold_ms = benchutil::time_ms([&] {
    for (const auto& [name, platform] : menus) {
      benchmark::DoNotOptimize(analyze(app, options, &platform));
    }
  });
  timing.warm_ms =
      benchutil::time_ms([&] { benchmark::DoNotOptimize(menu_variants(app, menus)); });
  return timing;
}

void run_report() {
  const std::size_t kGroups = 10;
  const std::size_t kPerGroup = 72;
  const int kQueries = 24;
  DeltaWorkload delta = make_delta_workload(kGroups, kPerGroup);

  SessionStats delta_stats;
  const SweepTiming delta_t = time_delta_sweep(*delta.app, kQueries, &delta_stats);

  WorkloadParams params;
  params.seed = 61;
  params.num_tasks = 48;
  params.laxity = 1.2;
  ProblemInstance inst = generate_workload(params);
  std::vector<double> factors;
  for (int k = 0; k < 16; ++k) factors.push_back(1.0 + 0.15 * k);
  const SweepTiming laxity_t = time_laxity_sweep(*inst.app, factors);

  // Cost-variant menus: identical node shapes (same merge oracle answers),
  // different prices -- the "reprice the catalog" design loop.
  std::vector<std::pair<std::string, DedicatedPlatform>> menus;
  for (int v = 0; v < 8; ++v) {
    DedicatedPlatform m;
    for (std::size_t n = 0; n < inst.platform.num_node_types(); ++n) {
      NodeType node = inst.platform.node_type(n);
      node.cost += v * static_cast<Cost>(n + 1);
      m.add_node_type(node);
    }
    menus.emplace_back("reprice-" + std::to_string(v), m);
  }
  const SweepTiming menu_t = time_menu_sweep(*inst.app, menus);

  Table t({"sweep", "queries", "cold ms", "warm ms", "speedup"});
  auto add_row = [&](const char* name, std::size_t queries, const SweepTiming& s) {
    char cold[32], warm[32], speed[32];
    std::snprintf(cold, sizeof cold, "%.2f", s.cold_ms);
    std::snprintf(warm, sizeof warm, "%.2f", s.warm_ms);
    std::snprintf(speed, sizeof speed, "%.1fx", s.speedup());
    t.add(name, queries, cold, warm, speed);
  };
  add_row("single-task deadline deltas", static_cast<std::size_t>(kQueries), delta_t);
  add_row("global laxity factors", factors.size(), laxity_t);
  add_row("menu reprice variants", menus.size(), menu_t);
  std::printf("== cold analyze() vs memoized AnalysisSession ==\n%s\n", t.to_string().c_str());
  std::printf("delta-sweep session stats: %s\n\n",
              session_stats_json(delta_stats).dump(0).c_str());

  Json root = Json::object();
  Json workload = Json::object();
  workload.set("groups", static_cast<std::int64_t>(kGroups))
      .set("tasks_per_group", static_cast<std::int64_t>(kPerGroup))
      .set("queries", static_cast<std::int64_t>(kQueries));
  root.set("workload", std::move(workload));
  auto sweep_json = [](const SweepTiming& s) {
    Json j = Json::object();
    j.set("cold_ms", s.cold_ms).set("warm_ms", s.warm_ms).set("speedup", s.speedup());
    return j;
  };
  root.set("delta_sweep", sweep_json(delta_t));
  root.set("laxity_sweep", sweep_json(laxity_t));
  root.set("menu_sweep", sweep_json(menu_t));
  root.set("speedup", delta_t.speedup());
  root.set("session_stats", session_stats_json(delta_stats));
  benchutil::export_json(root, "BENCH_session");
}

void BM_ColdDeltaQuery(benchmark::State& state) {
  DeltaWorkload w = make_delta_workload(10, static_cast<std::size_t>(state.range(0)));
  int q = 0;
  for (auto _ : state) {
    Application scaled = *w.app;
    scaled.task(static_cast<TaskId>(q++ * 7 % scaled.num_tasks())).deadline += 1;
    benchmark::DoNotOptimize(analyze(scaled));
  }
}
BENCHMARK(BM_ColdDeltaQuery)->RangeMultiplier(2)->Range(8, 32);

void BM_WarmDeltaQuery(benchmark::State& state) {
  DeltaWorkload w = make_delta_workload(10, static_cast<std::size_t>(state.range(0)));
  AnalysisSession session(*w.app);
  session.set_verify(false);
  int q = 0;
  for (auto _ : state) {
    // Task cycle length is 10 * range; % 3 is co-prime with it, so every
    // revisit moves the deadline -- no query resolves as a pure no-op hit.
    const TaskId t = static_cast<TaskId>(q * 7 % w.app->num_tasks());
    session.set_deadline(t, w.app->task(t).deadline + 1 + (q % 3));
    ++q;
    benchmark::DoNotOptimize(session.analyze());
  }
}
BENCHMARK(BM_WarmDeltaQuery)->RangeMultiplier(2)->Range(8, 32);

}  // namespace

int main(int argc, char** argv) {
  run_report();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
