// Modeling-assumption experiment: the paper prices communication as pure
// latency on a contention-free ICN (Sec 2.2). This bench quantifies the
// assumption by executing contention-free schedules on progressively
// narrower shared buses and recording how many runs survive and how much
// queueing appears; and it checks the makespan baselines' behaviour under
// the same sweep (they, too, are contention-free analyses).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <thread>

#include "src/common/thread_pool.hpp"

#include "src/baselines/makespan_bound.hpp"
#include "src/common/random.hpp"
#include "src/common/table.hpp"
#include "bench_util.hpp"
#include "src/core/analysis.hpp"
#include "src/sched/list_scheduler.hpp"
#include "src/sim/simulator.hpp"
#include "src/workload/taskset_gen.hpp"

using namespace rtlb;

namespace {

/// The large contention workload for the lower-bound engine comparison:
/// a long horizon of loosely-windowed background tasks (their overlapping
/// windows chain every ST_r into one wide Theorem-5 block, the worst case
/// for the O(P^2) scan) plus a few tight bursts whose stacked demand sets
/// the density peak. Every task contends for the processor pool plus 1-2 of
/// a few shared buses. The shape is what makes both engine features earn
/// their keep: the wide block fans out into many parallel scan units, and
/// the burst density lets the probe-seeded pruning discard almost every
/// wide low-density candidate interval.
ProblemInstance engine_workload(std::size_t background, std::size_t burst,
                                std::uint64_t seed) {
  Rng rng(seed);
  ProblemInstance inst;
  inst.catalog = std::make_unique<ResourceCatalog>();
  const ResourceId p = inst.catalog->add_processor_type("P1", 5);
  std::vector<ResourceId> buses;
  for (int r = 0; r < 3; ++r) {
    buses.push_back(inst.catalog->add_resource("bus" + std::to_string(r), 2));
  }
  inst.app = std::make_unique<Application>(*inst.catalog);

  const Time horizon = 60000;
  auto add_task = [&](const char* kind, std::size_t k, Time comp, Time release,
                      Time deadline) {
    Task t;
    t.name = std::string(kind) + std::to_string(k);
    t.comp = comp;
    t.release = release;
    t.deadline = deadline;
    t.proc = p;
    t.preemptive = rng.chance(0.3);
    t.resources.push_back(buses[static_cast<std::size_t>(rng.uniform(0, 2))]);
    if (rng.chance(0.4)) {
      const ResourceId extra = buses[static_cast<std::size_t>(rng.uniform(0, 2))];
      if (extra != t.resources.front()) t.resources.push_back(extra);
    }
    inst.app->add_task(std::move(t));
  };
  for (std::size_t k = 0; k < background; ++k) {
    const Time len = rng.uniform(1500, 4500);
    const Time release = rng.uniform(0, static_cast<int>(horizon - len));
    add_task("bg", k, rng.uniform(2, 10), release, release + len);
  }
  for (std::size_t k = 0; k < burst; ++k) {
    // Half the burst lands at the start of the horizon, half mid-horizon.
    const Time epoch = (k % 2 == 0) ? 0 : horizon / 2;
    const Time release = epoch + rng.uniform(0, 12);
    add_task("burst", k, rng.uniform(8, 16), release, release + rng.uniform(16, 40));
  }
  inst.app->validate();
  return inst;
}

/// Serial-vs-parallel (and pruned) engine comparison on the workload above;
/// prints a table and records it as BENCH_lower_bound.json. Every config
/// must reproduce the serial engine's bound and peak density exactly; the
/// full ResourceBound (witness and intervals_evaluated included) must be
/// bit-identical to the serial run WITH THE SAME pruning setting -- that is
/// the determinism guarantee (pruning itself may legitimately pick a
/// different equally-dense witness on an exact tie).
void lower_bound_engine_report() {
  std::printf("== Lower-bound engine: serial vs parallel vs pruned ==\n");
  const std::size_t background = 600, burst = 18;
  ProblemInstance inst = engine_workload(background, burst, 71);
  SharedMergeOracle oracle;
  const TaskWindows w = compute_windows(*inst.app, oracle);

  struct Config {
    const char* name;
    int threads;
    bool prune;
  };
  const Config configs[] = {
      {"serial", 1, false},          {"serial+prune", 1, true},
      {"4 threads", 4, false},       {"4 threads+prune", 4, true},
      {"hw threads+prune", 0, true},
  };

  std::vector<ResourceBound> reference;         // serial, pruning off
  std::vector<ResourceBound> pruned_reference;  // serial, pruning on
  double serial_ms = 0.0;
  Table t({"config", "threads", "pruning", "ms", "speedup vs serial", "intervals",
           "results equal"});
  Json entries = Json::array();
  const unsigned hw = std::max(1u, std::jthread::hardware_concurrency());
  for (const Config& c : configs) {
    LowerBoundOptions opts;
    opts.num_threads = c.threads;
    opts.enable_pruning = c.prune;
    // More workers than hardware threads measures oversubscription, not the
    // engine; flag such rows so recorded speedups are read accordingly.
    const unsigned requested = ThreadPool::resolve_threads(c.threads);
    const bool degraded = requested > hw;
    if (degraded) {
      std::fprintf(stderr,
                   "warning: config '%s' requests %u workers on %u hardware threads; "
                   "its timing is degraded by oversubscription\n",
                   c.name, requested, hw);
    }
    std::vector<ResourceBound> bounds;
    const double ms = benchutil::time_ms(
        [&] { bounds = all_resource_bounds(*inst.app, w, opts); }, 2);
    if (reference.empty()) {
      reference = bounds;
      serial_ms = ms;
    }
    std::vector<ResourceBound>& same_pruning = c.prune ? pruned_reference : reference;
    if (same_pruning.empty()) same_pruning = bounds;

    bool equal = bounds.size() == reference.size();
    bool deterministic = equal;
    std::uint64_t intervals = 0;
    for (std::size_t k = 0; equal && k < bounds.size(); ++k) {
      intervals += bounds[k].intervals_evaluated;
      equal = bounds[k].bound == reference[k].bound &&
              bounds[k].peak_density == reference[k].peak_density;
      deterministic = deterministic &&
                      bounds[k].witness_t1 == same_pruning[k].witness_t1 &&
                      bounds[k].witness_t2 == same_pruning[k].witness_t2 &&
                      bounds[k].witness_demand == same_pruning[k].witness_demand &&
                      bounds[k].intervals_evaluated == same_pruning[k].intervals_evaluated;
    }
    // A degraded config's wall time measures oversubscription, not the
    // engine, so it must not publish a speedup number at all -- a "54x"
    // headline from a row recorded on fewer hardware threads than workers
    // is noise dressed up as a result. The JSON carries null plus the
    // reason; the table prints n/a.
    const double speedup = ms > 0 ? serial_ms / ms : 0.0;
    char ms_s[32], sp_s[32];
    std::snprintf(ms_s, sizeof ms_s, "%.1f", ms);
    if (degraded) {
      std::snprintf(sp_s, sizeof sp_s, "n/a (degraded)");
    } else {
      std::snprintf(sp_s, sizeof sp_s, "%.2f", speedup);
    }
    t.add(c.name, c.threads, c.prune ? "on" : "off", ms_s, sp_s, intervals,
          equal && deterministic ? "yes" : "NO");

    Json entry = Json::object();
    entry.set("config", c.name)
        .set("num_threads", c.threads)
        .set("enable_pruning", c.prune)
        .set("ms", ms);
    if (degraded) {
      entry.set("speedup_vs_serial", Json())
          .set("speedup_excluded_reason",
               std::to_string(requested) + " workers oversubscribe " +
                   std::to_string(hw) + " hardware threads");
    } else {
      entry.set("speedup_vs_serial", speedup);
    }
    entry.set("intervals_evaluated", static_cast<std::int64_t>(intervals))
        .set("bounds_equal_serial", equal)
        .set("bitwise_equal_same_pruning_serial", deterministic)
        .set("degraded", degraded);
    entries.push(std::move(entry));
  }
  benchutil::export_csv(t, "lower_bound_engine");
  std::printf("%s(every config reproduces the serial bound and peak density; configs\n"
              " with the same pruning setting are bit-identical incl. witness and\n"
              " intervals_evaluated -- the thread-count determinism guarantee)\n\n",
              t.to_string().c_str());

  Json root = Json::object();
  Json workload = Json::object();
  workload.set("tasks", static_cast<std::int64_t>(inst.app->num_tasks()))
      .set("background_tasks", static_cast<std::int64_t>(background))
      .set("burst_tasks", static_cast<std::int64_t>(burst))
      .set("resources", static_cast<std::int64_t>(inst.catalog->size()));
  root.set("bench", "bench_contention lower-bound engine comparison")
      .set("workload", std::move(workload))
      .set("hardware_concurrency",
           static_cast<std::int64_t>(std::jthread::hardware_concurrency()))
      .set("serial_ms", serial_ms)
      .set("configs", std::move(entries));
  benchutil::export_json(root, "BENCH_lower_bound");
}

void print_report() {
  std::printf("== Contention-free schedules on a k-link bus ==\n");
  Table t({"links", "runs ok", "runs broken", "mean queueing (ticks)", "max queueing"});
  for (int links : {0, 8, 4, 2, 1}) {
    int ok = 0, broken = 0;
    Time total_queued = 0, max_queued = 0;
    int measured = 0;
    for (std::uint64_t seed = 1; seed <= 12; ++seed) {
      WorkloadParams params;
      params.seed = seed * 23;
      params.num_tasks = 22;
      params.num_proc_types = 2;
      params.num_resources = 1;
      params.laxity = 1.8;
      params.msg_min = 1;
      params.msg_max = 6;
      ProblemInstance inst = generate_workload(params);
      const AnalysisResult res = analyze(*inst.app);
      Capacities start(inst.catalog->size(), 0);
      for (const ResourceBound& b : res.bounds) {
        start.set(b.resource, static_cast<int>(b.bound));
      }
      const ProvisioningResult prov = provision_shared(*inst.app, start, 60);
      if (!prov.feasible) continue;
      const ListScheduleResult sched = list_schedule_shared(*inst.app, prov.caps);
      SimOptions options;
      options.network_links = links;
      const SimReport rep = simulate_shared(*inst.app, sched.schedule, prov.caps, options);
      ++measured;
      if (rep.ok) ++ok;
      else ++broken;
      total_queued += rep.network_queued;
      max_queued = std::max(max_queued, rep.network_queued);
    }
    char mean[32];
    std::snprintf(mean, sizeof mean, "%.1f",
                  measured ? static_cast<double>(total_queued) / measured : 0.0);
    t.add(links == 0 ? "inf (paper)" : std::to_string(links), ok, broken, mean, max_queued);
  }
  benchutil::export_csv(t, "contention_sweep");
  std::printf("%s(the paper's bounds remain valid lower bounds regardless -- contention\n"
              " only ADDS constraints -- but schedules built against the contention-\n"
              " free model start missing inputs once the bus narrows)\n\n",
              t.to_string().c_str());

  std::printf("== Makespan baselines under processor scaling (zero-comm class) ==\n");
  Table m({"seed", "m", "t_c", "work", "F-B", "J-R", "EDF makespan"});
  for (std::uint64_t seed : {3ull, 9ull}) {
    WorkloadParams params;
    params.seed = seed;
    params.num_tasks = 18;
    params.num_proc_types = 1;
    params.num_resources = 0;
    params.msg_min = params.msg_max = 0;
    params.laxity = 10.0;
    ProblemInstance inst = generate_workload(params);
    for (int procs = 1; procs <= 4; ++procs) {
      const MakespanBound b = makespan_lower_bound(*inst.app, procs);
      Capacities caps(inst.catalog->size(), procs);
      const ListScheduleResult r = list_schedule_shared(*inst.app, caps);
      m.add(seed, procs, b.critical_time, b.work_bound, b.fb_bound, b.jr_bound,
            r.feasible ? r.schedule.makespan(*inst.app) : -1);
    }
  }
  benchutil::export_csv(m, "makespan_bounds");
  std::printf("%s(LB <= achieved makespan on every row; the interval-excess bounds\n"
              " dominate the work bound at small m)\n\n",
              m.to_string().c_str());
}

void BM_SimContentionFree(benchmark::State& state) {
  WorkloadParams params;
  params.seed = 23;
  params.num_tasks = 40;
  params.laxity = 2.5;
  ProblemInstance inst = generate_workload(params);
  Capacities caps(inst.catalog->size(), 3);
  const ListScheduleResult sched = list_schedule_shared(*inst.app, caps);
  for (auto _ : state) {
    benchmark::DoNotOptimize(simulate_shared(*inst.app, sched.schedule, caps));
  }
}
BENCHMARK(BM_SimContentionFree);

void BM_SimSingleBus(benchmark::State& state) {
  WorkloadParams params;
  params.seed = 23;
  params.num_tasks = 40;
  params.laxity = 2.5;
  ProblemInstance inst = generate_workload(params);
  Capacities caps(inst.catalog->size(), 3);
  const ListScheduleResult sched = list_schedule_shared(*inst.app, caps);
  SimOptions options;
  options.network_links = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(simulate_shared(*inst.app, sched.schedule, caps, options));
  }
}
BENCHMARK(BM_SimSingleBus);

void BM_MakespanBound(benchmark::State& state) {
  WorkloadParams params;
  params.seed = 9;
  params.num_tasks = static_cast<std::size_t>(state.range(0));
  params.num_proc_types = 1;
  params.num_resources = 0;
  params.msg_min = params.msg_max = 0;
  ProblemInstance inst = generate_workload(params);
  for (auto _ : state) {
    benchmark::DoNotOptimize(makespan_lower_bound(*inst.app, 4));
  }
}
BENCHMARK(BM_MakespanBound)->RangeMultiplier(2)->Range(16, 128);

}  // namespace

int main(int argc, char** argv) {
  lower_bound_engine_report();
  print_report();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
