// Modeling-assumption experiment: the paper prices communication as pure
// latency on a contention-free ICN (Sec 2.2). This bench quantifies the
// assumption by executing contention-free schedules on progressively
// narrower shared buses and recording how many runs survive and how much
// queueing appears; and it checks the makespan baselines' behaviour under
// the same sweep (they, too, are contention-free analyses).
#include <benchmark/benchmark.h>

#include <cstdio>

#include "src/baselines/makespan_bound.hpp"
#include "src/common/table.hpp"
#include "bench_util.hpp"
#include "src/core/analysis.hpp"
#include "src/sched/list_scheduler.hpp"
#include "src/sim/simulator.hpp"
#include "src/workload/taskset_gen.hpp"

using namespace rtlb;

namespace {

void print_report() {
  std::printf("== Contention-free schedules on a k-link bus ==\n");
  Table t({"links", "runs ok", "runs broken", "mean queueing (ticks)", "max queueing"});
  for (int links : {0, 8, 4, 2, 1}) {
    int ok = 0, broken = 0;
    Time total_queued = 0, max_queued = 0;
    int measured = 0;
    for (std::uint64_t seed = 1; seed <= 12; ++seed) {
      WorkloadParams params;
      params.seed = seed * 23;
      params.num_tasks = 22;
      params.num_proc_types = 2;
      params.num_resources = 1;
      params.laxity = 1.8;
      params.msg_min = 1;
      params.msg_max = 6;
      ProblemInstance inst = generate_workload(params);
      const AnalysisResult res = analyze(*inst.app);
      Capacities start(inst.catalog->size(), 0);
      for (const ResourceBound& b : res.bounds) {
        start.set(b.resource, static_cast<int>(b.bound));
      }
      const ProvisioningResult prov = provision_shared(*inst.app, start, 60);
      if (!prov.feasible) continue;
      const ListScheduleResult sched = list_schedule_shared(*inst.app, prov.caps);
      SimOptions options;
      options.network_links = links;
      const SimReport rep = simulate_shared(*inst.app, sched.schedule, prov.caps, options);
      ++measured;
      if (rep.ok) ++ok;
      else ++broken;
      total_queued += rep.network_queued;
      max_queued = std::max(max_queued, rep.network_queued);
    }
    char mean[32];
    std::snprintf(mean, sizeof mean, "%.1f",
                  measured ? static_cast<double>(total_queued) / measured : 0.0);
    t.add(links == 0 ? "inf (paper)" : std::to_string(links), ok, broken, mean, max_queued);
  }
  benchutil::export_csv(t, "contention_sweep");
  std::printf("%s(the paper's bounds remain valid lower bounds regardless -- contention\n"
              " only ADDS constraints -- but schedules built against the contention-\n"
              " free model start missing inputs once the bus narrows)\n\n",
              t.to_string().c_str());

  std::printf("== Makespan baselines under processor scaling (zero-comm class) ==\n");
  Table m({"seed", "m", "t_c", "work", "F-B", "J-R", "EDF makespan"});
  for (std::uint64_t seed : {3ull, 9ull}) {
    WorkloadParams params;
    params.seed = seed;
    params.num_tasks = 18;
    params.num_proc_types = 1;
    params.num_resources = 0;
    params.msg_min = params.msg_max = 0;
    params.laxity = 10.0;
    ProblemInstance inst = generate_workload(params);
    for (int procs = 1; procs <= 4; ++procs) {
      const MakespanBound b = makespan_lower_bound(*inst.app, procs);
      Capacities caps(inst.catalog->size(), procs);
      const ListScheduleResult r = list_schedule_shared(*inst.app, caps);
      m.add(seed, procs, b.critical_time, b.work_bound, b.fb_bound, b.jr_bound,
            r.feasible ? r.schedule.makespan(*inst.app) : -1);
    }
  }
  benchutil::export_csv(m, "makespan_bounds");
  std::printf("%s(LB <= achieved makespan on every row; the interval-excess bounds\n"
              " dominate the work bound at small m)\n\n",
              m.to_string().c_str());
}

void BM_SimContentionFree(benchmark::State& state) {
  WorkloadParams params;
  params.seed = 23;
  params.num_tasks = 40;
  params.laxity = 2.5;
  ProblemInstance inst = generate_workload(params);
  Capacities caps(inst.catalog->size(), 3);
  const ListScheduleResult sched = list_schedule_shared(*inst.app, caps);
  for (auto _ : state) {
    benchmark::DoNotOptimize(simulate_shared(*inst.app, sched.schedule, caps));
  }
}
BENCHMARK(BM_SimContentionFree);

void BM_SimSingleBus(benchmark::State& state) {
  WorkloadParams params;
  params.seed = 23;
  params.num_tasks = 40;
  params.laxity = 2.5;
  ProblemInstance inst = generate_workload(params);
  Capacities caps(inst.catalog->size(), 3);
  const ListScheduleResult sched = list_schedule_shared(*inst.app, caps);
  SimOptions options;
  options.network_links = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(simulate_shared(*inst.app, sched.schedule, caps, options));
  }
}
BENCHMARK(BM_SimSingleBus);

void BM_MakespanBound(benchmark::State& state) {
  WorkloadParams params;
  params.seed = 9;
  params.num_tasks = static_cast<std::size_t>(state.range(0));
  params.num_proc_types = 1;
  params.num_resources = 0;
  params.msg_min = params.msg_max = 0;
  ProblemInstance inst = generate_workload(params);
  for (auto _ : state) {
    benchmark::DoNotOptimize(makespan_lower_bound(*inst.app, 4));
  }
}
BENCHMARK(BM_MakespanBound)->RangeMultiplier(2)->Range(16, 128);

}  // namespace

int main(int argc, char** argv) {
  print_report();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
