// Scheduler ablation (DESIGN.md C2/C3 follow-ups):
//  (a) EDF list scheduling vs simulated annealing vs the exact search on the
//      same instances -- how much of the LB-to-heuristic gap is the
//      scheduler's fault;
//  (b) the LB as a warm start for the exact minimum-units scan: every level
//      below LB_r is an infeasibility proof the bound makes unnecessary.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>

#include "src/common/random.hpp"
#include "src/common/table.hpp"
#include "src/core/analysis.hpp"
#include "src/model/io.hpp"
#include "src/sched/annealing.hpp"
#include "src/sched/branch_bound.hpp"
#include "src/sched/list_scheduler.hpp"
#include "src/sched/optimal.hpp"
#include "src/sim/online.hpp"
#include "src/workload/paper_example.hpp"
#include "src/workload/taskset_gen.hpp"

using namespace rtlb;

namespace {

ProblemInstance small_instance(std::uint64_t seed) {
  Rng rng(seed);
  ProblemInstance inst;
  inst.catalog = std::make_unique<ResourceCatalog>();
  const ResourceId p = inst.catalog->add_processor_type("P", 5);
  inst.app = std::make_unique<Application>(*inst.catalog);
  const std::size_t n = static_cast<std::size_t>(rng.uniform(5, 6));
  for (std::size_t i = 0; i < n; ++i) {
    Task t;
    t.name = "t" + std::to_string(i);
    t.comp = rng.uniform(1, 3);
    t.release = rng.uniform(0, 2);
    t.deadline = t.release + t.comp + rng.uniform(0, 4);
    t.proc = p;
    inst.app->add_task(std::move(t));
  }
  for (std::uint32_t u = 0; u < n; ++u) {
    for (std::uint32_t v = u + 1; v < n; ++v) {
      if (rng.chance(0.2)) {
        const Time m = rng.uniform(0, 2);
        inst.app->add_edge(u, v, m);
        Task& tv = inst.app->task(v);
        tv.deadline = std::max(tv.deadline, inst.app->task(u).release +
                                                inst.app->task(u).comp + m + tv.comp + 2);
      }
    }
  }
  inst.app->validate();
  return inst;
}

void print_report() {
  std::printf("== Scheduler comparison on the paper example"
              " (dedicated machine (2,1,2)) ==\n");
  {
    ProblemInstance inst = paper_example();
    DedicatedConfig config;
    config.instance_types = {0, 0, 1, 2, 2};
    const ListScheduleResult edf = list_schedule_dedicated(*inst.app, inst.platform, config);
    AnnealOptions opts;
    opts.seed = 3;
    opts.max_evaluations = 20000;
    const AnnealResult sa = anneal_schedule_dedicated(*inst.app, inst.platform, config, opts);
    Table t({"scheduler", "feasible on (2,1,2)", "note"});
    t.add("EDF list", edf.feasible ? "yes" : "no",
          edf.feasible ? "" : ("fails: " + edf.failure));
    t.add("simulated annealing", sa.feasible ? "yes" : "no",
          "evaluations: " + std::to_string(sa.evaluations));
    t.add("hand witness (test_sim)", "yes", "the ILP cost bound is tight here");
    std::printf("%s\n", t.to_string().c_str());
  }

  std::printf("== Online dispatcher vs offline construction (shared model) ==\n");
  {
    Table t({"seed", "tasks", "offline EDF ok", "online ok", "online misses"});
    for (std::uint64_t seed = 1; seed <= 8; ++seed) {
      WorkloadParams params;
      params.seed = seed * 37;
      params.num_tasks = 18;
      params.laxity = 1.6;
      ProblemInstance inst = generate_workload(params);
      Capacities caps(inst.catalog->size(), 2);
      const ListScheduleResult offline = list_schedule_shared(*inst.app, caps);
      const OnlineResult online = dispatch_online_shared(*inst.app, caps);
      t.add(seed * 37, inst.app->num_tasks(), offline.feasible ? "yes" : "no",
            online.feasible ? "yes" : "no", online.missed.size());
    }
    std::printf("%s(the online dispatcher is work-conserving and non-clairvoyant: it\n"
                " cannot hold a CPU idle for an urgent task that has not released yet,\n"
                " so offline construction dominates on tight instances)\n\n",
                t.to_string().c_str());
  }

  std::printf("== Exact min-units scan: LB as a warm start ==\n");
  Table t({"seed", "LB_P", "exact min", "searches from 0", "searches from LB", "saved"});
  int total_saved = 0;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    ProblemInstance inst = small_instance(seed * 3 + 1);
    const AnalysisResult res = analyze(*inst.app);
    if (res.infeasible(*inst.app)) continue;
    const ResourceId p = inst.catalog->find("P");
    const int lb = static_cast<int>(res.bound_for(p).value());
    SearchLimits limits;
    limits.max_window = 48;
    limits.max_nodes = 50'000'000;
    Capacities caps(inst.catalog->size(), 4);
    const MinUnitsStats from_zero = min_units_exhaustive_from(*inst.app, p, caps, 0, 5, limits);
    const MinUnitsStats from_lb = min_units_exhaustive_from(*inst.app, p, caps, lb, 5, limits);
    if (!from_zero.min_units || !from_lb.min_units) continue;
    RTLB_CHECK(*from_zero.min_units == *from_lb.min_units,
               "warm start must not change the optimum");
    total_saved += from_zero.searches_run - from_lb.searches_run;
    t.add(seed * 3 + 1, lb, *from_zero.min_units, from_zero.searches_run,
          from_lb.searches_run, from_zero.searches_run - from_lb.searches_run);
  }
  std::printf("%stotal exhaustive searches avoided: %d\n"
              "(each avoided search is a full infeasibility proof -- the exact\n"
              " analogue of the paper's synthesis-pruning claim)\n\n",
              t.to_string().c_str(), total_saved);

  std::printf("== Density-pruned branch-and-bound vs blind exhaustive search ==\n");
  {
    Table bbt({"seed", "feasible", "B&B placements tried", "density cuts", "window cuts"});
    for (std::uint64_t seed = 1; seed <= 8; ++seed) {
      // Overloaded variants of the small instances: tight caps make many
      // subtrees infeasible, where the Section-6 density test shines.
      ProblemInstance inst = small_instance(seed * 13 + 2);
      Capacities caps(inst.catalog->size(), 1);
      SearchLimits limits;
      limits.max_window = 48;
      limits.max_nodes = 100'000'000;

      BranchBoundStats stats;
      const bool feasible = exists_feasible_schedule_bb(*inst.app, caps, limits, nullptr,
                                                        &stats);
      // Both searches are exact; assert agreement while we are here.
      const bool plain = exists_feasible_schedule_shared(*inst.app, caps, limits);
      RTLB_CHECK(plain == feasible, "searches disagree");
      bbt.add(seed * 13 + 2, feasible ? "yes" : "no", stats.nodes_explored,
              stats.pruned_by_density, stats.pruned_by_window);
    }
    std::printf("%s(on infeasible subtrees the density test certifies a dead end without\n"
                " enumerating its placements; BM_BbSearch vs BM_BlindSearch below times\n"
                " the end-to-end effect)\n\n",
                bbt.to_string().c_str());
  }
}

void BM_EdfOnPaperMachine(benchmark::State& state) {
  ProblemInstance inst = paper_example();
  DedicatedConfig config;
  config.instance_types = {0, 0, 1, 2, 2};
  for (auto _ : state) {
    benchmark::DoNotOptimize(list_schedule_dedicated(*inst.app, inst.platform, config));
  }
}
BENCHMARK(BM_EdfOnPaperMachine);

void BM_AnnealOnPaperMachine(benchmark::State& state) {
  ProblemInstance inst = paper_example();
  DedicatedConfig config;
  config.instance_types = {0, 0, 1, 2, 2};
  AnnealOptions opts;
  opts.seed = 3;
  opts.max_evaluations = 20000;
  for (auto _ : state) {
    benchmark::DoNotOptimize(anneal_schedule_dedicated(*inst.app, inst.platform, config, opts));
  }
}
BENCHMARK(BM_AnnealOnPaperMachine);

void BM_BlindSearch(benchmark::State& state) {
  ProblemInstance inst = small_instance(15);  // an infeasible-at-1-CPU case
  Capacities caps(inst.catalog->size(), 1);
  SearchLimits limits;
  limits.max_window = 48;
  limits.max_nodes = 100'000'000;
  for (auto _ : state) {
    benchmark::DoNotOptimize(exists_feasible_schedule_shared(*inst.app, caps, limits));
  }
}
BENCHMARK(BM_BlindSearch);

void BM_BbSearch(benchmark::State& state) {
  ProblemInstance inst = small_instance(15);
  Capacities caps(inst.catalog->size(), 1);
  SearchLimits limits;
  limits.max_window = 48;
  limits.max_nodes = 100'000'000;
  for (auto _ : state) {
    benchmark::DoNotOptimize(exists_feasible_schedule_bb(*inst.app, caps, limits));
  }
}
BENCHMARK(BM_BbSearch);

void BM_MinUnitsFromZero(benchmark::State& state) {
  ProblemInstance inst = small_instance(4);
  const ResourceId p = inst.catalog->find("P");
  SearchLimits limits;
  limits.max_window = 48;
  Capacities caps(inst.catalog->size(), 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(min_units_exhaustive_from(*inst.app, p, caps, 0, 5, limits));
  }
}
BENCHMARK(BM_MinUnitsFromZero);

void BM_MinUnitsFromLb(benchmark::State& state) {
  ProblemInstance inst = small_instance(4);
  const AnalysisResult res = analyze(*inst.app);
  const ResourceId p = inst.catalog->find("P");
  const int lb = static_cast<int>(res.bound_for(p).value());
  SearchLimits limits;
  limits.max_window = 48;
  Capacities caps(inst.catalog->size(), 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(min_units_exhaustive_from(*inst.app, p, caps, lb, 5, limits));
  }
}
BENCHMARK(BM_MinUnitsFromLb);

}  // namespace

int main(int argc, char** argv) {
  print_report();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
