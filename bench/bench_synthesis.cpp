// Experiment C3 (DESIGN.md): "the results can be used to reduce the search
// times for computer-aided synthesis of distributed real-time systems."
// The same best-first synthesis search runs with and without the Section-7
// covering constraints as a pre-scheduler filter; the report compares
// scheduler probes (the expensive operation), and the timed section measures
// the end-to-end speedup.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "src/common/table.hpp"
#include "bench_util.hpp"
#include "src/core/analysis.hpp"
#include "src/synth/pareto.hpp"
#include "src/synth/shared_synthesis.hpp"
#include "src/workload/paper_example.hpp"
#include "src/synth/synthesis.hpp"
#include "src/workload/taskset_gen.hpp"

using namespace rtlb;

namespace {

ProblemInstance workload(std::uint64_t seed, std::size_t tasks) {
  WorkloadParams params;
  params.seed = seed;
  params.num_tasks = tasks;
  params.num_proc_types = 2;
  params.num_resources = 2;
  params.resource_prob = 0.5;
  params.laxity = 2.4;
  return generate_workload(params);
}

void print_report() {
  std::printf("== Experiment C3: synthesis search with vs without LB pruning ==\n");
  Table t({"seed", "tasks", "menu", "found", "cost", "cost bound", "probes (pruned)",
           "probes (unpruned)", "probe savings x"});
  double total_savings = 0;
  int measured = 0;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    ProblemInstance inst = workload(seed * 41, 12 + (seed % 3) * 4);
    AnalysisOptions opts;
    opts.model = SystemModel::Dedicated;
    const AnalysisResult res = analyze(*inst.app, opts, &inst.platform);

    SynthesisOptions with, without;
    with.use_lower_bound_pruning = true;
    without.use_lower_bound_pruning = false;
    with.max_instances_per_type = without.max_instances_per_type = 4;

    const SynthesisResult a = synthesize_dedicated(*inst.app, inst.platform, res.bounds, with);
    const SynthesisResult b =
        synthesize_dedicated(*inst.app, inst.platform, res.bounds, without);
    if (a.feasibility_checks == 0) continue;
    const double savings = static_cast<double>(b.feasibility_checks) /
                           static_cast<double>(a.feasibility_checks);
    total_savings += savings;
    ++measured;
    char savings_s[32];
    std::snprintf(savings_s, sizeof savings_s, "%.1f", savings);
    const Cost bound = res.dedicated_cost && res.dedicated_cost->feasible
                           ? res.dedicated_cost->total
                           : 0;
    t.add(seed * 41, inst.app->num_tasks(), inst.platform.num_node_types(),
          a.found ? "yes" : "no", a.found ? a.cost : 0, bound, a.feasibility_checks,
          b.feasibility_checks, savings_s);
  }
  benchutil::export_csv(t, "synthesis_pruning");
  std::printf("%smean probe savings: %.1fx over %d workloads\n"
              "(identical machines found either way; the bounds only skip candidates\n"
              " that provably cannot work)\n\n",
              t.to_string().c_str(), measured ? total_savings / measured : 0.0, measured);

  std::printf("== Cost/makespan Pareto frontier (one workload) ==\n");
  {
    ProblemInstance inst = workload(41, 12);
    AnalysisOptions opts;
    opts.model = SystemModel::Dedicated;
    const AnalysisResult res = analyze(*inst.app, opts, &inst.platform);
    ParetoOptions popts;
    popts.max_instances_per_type = 3;
    const auto frontier = pareto_frontier(*inst.app, inst.platform, res.bounds, popts);
    Table f({"cost", "makespan", "machine"});
    for (const ParetoPoint& p : frontier) {
      std::string machine;
      for (std::size_t n = 0; n < p.counts.size(); ++n) {
        if (p.counts[n] > 0) {
          machine += inst.platform.node_type(n).name + "x" + std::to_string(p.counts[n]) + " ";
        }
      }
      f.add(p.cost, p.makespan, machine);
    }
    benchutil::export_csv(f, "pareto_frontier");
    std::printf("%s(each row strictly improves the makespan of the previous: the price\n"
                " of speed, floored by the communication-aware critical path)\n\n",
                f.to_string().c_str());
  }

  std::printf("== Shared-model synthesis on the paper example ==\n");
  {
    ProblemInstance inst = paper_example();
    const AnalysisResult res = analyze(*inst.app);
    SharedSynthesisOptions edf_only;
    edf_only.max_units_per_resource = 5;
    SharedSynthesisOptions with_anneal = edf_only;
    with_anneal.anneal_fallback = true;
    with_anneal.anneal_seed = 3;
    with_anneal.anneal_evaluations = 4000;
    const SharedSynthesisResult plain = synthesize_shared(*inst.app, res.bounds, edf_only);
    const SharedSynthesisResult strong =
        synthesize_shared(*inst.app, res.bounds, with_anneal);
    Table s({"probe", "found", "units (P1,P2,r1)", "cost", "scheduler probes"});
    auto fmt_units = [&](const SharedSynthesisResult& r) {
      if (!r.found) return std::string("-");
      return std::to_string(r.caps.of(inst.catalog->find("P1"))) + "," +
             std::to_string(r.caps.of(inst.catalog->find("P2"))) + "," +
             std::to_string(r.caps.of(inst.catalog->find("r1")));
    };
    s.add("EDF only", plain.found ? "yes" : "no", fmt_units(plain),
          plain.found ? plain.cost : 0, plain.scheduler_probes);
    s.add("EDF + anneal fallback", strong.found ? "yes" : "no", fmt_units(strong),
          strong.found ? strong.cost : 0, strong.scheduler_probes);
    std::printf("%s(Eq.-7.1 floor: %lld -- the search lattice STARTS at the LB vector,\n"
                " so every probe below the bound is skipped by construction)\n\n",
                s.to_string().c_str(), static_cast<long long>(res.shared_cost.total));
  }
}

void BM_SynthesisWithPruning(benchmark::State& state) {
  ProblemInstance inst = workload(41, 12);
  AnalysisOptions opts;
  opts.model = SystemModel::Dedicated;
  const AnalysisResult res = analyze(*inst.app, opts, &inst.platform);
  SynthesisOptions sopts;
  sopts.use_lower_bound_pruning = true;
  sopts.max_instances_per_type = 4;
  for (auto _ : state) {
    benchmark::DoNotOptimize(synthesize_dedicated(*inst.app, inst.platform, res.bounds, sopts));
  }
}
BENCHMARK(BM_SynthesisWithPruning);

void BM_SynthesisWithoutPruning(benchmark::State& state) {
  ProblemInstance inst = workload(41, 12);
  AnalysisOptions opts;
  opts.model = SystemModel::Dedicated;
  const AnalysisResult res = analyze(*inst.app, opts, &inst.platform);
  SynthesisOptions sopts;
  sopts.use_lower_bound_pruning = false;
  sopts.max_instances_per_type = 4;
  for (auto _ : state) {
    benchmark::DoNotOptimize(synthesize_dedicated(*inst.app, inst.platform, res.bounds, sopts));
  }
}
BENCHMARK(BM_SynthesisWithoutPruning);

}  // namespace

int main(int argc, char** argv) {
  print_report();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
