// File-driven analysis CLI: read a problem instance in the rtlb text format,
// run the four-step analysis, and optionally schedule it and draw a Gantt
// chart.
//
//   $ ./example_analyze_file examples/instances/paper.rtlb
//   $ ./example_analyze_file --model dedicated --schedule --gantt file.rtlb
//   $ ./example_analyze_file --units 3 --schedule anneal --gantt file.rtlb
//
// Flags:
//   --model shared|dedicated   analysis model (default shared; dedicated
//                              needs `node` lines in the file)
//   --schedule [edf|anneal]    also construct a shared-model schedule with
//                              --units units of everything (default edf)
//   --units N                  capacity per resource for --schedule (default
//                              the per-resource LB_r values)
//   --gantt                    render the schedule as ASCII lanes
//   --svg FILE                 write the schedule as an SVG document
//   --json FILE                write the analysis report as JSON
//   --no-partition             evaluate bounds without Theorem-5 blocks
//   --threads N                scan threads for the bound engine (1 =
//                              serial, 0 = one per hardware thread);
//                              results are identical at any value
//   --prune                    skip candidate intervals that cannot beat
//                              the incumbent density (same bounds, fewer
//                              intervals evaluated)
//   --lint LEVEL               pre-flight lint gate: off, report, errors
//                              (default), or warnings. Diagnostics are
//                              printed before the analysis; at `errors` and
//                              above, instances with error-level findings
//                              are refused (exit 1) before any bounding.
//                              Lint-clean instances produce byte-identical
//                              results at every level.
//   --cert FILE                write the pipeline certificate as JSON
//                              (auditable offline with tools/rtlb_check)
//   --check                    run the independent certificate checker on
//                              the result before printing it; a violated
//                              side-condition aborts with the pinpointed
//                              failure (exit 1)
//   --trace FILE               instrument the pipeline run and write a
//                              Chrome trace-event file (one span per stage,
//                              work counters as args; open in
//                              chrome://tracing or Perfetto). With --json,
//                              the report also gains a "timing" block.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include "src/core/analysis.hpp"
#include "src/core/report.hpp"
#include "src/lint/recurrent.hpp"
#include "src/model/io.hpp"
#include "src/obs/trace.hpp"
#include "src/sched/annealing.hpp"
#include "src/sched/feasibility.hpp"
#include "src/sched/gantt.hpp"
#include "src/sched/list_scheduler.hpp"
#include "src/sched/svg.hpp"
#include "src/workload/characterize.hpp"
#include "src/workload/workload.hpp"

using namespace rtlb;

namespace {

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--model shared|dedicated] [--schedule [edf|anneal]]\n"
               "          [--units N] [--gantt] [--no-partition] [--threads N]\n"
               "          [--prune] [--lint off|report|errors|warnings]\n"
               "          [--cert FILE] [--check] [--trace FILE] <instance-file>\n",
               argv0);
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  std::string path;
  AnalysisOptions options;
  options.lint_level = LintLevel::kErrors;  // pre-flight gate on by default
  bool want_schedule = false;
  bool want_gantt = false;
  std::string svg_path;
  std::string json_path;
  std::string scheduler = "edf";
  std::string cert_path;
  std::string trace_path;
  Trace trace;
  int units = -1;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--model") {
      if (++i >= argc) usage(argv[0]);
      const std::string model = argv[i];
      if (model == "shared") options.model = SystemModel::Shared;
      else if (model == "dedicated") options.model = SystemModel::Dedicated;
      else usage(argv[0]);
    } else if (arg == "--schedule") {
      want_schedule = true;
      if (i + 1 < argc && (std::strcmp(argv[i + 1], "edf") == 0 ||
                           std::strcmp(argv[i + 1], "anneal") == 0)) {
        scheduler = argv[++i];
      }
    } else if (arg == "--units") {
      if (++i >= argc) usage(argv[0]);
      units = std::atoi(argv[i]);
    } else if (arg == "--gantt") {
      want_gantt = true;
    } else if (arg == "--svg") {
      if (++i >= argc) usage(argv[0]);
      svg_path = argv[i];
      want_schedule = true;
    } else if (arg == "--json") {
      if (++i >= argc) usage(argv[0]);
      json_path = argv[i];
    } else if (arg == "--no-partition") {
      options.lower_bound.use_partitioning = false;
    } else if (arg == "--threads") {
      if (++i >= argc) usage(argv[0]);
      options.lower_bound.num_threads = std::atoi(argv[i]);
    } else if (arg == "--prune") {
      options.lower_bound.enable_pruning = true;
    } else if (arg == "--cert") {
      if (++i >= argc) usage(argv[0]);
      cert_path = argv[i];
      options.emit_certificates = true;
    } else if (arg == "--check") {
      options.check_certificates = true;
    } else if (arg == "--trace") {
      if (++i >= argc) usage(argv[0]);
      trace_path = argv[i];
      options.trace = &trace;
    } else if (arg == "--lint") {
      if (++i >= argc) usage(argv[0]);
      const std::string level = argv[i];
      if (level == "off") options.lint_level = LintLevel::kOff;
      else if (level == "report") options.lint_level = LintLevel::kReport;
      else if (level == "errors") options.lint_level = LintLevel::kErrors;
      else if (level == "warnings") options.lint_level = LintLevel::kWarnings;
      else usage(argv[0]);
    } else if (!arg.empty() && arg[0] == '-') {
      usage(argv[0]);
    } else {
      path = arg;
    }
  }
  if (path.empty()) usage(argv[0]);

  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "cannot open '%s'\n", path.c_str());
    return 1;
  }

  ProblemInstance inst;
  try {
    // With the lint gate on, skip parse-time validation so the gate can
    // report EVERY structural finding as one batch instead of the first.
    inst = parse_instance(in, ParseOptions{.validate = options.lint_level == LintLevel::kOff});
  } catch (const ModelError& e) {
    std::fprintf(stderr, "%s: %s\n", path.c_str(), e.what());
    return 1;
  }

  const DedicatedPlatform* platform =
      inst.platform.num_node_types() > 0 ? &inst.platform : nullptr;
  if (options.model == SystemModel::Dedicated && platform == nullptr) {
    std::fprintf(stderr, "--model dedicated needs `node` lines in the instance file\n");
    return 1;
  }

  if (!inst.workload.empty()) {
    // Recurrent front door: gate the templates (template errors ALWAYS
    // refuse lowering, regardless of --lint level -- the analyze(Workload)
    // policy), then run the ordinary pipeline on the lowered application.
    const LintResult templates = lint_workload(*inst.catalog, inst.workload, platform);
    if (!templates.diagnostics.empty()) {
      std::printf("template lint:\n%s\n", format_lint_text(templates, path).c_str());
    }
    if (templates.errors > 0) {
      std::fprintf(stderr, "template errors refuse lowering; fix the findings above\n");
      return 1;
    }
    try {
      lower_instance(inst, LowerOptions{.chain_instances = true, .validate = false});
      inst.app->validate();
    } catch (const ModelError& e) {
      std::fprintf(stderr, "%s: %s\n", path.c_str(), e.what());
      return 1;
    }
  }

  AnalysisResult result;
  try {
    result = analyze(*inst.app, options, platform);
  } catch (const LintGateError& e) {
    std::fprintf(stderr, "%s", format_lint_text(e.result(), path).c_str());
    std::fprintf(stderr, "pre-flight gate refused the instance; fix the errors above or "
                         "re-run with --lint report\n");
    return 1;
  } catch (const CertificateCheckError& e) {
    std::fprintf(stderr, "%s", e.what());
    return 1;
  }
  if (result.lint && !result.lint->clean()) {
    std::printf("pre-flight lint:\n%s\n", format_lint_text(*result.lint, path).c_str());
  }

  std::printf("profile:\n%s\n",
              format_profile(*inst.app, characterize(*inst.app, result.windows)).c_str());
  std::printf("%s\n", format_windows_table(*inst.app, result.windows).c_str());
  std::printf("%s\n", format_partitions(*inst.app, result.partitions).c_str());
  std::printf("%s\n", format_bounds(*inst.app, result.bounds).c_str());
  std::printf("shared-model cost >= %lld\n", static_cast<long long>(result.shared_cost.total));
  if (result.dedicated_cost) {
    if (result.dedicated_cost->feasible) {
      std::printf("dedicated-model cost >= %lld (LP relaxation %.2f)\n",
                  static_cast<long long>(result.dedicated_cost->total),
                  result.dedicated_cost->relaxation);
    } else {
      std::printf("dedicated model: no assembly of the node menu can host every task\n");
    }
  }
  if (result.infeasible(*inst.app)) {
    std::printf("\nWARNING: some task window is smaller than its computation time --\n"
                "the constraints are infeasible on ANY system.\n");
  }

  if (result.certificate_check) {
    std::printf("certificate: every side-condition independently re-checked\n");
  }
  if (!cert_path.empty() && result.certificate) {
    std::ofstream out(cert_path);
    out << certificate_json(*result.certificate).dump(2) << "\n";
    std::printf("wrote certificate to %s (audit with tools/rtlb_check)\n", cert_path.c_str());
  }

  if (!trace_path.empty()) {
    std::ofstream out(trace_path);
    out << trace.chrome_json().dump(2) << "\n";
    std::printf("wrote pipeline trace to %s (chrome://tracing)\n", trace_path.c_str());
  }

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    out << report_json(*inst.app, result, options.trace).dump(2) << "\n";
    std::printf("wrote analysis report to %s\n", json_path.c_str());
  }

  if (!want_schedule) return 0;

  Capacities caps(inst.catalog->size(), 0);
  for (const ResourceBound& b : result.bounds) {
    caps.set(b.resource, units > 0 ? units : static_cast<int>(b.bound));
  }
  std::printf("\nscheduling (%s) with units:", scheduler.c_str());
  for (ResourceId r : inst.app->resource_set()) {
    std::printf(" %s=%d", inst.catalog->name(r).c_str(), caps.of(r));
  }
  std::printf("\n");

  Schedule schedule(inst.app->num_tasks());
  bool feasible = false;
  if (scheduler == "edf") {
    ListScheduleResult r = list_schedule_shared(*inst.app, caps);
    feasible = r.feasible;
    schedule = std::move(r.schedule);
    if (!feasible) std::printf("EDF failed: %s\n", r.failure.c_str());
  } else {
    AnnealOptions sa;
    sa.max_evaluations = 20000;
    AnnealResult r = anneal_schedule_shared(*inst.app, caps, sa);
    feasible = r.feasible;
    schedule = std::move(r.schedule);
    if (!feasible) {
      std::printf("annealing: best residual tardiness %lld after %d evaluations\n",
                  static_cast<long long>(r.best_energy), r.evaluations);
    }
  }
  if (feasible) {
    const auto violations = check_shared(*inst.app, schedule, caps);
    std::printf("schedule found; validator: %s\n",
                violations.empty() ? "clean" : violations.front().c_str());
  }
  if (want_gantt && schedule.complete()) {
    std::printf("\n%s", render_gantt_shared(*inst.app, schedule, caps).c_str());
  }
  if (!svg_path.empty() && schedule.complete()) {
    std::ofstream out(svg_path);
    out << render_svg_shared(*inst.app, schedule, caps);
    std::printf("wrote SVG timetable to %s\n", svg_path.c_str());
  }
  return feasible ? 0 : 1;
}
