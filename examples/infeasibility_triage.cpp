// Infeasibility triage: when a specification cannot be met, the analysis
// can say WHY -- which constraint chain squeezed a task's window shut, or
// which interval demands more units than a proposed system provides.
//
//   $ ./example_infeasibility_triage
//
// Walks three broken designs through diagnose()/explain() AND the static
// linter (src/lint), showing how the two views complement each other: lint
// flags the hopeless cases up front with stable codes (RTLB-E101 for the
// collapsed window, RTLB-E202 for the uncoverable task), while diagnose()
// names the exact constraint chain to relax. The same corpus ships as text
// instances under examples/instances/bad/ for `rtlb_lint`.
#include <cstdio>

#include "src/core/analysis.hpp"
#include "src/core/explain.hpp"
#include "src/lint/linter.hpp"

using namespace rtlb;

namespace {

void print_lint(const Application& app, const DedicatedPlatform* platform = nullptr) {
  std::printf("lint says:\n%s", format_lint_text(lint(app, platform)).c_str());
}

}  // namespace

int main() {
  ResourceCatalog catalog;
  const ResourceId cpu = catalog.add_processor_type("CPU", 10);
  const ResourceId dsp = catalog.add_processor_type("DSP", 25);
  const ResourceId camera = catalog.add_resource("camera", 30);

  // --- Case 1: a window collapse ----------------------------------------
  // capture -> detect -> alert across processor types; the alert deadline is
  // too tight for the message chain.
  std::printf("Case 1: an end-to-end deadline no system can meet\n");
  {
    Application app(catalog);
    Task capture;
    capture.name = "capture";
    capture.comp = 4;
    capture.deadline = 40;
    capture.proc = cpu;
    capture.resources = {camera};
    const TaskId t_capture = app.add_task(capture);

    Task detect;
    detect.name = "detect";
    detect.comp = 9;
    detect.deadline = 40;
    detect.proc = dsp;  // different processor: the message is always paid
    const TaskId t_detect = app.add_task(detect);

    Task alert;
    alert.name = "alert";
    alert.comp = 2;
    alert.deadline = 16;  // capture(4) + msg(3) + detect(9) + msg(2) + alert(2) = 20 > 16
    alert.proc = cpu;
    const TaskId t_alert = app.add_task(alert);

    app.add_edge(t_capture, t_detect, 3);
    app.add_edge(t_detect, t_alert, 2);

    const AnalysisResult res = analyze(app);
    const InfeasibilityReport report = diagnose(app, res.windows);
    std::printf("%s\n", explain(app, report).c_str());
    print_lint(app);  // RTLB-E101 on the squeezed tasks

    // The certificate names the chain; relax the alert deadline and re-run.
    app.task(t_alert).deadline = 20;
    const AnalysisResult fixed = analyze(app);
    std::printf("after relaxing alert's deadline to 20: %s\n\n",
                fixed.infeasible(app) ? "still infeasible" : "feasible (exactly zero slack)");
  }

  // --- Case 2: a capacity violation --------------------------------------
  std::printf("Case 2: a proposed system with too few cameras\n");
  {
    Application app(catalog);
    for (int k = 0; k < 3; ++k) {
      Task t;
      t.name = "stream" + std::to_string(k + 1);
      t.comp = 6;
      t.deadline = 8;  // three 6-tick streams due by 8: pairwise overlap forced
      t.proc = cpu;
      t.resources = {camera};
      app.add_task(std::move(t));
    }
    const AnalysisResult res = analyze(app);
    Capacities proposed(catalog.size(), 3);
    proposed.set(camera, 2);  // the designer hoped two cameras suffice
    const InfeasibilityReport report = diagnose(app, res.windows, &proposed);
    std::printf("%s\n", explain(app, report).c_str());
    std::printf("LB_camera = %lld: the analysis already demanded %lld units.\n",
                static_cast<long long>(res.bound_for(camera).value()),
                static_cast<long long>(res.bound_for(camera).value()));

    proposed.set(camera, static_cast<int>(res.bound_for(camera).value()));
    const InfeasibilityReport after = diagnose(app, res.windows, &proposed);
    std::printf("with %d cameras: %s\n", proposed.of(camera),
                after.any() ? "still over-committed" : "no over-commitment remains");
    // Capacity is a property of the PROPOSED system, not of the instance, so
    // the linter reports no error here -- that is diagnose()'s job.
    print_lint(app);
  }

  // --- Case 3: a node menu that cannot host a task ------------------------
  std::printf("\nCase 3: a dedicated menu with no CPU+camera node\n");
  {
    Application app(catalog);
    Task capture;
    capture.name = "capture";
    capture.comp = 4;
    capture.deadline = 40;
    capture.proc = cpu;
    capture.resources = {camera};
    app.add_task(capture);

    DedicatedPlatform platform;
    platform.add_node_type(NodeType{"bare", cpu, {}, 12});

    // Eq. 7.2's covering constraint for 'capture' has an empty left-hand
    // side; the lint gate refuses the instance before the ILP ever runs.
    print_lint(app, &platform);  // RTLB-E202 + RTLB-W203
    AnalysisOptions gated;
    gated.model = SystemModel::Dedicated;
    gated.lint_level = LintLevel::kErrors;
    try {
      analyze(app, gated, &platform);
      std::printf("unexpected: the gate let the instance through\n");
    } catch (const LintGateError& e) {
      std::printf("gate: %s\n", e.what());
    }

    // Repair: add the missing node type and the gate opens.
    platform.add_node_type(NodeType{"cpu+camera", cpu, {{camera, 1}}, 45});
    const AnalysisResult fixed = analyze(app, gated, &platform);
    std::printf("after adding a cpu+camera node: dedicated cost >= %lld\n",
                static_cast<long long>(fixed.dedicated_cost->total));
  }
  return 0;
}
