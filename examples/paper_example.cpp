// The full Section-8 walkthrough: the reconstructed Figure-7 application,
// the Table-1 windows, the step-2 partitions, the step-3 bounds, and both
// step-4 cost bounds -- printed in the paper's layout.
//
//   $ ./example_paper_example
#include <cstdio>

#include "src/core/analysis.hpp"
#include "src/core/overlap.hpp"
#include "src/workload/paper_example.hpp"

using namespace rtlb;

int main() {
  ProblemInstance inst = paper_example();
  const Application& app = *inst.app;

  AnalysisOptions options;
  options.model = SystemModel::Dedicated;
  const AnalysisResult result = analyze(app, options, &inst.platform);

  std::printf("Reconstruction of the ICDCS'95 Section-8 example (15 tasks,\n");
  std::printf("RES = {P1, P2, r1}, Lambda = {{P1,r1}, {P1}, {P2}}).\n\n");

  std::printf("Step 1 -- EST/LCT (Table 1):\n%s\n",
              format_windows_table(app, result.windows).c_str());

  std::printf("Step 2 -- partitions:\n%s\n",
              format_partitions(app, result.partitions).c_str());

  // The three interval demands the paper spells out.
  const ResourceId p1 = inst.catalog->find("P1");
  const std::vector<TaskId> st_p1 = app.tasks_using(p1);
  std::printf("Step 3 -- demands quoted in the text:\n");
  std::printf("  Theta(P1,0,3) = %lld (paper: 6)\n",
              static_cast<long long>(demand(app, result.windows, st_p1, 0, 3)));
  std::printf("  Theta(P1,3,6) = %lld (paper: 9)\n",
              static_cast<long long>(demand(app, result.windows, st_p1, 3, 6)));
  std::printf("  Theta(P1,3,8) = %lld (paper: 11)\n\n",
              static_cast<long long>(demand(app, result.windows, st_p1, 3, 8)));

  std::printf("Step 3 -- bounds (paper: LB_P1 = 3, LB_P2 = 2, LB_r1 = 2):\n%s\n",
              format_bounds(app, result.bounds).c_str());

  std::printf("Step 4 -- shared cost >= 3*CostR(P1) + 2*CostR(P2) + 2*CostR(r1) = %lld\n",
              static_cast<long long>(result.shared_cost.total));
  if (result.dedicated_cost && result.dedicated_cost->feasible) {
    std::printf("Step 4 -- dedicated ILP: x = (");
    for (std::size_t n = 0; n < result.dedicated_cost->node_counts.size(); ++n) {
      std::printf("%s%lld", n ? "," : "",
                  static_cast<long long>(result.dedicated_cost->node_counts[n]));
    }
    std::printf(") (paper: (2,1,2)), cost >= %lld, LP relaxation %.2f\n",
                static_cast<long long>(result.dedicated_cost->total),
                result.dedicated_cost->relaxation);
  }
  return 0;
}
