// Quickstart: build a small application in code, run the four-step analysis,
// and read out the bounds.
//
//   $ ./example_quickstart
//
// Walks the public API end to end: ResourceCatalog -> Application ->
// analyze() -> windows / partitions / bounds / costs.
#include <cstdio>
#include <string>

#include "src/core/analysis.hpp"

using namespace rtlb;

int main() {
  // 1. Declare the resource universe: processor types and plain resources,
  //    each with a unit cost (used by the step-4 cost bounds).
  ResourceCatalog catalog;
  const ResourceId cpu = catalog.add_processor_type("CPU", /*cost=*/10);
  const ResourceId dsp = catalog.add_processor_type("DSP", /*cost=*/25);
  const ResourceId sensor = catalog.add_resource("sensor", /*cost=*/40);

  // 2. Describe the application: a sense -> {filter, log} -> fuse diamond.
  Application app(catalog);
  Task sense;
  sense.name = "sense";
  sense.comp = 2;
  sense.release = 0;
  sense.deadline = 20;
  sense.proc = cpu;
  sense.resources = {sensor};
  const TaskId t_sense = app.add_task(sense);

  Task filter;
  filter.name = "filter";
  filter.comp = 5;
  filter.deadline = 14;
  filter.proc = dsp;  // signal processing runs on the DSP
  const TaskId t_filter = app.add_task(filter);

  Task log_task;
  log_task.name = "log";
  log_task.comp = 3;
  log_task.deadline = 20;
  log_task.proc = cpu;
  const TaskId t_log = app.add_task(log_task);

  Task fuse;
  fuse.name = "fuse";
  fuse.comp = 4;
  fuse.deadline = 20;  // hard end-to-end deadline
  fuse.proc = cpu;
  fuse.resources = {sensor};
  const TaskId t_fuse = app.add_task(fuse);

  // Precedence edges with message sizes (paid only across processors).
  app.add_edge(t_sense, t_filter, /*msg=*/3);
  app.add_edge(t_sense, t_log, /*msg=*/1);
  app.add_edge(t_filter, t_fuse, /*msg=*/2);
  app.add_edge(t_log, t_fuse, /*msg=*/1);

  // 3. A dedicated-model node menu (Lambda) to also get the ILP cost bound.
  DedicatedPlatform platform;
  platform.add_node_type(NodeType{"cpu-sensor", cpu, {{sensor, 1}}, 45});
  platform.add_node_type(NodeType{"cpu-bare", cpu, {}, 12});
  platform.add_node_type(NodeType{"dsp-bare", dsp, {}, 28});

  // 4. Run all four steps of the analysis.
  AnalysisOptions options;
  options.model = SystemModel::Dedicated;
  const AnalysisResult result = analyze(app, options, &platform);

  std::printf("Step 1 -- task windows (Table-1 layout):\n%s\n",
              format_windows_table(app, result.windows).c_str());
  std::printf("Step 2 -- partitions:\n%s\n",
              format_partitions(app, result.partitions).c_str());
  std::printf("Step 3 -- resource lower bounds:\n%s\n",
              format_bounds(app, result.bounds).c_str());

  std::printf("Step 4 -- shared-model cost >= %lld\n",
              static_cast<long long>(result.shared_cost.total));
  if (result.dedicated_cost && result.dedicated_cost->feasible) {
    std::printf("Step 4 -- dedicated-model cost >= %lld (LP relaxation %.2f), nodes:",
                static_cast<long long>(result.dedicated_cost->total),
                result.dedicated_cost->relaxation);
    for (std::size_t n = 0; n < platform.num_node_types(); ++n) {
      std::printf(" %s x%lld", platform.node_type(n).name.c_str(),
                  static_cast<long long>(result.dedicated_cost->node_counts[n]));
    }
    std::printf("\n");
  }
  return 0;
}
