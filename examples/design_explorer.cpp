// Design-space exploration for the dedicated model -- the paper's motivating
// application (Sections 1 and 7): "a designer can modify the set of resources
// dedicated to a processor and quickly estimate its effect on the overall
// system cost."
//
//   $ ./example_design_explorer [seed]
//
// Generates a random avionics-style workload, then for each of several node
// menus prints the step-4 cost bound (ILP + LP relaxation) and the actual
// cheapest machine the synthesis search can certify, with and without bound
// pruning -- showing both the bound's accuracy and the search work it saves.
#include <cstdio>
#include <cstdlib>

#include "src/common/table.hpp"
#include "src/core/analysis.hpp"
#include "src/synth/synthesis.hpp"
#include "src/workload/taskset_gen.hpp"

using namespace rtlb;

int main(int argc, char** argv) {
  const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 7;

  WorkloadParams params;
  params.seed = seed;
  params.num_tasks = 14;
  params.num_layers = 4;
  params.num_proc_types = 2;
  params.num_resources = 2;
  params.resource_prob = 0.5;
  params.laxity = 2.2;
  ProblemInstance inst = generate_workload(params);

  std::printf("Generated workload: %zu tasks, %zu edges, %zu node types in the menu\n\n",
              inst.app->num_tasks(), inst.app->dag().num_edges(),
              inst.platform.num_node_types());

  AnalysisOptions options;
  options.model = SystemModel::Dedicated;
  const AnalysisResult result = analyze(*inst.app, options, &inst.platform);

  std::printf("Resource lower bounds:\n%s\n",
              format_bounds(*inst.app, result.bounds).c_str());

  if (!result.dedicated_cost || !result.dedicated_cost->feasible) {
    std::printf("No assembly of this node menu can host the application.\n");
    return 0;
  }
  std::printf("Cost bound: ILP >= %lld (LP relaxation %.2f, %lld B&B nodes)\n\n",
              static_cast<long long>(result.dedicated_cost->total),
              result.dedicated_cost->relaxation,
              static_cast<long long>(result.dedicated_cost->ilp_nodes));

  Table table({"search", "found", "cost", "candidates", "sched-probes", "pruned"});
  for (const bool pruning : {true, false}) {
    SynthesisOptions sopts;
    sopts.use_lower_bound_pruning = pruning;
    sopts.max_instances_per_type = 4;
    const SynthesisResult synth =
        synthesize_dedicated(*inst.app, inst.platform, result.bounds, sopts);
    table.add(pruning ? "with LB pruning" : "without pruning",
              synth.found ? "yes" : "no", synth.found ? synth.cost : 0,
              synth.candidates_considered, synth.feasibility_checks,
              synth.pruned_by_bounds);
    if (pruning && synth.found) {
      std::printf("Cheapest certified machine:");
      for (std::size_t n = 0; n < synth.counts.size(); ++n) {
        if (synth.counts[n] > 0) {
          std::printf(" %s x%d", inst.platform.node_type(n).name.c_str(), synth.counts[n]);
        }
      }
      std::printf("  (cost %lld vs bound %lld)\n\n", static_cast<long long>(synth.cost),
                  static_cast<long long>(result.dedicated_cost->total));
    }
  }
  std::printf("%s", table.to_string().c_str());
  std::printf("\nThe bound prunes candidate machines before the expensive scheduling\n"
              "probe -- the search-time reduction the paper targets.\n");
  return 0;
}
