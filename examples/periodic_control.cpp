// A periodic engine-controller application: three transactions with
// harmonic periods, unrolled over the hyperperiod and pushed through the
// full pipeline -- analysis, provisioning from the bounds, scheduling,
// simulation, Gantt.
//
//   $ ./example_periodic_control
//
// Time unit: 0.1 ms ticks (a 10 ms fuel-injection period is 100 ticks).
#include <cstdio>

#include "src/core/analysis.hpp"
#include "src/sched/feasibility.hpp"
#include "src/sched/gantt.hpp"
#include "src/sched/list_scheduler.hpp"
#include "src/sim/simulator.hpp"
#include "src/workload/periodic.hpp"

using namespace rtlb;

int main() {
  ResourceCatalog catalog;
  const ResourceId ecu = catalog.add_processor_type("ECU", 30);    // control CPU
  const ResourceId dsp = catalog.add_processor_type("DSP", 45);    // knock-sensing DSP
  const ResourceId adc = catalog.add_resource("ADC", 12);          // sampling channel
  const ResourceId can = catalog.add_resource("CAN", 8);           // bus adapter

  // Fuel injection: sample -> compute -> actuate every 10 ms (100 ticks),
  // due within 6 ms of the period start.
  Transaction fuel;
  fuel.name = "fuel";
  fuel.period = 100;
  {
    PeriodicTask sample{"sample", 8, 0, 0, ecu, {adc}, false};
    PeriodicTask compute{"compute", 15, 0, 0, ecu, {}, false};
    PeriodicTask actuate{"actuate", 6, 0, 60, ecu, {}, false};
    fuel.tasks = {sample, compute, actuate};
    fuel.edges = {{0, 1, 2}, {1, 2, 1}};
  }

  // Knock detection on the DSP every 20 ms, feeding a spark correction.
  Transaction knock;
  knock.name = "knock";
  knock.period = 200;
  {
    PeriodicTask listen{"listen", 30, 0, 0, dsp, {adc}, false};
    PeriodicTask classify{"classify", 25, 0, 0, dsp, {}, false};
    PeriodicTask correct{"correct", 10, 0, 180, ecu, {}, false};
    knock.tasks = {listen, classify, correct};
    knock.edges = {{0, 1, 3}, {1, 2, 5}};
  }

  // Diagnostics every 40 ms: gather on the ECU, ship over CAN.
  Transaction diag;
  diag.name = "diag";
  diag.period = 400;
  {
    PeriodicTask gather{"gather", 20, 0, 0, ecu, {}, false};
    PeriodicTask ship{"ship", 12, 0, 0, ecu, {can}, false};
    diag.tasks = {gather, ship};
    diag.edges = {{0, 1, 4}};
  }

  const std::vector<Transaction> transactions{fuel, knock, diag};
  std::printf("hyperperiod: %lld ticks (%lld instances of fuel, %lld knock, %lld diag)\n\n",
              static_cast<long long>(hyperperiod(transactions)),
              static_cast<long long>(hyperperiod(transactions) / fuel.period),
              static_cast<long long>(hyperperiod(transactions) / knock.period),
              static_cast<long long>(hyperperiod(transactions) / diag.period));

  const Application app = unroll(catalog, transactions);
  std::printf("unrolled application: %zu tasks, %zu edges\n\n", app.num_tasks(),
              app.dag().num_edges());

  const AnalysisResult result = analyze(app);
  std::printf("%s\n", format_bounds(app, result.bounds).c_str());
  std::printf("partition blocks per resource:");
  for (const ResourcePartition& p : result.partitions) {
    std::printf(" %s:%zu", catalog.name(p.resource).c_str(), p.blocks.size());
  }
  std::printf("   (each busy slot analyzes independently -- Theorem 5)\n\n");

  Capacities caps(catalog.size(), 0);
  for (const ResourceBound& b : result.bounds) {
    caps.set(b.resource, static_cast<int>(b.bound));
  }
  const ProvisioningResult prov = provision_shared(app, caps, 50);
  if (!prov.feasible) {
    std::printf("provisioning failed within the unit cap\n");
    return 1;
  }
  std::printf("provisioned units:");
  for (ResourceId r : app.resource_set()) {
    std::printf(" %s=%d(LB %lld)", catalog.name(r).c_str(), prov.caps.of(r),
                static_cast<long long>(result.bound_for(r).value_or(0)));
  }
  std::printf("\n\n");

  const ListScheduleResult sched = list_schedule_shared(app, prov.caps);
  const SimReport rep = simulate_shared(app, sched.schedule, prov.caps);
  std::printf("simulation: %s (%zu events, %llu messages)\n\n",
              rep.ok ? "all deadlines met over the hyperperiod" : "VIOLATIONS",
              rep.events_processed, static_cast<unsigned long long>(rep.messages_delivered));

  GanttOptions gopt;
  gopt.max_width = 100;
  std::printf("%s", render_gantt_shared(app, sched.schedule, prov.caps, gopt).c_str());
  return rep.ok ? 0 : 1;
}
