// A periodic engine-controller application on the workload front door:
// three transactions with harmonic periods declared as a Workload, lowered
// over the hyperperiod by an AnalysisSession, and pushed through the full
// pipeline -- analysis, a warm template-level what-if (a faster fuel
// period), provisioning from the bounds, scheduling, simulation, Gantt.
//
//   $ ./example_periodic_control
//
// Time unit: 0.1 ms ticks (a 10 ms fuel-injection period is 100 ticks).
#include <cstdio>

#include "src/core/session.hpp"
#include "src/sched/feasibility.hpp"
#include "src/sched/gantt.hpp"
#include "src/sched/list_scheduler.hpp"
#include "src/sim/simulator.hpp"
#include "src/workload/workload.hpp"

using namespace rtlb;

int main() {
  ResourceCatalog catalog;
  const ResourceId ecu = catalog.add_processor_type("ECU", 30);    // control CPU
  const ResourceId dsp = catalog.add_processor_type("DSP", 45);    // knock-sensing DSP
  const ResourceId adc = catalog.add_resource("ADC", 12);          // sampling channel
  const ResourceId can = catalog.add_resource("CAN", 8);           // bus adapter

  Workload wl;

  // Fuel injection: sample -> compute -> actuate every 10 ms (100 ticks),
  // due within 6 ms of the period start.
  {
    Transaction fuel;
    fuel.name = "fuel";
    fuel.period = 100;
    TemplateTask sample{"sample", 8, 0, 0, ecu, {adc}, false};
    TemplateTask compute{"compute", 15, 0, 0, ecu, {}, false};
    TemplateTask actuate{"actuate", 6, 0, 60, ecu, {}, false};
    fuel.tasks = {sample, compute, actuate};
    fuel.edges = {{0, 1, 2}, {1, 2, 1}};
    wl.transactions.push_back(std::move(fuel));
  }

  // Knock detection on the DSP every 20 ms, feeding a spark correction.
  {
    Transaction knock;
    knock.name = "knock";
    knock.period = 200;
    TemplateTask listen{"listen", 30, 0, 0, dsp, {adc}, false};
    TemplateTask classify{"classify", 25, 0, 0, dsp, {}, false};
    TemplateTask correct{"correct", 10, 0, 180, ecu, {}, false};
    knock.tasks = {listen, classify, correct};
    knock.edges = {{0, 1, 3}, {1, 2, 5}};
    wl.transactions.push_back(std::move(knock));
  }

  // Diagnostics every 40 ms: gather on the ECU, ship over CAN.
  {
    Transaction diag;
    diag.name = "diag";
    diag.period = 400;
    TemplateTask gather{"gather", 20, 0, 0, ecu, {}, false};
    TemplateTask ship{"ship", 12, 0, 0, ecu, {can}, false};
    diag.tasks = {gather, ship};
    diag.edges = {{0, 1, 4}};
    wl.transactions.push_back(std::move(diag));
  }

  const Time h = hyperperiod(wl.transactions);
  std::printf("hyperperiod: %lld ticks (%lld instances of fuel, %lld knock, %lld diag)\n\n",
              static_cast<long long>(h),
              static_cast<long long>(h / wl.transactions[0].period),
              static_cast<long long>(h / wl.transactions[1].period),
              static_cast<long long>(h / wl.transactions[2].period));

  // The session lints the templates, lowers them over the hyperperiod, and
  // memoizes pipeline stages across the template what-if below.
  AnalysisSession session(catalog, wl);
  std::printf("lowered application: %zu tasks, %zu edges\n\n", session.app().num_tasks(),
              session.app().dag().num_edges());

  {
    const AnalysisResult& result = session.analyze();
    std::printf("%s\n", format_bounds(session.app(), result.bounds).c_str());
    std::printf("partition blocks per resource:");
    for (const ResourcePartition& p : result.partitions) {
      std::printf(" %s:%zu", catalog.name(p.resource).c_str(), p.blocks.size());
    }
    std::printf("   (each busy slot analyzes independently -- Theorem 5)\n\n");
  }

  // Template-level what-if, served WARM: tighten fuel injection to 8 ms.
  // The session re-lints, re-lowers, and reuses every activation slot the
  // delta left untouched (knock and diag blocks survive byte-identically).
  session.set_transaction_period("fuel", 80);
  const AnalysisResult& result = session.analyze();
  const Application& app = session.app();
  std::printf("what-if: fuel period 100 -> 80 ticks (%zu tasks after re-lowering)\n%s\n",
              app.num_tasks(), format_bounds(app, result.bounds).c_str());

  Capacities caps(catalog.size(), 0);
  for (const ResourceBound& b : result.bounds) {
    caps.set(b.resource, static_cast<int>(b.bound));
  }
  const ProvisioningResult prov = provision_shared(app, caps, 50);
  if (!prov.feasible) {
    std::printf("provisioning failed within the unit cap\n");
    return 1;
  }
  std::printf("provisioned units:");
  for (ResourceId r : app.resource_set()) {
    std::printf(" %s=%d(LB %lld)", catalog.name(r).c_str(), prov.caps.of(r),
                static_cast<long long>(result.bound_for(r).value_or(0)));
  }
  std::printf("\n\n");

  const ListScheduleResult sched = list_schedule_shared(app, prov.caps);
  const SimReport rep = simulate_shared(app, sched.schedule, prov.caps);
  std::printf("simulation: %s (%zu events, %llu messages)\n\n",
              rep.ok ? "all deadlines met over the hyperperiod" : "VIOLATIONS",
              rep.events_processed, static_cast<unsigned long long>(rep.messages_delivered));

  GanttOptions gopt;
  gopt.max_width = 100;
  std::printf("%s", render_gantt_shared(app, sched.schedule, prov.caps, gopt).c_str());
  return rep.ok ? 0 : 1;
}
