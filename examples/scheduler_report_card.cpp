// The paper's second use case, end to end: "the lower bounds can serve as a
// baseline for evaluating the effectiveness of various scheduling and
// synthesis heuristics."
//
//   $ ./example_scheduler_report_card [seed]
//
// For a batch of random workloads, every scheduler in the library is asked
// to provision a shared system (growing unit counts until it succeeds), and
// each is scored by its total overprovisioning above the LB_r floor -- a
// normalized, scheduler-independent report card.
#include <cstdio>
#include <cstdlib>
#include <numeric>

#include "src/common/table.hpp"
#include "src/core/analysis.hpp"
#include "src/sched/annealing.hpp"
#include "src/sched/list_scheduler.hpp"
#include "src/sim/online.hpp"
#include "src/workload/taskset_gen.hpp"

using namespace rtlb;

namespace {

/// Units above the LB floor a provisioning loop needs before `probe`
/// succeeds; -1 if it never does within the budget.
template <typename Probe>
int overprovision_score(const std::vector<ResourceBound>& bounds, std::size_t catalog_size,
                        Probe probe) {
  Capacities caps(catalog_size, 0);
  int floor_total = 0;
  for (const ResourceBound& b : bounds) {
    caps.set(b.resource, static_cast<int>(b.bound));
    floor_total += static_cast<int>(b.bound);
  }
  for (int extra = 0; extra <= 24; ++extra) {
    if (probe(caps)) {
      return std::accumulate(caps.units.begin(), caps.units.end(), 0) - floor_total;
    }
    // Round-robin growth over the used resources.
    ResourceId grow = bounds[static_cast<std::size_t>(extra) % bounds.size()].resource;
    caps.set(grow, caps.of(grow) + 1);
  }
  return -1;
}

}  // namespace

int main(int argc, char** argv) {
  const std::uint64_t base_seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 1;

  Table card({"seed", "tasks", "LB floor (units)", "EDF extra", "anneal extra",
              "online extra"});
  int edf_total = 0, sa_total = 0, online_total = 0, measured = 0;
  for (std::uint64_t k = 0; k < 8; ++k) {
    WorkloadParams params;
    params.seed = base_seed + k * 101;
    params.num_tasks = 16;
    params.num_proc_types = 2;
    params.num_resources = 1;
    params.laxity = 1.7;
    ProblemInstance inst = generate_workload(params);
    const AnalysisResult res = analyze(*inst.app);
    if (res.infeasible(*inst.app)) continue;

    int floor_total = 0;
    for (const ResourceBound& b : res.bounds) floor_total += static_cast<int>(b.bound);

    const int edf = overprovision_score(
        res.bounds, inst.catalog->size(),
        [&](const Capacities& caps) { return list_schedule_shared(*inst.app, caps).feasible; });
    const int sa = overprovision_score(
        res.bounds, inst.catalog->size(), [&](const Capacities& caps) {
          AnnealOptions opts;
          opts.seed = params.seed;
          opts.max_evaluations = 1500;
          return anneal_schedule_shared(*inst.app, caps, opts).feasible;
        });
    const int online = overprovision_score(
        res.bounds, inst.catalog->size(),
        [&](const Capacities& caps) { return dispatch_online_shared(*inst.app, caps).feasible; });

    if (edf < 0 || sa < 0 || online < 0) continue;
    ++measured;
    edf_total += edf;
    sa_total += sa;
    online_total += online;
    card.add(params.seed, inst.app->num_tasks(), floor_total, edf, sa, online);
  }
  std::printf("Scheduler report card: extra units above the LB_r floor each\n"
              "scheduler needs before it finds a feasible schedule.\n\n%s\n",
              card.to_string().c_str());
  if (measured > 0) {
    std::printf("totals over %d workloads: EDF +%d, annealing +%d, online +%d\n"
                "(smaller is better; 0 means the scheduler is as good as ANY scheduler\n"
                " can possibly be on that workload -- the bound's defining property)\n",
                measured, edf_total, sa_total, online_total);
  }
  return 0;
}
