// The surface-ship radar scenario the paper opens with (Molini et al. [8]):
// every detected contact must be identified within 0.2 s, engaged within 5 s,
// and an intercept launched within 0.5 s of engagement. This example models
// a salvo of simultaneous contacts as parallel identify -> track -> engage ->
// launch chains, asks the analysis how many signal processors, control
// processors, and launcher channels the ship needs, provisions a system from
// those bounds, and runs the resulting schedule in the simulator.
//
//   $ ./example_radar_tracking [num_contacts]
//
// Time unit: 10 ms ticks (so the 0.2 s identify deadline is 20 ticks).
#include <cstdio>
#include <cstdlib>
#include <string>

#include "src/core/analysis.hpp"
#include "src/sched/feasibility.hpp"
#include "src/sched/list_scheduler.hpp"
#include "src/sim/simulator.hpp"

using namespace rtlb;

int main(int argc, char** argv) {
  const int contacts = argc > 1 ? std::atoi(argv[1]) : 4;
  if (contacts < 1 || contacts > 32) {
    std::fprintf(stderr, "usage: %s [contacts in 1..32]\n", argv[0]);
    return 1;
  }

  ResourceCatalog catalog;
  const ResourceId sig = catalog.add_processor_type("SIG", 120);  // signal processor
  const ResourceId ctl = catalog.add_processor_type("CTL", 60);   // control processor
  const ResourceId radar = catalog.add_resource("radar-ch", 200); // radar channel
  const ResourceId launcher = catalog.add_resource("launcher", 900);

  Application app(catalog);
  for (int k = 0; k < contacts; ++k) {
    const std::string suffix = "#" + std::to_string(k + 1);
    const Time detect_at = 2 * k;  // staggered detections, 20 ms apart

    Task detect;  // radar return processing
    detect.name = "detect" + suffix;
    detect.comp = 4;
    detect.release = detect_at;
    detect.deadline = detect_at + 10;
    detect.proc = sig;
    detect.resources = {radar};
    const TaskId t_detect = app.add_task(detect);

    Task identify;  // classification: hard 0.2 s (20 ticks) from detection
    identify.name = "identify" + suffix;
    identify.comp = 8;
    identify.deadline = detect_at + 20;
    identify.proc = sig;
    identify.resources = {radar};
    const TaskId t_identify = app.add_task(identify);

    Task track;  // track file maintenance on the control side
    track.name = "track" + suffix;
    track.comp = 12;
    track.deadline = detect_at + 250;
    track.proc = ctl;
    const TaskId t_track = app.add_task(track);

    Task engage;  // engagement decision: 5 s (500 ticks) from detection
    engage.name = "engage" + suffix;
    engage.comp = 20;
    engage.deadline = detect_at + 500;
    engage.proc = ctl;
    const TaskId t_engage = app.add_task(engage);

    Task launch;  // launch sequencing: 0.5 s (50 ticks) after engagement
    launch.name = "launch" + suffix;
    launch.comp = 10;
    launch.deadline = detect_at + 550;
    launch.proc = ctl;
    launch.resources = {launcher};
    const TaskId t_launch = app.add_task(launch);

    app.add_edge(t_detect, t_identify, /*msg=*/1);
    app.add_edge(t_identify, t_track, /*msg=*/3);
    app.add_edge(t_track, t_engage, /*msg=*/2);
    app.add_edge(t_engage, t_launch, /*msg=*/1);
  }

  const AnalysisResult result = analyze(app);

  std::printf("Radar scenario with %d simultaneous contacts\n\n", contacts);
  std::printf("Resource lower bounds:\n%s\n", format_bounds(app, result.bounds).c_str());
  std::printf("Shared-model hardware cost >= %lld\n\n",
              static_cast<long long>(result.shared_cost.total));

  if (result.infeasible(app)) {
    std::printf("The timing constraints are infeasible at this salvo size: some task\n"
                "window is shorter than its computation time. No system suffices.\n");
    return 0;
  }

  // Provision a shared system starting from the bounds and schedule it.
  Capacities start(catalog.size(), 0);
  for (const ResourceBound& b : result.bounds) {
    start.set(b.resource, static_cast<int>(b.bound));
  }
  const ProvisioningResult prov = provision_shared(app, start, 200);
  if (!prov.feasible) {
    std::printf("EDF list scheduling could not provision this salvo within the unit cap.\n");
    return 0;
  }

  std::printf("Provisioned system (EDF-schedulable, grown from the bounds):\n");
  for (ResourceId r : app.resource_set()) {
    std::printf("  %-10s LB = %lld, provisioned = %d\n", catalog.name(r).c_str(),
                static_cast<long long>(result.bound_for(r).value_or(0)), prov.caps.of(r));
  }

  const ListScheduleResult sched = list_schedule_shared(app, prov.caps);
  const SimReport rep = simulate_shared(app, sched.schedule, prov.caps);
  std::printf("\nSimulation: %s, %zu events, %llu messages, last launch at t = %lld (%.2f s)\n",
              rep.ok ? "all deadlines met" : "VIOLATIONS", rep.events_processed,
              static_cast<unsigned long long>(rep.messages_delivered),
              static_cast<long long>(rep.finish_time),
              static_cast<double>(rep.finish_time) / 100.0);
  if (!rep.ok) std::printf("  first violation: %s\n", rep.violations[0].c_str());
  return rep.ok ? 0 : 1;
}
