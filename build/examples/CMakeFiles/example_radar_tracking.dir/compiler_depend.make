# Empty compiler generated dependencies file for example_radar_tracking.
# This may be replaced when dependencies are built.
