file(REMOVE_RECURSE
  "CMakeFiles/example_radar_tracking.dir/radar_tracking.cpp.o"
  "CMakeFiles/example_radar_tracking.dir/radar_tracking.cpp.o.d"
  "example_radar_tracking"
  "example_radar_tracking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_radar_tracking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
