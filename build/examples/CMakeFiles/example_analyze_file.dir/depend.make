# Empty dependencies file for example_analyze_file.
# This may be replaced when dependencies are built.
