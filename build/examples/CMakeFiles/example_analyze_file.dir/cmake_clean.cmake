file(REMOVE_RECURSE
  "CMakeFiles/example_analyze_file.dir/analyze_file.cpp.o"
  "CMakeFiles/example_analyze_file.dir/analyze_file.cpp.o.d"
  "example_analyze_file"
  "example_analyze_file.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_analyze_file.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
