file(REMOVE_RECURSE
  "CMakeFiles/example_periodic_control.dir/periodic_control.cpp.o"
  "CMakeFiles/example_periodic_control.dir/periodic_control.cpp.o.d"
  "example_periodic_control"
  "example_periodic_control.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_periodic_control.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
