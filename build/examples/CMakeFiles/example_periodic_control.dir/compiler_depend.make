# Empty compiler generated dependencies file for example_periodic_control.
# This may be replaced when dependencies are built.
