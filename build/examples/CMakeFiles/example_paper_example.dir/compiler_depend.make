# Empty compiler generated dependencies file for example_paper_example.
# This may be replaced when dependencies are built.
