file(REMOVE_RECURSE
  "CMakeFiles/example_paper_example.dir/paper_example.cpp.o"
  "CMakeFiles/example_paper_example.dir/paper_example.cpp.o.d"
  "example_paper_example"
  "example_paper_example.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_paper_example.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
