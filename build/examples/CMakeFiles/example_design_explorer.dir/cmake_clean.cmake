file(REMOVE_RECURSE
  "CMakeFiles/example_design_explorer.dir/design_explorer.cpp.o"
  "CMakeFiles/example_design_explorer.dir/design_explorer.cpp.o.d"
  "example_design_explorer"
  "example_design_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_design_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
