# Empty compiler generated dependencies file for example_design_explorer.
# This may be replaced when dependencies are built.
