# Empty compiler generated dependencies file for example_scheduler_report_card.
# This may be replaced when dependencies are built.
