file(REMOVE_RECURSE
  "CMakeFiles/example_scheduler_report_card.dir/scheduler_report_card.cpp.o"
  "CMakeFiles/example_scheduler_report_card.dir/scheduler_report_card.cpp.o.d"
  "example_scheduler_report_card"
  "example_scheduler_report_card.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_scheduler_report_card.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
