file(REMOVE_RECURSE
  "CMakeFiles/example_infeasibility_triage.dir/infeasibility_triage.cpp.o"
  "CMakeFiles/example_infeasibility_triage.dir/infeasibility_triage.cpp.o.d"
  "example_infeasibility_triage"
  "example_infeasibility_triage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_infeasibility_triage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
