# Empty compiler generated dependencies file for example_infeasibility_triage.
# This may be replaced when dependencies are built.
