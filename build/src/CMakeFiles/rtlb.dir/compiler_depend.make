# Empty compiler generated dependencies file for rtlb.
# This may be replaced when dependencies are built.
