file(REMOVE_RECURSE
  "librtlb.a"
)
