
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/al_mohummed.cpp" "src/CMakeFiles/rtlb.dir/baselines/al_mohummed.cpp.o" "gcc" "src/CMakeFiles/rtlb.dir/baselines/al_mohummed.cpp.o.d"
  "/root/repo/src/baselines/fernandez_bussell.cpp" "src/CMakeFiles/rtlb.dir/baselines/fernandez_bussell.cpp.o" "gcc" "src/CMakeFiles/rtlb.dir/baselines/fernandez_bussell.cpp.o.d"
  "/root/repo/src/baselines/makespan_bound.cpp" "src/CMakeFiles/rtlb.dir/baselines/makespan_bound.cpp.o" "gcc" "src/CMakeFiles/rtlb.dir/baselines/makespan_bound.cpp.o.d"
  "/root/repo/src/baselines/trivial_bounds.cpp" "src/CMakeFiles/rtlb.dir/baselines/trivial_bounds.cpp.o" "gcc" "src/CMakeFiles/rtlb.dir/baselines/trivial_bounds.cpp.o.d"
  "/root/repo/src/common/csv.cpp" "src/CMakeFiles/rtlb.dir/common/csv.cpp.o" "gcc" "src/CMakeFiles/rtlb.dir/common/csv.cpp.o.d"
  "/root/repo/src/common/json.cpp" "src/CMakeFiles/rtlb.dir/common/json.cpp.o" "gcc" "src/CMakeFiles/rtlb.dir/common/json.cpp.o.d"
  "/root/repo/src/common/random.cpp" "src/CMakeFiles/rtlb.dir/common/random.cpp.o" "gcc" "src/CMakeFiles/rtlb.dir/common/random.cpp.o.d"
  "/root/repo/src/common/strings.cpp" "src/CMakeFiles/rtlb.dir/common/strings.cpp.o" "gcc" "src/CMakeFiles/rtlb.dir/common/strings.cpp.o.d"
  "/root/repo/src/common/table.cpp" "src/CMakeFiles/rtlb.dir/common/table.cpp.o" "gcc" "src/CMakeFiles/rtlb.dir/common/table.cpp.o.d"
  "/root/repo/src/core/analysis.cpp" "src/CMakeFiles/rtlb.dir/core/analysis.cpp.o" "gcc" "src/CMakeFiles/rtlb.dir/core/analysis.cpp.o.d"
  "/root/repo/src/core/cost_bound.cpp" "src/CMakeFiles/rtlb.dir/core/cost_bound.cpp.o" "gcc" "src/CMakeFiles/rtlb.dir/core/cost_bound.cpp.o.d"
  "/root/repo/src/core/est_lct.cpp" "src/CMakeFiles/rtlb.dir/core/est_lct.cpp.o" "gcc" "src/CMakeFiles/rtlb.dir/core/est_lct.cpp.o.d"
  "/root/repo/src/core/explain.cpp" "src/CMakeFiles/rtlb.dir/core/explain.cpp.o" "gcc" "src/CMakeFiles/rtlb.dir/core/explain.cpp.o.d"
  "/root/repo/src/core/joint_bound.cpp" "src/CMakeFiles/rtlb.dir/core/joint_bound.cpp.o" "gcc" "src/CMakeFiles/rtlb.dir/core/joint_bound.cpp.o.d"
  "/root/repo/src/core/lower_bound.cpp" "src/CMakeFiles/rtlb.dir/core/lower_bound.cpp.o" "gcc" "src/CMakeFiles/rtlb.dir/core/lower_bound.cpp.o.d"
  "/root/repo/src/core/mergeable.cpp" "src/CMakeFiles/rtlb.dir/core/mergeable.cpp.o" "gcc" "src/CMakeFiles/rtlb.dir/core/mergeable.cpp.o.d"
  "/root/repo/src/core/overlap.cpp" "src/CMakeFiles/rtlb.dir/core/overlap.cpp.o" "gcc" "src/CMakeFiles/rtlb.dir/core/overlap.cpp.o.d"
  "/root/repo/src/core/partition.cpp" "src/CMakeFiles/rtlb.dir/core/partition.cpp.o" "gcc" "src/CMakeFiles/rtlb.dir/core/partition.cpp.o.d"
  "/root/repo/src/core/report.cpp" "src/CMakeFiles/rtlb.dir/core/report.cpp.o" "gcc" "src/CMakeFiles/rtlb.dir/core/report.cpp.o.d"
  "/root/repo/src/core/sensitivity.cpp" "src/CMakeFiles/rtlb.dir/core/sensitivity.cpp.o" "gcc" "src/CMakeFiles/rtlb.dir/core/sensitivity.cpp.o.d"
  "/root/repo/src/graph/dag.cpp" "src/CMakeFiles/rtlb.dir/graph/dag.cpp.o" "gcc" "src/CMakeFiles/rtlb.dir/graph/dag.cpp.o.d"
  "/root/repo/src/graph/generators.cpp" "src/CMakeFiles/rtlb.dir/graph/generators.cpp.o" "gcc" "src/CMakeFiles/rtlb.dir/graph/generators.cpp.o.d"
  "/root/repo/src/lp/ilp.cpp" "src/CMakeFiles/rtlb.dir/lp/ilp.cpp.o" "gcc" "src/CMakeFiles/rtlb.dir/lp/ilp.cpp.o.d"
  "/root/repo/src/lp/simplex.cpp" "src/CMakeFiles/rtlb.dir/lp/simplex.cpp.o" "gcc" "src/CMakeFiles/rtlb.dir/lp/simplex.cpp.o.d"
  "/root/repo/src/model/application.cpp" "src/CMakeFiles/rtlb.dir/model/application.cpp.o" "gcc" "src/CMakeFiles/rtlb.dir/model/application.cpp.o.d"
  "/root/repo/src/model/io.cpp" "src/CMakeFiles/rtlb.dir/model/io.cpp.o" "gcc" "src/CMakeFiles/rtlb.dir/model/io.cpp.o.d"
  "/root/repo/src/model/platform.cpp" "src/CMakeFiles/rtlb.dir/model/platform.cpp.o" "gcc" "src/CMakeFiles/rtlb.dir/model/platform.cpp.o.d"
  "/root/repo/src/sched/annealing.cpp" "src/CMakeFiles/rtlb.dir/sched/annealing.cpp.o" "gcc" "src/CMakeFiles/rtlb.dir/sched/annealing.cpp.o.d"
  "/root/repo/src/sched/branch_bound.cpp" "src/CMakeFiles/rtlb.dir/sched/branch_bound.cpp.o" "gcc" "src/CMakeFiles/rtlb.dir/sched/branch_bound.cpp.o.d"
  "/root/repo/src/sched/feasibility.cpp" "src/CMakeFiles/rtlb.dir/sched/feasibility.cpp.o" "gcc" "src/CMakeFiles/rtlb.dir/sched/feasibility.cpp.o.d"
  "/root/repo/src/sched/gantt.cpp" "src/CMakeFiles/rtlb.dir/sched/gantt.cpp.o" "gcc" "src/CMakeFiles/rtlb.dir/sched/gantt.cpp.o.d"
  "/root/repo/src/sched/list_scheduler.cpp" "src/CMakeFiles/rtlb.dir/sched/list_scheduler.cpp.o" "gcc" "src/CMakeFiles/rtlb.dir/sched/list_scheduler.cpp.o.d"
  "/root/repo/src/sched/optimal.cpp" "src/CMakeFiles/rtlb.dir/sched/optimal.cpp.o" "gcc" "src/CMakeFiles/rtlb.dir/sched/optimal.cpp.o.d"
  "/root/repo/src/sched/preemptive.cpp" "src/CMakeFiles/rtlb.dir/sched/preemptive.cpp.o" "gcc" "src/CMakeFiles/rtlb.dir/sched/preemptive.cpp.o.d"
  "/root/repo/src/sched/schedule.cpp" "src/CMakeFiles/rtlb.dir/sched/schedule.cpp.o" "gcc" "src/CMakeFiles/rtlb.dir/sched/schedule.cpp.o.d"
  "/root/repo/src/sched/schedule_io.cpp" "src/CMakeFiles/rtlb.dir/sched/schedule_io.cpp.o" "gcc" "src/CMakeFiles/rtlb.dir/sched/schedule_io.cpp.o.d"
  "/root/repo/src/sched/svg.cpp" "src/CMakeFiles/rtlb.dir/sched/svg.cpp.o" "gcc" "src/CMakeFiles/rtlb.dir/sched/svg.cpp.o.d"
  "/root/repo/src/sim/event_queue.cpp" "src/CMakeFiles/rtlb.dir/sim/event_queue.cpp.o" "gcc" "src/CMakeFiles/rtlb.dir/sim/event_queue.cpp.o.d"
  "/root/repo/src/sim/network.cpp" "src/CMakeFiles/rtlb.dir/sim/network.cpp.o" "gcc" "src/CMakeFiles/rtlb.dir/sim/network.cpp.o.d"
  "/root/repo/src/sim/online.cpp" "src/CMakeFiles/rtlb.dir/sim/online.cpp.o" "gcc" "src/CMakeFiles/rtlb.dir/sim/online.cpp.o.d"
  "/root/repo/src/sim/simulator.cpp" "src/CMakeFiles/rtlb.dir/sim/simulator.cpp.o" "gcc" "src/CMakeFiles/rtlb.dir/sim/simulator.cpp.o.d"
  "/root/repo/src/synth/pareto.cpp" "src/CMakeFiles/rtlb.dir/synth/pareto.cpp.o" "gcc" "src/CMakeFiles/rtlb.dir/synth/pareto.cpp.o.d"
  "/root/repo/src/synth/shared_synthesis.cpp" "src/CMakeFiles/rtlb.dir/synth/shared_synthesis.cpp.o" "gcc" "src/CMakeFiles/rtlb.dir/synth/shared_synthesis.cpp.o.d"
  "/root/repo/src/synth/synthesis.cpp" "src/CMakeFiles/rtlb.dir/synth/synthesis.cpp.o" "gcc" "src/CMakeFiles/rtlb.dir/synth/synthesis.cpp.o.d"
  "/root/repo/src/workload/characterize.cpp" "src/CMakeFiles/rtlb.dir/workload/characterize.cpp.o" "gcc" "src/CMakeFiles/rtlb.dir/workload/characterize.cpp.o.d"
  "/root/repo/src/workload/paper_example.cpp" "src/CMakeFiles/rtlb.dir/workload/paper_example.cpp.o" "gcc" "src/CMakeFiles/rtlb.dir/workload/paper_example.cpp.o.d"
  "/root/repo/src/workload/periodic.cpp" "src/CMakeFiles/rtlb.dir/workload/periodic.cpp.o" "gcc" "src/CMakeFiles/rtlb.dir/workload/periodic.cpp.o.d"
  "/root/repo/src/workload/taskset_gen.cpp" "src/CMakeFiles/rtlb.dir/workload/taskset_gen.cpp.o" "gcc" "src/CMakeFiles/rtlb.dir/workload/taskset_gen.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
