file(REMOVE_RECURSE
  "CMakeFiles/bench_baselines.dir/bench_baselines.cpp.o"
  "CMakeFiles/bench_baselines.dir/bench_baselines.cpp.o.d"
  "bench_baselines"
  "bench_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
