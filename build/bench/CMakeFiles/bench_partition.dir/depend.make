# Empty dependencies file for bench_partition.
# This may be replaced when dependencies are built.
