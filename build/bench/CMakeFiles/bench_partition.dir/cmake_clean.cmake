file(REMOVE_RECURSE
  "CMakeFiles/bench_partition.dir/bench_partition.cpp.o"
  "CMakeFiles/bench_partition.dir/bench_partition.cpp.o.d"
  "bench_partition"
  "bench_partition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_partition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
