file(REMOVE_RECURSE
  "CMakeFiles/bench_cost.dir/bench_cost.cpp.o"
  "CMakeFiles/bench_cost.dir/bench_cost.cpp.o.d"
  "bench_cost"
  "bench_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
