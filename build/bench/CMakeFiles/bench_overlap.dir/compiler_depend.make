# Empty compiler generated dependencies file for bench_overlap.
# This may be replaced when dependencies are built.
