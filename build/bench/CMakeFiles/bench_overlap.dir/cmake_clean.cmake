file(REMOVE_RECURSE
  "CMakeFiles/bench_overlap.dir/bench_overlap.cpp.o"
  "CMakeFiles/bench_overlap.dir/bench_overlap.cpp.o.d"
  "bench_overlap"
  "bench_overlap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_overlap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
