file(REMOVE_RECURSE
  "CMakeFiles/bench_synthesis.dir/bench_synthesis.cpp.o"
  "CMakeFiles/bench_synthesis.dir/bench_synthesis.cpp.o.d"
  "bench_synthesis"
  "bench_synthesis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_synthesis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
