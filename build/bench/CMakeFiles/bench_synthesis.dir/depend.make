# Empty dependencies file for bench_synthesis.
# This may be replaced when dependencies are built.
