file(REMOVE_RECURSE
  "CMakeFiles/bench_sched.dir/bench_sched.cpp.o"
  "CMakeFiles/bench_sched.dir/bench_sched.cpp.o.d"
  "bench_sched"
  "bench_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
