# Empty dependencies file for bench_sched.
# This may be replaced when dependencies are built.
