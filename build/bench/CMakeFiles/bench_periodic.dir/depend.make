# Empty dependencies file for bench_periodic.
# This may be replaced when dependencies are built.
