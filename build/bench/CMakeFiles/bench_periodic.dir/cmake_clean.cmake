file(REMOVE_RECURSE
  "CMakeFiles/bench_periodic.dir/bench_periodic.cpp.o"
  "CMakeFiles/bench_periodic.dir/bench_periodic.cpp.o.d"
  "bench_periodic"
  "bench_periodic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_periodic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
