# Empty dependencies file for bench_contention.
# This may be replaced when dependencies are built.
