# Empty compiler generated dependencies file for test_explain.
# This may be replaced when dependencies are built.
