file(REMOVE_RECURSE
  "CMakeFiles/test_makespan.dir/test_makespan.cpp.o"
  "CMakeFiles/test_makespan.dir/test_makespan.cpp.o.d"
  "test_makespan"
  "test_makespan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_makespan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
