# Empty compiler generated dependencies file for test_makespan.
# This may be replaced when dependencies are built.
