# Empty dependencies file for test_schedule_io.
# This may be replaced when dependencies are built.
