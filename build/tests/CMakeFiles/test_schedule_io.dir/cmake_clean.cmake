file(REMOVE_RECURSE
  "CMakeFiles/test_schedule_io.dir/test_schedule_io.cpp.o"
  "CMakeFiles/test_schedule_io.dir/test_schedule_io.cpp.o.d"
  "test_schedule_io"
  "test_schedule_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_schedule_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
