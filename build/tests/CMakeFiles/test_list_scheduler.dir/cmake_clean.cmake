file(REMOVE_RECURSE
  "CMakeFiles/test_list_scheduler.dir/test_list_scheduler.cpp.o"
  "CMakeFiles/test_list_scheduler.dir/test_list_scheduler.cpp.o.d"
  "test_list_scheduler"
  "test_list_scheduler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_list_scheduler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
