# Empty dependencies file for test_ilp.
# This may be replaced when dependencies are built.
