file(REMOVE_RECURSE
  "CMakeFiles/test_ilp.dir/test_ilp.cpp.o"
  "CMakeFiles/test_ilp.dir/test_ilp.cpp.o.d"
  "test_ilp"
  "test_ilp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ilp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
