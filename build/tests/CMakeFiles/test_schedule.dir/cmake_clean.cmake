file(REMOVE_RECURSE
  "CMakeFiles/test_schedule.dir/test_schedule.cpp.o"
  "CMakeFiles/test_schedule.dir/test_schedule.cpp.o.d"
  "test_schedule"
  "test_schedule.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_schedule.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
