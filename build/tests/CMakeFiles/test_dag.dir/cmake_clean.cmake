file(REMOVE_RECURSE
  "CMakeFiles/test_dag.dir/test_dag.cpp.o"
  "CMakeFiles/test_dag.dir/test_dag.cpp.o.d"
  "test_dag"
  "test_dag.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dag.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
