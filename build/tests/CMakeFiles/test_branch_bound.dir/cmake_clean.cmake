file(REMOVE_RECURSE
  "CMakeFiles/test_branch_bound.dir/test_branch_bound.cpp.o"
  "CMakeFiles/test_branch_bound.dir/test_branch_bound.cpp.o.d"
  "test_branch_bound"
  "test_branch_bound.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_branch_bound.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
