# Empty compiler generated dependencies file for test_branch_bound.
# This may be replaced when dependencies are built.
