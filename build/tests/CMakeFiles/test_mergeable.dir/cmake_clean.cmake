file(REMOVE_RECURSE
  "CMakeFiles/test_mergeable.dir/test_mergeable.cpp.o"
  "CMakeFiles/test_mergeable.dir/test_mergeable.cpp.o.d"
  "test_mergeable"
  "test_mergeable.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mergeable.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
