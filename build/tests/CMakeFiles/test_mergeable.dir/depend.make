# Empty dependencies file for test_mergeable.
# This may be replaced when dependencies are built.
