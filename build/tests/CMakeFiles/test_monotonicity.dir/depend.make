# Empty dependencies file for test_monotonicity.
# This may be replaced when dependencies are built.
