file(REMOVE_RECURSE
  "CMakeFiles/test_monotonicity.dir/test_monotonicity.cpp.o"
  "CMakeFiles/test_monotonicity.dir/test_monotonicity.cpp.o.d"
  "test_monotonicity"
  "test_monotonicity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_monotonicity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
