# Empty dependencies file for test_joint_bound.
# This may be replaced when dependencies are built.
