file(REMOVE_RECURSE
  "CMakeFiles/test_joint_bound.dir/test_joint_bound.cpp.o"
  "CMakeFiles/test_joint_bound.dir/test_joint_bound.cpp.o.d"
  "test_joint_bound"
  "test_joint_bound.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_joint_bound.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
