file(REMOVE_RECURSE
  "CMakeFiles/test_characterize.dir/test_characterize.cpp.o"
  "CMakeFiles/test_characterize.dir/test_characterize.cpp.o.d"
  "test_characterize"
  "test_characterize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_characterize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
