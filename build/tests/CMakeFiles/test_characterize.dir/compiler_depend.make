# Empty compiler generated dependencies file for test_characterize.
# This may be replaced when dependencies are built.
