# Empty dependencies file for test_online.
# This may be replaced when dependencies are built.
