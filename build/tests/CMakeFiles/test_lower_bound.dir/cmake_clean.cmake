file(REMOVE_RECURSE
  "CMakeFiles/test_lower_bound.dir/test_lower_bound.cpp.o"
  "CMakeFiles/test_lower_bound.dir/test_lower_bound.cpp.o.d"
  "test_lower_bound"
  "test_lower_bound.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lower_bound.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
