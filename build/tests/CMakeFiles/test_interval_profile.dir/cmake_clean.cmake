file(REMOVE_RECURSE
  "CMakeFiles/test_interval_profile.dir/test_interval_profile.cpp.o"
  "CMakeFiles/test_interval_profile.dir/test_interval_profile.cpp.o.d"
  "test_interval_profile"
  "test_interval_profile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_interval_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
