# Empty dependencies file for test_interval_profile.
# This may be replaced when dependencies are built.
