# Empty compiler generated dependencies file for test_cost_bound.
# This may be replaced when dependencies are built.
