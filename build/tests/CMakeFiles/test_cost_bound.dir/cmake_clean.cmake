file(REMOVE_RECURSE
  "CMakeFiles/test_cost_bound.dir/test_cost_bound.cpp.o"
  "CMakeFiles/test_cost_bound.dir/test_cost_bound.cpp.o.d"
  "test_cost_bound"
  "test_cost_bound.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cost_bound.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
