# Empty compiler generated dependencies file for test_periodic.
# This may be replaced when dependencies are built.
