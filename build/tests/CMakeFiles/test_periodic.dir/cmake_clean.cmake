file(REMOVE_RECURSE
  "CMakeFiles/test_periodic.dir/test_periodic.cpp.o"
  "CMakeFiles/test_periodic.dir/test_periodic.cpp.o.d"
  "test_periodic"
  "test_periodic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_periodic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
