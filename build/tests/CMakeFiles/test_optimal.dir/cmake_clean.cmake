file(REMOVE_RECURSE
  "CMakeFiles/test_optimal.dir/test_optimal.cpp.o"
  "CMakeFiles/test_optimal.dir/test_optimal.cpp.o.d"
  "test_optimal"
  "test_optimal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_optimal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
