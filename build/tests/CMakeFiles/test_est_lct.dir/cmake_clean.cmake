file(REMOVE_RECURSE
  "CMakeFiles/test_est_lct.dir/test_est_lct.cpp.o"
  "CMakeFiles/test_est_lct.dir/test_est_lct.cpp.o.d"
  "test_est_lct"
  "test_est_lct.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_est_lct.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
