# Empty dependencies file for test_est_lct.
# This may be replaced when dependencies are built.
