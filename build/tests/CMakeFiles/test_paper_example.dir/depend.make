# Empty dependencies file for test_paper_example.
# This may be replaced when dependencies are built.
