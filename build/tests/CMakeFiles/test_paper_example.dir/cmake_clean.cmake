file(REMOVE_RECURSE
  "CMakeFiles/test_paper_example.dir/test_paper_example.cpp.o"
  "CMakeFiles/test_paper_example.dir/test_paper_example.cpp.o.d"
  "test_paper_example"
  "test_paper_example.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_paper_example.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
