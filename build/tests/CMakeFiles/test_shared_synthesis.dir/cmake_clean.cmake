file(REMOVE_RECURSE
  "CMakeFiles/test_shared_synthesis.dir/test_shared_synthesis.cpp.o"
  "CMakeFiles/test_shared_synthesis.dir/test_shared_synthesis.cpp.o.d"
  "test_shared_synthesis"
  "test_shared_synthesis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_shared_synthesis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
