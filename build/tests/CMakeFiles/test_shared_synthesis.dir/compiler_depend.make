# Empty compiler generated dependencies file for test_shared_synthesis.
# This may be replaced when dependencies are built.
