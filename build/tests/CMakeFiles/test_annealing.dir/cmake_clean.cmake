file(REMOVE_RECURSE
  "CMakeFiles/test_annealing.dir/test_annealing.cpp.o"
  "CMakeFiles/test_annealing.dir/test_annealing.cpp.o.d"
  "test_annealing"
  "test_annealing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_annealing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
