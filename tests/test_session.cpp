// AnalysisSession correctness: a session must be indistinguishable from a
// cold analyze() at every query, no matter what delta sequence preceded it.
// The property test drives randomized sequences of deadline / message /
// comp / preemptive / platform deltas over generated workloads, with the
// session's own cross-check enabled AND an explicit result comparison here
// (belt and braces: the internal check uses the JSON report, the external
// one compares the structures field by field).
#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "src/common/random.hpp"
#include "src/core/report.hpp"
#include "src/core/session.hpp"
#include "src/model/io.hpp"
#include "src/workload/paper_example.hpp"
#include "src/workload/taskset_gen.hpp"
#include "src/workload/workload.hpp"

namespace rtlb {
namespace {

void expect_same_result(const Application& app, const AnalysisResult& got,
                        const AnalysisResult& want, const std::string& context) {
  EXPECT_EQ(report_string(app, got), report_string(app, want)) << context;
  ASSERT_EQ(got.joint.size(), want.joint.size()) << context;
  for (std::size_t i = 0; i < got.joint.size(); ++i) {
    EXPECT_EQ(got.joint[i].a, want.joint[i].a) << context;
    EXPECT_EQ(got.joint[i].b, want.joint[i].b) << context;
    EXPECT_EQ(got.joint[i].bound, want.joint[i].bound) << context;
    EXPECT_EQ(got.joint[i].witness_t1, want.joint[i].witness_t1) << context;
    EXPECT_EQ(got.joint[i].witness_t2, want.joint[i].witness_t2) << context;
  }
}

/// One randomized delta: pick a task (or edge) and perturb one field,
/// keeping the instance valid (deadline >= release + comp, comp >= 1).
void apply_random_delta(AnalysisSession& session, Rng& rng) {
  const Application& app = session.app();
  const TaskId i = static_cast<TaskId>(rng.index(app.num_tasks()));
  const Task& t = app.task(i);
  switch (rng.index(4)) {
    case 0: {  // deadline wiggle, never below release + comp
      const Time floor = t.release + t.comp;
      session.set_deadline(i, floor + rng.uniform(0, 40));
      break;
    }
    case 1: {  // comp wiggle, keeping the window big enough
      const Time window = t.deadline - t.release;
      const Time comp = rng.uniform(1, std::max<Time>(1, std::min<Time>(10, window)));
      session.set_comp(i, comp);
      break;
    }
    case 2: {  // flip preemptability
      session.set_preemptive(i, !t.preemptive);
      break;
    }
    default: {  // resize a message if the task has a successor
      if (!app.successors(i).empty()) {
        const TaskId j = app.successors(i)[rng.index(app.successors(i).size())];
        session.set_message(i, j, rng.uniform(0, 8));
      }
      break;
    }
  }
}

TEST(SessionProperty, MatchesColdAnalyzeAcrossRandomDeltaSequences) {
  struct Config {
    SystemModel model;
    bool platform;
    bool joint;
    bool pruning;
  };
  const Config configs[] = {
      {SystemModel::Shared, false, false, false},
      {SystemModel::Shared, true, true, true},
      {SystemModel::Dedicated, true, false, false},
  };
  for (const Config& cfg : configs) {
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
      WorkloadParams params;
      params.seed = seed * 17;
      params.num_tasks = 14;
      params.laxity = 1.6;
      params.resource_prob = 0.5;
      params.preemptive_prob = 0.3;
      ProblemInstance inst = generate_workload(params);

      AnalysisOptions options;
      options.model = cfg.model;
      options.joint_bounds = cfg.joint;
      options.lower_bound.enable_pruning = cfg.pruning;
      const DedicatedPlatform* platform = cfg.platform ? &inst.platform : nullptr;

      AnalysisSession session(*inst.app, options, platform);
      session.set_verify(true);
      Rng rng(seed * 1000 + static_cast<std::uint64_t>(cfg.model == SystemModel::Dedicated));
      for (int step = 0; step < 12; ++step) {
        apply_random_delta(session, rng);
        // A second delta half the time, so multi-field invalidation is hit.
        if (rng.chance(0.5)) apply_random_delta(session, rng);
        const AnalysisResult& warm = session.analyze();
        const AnalysisResult cold = analyze(session.app(), options, platform);
        expect_same_result(session.app(), warm, cold,
                           "seed " + std::to_string(seed) + " step " + std::to_string(step));
      }
      // Query hits short-circuit before the verify cross-check runs (the
      // cached result was already verified when it was produced), so every
      // query is either a hit or a verified recompute.
      EXPECT_EQ(session.stats().verified + session.stats().query_hits,
                session.stats().queries);
      EXPECT_GT(session.stats().verified, 0u);
    }
  }
}

TEST(SessionProperty, PlatformSwapsMatchColdAnalyze) {
  ProblemInstance inst = paper_example();
  AnalysisOptions options;
  options.model = SystemModel::Dedicated;

  // The paper menu, a reduced menu, and back again.
  DedicatedPlatform reduced;
  reduced.add_node_type(inst.platform.node_type(0));
  reduced.add_node_type(inst.platform.node_type(2));

  AnalysisSession session(*inst.app, options, &inst.platform);
  session.set_verify(true);
  for (const DedicatedPlatform* p : {&inst.platform, &reduced, &inst.platform}) {
    session.set_platform(p);
    const AnalysisResult& warm = session.analyze();
    const AnalysisResult cold = analyze(session.app(), options, p);
    expect_same_result(session.app(), warm, cold, "platform swap");
  }
}

TEST(SessionStatsTest, RepeatQueryIsAHit) {
  ProblemInstance inst = paper_example();
  AnalysisSession session(*inst.app);
  session.analyze();
  session.analyze();
  // A no-op delta must not invalidate anything either.
  session.set_deadline(0, inst.app->task(0).deadline);
  session.analyze();
  const SessionStats stats = session.stats();
  EXPECT_EQ(stats.queries, 3u);
  EXPECT_EQ(stats.query_hits, 2u);
  EXPECT_EQ(stats.window_misses, 1u);
}

TEST(SessionStatsTest, UntouchedBlocksHitTheCacheAcrossADelta) {
  // Two independent components on separate processor types: a delta in one
  // must replay the other's blocks from the cache.
  ResourceCatalog cat;
  const ResourceId p1 = cat.add_processor_type("P1", 1);
  const ResourceId p2 = cat.add_processor_type("P2", 1);
  Application app(cat);
  auto mk = [&](const char* name, ResourceId proc, Time deadline) {
    Task t;
    t.name = name;
    t.comp = 3;
    t.deadline = deadline;
    t.proc = proc;
    app.add_task(std::move(t));
  };
  mk("a1", p1, 6);
  mk("a2", p1, 6);
  mk("b1", p2, 6);
  mk("b2", p2, 6);

  AnalysisSession session(std::move(app));
  session.analyze();
  const SessionStats before = session.stats();
  session.set_deadline(0, 9);  // perturbs only the P1 block
  session.analyze();
  const SessionStats after = session.stats();
  EXPECT_GT(after.block_hits, before.block_hits);  // the P2 block replayed
  EXPECT_GT(after.block_misses, before.block_misses);  // the P1 block rescanned
}

TEST(SessionStatsTest, DedicatedIlpReusedOnBoundPlateau) {
  ProblemInstance inst = paper_example();
  AnalysisOptions options;
  options.model = SystemModel::Dedicated;
  AnalysisSession session(*inst.app, options, &inst.platform);
  session.set_verify(true);
  const AnalysisResult& first = session.analyze();
  const Cost cost = first.dedicated_cost->total;

  // A tiny relaxation of one deadline typically leaves every LB_r row
  // unchanged; the ILP must then be served from the previous solve.
  session.set_deadline(0, inst.app->task(0).deadline + 1);
  const AnalysisResult& second = session.analyze();
  EXPECT_EQ(second.dedicated_cost->total, cost);
  const SessionStats stats = session.stats();
  EXPECT_EQ(stats.cost_hits + stats.cost_misses, stats.queries);
  EXPECT_GE(stats.cost_hits, 1u);
}

TEST(SessionErrors, ReplicatesColdThrowBehaviour) {
  ProblemInstance inst = paper_example();
  AnalysisOptions options;
  options.model = SystemModel::Dedicated;
  AnalysisSession session(*inst.app, options, &inst.platform);
  session.analyze();
  session.set_platform(nullptr);
  EXPECT_THROW(session.analyze(), ModelError);
  // The session still serves queries once the platform returns.
  session.set_platform(&inst.platform);
  EXPECT_NO_THROW(session.analyze());
}

// ---------------------------------------------------------------------------
// Workload sessions: template-level deltas must be indistinguishable from
// tearing the session down and cold-analyzing the mutated workload.

Workload control_workload(ResourceCatalog& cat) {
  const ResourceId cpu = cat.add_processor_type("CPU", 4);
  const ResourceId dsp = cat.add_processor_type("DSP", 9);
  Workload w;
  Transaction fast;
  fast.name = "fast";
  fast.period = 20;
  TemplateTask sense;
  sense.name = "sense";
  sense.comp = 3;
  sense.proc = cpu;
  TemplateTask act = sense;
  act.name = "act";
  act.comp = 2;
  fast.tasks = {sense, act};
  fast.edges = {{0, 1, 1}};
  Transaction slow;
  slow.name = "slow";
  slow.period = 40;
  TemplateTask crunch;
  crunch.name = "crunch";
  crunch.comp = 8;
  crunch.proc = dsp;
  slow.tasks = {crunch};
  w.transactions = {fast, slow};
  return w;
}

TEST(SessionWorkload, TemplateDeltasMatchColdReLowering) {
  ResourceCatalog cat;
  Workload w = control_workload(cat);
  AnalysisSession session(cat, w);
  session.set_verify(true);
  ASSERT_NE(session.workload(), nullptr);
  session.analyze();

  struct Delta {
    const char* what;
    void (*apply)(AnalysisSession&);
    void (*mirror)(Workload&);
  };
  const Delta deltas[] = {
      {"period", [](AnalysisSession& s) { s.set_transaction_period("fast", 10); },
       [](Workload& m) { m.transactions[0].period = 10; }},
      {"offset", [](AnalysisSession& s) { s.set_transaction_offset("slow", 5); },
       [](Workload& m) { m.transactions[1].offset = 5; }},
      {"comp", [](AnalysisSession& s) { s.set_template_comp("fast", "act", 4); },
       [](Workload& m) { m.transactions[0].tasks[1].comp = 4; }},
  };
  for (const Delta& d : deltas) {
    d.apply(session);
    d.mirror(w);
    const AnalysisResult& warm = session.analyze();
    const Application cold_app = lower_workload(cat, w);
    const AnalysisResult cold = analyze(cold_app);
    expect_same_result(session.app(), warm, cold, d.what);
    EXPECT_EQ(serialize_instance(session.app(), DedicatedPlatform{}),
              serialize_instance(cold_app, DedicatedPlatform{}))
        << d.what;
  }
}

TEST(SessionWorkload, NoOpTemplateDeltaIsAQueryHit) {
  ResourceCatalog cat;
  AnalysisSession session(cat, control_workload(cat));
  session.analyze();
  const SessionStats before = session.stats();
  session.set_transaction_period("fast", 20);   // current value
  session.set_template_comp("slow", "crunch", 8);
  session.analyze();
  const SessionStats after = session.stats();
  EXPECT_EQ(after.query_hits, before.query_hits + 1);
}

TEST(SessionWorkload, BadTemplateDeltaIsRefusedAndRolledBack) {
  ResourceCatalog cat;
  AnalysisSession session(cat, control_workload(cat));
  session.set_verify(true);
  session.analyze();
  const std::string before = serialize_instance(session.app(), DedicatedPlatform{});

  EXPECT_THROW(session.set_transaction_period("fast", 0), LintGateError);   // E501
  EXPECT_THROW(session.set_transaction_offset("fast", 25), LintGateError);  // E502
  EXPECT_THROW(session.set_template_comp("fast", "act", 0), LintGateError); // E001
  EXPECT_THROW(session.set_transaction_period("ghost", 5), ModelError);
  EXPECT_THROW(session.set_template_comp("fast", "ghost", 2), ModelError);

  // The refused deltas left the template set untouched: the wrapped
  // application is unchanged and the session still serves queries.
  EXPECT_EQ(serialize_instance(session.app(), DedicatedPlatform{}), before);
  EXPECT_EQ(session.workload()->transactions[0].period, 20);
  EXPECT_NO_THROW(session.analyze());
}

TEST(SessionWorkload, FlatSessionsRejectTemplateDeltas) {
  ProblemInstance inst = paper_example();
  AnalysisSession session(*inst.app);
  EXPECT_EQ(session.workload(), nullptr);
  EXPECT_THROW(session.set_transaction_period("x", 5), ModelError);
  EXPECT_THROW(session.set_transaction_offset("x", 1), ModelError);
  EXPECT_THROW(session.set_template_comp("x", "y", 2), ModelError);
}

TEST(SessionWorkload, GeneratedRecurrentWorkloadsSurviveDeltaSequences) {
  for (const ReleaseKind kind : {ReleaseKind::kPeriodic, ReleaseKind::kSporadic}) {
    WorkloadParams params;
    params.seed = kind == ReleaseKind::kSporadic ? 5 : 3;
    params.num_tasks = 12;
    ProblemInstance inst = generate_recurrent_instance(params, kind);
    AnalysisSession session(*inst.catalog, inst.workload);
    session.set_verify(true);
    session.analyze();
    Workload mirror = inst.workload;
    for (std::size_t i = 0; i < mirror.transactions.size(); ++i) {
      const Time p = mirror.transactions[i].period;
      session.set_transaction_period(mirror.transactions[i].name, p * 2);
      mirror.transactions[i].period = p * 2;
      const AnalysisResult& warm = session.analyze();
      const Application cold_app = lower_workload(*inst.catalog, mirror);
      const AnalysisResult cold = analyze(cold_app);
      expect_same_result(session.app(), warm, cold,
                         "txn " + std::to_string(i) + " kind " +
                             std::to_string(static_cast<int>(kind)));
    }
  }
}

TEST(SessionErrors, ReplaceApplicationKeepsTheBlockCacheUseful) {
  WorkloadParams params;
  params.num_tasks = 12;
  ProblemInstance a = generate_workload(params);
  AnalysisSession session(*a.app);
  session.set_verify(true);
  session.analyze();
  const SessionStats before = session.stats();

  // The same workload regenerated (identical seed): every block is
  // value-identical, so the replay is all hits even though task identities
  // belong to a brand-new Application.
  ProblemInstance b = generate_workload(params);
  session.replace_application(*b.app);
  session.analyze();
  const SessionStats after = session.stats();
  EXPECT_GT(after.block_hits, before.block_hits);
  EXPECT_EQ(after.block_misses, before.block_misses);
}

}  // namespace
}  // namespace rtlb
