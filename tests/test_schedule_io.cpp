#include <gtest/gtest.h>

#include "src/sched/feasibility.hpp"
#include "src/sched/list_scheduler.hpp"
#include "src/sched/schedule_io.hpp"
#include "src/workload/paper_example.hpp"

namespace rtlb {
namespace {

class ScheduleIoTest : public ::testing::Test {
 protected:
  ScheduleIoTest() : app_(cat_) {
    p_ = cat_.add_processor_type("P");
    Task t;
    t.comp = 3;
    t.deadline = 20;
    t.proc = p_;
    t.name = "alpha";
    app_.add_task(t);
    t.name = "beta";
    t.comp = 2;
    app_.add_task(t);
  }

  ResourceCatalog cat_;
  Application app_;
  ResourceId p_;
};

TEST_F(ScheduleIoTest, RoundTrips) {
  Schedule s(2);
  s.items[0] = {0, 0};
  s.items[1] = {5, 1};
  const std::string text = serialize_schedule(app_, s);
  EXPECT_NE(text.find("place alpha start 0 unit 0"), std::string::npos);
  const Schedule again = parse_schedule_string(app_, text);
  EXPECT_EQ(again.items[0].start, 0);
  EXPECT_EQ(again.items[1].start, 5);
  EXPECT_EQ(again.items[1].unit, 1);
  EXPECT_EQ(serialize_schedule(app_, again), text);
}

TEST_F(ScheduleIoTest, CommentsAndBlanksIgnored) {
  const Schedule s = parse_schedule_string(app_, "# header\n\nplace alpha start 1 unit 0\n"
                                                 "place beta start 4 unit 0\n");
  EXPECT_EQ(s.items[0].start, 1);
}

TEST_F(ScheduleIoTest, RejectsSerializingIncompleteSchedule) {
  Schedule s(2);
  s.items[0] = {0, 0};
  EXPECT_THROW(serialize_schedule(app_, s), ModelError);
}

TEST_F(ScheduleIoTest, RejectsBadInput) {
  EXPECT_THROW(parse_schedule_string(app_, "place ghost start 0 unit 0\n"), ModelError);
  EXPECT_THROW(parse_schedule_string(app_, "place alpha start 0 unit 0\n"
                                           "place alpha start 1 unit 0\n"),
               ModelError);
  EXPECT_THROW(parse_schedule_string(app_, "place alpha start x unit 0\n"), ModelError);
  EXPECT_THROW(parse_schedule_string(app_, "place alpha start 0 unit -1\n"), ModelError);
  EXPECT_THROW(parse_schedule_string(app_, "frobnicate\n"), ModelError);
  // Missing beta entirely.
  EXPECT_THROW(parse_schedule_string(app_, "place alpha start 0 unit 0\n"), ModelError);
}

TEST(ScheduleIoPaper, PaperScheduleSurvivesTheRoundTrip) {
  ProblemInstance inst = paper_example();
  Capacities caps(inst.catalog->size(), 3);
  const ListScheduleResult r = list_schedule_shared(*inst.app, caps);
  ASSERT_TRUE(r.feasible);
  const std::string text = serialize_schedule(*inst.app, r.schedule);
  const Schedule again = parse_schedule_string(*inst.app, text);
  EXPECT_TRUE(check_shared(*inst.app, again, caps).empty());
}

}  // namespace
}  // namespace rtlb
