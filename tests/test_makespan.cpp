#include <gtest/gtest.h>

#include "src/baselines/makespan_bound.hpp"
#include "src/sched/feasibility.hpp"
#include "src/sched/list_scheduler.hpp"
#include "src/workload/taskset_gen.hpp"

namespace rtlb {
namespace {

class MakespanTest : public ::testing::Test {
 protected:
  MakespanTest() : app_(cat_) { p_ = cat_.add_processor_type("P"); }

  TaskId add(Time comp) {
    Task t;
    t.name = "t" + std::to_string(app_.num_tasks());
    t.comp = comp;
    t.deadline = 1000;
    t.proc = p_;
    return app_.add_task(std::move(t));
  }

  ResourceCatalog cat_;
  Application app_;
  ResourceId p_;
};

TEST_F(MakespanTest, ChainIsCriticalPathBound) {
  const TaskId a = add(3);
  const TaskId b = add(4);
  app_.add_edge(a, b, 0);
  const MakespanBound m1 = makespan_lower_bound(app_, 1);
  EXPECT_EQ(m1.critical_time, 7);
  EXPECT_EQ(m1.fb_bound, 7);
  EXPECT_EQ(m1.jr_bound, 7);
  const MakespanBound m4 = makespan_lower_bound(app_, 4);
  EXPECT_EQ(m4.fb_bound, 7);  // more processors cannot beat the chain
}

TEST_F(MakespanTest, IndependentTasksGiveWorkBound) {
  for (int i = 0; i < 6; ++i) add(2);
  const MakespanBound m2 = makespan_lower_bound(app_, 2);
  EXPECT_EQ(m2.critical_time, 2);
  EXPECT_EQ(m2.work_bound, 6);
  EXPECT_GE(m2.fb_bound, 6);
  const MakespanBound m6 = makespan_lower_bound(app_, 6);
  EXPECT_EQ(m6.fb_bound, 2);
}

TEST_F(MakespanTest, IntervalExcessBeatsWorkBound) {
  // Fork-join: source(1) -> 4 parallel(4) -> sink(1). On 2 processors the
  // middle band holds 16 ticks of work that must fit between times 1 and 5
  // of any critical-time schedule: excess = ceil((16 - 2*4)/2) = 4.
  const TaskId src = add(1);
  const TaskId sink = add(1);
  std::vector<TaskId> mid;
  for (int k = 0; k < 4; ++k) {
    const TaskId t = add(4);
    app_.add_edge(src, t, 0);
    app_.add_edge(t, sink, 0);
    mid.push_back(t);
  }
  const MakespanBound m = makespan_lower_bound(app_, 2);
  EXPECT_EQ(m.critical_time, 6);
  EXPECT_EQ(m.work_bound, 9);  // 18 / 2
  EXPECT_EQ(m.fb_bound, 10);   // 6 + 4: tighter than the work bound
  EXPECT_GE(m.jr_bound, m.fb_bound - 1);  // single section here: equal
}

TEST_F(MakespanTest, RequiresAtLeastOneProcessor) {
  add(1);
  EXPECT_THROW(makespan_lower_bound(app_, 0), std::logic_error);
}

TEST_F(MakespanTest, EmptyApplication) {
  const MakespanBound m = makespan_lower_bound(app_, 2);
  EXPECT_EQ(m.fb_bound, 0);
  EXPECT_EQ(m.jr_bound, 0);
}

TEST(MakespanSoundness, ListScheduleNeverBeatsTheBound) {
  // Soundness against actual schedules: the list scheduler's makespan on m
  // processors (zero-comm workloads) is always >= every reported bound.
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    WorkloadParams params;
    params.seed = seed * 5;
    params.num_tasks = 16;
    params.num_proc_types = 1;
    params.num_resources = 0;
    params.msg_min = params.msg_max = 0;
    params.laxity = 10.0;  // deadlines far out: scheduling always succeeds
    ProblemInstance inst = generate_workload(params);
    for (int m = 1; m <= 3; ++m) {
      Capacities caps(inst.catalog->size(), m);
      const ListScheduleResult r = list_schedule_shared(*inst.app, caps);
      ASSERT_TRUE(r.feasible) << "seed " << seed;
      const MakespanBound bound = makespan_lower_bound(*inst.app, m);
      const Time makespan = r.schedule.makespan(*inst.app);
      EXPECT_GE(makespan, bound.critical_time) << "seed " << seed << " m " << m;
      EXPECT_GE(makespan, bound.work_bound) << "seed " << seed << " m " << m;
      EXPECT_GE(makespan, bound.fb_bound) << "seed " << seed << " m " << m;
      EXPECT_GE(makespan, bound.jr_bound) << "seed " << seed << " m " << m;
    }
  }
}

TEST(MakespanStructure, BoundsAreOrdered) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    WorkloadParams params;
    params.seed = seed * 11;
    params.num_tasks = 20;
    params.num_proc_types = 1;
    params.num_resources = 0;
    params.msg_min = params.msg_max = 0;
    ProblemInstance inst = generate_workload(params);
    for (int m = 1; m <= 4; ++m) {
      const MakespanBound b = makespan_lower_bound(*inst.app, m);
      EXPECT_GE(b.fb_bound, b.critical_time);
      EXPECT_GE(b.fb_bound, b.work_bound);
      EXPECT_GE(b.jr_bound, b.critical_time);
      // More processors never increase any bound.
      if (m > 1) {
        const MakespanBound prev = makespan_lower_bound(*inst.app, m - 1);
        EXPECT_LE(b.fb_bound, prev.fb_bound);
        EXPECT_LE(b.work_bound, prev.work_bound);
      }
    }
  }
}

}  // namespace
}  // namespace rtlb
