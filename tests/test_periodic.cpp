#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/core/analysis.hpp"
#include "src/core/report.hpp"
#include "src/model/io.hpp"
#include "src/workload/taskset_gen.hpp"
#include "src/workload/workload.hpp"

namespace rtlb {
namespace {

class PeriodicTest : public ::testing::Test {
 protected:
  PeriodicTest() { p_ = cat_.add_processor_type("P", 3); }

  Transaction simple(const std::string& name, Time period, Time comp, Time offset = 0) {
    Transaction tr;
    tr.name = name;
    tr.period = period;
    tr.offset = offset;
    PeriodicTask t;
    t.name = "job";
    t.comp = comp;
    t.proc = p_;
    tr.tasks.push_back(std::move(t));
    return tr;
  }

  ResourceCatalog cat_;
  ResourceId p_;
};

TEST_F(PeriodicTest, HyperperiodIsLcm) {
  EXPECT_EQ(hyperperiod({simple("a", 4, 1), simple("b", 6, 1)}), 12);
  EXPECT_EQ(hyperperiod({simple("a", 5, 1)}), 5);
  EXPECT_EQ(hyperperiod({}), 1);
}

TEST_F(PeriodicTest, UnrollCountsInstances) {
  const Application app = unroll(cat_, {simple("a", 4, 1), simple("b", 6, 2)});
  // 12 / 4 = 3 instances of a, 12 / 6 = 2 of b.
  EXPECT_EQ(app.num_tasks(), 5u);
  EXPECT_NE(app.find_task("a.job@0"), kInvalidTask);
  EXPECT_NE(app.find_task("a.job@2"), kInvalidTask);
  EXPECT_NE(app.find_task("b.job@1"), kInvalidTask);
}

TEST_F(PeriodicTest, InstanceWindowsTrackThePeriodSlots) {
  const Application app = unroll(cat_, {simple("a", 10, 3, /*offset=*/2)});
  const TaskId k0 = app.find_task("a.job@0");
  EXPECT_EQ(app.task(k0).release, 2);
  EXPECT_EQ(app.task(k0).deadline, 12);
}

TEST_F(PeriodicTest, RelativeDeadlineTightensWindow) {
  Transaction tr = simple("a", 10, 3);
  tr.tasks[0].relative_deadline = 6;
  const Application app = unroll(cat_, {tr});
  EXPECT_EQ(app.task(app.find_task("a.job@0")).deadline, 6);
}

TEST_F(PeriodicTest, TemplateEdgesReplicatedPerInstance) {
  Transaction tr;
  tr.name = "pipe";
  tr.period = 20;
  PeriodicTask a;
  a.name = "a";
  a.comp = 2;
  a.proc = p_;
  PeriodicTask b = a;
  b.name = "b";
  tr.tasks = {a, b};
  tr.edges = {{0, 1, 3}};
  const Application app = unroll(cat_, {tr}, /*chain_instances=*/false);
  const TaskId a0 = app.find_task("pipe.a@0");
  const TaskId b0 = app.find_task("pipe.b@0");
  EXPECT_TRUE(app.dag().has_edge(a0, b0));
  EXPECT_EQ(app.message(a0, b0), 3);
}

TEST_F(PeriodicTest, ChainingLinksConsecutiveInstances) {
  // b stretches the hyperperiod to 8, so 'a' gets two instances.
  const std::vector<Transaction> set{simple("a", 4, 1), simple("b", 8, 1)};
  const Application chained = unroll(cat_, set);
  const TaskId k0 = chained.find_task("a.job@0");
  const TaskId k1 = chained.find_task("a.job@1");
  ASSERT_NE(k0, kInvalidTask);
  ASSERT_NE(k1, kInvalidTask);
  EXPECT_TRUE(chained.dag().has_edge(k0, k1));
  EXPECT_EQ(chained.message(k0, k1), 0);

  const Application loose = unroll(cat_, set, /*chain_instances=*/false);
  EXPECT_FALSE(loose.dag().has_edge(loose.find_task("a.job@0"), loose.find_task("a.job@1")));
}

TEST_F(PeriodicTest, ValidationRejectsBadTransactions) {
  Transaction bad = simple("x", 10, 3);
  bad.tasks[0].relative_deadline = 12;  // beyond the period
  EXPECT_THROW(validate_transactions(cat_, {bad}), ModelError);

  Transaction tight = simple("y", 10, 3);
  tight.tasks[0].offset = 9;  // 1 tick left for 3 ticks of work
  EXPECT_THROW(validate_transactions(cat_, {tight}), ModelError);

  Transaction neg = simple("z", 0, 1);
  EXPECT_THROW(validate_transactions(cat_, {neg}), ModelError);

  Transaction off = simple("w", 10, 1);
  off.offset = 10;
  EXPECT_THROW(validate_transactions(cat_, {off}), ModelError);

  Transaction cyc = simple("c", 10, 1);
  PeriodicTask extra;
  extra.name = "extra";
  extra.comp = 1;
  extra.proc = p_;
  cyc.tasks.push_back(extra);
  cyc.edges = {{0, 1, 0}, {1, 0, 0}};
  EXPECT_THROW(validate_transactions(cat_, {cyc}), ModelError);
}

TEST_F(PeriodicTest, UnrolledBoundsSeePerSlotContention) {
  // Two unit-period transactions sharing the processor: each slot carries
  // 2 + 2 = 4 ticks of work in a 4-tick period -> LB = 1; shrink the period
  // headroom and the bound climbs.
  Transaction a = simple("a", 4, 2);
  Transaction b = simple("b", 4, 2);
  Application relaxed = unroll(cat_, {a, b});
  const AnalysisResult r1 = analyze(relaxed);
  EXPECT_EQ(r1.bound_for(p_), 1);

  Transaction c = simple("c", 4, 3);
  Transaction d = simple("d", 4, 3);
  Application tight = unroll(cat_, {c, d});
  const AnalysisResult r2 = analyze(tight);
  EXPECT_EQ(r2.bound_for(p_), 2);  // 6 ticks of mandatory work per 4-tick slot
}

TEST_F(PeriodicTest, PartitionBlocksAlignWithSlots) {
  // 'a' (period 5) runs 4 instances over the hyperperiod 20 stretched by a
  // filler transaction on a DIFFERENT processor type, so ST_P for 'a''s
  // processor splits into exactly one block per slot -- the phased shape
  // Theorem 5 exploits on periodic workloads.
  const ResourceId q = cat_.add_processor_type("Q", 2);
  Transaction filler;
  filler.name = "b";
  filler.period = 20;
  PeriodicTask f;
  f.name = "job";
  f.comp = 2;
  f.proc = q;
  filler.tasks.push_back(std::move(f));

  const Application mixed = unroll(cat_, {simple("a", 5, 4), filler});
  const AnalysisResult res = analyze(mixed);
  for (const ResourcePartition& part : res.partitions) {
    if (part.resource == p_) {
      ASSERT_EQ(part.blocks.size(), 4u);  // [0,5) [5,10) [10,15) [15,20)
      for (std::size_t k = 0; k < 4; ++k) {
        EXPECT_EQ(part.blocks[k].start, static_cast<Time>(5 * k));
        EXPECT_EQ(part.blocks[k].finish, static_cast<Time>(5 * (k + 1)));
      }
    }
  }
}

// ---------------------------------------------------------------------------
// The overflow-checked hyperperiod (satellite of the workload front door).

TEST_F(PeriodicTest, CheckedHyperperiodSaturatesAndThrowingVariantThrows) {
  // 2^62 and 2^62 - 1 are coprime: the true lcm is ~2^124, far outside Time.
  const Transaction big1 = simple("a", Time{1} << 62, 1);
  const Transaction big2 = simple("b", (Time{1} << 62) - 1, 1);
  const Hyperperiod h = checked_hyperperiod({big1, big2});
  EXPECT_TRUE(h.overflow);
  EXPECT_EQ(h.value, kTimeMax);
  EXPECT_THROW(hyperperiod({big1, big2}), ModelError);

  // Sporadic transactions recur by minimum inter-arrival, not by period;
  // they do not participate in the lcm.
  Transaction sp = simple("s", (Time{1} << 62) - 1, 1);
  sp.kind = ReleaseKind::kSporadic;
  sp.horizon = 8;
  EXPECT_FALSE(checked_hyperperiod({simple("a", 4, 1), sp}).overflow);
  EXPECT_EQ(hyperperiod({simple("a", 4, 1), sp}), 4);
}

// ---------------------------------------------------------------------------
// Sporadic lowering: the densest legal release sequence over the horizon.

TEST_F(PeriodicTest, SporadicLoweringUnrollsTheDensestSequence) {
  Transaction sp = simple("s", 100, 6, /*offset=*/5);
  sp.kind = ReleaseKind::kSporadic;
  sp.horizon = 200;
  Workload w;
  w.transactions = {sp};
  const Application app = lower_workload(cat_, w);
  // Releases at 5 and 105 (strictly before the horizon 200); a third
  // activation at 205 lies beyond it.
  EXPECT_EQ(app.num_tasks(), 2u);
  const TaskId k0 = app.find_task("s.job@0");
  const TaskId k1 = app.find_task("s.job@1");
  ASSERT_NE(k0, kInvalidTask);
  ASSERT_NE(k1, kInvalidTask);
  EXPECT_EQ(app.task(k0).release, 5);
  EXPECT_EQ(app.task(k0).deadline, 105);  // slot + mininter
  EXPECT_EQ(app.task(k1).release, 105);
  EXPECT_EQ(app.task(k1).deadline, 205);
  // Back-to-back activations chain like periodic instances do.
  EXPECT_TRUE(app.dag().has_edge(k0, k1));
  EXPECT_EQ(app.message(k0, k1), 0);
}

TEST_F(PeriodicTest, SporadicWithoutHorizonBorrowsThePeriodicHyperperiod) {
  Transaction sp = simple("s", 2, 1);
  sp.kind = ReleaseKind::kSporadic;  // horizon 0: borrow
  Workload w;
  w.transactions = {simple("a", 4, 1), sp};
  const Application app = lower_workload(cat_, w);
  // Hyperperiod 4: one 'a' activation, two 's' activations at 0 and 2.
  EXPECT_EQ(app.num_tasks(), 3u);
  EXPECT_NE(app.find_task("s.job@1"), kInvalidTask);
  EXPECT_EQ(app.find_task("s.job@2"), kInvalidTask);
}

// ---------------------------------------------------------------------------
// The recurrent analyze() front door: the template gate ALWAYS refuses
// (lowering a broken template is meaningless at any lint level), and a clean
// workload analyzes exactly like its hand-lowered flat instance.

TEST_F(PeriodicTest, AnalyzeWorkloadRefusesTemplateErrorsAtEveryLintLevel) {
  Workload bad;
  bad.transactions = {simple("x", 0, 1)};  // RTLB-E501
  // kOff keeps the historical contract: the first template error throws
  // ModelError out of validate_workload() inside the lowering.
  AnalysisOptions off;
  EXPECT_THROW(analyze(cat_, bad, off), ModelError);
  // With the gate on, the refusal batches the findings instead -- and E5xx
  // refuses even at kReport, where flat errors would merely be recorded.
  AnalysisOptions report;
  report.lint_level = LintLevel::kReport;
  try {
    analyze(cat_, bad, report);
    FAIL() << "template error did not refuse at kReport";
  } catch (const LintGateError& e) {
    EXPECT_NE(std::string(e.what()).find("RTLB-E501"), std::string::npos);
  }
}

TEST_F(PeriodicTest, AnalyzeWorkloadEqualsAnalyzeOfTheLoweredInstance) {
  Workload w;
  w.transactions = {simple("a", 4, 2), simple("b", 8, 3)};
  const AnalysisResult front = analyze(cat_, w);
  const Application flat = unroll(cat_, w.transactions);
  const AnalysisResult cold = analyze(flat);
  EXPECT_EQ(report_string(flat, front), report_string(flat, cold));
}

// ---------------------------------------------------------------------------
// Determinism: lowering the same workload twice -- and analyzing the result
// at different worker counts -- must be byte-identical. This is the property
// that lets warm sessions detect no-op template deltas by byte comparison.

TEST(RecurrentProperty, LoweringIsDeterministicByteForByte) {
  for (const ReleaseKind kind : {ReleaseKind::kPeriodic, ReleaseKind::kSporadic}) {
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
      WorkloadParams params;
      params.seed = seed * 7;
      params.num_tasks = 18;
      ProblemInstance inst = generate_recurrent_instance(params, kind);
      ASSERT_FALSE(inst.workload.empty());

      const Application once = lower_workload(*inst.catalog, inst.workload);
      const Application twice = lower_workload(*inst.catalog, inst.workload);
      const std::string bytes = serialize_instance(once, inst.platform);
      EXPECT_EQ(bytes, serialize_instance(twice, inst.platform));
      // The generator lowered with the same defaults; its instance agrees.
      EXPECT_EQ(bytes, serialize_instance(*inst.app, inst.platform));

      // The report echoes the requested worker count; mask that one line so
      // the comparison checks the ANALYSIS bytes, which must not move.
      const auto mask_thread_echo = [](std::string report) {
        const std::string key = "\"num_threads\":";
        const std::size_t at = report.find(key);
        if (at != std::string::npos) {
          report.erase(at, report.find('\n', at) - at);
        }
        return report;
      };
      AnalysisOptions serial;
      serial.lower_bound.num_threads = 1;
      AnalysisOptions threaded;
      threaded.lower_bound.num_threads = 4;
      EXPECT_EQ(mask_thread_echo(report_string(once, analyze(once, serial))),
                mask_thread_echo(report_string(once, analyze(once, threaded))));
    }
  }
}

// ---------------------------------------------------------------------------
// unroll == hand-built: an independent, naive expansion of the templates
// (straight double loop, degree counting instead of Dag queries) must
// reproduce the lowered instance byte-for-byte.

Application hand_expand(const ResourceCatalog& catalog, const Workload& workload) {
  Application app(catalog);
  const Hyperperiod h = checked_hyperperiod(workload.transactions);
  for (const Transaction& tr : workload.transactions) {
    const Time horizon =
        tr.kind == ReleaseKind::kSporadic && tr.horizon > 0 ? tr.horizon : h.value;
    if (horizon <= tr.offset) continue;
    const Time instances = (horizon - tr.offset + tr.period - 1) / tr.period;

    std::vector<int> indeg(tr.tasks.size(), 0), outdeg(tr.tasks.size(), 0);
    for (const TemplateEdge& e : tr.edges) {
      ++outdeg[e.from];
      ++indeg[e.to];
    }
    std::vector<TaskId> prev;
    for (Time k = 0; k < instances; ++k) {
      const Time slot = tr.offset + k * tr.period;
      std::vector<TaskId> ids;
      for (const TemplateTask& t : tr.tasks) {
        Task inst;
        inst.name = tr.name + "." + t.name + "@" + std::to_string(k);
        inst.comp = t.comp;
        inst.release = slot + t.offset;
        inst.deadline = slot + (t.relative_deadline > 0 ? t.relative_deadline : tr.period);
        inst.proc = t.proc;
        inst.resources = t.resources;
        inst.preemptive = t.preemptive;
        ids.push_back(app.add_task(std::move(inst)));
      }
      for (const TemplateEdge& e : tr.edges) {
        app.add_edge(ids[e.from], ids[e.to], e.msg);
      }
      if (k > 0) {
        for (std::size_t sink = 0; sink < tr.tasks.size(); ++sink) {
          if (outdeg[sink] != 0) continue;
          for (std::size_t source = 0; source < tr.tasks.size(); ++source) {
            if (indeg[source] == 0) app.add_edge(prev[sink], ids[source], 0);
          }
        }
      }
      prev = std::move(ids);
    }
  }
  return app;
}

TEST(RecurrentProperty, UnrollMatchesAHandBuiltExpansion) {
  for (const GraphShape shape :
       {GraphShape::Layered, GraphShape::ForkJoin, GraphShape::SeriesParallel}) {
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
      for (const ReleaseKind kind : {ReleaseKind::kPeriodic, ReleaseKind::kSporadic}) {
        WorkloadParams params;
        params.seed = seed * 13;
        params.shape = shape;
        params.num_tasks = 15;
        ProblemInstance inst = generate_recurrent_instance(params, kind);
        const Application hand = hand_expand(*inst.catalog, inst.workload);
        EXPECT_EQ(serialize_instance(*inst.app, inst.platform),
                  serialize_instance(hand, inst.platform))
            << "shape " << static_cast<int>(shape) << " seed " << seed << " kind "
            << static_cast<int>(kind);
      }
    }
  }
}

}  // namespace
}  // namespace rtlb
