#include <gtest/gtest.h>

#include "src/core/analysis.hpp"
#include "src/workload/periodic.hpp"

namespace rtlb {
namespace {

class PeriodicTest : public ::testing::Test {
 protected:
  PeriodicTest() { p_ = cat_.add_processor_type("P", 3); }

  Transaction simple(const std::string& name, Time period, Time comp, Time offset = 0) {
    Transaction tr;
    tr.name = name;
    tr.period = period;
    tr.offset = offset;
    PeriodicTask t;
    t.name = "job";
    t.comp = comp;
    t.proc = p_;
    tr.tasks.push_back(std::move(t));
    return tr;
  }

  ResourceCatalog cat_;
  ResourceId p_;
};

TEST_F(PeriodicTest, HyperperiodIsLcm) {
  EXPECT_EQ(hyperperiod({simple("a", 4, 1), simple("b", 6, 1)}), 12);
  EXPECT_EQ(hyperperiod({simple("a", 5, 1)}), 5);
  EXPECT_EQ(hyperperiod({}), 1);
}

TEST_F(PeriodicTest, UnrollCountsInstances) {
  const Application app = unroll(cat_, {simple("a", 4, 1), simple("b", 6, 2)});
  // 12 / 4 = 3 instances of a, 12 / 6 = 2 of b.
  EXPECT_EQ(app.num_tasks(), 5u);
  EXPECT_NE(app.find_task("a.job@0"), kInvalidTask);
  EXPECT_NE(app.find_task("a.job@2"), kInvalidTask);
  EXPECT_NE(app.find_task("b.job@1"), kInvalidTask);
}

TEST_F(PeriodicTest, InstanceWindowsTrackThePeriodSlots) {
  const Application app = unroll(cat_, {simple("a", 10, 3, /*offset=*/2)});
  const TaskId k0 = app.find_task("a.job@0");
  EXPECT_EQ(app.task(k0).release, 2);
  EXPECT_EQ(app.task(k0).deadline, 12);
}

TEST_F(PeriodicTest, RelativeDeadlineTightensWindow) {
  Transaction tr = simple("a", 10, 3);
  tr.tasks[0].relative_deadline = 6;
  const Application app = unroll(cat_, {tr});
  EXPECT_EQ(app.task(app.find_task("a.job@0")).deadline, 6);
}

TEST_F(PeriodicTest, TemplateEdgesReplicatedPerInstance) {
  Transaction tr;
  tr.name = "pipe";
  tr.period = 20;
  PeriodicTask a;
  a.name = "a";
  a.comp = 2;
  a.proc = p_;
  PeriodicTask b = a;
  b.name = "b";
  tr.tasks = {a, b};
  tr.edges = {{0, 1, 3}};
  const Application app = unroll(cat_, {tr}, /*chain_instances=*/false);
  const TaskId a0 = app.find_task("pipe.a@0");
  const TaskId b0 = app.find_task("pipe.b@0");
  EXPECT_TRUE(app.dag().has_edge(a0, b0));
  EXPECT_EQ(app.message(a0, b0), 3);
}

TEST_F(PeriodicTest, ChainingLinksConsecutiveInstances) {
  // b stretches the hyperperiod to 8, so 'a' gets two instances.
  const std::vector<Transaction> set{simple("a", 4, 1), simple("b", 8, 1)};
  const Application chained = unroll(cat_, set);
  const TaskId k0 = chained.find_task("a.job@0");
  const TaskId k1 = chained.find_task("a.job@1");
  ASSERT_NE(k0, kInvalidTask);
  ASSERT_NE(k1, kInvalidTask);
  EXPECT_TRUE(chained.dag().has_edge(k0, k1));
  EXPECT_EQ(chained.message(k0, k1), 0);

  const Application loose = unroll(cat_, set, /*chain_instances=*/false);
  EXPECT_FALSE(loose.dag().has_edge(loose.find_task("a.job@0"), loose.find_task("a.job@1")));
}

TEST_F(PeriodicTest, ValidationRejectsBadTransactions) {
  Transaction bad = simple("x", 10, 3);
  bad.tasks[0].relative_deadline = 12;  // beyond the period
  EXPECT_THROW(validate_transactions(cat_, {bad}), ModelError);

  Transaction tight = simple("y", 10, 3);
  tight.tasks[0].offset = 9;  // 1 tick left for 3 ticks of work
  EXPECT_THROW(validate_transactions(cat_, {tight}), ModelError);

  Transaction neg = simple("z", 0, 1);
  EXPECT_THROW(validate_transactions(cat_, {neg}), ModelError);

  Transaction off = simple("w", 10, 1);
  off.offset = 10;
  EXPECT_THROW(validate_transactions(cat_, {off}), ModelError);

  Transaction cyc = simple("c", 10, 1);
  PeriodicTask extra;
  extra.name = "extra";
  extra.comp = 1;
  extra.proc = p_;
  cyc.tasks.push_back(extra);
  cyc.edges = {{0, 1, 0}, {1, 0, 0}};
  EXPECT_THROW(validate_transactions(cat_, {cyc}), ModelError);
}

TEST_F(PeriodicTest, UnrolledBoundsSeePerSlotContention) {
  // Two unit-period transactions sharing the processor: each slot carries
  // 2 + 2 = 4 ticks of work in a 4-tick period -> LB = 1; shrink the period
  // headroom and the bound climbs.
  Transaction a = simple("a", 4, 2);
  Transaction b = simple("b", 4, 2);
  Application relaxed = unroll(cat_, {a, b});
  const AnalysisResult r1 = analyze(relaxed);
  EXPECT_EQ(r1.bound_for(p_), 1);

  Transaction c = simple("c", 4, 3);
  Transaction d = simple("d", 4, 3);
  Application tight = unroll(cat_, {c, d});
  const AnalysisResult r2 = analyze(tight);
  EXPECT_EQ(r2.bound_for(p_), 2);  // 6 ticks of mandatory work per 4-tick slot
}

TEST_F(PeriodicTest, PartitionBlocksAlignWithSlots) {
  // 'a' (period 5) runs 4 instances over the hyperperiod 20 stretched by a
  // filler transaction on a DIFFERENT processor type, so ST_P for 'a''s
  // processor splits into exactly one block per slot -- the phased shape
  // Theorem 5 exploits on periodic workloads.
  const ResourceId q = cat_.add_processor_type("Q", 2);
  Transaction filler;
  filler.name = "b";
  filler.period = 20;
  PeriodicTask f;
  f.name = "job";
  f.comp = 2;
  f.proc = q;
  filler.tasks.push_back(std::move(f));

  const Application mixed = unroll(cat_, {simple("a", 5, 4), filler});
  const AnalysisResult res = analyze(mixed);
  for (const ResourcePartition& part : res.partitions) {
    if (part.resource == p_) {
      ASSERT_EQ(part.blocks.size(), 4u);  // [0,5) [5,10) [10,15) [15,20)
      for (std::size_t k = 0; k < 4; ++k) {
        EXPECT_EQ(part.blocks[k].start, static_cast<Time>(5 * k));
        EXPECT_EQ(part.blocks[k].finish, static_cast<Time>(5 * (k + 1)));
      }
    }
  }
}

}  // namespace
}  // namespace rtlb
