#include <gtest/gtest.h>

#include "src/graph/dag.hpp"

namespace rtlb {
namespace {

Dag diamond() {
  Dag g(4);
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  g.add_edge(1, 3);
  g.add_edge(2, 3);
  return g;
}

TEST(Dag, BasicDegreesAndEdges) {
  Dag g = diamond();
  EXPECT_EQ(g.num_vertices(), 4u);
  EXPECT_EQ(g.num_edges(), 4u);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_FALSE(g.has_edge(1, 0));
  EXPECT_EQ(g.out_degree(0), 2u);
  EXPECT_EQ(g.in_degree(3), 2u);
  EXPECT_EQ(g.sources(), std::vector<std::uint32_t>{0});
  EXPECT_EQ(g.sinks(), std::vector<std::uint32_t>{3});
}

TEST(Dag, RejectsSelfLoopAndDuplicate) {
  Dag g(3);
  g.add_edge(0, 1);
  EXPECT_THROW(g.add_edge(0, 0), ModelError);
  EXPECT_THROW(g.add_edge(0, 1), ModelError);
}

TEST(Dag, TopologicalOrderRespectsEdges) {
  Dag g = diamond();
  auto order = g.topological_order();
  ASSERT_TRUE(order.has_value());
  std::vector<std::size_t> pos(4);
  for (std::size_t k = 0; k < order->size(); ++k) pos[(*order)[k]] = k;
  EXPECT_LT(pos[0], pos[1]);
  EXPECT_LT(pos[0], pos[2]);
  EXPECT_LT(pos[1], pos[3]);
  EXPECT_LT(pos[2], pos[3]);
}

TEST(Dag, DetectsCycle) {
  Dag g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 0);
  EXPECT_FALSE(g.topological_order().has_value());
  EXPECT_FALSE(g.is_acyclic());
}

TEST(Dag, EmptyGraphIsAcyclic) {
  Dag g(0);
  EXPECT_TRUE(g.is_acyclic());
  EXPECT_TRUE(g.sources().empty());
}

TEST(Dag, Reachability) {
  Dag g = diamond();
  auto reach = g.reachability();
  EXPECT_TRUE(reach[0][3]);
  EXPECT_TRUE(reach[0][1]);
  EXPECT_FALSE(reach[1][2]);
  EXPECT_FALSE(reach[3][0]);
  EXPECT_FALSE(reach[0][0]);  // strict reachability
}

TEST(Dag, LongestPathsAndCriticalPath) {
  Dag g = diamond();
  const std::vector<Time> w{1, 2, 5, 3};
  const auto into = g.longest_path_to(w);
  EXPECT_EQ(into[0], 1);
  EXPECT_EQ(into[1], 3);
  EXPECT_EQ(into[2], 6);
  EXPECT_EQ(into[3], 9);  // 0 -> 2 -> 3
  const auto from = g.longest_path_from(w);
  EXPECT_EQ(from[3], 3);
  EXPECT_EQ(from[1], 5);
  EXPECT_EQ(from[2], 8);
  EXPECT_EQ(from[0], 9);
  EXPECT_EQ(g.critical_path(w), 9);
}

TEST(Dag, Levels) {
  Dag g = diamond();
  const auto levels = g.levels();
  EXPECT_EQ(levels[0], 0u);
  EXPECT_EQ(levels[1], 1u);
  EXPECT_EQ(levels[2], 1u);
  EXPECT_EQ(levels[3], 2u);
}

TEST(Dag, GrowTo) {
  Dag g(2);
  g.grow_to(5);
  EXPECT_EQ(g.num_vertices(), 5u);
  g.add_edge(0, 4);
  EXPECT_TRUE(g.has_edge(0, 4));
  g.grow_to(3);  // shrinking is a no-op
  EXPECT_EQ(g.num_vertices(), 5u);
}

TEST(Dag, TransitiveReductionDropsShortcuts) {
  Dag g = diamond();
  g.add_edge(0, 3);  // shortcut implied by 0->1->3
  const Dag reduced = g.transitive_reduction();
  EXPECT_EQ(reduced.num_edges(), 4u);
  EXPECT_FALSE(reduced.has_edge(0, 3));
  EXPECT_TRUE(reduced.has_edge(0, 1));
  EXPECT_TRUE(reduced.has_edge(2, 3));
}

TEST(Dag, TransitiveReductionPreservesReachability) {
  Dag g(6);
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  g.add_edge(1, 3);
  g.add_edge(2, 3);
  g.add_edge(0, 3);  // redundant
  g.add_edge(3, 4);
  g.add_edge(1, 4);  // redundant
  g.add_edge(4, 5);
  g.add_edge(0, 5);  // redundant
  const Dag reduced = g.transitive_reduction();
  EXPECT_EQ(reduced.reachability(), g.reachability());
  EXPECT_EQ(reduced.num_edges(), 6u);  // exactly the three shortcuts dropped
  // Reducing a reduction is a fixed point.
  EXPECT_EQ(reduced.transitive_reduction().num_edges(), reduced.num_edges());
}

TEST(Dag, DotExportContainsAllEdges) {
  Dag g = diamond();
  const std::string dot = g.to_dot({"a", "b", "c", "d"});
  EXPECT_NE(dot.find("n0 -> n1"), std::string::npos);
  EXPECT_NE(dot.find("n2 -> n3"), std::string::npos);
  EXPECT_NE(dot.find("label=\"a\""), std::string::npos);
}

}  // namespace
}  // namespace rtlb
