#include <gtest/gtest.h>

#include "src/sched/gantt.hpp"
#include "src/sched/list_scheduler.hpp"
#include "src/workload/paper_example.hpp"

namespace rtlb {
namespace {

class GanttTest : public ::testing::Test {
 protected:
  GanttTest() : app_(cat_) { p_ = cat_.add_processor_type("CPU"); }

  TaskId add(const std::string& name, Time comp, Time deadline) {
    Task t;
    t.name = name;
    t.comp = comp;
    t.deadline = deadline;
    t.proc = p_;
    return app_.add_task(std::move(t));
  }

  ResourceCatalog cat_;
  Application app_;
  ResourceId p_;
};

TEST_F(GanttTest, RendersLanesAndLegend) {
  const TaskId a = add("alpha", 3, 20);
  const TaskId b = add("beta", 2, 20);
  Capacities caps(cat_.size(), 2);
  Schedule s(2);
  s.items[a] = {0, 0};
  s.items[b] = {1, 1};
  const std::string g = render_gantt_shared(app_, s, caps);
  EXPECT_NE(g.find("CPU[0]"), std::string::npos);
  EXPECT_NE(g.find("CPU[1]"), std::string::npos);
  EXPECT_NE(g.find("|aaa"), std::string::npos);   // task a fills cells 0-2
  EXPECT_NE(g.find(".bb"), std::string::npos);    // task b offset by one
  EXPECT_NE(g.find("a=alpha"), std::string::npos);
  EXPECT_NE(g.find("b=beta"), std::string::npos);
}

TEST_F(GanttTest, CompressesLongHorizons) {
  const TaskId a = add("long", 400, 1000);
  Capacities caps(cat_.size(), 1);
  Schedule s(1);
  s.items[a] = {0, 0};
  GanttOptions opts;
  opts.max_width = 50;
  const std::string g = render_gantt_shared(app_, s, caps, opts);
  // Every line must fit in max_width + label overhead.
  std::size_t longest = 0;
  std::size_t pos = 0;
  while (pos < g.size()) {
    const std::size_t nl = g.find('\n', pos);
    longest = std::max(longest, (nl == std::string::npos ? g.size() : nl) - pos);
    pos = (nl == std::string::npos) ? g.size() : nl + 1;
  }
  EXPECT_LE(longest, 50u + 12u);
  EXPECT_NE(g.find("1 cell = "), std::string::npos);
}

TEST_F(GanttTest, DedicatedLanesUseNodeNames) {
  ResourceCatalog cat;
  const ResourceId p = cat.add_processor_type("P");
  Application app(cat);
  Task t;
  t.name = "only";
  t.comp = 2;
  t.deadline = 10;
  t.proc = p;
  const TaskId id = app.add_task(t);
  DedicatedPlatform plat;
  plat.add_node_type(NodeType{"edge-node", p, {}, 3});
  DedicatedConfig config;
  config.instance_types = {0, 0};
  Schedule s(1);
  s.items[id] = {0, 1};
  const std::string g = render_gantt_dedicated(app, s, plat, config);
  EXPECT_NE(g.find("edge-node#0"), std::string::npos);
  EXPECT_NE(g.find("edge-node#1 |aa"), std::string::npos);
}

TEST(GanttPaper, PaperScheduleRenders) {
  ProblemInstance inst = paper_example();
  Capacities caps(inst.catalog->size(), 3);
  const ListScheduleResult r = list_schedule_shared(*inst.app, caps);
  ASSERT_TRUE(r.feasible);
  const std::string g = render_gantt_shared(*inst.app, r.schedule, caps);
  EXPECT_NE(g.find("P1[0]"), std::string::npos);
  EXPECT_NE(g.find("P2[0]"), std::string::npos);
  EXPECT_NE(g.find("=T15"), std::string::npos);
}

}  // namespace
}  // namespace rtlb
