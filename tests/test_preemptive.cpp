#include <gtest/gtest.h>

#include "src/core/analysis.hpp"
#include "src/sched/list_scheduler.hpp"
#include "src/sched/optimal.hpp"
#include "src/sched/preemptive.hpp"
#include "src/workload/taskset_gen.hpp"

namespace rtlb {
namespace {

class PreemptiveTest : public ::testing::Test {
 protected:
  PreemptiveTest() : app_(cat_) {
    p_ = cat_.add_processor_type("P");
    r_ = cat_.add_resource("r");
  }

  TaskId add(Time comp, Time rel, Time deadline, bool preemptive,
             std::vector<ResourceId> res = {}) {
    Task t;
    t.name = "t" + std::to_string(app_.num_tasks());
    t.comp = comp;
    t.release = rel;
    t.deadline = deadline;
    t.proc = p_;
    t.preemptive = preemptive;
    t.resources = std::move(res);
    return app_.add_task(std::move(t));
  }

  ResourceCatalog cat_;
  Application app_;
  ResourceId p_, r_;
};

TEST_F(PreemptiveTest, TrivialRunIsOneSlice) {
  const TaskId a = add(3, 0, 10, true);
  Capacities caps(cat_.size(), 1);
  const PreemptiveResult res = edf_preemptive_shared(app_, caps);
  ASSERT_TRUE(res.feasible);
  ASSERT_EQ(res.schedule.slices.size(), 1u);
  EXPECT_EQ(res.schedule.slices[0].task, a);
  EXPECT_EQ(res.schedule.slices[0].start, 0);
  EXPECT_EQ(res.schedule.slices[0].end, 3);
  EXPECT_TRUE(check_sliced(app_, res.schedule, caps).empty());
  EXPECT_EQ(res.preemptions, 0);
}

TEST_F(PreemptiveTest, UrgentArrivalPreempts) {
  // Long preemptive task; an urgent one releases mid-flight on the single
  // CPU. EDF must split the long task around it.
  const TaskId longer = add(8, 0, 20, true);
  const TaskId urgent = add(2, 3, 6, false);
  Capacities caps(cat_.size(), 1);
  const PreemptiveResult res = edf_preemptive_shared(app_, caps);
  ASSERT_TRUE(res.feasible) << res.missed.size();
  EXPECT_TRUE(check_sliced(app_, res.schedule, caps).empty());
  EXPECT_GE(res.preemptions, 1);
  // The long task is in >= 2 slices; the urgent one is exactly one.
  int long_slices = 0, urgent_slices = 0;
  for (const Slice& s : res.schedule.slices) {
    if (s.task == longer) ++long_slices;
    if (s.task == urgent) ++urgent_slices;
  }
  EXPECT_GE(long_slices, 2);
  EXPECT_EQ(urgent_slices, 1);
  EXPECT_EQ(res.schedule.completion_of(urgent), 5);  // runs [3, 5] immediately
}

TEST_F(PreemptiveTest, NonPreemptiveTaskIsNeverSplit) {
  // Same shape but the long task is non-preemptive: the urgent one must
  // wait and misses its deadline.
  add(8, 0, 20, false);
  add(2, 3, 6, false);
  Capacities caps(cat_.size(), 1);
  const PreemptiveResult res = edf_preemptive_shared(app_, caps);
  EXPECT_FALSE(res.feasible);
  ASSERT_EQ(res.missed.size(), 1u);
  // Structure is still valid (only the deadline is violated).
  const auto violations = check_sliced(app_, res.schedule, caps);
  for (const std::string& v : violations) {
    EXPECT_NE(v.find("deadline"), std::string::npos) << v;
  }
}

TEST_F(PreemptiveTest, FeasibleOnlyWithPreemption) {
  // The Theorem 3 vs Theorem 4 split, operationally. A (C=8, window [0,12],
  // preemptive) + B (C=4, window [4,8]) on one CPU:
  //  * preemptive: A [0,4], B [4,8], A [8,12] -- fits exactly;
  //  * non-preemptive A: its contiguous 8 ticks must cover all of [4,8]
  //    (Theorem 4's interval term), colliding with B -> infeasible.
  const TaskId a = add(8, 0, 12, true);
  const TaskId b = add(4, 4, 8, false);
  Capacities caps(cat_.size(), 1);

  const PreemptiveResult pre = edf_preemptive_shared(app_, caps);
  ASSERT_TRUE(pre.feasible);
  EXPECT_TRUE(check_sliced(app_, pre.schedule, caps).empty());
  EXPECT_EQ(pre.schedule.completion_of(a), 12);
  EXPECT_EQ(pre.schedule.completion_of(b), 8);

  // The contiguous-placement searches agree it is impossible without
  // preemption.
  Application rigid(cat_);
  Task ta = app_.task(a);
  ta.preemptive = false;
  Task tb = app_.task(b);
  rigid.add_task(ta);
  rigid.add_task(tb);
  EXPECT_FALSE(exists_feasible_schedule_shared(rigid, caps, {}));

  // And the paper's bounds see the same split: Theorem 3 says 1 unit can
  // suffice, Theorem 4 says 2 are needed without preemption.
  const AnalysisResult res_pre = analyze(app_);
  const AnalysisResult res_rigid = analyze(rigid);
  EXPECT_EQ(res_pre.bound_for(p_), 1);
  EXPECT_EQ(res_rigid.bound_for(p_), 2);
}

TEST_F(PreemptiveTest, ResourcesHeldOnlyWhileRunning) {
  // Two preemptive r-tasks, one r unit, two CPUs: they serialize on r but
  // both finish by interleaving; capacity is never exceeded.
  add(4, 0, 16, true, {r_});
  add(4, 0, 16, true, {r_});
  Capacities caps(cat_.size(), 2);
  caps.set(r_, 1);
  const PreemptiveResult res = edf_preemptive_shared(app_, caps);
  ASSERT_TRUE(res.feasible);
  EXPECT_TRUE(check_sliced(app_, res.schedule, caps).empty());
}

TEST_F(PreemptiveTest, PrecedenceWithMessages) {
  const TaskId a = add(3, 0, 20, true);
  const TaskId b = add(2, 0, 20, true);
  app_.add_edge(a, b, 4);
  Capacities caps(cat_.size(), 2);
  const PreemptiveResult res = edf_preemptive_shared(app_, caps);
  ASSERT_TRUE(res.feasible);
  EXPECT_TRUE(check_sliced(app_, res.schedule, caps).empty());
  // The dispatcher always charges the message (no co-location credit).
  Time b_first = kTimeMax;
  for (const Slice& s : res.schedule.slices) {
    if (s.task == b) b_first = std::min(b_first, s.start);
  }
  EXPECT_EQ(b_first, 7);
}

TEST_F(PreemptiveTest, ValidatorCatchesCorruption) {
  add(3, 0, 10, true);
  Capacities caps(cat_.size(), 1);
  PreemptiveResult res = edf_preemptive_shared(app_, caps);
  ASSERT_TRUE(res.feasible);
  SlicedSchedule broken = res.schedule;
  broken.slices[0].end -= 1;  // under-executes the task
  EXPECT_FALSE(check_sliced(app_, broken, caps).empty());
}

TEST(PreemptiveRandom, MixedWorkloadsValidate) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    WorkloadParams params;
    params.seed = seed * 17;
    params.num_tasks = 16;
    params.preemptive_prob = 0.6;
    params.laxity = 2.5;
    ProblemInstance inst = generate_workload(params);
    Capacities caps(inst.catalog->size(), 2);
    const PreemptiveResult res = edf_preemptive_shared(*inst.app, caps);
    const auto violations = check_sliced(*inst.app, res.schedule, caps);
    if (res.feasible) {
      EXPECT_TRUE(violations.empty())
          << "seed " << seed << ": " << (violations.empty() ? "" : violations[0]);
    } else {
      for (const std::string& v : violations) {
        EXPECT_NE(v.find("deadline"), std::string::npos) << "seed " << seed << ": " << v;
      }
    }
  }
}

}  // namespace
}  // namespace rtlb
