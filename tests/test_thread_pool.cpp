#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "src/common/thread_pool.hpp"

namespace rtlb {
namespace {

TEST(ThreadPool, RunsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(hits.size(), [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ResultsWrittenPerSlotAreVisibleToCaller) {
  ThreadPool pool(3);
  std::vector<long> out(257, -1);
  pool.parallel_for(out.size(), [&](std::size_t i) { out[i] = static_cast<long>(i * i); });
  for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], static_cast<long>(i * i));
}

TEST(ThreadPool, ReusableAcrossCalls) {
  ThreadPool pool(2);
  long total = 0;
  for (int round = 0; round < 10; ++round) {
    std::vector<long> out(50, 0);
    pool.parallel_for(out.size(), [&](std::size_t i) { out[i] = 1; });
    total += std::accumulate(out.begin(), out.end(), 0L);
  }
  EXPECT_EQ(total, 500);
}

TEST(ThreadPool, ZeroAndOneElementRuns) {
  ThreadPool pool(4);
  int calls = 0;
  pool.parallel_for(0, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  pool.parallel_for(1, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 1);
}

TEST(ThreadPool, SingleWorkerRunsInline) {
  ThreadPool pool(1);
  std::vector<int> order;
  pool.parallel_for(5, [&](std::size_t i) { order.push_back(static_cast<int>(i)); });
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ThreadPool, FirstExceptionPropagates) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.parallel_for(100,
                                 [&](std::size_t i) {
                                   if (i % 7 == 3) throw std::runtime_error("boom");
                                 }),
               std::runtime_error);
}

TEST(ThreadPool, ResolveThreads) {
  EXPECT_GE(ThreadPool::resolve_threads(0), 1u);
  EXPECT_GE(ThreadPool::resolve_threads(-3), 1u);
  EXPECT_EQ(ThreadPool::resolve_threads(1), 1u);
  EXPECT_EQ(ThreadPool::resolve_threads(6), 6u);
}

}  // namespace
}  // namespace rtlb
