#include <gtest/gtest.h>

#include "src/sched/feasibility.hpp"
#include "src/sched/list_scheduler.hpp"
#include "src/sim/online.hpp"
#include "src/workload/taskset_gen.hpp"

namespace rtlb {
namespace {

class OnlineTest : public ::testing::Test {
 protected:
  OnlineTest() : app_(cat_) {
    p_ = cat_.add_processor_type("P");
    r_ = cat_.add_resource("r");
  }

  TaskId add(Time comp, Time rel, Time deadline, std::vector<ResourceId> res = {}) {
    Task t;
    t.name = "t" + std::to_string(app_.num_tasks());
    t.comp = comp;
    t.release = rel;
    t.deadline = deadline;
    t.proc = p_;
    t.resources = std::move(res);
    return app_.add_task(std::move(t));
  }

  ResourceCatalog cat_;
  Application app_;
  ResourceId p_, r_;
};

TEST_F(OnlineTest, DispatchesIndependentTasksImmediately) {
  const TaskId a = add(3, 0, 20);
  const TaskId b = add(2, 0, 20);
  Capacities caps(cat_.size(), 2);
  const OnlineResult res = dispatch_online_shared(app_, caps);
  ASSERT_TRUE(res.feasible);
  EXPECT_EQ(res.schedule.items[a].start, 0);
  EXPECT_EQ(res.schedule.items[b].start, 0);
  EXPECT_NE(res.schedule.items[a].unit, res.schedule.items[b].unit);
}

TEST_F(OnlineTest, ExecutionIsAlwaysAValidSchedule) {
  // Whatever the dispatcher does (feasible or not), the executed timetable
  // must satisfy every non-deadline constraint.
  const TaskId a = add(3, 0, 20);
  const TaskId b = add(2, 1, 20);
  const TaskId c = add(4, 0, 20, {r_});
  const TaskId d = add(4, 0, 20, {r_});
  (void)a;
  (void)b;
  app_.add_edge(a, c, 5);
  Capacities caps(cat_.size(), 2);
  caps.set(r_, 1);
  const OnlineResult res = dispatch_online_shared(app_, caps);
  ASSERT_TRUE(res.schedule.complete());
  const auto violations = check_shared(app_, res.schedule, caps);
  EXPECT_TRUE(violations.empty()) << violations.front();
  (void)c;
  (void)d;
}

TEST_F(OnlineTest, WaitsForMessagesAcrossUnits) {
  const TaskId a = add(3, 0, 30);
  const TaskId b = add(2, 0, 30);
  const TaskId c = add(2, 0, 30);
  app_.add_edge(a, c, 6);
  Capacities caps(cat_.size(), 2);
  const OnlineResult res = dispatch_online_shared(app_, caps);
  ASSERT_TRUE(res.feasible);
  (void)b;
  // c starts either on a's unit at 3 (co-located data) or elsewhere at 9.
  const bool co_located = res.schedule.items[c].unit == res.schedule.items[a].unit;
  EXPECT_EQ(res.schedule.items[c].start, co_located ? 3 : 9);
}

TEST_F(OnlineTest, RespectsReleaseTimes) {
  const TaskId a = add(2, 7, 20);
  Capacities caps(cat_.size(), 1);
  const OnlineResult res = dispatch_online_shared(app_, caps);
  ASSERT_TRUE(res.feasible);
  EXPECT_EQ(res.schedule.items[a].start, 7);
}

TEST_F(OnlineTest, ResourceContentionSerializesOnline) {
  add(4, 0, 20, {r_});
  add(4, 0, 20, {r_});
  Capacities caps(cat_.size(), 2);
  caps.set(r_, 1);
  const OnlineResult res = dispatch_online_shared(app_, caps);
  ASSERT_TRUE(res.feasible);
  EXPECT_TRUE(check_shared(app_, res.schedule, caps).empty());
}

TEST_F(OnlineTest, ReportsDeadlineMisses) {
  add(4, 0, 4);
  add(4, 0, 4);
  Capacities caps(cat_.size(), 1);
  const OnlineResult res = dispatch_online_shared(app_, caps);
  EXPECT_FALSE(res.feasible);
  ASSERT_EQ(res.missed.size(), 1u);  // one of the two finishes at 8 > 4
  // Execution still completed and is structurally valid.
  EXPECT_TRUE(res.schedule.complete());
}

TEST_F(OnlineTest, OnlineIsNeverClairvoyant) {
  // A case where offline wins: the urgent task releases at 2; offline leaves
  // the CPU idle for it, the online dispatcher (work-conserving) starts the
  // long task at 0 and blows the deadline.
  add(4, 0, 10);
  add(3, 2, 6);
  Capacities caps(cat_.size(), 1);
  const OnlineResult online = dispatch_online_shared(app_, caps);
  EXPECT_FALSE(online.feasible);
}

TEST(OnlineRandom, ExecutionValidatesAcrossWorkloads) {
  int feasible_runs = 0;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    WorkloadParams params;
    params.seed = seed * 7;
    params.num_tasks = 18;
    params.laxity = 3.0;
    ProblemInstance inst = generate_workload(params);
    Capacities caps(inst.catalog->size(), 3);
    const OnlineResult res = dispatch_online_shared(*inst.app, caps);
    ASSERT_TRUE(res.schedule.complete()) << "seed " << seed;
    const auto violations = check_shared(*inst.app, res.schedule, caps);
    // Deadline misses are legal online outcomes; everything else is a bug.
    for (const std::string& v : violations) {
      EXPECT_NE(v.find("deadline"), std::string::npos) << "seed " << seed << ": " << v;
    }
    if (res.feasible) ++feasible_runs;
  }
  EXPECT_GT(feasible_runs, 3);
}

}  // namespace
}  // namespace rtlb
