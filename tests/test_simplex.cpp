#include <gtest/gtest.h>

#include <cmath>

#include "src/common/random.hpp"
#include "src/lp/simplex.hpp"

namespace rtlb {
namespace {

using Rel = LinearProgram::Relation;
using Sense = LinearProgram::Sense;

TEST(Simplex, SimpleMaximization) {
  // max 3x + 5y st x <= 4, 2y <= 12, 3x + 2y <= 18 (classic Dantzig).
  LinearProgram lp;
  lp.sense = Sense::Maximize;
  lp.objective = {3, 5};
  lp.add_constraint({1, 0}, Rel::LessEq, 4);
  lp.add_constraint({0, 2}, Rel::LessEq, 12);
  lp.add_constraint({3, 2}, Rel::LessEq, 18);
  const LpResult r = solve_lp(lp);
  ASSERT_EQ(r.status, LpResult::Status::Optimal);
  EXPECT_NEAR(r.objective, 36.0, 1e-7);
  EXPECT_NEAR(r.x[0], 2.0, 1e-7);
  EXPECT_NEAR(r.x[1], 6.0, 1e-7);
}

TEST(Simplex, MinimizationWithGreaterEq) {
  // min 2x + 3y st x + y >= 4, x >= 1  ->  x = 4, y = 0 gives 8? No:
  // 2*4=8 vs x=1,y=3 -> 11; optimum x=4,y=0 -> 8.
  LinearProgram lp;
  lp.objective = {2, 3};
  lp.add_constraint({1, 1}, Rel::GreaterEq, 4);
  lp.add_constraint({1, 0}, Rel::GreaterEq, 1);
  const LpResult r = solve_lp(lp);
  ASSERT_EQ(r.status, LpResult::Status::Optimal);
  EXPECT_NEAR(r.objective, 8.0, 1e-7);
  EXPECT_NEAR(r.x[0], 4.0, 1e-7);
}

TEST(Simplex, EqualityConstraint) {
  // min x + y st x + 2y = 6, x >= 0, y >= 0 -> y = 3 gives 3.
  LinearProgram lp;
  lp.objective = {1, 1};
  lp.add_constraint({1, 2}, Rel::Equal, 6);
  const LpResult r = solve_lp(lp);
  ASSERT_EQ(r.status, LpResult::Status::Optimal);
  EXPECT_NEAR(r.objective, 3.0, 1e-7);
  EXPECT_NEAR(r.x[1], 3.0, 1e-7);
}

TEST(Simplex, DetectsInfeasibility) {
  LinearProgram lp;
  lp.objective = {1};
  lp.add_constraint({1}, Rel::LessEq, 2);
  lp.add_constraint({1}, Rel::GreaterEq, 5);
  EXPECT_EQ(solve_lp(lp).status, LpResult::Status::Infeasible);
}

TEST(Simplex, DetectsUnboundedness) {
  LinearProgram lp;
  lp.sense = Sense::Maximize;
  lp.objective = {1, 0};
  lp.add_constraint({0, 1}, Rel::LessEq, 5);  // x unconstrained above
  EXPECT_EQ(solve_lp(lp).status, LpResult::Status::Unbounded);
}

TEST(Simplex, NegativeRhsNormalization) {
  // x - y <= -2  ==  y - x >= 2; min y st that and x >= 0 -> x=0, y=2.
  LinearProgram lp;
  lp.objective = {0, 1};
  lp.add_constraint({1, -1}, Rel::LessEq, -2);
  const LpResult r = solve_lp(lp);
  ASSERT_EQ(r.status, LpResult::Status::Optimal);
  EXPECT_NEAR(r.objective, 2.0, 1e-7);
}

TEST(Simplex, DegenerateProblemTerminates) {
  // A classic cycling-prone degenerate LP; Bland's rule must terminate.
  LinearProgram lp;
  lp.sense = Sense::Minimize;
  lp.objective = {-0.75, 150, -0.02, 6};
  lp.add_constraint({0.25, -60, -0.04, 9}, Rel::LessEq, 0);
  lp.add_constraint({0.5, -90, -0.02, 3}, Rel::LessEq, 0);
  lp.add_constraint({0, 0, 1, 0}, Rel::LessEq, 1);
  const LpResult r = solve_lp(lp);
  ASSERT_EQ(r.status, LpResult::Status::Optimal);
  EXPECT_NEAR(r.objective, -0.05, 1e-6);
}

TEST(Simplex, ShortCoefficientVectorsArePadded) {
  LinearProgram lp;
  lp.objective = {1, 1, 1};
  lp.add_constraint({1}, Rel::GreaterEq, 2);  // only x0 mentioned
  const LpResult r = solve_lp(lp);
  ASSERT_EQ(r.status, LpResult::Status::Optimal);
  EXPECT_NEAR(r.objective, 2.0, 1e-7);
  EXPECT_NEAR(r.x[0], 2.0, 1e-7);
}

// Brute-force cross-check: enumerate all basic feasible points of random
// 2-variable LPs by intersecting constraint lines, and compare optima.
TEST(Simplex, MatchesVertexEnumerationOn2DRandomLps) {
  Rng rng(123);
  int solved = 0;
  for (int trial = 0; trial < 200; ++trial) {
    LinearProgram lp;
    lp.objective = {static_cast<double>(rng.uniform(1, 9)),
                    static_cast<double>(rng.uniform(1, 9))};
    const int m = static_cast<int>(rng.uniform(1, 4));
    for (int k = 0; k < m; ++k) {
      lp.add_constraint({static_cast<double>(rng.uniform(0, 5)),
                         static_cast<double>(rng.uniform(0, 5))},
                        Rel::GreaterEq, static_cast<double>(rng.uniform(1, 20)));
    }
    const LpResult r = solve_lp(lp);
    if (r.status != LpResult::Status::Optimal) continue;  // 0 >= positive -> infeasible
    ++solved;

    // Enumerate candidate vertices: axis intercepts and pairwise
    // intersections, keep feasible ones, take the best.
    std::vector<std::pair<double, double>> pts;
    auto rows = lp.constraints;
    for (const auto& c : rows) {
      if (c.coeffs[0] > 0) pts.push_back({c.rhs / c.coeffs[0], 0.0});
      if (c.coeffs[1] > 0) pts.push_back({0.0, c.rhs / c.coeffs[1]});
    }
    for (std::size_t i = 0; i < rows.size(); ++i) {
      for (std::size_t j = i + 1; j < rows.size(); ++j) {
        const double a1 = rows[i].coeffs[0], b1 = rows[i].coeffs[1], c1 = rows[i].rhs;
        const double a2 = rows[j].coeffs[0], b2 = rows[j].coeffs[1], c2 = rows[j].rhs;
        const double det = a1 * b2 - a2 * b1;
        if (std::abs(det) < 1e-9) continue;
        pts.push_back({(c1 * b2 - c2 * b1) / det, (a1 * c2 - a2 * c1) / det});
      }
    }
    double best = std::numeric_limits<double>::infinity();
    for (const auto& [x, y] : pts) {
      if (x < -1e-9 || y < -1e-9) continue;
      bool ok = true;
      for (const auto& c : rows) {
        if (c.coeffs[0] * x + c.coeffs[1] * y < c.rhs - 1e-6) ok = false;
      }
      if (ok) best = std::min(best, lp.objective[0] * x + lp.objective[1] * y);
    }
    ASSERT_TRUE(std::isfinite(best)) << "trial " << trial;
    EXPECT_NEAR(r.objective, best, 1e-5) << "trial " << trial;
  }
  EXPECT_GT(solved, 100);
}

}  // namespace
}  // namespace rtlb
