// Parameterized property suites tying the analysis to ground truth:
//  * SOUNDNESS: on small random instances, exhaustively search for the
//    minimum feasible unit count of each resource; it can never undercut
//    LB_r (the defining property of the bound, Section 6).
//  * OPTIMALITY OF THE MERGE GREEDY: Figures 2/3 must match brute-force
//    enumeration of all merge subsets (Theorems 1 and 2).
//  * VALIDATOR/SIMULATOR AGREEMENT on exhaustive-search witnesses.
#include <gtest/gtest.h>

#include "src/core/analysis.hpp"
#include "src/core/joint_bound.hpp"
#include "src/sched/feasibility.hpp"
#include "src/sched/optimal.hpp"
#include "src/sim/simulator.hpp"
#include "src/workload/taskset_gen.hpp"

namespace rtlb {
namespace {

/// Tiny-instance generator with horizons small enough for exhaustive search.
ProblemInstance tiny_instance(std::uint64_t seed, bool with_resource, bool with_comm) {
  Rng rng(seed);
  ProblemInstance inst;
  inst.catalog = std::make_unique<ResourceCatalog>();
  const ResourceId p = inst.catalog->add_processor_type("P", 3);
  const ResourceId r =
      with_resource ? inst.catalog->add_resource("r", 1) : kInvalidResource;
  inst.app = std::make_unique<Application>(*inst.catalog);

  const std::size_t n = static_cast<std::size_t>(rng.uniform(3, 5));
  for (std::size_t i = 0; i < n; ++i) {
    Task t;
    t.name = "t" + std::to_string(i);
    t.comp = rng.uniform(1, 3);
    t.release = rng.uniform(0, 2);
    t.deadline = t.release + t.comp + rng.uniform(0, 5);
    t.proc = p;
    if (with_resource && rng.chance(0.5)) t.resources = {r};
    inst.app->add_task(std::move(t));
  }
  // Sparse forward edges; stretch deadlines so chains stay window-feasible.
  for (std::uint32_t u = 0; u < n; ++u) {
    for (std::uint32_t v = u + 1; v < n; ++v) {
      if (rng.chance(0.25)) {
        const Time m = with_comm ? rng.uniform(0, 2) : 0;
        inst.app->add_edge(u, v, m);
        Task& tv = inst.app->task(v);
        const Time chain_floor = inst.app->task(u).release + inst.app->task(u).comp + m +
                                 tv.comp;
        tv.deadline = std::max(tv.deadline, chain_floor + rng.uniform(0, 3));
      }
    }
  }
  inst.app->validate();
  return inst;
}

class Soundness : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Soundness, ExhaustiveMinimumNeverUndercutsLb) {
  const std::uint64_t seed = GetParam();
  ProblemInstance inst = tiny_instance(seed, /*with_resource=*/seed % 2 == 0,
                                       /*with_comm=*/seed % 3 == 0);
  const AnalysisResult res = analyze(*inst.app);
  if (res.infeasible(*inst.app)) return;  // windows prove global infeasibility

  SearchLimits limits;
  limits.max_window = 40;
  limits.max_nodes = 30'000'000;
  for (const ResourceBound& b : res.bounds) {
    Capacities generous(inst.catalog->size(), 3);
    const auto min_units = min_units_exhaustive(*inst.app, b.resource, generous, 3, limits);
    if (!min_units.has_value()) continue;  // infeasible even with 3 of everything
    EXPECT_GE(static_cast<std::int64_t>(*min_units), b.bound)
        << "seed " << seed << " resource " << inst.catalog->name(b.resource)
        << ": a feasible schedule used fewer units than the claimed lower bound";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Soundness, ::testing::Range<std::uint64_t>(1, 41));

class GreedyOptimality : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GreedyOptimality, MergeGreedyMatchesExhaustiveSubsets) {
  const std::uint64_t seed = GetParam();
  WorkloadParams params;
  params.seed = seed;
  params.num_tasks = 14;
  params.num_proc_types = 2;
  params.num_resources = 1;
  params.msg_max = 6;
  params.laxity = 1.2 + 0.3 * static_cast<double>(seed % 4);
  params.release_spread = (seed % 2 == 0) ? 0.4 : 0.0;
  ProblemInstance inst = generate_workload(params);

  SharedMergeOracle shared;
  const TaskWindows w = compute_windows(*inst.app, shared);
  for (TaskId i = 0; i < inst.app->num_tasks(); ++i) {
    if (inst.app->successors(i).size() <= 12) {
      EXPECT_EQ(w.lct[i], lct_exhaustive(*inst.app, shared, w.lct, i))
          << "seed " << seed << " task " << i << " (LCT greedy vs exhaustive)";
    }
    if (inst.app->predecessors(i).size() <= 12) {
      EXPECT_EQ(w.est[i], est_exhaustive(*inst.app, shared, w.est, i))
          << "seed " << seed << " task " << i << " (EST greedy vs exhaustive)";
    }
  }

  // Same theorem under the dedicated-model mergeability notion.
  DedicatedMergeOracle dedicated(inst.platform);
  const TaskWindows wd = compute_windows(*inst.app, dedicated);
  for (TaskId i = 0; i < inst.app->num_tasks(); ++i) {
    if (inst.app->successors(i).size() <= 12) {
      EXPECT_EQ(wd.lct[i], lct_exhaustive(*inst.app, dedicated, wd.lct, i))
          << "seed " << seed << " task " << i << " (dedicated LCT)";
    }
    if (inst.app->predecessors(i).size() <= 12) {
      EXPECT_EQ(wd.est[i], est_exhaustive(*inst.app, dedicated, wd.est, i))
          << "seed " << seed << " task " << i << " (dedicated EST)";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GreedyOptimality, ::testing::Range<std::uint64_t>(1, 21));

class WitnessAgreement : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(WitnessAgreement, ExhaustiveWitnessPassesValidatorAndSimulator) {
  const std::uint64_t seed = GetParam();
  ProblemInstance inst = tiny_instance(seed + 1000, /*with_resource=*/true,
                                       /*with_comm=*/true);
  Capacities caps(inst.catalog->size(), 2);
  SearchLimits limits;
  limits.max_window = 40;
  Schedule witness(0);
  if (!exists_feasible_schedule_shared(*inst.app, caps, limits, &witness)) return;
  EXPECT_TRUE(check_shared(*inst.app, witness, caps).empty()) << "seed " << seed;
  const SimReport rep = simulate_shared(*inst.app, witness, caps);
  EXPECT_TRUE(rep.ok) << "seed " << seed << ": "
                      << (rep.violations.empty() ? "" : rep.violations[0]);
}

INSTANTIATE_TEST_SUITE_P(Seeds, WitnessAgreement, ::testing::Range<std::uint64_t>(1, 21));

class CostSoundness : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CostSoundness, NoFeasibleMachineCheaperThanTheIlpBound) {
  // The Section-7 property end-to-end: enumerate every small machine over a
  // node menu; for each one on which a schedule EXISTS (exhaustive search),
  // its cost must be >= the ILP bound -- and >= the joint-bound ILP too.
  const std::uint64_t seed = GetParam();
  Rng rng(seed + 9000);
  ProblemInstance inst;
  inst.catalog = std::make_unique<ResourceCatalog>();
  const ResourceId p = inst.catalog->add_processor_type("P", 4);
  const ResourceId a = inst.catalog->add_resource("a", 2);
  const ResourceId b = inst.catalog->add_resource("b", 2);
  inst.app = std::make_unique<Application>(*inst.catalog);
  const std::size_t n = static_cast<std::size_t>(rng.uniform(3, 4));
  for (std::size_t i = 0; i < n; ++i) {
    Task t;
    t.name = "t" + std::to_string(i);
    t.comp = rng.uniform(1, 3);
    t.deadline = t.comp + rng.uniform(0, 4);
    t.proc = p;
    if (rng.chance(0.5)) t.resources.push_back(a);
    if (rng.chance(0.4)) t.resources.push_back(b);
    inst.app->add_task(std::move(t));
  }
  if (n >= 2 && rng.chance(0.5)) {
    inst.app->add_edge(0, 1, rng.uniform(0, 1));
    Task& t1 = inst.app->task(1);
    t1.deadline = std::max(t1.deadline, inst.app->task(0).comp + 1 + t1.comp + 1);
  }
  inst.app->validate();

  DedicatedPlatform plat;
  plat.add_node_type(NodeType{"Pa", p, {{a, 1}}, 5});
  plat.add_node_type(NodeType{"Pb", p, {{b, 1}}, 4});
  plat.add_node_type(NodeType{"Pab", p, {{a, 1}, {b, 1}}, 8});

  AnalysisOptions opts;
  opts.model = SystemModel::Dedicated;
  const AnalysisResult res = analyze(*inst.app, opts, &plat);
  const auto joint = joint_lower_bounds(*inst.app, res.windows);
  const DedicatedCostBound plain = dedicated_cost_bound(*inst.app, plat, res.bounds);
  const DedicatedCostBound strong =
      dedicated_cost_bound_joint(*inst.app, plat, res.bounds, joint);

  SearchLimits limits;
  limits.max_window = 32;
  Cost cheapest_feasible = -1;
  for (int x0 = 0; x0 <= 2; ++x0) {
    for (int x1 = 0; x1 <= 2; ++x1) {
      for (int x2 = 0; x2 <= 2; ++x2) {
        if (x0 + x1 + x2 == 0) continue;
        DedicatedConfig config;
        for (int k = 0; k < x0; ++k) config.instance_types.push_back(0);
        for (int k = 0; k < x1; ++k) config.instance_types.push_back(1);
        for (int k = 0; k < x2; ++k) config.instance_types.push_back(2);
        if (!exists_feasible_schedule_dedicated(*inst.app, plat, config, limits)) continue;
        const Cost cost = config.total_cost(plat);
        if (cheapest_feasible < 0 || cost < cheapest_feasible) cheapest_feasible = cost;
        if (plain.feasible) {
          EXPECT_GE(cost, plain.total) << "seed " << seed;
        }
        if (strong.feasible) {
          EXPECT_GE(cost, strong.total) << "seed " << seed;
        }
      }
    }
  }
  // And the joint bound dominates the plain one whenever both exist.
  if (plain.feasible && strong.feasible) {
    EXPECT_GE(strong.total, plain.total) << "seed " << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CostSoundness, ::testing::Range<std::uint64_t>(1, 16));

TEST(WindowSoundness, FeasibleSchedulesStayInsideWindows) {
  // Theorems 1-2 operationally: any feasible schedule found by the
  // exhaustive search must start each task at or after E_i and finish it by
  // L_i.
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    ProblemInstance inst = tiny_instance(seed + 500, seed % 2 == 0, true);
    const AnalysisResult res = analyze(*inst.app);
    Capacities caps(inst.catalog->size(), 2);
    SearchLimits limits;
    limits.max_window = 40;
    Schedule witness(0);
    if (!exists_feasible_schedule_shared(*inst.app, caps, limits, &witness)) continue;
    for (TaskId i = 0; i < inst.app->num_tasks(); ++i) {
      EXPECT_GE(witness.items[i].start, res.windows.est[i]) << "seed " << seed;
      EXPECT_LE(witness.end_of(*inst.app, i), res.windows.lct[i]) << "seed " << seed;
    }
  }
}

}  // namespace
}  // namespace rtlb
