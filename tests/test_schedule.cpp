#include <gtest/gtest.h>

#include "src/sched/schedule.hpp"

namespace rtlb {
namespace {

TEST(Schedule, CompletenessAndMakespan) {
  ResourceCatalog cat;
  const ResourceId p = cat.add_processor_type("P");
  Application app(cat);
  Task t;
  t.comp = 3;
  t.deadline = 20;
  t.proc = p;
  t.name = "a";
  app.add_task(t);
  t.name = "b";
  t.comp = 5;
  app.add_task(t);

  Schedule s(2);
  EXPECT_FALSE(s.complete());
  s.items[0] = {0, 0};
  EXPECT_FALSE(s.complete());
  s.items[1] = {4, 0};
  EXPECT_TRUE(s.complete());
  EXPECT_EQ(s.end_of(app, 0), 3);
  EXPECT_EQ(s.end_of(app, 1), 9);
  EXPECT_EQ(s.makespan(app), 9);
}

TEST(Capacities, DefaultsAndAccess) {
  Capacities caps(4, 2);
  EXPECT_EQ(caps.of(0), 2);
  EXPECT_EQ(caps.of(3), 2);
  EXPECT_EQ(caps.of(99), 0);  // out of range reads as zero
  caps.set(1, 7);
  EXPECT_EQ(caps.of(1), 7);
}

TEST(DedicatedConfig, TotalsAcrossInstances) {
  ResourceCatalog cat;
  const ResourceId p = cat.add_processor_type("P");
  const ResourceId r = cat.add_resource("r");
  DedicatedPlatform plat;
  plat.add_node_type(NodeType{"rich", p, {{r, 2}}, 12});
  plat.add_node_type(NodeType{"bare", p, {}, 5});

  DedicatedConfig config;
  config.instance_types = {0, 0, 1};
  EXPECT_EQ(config.total_units_of(plat, p), 3);
  EXPECT_EQ(config.total_units_of(plat, r), 4);
  EXPECT_EQ(config.total_cost(plat), 29);
}

}  // namespace
}  // namespace rtlb
