#include <gtest/gtest.h>

#include "src/common/random.hpp"
#include "src/core/analysis.hpp"
#include "src/sched/feasibility.hpp"
#include "src/sched/list_scheduler.hpp"
#include "src/sched/optimal.hpp"

namespace rtlb {
namespace {

class OptimalTest : public ::testing::Test {
 protected:
  OptimalTest() : app_(cat_) {
    p_ = cat_.add_processor_type("P");
    r_ = cat_.add_resource("r");
  }

  TaskId add(Time comp, Time rel, Time deadline, std::vector<ResourceId> res = {}) {
    Task t;
    t.name = "t" + std::to_string(app_.num_tasks());
    t.comp = comp;
    t.release = rel;
    t.deadline = deadline;
    t.proc = p_;
    t.resources = std::move(res);
    return app_.add_task(std::move(t));
  }

  ResourceCatalog cat_;
  Application app_;
  ResourceId p_, r_;
};

TEST_F(OptimalTest, FindsTrivialSchedule) {
  add(3, 0, 10);
  Capacities caps(cat_.size(), 1);
  Schedule witness(0);
  EXPECT_TRUE(exists_feasible_schedule_shared(app_, caps, {}, &witness));
  EXPECT_TRUE(check_shared(app_, witness, caps).empty());
}

TEST_F(OptimalTest, DetectsInfeasibility) {
  add(4, 0, 4);
  add(4, 0, 4);
  Capacities caps(cat_.size(), 1);
  EXPECT_FALSE(exists_feasible_schedule_shared(app_, caps, {}));
  caps.set(p_, 2);
  EXPECT_TRUE(exists_feasible_schedule_shared(app_, caps, {}));
}

TEST_F(OptimalTest, FindsNonGreedySolution) {
  // EDF would run the urgent task first; here the only feasible schedule
  // delays the urgent-looking task: a(C2, D10) must go FIRST on the single
  // CPU because b(C3, D5) can only fit at [2,5]... actually construct a case
  // where inserted idling is required: c must wait for a message, and the
  // CPU must stay idle for it.
  const TaskId a = add(2, 0, 2);
  const TaskId c = add(2, 0, 7);
  app_.add_edge(a, c, 3);
  Capacities caps(cat_.size(), 2);
  EXPECT_TRUE(exists_feasible_schedule_shared(app_, caps, {}));
}

TEST_F(OptimalTest, ResourceCapacityRespected) {
  add(4, 0, 4, {r_});
  add(4, 0, 4, {r_});
  Capacities caps(cat_.size(), 2);
  caps.set(r_, 1);
  EXPECT_FALSE(exists_feasible_schedule_shared(app_, caps, {}));
  caps.set(r_, 2);
  EXPECT_TRUE(exists_feasible_schedule_shared(app_, caps, {}));
}

TEST_F(OptimalTest, MessageVsCoLocationExplored) {
  // One CPU: co-location works (a then b); two units with the message would
  // be too slow. The search must find the co-located schedule.
  const TaskId a = add(3, 0, 20);
  const TaskId b = add(2, 0, 6);
  app_.add_edge(a, b, 10);
  Capacities caps(cat_.size(), 2);
  Schedule witness(0);
  ASSERT_TRUE(exists_feasible_schedule_shared(app_, caps, {}, &witness));
  EXPECT_EQ(witness.items[a].unit, witness.items[b].unit);
}

TEST_F(OptimalTest, MinUnitsMatchesHandCount) {
  add(4, 0, 4);
  add(4, 0, 4);
  add(4, 0, 8);
  Capacities caps(cat_.size(), 1);
  const auto min_units = min_units_exhaustive(app_, p_, caps, 4);
  ASSERT_TRUE(min_units.has_value());
  EXPECT_EQ(*min_units, 2);  // two in parallel, third sequenced after
}

TEST_F(OptimalTest, MinUnitsNulloptWhenImpossible) {
  add(4, 0, 4);
  Capacities caps(cat_.size(), 1);
  caps.set(r_, 1);
  // Deadline already tight; but make it impossible via an unrelated cap:
  Application impossible(cat_);
  Task t;
  t.comp = 5;
  t.release = 0;
  t.deadline = 4;  // window shorter than C: no capacity helps
  t.proc = p_;
  t.name = "x";
  impossible.add_task(t);
  EXPECT_EQ(min_units_exhaustive(impossible, p_, Capacities(cat_.size(), 1), 3), std::nullopt);
}

TEST_F(OptimalTest, WindowGuardThrows) {
  add(1, 0, 1000);
  Capacities caps(cat_.size(), 1);
  SearchLimits limits;
  limits.max_window = 16;
  EXPECT_THROW(exists_feasible_schedule_shared(app_, caps, limits), std::runtime_error);
}

TEST_F(OptimalTest, StartingAtLbSkipsInfeasibilityProofs) {
  add(4, 0, 4);
  add(4, 0, 4);
  add(4, 0, 8);
  Capacities caps(cat_.size(), 1);
  const MinUnitsStats from_zero = min_units_exhaustive_from(app_, p_, caps, 0, 4);
  const MinUnitsStats from_lb = min_units_exhaustive_from(app_, p_, caps, 2, 4);
  ASSERT_TRUE(from_zero.min_units.has_value());
  ASSERT_TRUE(from_lb.min_units.has_value());
  EXPECT_EQ(*from_zero.min_units, *from_lb.min_units);
  EXPECT_EQ(from_zero.searches_run, 3);  // 0, 1 infeasible; 2 feasible
  EXPECT_EQ(from_lb.searches_run, 1);    // straight to the answer
}

TEST_F(OptimalTest, AgreesWithListSchedulerWhenGreedySucceeds) {
  // Greedy success implies existence; the exhaustive search must agree.
  add(2, 0, 8);
  add(3, 0, 8);
  add(3, 2, 10);
  Capacities caps(cat_.size(), 1);
  const ListScheduleResult greedy = list_schedule_shared(app_, caps);
  ASSERT_TRUE(greedy.feasible);
  EXPECT_TRUE(exists_feasible_schedule_shared(app_, caps, {}));
}

TEST_F(OptimalTest, ExhaustiveNeverWeakerThanGreedyAcrossSeeds) {
  // The gap-inserting effective-deadline list scheduler is hard to trap by
  // hand, so scan random tiny instances and check the one-sided dominance:
  // whenever the greedy heuristic succeeds, the exhaustive search must also
  // report feasible (and its witness must validate).
  Rng rng(2024);
  int greedy_ok = 0, greedy_fail_exhaustive_ok = 0;
  for (int trial = 0; trial < 40; ++trial) {
    ResourceCatalog cat;
    const ResourceId p = cat.add_processor_type("P");
    Application app(cat);
    const int n = static_cast<int>(rng.uniform(3, 4));
    for (int i = 0; i < n; ++i) {
      Task t;
      t.name = "t" + std::to_string(i);
      t.comp = rng.uniform(1, 3);
      t.release = rng.uniform(0, 2);
      t.deadline = t.release + t.comp + rng.uniform(0, 4);
      t.proc = p;
      app.add_task(std::move(t));
    }
    for (TaskId u = 0; u + 1 < app.num_tasks(); ++u) {
      if (rng.chance(0.3)) {
        app.add_edge(u, u + 1, rng.uniform(0, 2));
        Task& v = app.task(u + 1);
        v.deadline = std::max(v.deadline, app.task(u).release + app.task(u).comp +
                                              app.message(u, u + 1) + v.comp + 1);
      }
    }
    app.validate();
    Capacities caps(cat.size(), static_cast<int>(rng.uniform(1, 2)));
    SearchLimits limits;
    limits.max_window = 40;
    const ListScheduleResult greedy = list_schedule_shared(app, caps);
    const bool exact = exists_feasible_schedule_shared(app, caps, limits);
    if (greedy.feasible) {
      ++greedy_ok;
      EXPECT_TRUE(exact) << "trial " << trial
                         << ": greedy found a schedule the exhaustive search missed";
    } else if (exact) {
      ++greedy_fail_exhaustive_ok;  // the strict-gap case; allowed but not required
    }
  }
  EXPECT_GT(greedy_ok, 10);  // the scan must actually exercise the property
}

}  // namespace
}  // namespace rtlb
