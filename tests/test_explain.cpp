#include <gtest/gtest.h>

#include "src/core/analysis.hpp"
#include "src/core/explain.hpp"

namespace rtlb {
namespace {

class ExplainTest : public ::testing::Test {
 protected:
  ExplainTest() : app_(cat_) {
    p_ = cat_.add_processor_type("P");
    q_ = cat_.add_processor_type("Q");
    r_ = cat_.add_resource("r");
  }

  TaskId add(const std::string& name, Time comp, Time rel, Time deadline, ResourceId proc,
             std::vector<ResourceId> res = {}) {
    Task t;
    t.name = name;
    t.comp = comp;
    t.release = rel;
    t.deadline = deadline;
    t.proc = proc;
    t.resources = std::move(res);
    return app_.add_task(std::move(t));
  }

  ResourceCatalog cat_;
  Application app_;
  ResourceId p_, q_, r_;
};

TEST_F(ExplainTest, FeasibleInstanceHasEmptyReport) {
  add("easy", 2, 0, 10, p_);
  const AnalysisResult res = analyze(app_);
  Capacities caps(cat_.size(), 1);
  const InfeasibilityReport report = diagnose(app_, res.windows, &caps);
  EXPECT_FALSE(report.any());
  EXPECT_NE(explain(app_, report).find("no infeasibility"), std::string::npos);
}

TEST_F(ExplainTest, WindowCollapseNamesTheChain) {
  // head -> mid -> tail across processor types: both messages are always
  // paid, squeezing mid's window to nothing.
  const TaskId head = add("head", 4, 0, 30, p_);
  const TaskId mid = add("mid", 5, 0, 30, q_);
  const TaskId tail = add("tail", 4, 0, 12, p_);
  app_.add_edge(head, mid, 3);
  app_.add_edge(mid, tail, 3);
  const AnalysisResult res = analyze(app_);
  ASSERT_TRUE(res.infeasible(app_));

  const InfeasibilityReport report = diagnose(app_, res.windows);
  ASSERT_FALSE(report.feasible_windows);
  // The squeeze propagates along the whole chain, so several windows
  // collapse; find mid's certificate and check its chains.
  const WindowCollapse* mid_collapse = nullptr;
  for (const WindowCollapse& c : report.collapses) {
    if (c.task == mid) mid_collapse = &c;
  }
  ASSERT_NE(mid_collapse, nullptr);
  // EST chain runs head -> mid; LCT chain runs mid -> tail.
  EXPECT_EQ(mid_collapse->est_chain, (std::vector<std::string>{"head", "mid"}));
  EXPECT_EQ(mid_collapse->lct_chain, (std::vector<std::string>{"mid", "tail"}));

  const std::string prose = explain(app_, report);
  EXPECT_NE(prose.find("'mid' cannot fit"), std::string::npos);
  EXPECT_NE(prose.find("head -> mid"), std::string::npos);
  EXPECT_NE(prose.find("mid -> tail"), std::string::npos);
}

TEST_F(ExplainTest, CapacityViolationNamesIntervalAndContributors) {
  add("a", 4, 0, 4, p_);
  add("b", 4, 0, 4, p_);
  add("c", 4, 0, 4, p_);
  const AnalysisResult res = analyze(app_);
  Capacities caps(cat_.size(), 2);  // need 3
  const InfeasibilityReport report = diagnose(app_, res.windows, &caps);
  EXPECT_TRUE(report.feasible_windows);
  ASSERT_FALSE(report.feasible_capacity);
  ASSERT_EQ(report.violations.size(), 1u);
  const CapacityViolation& v = report.violations[0];
  EXPECT_EQ(v.resource, p_);
  EXPECT_EQ(v.t1, 0);
  EXPECT_EQ(v.t2, 4);
  EXPECT_EQ(v.demand, 12);
  EXPECT_EQ(v.contributions.size(), 3u);
  const std::string prose = explain(app_, report);
  EXPECT_NE(prose.find("over-committed in [0, 4]"), std::string::npos);
  EXPECT_NE(prose.find("a(4)"), std::string::npos);
}

TEST_F(ExplainTest, SufficientCapacityIsClean) {
  add("a", 4, 0, 4, p_, {r_});
  add("b", 4, 0, 4, p_, {r_});
  const AnalysisResult res = analyze(app_);
  Capacities caps(cat_.size(), 2);
  EXPECT_FALSE(diagnose(app_, res.windows, &caps).any());
  caps.set(r_, 1);
  const InfeasibilityReport report = diagnose(app_, res.windows, &caps);
  ASSERT_TRUE(report.any());
  EXPECT_EQ(report.violations[0].resource, r_);
}

TEST_F(ExplainTest, ReleaseAnchoredChainIsJustTheTask) {
  // Squeeze 'solo' via a tight successor: its EST is anchored at its own
  // release (chain of length one), its LCT at the successor's deadline.
  Application app2(cat_);
  Task t;
  t.name = "solo";
  t.comp = 6;
  t.release = 2;
  t.deadline = 20;
  t.proc = p_;
  const TaskId solo = app2.add_task(t);
  Task u;
  u.name = "after";
  u.comp = 2;
  u.deadline = 8;
  u.proc = q_;
  const TaskId after = app2.add_task(u);
  app2.add_edge(solo, after, 1);
  const AnalysisResult res = analyze(app2);
  ASSERT_TRUE(res.infeasible(app2));
  const InfeasibilityReport report = diagnose(app2, res.windows);
  const WindowCollapse* solo_collapse = nullptr;
  for (const WindowCollapse& c : report.collapses) {
    if (c.task == solo) solo_collapse = &c;
  }
  ASSERT_NE(solo_collapse, nullptr);
  EXPECT_EQ(solo_collapse->est_chain, std::vector<std::string>{"solo"});
  EXPECT_EQ(solo_collapse->lct_chain, (std::vector<std::string>{"solo", "after"}));
}

}  // namespace
}  // namespace rtlb
