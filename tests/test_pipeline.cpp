// The unified pipeline (src/core/pipeline.hpp) and its instrumentation.
//
// Three contracts are pinned here:
//  * run_pipeline() with an empty StageCache IS the cold analyze() --
//    bit-for-bit across bounds, witnesses, costs, and certificates, for
//    every config x seed of the randomized corpus (the same corpus style
//    test_session.cpp drives), and regardless of whether a Trace is
//    attached (instrumentation must never perturb computed values);
//  * emitted traces obey the schema: one "pipeline" root, every stage
//    spanned exactly once in execution order, children nested inside their
//    parent's envelope and summing to (at most) the pipeline wall time;
//  * the lint-gate refusal policies, the bound_for index, and the per-stage
//    SessionStats counters behave as documented.
#include <gtest/gtest.h>

#include <set>
#include <string>

#include "src/core/pipeline.hpp"
#include "src/core/report.hpp"
#include "src/core/session.hpp"
#include "src/obs/trace.hpp"
#include "src/verify/certificate.hpp"
#include "src/workload/paper_example.hpp"
#include "src/workload/taskset_gen.hpp"

namespace rtlb {
namespace {

struct Config {
  SystemModel model;
  bool platform;
  bool joint;
  bool pruning;
};

const Config kConfigs[] = {
    {SystemModel::Shared, false, false, false},
    {SystemModel::Shared, true, true, true},
    {SystemModel::Dedicated, true, false, false},
};

ProblemInstance corpus_instance(std::uint64_t seed) {
  WorkloadParams params;
  params.seed = seed * 17;
  params.num_tasks = 14;
  params.laxity = 1.6;
  params.resource_prob = 0.5;
  params.preemptive_prob = 0.3;
  return generate_workload(params);
}

void expect_bit_identical(const Application& app, const AnalysisResult& got,
                          const AnalysisResult& want, const std::string& context) {
  EXPECT_EQ(report_string(app, got), report_string(app, want)) << context;
  ASSERT_EQ(got.joint.size(), want.joint.size()) << context;
  for (std::size_t i = 0; i < got.joint.size(); ++i) {
    EXPECT_EQ(got.joint[i].a, want.joint[i].a) << context;
    EXPECT_EQ(got.joint[i].b, want.joint[i].b) << context;
    EXPECT_EQ(got.joint[i].bound, want.joint[i].bound) << context;
    EXPECT_EQ(got.joint[i].witness_t1, want.joint[i].witness_t1) << context;
    EXPECT_EQ(got.joint[i].witness_t2, want.joint[i].witness_t2) << context;
  }
  ASSERT_EQ(got.certificate.has_value(), want.certificate.has_value()) << context;
  if (got.certificate) {
    EXPECT_EQ(certificate_json(*got.certificate).dump(2),
              certificate_json(*want.certificate).dump(2))
        << context;
  }
}

TEST(PipelineProperty, ColdPipelineMatchesAnalyzeBitForBit) {
  for (const Config& cfg : kConfigs) {
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
      ProblemInstance inst = corpus_instance(seed);
      AnalysisOptions options;
      options.model = cfg.model;
      options.joint_bounds = cfg.joint;
      options.lower_bound.enable_pruning = cfg.pruning;
      options.emit_certificates = true;
      options.check_certificates = true;
      const DedicatedPlatform* platform = cfg.platform ? &inst.platform : nullptr;

      const std::string context = "model " + std::to_string(static_cast<int>(cfg.model)) +
                                  " seed " + std::to_string(seed);
      const AnalysisResult via_analyze = analyze(*inst.app, options, platform);
      const AnalysisResult via_pipeline = run_pipeline(*inst.app, options, platform);
      expect_bit_identical(*inst.app, via_pipeline, via_analyze, context);
      ASSERT_TRUE(via_pipeline.certificate_check) << context;
      EXPECT_TRUE(via_pipeline.certificate_check->valid) << context;
    }
  }
}

TEST(PipelineProperty, TracedRunIsBitIdenticalToUntraced) {
  for (const Config& cfg : kConfigs) {
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
      ProblemInstance inst = corpus_instance(seed);
      AnalysisOptions options;
      options.model = cfg.model;
      options.joint_bounds = cfg.joint;
      options.lower_bound.enable_pruning = cfg.pruning;
      options.emit_certificates = true;
      const DedicatedPlatform* platform = cfg.platform ? &inst.platform : nullptr;

      const AnalysisResult plain = run_pipeline(*inst.app, options, platform);
      Trace trace;
      AnalysisOptions traced = options;
      traced.trace = &trace;
      const AnalysisResult instrumented = run_pipeline(*inst.app, traced, platform);
      expect_bit_identical(*inst.app, instrumented, plain,
                           "seed " + std::to_string(seed));
      EXPECT_EQ(trace.open_depth(), 0u);
    }
  }
}

TEST(TraceSchema, SpansNestAndSumToPipelineWallTime) {
  ProblemInstance inst = paper_example();
  Trace trace;
  AnalysisOptions options;
  options.model = SystemModel::Dedicated;
  options.emit_certificates = true;
  options.check_certificates = true;
  options.trace = &trace;
  run_pipeline(*inst.app, options, &inst.platform);

  const std::vector<TraceSpan>& spans = trace.spans();
  ASSERT_FALSE(spans.empty());
  EXPECT_EQ(trace.open_depth(), 0u);

  // Exactly one root, named "pipeline".
  ASSERT_EQ(spans[0].name, "pipeline");
  ASSERT_EQ(spans[0].parent, -1);
  for (std::size_t i = 1; i < spans.size(); ++i) {
    EXPECT_GE(spans[i].parent, 0) << spans[i].name;
  }

  // Every stage appears exactly once, as a direct child, in Stage order.
  std::vector<std::string> children;
  std::uint64_t child_sum = 0;
  std::uint64_t prev_end = 0;
  for (std::size_t i = 1; i < spans.size(); ++i) {
    if (spans[i].parent != 0) continue;
    children.push_back(spans[i].name);
    child_sum += spans[i].dur_ns;
    // Children nest inside the root's envelope and never overlap each
    // other (the pipeline runs stages sequentially on one thread).
    EXPECT_GE(spans[i].start_ns, spans[0].start_ns) << spans[i].name;
    EXPECT_LE(spans[i].start_ns + spans[i].dur_ns, spans[0].start_ns + spans[0].dur_ns)
        << spans[i].name;
    EXPECT_GE(spans[i].start_ns, prev_end) << spans[i].name;
    prev_end = spans[i].start_ns + spans[i].dur_ns;
  }
  ASSERT_EQ(children.size(), static_cast<std::size_t>(kNumStages) + 1);
  for (int s = 0; s < kNumStages; ++s) {
    EXPECT_EQ(children[static_cast<std::size_t>(s)], stage_name(static_cast<Stage>(s)));
  }
  EXPECT_EQ(children.back(), "certificates");
  // Sequential non-overlapping children cannot exceed the root's wall time.
  EXPECT_LE(child_sum, spans[0].dur_ns);

  // Exported forms preserve the envelope in integer microseconds.
  const Json chrome = trace.chrome_json();
  const Json* events = chrome.find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  const Json& root_ev = events->at(0);
  const std::int64_t root_ts = root_ev.find("ts")->as_int();
  const std::int64_t root_end = root_ts + root_ev.find("dur")->as_int();
  std::set<std::string> names;
  for (std::size_t i = 0; i < events->size(); ++i) {
    const Json& ev = events->at(i);
    EXPECT_EQ(ev.find("ph")->as_string(), "X");
    const std::int64_t ts = ev.find("ts")->as_int();
    EXPECT_GE(ts, root_ts);
    EXPECT_LE(ts + ev.find("dur")->as_int(), root_end);
    names.insert(ev.find("name")->as_string());
  }
  for (const char* stage : stage_names()) {
    EXPECT_TRUE(names.contains(stage)) << stage;
  }
}

TEST(TraceSchema, StageNamesAreExhaustiveAndStable) {
  ASSERT_EQ(stage_names().size(), static_cast<std::size_t>(kNumStages));
  EXPECT_STREQ(stage_name(Stage::kLintGate), "lint_gate");
  EXPECT_STREQ(stage_name(Stage::kWindows), "windows");
  EXPECT_STREQ(stage_name(Stage::kPartitions), "partitions");
  EXPECT_STREQ(stage_name(Stage::kBounds), "bounds");
  EXPECT_STREQ(stage_name(Stage::kCosts), "costs");
}

TEST(TraceSchema, CountersAccumulateAndClearPreservesEpoch) {
  Trace trace;
  {
    ScopedSpan outer(&trace, "outer");
    outer.count("work", 2);
    outer.count("work", 3);
    {
      ScopedSpan inner(&trace, "inner");
      inner.count("work", 7);
    }
  }
  ASSERT_EQ(trace.spans().size(), 2u);
  const TraceSpan& outer = trace.spans()[0];
  const TraceSpan& inner = trace.spans()[1];
  EXPECT_EQ(inner.parent, 0);
  ASSERT_EQ(outer.counters.size(), 1u);
  EXPECT_EQ(outer.counters[0].value, 5);  // same-name counters merge
  ASSERT_EQ(inner.counters.size(), 1u);
  EXPECT_EQ(inner.counters[0].value, 7);

  const std::uint64_t first_start = outer.start_ns;
  trace.clear();
  EXPECT_TRUE(trace.spans().empty());
  {
    ScopedSpan later(&trace, "later");
  }
  // Same clock: a span recorded after clear() starts no earlier than one
  // recorded before it.
  EXPECT_GE(trace.spans()[0].start_ns, first_start);
}

TEST(LintGate, RefusalPoliciesMatchTheDocumentedSets) {
  auto error = [](const char* code) {
    LintResult r;
    Diagnostic d;
    d.code = code;
    d.severity = Severity::kError;
    r.diagnostics.push_back(std::move(d));
    r.errors = 1;
    return r;
  };
  LintResult warning_only;
  {
    Diagnostic d;
    d.code = "RTLB-W201";
    d.severity = Severity::kWarning;
    warning_only.diagnostics.push_back(std::move(d));
    warning_only.warnings = 1;
  }
  const LintResult structural = error("RTLB-E001");
  const LintResult semantic = error("RTLB-E101");

  // kOff never refuses here: validate() owns structural safety on that path.
  EXPECT_FALSE(lint_gate_refuses(structural, LintLevel::kOff));
  // kReport refuses exactly the validate() set: structural RTLB-E0xx.
  EXPECT_TRUE(lint_gate_refuses(structural, LintLevel::kReport));
  EXPECT_FALSE(lint_gate_refuses(semantic, LintLevel::kReport));
  EXPECT_FALSE(lint_gate_refuses(warning_only, LintLevel::kReport));
  // kErrors refuses any error-severity finding; warnings pass.
  EXPECT_TRUE(lint_gate_refuses(semantic, LintLevel::kErrors));
  EXPECT_FALSE(lint_gate_refuses(warning_only, LintLevel::kErrors));
  // kWarnings refuses warnings too.
  EXPECT_TRUE(lint_gate_refuses(warning_only, LintLevel::kWarnings));
  EXPECT_FALSE(lint_gate_refuses(LintResult{}, LintLevel::kWarnings));
}

TEST(BoundIndex, BinarySearchMatchesLinearScanIncludingMisses) {
  ProblemInstance inst = corpus_instance(2);
  const AnalysisResult result = analyze(*inst.app);
  ASSERT_EQ(result.bound_index.size(), result.bounds.size());
  std::set<ResourceId> present;
  for (const ResourceBound& b : result.bounds) {
    present.insert(b.resource);
    const auto found = result.bound_for(b.resource);
    ASSERT_TRUE(found.has_value());
    EXPECT_EQ(*found, b.bound);
  }
  // A resource id outside the bound rows resolves to nullopt, not garbage.
  ResourceId absent = 0;
  while (present.contains(absent)) ++absent;
  EXPECT_FALSE(result.bound_for(absent).has_value());

  // Hand-assembled results (never produced by the pipeline) carry no index
  // and must fall back to the scan.
  AnalysisResult manual;
  ResourceBound row;
  row.resource = 3;
  row.bound = 42;
  manual.bounds.push_back(row);
  ASSERT_TRUE(manual.bound_index.empty());
  const auto fallback = manual.bound_for(3);
  ASSERT_TRUE(fallback.has_value());
  EXPECT_EQ(*fallback, 42);
  EXPECT_FALSE(manual.bound_for(4).has_value());
}

TEST(SessionStats, PerStageCountersSurfaceInJsonAndStayConsistent) {
  ProblemInstance inst = corpus_instance(1);
  AnalysisOptions options;
  options.joint_bounds = true;
  AnalysisSession session(*inst.app, options, &inst.platform);
  session.set_verify(true);

  session.analyze();                     // cold miss everywhere
  session.analyze();                     // pure query hit
  const Task& t0 = session.app().task(0);
  session.set_deadline(0, t0.deadline + 1);  // windows delta
  session.analyze();

  const SessionStats stats = session.stats();
  EXPECT_EQ(stats.queries, 3u);
  EXPECT_EQ(stats.query_hits, 1u);
  // Each non-hit query ran the gate once and decided each stage once.
  EXPECT_EQ(stats.gate_runs, stats.queries - stats.query_hits);
  EXPECT_EQ(stats.window_hits + stats.window_misses, stats.queries - stats.query_hits);
  EXPECT_EQ(stats.partition_hits + stats.partition_misses,
            stats.queries - stats.query_hits);
  EXPECT_EQ(stats.bound_hits + stats.bound_misses, stats.queries - stats.query_hits);
  EXPECT_EQ(stats.joint_hits + stats.joint_misses, stats.queries - stats.query_hits);
  EXPECT_EQ(stats.cost_hits + stats.cost_misses, stats.queries - stats.query_hits);
  EXPECT_EQ(stats.verified, stats.queries - stats.query_hits);

  const Json json = session_stats_json(stats);
  for (const char* key :
       {"queries", "query_hits", "gate_runs", "lint_pass_hits", "lint_pass_misses",
        "window_hits", "window_misses",
        "partition_hits", "partition_misses", "bound_hits", "bound_misses",
        "block_hits", "block_misses", "joint_hits", "joint_misses", "cost_hits",
        "cost_misses", "verified"}) {
    EXPECT_NE(json.find(key), nullptr) << key;
  }
  EXPECT_EQ(json.find("gate_runs")->as_int(), static_cast<std::int64_t>(stats.gate_runs));
}

TEST(SessionStats, IncrementalLintServesCleanPassSlicesBitIdentically) {
  ProblemInstance inst = corpus_instance(1);
  AnalysisOptions options;
  options.lint_level = LintLevel::kReport;
  AnalysisSession session(*inst.app, options, &inst.platform);
  session.set_verify(true);

  session.analyze();  // cold gate run: every pass misses
  const SessionStats cold = session.stats();
  EXPECT_EQ(cold.lint_pass_hits, 0u);
  const std::uint64_t num_passes = cold.lint_pass_misses;
  EXPECT_GT(num_passes, 0u);

  // A timing delta leaves the platform-coverage pass's inputs untouched, so
  // the second gate run serves at least that slice from the cache...
  session.set_deadline(0, session.app().task(0).deadline + 1);
  const AnalysisResult& delta = session.analyze();
  ASSERT_TRUE(delta.lint.has_value());
  const SessionStats warm = session.stats();
  EXPECT_GT(warm.lint_pass_hits, 0u);
  // ...and every gate run still decides each registered pass exactly once.
  EXPECT_EQ(warm.lint_pass_hits + warm.lint_pass_misses,
            num_passes * (warm.queries - warm.query_hits));
  EXPECT_EQ(warm.gate_runs, warm.queries - warm.query_hits);

  // The assembled result is bit-identical to a cold lint of the mutated
  // model (same JSON dump, fixes and all).
  const LintResult fresh = lint(session.app(), session.platform());
  EXPECT_EQ(lint_json(*delta.lint).dump(), lint_json(fresh).dump());
}

TEST(SessionStats, WarmReplayHitsEveryStageAfterNoOpRecompute) {
  // A deadline delta that recomputes value-identical windows must replay
  // partitions, bounds, joint rows, and the ILP -- visible per stage.
  ProblemInstance inst = paper_example();
  AnalysisOptions options;
  options.model = SystemModel::Dedicated;
  options.joint_bounds = true;
  AnalysisSession session(*inst.app, options, &inst.platform);
  session.set_verify(true);
  session.analyze();

  // Wiggle a deadline away and back: the second query recomputes windows
  // (the flag is dirty) but lands on the original values.
  const Time original = session.app().task(0).deadline;
  session.set_deadline(0, original + 5);
  session.analyze();
  session.set_deadline(0, original);
  session.analyze();

  const SessionStats stats = session.stats();
  EXPECT_EQ(stats.queries, 3u);
  EXPECT_EQ(stats.window_misses, 3u);  // every query recomputed windows
  // The return to the original deadline replayed everything downstream.
  EXPECT_GE(stats.partition_hits, 1u);
  EXPECT_GE(stats.bound_hits, 1u);
  EXPECT_GE(stats.joint_hits, 1u);
  EXPECT_GE(stats.cost_hits, 1u);
}

}  // namespace
}  // namespace rtlb
