#include <gtest/gtest.h>

#include "src/core/analysis.hpp"
#include "src/core/joint_bound.hpp"
#include "src/sched/optimal.hpp"
#include "src/synth/synthesis.hpp"
#include "src/workload/paper_example.hpp"

namespace rtlb {
namespace {

class JointBoundTest : public ::testing::Test {
 protected:
  JointBoundTest() : app_(cat_) {
    p_ = cat_.add_processor_type("P", 4);
    a_ = cat_.add_resource("a", 2);
    b_ = cat_.add_resource("b", 2);
  }

  TaskId add(std::vector<ResourceId> res, Time comp = 4, Time deadline = 4) {
    Task t;
    t.name = "t" + std::to_string(app_.num_tasks());
    t.comp = comp;
    t.deadline = deadline;
    t.proc = p_;
    t.resources = std::move(res);
    return app_.add_task(std::move(t));
  }

  ResourceCatalog cat_;
  Application app_;
  ResourceId p_, a_, b_;
};

TEST_F(JointBoundTest, PairBoundCountsConjunctiveDemand) {
  add({a_, b_});
  add({a_, b_});
  add({a_});  // uses a only: not in ST_{a AND b}
  SharedMergeOracle oracle;
  const TaskWindows w = compute_windows(app_, oracle);
  const auto joint = joint_lower_bounds(app_, w);
  // Pairs present: (P, a), (P, b), (a, b).
  ASSERT_EQ(joint.size(), 3u);
  for (const JointBound& jb : joint) {
    if (jb.a == a_ && jb.b == b_) {
      EXPECT_EQ(jb.bound, 2);  // two {a,b}-tasks fill [0,4] completely
    }
    if (jb.a == p_ && jb.b == a_) {
      EXPECT_EQ(jb.bound, 3);  // all three fill [0,4]
    }
  }
}

TEST_F(JointBoundTest, NoSharedTasksNoPair) {
  add({a_});
  add({b_});
  SharedMergeOracle oracle;
  const TaskWindows w = compute_windows(app_, oracle);
  for (const JointBound& jb : joint_lower_bounds(app_, w)) {
    EXPECT_FALSE(jb.a == a_ && jb.b == b_);  // (a, b) never used together
  }
}

TEST_F(JointBoundTest, StrengthensTheSplitSupplyMenu) {
  // The motivating case: two concurrent {a, b}-tasks; the menu offers
  // {P,a} (6), {P,b} (6), {P,a,b} (9). Per-resource rows are satisfied by
  // one node of each single-resource type plus one combo node, but only
  // combo nodes can actually run the pair tasks -- the joint row forces a
  // second combo node.
  add({a_, b_});
  add({a_, b_});
  DedicatedPlatform plat;
  plat.add_node_type(NodeType{"Pa", p_, {{a_, 1}}, 6});
  plat.add_node_type(NodeType{"Pb", p_, {{b_, 1}}, 6});
  plat.add_node_type(NodeType{"Pab", p_, {{a_, 1}, {b_, 1}}, 9});

  SharedMergeOracle oracle;
  const TaskWindows w = compute_windows(app_, oracle);
  const auto bounds = all_resource_bounds(app_, w);
  const auto joint = joint_lower_bounds(app_, w);

  const DedicatedCostBound plain = dedicated_cost_bound(app_, plat, bounds);
  const DedicatedCostBound strong = dedicated_cost_bound_joint(app_, plat, bounds, joint);
  ASSERT_TRUE(plain.feasible);
  ASSERT_TRUE(strong.feasible);
  // Plain: LB_a = 2, LB_b = 2, LB_P = 2, hosting >= 1 combo; optimum is one
  // of each type? a: x_Pa + x_Pab >= 2, b: x_Pb + x_Pab >= 2, host: x_Pab
  // >= 1 -> (1,1,1) at 21 or (0,0,2) at 18; the ILP picks 18 here, which
  // happens to equal the joint optimum -- so sharpen the prices to expose
  // the gap: see StrengthensWithCheapCombo below. At these prices both
  // formulations already agree:
  EXPECT_LE(plain.total, strong.total);
  // The joint bound itself is exactly 2 combo nodes: cost 18.
  EXPECT_EQ(strong.total, 18);
}

TEST_F(JointBoundTest, StrengthensWithCheapSingles) {
  // Same tasks, but singles are dirt cheap: the per-resource program buys
  // cheap singles and ONE combo (hosting), underestimating the cost; the
  // joint row corrects it.
  add({a_, b_});
  add({a_, b_});
  DedicatedPlatform plat;
  plat.add_node_type(NodeType{"Pa", p_, {{a_, 1}}, 1});
  plat.add_node_type(NodeType{"Pb", p_, {{b_, 1}}, 1});
  plat.add_node_type(NodeType{"Pab", p_, {{a_, 1}, {b_, 1}}, 10});

  SharedMergeOracle oracle;
  const TaskWindows w = compute_windows(app_, oracle);
  const auto bounds = all_resource_bounds(app_, w);
  const auto joint = joint_lower_bounds(app_, w);

  const DedicatedCostBound plain = dedicated_cost_bound(app_, plat, bounds);
  const DedicatedCostBound strong = dedicated_cost_bound_joint(app_, plat, bounds, joint);
  ASSERT_TRUE(plain.feasible);
  ASSERT_TRUE(strong.feasible);
  EXPECT_EQ(plain.total, 12);   // 1x Pa + 1x Pb + 1x Pab: legal for the rows,
                                // impossible in reality
  EXPECT_EQ(strong.total, 20);  // 2x Pab: what any feasible machine needs
  EXPECT_GT(strong.total, plain.total);

  // Ground truth: the plain bound's machine really is infeasible, and the
  // joint bound's machine really is feasible -- certified by exhaustive
  // search.
  SearchLimits limits;
  limits.max_window = 16;
  DedicatedConfig cheap;  // 1x Pa, 1x Pb, 1x Pab
  cheap.instance_types = {0, 1, 2};
  EXPECT_FALSE(exists_feasible_schedule_dedicated(app_, plat, cheap, limits));
  DedicatedConfig combo2;  // 2x Pab
  combo2.instance_types = {2, 2};
  EXPECT_TRUE(exists_feasible_schedule_dedicated(app_, plat, combo2, limits));
}

TEST_F(JointBoundTest, JointNeverBelowPlain) {
  // More constraints can only raise the ILP optimum (and never break
  // feasibility of the true system).
  add({a_, b_});
  add({a_});
  add({b_}, 3, 9);
  DedicatedPlatform plat;
  plat.add_node_type(NodeType{"Pa", p_, {{a_, 1}}, 5});
  plat.add_node_type(NodeType{"Pb", p_, {{b_, 1}}, 5});
  plat.add_node_type(NodeType{"Pab", p_, {{a_, 1}, {b_, 1}}, 8});
  SharedMergeOracle oracle;
  const TaskWindows w = compute_windows(app_, oracle);
  const auto bounds = all_resource_bounds(app_, w);
  const auto joint = joint_lower_bounds(app_, w);
  const DedicatedCostBound plain = dedicated_cost_bound(app_, plat, bounds);
  const DedicatedCostBound strong = dedicated_cost_bound_joint(app_, plat, bounds, joint);
  ASSERT_TRUE(plain.feasible);
  ASSERT_TRUE(strong.feasible);
  EXPECT_GE(strong.total, plain.total);
}

TEST_F(JointBoundTest, AnalyzeFlagWiresTheExtension) {
  add({a_, b_});
  add({a_, b_});
  DedicatedPlatform plat;
  plat.add_node_type(NodeType{"Pa", p_, {{a_, 1}}, 1});
  plat.add_node_type(NodeType{"Pb", p_, {{b_, 1}}, 1});
  plat.add_node_type(NodeType{"Pab", p_, {{a_, 1}, {b_, 1}}, 10});

  AnalysisOptions plain_opts;
  plain_opts.model = SystemModel::Dedicated;
  AnalysisOptions joint_opts = plain_opts;
  joint_opts.joint_bounds = true;

  const AnalysisResult plain = analyze(app_, plain_opts, &plat);
  const AnalysisResult strong = analyze(app_, joint_opts, &plat);
  EXPECT_TRUE(plain.joint.empty());
  EXPECT_FALSE(strong.joint.empty());
  ASSERT_TRUE(plain.dedicated_cost->feasible);
  ASSERT_TRUE(strong.dedicated_cost->feasible);
  EXPECT_EQ(plain.dedicated_cost->total, 12);
  EXPECT_EQ(strong.dedicated_cost->total, 20);
}

TEST(JointBoundPaper, PaperExampleUnchangedByJointRows) {
  // In the paper's example every r1-task runs on P1 and only one node type
  // carries r1, so the pair rows are implied: x = (2,1,2) must survive.
  ProblemInstance inst = paper_example();
  AnalysisOptions opts;
  opts.model = SystemModel::Dedicated;
  const AnalysisResult res = analyze(*inst.app, opts, &inst.platform);
  const auto joint = joint_lower_bounds(*inst.app, res.windows);
  const DedicatedCostBound strong =
      dedicated_cost_bound_joint(*inst.app, inst.platform, res.bounds, joint);
  ASSERT_TRUE(strong.feasible);
  EXPECT_EQ(strong.total, res.dedicated_cost->total);
  EXPECT_EQ(strong.node_counts, res.dedicated_cost->node_counts);
}

}  // namespace
}  // namespace rtlb
