// The audit subsystem's contract tests:
//
//  1. HEAD is clean: auditing the real src/ tree against the committed
//     manifest yields no finding outside the committed audit.baseline.
//  2. The planted corpus under tests/audit/bad/ is flagged at EXACT
//     file:line positions -- one tuple per planted violation.
//  3. Every manifest rule is load-bearing: deleting any single rule loses
//     at least one corpus finding.
//  4. Inline `audit-ok` suppressions are honoured only with a reason.
//  5. One-line breaks trip the named invariants: giving the checker a core/
//     include trips RTLB-A002, writing a shared capture without a slot at a
//     parallel_for site trips RTLB-A201.
//  6. Scanner/manifest/baseline plumbing edge cases.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "src/audit/audit.hpp"
#include "src/audit/manifest.hpp"
#include "src/audit/registry.hpp"
#include "src/audit/rules.hpp"
#include "src/audit/source.hpp"
#include "src/common/types.hpp"
#include "src/lint/baseline.hpp"

namespace rtlb::audit {
namespace {

const std::string kRepoRoot = RTLB_SOURCE_DIR;
const std::string kCorpusRoot = kRepoRoot + "/tests/audit/bad";

const Manifest& repo_manifest() {
  static const Manifest m = load_manifest_file(kRepoRoot + "/audit/rules.json");
  return m;
}

std::string dump(const Result& r) { return format_audit_text(r, /*quiet_hints=*/true); }

// -- 1. HEAD cleanliness ----------------------------------------------------

TEST(AuditHead, RepoIsCleanModuloCommittedBaseline) {
  Result result = run_audit(repo_manifest(), kRepoRoot);
  apply_baseline(result, read_baseline_file(kRepoRoot + "/audit.baseline"));
  EXPECT_EQ(result.new_findings(), 0) << dump(result);
  EXPECT_GT(result.files_scanned, 100);
}

TEST(AuditHead, EveryBaselineEntryIsLive) {
  // A baseline key no finding matches is stale and must be deleted.
  const std::set<std::string> baseline =
      read_baseline_file(kRepoRoot + "/audit.baseline");
  Result result = run_audit(repo_manifest(), kRepoRoot);
  std::set<std::string> live;
  for (const Finding& f : result.findings) live.insert(baseline_key(f));
  for (const std::string& key : baseline) {
    EXPECT_TRUE(live.count(key) > 0) << "stale baseline entry: " << key;
  }
}

// -- 2. exact file:line corpus ----------------------------------------------

struct Planted {
  const char* file;
  int line;
  const char* code;
};

// One tuple per planted violation in tests/audit/bad/. Keep in sync with the
// corpus files (each is headed "do not renumber lines").
const std::vector<Planted>& planted() {
  static const std::vector<Planted> kPlanted{
      {"src/core/bad_determinism.cpp", 14, "RTLB-A101"},
      {"src/core/bad_determinism.cpp", 17, "RTLB-A101"},
      {"src/core/bad_determinism.cpp", 24, "RTLB-A102"},
      {"src/core/bad_determinism.cpp", 26, "RTLB-A102"},
      {"src/core/bad_determinism.cpp", 30, "RTLB-A103"},
      {"src/core/bad_parallel.cpp", 15, "RTLB-A201"},
      {"src/core/bad_parallel.cpp", 16, "RTLB-A201"},
      {"src/core/lower_bound.cpp", 8, "RTLB-A104"},
      {"src/core/lower_bound.cpp", 10, "RTLB-A301"},
      {"src/core/lower_bound.cpp", 13, "RTLB-A302"},
      {"src/core/lower_bound.cpp", 16, "RTLB-A302"},  // reason-less audit-ok
      {"src/fleet/bad_reach.cpp", 8, "RTLB-A001"},
      {"src/fleet/bad_reach.cpp", 9, "RTLB-A001"},
      {"src/verify/checker.cpp", 9, "RTLB-A001"},
      {"src/verify/checker.cpp", 9, "RTLB-A002"},
  };
  return kPlanted;
}

std::vector<Planted> as_tuples(const Result& r) {
  std::vector<Planted> got;
  for (const Finding& f : r.findings) {
    got.push_back({f.file.c_str(), f.diag.line, f.diag.code.c_str()});
  }
  return got;
}

TEST(AuditCorpus, EveryPlantedViolationFlaggedAtExactLine) {
  const Result result = run_audit(repo_manifest(), kCorpusRoot);
  ASSERT_EQ(result.findings.size(), planted().size()) << dump(result);
  const std::vector<Planted> got = as_tuples(result);
  for (std::size_t i = 0; i < planted().size(); ++i) {
    EXPECT_STREQ(got[i].file, planted()[i].file);
    EXPECT_EQ(got[i].line, planted()[i].line) << planted()[i].file;
    EXPECT_STREQ(got[i].code, planted()[i].code) << planted()[i].file;
  }
  // The reasoned audit-ok in the corpus was honoured (and counted).
  EXPECT_EQ(result.suppressed, 1);
}

TEST(AuditCorpus, EveryAuditCodeIsExercisedByTheCorpus) {
  const Result result = run_audit(repo_manifest(), kCorpusRoot);
  std::set<std::string> seen;
  for (const Finding& f : result.findings) seen.insert(f.diag.code);
  seen.insert("RTLB-A302");  // also via the suppression test above
  for (const DiagInfo& info : all_audit_info()) {
    EXPECT_TRUE(seen.count(info.code) > 0) << info.code << " never fires on the corpus";
  }
}

// -- 3. every rule is load-bearing ------------------------------------------

TEST(AuditManifest, DeletingAnyRuleLosesACorpusFinding) {
  const Result full = run_audit(repo_manifest(), kCorpusRoot);
  for (std::size_t drop = 0; drop < repo_manifest().rules.size(); ++drop) {
    Manifest pruned = repo_manifest();
    const std::string code = pruned.rules[drop].code;
    pruned.rules.erase(pruned.rules.begin() + static_cast<std::ptrdiff_t>(drop));
    const Result r = run_audit(pruned, kCorpusRoot);
    EXPECT_LT(r.findings.size(), full.findings.size())
        << "rule " << code << " flags nothing in the corpus: it is not load-bearing";
    for (const Finding& f : r.findings) EXPECT_NE(f.diag.code, code);
  }
}

// -- 4./5. one-line breaks and suppressions, on synthetic sources -----------

Result audit_snippet(const std::string& path, const std::string& text) {
  // Route a single in-memory file through the rule engine exactly as the
  // driver would, via a temp-free in-process scan.
  const SourceFile src = scan_source(path, text);
  LintResult batch;
  DiagnosticSink sink(batch, LintOptions{}, all_audit_info());
  for (const Rule& rule : repo_manifest().rules) run_rule(rule, src, sink);
  Result out;
  out.files_scanned = 1;
  for (Diagnostic& d : batch.diagnostics) {
    if (src.suppressed(d.code, d.line)) {
      ++out.suppressed;
      continue;
    }
    out.findings.push_back({path, std::move(d), false});
  }
  return out;
}

std::set<std::string> codes_of(const Result& r) {
  std::set<std::string> codes;
  for (const Finding& f : r.findings) codes.insert(f.diag.code);
  return codes;
}

TEST(AuditBreaks, CheckerGainingACoreIncludeTripsA002) {
  // The real checker.cpp is clean today; one added include line breaks the
  // independence contract and must trip the NAMED code.
  const Result clean = audit_snippet("src/verify/checker.cpp",
                                     "#include \"src/verify/checker.hpp\"\n");
  EXPECT_TRUE(clean.findings.empty()) << dump(clean);
  const Result broken =
      audit_snippet("src/verify/checker.cpp",
                    "#include \"src/verify/checker.hpp\"\n"
                    "#include \"src/core/lower_bound.hpp\"\n");
  EXPECT_TRUE(codes_of(broken).count("RTLB-A002") > 0) << dump(broken);
  EXPECT_EQ(broken.findings[0].diag.line, 2);
}

TEST(AuditBreaks, EmitStaysAGatewayButOtherVerifyFilesDoNot) {
  // emit.cpp reaching core/ is a declared gateway: no finding. The same
  // include from certificate.cpp trips both layering and independence.
  const Result gateway = audit_snippet("src/verify/emit.cpp",
                                       "#include \"src/core/overlap.hpp\"\n");
  EXPECT_TRUE(gateway.findings.empty()) << dump(gateway);
  const Result broken = audit_snippet("src/verify/certificate.cpp",
                                      "#include \"src/core/overlap.hpp\"\n");
  EXPECT_EQ(codes_of(broken), (std::set<std::string>{"RTLB-A001", "RTLB-A002"}));
}

TEST(AuditBreaks, SharedCaptureWriteAtParallelForSiteTripsA201) {
  const std::string slot_discipline =
      "void scan(ThreadPool& pool, std::vector<Time>& results) {\n"
      "  pool.parallel_for(results.size(), [&](std::size_t i) {\n"
      "    results[i] = Time{0};\n"
      "  });\n"
      "}\n";
  const Result clean = audit_snippet("src/core/scan.cpp", slot_discipline);
  EXPECT_TRUE(clean.findings.empty()) << dump(clean);

  // The one-line break: accumulate into the shared total instead.
  const std::string racy =
      "void scan(ThreadPool& pool, std::vector<Time>& results, Time& total) {\n"
      "  pool.parallel_for(results.size(), [&](std::size_t i) {\n"
      "    total = total + results[i];\n"
      "  });\n"
      "}\n";
  const Result broken = audit_snippet("src/core/scan.cpp", racy);
  ASSERT_EQ(broken.findings.size(), 1u) << dump(broken);
  EXPECT_EQ(broken.findings[0].diag.code, "RTLB-A201");
  EXPECT_EQ(broken.findings[0].diag.line, 3);
}

TEST(AuditBreaks, NamedLambdaCallablesAreResolved) {
  // The run_one idiom: the callable is named, defined earlier in the file.
  const std::string text =
      "void scan(ThreadPool& pool, std::vector<Time>& results, Time& total) {\n"
      "  auto run_one = [&](std::size_t i) { total += results[i]; };\n"
      "  pool.parallel_for(results.size(), run_one);\n"
      "}\n";
  const Result broken = audit_snippet("src/core/scan.cpp", text);
  ASSERT_EQ(broken.findings.size(), 1u) << dump(broken);
  EXPECT_EQ(broken.findings[0].diag.code, "RTLB-A201");
  EXPECT_EQ(broken.findings[0].diag.line, 2);
}

TEST(AuditSuppression, ReasonedAuditOkIsHonoured) {
  const std::string text =
      "Time f(Time a) {\n"
      "  Time sum = 0;\n"
      "  // audit-ok: RTLB-A302 bounded: single term\n"
      "  sum += a;\n"
      "  return sum;\n"
      "}\n";
  const Result r = audit_snippet("src/core/lower_bound.cpp", text);
  EXPECT_TRUE(r.findings.empty()) << dump(r);
  EXPECT_EQ(r.suppressed, 1);
}

TEST(AuditSuppression, ReasonlessAuditOkIsIgnored) {
  const std::string text =
      "Time f(Time a) {\n"
      "  Time sum = 0;\n"
      "  sum += a;  // audit-ok: RTLB-A302\n"
      "  return sum;\n"
      "}\n";
  const Result r = audit_snippet("src/core/lower_bound.cpp", text);
  ASSERT_EQ(r.findings.size(), 1u);
  EXPECT_EQ(r.findings[0].diag.code, "RTLB-A302");
  EXPECT_EQ(r.suppressed, 0);
}

TEST(AuditSuppression, WrongCodeDoesNotSuppress) {
  const std::string text =
      "Time f(Time a) {\n"
      "  Time sum = 0;\n"
      "  // audit-ok: RTLB-A301 wrong code for this finding\n"
      "  sum += a;\n"
      "  return sum;\n"
      "}\n";
  const Result r = audit_snippet("src/core/lower_bound.cpp", text);
  ASSERT_EQ(r.findings.size(), 1u);
  EXPECT_EQ(r.findings[0].diag.code, "RTLB-A302");
}

// -- 6. plumbing ------------------------------------------------------------

TEST(AuditScanner, TokenizerStripsCommentsStringsAndFindsIncludes) {
  const SourceFile src = scan_source(
      "src/core/x.cpp",
      "// comment with rand()\n"
      "/* block\n rand() */\n"
      "const char* s = \"rand()\";\n"
      "#include \"src/model/application.hpp\"\n"
      "#include <vector>\n");
  for (const Token& t : src.tokens) EXPECT_NE(t.text, "rand");
  ASSERT_EQ(src.includes.size(), 1u);
  EXPECT_EQ(src.includes[0].target, "src/model/application.hpp");
  EXPECT_EQ(src.includes[0].target_module, "model");
  EXPECT_EQ(src.includes[0].line, 5);  // the block comment spans lines 2-3
  EXPECT_EQ(src.module, "core");
  EXPECT_EQ(module_of("tools/rtlb_audit.cpp"), "");
}

TEST(AuditManifest, RejectsCyclicDagUnknownKindAndReasonlessGateway) {
  const std::string cyclic = R"({"version": 1, "rules": [{
    "code": "RTLB-A001", "kind": "layering",
    "modules": {"a": ["b"], "b": ["a"]}}]})";
  EXPECT_THROW(parse_manifest(Json::parse(cyclic)), ModelError);

  const std::string unknown_kind = R"({"version": 1, "rules": [{
    "code": "RTLB-A001", "kind": "telepathy"}]})";
  EXPECT_THROW(parse_manifest(Json::parse(unknown_kind)), ModelError);

  const std::string reasonless = R"({"version": 1, "rules": [{
    "code": "RTLB-A001", "kind": "layering", "modules": {"a": []},
    "gateways": [{"file": "src/a/x.cpp", "to": "b"}]}]})";
  EXPECT_THROW(parse_manifest(Json::parse(reasonless)), ModelError);

  const std::string unregistered = R"({"version": 1, "rules": [{
    "code": "RTLB-A999", "kind": "layering", "modules": {"a": []}}]})";
  EXPECT_THROW(parse_manifest(Json::parse(unregistered)), ModelError);
}

TEST(AuditJson, SchemaAndCountsMatchFindings) {
  Result result = run_audit(repo_manifest(), kCorpusRoot);
  // Baseline one KEY to prove the counters split correctly. Keys are
  // line-free, so every finding sharing the key is baselined together.
  ASSERT_FALSE(result.findings.empty());
  const std::string key = baseline_key(result.findings[0]);
  apply_baseline(result, {key});
  std::int64_t keyed = 0;
  for (const Finding& f : result.findings) keyed += baseline_key(f) == key;
  const Json j = audit_json(result);
  EXPECT_EQ(j.find("errors")->as_int(),
            static_cast<std::int64_t>(result.findings.size()) - keyed);
  EXPECT_EQ(j.find("baselined")->as_int(), keyed);
  EXPECT_EQ(j.find("suppressed")->as_int(), 1);
  ASSERT_NE(j.find("findings"), nullptr);
  EXPECT_EQ(j.find("findings")->size(), result.findings.size());
  const Json& first = j.find("findings")->at(0);
  for (const char* key : {"file", "line", "code", "severity", "subject",
                          "message", "hint", "baselined"}) {
    EXPECT_NE(first.find(key), nullptr) << key;
  }
  // Round-trips through the parser (valid JSON).
  EXPECT_NO_THROW(Json::parse(j.dump(2)));
}

TEST(AuditRegistry, CodesAreWellFormedAndDisjointFromLint) {
  for (const DiagInfo& info : all_audit_info()) {
    const std::string code = info.code;
    ASSERT_EQ(code.rfind("RTLB-A", 0), 0u) << code;
    EXPECT_EQ(audit_info(code), &info);
    EXPECT_NE(info.summary, nullptr);
    EXPECT_NE(info.fixit, nullptr);
  }
  EXPECT_EQ(audit_info("RTLB-E101"), nullptr);  // lint codes are elsewhere
}

}  // namespace
}  // namespace rtlb::audit
