// Regression of the Section-8 worked example: Table 1, the step-2
// partitions, the step-3 interval demands and bounds, and the step-4 costs.
#include <gtest/gtest.h>

#include "src/core/analysis.hpp"
#include "src/core/overlap.hpp"
#include "src/workload/paper_example.hpp"

namespace rtlb {
namespace {

class PaperExampleTest : public ::testing::Test {
 protected:
  PaperExampleTest() : inst_(paper_example()) {
    AnalysisOptions options;
    options.model = SystemModel::Dedicated;
    result_ = analyze(*inst_.app, options, &inst_.platform);
  }

  TaskId id(const std::string& name) const {
    TaskId t = inst_.app->find_task(name);
    EXPECT_NE(t, kInvalidTask) << name;
    return t;
  }

  std::vector<std::string> names(const std::vector<TaskId>& ids) const {
    std::vector<std::string> out;
    for (TaskId t : ids) out.push_back(inst_.app->task(t).name);
    return out;
  }

  ProblemInstance inst_;
  AnalysisResult result_;
};

TEST_F(PaperExampleTest, FifteenTasksThreeResources) {
  EXPECT_EQ(inst_.app->num_tasks(), 15u);
  EXPECT_EQ(inst_.app->resource_set().size(), 3u);  // P1, P2, r1
  EXPECT_EQ(inst_.platform.num_node_types(), 3u);   // {P1,r1}, {P1}, {P2}
}

TEST_F(PaperExampleTest, Table1Windows) {
  const ExpectedWindows expected = paper_expected_windows();
  for (int i = 0; i < 15; ++i) {
    const TaskId t = id("T" + std::to_string(i + 1));
    EXPECT_EQ(result_.windows.est[t], expected.est[i]) << "E of T" << (i + 1);
    EXPECT_EQ(result_.windows.lct[t], expected.lct[i]) << "L of T" << (i + 1);
  }
}

TEST_F(PaperExampleTest, Table1MergeSets) {
  // The merge sets the text derives: M_4={1}, M_5={2}, M_9={5}, M_13={9},
  // M_14={9}, M_15={10,11}; G_1={4}, G_5={9}, G_10={15}, G_11={15}.
  // (Table 1 prints G_9={14,13}; the Figure-2 stop rule keeps G_9={14} with
  // the same L_9=19 -- Section 8's own narrative confirms the tie stop.)
  auto merged_pred = [&](const char* t) { return names(result_.windows.merged_pred[id(t)]); };
  auto merged_succ = [&](const char* t) { return names(result_.windows.merged_succ[id(t)]); };

  EXPECT_EQ(merged_pred("T4"), std::vector<std::string>{"T1"});
  EXPECT_EQ(merged_pred("T5"), std::vector<std::string>{"T2"});
  EXPECT_EQ(merged_pred("T9"), std::vector<std::string>{"T5"});
  EXPECT_EQ(merged_pred("T13"), std::vector<std::string>{"T9"});
  EXPECT_EQ(merged_pred("T14"), std::vector<std::string>{"T9"});
  EXPECT_EQ(merged_pred("T15"), (std::vector<std::string>{"T10", "T11"}));

  EXPECT_EQ(merged_succ("T1"), std::vector<std::string>{"T4"});
  EXPECT_EQ(merged_succ("T5"), std::vector<std::string>{"T9"});
  EXPECT_EQ(merged_succ("T9"), std::vector<std::string>{"T14"});
  EXPECT_EQ(merged_succ("T10"), std::vector<std::string>{"T15"});
  EXPECT_EQ(merged_succ("T11"), std::vector<std::string>{"T15"});
  EXPECT_TRUE(merged_pred("T12").empty());
  EXPECT_TRUE(merged_succ("T2").empty());
  EXPECT_TRUE(merged_succ("T3").empty());
  EXPECT_TRUE(merged_succ("T4").empty());
}

TEST_F(PaperExampleTest, SectionEightLmsArithmetic) {
  // lms_15 = 36-6-4 = 26, lms_14 = 30-5-7 = 18, lms_13 = 30-6-5 = 19 (for
  // task 9); lms_9 = 19-3-9 = 7 and lms_8 = 23-5-3 = 15 (for task 5).
  const auto& w = result_.windows;
  const Application& app = *inst_.app;
  auto lms = [&](const char* from, const char* to) {
    const TaskId f = app.find_task(from), t = app.find_task(to);
    return w.lct[t] - app.task(t).comp - app.message(f, t);
  };
  EXPECT_EQ(lms("T9", "T15"), 26);
  EXPECT_EQ(lms("T9", "T14"), 18);
  EXPECT_EQ(lms("T9", "T13"), 19);
  EXPECT_EQ(lms("T5", "T9"), 7);
  EXPECT_EQ(lms("T5", "T8"), 15);
  // lst({14}) = 25 and lst({14,13}) = 19 as derived in the text.
  const std::vector<TaskId> just14{id("T14")};
  const std::vector<TaskId> both{id("T14"), id("T13")};
  EXPECT_EQ(latest_start_of_set(app, w.lct, just14), 25);
  EXPECT_EQ(latest_start_of_set(app, w.lct, both), 19);
}

TEST_F(PaperExampleTest, StepTwoPartitions) {
  // ST_r1 = {1,2} < {5} < {10,13,14} < {15} exactly as printed.
  const ResourceId r1 = inst_.catalog->find("r1");
  const ResourcePartition part = partition_tasks(*inst_.app, result_.windows, r1);
  ASSERT_EQ(part.blocks.size(), 4u);
  EXPECT_EQ(names(part.blocks[0].tasks), (std::vector<std::string>{"T1", "T2"}));
  EXPECT_EQ(names(part.blocks[1].tasks), std::vector<std::string>{"T5"});
  EXPECT_EQ(names(part.blocks[2].tasks), (std::vector<std::string>{"T13", "T14", "T10"}));
  EXPECT_EQ(names(part.blocks[3].tasks), std::vector<std::string>{"T15"});

  // ST_P2 = {6,7} < {8} exactly as printed.
  const ResourceId p2 = inst_.catalog->find("P2");
  const ResourcePartition part2 = partition_tasks(*inst_.app, result_.windows, p2);
  ASSERT_EQ(part2.blocks.size(), 2u);
  EXPECT_EQ(names(part2.blocks[0].tasks), (std::vector<std::string>{"T7", "T6"}));
  EXPECT_EQ(names(part2.blocks[1].tasks), std::vector<std::string>{"T8"});

  // ST_P1: same block windows as the paper's ([0,15], [16,19], [19,30],
  // [30,36]); the membership of T12 differs because the printed E_12 = 30
  // contradicts C_12 > 0 (see EXPERIMENTS.md).
  const ResourceId p1 = inst_.catalog->find("P1");
  const ResourcePartition part1 = partition_tasks(*inst_.app, result_.windows, p1);
  ASSERT_EQ(part1.blocks.size(), 4u);
  EXPECT_EQ(part1.blocks[0].start, 0);
  EXPECT_EQ(part1.blocks[0].finish, 15);
  EXPECT_EQ(part1.blocks[1].start, 16);
  EXPECT_EQ(part1.blocks[1].finish, 19);
  EXPECT_EQ(part1.blocks[2].start, 19);
  EXPECT_EQ(part1.blocks[2].finish, 30);
  EXPECT_EQ(part1.blocks[3].start, 30);
  EXPECT_EQ(part1.blocks[3].finish, 36);
}

TEST_F(PaperExampleTest, StepThreeDemands) {
  // Theta(P1,0,3) = 6, Theta(P1,3,6) = 9, Theta(P1,3,8) = 11 as printed.
  const ResourceId p1 = inst_.catalog->find("P1");
  const std::vector<TaskId> st = inst_.app->tasks_using(p1);
  EXPECT_EQ(demand(*inst_.app, result_.windows, st, 0, 3), 6);
  EXPECT_EQ(demand(*inst_.app, result_.windows, st, 3, 6), 9);
  EXPECT_EQ(demand(*inst_.app, result_.windows, st, 3, 8), 11);
}

TEST_F(PaperExampleTest, StepThreeBounds) {
  const ExpectedBounds expected = paper_expected_bounds();
  EXPECT_EQ(result_.bound_for(inst_.catalog->find("P1")), expected.lb_p1);
  EXPECT_EQ(result_.bound_for(inst_.catalog->find("P2")), expected.lb_p2);
  EXPECT_EQ(result_.bound_for(inst_.catalog->find("r1")), expected.lb_r1);
}

TEST_F(PaperExampleTest, StepFourSharedCost) {
  // Shared cost = 3*CostR(P1) + 2*CostR(P2) + 2*CostR(r1).
  const Cost expected = 3 * inst_.catalog->cost(inst_.catalog->find("P1")) +
                        2 * inst_.catalog->cost(inst_.catalog->find("P2")) +
                        2 * inst_.catalog->cost(inst_.catalog->find("r1"));
  EXPECT_EQ(result_.shared_cost.total, expected);
}

TEST_F(PaperExampleTest, StepFourDedicatedIlp) {
  // x1 = 2 units of {P1,r1}, x2 = 1 unit of {P1}, x3 = 2 units of {P2}.
  ASSERT_TRUE(result_.dedicated_cost.has_value());
  ASSERT_TRUE(result_.dedicated_cost->feasible);
  const ExpectedCost expected = paper_expected_cost();
  ASSERT_EQ(result_.dedicated_cost->node_counts.size(), 3u);
  EXPECT_EQ(result_.dedicated_cost->node_counts[0], expected.x1);
  EXPECT_EQ(result_.dedicated_cost->node_counts[1], expected.x2);
  EXPECT_EQ(result_.dedicated_cost->node_counts[2], expected.x3);
  const Cost cost = 2 * 10 + 1 * 6 + 2 * 8;
  EXPECT_EQ(result_.dedicated_cost->total, cost);
  // The LP relaxation is a weaker (or equal) valid bound, as Section 7 notes.
  EXPECT_LE(result_.dedicated_cost->relaxation, static_cast<double>(cost) + 1e-9);
}

TEST_F(PaperExampleTest, SharedAndDedicatedMergeabilityAgree) {
  // "In this example, a set of tasks which are mergeable in the shared model
  // are also mergeable in the dedicated model" -- so both analyses must give
  // identical windows.
  AnalysisOptions shared_options;
  shared_options.model = SystemModel::Shared;
  const AnalysisResult shared = analyze(*inst_.app, shared_options);
  EXPECT_EQ(shared.windows.est, result_.windows.est);
  EXPECT_EQ(shared.windows.lct, result_.windows.lct);
}

}  // namespace
}  // namespace rtlb
