// The parallel pruned bound engine against the serial engine: bit-identical
// ResourceBound results at any thread count, result-identical (and cheaper)
// with pruning, witness always consistent with the reported peak, and exact
// arithmetic on near-kTimeMax windows.
#include <gtest/gtest.h>

#include <limits>

#include "src/core/analysis.hpp"
#include "src/core/lower_bound.hpp"
#include "src/core/overlap.hpp"
#include "src/workload/taskset_gen.hpp"

namespace rtlb {
namespace {

void expect_bitwise_equal(const ResourceBound& a, const ResourceBound& b,
                          const std::string& context) {
  EXPECT_EQ(a.resource, b.resource) << context;
  EXPECT_EQ(a.bound, b.bound) << context;
  EXPECT_EQ(a.peak_density.num, b.peak_density.num) << context;
  EXPECT_EQ(a.peak_density.den, b.peak_density.den) << context;
  EXPECT_EQ(a.witness_t1, b.witness_t1) << context;
  EXPECT_EQ(a.witness_t2, b.witness_t2) << context;
  EXPECT_EQ(a.witness_demand, b.witness_demand) << context;
  EXPECT_EQ(a.intervals_evaluated, b.intervals_evaluated) << context;
}

/// A positive-peak bound must carry a witness interval whose recomputed
/// demand and density agree exactly with the reported values.
void expect_valid_witness(const Application& app, const TaskWindows& w,
                          const ResourceBound& b, const std::string& context) {
  if (!(b.peak_density > Ratio{0, 1})) return;
  ASSERT_LT(b.witness_t1, b.witness_t2) << context;
  const std::vector<TaskId> st = app.tasks_using(b.resource);
  EXPECT_EQ(demand(app, w, st, b.witness_t1, b.witness_t2), b.witness_demand) << context;
  EXPECT_TRUE((Ratio{b.witness_demand, b.witness_t2 - b.witness_t1}) == b.peak_density)
      << context;
  EXPECT_EQ(ceil_div(b.witness_demand, b.witness_t2 - b.witness_t1), b.bound) << context;
}

WorkloadParams params_for(std::uint64_t seed) {
  WorkloadParams params;
  params.seed = seed;
  params.num_tasks = 40;
  params.laxity = 1.3 + 0.3 * static_cast<double>(seed % 4);
  params.release_spread = (seed % 2 == 0) ? 0.6 : 0.0;
  params.preemptive_prob = (seed % 3 == 0) ? 0.5 : 0.0;
  params.resource_prob = 0.5;
  return params;
}

TEST(ParallelBound, BitIdenticalToSerialOnRandomSharedWorkloads) {
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    ProblemInstance inst = generate_workload(params_for(seed));
    SharedMergeOracle oracle;
    const TaskWindows w = compute_windows(*inst.app, oracle);
    for (bool partition : {true, false}) {
      for (bool prune : {false, true}) {
        LowerBoundOptions serial, parallel;
        serial.use_partitioning = parallel.use_partitioning = partition;
        serial.enable_pruning = parallel.enable_pruning = prune;
        serial.num_threads = 1;
        parallel.num_threads = 4;
        const std::string ctx = "seed " + std::to_string(seed) +
                                " partition=" + std::to_string(partition) +
                                " prune=" + std::to_string(prune);
        const auto a = all_resource_bounds(*inst.app, w, serial);
        const auto b = all_resource_bounds(*inst.app, w, parallel);
        ASSERT_EQ(a.size(), b.size()) << ctx;
        for (std::size_t k = 0; k < a.size(); ++k) {
          expect_bitwise_equal(a[k], b[k], ctx);
          expect_valid_witness(*inst.app, w, a[k], ctx);
        }
      }
    }
  }
}

TEST(ParallelBound, BitIdenticalToSerialOnRandomDedicatedWorkloads) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    ProblemInstance inst = generate_workload(params_for(seed));
    if (inst.platform.num_node_types() == 0) continue;
    AnalysisOptions serial, parallel;
    serial.model = parallel.model = SystemModel::Dedicated;
    serial.lower_bound.num_threads = 1;
    parallel.lower_bound.num_threads = 4;
    serial.lower_bound.enable_pruning = parallel.lower_bound.enable_pruning = true;
    const AnalysisResult a = analyze(*inst.app, serial, &inst.platform);
    const AnalysisResult b = analyze(*inst.app, parallel, &inst.platform);
    ASSERT_EQ(a.bounds.size(), b.bounds.size());
    const std::string ctx = "dedicated seed " + std::to_string(seed);
    for (std::size_t k = 0; k < a.bounds.size(); ++k) {
      expect_bitwise_equal(a.bounds[k], b.bounds[k], ctx);
      expect_valid_witness(*inst.app, a.windows, a.bounds[k], ctx);
    }
  }
}

TEST(ParallelBound, PruningKeepsResultsAndNeverEvaluatesMore) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    ProblemInstance inst = generate_workload(params_for(seed));
    SharedMergeOracle oracle;
    const TaskWindows w = compute_windows(*inst.app, oracle);
    for (ResourceId r : inst.app->resource_set()) {
      LowerBoundOptions plain, pruned;
      pruned.enable_pruning = true;
      const ResourceBound a = resource_lower_bound(*inst.app, w, r, plain);
      const ResourceBound b = resource_lower_bound(*inst.app, w, r, pruned);
      EXPECT_EQ(a.bound, b.bound) << "seed " << seed;
      EXPECT_TRUE(a.peak_density == b.peak_density) << "seed " << seed;
      // The pruned witness may name a different interval on an exact density
      // tie (the probe pass records its own witnesses) but must always be
      // valid -- its recomputed density equals the shared peak.
      expect_valid_witness(*inst.app, w, b, "pruned seed " + std::to_string(seed));
      // Probe work is bounded by one pair per task; the scan itself only
      // ever skips pairs the unpruned engine evaluates.
      const std::uint64_t probe_budget = inst.app->tasks_using(r).size();
      EXPECT_LE(b.intervals_evaluated, a.intervals_evaluated + probe_budget)
          << "seed " << seed;
    }
  }
}

TEST(ParallelBound, AutoThreadCountMatchesSerial) {
  ProblemInstance inst = generate_workload(params_for(5));
  SharedMergeOracle oracle;
  const TaskWindows w = compute_windows(*inst.app, oracle);
  LowerBoundOptions serial, automatic;
  automatic.num_threads = 0;  // one per hardware thread
  const auto a = all_resource_bounds(*inst.app, w, serial);
  const auto b = all_resource_bounds(*inst.app, w, automatic);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t k = 0; k < a.size(); ++k) expect_bitwise_equal(a[k], b[k], "auto");
}

TEST(ParallelBound, DensityBoundOverMatchesAcrossEngines) {
  ProblemInstance inst = generate_workload(params_for(7));
  SharedMergeOracle oracle;
  const TaskWindows w = compute_windows(*inst.app, oracle);
  for (ResourceId r : inst.app->resource_set()) {
    LowerBoundOptions parallel_pruned;
    parallel_pruned.num_threads = 4;
    parallel_pruned.enable_pruning = true;
    const ResourceBound direct = resource_lower_bound(*inst.app, w, r);
    const ResourceBound over =
        density_bound_over(*inst.app, w, inst.app->tasks_using(r), parallel_pruned);
    EXPECT_EQ(direct.bound, over.bound);
    EXPECT_TRUE(direct.peak_density == over.peak_density);
  }
}

class WitnessTieTest : public ::testing::Test {
 protected:
  WitnessTieTest() : app_(cat_) { p_ = cat_.add_processor_type("P", 1); }

  void add(Time comp, Time rel, Time deadline) {
    Task t;
    t.name = "t" + std::to_string(app_.num_tasks());
    t.comp = comp;
    t.release = rel;
    t.deadline = deadline;
    t.proc = p_;
    app_.add_task(std::move(t));
  }

  ResourceCatalog cat_;
  Application app_;
  ResourceId p_;
};

TEST_F(WitnessTieTest, TieAcrossBlocksKeepsWitnessConsistentWithPeak) {
  // Two window-disjoint blocks whose peak densities TIE exactly (1/2): the
  // witness must describe an interval whose density equals the reported
  // peak, and ties must resolve deterministically to the earliest block.
  add(2, 0, 4);    // block 1: density 2/4 over [0, 4]
  add(3, 10, 16);  // block 2: density 3/6 over [10, 16]
  SharedMergeOracle oracle;
  const TaskWindows w = compute_windows(app_, oracle);
  for (int threads : {1, 4}) {
    for (bool prune : {false, true}) {
      LowerBoundOptions opts;
      opts.num_threads = threads;
      opts.enable_pruning = prune;
      const ResourceBound b = resource_lower_bound(app_, w, p_, opts);
      EXPECT_TRUE((Ratio{1, 2}) == b.peak_density);
      // Tie resolves to the first block in scan order.
      EXPECT_EQ(b.witness_t1, 0);
      EXPECT_EQ(b.witness_t2, 4);
      EXPECT_EQ(b.witness_demand, 2);
      // The invariant itself: recomputed witness density == reported peak.
      const std::vector<TaskId> st = app_.tasks_using(p_);
      EXPECT_EQ(demand(app_, w, st, b.witness_t1, b.witness_t2), b.witness_demand);
      EXPECT_TRUE((Ratio{b.witness_demand, b.witness_t2 - b.witness_t1}) == b.peak_density);
    }
  }
}

TEST_F(WitnessTieTest, LaterBlockWinningStrictlyMovesTheWitness) {
  add(2, 0, 4);    // block 1: density 1/2
  add(5, 10, 16);  // block 2: density 5/6 -- strictly better
  SharedMergeOracle oracle;
  const TaskWindows w = compute_windows(app_, oracle);
  const ResourceBound b = resource_lower_bound(app_, w, p_);
  EXPECT_TRUE((Ratio{5, 6}) == b.peak_density);
  EXPECT_EQ(b.witness_t1, 10);
  EXPECT_EQ(b.witness_t2, 16);
}

TEST(RatioOverflow, CeilIsExactNearInt64Max) {
  // The old ceil_div computed (num + den - 1) / den, which wraps for
  // numerators near INT64_MAX; the remainder form must not.
  const std::int64_t big = std::numeric_limits<std::int64_t>::max() - 2;
  EXPECT_EQ(ceil_div(big, 1), big);
  EXPECT_EQ(ceil_div(big, big), 1);
  EXPECT_EQ(ceil_div(big - 1, big), 1);
  EXPECT_EQ(ceil_div(big, 1000), big / 1000 + 1);
  EXPECT_EQ((Ratio{big, 1000}).ceil(), big / 1000 + 1);
}

TEST(RatioOverflow, ComparisonsAreExactOnHugeTimes) {
  const Time t = kTimeMax;
  // 2t/(2t-1) > 1 > (2t-1)/2t -- distinguishable only with exact wide
  // arithmetic.
  EXPECT_TRUE((Ratio{2 * t, 2 * t - 1}) > (Ratio{1, 1}));
  EXPECT_TRUE((Ratio{2 * t - 1, 2 * t}) < (Ratio{1, 1}));
  EXPECT_TRUE((Ratio{2 * t, 2 * t}) == (Ratio{1, 1}));
  MaxRatio m;
  m.update(2 * t - 1, 2 * t);
  m.update(2 * t, 2 * t - 1);
  m.update(1, 1);
  EXPECT_TRUE(m.best() == (Ratio{2 * t, 2 * t - 1}));
}

TEST(RatioOverflow, BoundOnNearMaxWindowsIsExact) {
  // Two tasks whose demand over the shared window pushes num + den past
  // INT64_MAX in the old ceil_div. 2C/D with C = 3/8 max, D = 35/80 max:
  // num + den - 1 = 6/8 max + 35/80 max > INT64_MAX, while the true bound
  // is ceil(60/35) = 2.
  const std::int64_t max = std::numeric_limits<std::int64_t>::max();
  const Time comp = max / 8 * 3;
  const Time deadline = max / 80 * 35;
  ResourceCatalog cat;
  const ResourceId p = cat.add_processor_type("P", 1);
  Application app(cat);
  for (int i = 0; i < 2; ++i) {
    Task t;
    t.name = "big" + std::to_string(i);
    t.comp = comp;
    t.release = 0;
    t.deadline = deadline;
    t.proc = p;
    app.add_task(std::move(t));
  }
  SharedMergeOracle oracle;
  const TaskWindows w = compute_windows(app, oracle);
  for (bool prune : {false, true}) {
    LowerBoundOptions opts;
    opts.enable_pruning = prune;
    const ResourceBound b = resource_lower_bound(app, w, p, opts);
    EXPECT_EQ(b.bound, 2);
    EXPECT_EQ(b.witness_demand, 2 * comp);
    EXPECT_TRUE((Ratio{2 * comp, deadline}) == b.peak_density);
  }
}

TEST(RatioOverflow, DemandOverflowIsDetectedNotWrapped) {
  // Enough near-max tasks that Theta itself cannot be represented: the
  // analysis must refuse loudly instead of returning a wrapped bound.
  const std::int64_t max = std::numeric_limits<std::int64_t>::max();
  ResourceCatalog cat;
  const ResourceId p = cat.add_processor_type("P", 1);
  Application app(cat);
  for (int i = 0; i < 4; ++i) {
    Task t;
    t.name = "huge" + std::to_string(i);
    t.comp = max / 4 * 3;
    t.release = 0;
    t.deadline = max - 1;
    t.proc = p;
    app.add_task(std::move(t));
  }
  SharedMergeOracle oracle;
  const TaskWindows w = compute_windows(app, oracle);
  EXPECT_THROW(resource_lower_bound(app, w, p), ModelError);
}

}  // namespace
}  // namespace rtlb
