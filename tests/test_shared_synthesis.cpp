#include <gtest/gtest.h>

#include "src/core/analysis.hpp"
#include "src/sched/feasibility.hpp"
#include "src/sched/list_scheduler.hpp"
#include "src/synth/shared_synthesis.hpp"
#include "src/workload/paper_example.hpp"
#include "src/workload/taskset_gen.hpp"

namespace rtlb {
namespace {

class SharedSynthesisTest : public ::testing::Test {
 protected:
  SharedSynthesisTest() : app_(cat_) {
    p_ = cat_.add_processor_type("P", 10);
    r_ = cat_.add_resource("r", 3);
  }

  TaskId add(Time comp, Time rel, Time deadline, std::vector<ResourceId> res = {}) {
    Task t;
    t.name = "t" + std::to_string(app_.num_tasks());
    t.comp = comp;
    t.release = rel;
    t.deadline = deadline;
    t.proc = p_;
    t.resources = std::move(res);
    return app_.add_task(std::move(t));
  }

  SharedSynthesisResult run(SharedSynthesisOptions options = {}) {
    const AnalysisResult res = analyze(app_);
    return synthesize_shared(app_, res.bounds, options);
  }

  ResourceCatalog cat_;
  Application app_;
  ResourceId p_, r_;
};

TEST_F(SharedSynthesisTest, FindsTheFloorWhenItIsFeasible) {
  add(4, 0, 4, {r_});
  add(4, 0, 4);
  const SharedSynthesisResult res = run();
  ASSERT_TRUE(res.found);
  EXPECT_EQ(res.caps.of(p_), 2);
  EXPECT_EQ(res.caps.of(r_), 1);
  EXPECT_EQ(res.cost, 2 * 10 + 1 * 3);
  EXPECT_EQ(res.scheduler_probes, 1);  // the bound vector itself worked
  EXPECT_TRUE(check_shared(app_, res.schedule, res.caps).empty());
}

TEST_F(SharedSynthesisTest, GrowsPastTheFloorWhenNecessary) {
  // Three tasks, windows [0,6], C=4 each, sharing r: LB_r = 2 (12 ticks of
  // work over 6 on r), LB_P = 2, but EDF needs... the floor (P=2, r=2) is
  // schedulable: two run [0,4], third [4,8]? deadline 6 -> no. Check the
  // true need: 12 ticks / 6 width = 2 exact, but non-preemptive C=4 tasks
  // can only start at 0 or 2; three tasks on 2 CPUs: [0,4],[0,4],[2,6]
  // needs r capacity 3 in [2,4]. The search must climb.
  add(4, 0, 6, {r_});
  add(4, 0, 6, {r_});
  add(4, 0, 6, {r_});
  const SharedSynthesisResult res = run();
  ASSERT_TRUE(res.found);
  EXPECT_GE(res.caps.of(r_), 3);
  EXPECT_GT(res.scheduler_probes, 1);
  EXPECT_TRUE(check_shared(app_, res.schedule, res.caps).empty());
}

TEST_F(SharedSynthesisTest, CostOrderPrefersCheapResources) {
  // P costs 10, r costs 3: when both single-unit growths would work, the
  // cheaper one is taken first by the best-first order. Construct: two
  // r-tasks whose deadline needs either 2 CPUs or... simply verify the
  // returned cost equals the brute-force cheapest feasible vector.
  add(4, 0, 8, {r_});
  add(4, 0, 8, {r_});
  add(4, 0, 8);
  const SharedSynthesisResult res = run();
  ASSERT_TRUE(res.found);
  // Brute force over the small lattice.
  Cost best = -1;
  for (int cp = 1; cp <= 4; ++cp) {
    for (int cr = 1; cr <= 4; ++cr) {
      Capacities caps(cat_.size(), 0);
      caps.set(p_, cp);
      caps.set(r_, cr);
      if (list_schedule_shared(app_, caps).feasible) {
        const Cost cost = cp * 10 + cr * 3;
        if (best < 0 || cost < best) best = cost;
      }
    }
  }
  EXPECT_EQ(res.cost, best);
}

TEST_F(SharedSynthesisTest, ReportsFailureWhenLatticeExhausted) {
  add(4, 0, 4);
  add(4, 0, 4);
  add(4, 0, 4);
  SharedSynthesisOptions options;
  options.max_units_per_resource = 2;  // needs 3 CPUs
  const SharedSynthesisResult res = run(options);
  EXPECT_FALSE(res.found);
}

TEST(SharedSynthesisPaper, AnnealFallbackBeatsEdfOnThePaperExample) {
  // EDF alone needs more hardware on the paper example than annealing; with
  // the fallback enabled the search certifies a cheaper system.
  ProblemInstance inst = paper_example();
  const AnalysisResult res = analyze(*inst.app);

  SharedSynthesisOptions edf_only;
  edf_only.max_units_per_resource = 5;
  const SharedSynthesisResult plain = synthesize_shared(*inst.app, res.bounds, edf_only);

  SharedSynthesisOptions with_anneal = edf_only;
  with_anneal.anneal_fallback = true;
  with_anneal.anneal_seed = 3;
  with_anneal.anneal_evaluations = 4000;
  const SharedSynthesisResult strong = synthesize_shared(*inst.app, res.bounds, with_anneal);

  ASSERT_TRUE(strong.found);
  if (plain.found) {
    EXPECT_LE(strong.cost, plain.cost);
  }
  EXPECT_TRUE(check_shared(*inst.app, strong.schedule, strong.caps).empty());
  // Never below the Eq.-7.1 floor.
  EXPECT_GE(strong.cost, res.shared_cost.total);
}

TEST(SharedSynthesisRandom, NeverBelowTheSharedCostFloor) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    WorkloadParams params;
    params.seed = seed * 21;
    params.num_tasks = 14;
    params.laxity = 2.0;
    ProblemInstance inst = generate_workload(params);
    const AnalysisResult res = analyze(*inst.app);
    if (res.infeasible(*inst.app)) continue;
    const SharedSynthesisResult synth = synthesize_shared(*inst.app, res.bounds);
    if (!synth.found) continue;
    EXPECT_GE(synth.cost, res.shared_cost.total) << "seed " << seed;
    EXPECT_TRUE(check_shared(*inst.app, synth.schedule, synth.caps).empty())
        << "seed " << seed;
  }
}

}  // namespace
}  // namespace rtlb
