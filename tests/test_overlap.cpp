// Theorems 3 and 4: the closed-form overlap formulas against a brute-force
// placement search, across all five window/interval geometries of Figure 5.
#include <gtest/gtest.h>

#include "src/core/overlap.hpp"

namespace rtlb {
namespace {

// ---- The five cases of Figure 5, closed-form expectations ----------------

TEST(OverlapCases, Case1NoIntersection) {
  // L <= t1 and t2 <= E respectively.
  EXPECT_EQ(overlap_preemptive(3, 0, 5, 5, 9), 0);
  EXPECT_EQ(overlap_preemptive(3, 10, 15, 5, 9), 0);
  EXPECT_EQ(overlap_nonpreemptive(3, 0, 5, 5, 9), 0);
  EXPECT_EQ(overlap_nonpreemptive(3, 10, 15, 5, 9), 0);
}

TEST(OverlapCases, Case2WindowInsideInterval) {
  // t1 <= E <= L <= t2: the whole computation falls inside.
  EXPECT_EQ(overlap_preemptive(3, 4, 8, 2, 10), 3);
  EXPECT_EQ(overlap_nonpreemptive(3, 4, 8, 2, 10), 3);
}

TEST(OverlapCases, Case3WindowEntersFromLeft) {
  // E <= t1 <= L <= t2: run as early as possible; alpha(C - (t1 - E)).
  EXPECT_EQ(overlap_preemptive(5, 0, 8, 2, 10), 3);
  EXPECT_EQ(overlap_nonpreemptive(5, 0, 8, 2, 10), 3);
  EXPECT_EQ(overlap_preemptive(2, 0, 8, 2, 10), 0);  // fits entirely before t1
}

TEST(OverlapCases, Case4WindowExitsRight) {
  // t1 <= E <= t2 <= L: run as late as possible; alpha(C - (L - t2)).
  EXPECT_EQ(overlap_preemptive(5, 4, 12, 0, 8), 1);
  EXPECT_EQ(overlap_nonpreemptive(5, 4, 12, 0, 8), 1);
  EXPECT_EQ(overlap_preemptive(4, 4, 12, 0, 8), 0);  // fits entirely after t2
}

TEST(OverlapCases, Case5IntervalInsideWindow) {
  // E <= t1 <= t2 <= L: this is where the two theorems differ.
  // Window [0, 12], interval [4, 8], C = 9: preemptive splits 4 before + 4
  // after, leaving 1 inside; non-preemptive cannot split -- best contiguous
  // placement still covers min(C-4, C-4, t2-t1) = 4.
  EXPECT_EQ(overlap_preemptive(9, 0, 12, 4, 8), 1);
  EXPECT_EQ(overlap_nonpreemptive(9, 0, 12, 4, 8), 4);
  // C small enough to dodge entirely (preemptive) but not contiguously.
  EXPECT_EQ(overlap_preemptive(8, 0, 12, 4, 8), 0);
  EXPECT_EQ(overlap_nonpreemptive(8, 0, 12, 4, 8), 4);
  // C fits before the interval: both dodge.
  EXPECT_EQ(overlap_preemptive(4, 0, 12, 4, 8), 0);
  EXPECT_EQ(overlap_nonpreemptive(4, 0, 12, 4, 8), 0);
}

TEST(OverlapCases, WholeIntervalSaturation) {
  // A long task must cover the whole interval in both modes.
  EXPECT_EQ(overlap_preemptive(12, 0, 12, 4, 8), 4);
  EXPECT_EQ(overlap_nonpreemptive(12, 0, 12, 4, 8), 4);
}

// ---- Brute-force cross-check over a parameter sweep ----------------------

struct SweepCase {
  Time c, e, l, t1, t2;
};

class OverlapSweep : public ::testing::TestWithParam<SweepCase> {};

TEST_P(OverlapSweep, ClosedFormMatchesBruteForce) {
  const SweepCase& p = GetParam();
  EXPECT_EQ(overlap_preemptive(p.c, p.e, p.l, p.t1, p.t2),
            overlap_brute_force(p.c, p.e, p.l, p.t1, p.t2, /*preemptive=*/true))
      << "C=" << p.c << " [E,L]=[" << p.e << "," << p.l << "] [t1,t2]=[" << p.t1 << ","
      << p.t2 << "]";
  EXPECT_EQ(overlap_nonpreemptive(p.c, p.e, p.l, p.t1, p.t2),
            overlap_brute_force(p.c, p.e, p.l, p.t1, p.t2, /*preemptive=*/false))
      << "C=" << p.c << " [E,L]=[" << p.e << "," << p.l << "] [t1,t2]=[" << p.t1 << ","
      << p.t2 << "]";
}

std::vector<SweepCase> all_small_geometries() {
  // Every window [e, l] in [0, 8], every interval [t1, t2] in [0, 8], every
  // feasible C: exhaustively covers the five cases and their boundaries.
  std::vector<SweepCase> cases;
  for (Time e = 0; e <= 8; ++e) {
    for (Time l = e + 1; l <= 8; ++l) {
      for (Time c = 1; c <= l - e; ++c) {
        for (Time t1 = 0; t1 <= 8; ++t1) {
          for (Time t2 = t1 + 1; t2 <= 8; ++t2) {
            cases.push_back({c, e, l, t1, t2});
          }
        }
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AllSmallGeometries, OverlapSweep,
                         ::testing::ValuesIn(all_small_geometries()));

// ---- Structural properties ------------------------------------------------

TEST(OverlapProperties, PreemptiveNeverExceedsNonpreemptive) {
  for (Time e = 0; e <= 6; ++e) {
    for (Time l = e + 1; l <= 10; ++l) {
      for (Time c = 1; c <= l - e; ++c) {
        for (Time t1 = 0; t1 <= 9; ++t1) {
          for (Time t2 = t1 + 1; t2 <= 10; ++t2) {
            EXPECT_LE(overlap_preemptive(c, e, l, t1, t2),
                      overlap_nonpreemptive(c, e, l, t1, t2));
          }
        }
      }
    }
  }
}

TEST(OverlapProperties, MonotoneInIntervalGrowth) {
  // Growing [t1, t2] can only increase the mandatory overlap.
  const Time c = 5, e = 2, l = 12;
  for (Time t1 = 0; t1 <= 8; ++t1) {
    for (Time t2 = t1 + 1; t2 <= 12; ++t2) {
      if (t1 >= 1) {
        EXPECT_LE(overlap_preemptive(c, e, l, t1, t2), overlap_preemptive(c, e, l, t1 - 1, t2));
        EXPECT_LE(overlap_nonpreemptive(c, e, l, t1, t2),
                  overlap_nonpreemptive(c, e, l, t1 - 1, t2));
      }
      EXPECT_LE(overlap_preemptive(c, e, l, t1, t2), overlap_preemptive(c, e, l, t1, t2 + 1));
      EXPECT_LE(overlap_nonpreemptive(c, e, l, t1, t2),
                overlap_nonpreemptive(c, e, l, t1, t2 + 1));
    }
  }
}

TEST(OverlapProperties, BoundedByComputationAndInterval) {
  for (Time t1 = 0; t1 <= 9; ++t1) {
    for (Time t2 = t1 + 1; t2 <= 10; ++t2) {
      for (Time c = 1; c <= 8; ++c) {
        const Time pre = overlap_preemptive(c, 1, 9, t1, t2);
        const Time non = overlap_nonpreemptive(c, 1, 9, t1, t2);
        EXPECT_LE(pre, c);
        EXPECT_LE(non, c);
        EXPECT_LE(non, t2 - t1);
        EXPECT_GE(pre, 0);
        EXPECT_GE(non, 0);
      }
    }
  }
}

TEST(OverlapDispatch, UsesTaskPreemptiveFlag) {
  ResourceCatalog cat;
  const ResourceId p = cat.add_processor_type("P");
  Application app(cat);
  Task a;
  a.name = "pre";
  a.comp = 9;
  a.release = 0;
  a.deadline = 12;
  a.proc = p;
  a.preemptive = true;
  Task b = a;
  b.name = "non";
  b.preemptive = false;
  const TaskId ia = app.add_task(a);
  const TaskId ib = app.add_task(b);
  TaskWindows w;
  w.est = {0, 0};
  w.lct = {12, 12};
  EXPECT_EQ(overlap(app, w, ia, 4, 8), 1);
  EXPECT_EQ(overlap(app, w, ib, 4, 8), 4);
  const std::vector<TaskId> both{ia, ib};
  EXPECT_EQ(demand(app, w, both, 4, 8), 5);
}

}  // namespace
}  // namespace rtlb
