// Structural monotonicity of the window analysis -- properties a designer
// implicitly relies on when iterating on a specification:
//  * relaxing any deadline can only move every LCT later (never earlier);
//  * tightening all messages to zero can only widen windows;
//  * adding a precedence edge can only shrink windows;
//  * scaling all deadlines and releases together scales nothing unexpected.
#include <gtest/gtest.h>

#include "src/core/analysis.hpp"
#include "src/workload/taskset_gen.hpp"

namespace rtlb {
namespace {

Application clone_app(const Application& src) {
  Application out(src.catalog());
  for (TaskId i = 0; i < src.num_tasks(); ++i) out.add_task(src.task(i));
  for (TaskId i = 0; i < src.num_tasks(); ++i) {
    for (TaskId j : src.successors(i)) out.add_edge(i, j, src.message(i, j));
  }
  return out;
}

class Monotonicity : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  ProblemInstance make() {
    WorkloadParams params;
    params.seed = GetParam() * 13 + 5;
    params.num_tasks = 16;
    params.num_proc_types = 2;
    params.num_resources = 1;
    params.msg_max = 5;
    params.laxity = 1.5;
    params.release_spread = GetParam() % 2 ? 0.3 : 0.0;
    return generate_workload(params);
  }
};

TEST_P(Monotonicity, RelaxingOneDeadlineNeverTightensAnyWindow) {
  ProblemInstance inst = make();
  SharedMergeOracle oracle;
  const TaskWindows before = compute_windows(*inst.app, oracle);

  Application relaxed = clone_app(*inst.app);
  const TaskId victim = static_cast<TaskId>(GetParam() % relaxed.num_tasks());
  relaxed.task(victim).deadline += 7;
  const TaskWindows after = compute_windows(relaxed, oracle);

  for (TaskId i = 0; i < relaxed.num_tasks(); ++i) {
    EXPECT_GE(after.lct[i], before.lct[i]) << "task " << i;
    EXPECT_EQ(after.est[i], before.est[i]) << "task " << i;  // ESTs ignore deadlines
  }
}

TEST_P(Monotonicity, ZeroingMessagesNeverShrinksAnyWindow) {
  ProblemInstance inst = make();
  SharedMergeOracle oracle;
  const TaskWindows before = compute_windows(*inst.app, oracle);

  Application zeroed(inst.app->catalog());
  for (TaskId i = 0; i < inst.app->num_tasks(); ++i) zeroed.add_task(inst.app->task(i));
  for (TaskId i = 0; i < inst.app->num_tasks(); ++i) {
    for (TaskId j : inst.app->successors(i)) zeroed.add_edge(i, j, 0);
  }
  const TaskWindows after = compute_windows(zeroed, oracle);

  for (TaskId i = 0; i < zeroed.num_tasks(); ++i) {
    EXPECT_LE(after.est[i], before.est[i]) << "task " << i;
    EXPECT_GE(after.lct[i], before.lct[i]) << "task " << i;
  }
}

TEST_P(Monotonicity, AddingAnEdgeNeverWidensAnyWindow) {
  ProblemInstance inst = make();
  SharedMergeOracle oracle;
  const TaskWindows before = compute_windows(*inst.app, oracle);

  // Find a non-edge (u, v) with u before v in topo order.
  auto topo = inst.app->dag().topological_order();
  ASSERT_TRUE(topo.has_value());
  TaskId u = kInvalidTask, v = kInvalidTask;
  for (std::size_t a = 0; a < topo->size() && u == kInvalidTask; ++a) {
    for (std::size_t b = a + 1; b < topo->size(); ++b) {
      if (!inst.app->dag().has_edge((*topo)[a], (*topo)[b])) {
        u = (*topo)[a];
        v = (*topo)[b];
        break;
      }
    }
  }
  if (u == kInvalidTask) GTEST_SKIP() << "graph is complete";

  Application extended = clone_app(*inst.app);
  extended.add_edge(u, v, 0);  // zero-size: pure precedence
  const TaskWindows after = compute_windows(extended, oracle);

  for (TaskId i = 0; i < extended.num_tasks(); ++i) {
    EXPECT_GE(after.est[i], before.est[i]) << "task " << i;
    EXPECT_LE(after.lct[i], before.lct[i]) << "task " << i;
  }
}

TEST_P(Monotonicity, BoundsNeverRiseWhenEveryDeadlineRelaxes) {
  // Relax ALL deadlines by the same slack: every window widens pointwise and
  // keeps its endpoints among the candidate set, so LB_r cannot rise.
  // (Single-deadline relaxation does not have this property -- endpoint
  // shifts can expose a denser candidate interval.)
  ProblemInstance inst = make();
  const AnalysisResult before = analyze(*inst.app);

  Application relaxed = clone_app(*inst.app);
  for (TaskId i = 0; i < relaxed.num_tasks(); ++i) relaxed.task(i).deadline += 50;
  const AnalysisResult after = analyze(relaxed);

  Time total_before = 0, total_after = 0;
  for (ResourceId r : inst.app->resource_set()) {
    total_before += before.bound_for(r).value();
    total_after += after.bound_for(r).value();
  }
  EXPECT_LE(total_after, total_before);
}

INSTANTIATE_TEST_SUITE_P(Seeds, Monotonicity, ::testing::Range<std::uint64_t>(1, 13));

}  // namespace
}  // namespace rtlb
