#include <gtest/gtest.h>

#include "src/core/mergeable.hpp"

namespace rtlb {
namespace {

class MergeableTest : public ::testing::Test {
 protected:
  MergeableTest() : app_(cat_) {
    p1_ = cat_.add_processor_type("P1");
    p2_ = cat_.add_processor_type("P2");
    a_ = cat_.add_resource("a");
    b_ = cat_.add_resource("b");
    plat_.add_node_type(NodeType{"P1+a", p1_, {{a_, 1}}, 1});
    plat_.add_node_type(NodeType{"P2+b", p2_, {{b_, 1}}, 1});
  }

  TaskId add(ResourceId proc, std::vector<ResourceId> res) {
    Task t;
    t.name = "t" + std::to_string(app_.num_tasks());
    t.comp = 1;
    t.deadline = 100;
    t.proc = proc;
    t.resources = std::move(res);
    return app_.add_task(std::move(t));
  }

  ResourceCatalog cat_;
  Application app_;
  DedicatedPlatform plat_;
  ResourceId p1_, p2_, a_, b_;
};

TEST_F(MergeableTest, SharedRequiresSameProcType) {
  SharedMergeOracle oracle;
  const TaskId x = add(p1_, {});
  const TaskId y = add(p1_, {a_});
  const TaskId z = add(p2_, {});
  const TaskId xy[] = {x, y};
  const TaskId xz[] = {x, z};
  EXPECT_TRUE(oracle.mergeable(app_, xy));
  EXPECT_FALSE(oracle.mergeable(app_, xz));
}

TEST_F(MergeableTest, SingletonsAndEmptyAlwaysMergeable) {
  SharedMergeOracle shared;
  DedicatedMergeOracle dedicated(plat_);
  const TaskId x = add(p1_, {a_});
  const TaskId one[] = {x};
  EXPECT_TRUE(shared.mergeable(app_, one));
  EXPECT_TRUE(dedicated.mergeable(app_, one));
  EXPECT_TRUE(shared.mergeable(app_, {}));
  EXPECT_TRUE(dedicated.mergeable(app_, {}));
}

TEST_F(MergeableTest, DedicatedRequiresCoveringNode) {
  DedicatedMergeOracle oracle(plat_);
  const TaskId x = add(p1_, {});
  const TaskId y = add(p1_, {a_});
  const TaskId w = add(p1_, {b_});  // no P1 node carries b
  const TaskId xy[] = {x, y};
  const TaskId xw[] = {x, w};
  EXPECT_TRUE(oracle.mergeable(app_, xy));
  EXPECT_FALSE(oracle.mergeable(app_, xw));
}

TEST_F(MergeableTest, DedicatedUnionTest) {
  // Individually hostable tasks whose union exceeds every node.
  DedicatedPlatform plat;
  plat.add_node_type(NodeType{"P1+a", p1_, {{a_, 1}}, 1});
  plat.add_node_type(NodeType{"P1+b", p1_, {{b_, 1}}, 1});
  DedicatedMergeOracle oracle(plat);
  const TaskId x = add(p1_, {a_});
  const TaskId y = add(p1_, {b_});
  const TaskId xs[] = {x};
  const TaskId ys[] = {y};
  const TaskId both[] = {x, y};
  EXPECT_TRUE(oracle.mergeable(app_, xs));
  EXPECT_TRUE(oracle.mergeable(app_, ys));
  EXPECT_FALSE(oracle.mergeable(app_, both));  // needs {a, b} on one node
}

TEST_F(MergeableTest, DedicatedStillRequiresSameProcType) {
  DedicatedPlatform plat;
  plat.add_node_type(NodeType{"P1all", p1_, {{a_, 1}, {b_, 1}}, 1});
  DedicatedMergeOracle oracle(plat);
  const TaskId x = add(p1_, {a_});
  const TaskId z = add(p2_, {});
  const TaskId xz[] = {x, z};
  EXPECT_FALSE(oracle.mergeable(app_, xz));
}

}  // namespace
}  // namespace rtlb
