// Tests for the differential-testing fleet runner (src/fleet/).
//
// The load-bearing properties here are DETERMINISM properties: the same
// scenario spec must yield byte-identical aggregate reports regardless of
// thread count, sharding, warm/cold baselines, or kill-and-resume -- plus
// the oracle property that a deliberately corrupted engine result is
// flagged as exactly one divergence at exactly the right coordinates.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>

#include "src/common/checkpoint.hpp"
#include "src/common/random.hpp"
#include "src/core/report.hpp"
#include "src/core/session.hpp"
#include "src/fleet/runner.hpp"
#include "src/model/io.hpp"
#include "src/workload/taskset_gen.hpp"

namespace rtlb {
namespace {

ScenarioSpec tiny_spec() {
  // 2 shapes x 1 task count x 2 laxities x 2 models = 8 cells x 10 = 80.
  return ScenarioSpec::from_text(R"({
    "name": "tiny",
    "seed": 7,
    "instances_per_cell": 10,
    "axes": {
      "shape": ["layered", "fork_join"],
      "num_tasks": [8],
      "laxity": [1.5, 3],
      "model": ["shared", "dedicated"]
    },
    "defaults": {"num_resources": 2, "resource_prob": 0.5}
  })");
}

std::string report_bytes(const ScenarioSpec& spec, const FleetRunResult& run,
                         int shards = 1, int shard = 0) {
  return fleet_report_json(spec, run.aggregates, shards, shard, run.complete).dump();
}

std::string temp_path(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

// ---------------------------------------------------------------- scenario

TEST(FleetScenario, SpecRoundTripsThroughJson) {
  const ScenarioSpec spec = tiny_spec();
  const ScenarioSpec again = ScenarioSpec::from_json(spec.to_json());
  EXPECT_EQ(spec.to_json().dump(), again.to_json().dump());
  EXPECT_EQ(spec.fingerprint(), again.fingerprint());
}

TEST(FleetScenario, CellEnumerationIsShapeMajorAndStable) {
  const ScenarioSpec spec = tiny_spec();
  const std::vector<ScenarioCell> cells = spec.cells();
  ASSERT_EQ(cells.size(), 8u);
  EXPECT_EQ(cells[0].label(), "layered/n8/lax1.5/shared");
  EXPECT_EQ(cells[1].label(), "layered/n8/lax1.5/dedicated");
  EXPECT_EQ(cells[2].label(), "layered/n8/lax3/shared");
  EXPECT_EQ(cells[7].label(), "fork_join/n8/lax3/dedicated");
  EXPECT_EQ(spec.total_instances(), 80u);
}

TEST(FleetScenario, RejectsUnknownKeysAndBadValues) {
  EXPECT_THROW(ScenarioSpec::from_text(R"({"bogus": 1})"), ModelError);
  EXPECT_THROW(ScenarioSpec::from_text(R"({"axes": {"bogus": [1]}})"), ModelError);
  EXPECT_THROW(ScenarioSpec::from_text(R"({"defaults": {"bogus": 1}})"), ModelError);
  EXPECT_THROW(ScenarioSpec::from_text(R"({"instances_per_cell": 0})"), ModelError);
  EXPECT_THROW(ScenarioSpec::from_text(R"({"axes": {"laxity": [0.5]}})"), ModelError);
  EXPECT_THROW(ScenarioSpec::from_text(R"({"axes": {"shape": ["mystery"]}})"), ModelError);
}

TEST(FleetScenario, FingerprintSeparatesSpecs) {
  const ScenarioSpec a = tiny_spec();
  ScenarioSpec b = tiny_spec();
  b.seed = 8;
  EXPECT_NE(a.fingerprint(), b.fingerprint());
}

// ------------------------------------------------------------ workload axis

TEST(FleetScenario, WorkloadFormNamesRoundTrip) {
  for (const WorkloadForm form :
       {WorkloadForm::Flat, WorkloadForm::Periodic, WorkloadForm::Sporadic}) {
    EXPECT_EQ(workload_form_from_name(workload_form_name(form)), form);
  }
  EXPECT_EQ(workload_form_name(WorkloadForm::Flat), "flat");
  EXPECT_EQ(workload_form_name(WorkloadForm::Periodic), "periodic");
  EXPECT_EQ(workload_form_name(WorkloadForm::Sporadic), "sporadic");
  EXPECT_THROW(workload_form_from_name("mystery"), ModelError);
  EXPECT_THROW(ScenarioSpec::from_text(R"({"axes": {"workload": ["mystery"]}})"),
               ModelError);
}

ScenarioSpec recurrent_spec() {
  return ScenarioSpec::from_text(R"({
    "name": "recurrent",
    "seed": 11,
    "instances_per_cell": 5,
    "axes": {
      "shape": ["layered"],
      "num_tasks": [8],
      "laxity": [1.5],
      "workload": ["flat", "periodic", "sporadic"],
      "model": ["shared", "dedicated"]
    },
    "defaults": {"num_resources": 2, "resource_prob": 0.5}
  })");
}

TEST(FleetScenario, WorkloadAxisNestsBetweenLaxityAndModel) {
  const ScenarioSpec spec = recurrent_spec();
  const std::vector<ScenarioCell> cells = spec.cells();
  ASSERT_EQ(cells.size(), 6u);
  // Flat cells keep their historical label; recurrent cells render the
  // workload segment between laxity and model.
  EXPECT_EQ(cells[0].label(), "layered/n8/lax1.5/shared");
  EXPECT_EQ(cells[1].label(), "layered/n8/lax1.5/dedicated");
  EXPECT_EQ(cells[2].label(), "layered/n8/lax1.5/periodic/shared");
  EXPECT_EQ(cells[3].label(), "layered/n8/lax1.5/periodic/dedicated");
  EXPECT_EQ(cells[4].label(), "layered/n8/lax1.5/sporadic/shared");
  EXPECT_EQ(cells[5].label(), "layered/n8/lax1.5/sporadic/dedicated");
  for (std::size_t i = 0; i < cells.size(); ++i) EXPECT_EQ(cells[i].index, i);

  // The axis is part of the canonical dump (and hence the fingerprint), and
  // the spec round-trips through it.
  const ScenarioSpec again = ScenarioSpec::from_json(spec.to_json());
  EXPECT_EQ(spec.to_json().dump(), again.to_json().dump());
  ScenarioSpec flat_only = recurrent_spec();
  flat_only.workloads = {WorkloadForm::Flat};
  EXPECT_NE(spec.fingerprint(), flat_only.fingerprint());
}

TEST(FleetRunner, RecurrentCellsRunAllOraclesClean) {
  const ScenarioSpec spec = recurrent_spec();
  const FleetRunResult run = run_fleet(spec, FleetOptions{});
  EXPECT_TRUE(run.complete);
  EXPECT_EQ(run.aggregates.instances, 30u);
  EXPECT_TRUE(run.aggregates.clean()) << run.aggregates.to_json().dump(2);
}

// -------------------------------------------------------------------- rng

// The stream-split scheme is a FROZEN CONTRACT: instance seeds are a pure
// function of (spec seed, cell index, instance index), so reproducer
// coordinates recorded by one build must regenerate the same instance in
// every later build. Changing split_seed invalidates every committed
// divergence record -- these exact values pin it.
TEST(FleetRng, SeedSplitPinned) {
  EXPECT_EQ(split_seed(42, 0, 0), 17528487489388797348ULL);
  EXPECT_EQ(split_seed(42, 0, 1), 5105103197573283624ULL);
  EXPECT_EQ(split_seed(42, 1, 0), 18403162606258993455ULL);
  EXPECT_EQ(split_seed(1, 2), 15782585130545134964ULL);
  EXPECT_EQ(split_seed(0, 0), 12534471714451444654ULL);
  EXPECT_EQ(split_seed(7, 3, 9), 12182798711933964556ULL);
}

TEST(FleetRng, InstanceSeedsAreCollisionFreeAcrossTheGrid) {
  // 100 cells x 100 instances: any collision would make two "independent"
  // instances identical, silently halving fleet coverage.
  std::set<std::uint64_t> seen;
  for (std::size_t c = 0; c < 100; ++c) {
    for (std::size_t k = 0; k < 100; ++k) {
      EXPECT_TRUE(seen.insert(split_seed(42, c, k)).second)
          << "seed collision at cell " << c << " instance " << k;
    }
  }
}

TEST(FleetRng, InstanceSeedIndependentOfNeighbourStreams) {
  // Adjacent (cell, k) pairs must not yield correlated generator output:
  // the first draws from Rngs seeded with neighbouring coordinates differ.
  Rng a(split_seed(42, 3, 4));
  Rng b(split_seed(42, 3, 5));
  Rng c(split_seed(42, 4, 4));
  const std::uint64_t x = a.next_u64(), y = b.next_u64(), z = c.next_u64();
  EXPECT_NE(x, y);
  EXPECT_NE(x, z);
  EXPECT_NE(y, z);
}

TEST(FleetRng, GeneratedInstancesDifferAcrossInstanceIndex) {
  const ScenarioSpec spec = tiny_spec();
  const ScenarioCell cell = spec.cells()[0];
  const ProblemInstance i0 = generate_workload(spec.instance_params(cell, 0));
  const ProblemInstance i1 = generate_workload(spec.instance_params(cell, 1));
  EXPECT_NE(serialize_instance(*i0.app, i0.platform),
            serialize_instance(*i1.app, i1.platform));
}

// -------------------------------------------------------------- aggregates

TEST(FleetAggregatesTest, HistogramBucketsAndMerge) {
  Histogram h = make_tightness_histogram();
  h.add(1000);   // exactly 1.0x -> first bucket
  h.add(1000);
  h.add(1050);   // (1.001, 1.1]
  h.add(20000);  // overflow
  EXPECT_EQ(h.counts[0], 2u);
  EXPECT_EQ(h.counts[1], 1u);
  EXPECT_EQ(h.counts.back(), 1u);
  EXPECT_EQ(h.total(), 4u);

  Histogram g = Histogram::from_json(h.to_json());
  g.merge(h);
  EXPECT_EQ(g.total(), 8u);
  EXPECT_EQ(g.counts[0], 4u);
}

TEST(FleetAggregatesTest, RoundTripThroughJsonIsExact) {
  const ScenarioSpec spec = tiny_spec();
  const FleetRunResult run = run_fleet(spec, FleetOptions{});
  const std::string bytes = run.aggregates.to_json().dump();
  const FleetAggregates again = FleetAggregates::from_json(run.aggregates.to_json());
  EXPECT_EQ(bytes, again.to_json().dump());
}

// ------------------------------------------------------------ determinism

TEST(FleetRunner, SmokeAllOraclesClean) {
  const ScenarioSpec spec = tiny_spec();
  const FleetRunResult run = run_fleet(spec, FleetOptions{});
  EXPECT_TRUE(run.complete);
  EXPECT_EQ(run.aggregates.instances, 80u);
  EXPECT_TRUE(run.aggregates.clean())
      << run.aggregates.to_json().dump(2);
  // Every instance produced at least the baseline + parallel + session runs.
  EXPECT_GE(run.aggregates.analyses, 80u * 3);
}

TEST(FleetRunner, ThreadCountDoesNotChangeTheBytes) {
  const ScenarioSpec spec = tiny_spec();
  FleetOptions serial;
  FleetOptions threaded;
  threaded.threads = 4;
  EXPECT_EQ(report_bytes(spec, run_fleet(spec, serial)),
            report_bytes(spec, run_fleet(spec, threaded)));
}

TEST(FleetRunner, WarmSessionsEqualCold) {
  const ScenarioSpec spec = tiny_spec();
  FleetOptions warm;
  warm.warm_sessions = true;
  warm.threads = 2;
  EXPECT_EQ(report_bytes(spec, run_fleet(spec, FleetOptions{})),
            report_bytes(spec, run_fleet(spec, warm)));
}

TEST(FleetRunner, ShardedRunsMergeToSingleProcessBytes) {
  const ScenarioSpec spec = tiny_spec();
  const FleetRunResult whole = run_fleet(spec, FleetOptions{});
  std::vector<Json> shard_reports;
  for (int s = 0; s < 3; ++s) {
    FleetOptions opts;
    opts.shards = 3;
    opts.shard = s;
    const FleetRunResult shard = run_fleet(spec, opts);
    EXPECT_TRUE(shard.complete);
    shard_reports.push_back(fleet_report_json(spec, shard.aggregates, 3, s, true));
  }
  EXPECT_EQ(merge_fleet_reports(shard_reports).dump(), report_bytes(spec, whole));
}

TEST(FleetRunner, MergeRefusesMismatchedShards) {
  const ScenarioSpec spec = tiny_spec();
  FleetOptions opts;
  opts.shards = 2;
  opts.shard = 0;
  const FleetRunResult half = run_fleet(spec, opts);
  const Json report = fleet_report_json(spec, half.aggregates, 2, 0, true);
  EXPECT_THROW(merge_fleet_reports({report}), ModelError);          // wrong count
  EXPECT_THROW(merge_fleet_reports({report, report}), ModelError);  // duplicate shard
}

// --------------------------------------------------------------- resume

TEST(FleetRunner, CheckpointResumeIsByteIdentical) {
  const ScenarioSpec spec = tiny_spec();
  const std::string ckpt = temp_path("rtlb_fleet_resume.ckpt");
  std::remove(ckpt.c_str());

  const std::string uninterrupted = report_bytes(spec, run_fleet(spec, FleetOptions{}));

  FleetOptions first;
  first.checkpoint_path = ckpt;
  first.checkpoint_every = 7;  // deliberately not a divisor of 80
  first.stop_after = 33;       // "kill -9" after the 33rd instance's chunk
  const FleetRunResult partial = run_fleet(spec, first);
  EXPECT_FALSE(partial.complete);
  EXPECT_LE(partial.processed_this_run, 35u);

  FleetOptions second;
  second.checkpoint_path = ckpt;
  second.checkpoint_every = 7;
  const FleetRunResult resumed = run_fleet(spec, second);
  EXPECT_TRUE(resumed.complete);
  EXPECT_TRUE(resumed.resumed);
  EXPECT_LT(resumed.processed_this_run, 80u);
  EXPECT_EQ(report_bytes(spec, resumed), uninterrupted);
  std::remove(ckpt.c_str());
}

TEST(FleetRunner, CheckpointSurvivesMidChunkKill) {
  // The checkpoint on disk always describes a CHUNK BOUNDARY; a process
  // killed mid-chunk re-runs only that chunk. Simulate by resuming from a
  // checkpoint that is older than the work actually done.
  const ScenarioSpec spec = tiny_spec();
  const std::string ckpt = temp_path("rtlb_fleet_midchunk.ckpt");
  std::remove(ckpt.c_str());

  FleetOptions first;
  first.checkpoint_path = ckpt;
  first.checkpoint_every = 16;
  first.stop_after = 16;
  run_fleet(spec, first);  // checkpoint now at 16 instances

  FleetOptions rest;
  rest.checkpoint_path = ckpt;
  rest.checkpoint_every = 16;
  const FleetRunResult resumed = run_fleet(spec, rest);
  EXPECT_TRUE(resumed.complete);
  EXPECT_EQ(report_bytes(spec, resumed),
            report_bytes(spec, run_fleet(spec, FleetOptions{})));
  std::remove(ckpt.c_str());
}

TEST(FleetRunner, CheckpointForDifferentSpecIsRefused) {
  const ScenarioSpec spec = tiny_spec();
  const std::string ckpt = temp_path("rtlb_fleet_mismatch.ckpt");
  std::remove(ckpt.c_str());

  FleetOptions opts;
  opts.checkpoint_path = ckpt;
  opts.stop_after = 10;
  run_fleet(spec, opts);

  ScenarioSpec other = tiny_spec();
  other.seed = 99;
  EXPECT_THROW(run_fleet(other, opts), ModelError);

  FleetOptions other_layout = opts;
  other_layout.shards = 2;
  other_layout.shard = 1;
  EXPECT_THROW(run_fleet(spec, other_layout), ModelError);
  std::remove(ckpt.c_str());
}

// ---------------------------------------------------------------- oracles

TEST(FleetOracle, PlantedCorruptionIsFlaggedExactly) {
  const ScenarioSpec spec = tiny_spec();
  FleetOptions opts;
  opts.corrupt_instance = 17;  // arbitrary global index inside [0, 80)
  const FleetRunResult run = run_fleet(spec, opts);
  ASSERT_EQ(run.aggregates.divergences.size(), 1u)
      << run.aggregates.to_json().dump(2);
  const DivergenceRecord& rec = run.aggregates.divergences[0];
  EXPECT_EQ(rec.global_index, 17u);
  EXPECT_EQ(rec.oracle, "parallel");
  EXPECT_EQ(rec.cell_index, 17u / spec.instances_per_cell);
  EXPECT_EQ(rec.instance_index, 17u % spec.instances_per_cell);
  EXPECT_EQ(rec.seed, spec.instance_seed(rec.cell_index, rec.instance_index));
  // The per-cell counter agrees with the global record list.
  EXPECT_EQ(run.aggregates.cells[rec.cell_index].divergences, 1u);
}

TEST(FleetOracle, CorruptionIsCaughtFromACheckpointResumeToo) {
  // Divergence records survive the checkpoint round-trip byte-exactly.
  const ScenarioSpec spec = tiny_spec();
  const std::string ckpt = temp_path("rtlb_fleet_corrupt.ckpt");
  std::remove(ckpt.c_str());

  FleetOptions direct;
  direct.corrupt_instance = 5;
  const std::string expected = report_bytes(spec, run_fleet(spec, direct));

  FleetOptions staged = direct;
  staged.checkpoint_path = ckpt;
  staged.checkpoint_every = 11;
  staged.stop_after = 22;
  run_fleet(spec, staged);
  staged.stop_after = 0;
  EXPECT_EQ(report_bytes(spec, run_fleet(spec, staged)), expected);
  std::remove(ckpt.c_str());
}

TEST(FleetOracle, MinimizerWritesAParseableSmallerReproducer) {
  const ScenarioSpec spec = tiny_spec();
  const std::string dir = temp_path("rtlb_fleet_repro");
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);

  FleetOptions opts;
  opts.corrupt_instance = 17;
  opts.repro_dir = dir;
  const FleetRunResult run = run_fleet(spec, opts);
  ASSERT_EQ(run.aggregates.divergences.size(), 1u);
  const DivergenceRecord& rec = run.aggregates.divergences[0];
  ASSERT_FALSE(rec.reproducer.empty());

  std::ifstream in(rec.reproducer);
  ASSERT_TRUE(in.good()) << rec.reproducer;
  const ProblemInstance repro = parse_instance(in);
  const ProblemInstance original =
      generate_workload(spec.instance_params(spec.cells()[rec.cell_index],
                                             rec.instance_index));
  EXPECT_LE(repro.app->num_tasks(), original.app->num_tasks());
  EXPECT_GE(repro.app->num_tasks(), 1u);
  std::filesystem::remove_all(dir);
}

// ---------------------------------------------------------------------------
// Regression pins for divergences the first 10^5-instance run surfaced.

TEST(FleetRegression, CommittedReproducersStayWarmColdIdentical) {
  // Both committed reproducers hit the same root cause: a session query
  // refused by the structural lint gate used to commit empty slices for the
  // skipped model-interpreting passes, so the next clean query served a
  // wiped platform-coverage slice and its warnings vanished from the
  // report. This drives exactly the fleet's session-oracle delta cycle
  // (mutate comp into a structural error, revert, re-query) and requires
  // the warm report to reproduce the cold one byte-for-byte.
  const char* files[] = {"fleet_session_slice_a.rtlb", "fleet_session_slice_b.rtlb"};
  for (const char* name : files) {
    const std::string path =
        std::string(RTLB_SOURCE_DIR) + "/examples/instances/bad/" + name;
    std::ifstream in(path);
    ASSERT_TRUE(in.good()) << path;
    ProblemInstance inst = parse_instance(in);
    const DedicatedPlatform* platform =
        inst.platform.num_node_types() > 0 ? &inst.platform : nullptr;

    AnalysisOptions base;
    base.model = platform != nullptr ? SystemModel::Dedicated : SystemModel::Shared;
    base.lower_bound.num_threads = 1;
    base.lint_level = LintLevel::kReport;
    base.emit_certificates = true;

    const AnalysisResult cold = analyze(*inst.app, base, platform);
    // The pass whose slice was wiped must have something to lose.
    ASSERT_NE(report_json(*inst.app, cold).dump().find("\"RTLB-W201\""),
              std::string::npos)
        << name;

    AnalysisSession session(*inst.app, base, platform);
    session.analyze();
    const Time c0 = inst.app->task(0).comp;
    session.set_comp(0, c0 > 1 ? c0 - 1 : c0 + 1);
    EXPECT_THROW(session.analyze(), ModelError) << name;  // structural refusal
    session.set_comp(0, c0);
    const AnalysisResult& warm = session.analyze();
    EXPECT_EQ(report_json(*inst.app, warm).dump(),
              report_json(*inst.app, cold).dump())
        << name;
  }
}

}  // namespace
}  // namespace rtlb
