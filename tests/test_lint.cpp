#include <gtest/gtest.h>

#include <fstream>
#include <random>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "src/core/analysis.hpp"
#include "src/lint/absint.hpp"
#include "src/lint/fixit.hpp"
#include "src/lint/linter.hpp"
#include "src/lint/passes.hpp"
#include "src/lint/recurrent.hpp"
#include "src/model/io.hpp"
#include "src/workload/paper_example.hpp"
#include "src/workload/taskset_gen.hpp"
#include "src/workload/workload.hpp"

namespace rtlb {
namespace {

std::set<std::string> codes_of(const LintResult& result) {
  std::set<std::string> codes;
  for (const Diagnostic& d : result.diagnostics) codes.insert(d.code);
  return codes;
}

int count_code(const LintResult& result, std::string_view code) {
  int n = 0;
  for (const Diagnostic& d : result.diagnostics) n += d.code == code;
  return n;
}

/// The running union of every code produced anywhere in this file; the
/// EveryRegisteredCodeIsExercised test checks it against the registry.
std::set<std::string>& exercised() {
  static std::set<std::string> codes;
  return codes;
}

LintResult lint_and_track(const Application& app, const DedicatedPlatform* platform = nullptr,
                          const SourceMap* lines = nullptr, const LintOptions& options = {}) {
  LintResult result = lint(app, platform, lines, options);
  for (const std::string& c : codes_of(result)) exercised().insert(c);
  return result;
}

Task make_task(std::string name, Time comp, Time release, Time deadline, ResourceId proc,
               std::vector<ResourceId> resources = {}) {
  Task t;
  t.name = std::move(name);
  t.comp = comp;
  t.release = release;
  t.deadline = deadline;
  t.proc = proc;
  t.resources = std::move(resources);
  return t;
}

class LintTest : public ::testing::Test {
 protected:
  LintTest() : app_(catalog_) {
    cpu_ = catalog_.add_processor_type("CPU", 10);
    dsp_ = catalog_.add_processor_type("DSP", 25);
    camera_ = catalog_.add_resource("camera", 30);
  }

  ResourceCatalog catalog_;
  Application app_;
  ResourceId cpu_, dsp_, camera_;
};

TEST(DiagnosticRegistry, CodesAreUniqueAndSeverityMatchesLetter) {
  std::set<std::string> seen;
  for (const DiagInfo& info : all_diag_info()) {
    EXPECT_TRUE(seen.insert(info.code).second) << info.code;
    ASSERT_EQ(std::string(info.code).size(), 9u) << info.code;
    const char letter = info.code[5];  // RTLB-X###
    switch (info.severity) {
      case Severity::kError: EXPECT_EQ(letter, 'E') << info.code; break;
      case Severity::kWarning: EXPECT_EQ(letter, 'W') << info.code; break;
      case Severity::kNote: EXPECT_EQ(letter, 'N') << info.code; break;
    }
    const DiagInfo* found = diag_info(info.code);
    ASSERT_NE(found, nullptr);
    EXPECT_EQ(found, &info);
    EXPECT_GT(std::string(info.summary).size(), 0u);
    EXPECT_GT(std::string(info.fixit).size(), 0u);
  }
  EXPECT_EQ(diag_info("RTLB-E999"), nullptr);
}

TEST_F(LintTest, StructuralPassFlagsEveryViolation) {
  app_.add_task(make_task("zero-comp", 0, 0, 10, cpu_));                  // E001
  app_.add_task(make_task("bad-proc", 1, 0, 10, 99));                     // E002
  app_.add_task(make_task("res-as-proc", 1, 0, 10, camera_));             // E003
  app_.add_task(make_task("bad-res", 1, 0, 10, cpu_, {99}));              // E004
  app_.add_task(make_task("proc-in-res", 1, 0, 10, cpu_, {dsp_}));        // E005
  app_.add_task(make_task("zero-comp", 1, 0, 10, cpu_));                  // E006 (duplicate)
  const TaskId a = app_.add_task(make_task("a", 1, 0, 10, cpu_));
  const TaskId b = app_.add_task(make_task("b", 1, 0, 10, cpu_));
  app_.add_edge(a, b, 1);
  app_.add_edge(b, a, 1);                                                 // E007
  app_.add_task(make_task("inverted", 1, 9, 3, cpu_));                    // E008
  app_.add_task(make_task("tight", 5, 8, 10, cpu_));                      // E009

  const LintResult result = lint_and_track(app_);
  const std::set<std::string> expected{"RTLB-E001", "RTLB-E002", "RTLB-E003", "RTLB-E004",
                                       "RTLB-E005", "RTLB-E006", "RTLB-E007", "RTLB-E008",
                                       "RTLB-E009"};
  EXPECT_EQ(codes_of(result), expected);
  EXPECT_EQ(result.errors, 9);
  // Structurally broken instances run no model-interpreting pass.
  EXPECT_EQ(result.warnings, 0);
  EXPECT_EQ(result.notes, 0);
}

TEST_F(LintTest, ValidateDelegatesAndKeepsWording) {
  app_.add_task(make_task("bad", 0, 0, 10, cpu_));
  try {
    app_.validate();
    FAIL() << "validate() did not throw";
  } catch (const ModelError& e) {
    EXPECT_STREQ(e.what(), "task 'bad' (#0): computation time must be positive");
  }

  Application cyclic(catalog_);
  const TaskId a = cyclic.add_task(make_task("a", 1, 0, 10, cpu_));
  const TaskId b = cyclic.add_task(make_task("b", 1, 0, 10, cpu_));
  cyclic.add_edge(a, b, 0);
  cyclic.add_edge(b, a, 0);
  try {
    cyclic.validate();
    FAIL() << "validate() did not throw";
  } catch (const ModelError& e) {
    EXPECT_STREQ(e.what(), "precedence graph has a cycle");
  }

  Application tight(catalog_);
  tight.add_task(make_task("tight", 5, 8, 10, cpu_));
  try {
    tight.validate();
    FAIL() << "validate() did not throw";
  } catch (const ModelError& e) {
    EXPECT_STREQ(e.what(), "task 'tight' (#0): window [rel, D] shorter than computation time");
  }
}

TEST_F(LintTest, TemporalPassCertifiesWindowCollapse) {
  // Case 1 of examples/infeasibility_triage.cpp: the chain
  // capture(4) + msg(3) + detect(9) + msg(2) + alert(2) = 20 > deadline 16.
  const TaskId capture = app_.add_task(make_task("capture", 4, 0, 40, cpu_, {camera_}));
  const TaskId detect = app_.add_task(make_task("detect", 9, 0, 40, dsp_));
  const TaskId alert = app_.add_task(make_task("alert", 2, 0, 16, cpu_));
  app_.add_edge(capture, detect, 3);
  app_.add_edge(detect, alert, 2);

  const LintResult result = lint_and_track(app_);
  EXPECT_TRUE(result.has_errors());
  EXPECT_GE(count_code(result, "RTLB-E101"), 1);
  bool alert_flagged = false;
  for (const Diagnostic& d : result.diagnostics) {
    alert_flagged |= d.code == "RTLB-E101" && d.task == alert;
  }
  EXPECT_TRUE(alert_flagged);
}

TEST_F(LintTest, TemporalPassWarnsOnZeroSlackNonPreemptive) {
  app_.add_task(make_task("exact", 5, 0, 5, cpu_));  // window exactly C, not preemptive
  const LintResult result = lint_and_track(app_);
  EXPECT_FALSE(result.has_errors());
  EXPECT_EQ(count_code(result, "RTLB-W102"), 1);

  // The same window on a preemptive task gets the W103 sibling instead: the
  // window is saturated, so preemption offers no real flexibility.
  Application preemptible(catalog_);
  Task t = make_task("exact", 5, 0, 5, cpu_);
  t.preemptive = true;
  preemptible.add_task(t);
  const LintResult tight = lint_and_track(preemptible);
  EXPECT_EQ(count_code(tight, "RTLB-W102"), 0);
  EXPECT_EQ(count_code(tight, "RTLB-W103"), 1);
  EXPECT_FALSE(tight.has_errors());
}

TEST_F(LintTest, PlatformCoverageChecks) {
  app_.add_task(make_task("capture", 4, 0, 40, cpu_, {camera_}));
  // dsp_ is declared but unused -> W201.
  const LintResult shared = lint_and_track(app_);
  EXPECT_EQ(count_code(shared, "RTLB-W201"), 1);
  EXPECT_FALSE(shared.has_errors());

  DedicatedPlatform platform;
  platform.add_node_type(NodeType{"bare", cpu_, {}, 12});
  const LintResult dedicated = lint_and_track(app_, &platform);
  EXPECT_EQ(count_code(dedicated, "RTLB-E202"), 1);  // capture has no host
  EXPECT_EQ(count_code(dedicated, "RTLB-W203"), 1);  // 'bare' hosts nothing
  EXPECT_TRUE(dedicated.has_errors());

  platform.add_node_type(NodeType{"cpu+camera", cpu_, {{camera_, 1}}, 45});
  const LintResult fixed = lint_and_track(app_, &platform);
  EXPECT_EQ(count_code(fixed, "RTLB-E202"), 0);
  EXPECT_EQ(count_code(fixed, "RTLB-W203"), 1);  // 'bare' still hosts nothing
}

TEST_F(LintTest, NumericSafetyChecks) {
  for (int k = 0; k < 5; ++k) {
    app_.add_task(make_task("t" + std::to_string(k), kTimeMax, 0, kTimeMax, cpu_));
  }
  app_.add_task(make_task("big", 1, 0, 2 * kTimeMax, cpu_));
  const LintResult result = lint_and_track(app_);
  EXPECT_GE(count_code(result, "RTLB-E301"), 1);  // 5 * kTimeMax overflows
  EXPECT_EQ(count_code(result, "RTLB-W302"), 1);  // 'big' deadline beyond kTimeMax
  // With windows uncomputable, the temporal pass must not fire (or crash).
  EXPECT_EQ(count_code(result, "RTLB-E101"), 0);
}

TEST_F(LintTest, HygieneChecks) {
  const TaskId a = app_.add_task(make_task("a", 2, 0, 20, cpu_));
  const TaskId b = app_.add_task(make_task("b", 2, 0, 20, cpu_));
  app_.add_task(make_task("island", 2, 0, 20, cpu_));  // W401
  app_.add_edge(a, b, 0);                              // N402
  const LintResult result = lint_and_track(app_);
  EXPECT_EQ(count_code(result, "RTLB-W401"), 1);
  EXPECT_EQ(count_code(result, "RTLB-N402"), 1);
  EXPECT_GE(count_code(result, "RTLB-N403"), 1);  // ST_CPU is one block
  EXPECT_FALSE(result.has_errors());

  // An application with no edges at all is a plain independent task set;
  // nothing is "isolated" relative to a precedence structure.
  Application independent(catalog_);
  independent.add_task(make_task("x", 2, 0, 20, cpu_));
  independent.add_task(make_task("y", 2, 0, 20, cpu_));
  EXPECT_EQ(count_code(lint_and_track(independent), "RTLB-W401"), 0);
}

TEST_F(LintTest, AbsIntWarnsWhenWideFanInMayOverflow) {
  // A diamond with 8 parallel middle tasks: the EST upper envelope at the
  // sink adds EVERY predecessor's computation (any subset might merge), so
  // est_hi ~ 8 * kTimeMax/3 > kSafeTime, while the lower envelope (one
  // chain) stays tiny -- the interpretation cannot prove safety but cannot
  // prove overflow either: W311, not E310.
  const TaskId src = app_.add_task(make_task("src", 1, 0, kTimeMax, cpu_));
  const TaskId sink = app_.add_task(make_task("sink", 1, 0, kTimeMax, cpu_));
  for (int k = 0; k < 8; ++k) {
    const TaskId mid =
        app_.add_task(make_task("mid" + std::to_string(k), kTimeMax / 3, 0, kTimeMax, cpu_));
    app_.add_edge(src, mid, 0);
    app_.add_edge(mid, sink, 0);
  }
  const LintResult result = lint_and_track(app_);
  EXPECT_EQ(count_code(result, "RTLB-E310"), 0);
  EXPECT_EQ(count_code(result, "RTLB-E301"), 0);  // exact demand sum fits
  EXPECT_EQ(count_code(result, "RTLB-W311"), 1);
  EXPECT_EQ(abstract_interpret(app_).verdict, AbsVerdict::kMayOverflow);
}

TEST_F(LintTest, AbsIntWarnsWhenCostEnvelopeMayOverflow) {
  // Cost accumulation envelope: |cost_r| * demand_r overflows int64 long
  // before the Time-range guards (demand itself is tiny).
  ResourceCatalog cat;
  const ResourceId cpu = cat.add_processor_type("CPU", 1);
  const ResourceId sensor = cat.add_resource("sensor", kTimeMax);
  Application pricey(cat);
  pricey.add_task(make_task("t", 100, 0, 1000, cpu, {sensor}));
  const LintResult result = lint_and_track(pricey);
  EXPECT_EQ(count_code(result, "RTLB-W312"), 1);
  EXPECT_EQ(count_code(result, "RTLB-E301"), 0);
  EXPECT_TRUE(abstract_interpret(pricey).cost_may_overflow);
}

TEST_F(LintTest, DataflowNamesTheChainDeterminingAWindow) {
  // b's window is fully inherited: est(b) = 3 > rel 0 through a, and
  // lct(b) = 15 < D = 100 through c -- N422 names the a -> b -> c chain.
  const TaskId a = app_.add_task(make_task("a", 2, 0, 100, cpu_));
  const TaskId b = app_.add_task(make_task("b", 3, 0, 100, cpu_));
  const TaskId c = app_.add_task(make_task("c", 4, 0, 20, cpu_));
  app_.add_edge(a, b, 1);
  app_.add_edge(b, c, 1);
  const LintResult result = lint_and_track(app_);
  ASSERT_EQ(count_code(result, "RTLB-N422"), 1);
  for (const Diagnostic& d : result.diagnostics) {
    if (d.code != "RTLB-N422") continue;
    EXPECT_EQ(d.task, b);
    EXPECT_NE(d.message.find("a -> b -> c"), std::string::npos) << d.message;
  }
}

TEST_F(LintTest, MaxErrorsCapAndWerror) {
  for (int k = 0; k < 4; ++k) {
    app_.add_task(make_task("t" + std::to_string(k), 0, 0, 10, cpu_));  // 4x E001
  }
  const LintResult capped = lint_and_track(app_, nullptr, nullptr, {.max_errors = 2});
  EXPECT_EQ(capped.errors, 2);
  EXPECT_TRUE(capped.truncated);
  EXPECT_EQ(capped.diagnostics.size(), 2u);

  Application warny(catalog_);
  warny.add_task(make_task("only-cpu", 2, 0, 20, cpu_));  // dsp_, camera_ unused -> 2x W201
  const LintResult plain = lint_and_track(warny);
  EXPECT_EQ(plain.errors, 0);
  EXPECT_EQ(plain.warnings, 2);
  const LintResult werror = lint_and_track(warny, nullptr, nullptr, {.werror = true});
  EXPECT_EQ(werror.errors, 2);
  EXPECT_EQ(werror.warnings, 0);
}

TEST_F(LintTest, GoldenTextOutput) {
  app_.add_task(make_task("tight", 5, 8, 10, cpu_));
  const LintResult result = lint_and_track(app_);
  EXPECT_EQ(format_lint_text(result, "f.rtlb"),
            "f.rtlb: error: task 'tight' (#0): window [rel, D] shorter than computation time"
            " [RTLB-E009]\n"
            "  hint: relax the deadline or release so that deadline - rel >= comp\n"
            "1 error(s), 0 warning(s), 0 note(s)\n");
}

TEST_F(LintTest, GoldenJsonOutput) {
  app_.add_task(make_task("tight", 5, 8, 10, cpu_));
  LintResult result = lint_and_track(app_);
  result.diagnostics[0].hint.clear();  // keep the golden line readable
  EXPECT_EQ(lint_json(result).dump(),
            "{\"errors\":1,\"warnings\":0,\"notes\":0,\"truncated\":false,"
            "\"diagnostics\":[{\"code\":\"RTLB-E009\",\"severity\":\"error\","
            "\"subject\":\"task 'tight' (#0)\","
            "\"message\":\"window [rel, D] shorter than computation time\","
            "\"hint\":\"\",\"line\":0}]}");
}

TEST_F(LintTest, PreflightGateRefusesAndRecords) {
  // Window-collapse chain: a semantic (E1xx) error, structurally fine.
  const TaskId a = app_.add_task(make_task("a", 4, 0, 40, cpu_));
  const TaskId b = app_.add_task(make_task("b", 2, 0, 5, cpu_));
  app_.add_edge(a, b, 3);  // 4 + 3 + 2 = 9 > 5

  AnalysisOptions off;  // kOff: the historical pipeline analyzes it
  const AnalysisResult loose = analyze(app_, off);
  EXPECT_TRUE(loose.infeasible(app_));
  EXPECT_FALSE(loose.lint.has_value());

  AnalysisOptions report;
  report.lint_level = LintLevel::kReport;  // records, analyzes anyway
  const AnalysisResult recorded = analyze(app_, report);
  ASSERT_TRUE(recorded.lint.has_value());
  EXPECT_GE(count_code(*recorded.lint, "RTLB-E101"), 1);
  EXPECT_EQ(recorded.bounds.size(), loose.bounds.size());

  AnalysisOptions gate;
  gate.lint_level = LintLevel::kErrors;  // refuses
  try {
    analyze(app_, gate);
    FAIL() << "gate did not refuse";
  } catch (const LintGateError& e) {
    EXPECT_TRUE(e.result().has_errors());
    EXPECT_GE(count_code(e.result(), "RTLB-E101"), 1);
    EXPECT_NE(std::string(e.what()).find("RTLB-E101"), std::string::npos);
  }

  // kWarnings refuses instances that only warn (unused 'dsp'/'camera').
  Application warny(catalog_);
  warny.add_task(make_task("w", 2, 0, 20, cpu_));
  AnalysisOptions strict;
  strict.lint_level = LintLevel::kWarnings;
  EXPECT_THROW(analyze(warny, strict), LintGateError);
  AnalysisOptions errors_only;
  errors_only.lint_level = LintLevel::kErrors;
  EXPECT_NO_THROW(analyze(warny, errors_only));

  // Structural breakage is refused even at kReport (validate()'s refusal
  // set, batched).
  Application broken(catalog_);
  broken.add_task(make_task("zero", 0, 0, 10, cpu_));
  EXPECT_THROW(analyze(broken, report), LintGateError);
}

TEST(LintGate, CleanInstanceBoundsAreIdenticalOnAndOff) {
  ProblemInstance inst = paper_example();
  AnalysisOptions off;
  AnalysisOptions gated;
  gated.lint_level = LintLevel::kErrors;
  const AnalysisResult base = analyze(*inst.app, off, &inst.platform);
  const AnalysisResult checked = analyze(*inst.app, gated, &inst.platform);
  ASSERT_EQ(base.bounds.size(), checked.bounds.size());
  for (std::size_t i = 0; i < base.bounds.size(); ++i) {
    EXPECT_EQ(base.bounds[i].resource, checked.bounds[i].resource);
    EXPECT_EQ(base.bounds[i].bound, checked.bounds[i].bound);
    EXPECT_EQ(base.bounds[i].peak_density.num, checked.bounds[i].peak_density.num);
    EXPECT_EQ(base.bounds[i].peak_density.den, checked.bounds[i].peak_density.den);
    EXPECT_EQ(base.bounds[i].witness_t1, checked.bounds[i].witness_t1);
    EXPECT_EQ(base.bounds[i].witness_t2, checked.bounds[i].witness_t2);
    EXPECT_EQ(base.bounds[i].witness_demand, checked.bounds[i].witness_demand);
    EXPECT_EQ(base.bounds[i].intervals_evaluated, checked.bounds[i].intervals_evaluated);
  }
  EXPECT_EQ(base.shared_cost.total, checked.shared_cost.total);
  ASSERT_TRUE(checked.lint.has_value());
  EXPECT_FALSE(checked.lint->has_errors());
}

TEST(LintProperty, GeneratedInstancesNeverTripTheGate) {
  for (const GraphShape shape : {GraphShape::Layered, GraphShape::ForkJoin,
                                 GraphShape::SeriesParallel, GraphShape::Random}) {
    for (std::uint64_t seed = 1; seed <= 8; ++seed) {
      WorkloadParams params;
      params.seed = seed;
      params.shape = shape;
      params.num_tasks = 16;
      ProblemInstance inst = generate_workload(params);
      const LintResult result = lint(*inst.app, &inst.platform, &inst.lines);
      EXPECT_FALSE(result.has_errors())
          << "seed " << seed << " shape " << static_cast<int>(shape) << ":\n"
          << format_lint_text(result);

      AnalysisOptions gated;
      gated.lint_level = LintLevel::kErrors;
      AnalysisResult checked;
      ASSERT_NO_THROW(checked = analyze(*inst.app, gated, &inst.platform));
      const AnalysisResult base = analyze(*inst.app, {}, &inst.platform);
      ASSERT_EQ(base.bounds.size(), checked.bounds.size());
      for (std::size_t i = 0; i < base.bounds.size(); ++i) {
        EXPECT_EQ(base.bounds[i].bound, checked.bounds[i].bound);
        EXPECT_EQ(base.bounds[i].witness_t1, checked.bounds[i].witness_t1);
        EXPECT_EQ(base.bounds[i].witness_t2, checked.bounds[i].witness_t2);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// The shipped bad-instance corpus (examples/instances/bad), shared with
// examples/infeasibility_triage.cpp and the rtlb_lint CLI.

LintResult lint_corpus_file(const std::string& name) {
  const std::string path = std::string(RTLB_SOURCE_DIR) + "/examples/instances/bad/" + name;
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << path;
  ProblemInstance inst = parse_instance(in, ParseOptions{.validate = false});
  const DedicatedPlatform* platform =
      inst.platform.num_node_types() > 0 ? &inst.platform : nullptr;
  LintResult result = lint(*inst.app, platform, &inst.lines);
  for (const std::string& c : codes_of(result)) exercised().insert(c);
  return result;
}

TEST(LintCorpus, EachBadInstanceCarriesItsExpectedCode) {
  struct Case {
    const char* file;
    const char* code;
    bool is_error;
  };
  const Case cases[] = {
      {"window_collapse.rtlb", "RTLB-E101", true},
      {"camera_contention.rtlb", "RTLB-W201", false},
      {"camera_contention.rtlb", "RTLB-N403", false},
      {"no_host.rtlb", "RTLB-E202", true},
      {"no_host.rtlb", "RTLB-W203", false},
      {"cycle.rtlb", "RTLB-E007", true},
      {"tight_window.rtlb", "RTLB-E008", true},
      {"tight_window.rtlb", "RTLB-E009", true},
      {"tight_preemptive.rtlb", "RTLB-W103", false},
      {"overflow.rtlb", "RTLB-E301", true},
      {"overflow.rtlb", "RTLB-W302", false},
      {"overflow_chain.rtlb", "RTLB-E310", true},
      {"overflow_chain.rtlb", "RTLB-W312", false},
      {"redundant_edge.rtlb", "RTLB-N421", false},
      {"dead_latency.rtlb", "RTLB-N423", false},
  };
  for (const Case& c : cases) {
    const LintResult result = lint_corpus_file(c.file);
    EXPECT_GE(count_code(result, c.code), 1) << c.file << " should carry " << c.code;
    if (c.is_error) {
      EXPECT_TRUE(result.has_errors()) << c.file;
    }
  }
}

TEST(LintCorpus, ErrorDiagnosticsOnTasksCarrySourceLines) {
  const LintResult result = lint_corpus_file("window_collapse.rtlb");
  ASSERT_TRUE(result.has_errors());
  for (const Diagnostic& d : result.diagnostics) {
    if (d.task != kInvalidTask) {
      EXPECT_GT(d.line, 0) << d.code;
    }
  }
}

TEST(LintCorpus, UnparseableInstanceBecomesE000) {
  const std::string path =
      std::string(RTLB_SOURCE_DIR) + "/examples/instances/bad/parse_error.rtlb";
  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << path;
  // The CLI maps the parse throw onto a synthetic RTLB-E000 finding; do the
  // same here so the corpus covers the code.
  LintResult result;
  DiagnosticSink sink(result, {});
  try {
    parse_instance(in, ParseOptions{.validate = false});
    FAIL() << "parse_error.rtlb parsed unexpectedly";
  } catch (const ModelError& e) {
    Diagnostic d = sink.make("RTLB-E000", "", e.what());
    d.line = 3;
    sink.emit(std::move(d));
  }
  EXPECT_EQ(count_code(result, "RTLB-E000"), 1);
  EXPECT_TRUE(result.has_errors());
  for (const std::string& c : codes_of(result)) exercised().insert(c);
}

TEST(LintCorpus, SourceMapRecordsDeclarationLines) {
  const std::string text =
      "proctype P1 cost 1\n"
      "# comment\n"
      "resource cam cost 7\n"
      "task a comp 1 deadline 10 proc P1 res cam\n"
      "task b comp 1 deadline 10 proc P1\n"
      "\n"
      "edge a b msg 2\n"
      "node N1 cost 3 proc P1 res cam:1\n";
  ProblemInstance inst = parse_instance_string(text);
  EXPECT_EQ(inst.lines.resource_line(0), 1);  // proctype P1
  EXPECT_EQ(inst.lines.resource_line(1), 3);  // resource cam
  EXPECT_EQ(inst.lines.task_line(0), 4);
  EXPECT_EQ(inst.lines.task_line(1), 5);
  EXPECT_EQ(inst.lines.edge_line(0, 1), 7);
  EXPECT_EQ(inst.lines.node_line(0), 8);
  EXPECT_EQ(inst.lines.task_line(99), 0);   // unknown ids map to "no line"
  EXPECT_EQ(inst.lines.resource_line(99), 0);
  EXPECT_EQ(inst.lines.edge_line(1, 0), 0);
}

// ---------------------------------------------------------------------------
// Fix-it round trips over the shipped corpus: applying every carried fix
// must re-parse, strictly reduce the finding count, and reach a fixed point
// in one step (the second application changes nothing).

TEST(LintFixCorpus, FixRoundTripIsMonotoneAndIdempotent) {
  const char* files[] = {"camera_contention.rtlb", "cycle.rtlb",
                         "dead_latency.rtlb",      "no_host.rtlb",
                         "overflow.rtlb",          "overflow_chain.rtlb",
                         "redundant_edge.rtlb",    "tight_preemptive.rtlb",
                         "tight_window.rtlb",      "window_collapse.rtlb"};
  int changed_files = 0;
  for (const char* name : files) {
    const std::string path =
        std::string(RTLB_SOURCE_DIR) + "/examples/instances/bad/" + name;
    std::ifstream in(path);
    ASSERT_TRUE(in.good()) << path;
    std::ostringstream buf;
    buf << in.rdbuf();
    const std::string text = buf.str();
    ProblemInstance inst = parse_instance_string(text, ParseOptions{.validate = false});
    const DedicatedPlatform* platform =
        inst.platform.num_node_types() > 0 ? &inst.platform : nullptr;
    const LintResult before = lint(*inst.app, platform, &inst.lines);
    for (const std::string& c : codes_of(before)) exercised().insert(c);
    const FixApplication fixed = apply_fixes(text, before);
    EXPECT_EQ(fixed.skipped_conflict, 0) << name;
    if (!fixed.changed()) {
      EXPECT_EQ(fixed.text, text) << name;
      continue;
    }
    ++changed_files;
    ProblemInstance repaired;
    try {
      repaired = parse_instance_string(fixed.text, ParseOptions{.validate = false});
    } catch (const ModelError& e) {
      FAIL() << name << ": repaired text no longer parses: " << e.what() << "\n"
             << fixed.text;
    }
    const DedicatedPlatform* rplatform =
        repaired.platform.num_node_types() > 0 ? &repaired.platform : nullptr;
    const LintResult after = lint(*repaired.app, rplatform, &repaired.lines);
    for (const std::string& c : codes_of(after)) exercised().insert(c);
    EXPECT_LT(after.diagnostics.size(), before.diagnostics.size()) << name;
    const FixApplication again = apply_fixes(fixed.text, after);
    EXPECT_EQ(again.applied, 0) << name;
    EXPECT_EQ(again.text, fixed.text) << name;
  }
  // The corpus keeps a healthy fixable share; update when it grows.
  EXPECT_EQ(changed_files, 6);
}

// ---------------------------------------------------------------------------
// The recurrent half of the corpus (RTLB-E5xx / RTLB-W5xx): template-level
// findings, produced BEFORE lowering. The helpers mirror the CLI flow
// exactly -- template errors report the template batch alone (lowering a
// broken template would throw, and the flat passes would mis-judge
// declarations the templates use); clean templates are lowered and the flat
// batch is spliced behind the template one.

LintResult lint_workload_and_track(const ResourceCatalog& catalog, const Workload& workload,
                                   const DedicatedPlatform* platform = nullptr) {
  LintResult result = lint_workload(catalog, workload, platform);
  for (const std::string& c : codes_of(result)) exercised().insert(c);
  return result;
}

LintResult lint_recurrent_text(const std::string& text) {
  ProblemInstance inst = parse_instance_string(text, ParseOptions{.validate = false});
  const DedicatedPlatform* platform =
      inst.platform.num_node_types() > 0 ? &inst.platform : nullptr;
  LintResult templates = lint_workload(*inst.catalog, inst.workload, platform);
  if (templates.errors == 0 && !inst.workload.empty()) {
    lower_instance(inst, LowerOptions{.chain_instances = true, .validate = false});
    templates = merge_lint_results(std::move(templates),
                                   lint(*inst.app, platform, &inst.lines));
  }
  for (const std::string& c : codes_of(templates)) exercised().insert(c);
  return templates;
}

std::string read_bad_corpus_file(const std::string& name) {
  const std::string path = std::string(RTLB_SOURCE_DIR) + "/examples/instances/bad/" + name;
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

TEST(RecurrentLintCorpus, EachBadTemplateCarriesItsExpectedCode) {
  struct Case {
    const char* file;
    const char* code;
    bool is_error;
  };
  const Case cases[] = {
      {"period_zero.rtlb", "RTLB-E501", true},
      {"offset_outside.rtlb", "RTLB-E502", true},
      {"late_release.rtlb", "RTLB-E502", true},
      {"deadline_overrun.rtlb", "RTLB-E503", true},
      {"template_window.rtlb", "RTLB-E504", true},
      {"sporadic_unbounded.rtlb", "RTLB-E505", true},
      {"template_cycle.rtlb", "RTLB-E506", true},
      {"template_empty.rtlb", "RTLB-E507", true},
      {"hyperperiod_overflow.rtlb", "RTLB-E508", true},
      {"overutilized.rtlb", "RTLB-W510", false},
  };
  for (const Case& c : cases) {
    const LintResult result = lint_recurrent_text(read_bad_corpus_file(c.file));
    EXPECT_GE(count_code(result, c.code), 1) << c.file << " should carry " << c.code;
    EXPECT_EQ(result.has_errors(), c.is_error) << c.file;
  }
}

TEST(RecurrentLintCorpus, TemplateDiagnosticsCarryDeclarationLines) {
  for (const char* file : {"period_zero.rtlb", "template_window.rtlb", "template_cycle.rtlb"}) {
    const LintResult result = lint_recurrent_text(read_bad_corpus_file(file));
    ASSERT_TRUE(result.has_errors()) << file;
    for (const Diagnostic& d : result.diagnostics) {
      if (d.severity == Severity::kError) {
        EXPECT_GT(d.line, 0) << file << " " << d.code;
      }
    }
  }
}

TEST(RecurrentLintCorpus, TemplateErrorsSuppressTheFlatBatch) {
  // The ttask lines reference proctype P1; were the flat passes run over the
  // empty lowered app, W201 "declared but unused" would appear (and its fix
  // would delete the declaration the templates need).
  const LintResult result = lint_recurrent_text(read_bad_corpus_file("period_zero.rtlb"));
  EXPECT_TRUE(result.has_errors());
  EXPECT_EQ(count_code(result, "RTLB-W201"), 0);
}

TEST_F(LintTest, RecurrentStructuralVariantsAllMapToE507) {
  const auto one_task_txn = [&](const std::string& name) {
    Transaction tr;
    tr.name = name;
    tr.period = 10;
    TemplateTask t;
    t.name = "job";
    t.comp = 2;
    t.proc = cpu_;
    tr.tasks.push_back(std::move(t));
    return tr;
  };

  {  // duplicate transaction names
    Workload w;
    w.transactions = {one_task_txn("dup"), one_task_txn("dup")};
    const LintResult r = lint_workload_and_track(catalog_, w);
    EXPECT_GE(count_code(r, "RTLB-E507"), 1);
  }
  {  // duplicate task names within one template
    Workload w;
    Transaction tr = one_task_txn("t");
    tr.tasks.push_back(tr.tasks[0]);
    w.transactions = {std::move(tr)};
    const LintResult r = lint_workload_and_track(catalog_, w);
    EXPECT_GE(count_code(r, "RTLB-E507"), 1);
  }
  {  // processor id that names a resource
    Workload w;
    Transaction tr = one_task_txn("t");
    tr.tasks[0].proc = camera_;
    w.transactions = {std::move(tr)};
    const LintResult r = lint_workload_and_track(catalog_, w);
    EXPECT_GE(count_code(r, "RTLB-E507"), 1);
  }
  {  // self-edge
    Workload w;
    Transaction tr = one_task_txn("t");
    tr.edges = {{0, 0, 1}};
    w.transactions = {std::move(tr)};
    const LintResult r = lint_workload_and_track(catalog_, w);
    EXPECT_GE(count_code(r, "RTLB-E507"), 1);
  }
  {  // negative message size
    Workload w;
    Transaction tr = one_task_txn("t");
    TemplateTask second = tr.tasks[0];
    second.name = "next";
    tr.tasks.push_back(std::move(second));
    tr.edges = {{0, 1, -3}};
    w.transactions = {std::move(tr)};
    const LintResult r = lint_workload_and_track(catalog_, w);
    EXPECT_GE(count_code(r, "RTLB-E507"), 1);
  }
  {  // non-positive template computation time reuses the flat E001
    Workload w;
    Transaction tr = one_task_txn("t");
    tr.tasks[0].comp = 0;
    w.transactions = {std::move(tr)};
    const LintResult r = lint_workload_and_track(catalog_, w);
    EXPECT_GE(count_code(r, "RTLB-E001"), 1);
  }
}

TEST_F(LintTest, CleanWorkloadLintsCleanAndValidateAgrees) {
  Workload w;
  Transaction tr;
  tr.name = "ctrl";
  tr.period = 20;
  TemplateTask a;
  a.name = "a";
  a.comp = 3;
  a.proc = cpu_;
  TemplateTask b = a;
  b.name = "b";
  b.relative_deadline = 15;
  tr.tasks = {a, b};
  tr.edges = {{0, 1, 2}};
  w.transactions = {tr};
  const LintResult r = lint_workload_and_track(catalog_, w);
  EXPECT_FALSE(r.has_errors()) << format_lint_text(r);
  EXPECT_NO_THROW(validate_workload(catalog_, w));

  // validate_workload surfaces the first lint error with the same wording.
  w.transactions[0].period = 0;
  const LintResult bad = lint_workload_and_track(catalog_, w);
  ASSERT_TRUE(bad.has_errors());
  try {
    validate_workload(catalog_, w);
    FAIL() << "validate_workload() did not throw";
  } catch (const ModelError& e) {
    const Diagnostic& first = bad.diagnostics[0];
    EXPECT_EQ(std::string(e.what()), first.subject + ": " + first.message);
  }
}

TEST(RecurrentLintFixCorpus, FixRoundTripReachesAnErrorFreeFixedPoint) {
  // The fixable half of the recurrent corpus. Unlike the flat round-trip
  // above, the diagnostic COUNT may grow after repair -- a repaired template
  // lowers, and the lowered instances flow through the flat passes, which
  // may now surface notes the broken template suppressed -- so the contract
  // here is: no errors remain, and the fix is a one-step fixed point.
  const char* files[] = {"period_zero.rtlb",       "offset_outside.rtlb",
                         "late_release.rtlb",      "deadline_overrun.rtlb",
                         "template_window.rtlb",   "sporadic_unbounded.rtlb"};
  for (const char* name : files) {
    const std::string text = read_bad_corpus_file(name);
    const LintResult before = lint_recurrent_text(text);
    ASSERT_TRUE(before.has_errors()) << name;
    const FixApplication fixed = apply_fixes(text, before);
    EXPECT_EQ(fixed.skipped_conflict, 0) << name;
    ASSERT_TRUE(fixed.changed()) << name;

    const LintResult after = lint_recurrent_text(fixed.text);
    EXPECT_EQ(after.errors, 0) << name << ":\n" << format_lint_text(after);
    const FixApplication again = apply_fixes(fixed.text, after);
    EXPECT_EQ(again.applied, 0) << name;
    EXPECT_EQ(again.text, fixed.text) << name;
  }
}

// ---------------------------------------------------------------------------
// The abstract-interpretation soundness contract, over the generator.

TEST(AbsIntProperty, NeverFlagsAnalyzableInstancesAndAlwaysFlagsOverflowChains) {
  // Soundness: instances analyze() completes on without overflow are proved
  // safe -- the E310 layer may not cry wolf.
  for (const GraphShape shape :
       {GraphShape::Layered, GraphShape::ForkJoin, GraphShape::Random}) {
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
      WorkloadParams params;
      params.seed = seed;
      params.shape = shape;
      params.num_tasks = 16;
      ProblemInstance inst = generate_workload(params);
      AnalysisOptions options;
      AnalysisResult base;
      ASSERT_NO_THROW(base = analyze(*inst.app, options, &inst.platform));
      EXPECT_EQ(abstract_interpret(*inst.app, &inst.platform).verdict,
                AbsVerdict::kProvedSafe)
          << "seed " << seed << " shape " << static_cast<int>(shape);
      EXPECT_EQ(count_code(lint_and_track(*inst.app, &inst.platform), "RTLB-E310"), 0);
    }
  }

  // Completeness on the provable side: chains whose MINIMUM possible sum
  // exceeds int64 (10 hops of comp >= kTimeMax/2) are flagged before
  // analyze() ever runs, at any seed.
  ResourceCatalog cat;
  const ResourceId cpu = cat.add_processor_type("CPU", 1);
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    std::mt19937_64 rng(seed);
    std::uniform_int_distribution<Time> comp(kTimeMax / 2, kTimeMax);
    Application chain(cat);
    TaskId prev = kInvalidTask;
    for (int k = 0; k < 11; ++k) {
      const TaskId t =
          chain.add_task(make_task("t" + std::to_string(k), comp(rng), 0, kTimeMax, cpu));
      if (k > 0) chain.add_edge(prev, t, 1);
      prev = t;
    }
    const LintResult result = lint_and_track(chain);
    EXPECT_GE(count_code(result, "RTLB-E310"), 1) << "seed " << seed;
    EXPECT_EQ(abstract_interpret(chain).verdict, AbsVerdict::kMustOverflow);
    AnalysisOptions gated;
    gated.lint_level = LintLevel::kErrors;
    EXPECT_THROW(analyze(chain, gated), LintGateError);
  }
}

// Must run after the scenario tests above (gtest runs tests in declaration
// order within a file): every registered code has been produced at least
// once by a real model or corpus file.
TEST(LintRegistryCoverage, EveryRegisteredCodeIsExercised) {
  for (const DiagInfo& info : all_diag_info()) {
    EXPECT_TRUE(exercised().count(info.code))
        << info.code << " is registered but no test produced it";
  }
}

}  // namespace
}  // namespace rtlb
