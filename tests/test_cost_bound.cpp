#include <gtest/gtest.h>

#include "src/core/analysis.hpp"
#include "src/core/cost_bound.hpp"

namespace rtlb {
namespace {

class CostBoundTest : public ::testing::Test {
 protected:
  CostBoundTest() : app_(cat_) {
    p1_ = cat_.add_processor_type("P1", 10);
    p2_ = cat_.add_processor_type("P2", 20);
    r_ = cat_.add_resource("r", 4);
  }

  void add(ResourceId proc, std::vector<ResourceId> res, Time comp, Time deadline) {
    Task t;
    t.name = "t" + std::to_string(app_.num_tasks());
    t.comp = comp;
    t.deadline = deadline;
    t.proc = proc;
    t.resources = std::move(res);
    app_.add_task(std::move(t));
  }

  ResourceCatalog cat_;
  Application app_;
  ResourceId p1_, p2_, r_;
};

TEST_F(CostBoundTest, SharedCostIsWeightedSum) {
  // Two P1 tasks forced parallel, one P2 task, r on one task.
  add(p1_, {r_}, 4, 4);
  add(p1_, {}, 4, 4);
  add(p2_, {}, 3, 9);
  const AnalysisResult res = analyze(app_);
  // LB: P1 = 2, P2 = 1, r = 1.
  EXPECT_EQ(res.bound_for(p1_), 2);
  EXPECT_EQ(res.bound_for(p2_), 1);
  EXPECT_EQ(res.bound_for(r_), 1);
  EXPECT_EQ(res.shared_cost.total, 2 * 10 + 1 * 20 + 1 * 4);
  ASSERT_EQ(res.shared_cost.terms.size(), 3u);
  EXPECT_EQ(res.shared_cost.terms[0].units, 2);
  EXPECT_EQ(res.shared_cost.terms[0].unit_cost, 10);
}

TEST_F(CostBoundTest, DedicatedIlpCoversBoundsAndHosting) {
  add(p1_, {r_}, 4, 4);
  add(p1_, {}, 4, 4);
  add(p2_, {}, 3, 9);
  DedicatedPlatform plat;
  plat.add_node_type(NodeType{"P1r", p1_, {{r_, 1}}, 14});
  plat.add_node_type(NodeType{"P1", p1_, {}, 10});
  plat.add_node_type(NodeType{"P2", p2_, {}, 20});

  AnalysisOptions opts;
  opts.model = SystemModel::Dedicated;
  const AnalysisResult res = analyze(app_, opts, &plat);
  ASSERT_TRUE(res.dedicated_cost.has_value());
  ASSERT_TRUE(res.dedicated_cost->feasible);
  // Need 2 P1 CPUs, one with r, and one P2: 14 + 10 + 20 = 44.
  EXPECT_EQ(res.dedicated_cost->total, 44);
  EXPECT_EQ(res.dedicated_cost->node_counts, (std::vector<std::int64_t>{1, 1, 1}));
}

TEST_F(CostBoundTest, DedicatedInfeasibleWhenNoHost) {
  add(p1_, {r_}, 2, 9);
  DedicatedPlatform plat;
  plat.add_node_type(NodeType{"bare", p1_, {}, 10});  // cannot host the r-task
  AnalysisOptions opts;
  opts.model = SystemModel::Dedicated;
  const AnalysisResult res = analyze(app_, opts, &plat);
  ASSERT_TRUE(res.dedicated_cost.has_value());
  EXPECT_FALSE(res.dedicated_cost->feasible);
}

TEST_F(CostBoundTest, DedicatedInfeasibleWhenResourceUnsupplied) {
  add(p1_, {r_}, 2, 9);
  add(p2_, {}, 2, 9);
  DedicatedPlatform plat;
  plat.add_node_type(NodeType{"P1r", p1_, {{r_, 1}}, 14});
  // No P2 node at all.
  AnalysisOptions opts;
  opts.model = SystemModel::Dedicated;
  const AnalysisResult res = analyze(app_, opts, &plat);
  ASSERT_TRUE(res.dedicated_cost.has_value());
  EXPECT_FALSE(res.dedicated_cost->feasible);
}

TEST_F(CostBoundTest, MultiUnitNodesReduceCount) {
  // Two concurrent r-tasks; a node carrying r:2 satisfies LB_r = 2 alone.
  add(p1_, {r_}, 4, 4);
  add(p1_, {r_}, 4, 4);
  DedicatedPlatform plat;
  plat.add_node_type(NodeType{"dual", p1_, {{r_, 2}}, 18});
  plat.add_node_type(NodeType{"single", p1_, {{r_, 1}}, 14});
  AnalysisOptions opts;
  opts.model = SystemModel::Dedicated;
  const AnalysisResult res = analyze(app_, opts, &plat);
  ASSERT_TRUE(res.dedicated_cost->feasible);
  // LB_P1 = 2 forces two nodes anyway; cheapest pair is 14 + 14 = 28.
  EXPECT_EQ(res.dedicated_cost->total, 28);
}

TEST_F(CostBoundTest, RelaxationNeverExceedsIlp) {
  add(p1_, {r_}, 4, 4);
  add(p1_, {}, 4, 4);
  add(p2_, {}, 3, 9);
  DedicatedPlatform plat;
  plat.add_node_type(NodeType{"P1r", p1_, {{r_, 1}}, 14});
  plat.add_node_type(NodeType{"P1", p1_, {}, 10});
  plat.add_node_type(NodeType{"P2", p2_, {}, 20});
  AnalysisOptions opts;
  opts.model = SystemModel::Dedicated;
  const AnalysisResult res = analyze(app_, opts, &plat);
  ASSERT_TRUE(res.dedicated_cost->feasible);
  EXPECT_LE(res.dedicated_cost->relaxation,
            static_cast<double>(res.dedicated_cost->total) + 1e-6);
}

TEST_F(CostBoundTest, AnalyzeRequiresPlatformForDedicated) {
  add(p1_, {}, 1, 9);
  AnalysisOptions opts;
  opts.model = SystemModel::Dedicated;
  EXPECT_THROW(analyze(app_, opts, nullptr), ModelError);
}

TEST_F(CostBoundTest, InfeasibleWindowsAreFlagged) {
  // A deadline chain that cannot be met: analysis still returns, and
  // infeasible() reports it.
  add(p1_, {}, 5, 20);
  add(p2_, {}, 5, 8);
  app_.add_edge(0, 1, 4);
  const AnalysisResult res = analyze(app_);
  EXPECT_TRUE(res.infeasible(app_));
}

}  // namespace
}  // namespace rtlb
