#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "src/common/csv.hpp"
#include "src/common/random.hpp"
#include "src/common/ratio.hpp"
#include "src/common/strings.hpp"
#include "src/common/table.hpp"
#include "src/common/types.hpp"

namespace rtlb {
namespace {

TEST(Types, CeilDiv) {
  EXPECT_EQ(ceil_div(0, 3), 0);
  EXPECT_EQ(ceil_div(1, 3), 1);
  EXPECT_EQ(ceil_div(3, 3), 1);
  EXPECT_EQ(ceil_div(4, 3), 2);
  EXPECT_EQ(ceil_div(9, 3), 3);
  EXPECT_EQ(ceil_div(10, 5), 2);
  EXPECT_EQ(ceil_div(11, 5), 3);
}

TEST(Types, AlphaMatchesDefinition4) {
  EXPECT_EQ(alpha(5), 5);
  EXPECT_EQ(alpha(0), 0);
  EXPECT_EQ(alpha(-7), 0);
}

TEST(Types, MuMatchesDefinition4) {
  EXPECT_EQ(mu(5), 1);
  EXPECT_EQ(mu(0), 0);
  EXPECT_EQ(mu(-1), 0);
}

TEST(Ratio, ExactComparisonWithoutOverflow) {
  // Values large enough that naive double comparison would lose precision.
  const std::int64_t big = 3'000'000'000'000'000'000LL / 3;
  Ratio a{big, big - 1};
  Ratio b{big + 1, big};
  // a = big/(big-1) > (big+1)/big = b  <=>  big^2 > (big+1)(big-1) = big^2-1.
  EXPECT_TRUE(b < a);
  EXPECT_FALSE(a < b);
  EXPECT_FALSE(a == b);
}

TEST(Ratio, CeilAndEquality) {
  EXPECT_EQ((Ratio{9, 3}).ceil(), 3);
  EXPECT_EQ((Ratio{10, 3}).ceil(), 4);
  EXPECT_EQ((Ratio{0, 1}).ceil(), 0);
  EXPECT_TRUE((Ratio{2, 4}) == (Ratio{1, 2}));
}

TEST(Ratio, MaxRatioKeepsLargest) {
  MaxRatio m;
  m.update(1, 2);
  m.update(3, 4);
  m.update(2, 3);
  EXPECT_TRUE(m.best() == (Ratio{3, 4}));
}

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 4);
}

TEST(Rng, UniformStaysInRange) {
  Rng rng(7);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const std::int64_t v = rng.uniform(-3, 5);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 5);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 9u);  // all 9 values hit over 1000 draws
}

TEST(Rng, UniformSingleton) {
  Rng rng(7);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.uniform(4, 4), 4);
}

TEST(Rng, Uniform01InUnitInterval) {
  Rng rng(9);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.uniform01();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Rng, SplitSumExactTotalAndPositivity) {
  Rng rng(11);
  for (int trial = 0; trial < 20; ++trial) {
    const std::int64_t total = rng.uniform(10, 500);
    const std::size_t n = static_cast<std::size_t>(rng.uniform(1, 9));
    if (total < static_cast<std::int64_t>(n)) continue;
    const auto parts = rng.split_sum(total, n);
    ASSERT_EQ(parts.size(), n);
    std::int64_t sum = 0;
    for (auto p : parts) {
      EXPECT_GE(p, 1);
      sum += p;
    }
    EXPECT_EQ(sum, total);
  }
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(5);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.shuffle(v);
  auto resorted = v;
  std::sort(resorted.begin(), resorted.end());
  EXPECT_EQ(resorted, sorted);
}

TEST(Strings, TrimAndSplit) {
  EXPECT_EQ(trim("  hi  "), "hi");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim(" \t\n "), "");
  EXPECT_EQ(split("a,b,,c", ','), (std::vector<std::string>{"a", "b", "", "c"}));
  EXPECT_EQ(split("", ','), std::vector<std::string>{""});
  EXPECT_EQ(split_ws("  a \t b\nc "), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_TRUE(split_ws("   ").empty());
}

TEST(Strings, JoinAndBraceSet) {
  EXPECT_EQ(join({"a", "b", "c"}, ","), "a,b,c");
  EXPECT_EQ(join({}, ","), "");
  EXPECT_EQ(brace_set({"x", "y"}), "{x,y}");
  EXPECT_EQ(brace_set({}), "-");
}

TEST(Strings, ParseInt) {
  EXPECT_EQ(parse_int("42", "test"), 42);
  EXPECT_EQ(parse_int("-7", "test"), -7);
  EXPECT_EQ(parse_int("  13 ", "test"), 13);
  EXPECT_THROW(parse_int("4x", "test"), ModelError);
  EXPECT_THROW(parse_int("", "test"), ModelError);
}

TEST(Table, RendersAlignedColumns) {
  Table t({"name", "value"});
  t.add("alpha", 1);
  t.add("b", 22);
  const std::string s = t.to_string();
  EXPECT_NE(s.find("| name  | value |"), std::string::npos);
  EXPECT_NE(s.find("| alpha | 1     |"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, RejectsArityMismatch) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::logic_error);
}

TEST(Table, CsvMirrorsRows) {
  Table t({"k", "v"});
  t.add("x", 1);
  t.add("with,comma", 2);
  std::ostringstream out;
  t.to_csv(out);
  EXPECT_EQ(out.str(), "k,v\nx,1\n\"with,comma\",2\n");
}

TEST(Csv, WritesHeaderAndEscapes) {
  std::ostringstream out;
  CsvWriter csv(out, {"k", "v"});
  csv.write("plain", 1);
  csv.write("with,comma", 2);
  csv.write("with\"quote", 3);
  EXPECT_EQ(out.str(), "k,v\nplain,1\n\"with,comma\",2\n\"with\"\"quote\",3\n");
}

}  // namespace
}  // namespace rtlb
