#include <gtest/gtest.h>

#include <limits>
#include <set>
#include <sstream>

#include "src/common/csv.hpp"
#include "src/common/json.hpp"
#include "src/common/random.hpp"
#include "src/common/ratio.hpp"
#include "src/common/strings.hpp"
#include "src/common/table.hpp"
#include "src/common/types.hpp"

namespace rtlb {
namespace {

TEST(Types, CeilDiv) {
  EXPECT_EQ(ceil_div(0, 3), 0);
  EXPECT_EQ(ceil_div(1, 3), 1);
  EXPECT_EQ(ceil_div(3, 3), 1);
  EXPECT_EQ(ceil_div(4, 3), 2);
  EXPECT_EQ(ceil_div(9, 3), 3);
  EXPECT_EQ(ceil_div(10, 5), 2);
  EXPECT_EQ(ceil_div(11, 5), 3);
}

TEST(Types, AlphaMatchesDefinition4) {
  EXPECT_EQ(alpha(5), 5);
  EXPECT_EQ(alpha(0), 0);
  EXPECT_EQ(alpha(-7), 0);
}

TEST(Types, MuMatchesDefinition4) {
  EXPECT_EQ(mu(5), 1);
  EXPECT_EQ(mu(0), 0);
  EXPECT_EQ(mu(-1), 0);
}

TEST(Ratio, ExactComparisonWithoutOverflow) {
  // Values large enough that naive double comparison would lose precision.
  const std::int64_t big = 3'000'000'000'000'000'000LL / 3;
  Ratio a{big, big - 1};
  Ratio b{big + 1, big};
  // a = big/(big-1) > (big+1)/big = b  <=>  big^2 > (big+1)(big-1) = big^2-1.
  EXPECT_TRUE(b < a);
  EXPECT_FALSE(a < b);
  EXPECT_FALSE(a == b);
}

TEST(Ratio, CeilAndEquality) {
  EXPECT_EQ((Ratio{9, 3}).ceil(), 3);
  EXPECT_EQ((Ratio{10, 3}).ceil(), 4);
  EXPECT_EQ((Ratio{0, 1}).ceil(), 0);
  EXPECT_TRUE((Ratio{2, 4}) == (Ratio{1, 2}));
}

TEST(Ratio, MaxRatioKeepsLargest) {
  MaxRatio m;
  m.update(1, 2);
  m.update(3, 4);
  m.update(2, 3);
  EXPECT_TRUE(m.best() == (Ratio{3, 4}));
}

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 4);
}

TEST(Rng, UniformStaysInRange) {
  Rng rng(7);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const std::int64_t v = rng.uniform(-3, 5);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 5);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 9u);  // all 9 values hit over 1000 draws
}

TEST(Rng, UniformSingleton) {
  Rng rng(7);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.uniform(4, 4), 4);
}

TEST(Rng, Uniform01InUnitInterval) {
  Rng rng(9);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.uniform01();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Rng, SplitSumExactTotalAndPositivity) {
  Rng rng(11);
  for (int trial = 0; trial < 20; ++trial) {
    const std::int64_t total = rng.uniform(10, 500);
    const std::size_t n = static_cast<std::size_t>(rng.uniform(1, 9));
    if (total < static_cast<std::int64_t>(n)) continue;
    const auto parts = rng.split_sum(total, n);
    ASSERT_EQ(parts.size(), n);
    std::int64_t sum = 0;
    for (auto p : parts) {
      EXPECT_GE(p, 1);
      sum += p;
    }
    EXPECT_EQ(sum, total);
  }
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(5);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.shuffle(v);
  auto resorted = v;
  std::sort(resorted.begin(), resorted.end());
  EXPECT_EQ(resorted, sorted);
}

TEST(Strings, TrimAndSplit) {
  EXPECT_EQ(trim("  hi  "), "hi");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim(" \t\n "), "");
  EXPECT_EQ(split("a,b,,c", ','), (std::vector<std::string>{"a", "b", "", "c"}));
  EXPECT_EQ(split("", ','), std::vector<std::string>{""});
  EXPECT_EQ(split_ws("  a \t b\nc "), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_TRUE(split_ws("   ").empty());
}

TEST(Strings, JoinAndBraceSet) {
  EXPECT_EQ(join({"a", "b", "c"}, ","), "a,b,c");
  EXPECT_EQ(join({}, ","), "");
  EXPECT_EQ(brace_set({"x", "y"}), "{x,y}");
  EXPECT_EQ(brace_set({}), "-");
}

TEST(Strings, ParseInt) {
  EXPECT_EQ(parse_int("42", "test"), 42);
  EXPECT_EQ(parse_int("-7", "test"), -7);
  EXPECT_EQ(parse_int("  13 ", "test"), 13);
  EXPECT_THROW(parse_int("4x", "test"), ModelError);
  EXPECT_THROW(parse_int("", "test"), ModelError);
}

TEST(Table, RendersAlignedColumns) {
  Table t({"name", "value"});
  t.add("alpha", 1);
  t.add("b", 22);
  const std::string s = t.to_string();
  EXPECT_NE(s.find("| name  | value |"), std::string::npos);
  EXPECT_NE(s.find("| alpha | 1     |"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, RejectsArityMismatch) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::logic_error);
}

TEST(Table, CsvMirrorsRows) {
  Table t({"k", "v"});
  t.add("x", 1);
  t.add("with,comma", 2);
  std::ostringstream out;
  t.to_csv(out);
  EXPECT_EQ(out.str(), "k,v\nx,1\n\"with,comma\",2\n");
}

TEST(Csv, WritesHeaderAndEscapes) {
  std::ostringstream out;
  CsvWriter csv(out, {"k", "v"});
  csv.write("plain", 1);
  csv.write("with,comma", 2);
  csv.write("with\"quote", 3);
  EXPECT_EQ(out.str(), "k,v\nplain,1\n\"with,comma\",2\n\"with\"\"quote\",3\n");
}

TEST(JsonParse, ScalarsAndContainers) {
  const Json doc = Json::parse(
      R"({"n": null, "t": true, "f": false, "i": -42, "d": 2.5,)"
      R"( "s": "hi\nthere", "a": [1, 2, 3], "o": {"k": "v"}})");
  ASSERT_TRUE(doc.is_object());
  EXPECT_TRUE(doc.find("n")->is_null());
  EXPECT_TRUE(doc.find("t")->as_bool());
  EXPECT_FALSE(doc.find("f")->as_bool());
  EXPECT_EQ(doc.find("i")->as_int(), -42);
  EXPECT_DOUBLE_EQ(doc.find("d")->as_double(), 2.5);
  EXPECT_EQ(doc.find("s")->as_string(), "hi\nthere");
  ASSERT_TRUE(doc.find("a")->is_array());
  EXPECT_EQ(doc.find("a")->size(), 3u);
  EXPECT_EQ(doc.find("a")->at(2).as_int(), 3);
  EXPECT_EQ(doc.find("o")->find("k")->as_string(), "v");
  EXPECT_EQ(doc.find("missing"), nullptr);
}

TEST(JsonParse, RoundTripsDump) {
  Json doc = Json::object();
  doc.set("tasks", Json::array().push(Json::object().set("id", 7).set("name", "τ\"x\"")));
  doc.set("bound", 3);
  doc.set("ratio", 1.5);
  const Json reparsed = Json::parse(doc.dump(2));
  EXPECT_EQ(reparsed.dump(), doc.dump());
}

TEST(JsonParse, UnicodeEscapes) {
  const Json doc = Json::parse(R"(["\u0041", "\u00e9", "\u20ac", "\ud83d\ude00"])");
  EXPECT_EQ(doc.at(0).as_string(), "A");
  EXPECT_EQ(doc.at(1).as_string(), "\xC3\xA9");
  EXPECT_EQ(doc.at(2).as_string(), "\xE2\x82\xAC");
  EXPECT_EQ(doc.at(3).as_string(), "\xF0\x9F\x98\x80");
}

TEST(JsonParse, IntegerPrecisionAndOverflowFallback) {
  EXPECT_EQ(Json::parse("9223372036854775807").as_int(),
            std::numeric_limits<std::int64_t>::max());
  // One past int64 max degrades to double rather than failing.
  EXPECT_TRUE(Json::parse("9223372036854775808").is_double());
  EXPECT_TRUE(Json::parse("1e3").is_double());
}

TEST(JsonParse, RejectsMalformedInput) {
  const char* bad[] = {
      "",          "{",        "[1,]",      "{\"k\":}",   "{\"k\" 1}",
      "tru",       "nul",      "01",        "1.",         "1e",
      "\"\\q\"",   "\"\x01\"", "[1] tail",  "{\"a\":1,}", "-",
      "\"\\ud800\"",
  };
  for (const char* text : bad) {
    EXPECT_THROW(Json::parse(text), JsonParseError) << "input: " << text;
  }
}

// Satellite regression: deeply nested hostile input must fail with a clear
// depth error, not by exhausting the call stack.
TEST(JsonParse, DeepNestingIsCappedWithClearError) {
  const std::string deep(100000, '[');
  try {
    Json::parse(deep);
    FAIL() << "expected JsonParseError";
  } catch (const JsonParseError& e) {
    EXPECT_NE(std::string(e.what()).find("nesting depth exceeds limit of 64"),
              std::string::npos)
        << e.what();
  }

  // Right at the limit parses; one past it does not.
  std::string ok;
  for (int i = 0; i < 64; ++i) ok += '[';
  std::string ok_close = ok + "1";
  for (int i = 0; i < 64; ++i) ok_close += ']';
  EXPECT_NO_THROW(Json::parse(ok_close));
  EXPECT_THROW(Json::parse("[" + ok_close + "]"), JsonParseError);

  JsonParseOptions opts;
  opts.max_depth = 2;
  EXPECT_NO_THROW(Json::parse("[[1]]", opts));
  EXPECT_THROW(Json::parse("[[[1]]]", opts), JsonParseError);
}

TEST(JsonParse, SetReplacesAnExistingKey) {
  // set() must upsert: mutating a parsed document (the certificate mutation
  // harness does this) may not leave a shadowed duplicate key behind.
  Json doc = Json::parse("{\"version\": 1, \"n\": 2}");
  doc.set("version", 99);
  EXPECT_EQ(doc.find("version")->as_int(), 99);
  EXPECT_EQ(doc.size(), 2u);
  EXPECT_EQ(doc.find("n")->as_int(), 2);
}

}  // namespace
}  // namespace rtlb
