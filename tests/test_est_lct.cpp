#include <gtest/gtest.h>

#include "src/core/est_lct.hpp"

namespace rtlb {
namespace {

/// Builder for small shared-model fixtures on one or two processor types.
class EstLctTest : public ::testing::Test {
 protected:
  EstLctTest() : app_(cat_) {
    p1_ = cat_.add_processor_type("P1");
    p2_ = cat_.add_processor_type("P2");
  }

  TaskId add(Time comp, Time rel, Time deadline, ResourceId proc) {
    Task t;
    t.name = "t" + std::to_string(app_.num_tasks());
    t.comp = comp;
    t.release = rel;
    t.deadline = deadline;
    t.proc = proc;
    return app_.add_task(std::move(t));
  }

  TaskWindows run() {
    SharedMergeOracle oracle;
    return compute_windows(app_, oracle);
  }

  ResourceCatalog cat_;
  Application app_;
  ResourceId p1_, p2_;
};

TEST_F(EstLctTest, IsolatedTaskGetsReleaseAndDeadline) {
  add(3, 2, 20, p1_);
  const TaskWindows w = run();
  EXPECT_EQ(w.est[0], 2);
  EXPECT_EQ(w.lct[0], 20);
  EXPECT_EQ(w.slack(app_, 0), 15);
}

TEST_F(EstLctTest, ChainWithMessageNotMerged) {
  // Different processor types: the message is always paid.
  const TaskId a = add(3, 0, 50, p1_);
  const TaskId b = add(2, 0, 50, p2_);
  app_.add_edge(a, b, 4);
  const TaskWindows w = run();
  EXPECT_EQ(w.est[b], 0 + 3 + 4);      // emr_a
  EXPECT_EQ(w.lct[a], 50 - 2 - 4);     // lms via b
  EXPECT_TRUE(w.merged_pred[b].empty());
  EXPECT_TRUE(w.merged_succ[a].empty());
}

TEST_F(EstLctTest, ChainMergesWhenMessageIsLarge) {
  // Same type, large message: merging avoids it.
  const TaskId a = add(3, 0, 50, p1_);
  const TaskId b = add(2, 0, 50, p1_);
  app_.add_edge(a, b, 10);
  const TaskWindows w = run();
  EXPECT_EQ(w.est[b], 3);               // ect({a}) instead of 3 + 10
  EXPECT_EQ(w.merged_pred[b], std::vector<TaskId>{a});
  EXPECT_EQ(w.lct[a], 48);              // lst({b}) = 50 - 2 instead of 50-2-10
  EXPECT_EQ(w.merged_succ[a], std::vector<TaskId>{b});
}

TEST_F(EstLctTest, ZeroMessageTieDoesNotMerge) {
  // With m = 0 merging gains nothing; the stop rule keeps the merge set
  // empty and the values agree either way.
  const TaskId a = add(3, 0, 50, p1_);
  const TaskId b = add(2, 0, 50, p1_);
  app_.add_edge(a, b, 0);
  const TaskWindows w = run();
  EXPECT_EQ(w.est[b], 3);
  EXPECT_TRUE(w.merged_pred[b].empty());
  EXPECT_EQ(w.lct[a], 48);
  EXPECT_TRUE(w.merged_succ[a].empty());
}

TEST_F(EstLctTest, DeadlineCapsLct) {
  const TaskId a = add(3, 0, 10, p1_);
  const TaskId b = add(2, 0, 50, p1_);
  app_.add_edge(a, b, 1);
  const TaskWindows w = run();
  EXPECT_EQ(w.lct[a], 10);  // own deadline binds before the successor
}

TEST_F(EstLctTest, LatestStartOfSetPacksBackward) {
  const TaskId a = add(4, 0, 20, p1_);
  const TaskId b = add(3, 0, 18, p1_);
  const TaskId c = add(2, 0, 18, p1_);
  TaskWindows w;
  w.lct = {20, 18, 18};
  w.est = {0, 0, 0};
  // Pack by non-increasing LCT: a ends 20 starts 16; b ends min(16,18)=16
  // starts 13; c ends min(13,18)=13 starts 11.
  const std::vector<TaskId> set{a, b, c};
  EXPECT_EQ(latest_start_of_set(app_, w.lct, set), 11);
}

TEST_F(EstLctTest, EarliestCompletionOfSetPacksForward) {
  const TaskId a = add(4, 0, 99, p1_);
  const TaskId b = add(3, 5, 99, p1_);
  (void)a;
  (void)b;
  TaskWindows w;
  w.est = {1, 5};
  // a starts 1 ends 5; b starts max(5,5)=5 ends 8.
  const std::vector<TaskId> set{0, 1};
  EXPECT_EQ(earliest_completion_of_set(app_, w.est, set), 8);
}

TEST_F(EstLctTest, FanInPartialMerge) {
  // Two predecessors, one worth merging (big message), one not (free).
  const TaskId a = add(5, 0, 99, p1_);  // emr = 5 + 8 = 13 -> merge helps
  const TaskId b = add(2, 0, 99, p1_);  // emr = 2 + 0 = 2  -> leave remote
  const TaskId c = add(1, 0, 99, p1_);
  app_.add_edge(a, c, 8);
  app_.add_edge(b, c, 0);
  const TaskWindows w = run();
  EXPECT_EQ(w.est[c], 5);  // ect({a}) = 5, emr_b = 2
  EXPECT_EQ(w.merged_pred[c], std::vector<TaskId>{a});
}

TEST_F(EstLctTest, MergingStopsWhenSequentializationHurts) {
  // Three heavy same-type predecessors with big messages: merging all would
  // serialize 15 ticks of work; the algorithm stops at the profitable point.
  const TaskId a = add(5, 0, 99, p1_);
  const TaskId b = add(5, 0, 99, p1_);
  const TaskId c = add(5, 0, 99, p1_);
  const TaskId d = add(1, 0, 99, p1_);
  app_.add_edge(a, d, 7);   // emr 12
  app_.add_edge(b, d, 6);   // emr 11
  app_.add_edge(c, d, 2);   // emr 7
  const TaskWindows w = run();
  // Greedy: merge a (emr 12): est = max(11, ect{a}=5) = 11; merge b
  // (emr 11): est = max(7, ect{a,b}=10) = 10; merge c (emr 7): est =
  // max(ect{a,b,c}=15) = 15 >= 10 -> stop.
  EXPECT_EQ(w.est[d], 10);
  EXPECT_EQ(w.merged_pred[d], (std::vector<TaskId>{a, b}));
}

TEST_F(EstLctTest, GreedyMatchesExhaustiveOnFanOut) {
  // Brute-force Equation 4.1 over all merge subsets must agree with the
  // greedy algorithm (Theorem 1).
  const TaskId i = add(2, 0, 99, p1_);
  const TaskId s1 = add(4, 0, 30, p1_);
  const TaskId s2 = add(3, 0, 25, p1_);
  const TaskId s3 = add(5, 0, 28, p2_);  // not mergeable with i
  app_.add_edge(i, s1, 6);
  app_.add_edge(i, s2, 2);
  app_.add_edge(i, s3, 3);
  const TaskWindows w = run();
  SharedMergeOracle oracle;
  EXPECT_EQ(w.lct[i], lct_exhaustive(app_, oracle, w.lct, i));
}

TEST_F(EstLctTest, GreedyMatchesExhaustiveOnFanIn) {
  const TaskId p1t = add(4, 0, 99, p1_);
  const TaskId p2t = add(3, 2, 99, p1_);
  const TaskId p3t = add(5, 1, 99, p2_);
  const TaskId i = add(2, 0, 99, p1_);
  app_.add_edge(p1t, i, 6);
  app_.add_edge(p2t, i, 2);
  app_.add_edge(p3t, i, 3);
  const TaskWindows w = run();
  SharedMergeOracle oracle;
  EXPECT_EQ(w.est[i], est_exhaustive(app_, oracle, w.est, i));
}

TEST_F(EstLctTest, InfeasibleWindowIsDetectable) {
  // Deadline pressure propagated through the chain can squeeze a window
  // below the computation time; slack() flags it.
  const TaskId a = add(5, 0, 20, p1_);
  const TaskId b = add(5, 0, 8, p2_);
  app_.add_edge(a, b, 4);
  const TaskWindows w = run();
  // lms via b: 8 - 5 - 4 = -1, so L_a = -1 < C_a.
  EXPECT_LT(w.slack(app_, a), 0);
}

TEST_F(EstLctTest, TieGroupMergesAsAWhole) {
  // The Figure-3 tie correction, minimally: two predecessors with IDENTICAL
  // emr feeding one sink. Merging only one leaves the twin's emr capping the
  // start; merging both serializes them cheaper. The printed stop rule would
  // return 8; the corrected greedy must return ect({a, b}) = 6.
  const TaskId a = add(3, 0, 99, p1_);
  const TaskId b = add(3, 0, 99, p1_);
  const TaskId sink = add(2, 0, 99, p1_);
  app_.add_edge(a, sink, 5);  // emr = 8
  app_.add_edge(b, sink, 5);  // emr = 8
  const TaskWindows w = run();
  EXPECT_EQ(w.est[sink], 6);
  SharedMergeOracle oracle;
  EXPECT_EQ(w.est[sink], est_exhaustive(app_, oracle, w.est, sink));
  EXPECT_EQ(w.merged_pred[sink].size(), 2u);
}

TEST_F(EstLctTest, TieGroupOnTheLctSide) {
  // Mirror case: one source fanning into two successors with identical lms.
  const TaskId src = add(2, 0, 99, p1_);
  const TaskId x = add(3, 0, 20, p1_);
  const TaskId y = add(3, 0, 20, p1_);
  app_.add_edge(src, x, 5);  // lms = 12
  app_.add_edge(src, y, 5);  // lms = 12
  const TaskWindows w = run();
  // Merge both: lst({x,y}) packs them back-to-back before 20 -> 14.
  EXPECT_EQ(w.lct[src], 14);
  SharedMergeOracle oracle;
  EXPECT_EQ(w.lct[src], lct_exhaustive(app_, oracle, w.lct, src));
}

TEST_F(EstLctTest, DedicatedOracleBlocksResourceConflictingMerges) {
  // Two predecessors individually mergeable with the sink but whose union
  // no node covers: the dedicated greedy may merge at most one.
  ResourceCatalog cat;
  const ResourceId p = cat.add_processor_type("P");
  const ResourceId ra = cat.add_resource("a");
  const ResourceId rb = cat.add_resource("b");
  DedicatedPlatform plat;
  plat.add_node_type(NodeType{"Pa", p, {{ra, 1}}, 1});
  plat.add_node_type(NodeType{"Pb", p, {{rb, 1}}, 1});
  Application app(cat);
  auto mk = [&](const char* name, std::vector<ResourceId> res) {
    Task t;
    t.name = name;
    t.comp = 3;
    t.deadline = 99;
    t.proc = p;
    t.resources = std::move(res);
    return app.add_task(std::move(t));
  };
  const TaskId a = mk("a", {ra});
  const TaskId b = mk("b", {rb});
  const TaskId sink = mk("sink", {});
  app.add_edge(a, sink, 6);  // emr = 9
  app.add_edge(b, sink, 6);  // emr = 9
  DedicatedMergeOracle oracle(plat);
  const TaskWindows w = compute_windows(app, oracle);
  // Merging one predecessor still pays the other's message: E = 9. (Under
  // the shared oracle both would merge for E = 6.)
  EXPECT_EQ(w.est[sink], 9);
  EXPECT_EQ(w.est[sink], est_exhaustive(app, oracle, w.est, sink));
  SharedMergeOracle shared;
  const TaskWindows ws = compute_windows(app, shared);
  EXPECT_EQ(ws.est[sink], 6);
}

TEST_F(EstLctTest, ThrowsOnCycle) {
  const TaskId a = add(1, 0, 9, p1_);
  const TaskId b = add(1, 0, 9, p1_);
  app_.dag();  // silence unused warnings in some configs
  app_.add_edge(a, b, 0);
  // add_edge(b, a) would make a cycle; Application::dag has no public
  // non-const access, so build the cycle via a fresh Application.
  Application cyclic(cat_);
  Task t;
  t.comp = 1;
  t.deadline = 9;
  t.proc = p1_;
  t.name = "x";
  const TaskId x = cyclic.add_task(t);
  t.name = "y";
  const TaskId y = cyclic.add_task(t);
  cyclic.add_edge(x, y, 0);
  cyclic.add_edge(y, x, 0);
  SharedMergeOracle oracle;
  EXPECT_THROW(compute_windows(cyclic, oracle), ModelError);
}

}  // namespace
}  // namespace rtlb
