#include <gtest/gtest.h>

#include "src/core/sensitivity.hpp"
#include "src/lint/linter.hpp"
#include "src/workload/paper_example.hpp"
#include "src/workload/taskset_gen.hpp"

namespace rtlb {
namespace {

class SensitivityTest : public ::testing::Test {
 protected:
  SensitivityTest() : app_(cat_) { p_ = cat_.add_processor_type("P", 10); }

  void add(Time comp, Time rel, Time deadline) {
    Task t;
    t.name = "t" + std::to_string(app_.num_tasks());
    t.comp = comp;
    t.release = rel;
    t.deadline = deadline;
    t.proc = p_;
    app_.add_task(std::move(t));
  }

  ResourceCatalog cat_;
  Application app_;
  ResourceId p_;
};

TEST_F(SensitivityTest, LaxityRelaxationLowersBounds) {
  // Three tasks that fill [0, 4] at factor 1 (LB = 3), sequenceable at 3x.
  add(4, 0, 4);
  add(4, 0, 4);
  add(4, 0, 4);
  const auto sweep = deadline_laxity_sweep(app_, {1.0, 2.0, 3.0});
  ASSERT_EQ(sweep.size(), 3u);
  EXPECT_EQ(sweep[0].bounds[0], 3);
  EXPECT_EQ(sweep[2].bounds[0], 1);
  // Monotone non-increasing as deadlines relax.
  EXPECT_GE(sweep[0].bounds[0], sweep[1].bounds[0]);
  EXPECT_GE(sweep[1].bounds[0], sweep[2].bounds[0]);
  // Shared cost tracks the bound.
  EXPECT_EQ(sweep[0].shared_cost, 30);
  EXPECT_EQ(sweep[2].shared_cost, 10);
}

TEST_F(SensitivityTest, TighteningFlagsInfeasibility) {
  add(8, 0, 10);
  const auto sweep = deadline_laxity_sweep(app_, {1.0, 0.5});
  EXPECT_FALSE(sweep[0].infeasible);
  EXPECT_TRUE(sweep[1].infeasible);  // window 5 < C 8
}

TEST_F(SensitivityTest, SweepDoesNotMutateTheApplication) {
  add(4, 0, 4);
  const Time before = app_.task(0).deadline;
  deadline_laxity_sweep(app_, {5.0});
  message_scale_sweep(app_, {0.0, 4.0});
  EXPECT_EQ(app_.task(0).deadline, before);
}

TEST(SensitivityMessages, ZeroCommRemovesPressure) {
  // A join whose messages force a late start; at factor 0 the EST collapses
  // and the bound relaxes.
  ResourceCatalog cat;
  const ResourceId p = cat.add_processor_type("P", 1);
  Application app(cat);
  auto mk = [&](const char* name, Time comp, Time deadline) {
    Task t;
    t.name = name;
    t.comp = comp;
    t.deadline = deadline;
    t.proc = p;
    return app.add_task(std::move(t));
  };
  const TaskId x = mk("x", 3, 30);
  const TaskId y = mk("y", 3, 30);
  const TaskId z = mk("z", 4, 18);
  app.add_edge(x, z, 8);
  app.add_edge(y, z, 8);

  const auto sweep = message_scale_sweep(app, {1.0, 0.0});
  ASSERT_EQ(sweep.size(), 2u);
  // With messages, z is squeezed into [11, 18]; without, [3, 18].
  EXPECT_GE(sweep[0].bounds[0], sweep[1].bounds[0]);
  EXPECT_FALSE(sweep[1].infeasible);
}

TEST(SensitivityMenus, VariantsRankNodeMenus) {
  ProblemInstance inst = paper_example();

  // Variant A: the paper's menu. Variant B: drop the bare {P1} node type.
  DedicatedPlatform no_bare;
  no_bare.add_node_type(inst.platform.node_type(0));
  no_bare.add_node_type(inst.platform.node_type(2));
  // Variant C: only rich nodes at inflated cost.
  DedicatedPlatform pricey;
  NodeType rich = inst.platform.node_type(0);
  rich.cost = 20;
  pricey.add_node_type(rich);
  pricey.add_node_type(inst.platform.node_type(2));

  std::vector<std::pair<std::string, DedicatedPlatform>> menus;
  menus.emplace_back("paper", inst.platform);
  menus.emplace_back("no-bare-P1", no_bare);
  menus.emplace_back("pricey", pricey);
  const auto results = menu_variants(*inst.app, menus);
  ASSERT_EQ(results.size(), 3u);
  EXPECT_TRUE(results[0].feasible);
  EXPECT_EQ(results[0].dedicated_cost, 42);  // 2*10 + 6 + 2*8
  EXPECT_TRUE(results[1].feasible);
  // Without the cheap bare node, the third P1 CPU must be a rich node.
  EXPECT_EQ(results[1].dedicated_cost, 3 * 10 + 2 * 8);
  EXPECT_TRUE(results[2].feasible);
  EXPECT_GT(results[2].dedicated_cost, results[1].dedicated_cost);
}

TEST_F(SensitivityTest, HugeLaxityFactorsSaturateInsteadOfOverflowing) {
  // factor * window above kTimeMax must clamp (scale_time), not wrap into
  // UB: every saturated factor lands on the same fully-relaxed deadline, so
  // the bounds are identical and monotone all the way up.
  add(4, 0, 4);
  add(4, 0, 4);
  add(4, 2, 20);
  const auto sweep = deadline_laxity_sweep(app_, {1.0, 1e6, 1e18, 1e30, 1e300});
  ASSERT_EQ(sweep.size(), 5u);
  for (std::size_t k = 0; k + 1 < sweep.size(); ++k) {
    EXPECT_GE(sweep[k].bounds[0], sweep[k + 1].bounds[0]);
  }
  // 1e18 * 4 and anything larger saturate to the same clamped window.
  EXPECT_EQ(sweep[2].bounds, sweep[3].bounds);
  EXPECT_EQ(sweep[3].bounds, sweep[4].bounds);
  EXPECT_EQ(sweep[4].bounds[0], 1);  // fully sequenceable when relaxed
  for (const SweepPoint& p : sweep) EXPECT_FALSE(p.infeasible);
}

TEST(SensitivityMessages, HugeMessageFactorsSaturateInsteadOfOverflowing) {
  ResourceCatalog cat;
  const ResourceId p = cat.add_processor_type("P", 1);
  const ResourceId q = cat.add_processor_type("Q", 1);
  Application app(cat);
  auto mk = [&](const char* name, Time comp, Time deadline, ResourceId proc) {
    Task t;
    t.name = name;
    t.comp = comp;
    t.deadline = deadline;
    t.proc = proc;
    return app.add_task(std::move(t));
  };
  // The predecessor runs on a different processor type, so the merge oracle
  // cannot absorb the edge: z always pays the (scaled) communication delay.
  const TaskId x = mk("x", 3, 30, q);
  const TaskId z = mk("z", 4, 18, p);
  app.add_edge(x, z, 8);

  // A message scaled past kTimeMax clamps; the squeezed successor window
  // goes infeasible (slack < 0) but nothing crashes or wraps.
  const auto sweep = message_scale_sweep(app, {1.0, 1e18, 1e300});
  ASSERT_EQ(sweep.size(), 3u);
  EXPECT_FALSE(sweep[0].infeasible);
  EXPECT_TRUE(sweep[1].infeasible);
  EXPECT_EQ(sweep[1].bounds, sweep[2].bounds);  // both saturated to kTimeMax
}

TEST_F(SensitivityTest, ParallelSweepMatchesSerial) {
  add(4, 0, 4);
  add(4, 0, 4);
  add(6, 1, 9);
  add(2, 3, 12);
  const std::vector<double> factors = {0.5, 1.0, 1.5, 2.0, 2.5, 3.0, 4.0};
  const auto serial = deadline_laxity_sweep(app_, factors);
  AnalysisOptions parallel_options;
  parallel_options.lower_bound.num_threads = 0;  // one worker per hardware thread
  const auto parallel = deadline_laxity_sweep(app_, factors, parallel_options);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t k = 0; k < serial.size(); ++k) {
    EXPECT_EQ(serial[k].bounds, parallel[k].bounds);
    EXPECT_EQ(serial[k].shared_cost, parallel[k].shared_cost);
    EXPECT_EQ(serial[k].infeasible, parallel[k].infeasible);
  }
}

TEST(SensitivityMenus, VariantsPropagateCallerOptions) {
  // An application with a task no node type can host: the default options
  // (lint off) report it as an infeasible variant, while lint_level=kErrors
  // must refuse the instance through the gate -- proving the caller's
  // options actually reach the analysis.
  ResourceCatalog cat;
  const ResourceId p = cat.add_processor_type("P", 5);
  const ResourceId r = cat.add_resource("r", 2);
  Application app(cat);
  Task t;
  t.name = "needs-r";
  t.comp = 2;
  t.deadline = 10;
  t.proc = p;
  t.resources = {r};
  app.add_task(std::move(t));

  DedicatedPlatform bare;  // hosts P-tasks without r only
  NodeType node;
  node.name = "bareP";
  node.proc = p;
  node.cost = 5;
  bare.add_node_type(node);

  std::vector<std::pair<std::string, DedicatedPlatform>> menus;
  menus.emplace_back("bare", bare);

  const auto plain = menu_variants(app, menus);
  ASSERT_EQ(plain.size(), 1u);
  EXPECT_FALSE(plain[0].feasible);

  AnalysisOptions strict;
  strict.lint_level = LintLevel::kErrors;
  EXPECT_THROW(menu_variants(app, menus, strict), LintGateError);

  // lb_options propagate too: pruning changes nothing about the costs.
  AnalysisOptions pruned;
  pruned.lower_bound.enable_pruning = true;
  ProblemInstance inst = paper_example();
  std::vector<std::pair<std::string, DedicatedPlatform>> paper_menu;
  paper_menu.emplace_back("paper", inst.platform);
  const auto a = menu_variants(*inst.app, paper_menu);
  const auto b = menu_variants(*inst.app, paper_menu, pruned);
  ASSERT_EQ(a.size(), b.size());
  EXPECT_EQ(a[0].dedicated_cost, b[0].dedicated_cost);
  EXPECT_EQ(a[0].feasible, b[0].feasible);
}

TEST(SensitivityRandom, LaxitySweepIsMonotoneOnWorkloads) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    WorkloadParams params;
    params.seed = seed * 9;
    params.num_tasks = 16;
    params.laxity = 1.2;
    ProblemInstance inst = generate_workload(params);
    const auto sweep = deadline_laxity_sweep(*inst.app, {1.0, 1.5, 2.5, 4.0});
    for (std::size_t k = 0; k + 1 < sweep.size(); ++k) {
      // Total shared cost is monotone non-increasing in laxity.
      EXPECT_GE(sweep[k].shared_cost, sweep[k + 1].shared_cost) << "seed " << seed;
    }
  }
}

}  // namespace
}  // namespace rtlb
