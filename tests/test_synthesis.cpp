#include <gtest/gtest.h>

#include "src/core/analysis.hpp"
#include "src/sched/feasibility.hpp"
#include "src/synth/synthesis.hpp"
#include "src/workload/paper_example.hpp"
#include "src/workload/taskset_gen.hpp"

namespace rtlb {
namespace {

class SynthesisTest : public ::testing::Test {
 protected:
  SynthesisTest() : app_(cat_) {
    p_ = cat_.add_processor_type("P");
    r_ = cat_.add_resource("r");
    plat_.add_node_type(NodeType{"rich", p_, {{r_, 1}}, 9});
    plat_.add_node_type(NodeType{"bare", p_, {}, 5});
  }

  TaskId add(Time comp, Time rel, Time deadline, std::vector<ResourceId> res = {}) {
    Task t;
    t.name = "t" + std::to_string(app_.num_tasks());
    t.comp = comp;
    t.release = rel;
    t.deadline = deadline;
    t.proc = p_;
    t.resources = std::move(res);
    return app_.add_task(std::move(t));
  }

  SynthesisResult run(bool pruning) {
    AnalysisOptions opts;
    opts.model = SystemModel::Dedicated;
    const AnalysisResult res = analyze(app_, opts, &plat_);
    SynthesisOptions sopts;
    sopts.use_lower_bound_pruning = pruning;
    return synthesize_dedicated(app_, plat_, res.bounds, sopts);
  }

  ResourceCatalog cat_;
  Application app_;
  DedicatedPlatform plat_;
  ResourceId p_, r_;
};

TEST_F(SynthesisTest, FindsCheapestFeasibleConfig) {
  add(4, 0, 4, {r_});
  add(4, 0, 4);
  const SynthesisResult r = run(true);
  ASSERT_TRUE(r.found);
  // One rich node (9) + one bare node (5): both tasks in parallel.
  EXPECT_EQ(r.cost, 14);
  EXPECT_EQ(r.counts, (std::vector<int>{1, 1}));
  const DedicatedConfig config = expand_counts(r.counts);
  EXPECT_TRUE(check_dedicated(app_, r.schedule, plat_, config).empty());
}

TEST_F(SynthesisTest, ExpandCountsFlattens) {
  const DedicatedConfig c = expand_counts({2, 1});
  EXPECT_EQ(c.instance_types, (std::vector<std::size_t>{0, 0, 1}));
}

TEST_F(SynthesisTest, PruningNeverChangesTheAnswer) {
  add(4, 0, 4, {r_});
  add(4, 0, 4);
  add(3, 0, 9, {r_});
  const SynthesisResult with = run(true);
  const SynthesisResult without = run(false);
  ASSERT_TRUE(with.found);
  ASSERT_TRUE(without.found);
  EXPECT_EQ(with.cost, without.cost);
  EXPECT_EQ(with.counts, without.counts);
}

TEST_F(SynthesisTest, PruningSavesFeasibilityChecks) {
  add(4, 0, 4, {r_});
  add(4, 0, 4);
  add(4, 0, 4);
  const SynthesisResult with = run(true);
  const SynthesisResult without = run(false);
  ASSERT_TRUE(with.found);
  EXPECT_LT(with.feasibility_checks, without.feasibility_checks);
  EXPECT_GT(with.pruned_by_bounds, 0);
}

TEST_F(SynthesisTest, ReportsFailureWhenNothingFits) {
  add(4, 0, 4, {r_});
  DedicatedPlatform empty_menu;
  const AnalysisResult res = analyze(app_);
  const SynthesisResult r = synthesize_dedicated(app_, empty_menu, res.bounds);
  EXPECT_FALSE(r.found);
}

TEST_F(SynthesisTest, InfeasibleTaskSetExhaustsLattice) {
  // A window smaller than any node can serve: synthesis must terminate
  // without a result (lattice capped by max_instances_per_type).
  add(4, 0, 4);
  add(4, 0, 4);
  add(4, 0, 4);
  // Make it impossible: 3 parallel tasks but only bare nodes allowed and a
  // conflicting resource requirement that no node supplies.
  Application impossible(cat_);
  Task t;
  t.comp = 4;
  t.deadline = 4;
  t.proc = p_;
  t.resources = {r_};
  t.name = "x";
  impossible.add_task(t);
  DedicatedPlatform bare_only;
  bare_only.add_node_type(NodeType{"bare", p_, {}, 5});
  const AnalysisResult res = analyze(impossible);
  SynthesisOptions opts;
  opts.max_instances_per_type = 3;
  const SynthesisResult r = synthesize_dedicated(impossible, bare_only, res.bounds, opts);
  EXPECT_FALSE(r.found);
}

TEST(SynthesisPaper, CostBoundIsAValidFloorForSynthesis) {
  // If the EDF-probed synthesis finds a machine for the paper example, it
  // can never be cheaper than the step-4 ILP bound -- the bound's defining
  // property. (The paper example needs hand-crafted co-location clusters
  // that the EDF probe may not discover; test_sim proves the bound machine
  // (2,1,2) is feasible via an explicit witness schedule.)
  ProblemInstance inst = paper_example();
  AnalysisOptions opts;
  opts.model = SystemModel::Dedicated;
  const AnalysisResult res = analyze(*inst.app, opts, &inst.platform);
  ASSERT_TRUE(res.dedicated_cost.has_value());
  SynthesisOptions sopts;
  sopts.max_instances_per_type = 5;
  const SynthesisResult r = synthesize_dedicated(*inst.app, inst.platform, res.bounds, sopts);
  if (r.found) {
    EXPECT_GE(r.cost, res.dedicated_cost->total);
  }
  EXPECT_GT(r.candidates_considered, 0);
}

TEST(SynthesisRandom, SynthesizedMachineIsAlwaysValidAndAboveBound) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    WorkloadParams params;
    params.seed = seed;
    params.num_tasks = 12;
    params.laxity = 2.5;
    params.num_proc_types = 2;
    params.num_resources = 1;
    ProblemInstance inst = generate_workload(params);
    AnalysisOptions opts;
    opts.model = SystemModel::Dedicated;
    const AnalysisResult res = analyze(*inst.app, opts, &inst.platform);
    SynthesisOptions sopts;
    sopts.max_instances_per_type = 4;
    const SynthesisResult r = synthesize_dedicated(*inst.app, inst.platform, res.bounds, sopts);
    if (!r.found) continue;
    const DedicatedConfig config = expand_counts(r.counts);
    EXPECT_TRUE(check_dedicated(*inst.app, r.schedule, inst.platform, config).empty())
        << "seed " << seed;
    if (res.dedicated_cost.has_value() && res.dedicated_cost->feasible) {
      EXPECT_GE(r.cost, res.dedicated_cost->total) << "seed " << seed;
    }
  }
}

}  // namespace
}  // namespace rtlb
