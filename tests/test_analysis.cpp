// The analyze() facade itself: option combinations, result invariants, and
// the report renderers, over both system models.
#include <gtest/gtest.h>

#include "src/core/analysis.hpp"
#include "src/workload/paper_example.hpp"
#include "src/workload/taskset_gen.hpp"

namespace rtlb {
namespace {

class AnalysisFacade : public ::testing::Test {
 protected:
  AnalysisFacade() : inst_(paper_example()) {}
  ProblemInstance inst_;
};

TEST_F(AnalysisFacade, PartitioningOffChangesWorkNotResults) {
  AnalysisOptions with, without;
  without.lower_bound.use_partitioning = false;
  const AnalysisResult a = analyze(*inst_.app, with);
  const AnalysisResult b = analyze(*inst_.app, without);
  ASSERT_EQ(a.bounds.size(), b.bounds.size());
  std::uint64_t work_with = 0, work_without = 0;
  for (std::size_t k = 0; k < a.bounds.size(); ++k) {
    EXPECT_EQ(a.bounds[k].bound, b.bounds[k].bound);
    EXPECT_TRUE(a.bounds[k].peak_density == b.bounds[k].peak_density);
    work_with += a.bounds[k].intervals_evaluated;
    work_without += b.bounds[k].intervals_evaluated;
  }
  EXPECT_LT(work_with, work_without);
  // Partitions are recorded either way (they are step-2 output).
  EXPECT_EQ(a.partitions.size(), b.partitions.size());
}

TEST_F(AnalysisFacade, BoundsAlignWithResourceSetOrder) {
  const AnalysisResult res = analyze(*inst_.app);
  const auto rs = inst_.app->resource_set();
  ASSERT_EQ(res.bounds.size(), rs.size());
  ASSERT_EQ(res.partitions.size(), rs.size());
  for (std::size_t k = 0; k < rs.size(); ++k) {
    EXPECT_EQ(res.bounds[k].resource, rs[k]);
    EXPECT_EQ(res.partitions[k].resource, rs[k]);
    EXPECT_EQ(res.bound_for(rs[k]), res.bounds[k].bound);
  }
  // An id outside RES is "not analyzed", which is now distinguishable from
  // a genuine zero bound.
  EXPECT_EQ(res.bound_for(static_cast<ResourceId>(999)), std::nullopt);
}

TEST_F(AnalysisFacade, SharedCostTermsMatchCatalogCosts) {
  const AnalysisResult res = analyze(*inst_.app);
  Cost total = 0;
  for (const SharedCostBound::Term& term : res.shared_cost.terms) {
    EXPECT_EQ(term.unit_cost, inst_.catalog->cost(term.resource));
    total += term.unit_cost * term.units;
  }
  EXPECT_EQ(total, res.shared_cost.total);
}

TEST_F(AnalysisFacade, DedicatedWithoutPlatformThrows) {
  AnalysisOptions opts;
  opts.model = SystemModel::Dedicated;
  EXPECT_THROW(analyze(*inst_.app, opts, nullptr), ModelError);
}

TEST_F(AnalysisFacade, SharedModelIgnoresPassedPlatformForWindows) {
  // A platform passed under the Shared model still produces the dedicated
  // cost bound but windows use shared mergeability.
  AnalysisOptions opts;  // Shared
  const AnalysisResult with_platform = analyze(*inst_.app, opts, &inst_.platform);
  const AnalysisResult without = analyze(*inst_.app, opts, nullptr);
  EXPECT_EQ(with_platform.windows.est, without.windows.est);
  EXPECT_EQ(with_platform.windows.lct, without.windows.lct);
  EXPECT_TRUE(with_platform.dedicated_cost.has_value());
  EXPECT_FALSE(without.dedicated_cost.has_value());
}

TEST_F(AnalysisFacade, JointFlagPopulatesJointBounds) {
  AnalysisOptions opts;
  opts.joint_bounds = true;
  const AnalysisResult res = analyze(*inst_.app, opts);
  // The paper example uses (P1, r1) jointly on 7 tasks.
  bool found_pair = false;
  for (const JointBound& jb : res.joint) {
    if ((jb.a == inst_.catalog->find("P1") && jb.b == inst_.catalog->find("r1")) ||
        (jb.b == inst_.catalog->find("P1") && jb.a == inst_.catalog->find("r1"))) {
      found_pair = true;
      EXPECT_EQ(jb.bound, 2);  // same demand pattern as LB_r1
    }
  }
  EXPECT_TRUE(found_pair);
}

TEST_F(AnalysisFacade, FormattersCoverTheDedicatedModel) {
  AnalysisOptions opts;
  opts.model = SystemModel::Dedicated;
  const AnalysisResult res = analyze(*inst_.app, opts, &inst_.platform);
  const std::string table = format_windows_table(*inst_.app, res.windows);
  EXPECT_NE(table.find("{T10,T11}"), std::string::npos);  // M_15
  const std::string partitions = format_partitions(*inst_.app, res.partitions);
  EXPECT_NE(partitions.find("ST_r1 = {T1,T2} < {T5}"), std::string::npos);
  const std::string bounds = format_bounds(*inst_.app, res.bounds);
  EXPECT_NE(bounds.find("9/3"), std::string::npos);  // the [3,6] peak density
}

TEST(AnalysisRandom, WindowsAlwaysRespectReleaseAndDeadline) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    WorkloadParams params;
    params.seed = seed * 23 + 7;
    params.num_tasks = 20;
    params.release_spread = 0.4;
    params.preemptive_prob = 0.3;
    ProblemInstance inst = generate_workload(params);
    const AnalysisResult res = analyze(*inst.app);
    for (TaskId i = 0; i < inst.app->num_tasks(); ++i) {
      EXPECT_GE(res.windows.est[i], inst.app->task(i).release) << "seed " << seed;
      EXPECT_LE(res.windows.lct[i], inst.app->task(i).deadline) << "seed " << seed;
    }
  }
}

}  // namespace
}  // namespace rtlb
