#include <gtest/gtest.h>

#include <fstream>

#include "src/core/analysis.hpp"
#include "src/model/io.hpp"
#include "src/workload/paper_example.hpp"

namespace rtlb {
namespace {

constexpr const char* kSmall = R"(
# tiny instance
proctype P1 cost 5
resource r1 cost 2
task a comp 3 rel 0 deadline 20 proc P1 res r1
task b comp 2 rel 1 deadline 20 proc P1 preemptive
edge a b msg 4
node N1 cost 9 proc P1 res r1:2
)";

TEST(Io, ParsesTasksEdgesNodes) {
  ProblemInstance inst = parse_instance_string(kSmall);
  EXPECT_EQ(inst.app->num_tasks(), 2u);
  const TaskId a = inst.app->find_task("a");
  const TaskId b = inst.app->find_task("b");
  ASSERT_NE(a, kInvalidTask);
  ASSERT_NE(b, kInvalidTask);
  EXPECT_EQ(inst.app->task(a).comp, 3);
  EXPECT_EQ(inst.app->task(a).resources.size(), 1u);
  EXPECT_FALSE(inst.app->task(a).preemptive);
  EXPECT_TRUE(inst.app->task(b).preemptive);
  EXPECT_EQ(inst.app->task(b).release, 1);
  EXPECT_EQ(inst.app->message(a, b), 4);
  ASSERT_EQ(inst.platform.num_node_types(), 1u);
  EXPECT_EQ(inst.platform.node_type(0).cost, 9);
  EXPECT_EQ(inst.platform.node_type(0).units_of(inst.catalog->find("r1")), 2);
}

TEST(Io, RoundTripsThroughSerialization) {
  ProblemInstance inst = parse_instance_string(kSmall);
  const std::string text = serialize_instance(*inst.app, inst.platform);
  ProblemInstance again = parse_instance_string(text);
  EXPECT_EQ(again.app->num_tasks(), inst.app->num_tasks());
  EXPECT_EQ(serialize_instance(*again.app, again.platform), text);
}

TEST(Io, PaperExampleRoundTrips) {
  ProblemInstance inst = paper_example();
  const std::string text = serialize_instance(*inst.app, inst.platform);
  ProblemInstance again = parse_instance_string(text);
  EXPECT_EQ(again.app->num_tasks(), 15u);
  EXPECT_EQ(serialize_instance(*again.app, again.platform), text);
}

TEST(Io, ShippedInstanceFilesParseAndAnalyze) {
#ifdef RTLB_SOURCE_DIR
  const std::string dir = std::string(RTLB_SOURCE_DIR) + "/examples/instances/";
  for (const char* name : {"paper.rtlb", "radar.rtlb", "avionics.rtlb"}) {
    std::ifstream in(dir + name);
    ASSERT_TRUE(in.good()) << dir + name;
    ProblemInstance inst = parse_instance(in);
    EXPECT_GT(inst.app->num_tasks(), 0u) << name;
    const AnalysisResult res = analyze(*inst.app);
    EXPECT_FALSE(res.infeasible(*inst.app)) << name;
    for (const ResourceBound& b : res.bounds) {
      EXPECT_GE(b.bound, 1) << name;
    }
    if (inst.platform.num_node_types() > 0) {
      AnalysisOptions opts;
      opts.model = SystemModel::Dedicated;
      const AnalysisResult ded = analyze(*inst.app, opts, &inst.platform);
      ASSERT_TRUE(ded.dedicated_cost.has_value()) << name;
      EXPECT_TRUE(ded.dedicated_cost->feasible) << name;
    }
  }
#else
  GTEST_SKIP() << "RTLB_SOURCE_DIR not defined";
#endif
}

TEST(Io, ErrorsCarryLineNumbers) {
  try {
    parse_instance_string("proctype P1\ntask t comp 1 deadline 5 proc NOPE\n");
    FAIL() << "expected ModelError";
  } catch (const ModelError& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("NOPE"), std::string::npos);
  }
}

TEST(Io, RejectsUnknownDirective) {
  EXPECT_THROW(parse_instance_string("frobnicate x\n"), ModelError);
}

TEST(Io, RejectsUnknownKey) {
  EXPECT_THROW(parse_instance_string("proctype P1 size 3\n"), ModelError);
}

TEST(Io, RejectsDanglingKey) {
  EXPECT_THROW(parse_instance_string("proctype P1 cost\n"), ModelError);
}

TEST(Io, RejectsDuplicateTask) {
  EXPECT_THROW(parse_instance_string("proctype P\n"
                                     "task t comp 1 deadline 5 proc P\n"
                                     "task t comp 1 deadline 5 proc P\n"),
               ModelError);
}

TEST(Io, RejectsEdgeWithUnknownTask) {
  EXPECT_THROW(parse_instance_string("proctype P\n"
                                     "task t comp 1 deadline 5 proc P\n"
                                     "edge t missing msg 1\n"),
               ModelError);
}

TEST(Io, RejectsTaskWithoutProc) {
  EXPECT_THROW(parse_instance_string("proctype P\ntask t comp 1 deadline 5\n"), ModelError);
}

TEST(Io, ValidatesParsedInstance) {
  // Parsing runs Application::validate, so an infeasible window is rejected.
  EXPECT_THROW(parse_instance_string("proctype P\ntask t comp 9 rel 5 deadline 10 proc P\n"),
               ModelError);
}

// ---------------------------------------------------------------------------
// The recurrent grammar: transaction / sporadic / ttask / tedge.

constexpr const char* kRecurrent = R"(
proctype CPU cost 5
resource cam cost 3

transaction ctrl period 20 offset 2
ttask ctrl sense comp 3 proc CPU res cam
ttask ctrl act comp 2 offset 4 deadline 15 proc CPU preemptive
tedge ctrl sense act msg 4

sporadic alarm mininter 50 offset 1 horizon 100
ttask alarm react comp 2 proc CPU
)";

TEST(Io, ParsesRecurrentTemplatesWithoutLowering) {
  ProblemInstance inst = parse_instance_string(kRecurrent);
  // Parsing only declares; the flat application stays empty until
  // lower_instance() runs.
  EXPECT_EQ(inst.app->num_tasks(), 0u);
  ASSERT_EQ(inst.workload.transactions.size(), 2u);

  const Transaction& ctrl = inst.workload.transactions[0];
  EXPECT_EQ(ctrl.name, "ctrl");
  EXPECT_EQ(ctrl.kind, ReleaseKind::kPeriodic);
  EXPECT_EQ(ctrl.period, 20);
  EXPECT_EQ(ctrl.offset, 2);
  ASSERT_EQ(ctrl.tasks.size(), 2u);
  EXPECT_EQ(ctrl.tasks[0].name, "sense");
  EXPECT_EQ(ctrl.tasks[0].comp, 3);
  EXPECT_EQ(ctrl.tasks[0].proc, inst.catalog->find("CPU"));
  ASSERT_EQ(ctrl.tasks[0].resources.size(), 1u);
  EXPECT_EQ(ctrl.tasks[0].resources[0], inst.catalog->find("cam"));
  EXPECT_FALSE(ctrl.tasks[0].preemptive);
  EXPECT_EQ(ctrl.tasks[1].offset, 4);
  EXPECT_EQ(ctrl.tasks[1].relative_deadline, 15);
  EXPECT_TRUE(ctrl.tasks[1].preemptive);
  ASSERT_EQ(ctrl.edges.size(), 1u);
  EXPECT_EQ(ctrl.edges[0].from, 0u);
  EXPECT_EQ(ctrl.edges[0].to, 1u);
  EXPECT_EQ(ctrl.edges[0].msg, 4);

  const Transaction& alarm = inst.workload.transactions[1];
  EXPECT_EQ(alarm.kind, ReleaseKind::kSporadic);
  EXPECT_EQ(alarm.period, 50);  // minimum inter-arrival
  EXPECT_EQ(alarm.offset, 1);
  EXPECT_EQ(alarm.horizon, 100);

  // Declaration lines feed the recurrent source map (fix-its anchor here).
  EXPECT_EQ(ctrl.line, 5);
  EXPECT_EQ(ctrl.tasks[0].line, 6);
  EXPECT_EQ(ctrl.tasks[1].line, 7);
  EXPECT_EQ(ctrl.edges[0].line, 8);
  EXPECT_EQ(alarm.line, 10);
}

TEST(Io, RecurrentSyntaxErrorsCarryLineNumbers) {
  const char* cases[] = {
      "transaction t\n",                                     // missing period
      "sporadic s period 5\n",                               // wrong rate key
      "transaction t period 5\ntransaction t period 5\n",    // duplicate
      "ttask ghost job comp 1 proc P\n",                     // unknown transaction
      "proctype P\ntransaction t period 5\n"
      "ttask t a comp 1 proc P\nttask t a comp 1 proc P\n",  // duplicate ttask
      "proctype P\ntransaction t period 5\n"
      "ttask t a comp 1 proc P\ntedge t a missing\n",        // unknown ttask
      "transaction t period 5 horizon 9\n",                  // horizon is sporadic-only
  };
  for (const char* text : cases) {
    EXPECT_THROW(parse_instance_string(text), ModelError) << text;
  }
}

TEST(Io, RecurrentSemanticValuesAreStoredRawForLint) {
  // Syntax accepts a zero period; judging it is the lint layer's job
  // (RTLB-E501), so the parser must not reject or clamp it.
  ProblemInstance inst =
      parse_instance_string("proctype P\ntransaction t period 0\nttask t a comp 1 proc P\n");
  ASSERT_EQ(inst.workload.transactions.size(), 1u);
  EXPECT_EQ(inst.workload.transactions[0].period, 0);
}

}  // namespace
}  // namespace rtlb
