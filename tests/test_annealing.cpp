#include <gtest/gtest.h>

#include "src/sched/annealing.hpp"
#include "src/sched/feasibility.hpp"
#include "src/sched/list_scheduler.hpp"
#include "src/workload/paper_example.hpp"
#include "src/workload/taskset_gen.hpp"

namespace rtlb {
namespace {

class AnnealingTest : public ::testing::Test {
 protected:
  AnnealingTest() : app_(cat_) {
    p_ = cat_.add_processor_type("P");
    r_ = cat_.add_resource("r");
  }

  TaskId add(Time comp, Time rel, Time deadline, std::vector<ResourceId> res = {}) {
    Task t;
    t.name = "t" + std::to_string(app_.num_tasks());
    t.comp = comp;
    t.release = rel;
    t.deadline = deadline;
    t.proc = p_;
    t.resources = std::move(res);
    return app_.add_task(std::move(t));
  }

  ResourceCatalog cat_;
  Application app_;
  ResourceId p_, r_;
};

TEST_F(AnnealingTest, SolvesEasyInstanceImmediately) {
  add(3, 0, 20);
  add(2, 0, 20);
  Capacities caps(cat_.size(), 1);
  const AnnealResult r = anneal_schedule_shared(app_, caps);
  ASSERT_TRUE(r.feasible);
  EXPECT_EQ(r.best_energy, 0);
  EXPECT_TRUE(check_shared(app_, r.schedule, caps).empty());
  // The EDF seed already solves it: one evaluation.
  EXPECT_EQ(r.evaluations, 1);
}

TEST_F(AnnealingTest, EmptyApplicationIsFeasible) {
  Capacities caps(cat_.size(), 1);
  const AnnealResult r = anneal_schedule_shared(app_, caps);
  EXPECT_TRUE(r.feasible);
}

TEST_F(AnnealingTest, ReportsStructuralInfeasibility) {
  add(3, 0, 20);
  Capacities caps(cat_.size(), 1);
  caps.set(p_, 0);
  const AnnealResult r = anneal_schedule_shared(app_, caps);
  EXPECT_FALSE(r.feasible);
  EXPECT_EQ(r.best_energy, kTimeMax);
}

TEST_F(AnnealingTest, ImpossibleDeadlinesStayInfeasible) {
  add(4, 0, 4);
  add(4, 0, 4);
  Capacities caps(cat_.size(), 1);  // 8 ticks of work, 4 ticks of room
  AnnealOptions opts;
  opts.max_evaluations = 500;
  const AnnealResult r = anneal_schedule_shared(app_, caps, opts);
  EXPECT_FALSE(r.feasible);
  EXPECT_GT(r.best_energy, 0);
}

TEST_F(AnnealingTest, DeterministicPerSeed) {
  add(4, 0, 9, {r_});
  add(4, 0, 9, {r_});
  add(3, 2, 12);
  Capacities caps(cat_.size(), 2);
  caps.set(r_, 1);
  AnnealOptions opts;
  opts.seed = 77;
  const AnnealResult a = anneal_schedule_shared(app_, caps, opts);
  const AnnealResult b = anneal_schedule_shared(app_, caps, opts);
  EXPECT_EQ(a.best_energy, b.best_energy);
  EXPECT_EQ(a.evaluations, b.evaluations);
  for (TaskId i = 0; i < app_.num_tasks(); ++i) {
    EXPECT_EQ(a.schedule.items[i].start, b.schedule.items[i].start);
    EXPECT_EQ(a.schedule.items[i].unit, b.schedule.items[i].unit);
  }
}

TEST_F(AnnealingTest, FeasibleResultAlwaysValidates) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    WorkloadParams params;
    params.seed = seed * 3;
    params.num_tasks = 14;
    params.laxity = 1.6;
    ProblemInstance inst = generate_workload(params);
    Capacities caps(inst.catalog->size(), 2);
    AnnealOptions opts;
    opts.seed = seed;
    opts.max_evaluations = 800;
    const AnnealResult r = anneal_schedule_shared(*inst.app, caps, opts);
    if (r.feasible) {
      EXPECT_TRUE(check_shared(*inst.app, r.schedule, caps).empty()) << "seed " << seed;
    }
  }
}

TEST(AnnealingPaper, FindsTheScheduleEdfCannot) {
  // The headline case: on the minimal machine (2,1,2) of the paper example
  // the EDF list scheduler fails, but annealing finds a feasible schedule
  // (test_sim proves one exists by hand; here the search discovers one).
  ProblemInstance inst = paper_example();
  DedicatedConfig config;
  config.instance_types = {0, 0, 1, 2, 2};

  const ListScheduleResult edf = list_schedule_dedicated(*inst.app, inst.platform, config);
  ASSERT_FALSE(edf.feasible);  // the greedy trap

  AnnealOptions opts;
  opts.seed = 3;
  opts.max_evaluations = 20000;
  const AnnealResult r = anneal_schedule_dedicated(*inst.app, inst.platform, config, opts);
  ASSERT_TRUE(r.feasible) << "best energy " << r.best_energy;
  EXPECT_TRUE(check_dedicated(*inst.app, r.schedule, inst.platform, config).empty());
}

TEST(AnnealingDedicated, RespectsHosting) {
  ResourceCatalog cat;
  const ResourceId p = cat.add_processor_type("P");
  const ResourceId r = cat.add_resource("r");
  Application app(cat);
  Task t;
  t.name = "x";
  t.comp = 2;
  t.deadline = 10;
  t.proc = p;
  t.resources = {r};
  app.add_task(t);
  DedicatedPlatform plat;
  plat.add_node_type(NodeType{"bare", p, {}, 1});
  DedicatedConfig config;
  config.instance_types = {0};
  const AnnealResult res = anneal_schedule_dedicated(app, plat, config);
  EXPECT_FALSE(res.feasible);  // structurally unhostable
}

}  // namespace
}  // namespace rtlb
