#include <gtest/gtest.h>

#include "src/sched/feasibility.hpp"
#include "src/sched/list_scheduler.hpp"
#include "src/sim/event_queue.hpp"
#include "src/sim/network.hpp"
#include "src/sim/simulator.hpp"
#include "src/workload/paper_example.hpp"
#include "src/workload/taskset_gen.hpp"

namespace rtlb {
namespace {

TEST(EventQueue, OrdersByTimePhaseSeq) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(5, EventPhase::Start, [&] { order.push_back(3); });
  q.schedule(5, EventPhase::Completion, [&] { order.push_back(1); });
  q.schedule(5, EventPhase::Delivery, [&] { order.push_back(2); });
  q.schedule(2, EventPhase::Start, [&] { order.push_back(0); });
  q.run_all();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(q.now(), 5);
  EXPECT_EQ(q.events_processed(), 4u);
}

TEST(EventQueue, HandlersMayScheduleMore) {
  EventQueue q;
  int fired = 0;
  q.schedule(1, EventPhase::Start, [&] {
    ++fired;
    q.schedule(3, EventPhase::Start, [&] { ++fired; });
  });
  q.run_all();
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(q.now(), 3);
}

TEST(EventQueue, RejectsPastEvents) {
  EventQueue q;
  q.schedule(5, EventPhase::Start, [] {});
  q.run_all();
  EXPECT_THROW(q.schedule(2, EventPhase::Start, [] {}), std::logic_error);
}

TEST(Network, DeliversAfterLatencyAndCounts) {
  EventQueue q;
  Network net(q);
  Time delivered_at = -1;
  q.schedule(2, EventPhase::Start, [&] {
    net.send(7, [&] { delivered_at = q.now(); });
  });
  q.run_all();
  EXPECT_EQ(delivered_at, 9);
  EXPECT_EQ(net.messages_sent(), 1u);
  EXPECT_EQ(net.ticks_in_flight(), 7);
  EXPECT_EQ(net.ticks_queued(), 0);
}

TEST(Network, ContentionFreeIsTheDefault) {
  // Two simultaneous sends both fly immediately with links = 0.
  EventQueue q;
  Network net(q);
  std::vector<Time> arrivals;
  q.schedule(0, EventPhase::Start, [&] {
    net.send(5, [&] { arrivals.push_back(q.now()); });
    net.send(5, [&] { arrivals.push_back(q.now()); });
  });
  q.run_all();
  EXPECT_EQ(arrivals, (std::vector<Time>{5, 5}));
  EXPECT_EQ(net.ticks_queued(), 0);
}

TEST(Network, SingleBusSerializesMessages) {
  EventQueue q;
  Network net(q, /*links=*/1);
  std::vector<Time> arrivals;
  q.schedule(0, EventPhase::Start, [&] {
    net.send(5, [&] { arrivals.push_back(q.now()); });
    net.send(5, [&] { arrivals.push_back(q.now()); });
    net.send(2, [&] { arrivals.push_back(q.now()); });
  });
  q.run_all();
  EXPECT_EQ(arrivals, (std::vector<Time>{5, 10, 12}));
  EXPECT_EQ(net.ticks_queued(), 5 + 10);  // second waited 5, third waited 10
}

TEST(Network, TwoLinksHalveTheQueueing) {
  EventQueue q;
  Network net(q, /*links=*/2);
  std::vector<Time> arrivals;
  q.schedule(0, EventPhase::Start, [&] {
    for (int k = 0; k < 3; ++k) {
      net.send(4, [&] { arrivals.push_back(q.now()); });
    }
  });
  q.run_all();
  EXPECT_EQ(arrivals, (std::vector<Time>{4, 4, 8}));
  EXPECT_EQ(net.ticks_queued(), 4);
}

class SimTest : public ::testing::Test {
 protected:
  SimTest() : app_(cat_) {
    p_ = cat_.add_processor_type("P");
    r_ = cat_.add_resource("r");
  }

  TaskId add(Time comp, Time rel, Time deadline, std::vector<ResourceId> res = {}) {
    Task t;
    t.name = "t" + std::to_string(app_.num_tasks());
    t.comp = comp;
    t.release = rel;
    t.deadline = deadline;
    t.proc = p_;
    t.resources = std::move(res);
    return app_.add_task(std::move(t));
  }

  ResourceCatalog cat_;
  Application app_;
  ResourceId p_, r_;
};

TEST_F(SimTest, CleanRunReportsOk) {
  const TaskId a = add(3, 0, 20);
  const TaskId b = add(2, 0, 20);
  app_.add_edge(a, b, 4);
  Capacities caps(cat_.size(), 2);
  Schedule s(2);
  s.items[a] = {0, 0};
  s.items[b] = {7, 1};
  const SimReport rep = simulate_shared(app_, s, caps);
  EXPECT_TRUE(rep.ok) << (rep.violations.empty() ? "" : rep.violations[0]);
  EXPECT_EQ(rep.finish_time, 9);
  EXPECT_EQ(rep.messages_delivered, 1u);
  EXPECT_EQ(rep.peak_usage[p_], 1);  // a ends at 3, b starts at 7
  EXPECT_FALSE(rep.trace.empty());
}

TEST_F(SimTest, CoLocatedMessageSkipsNetwork) {
  const TaskId a = add(3, 0, 20);
  const TaskId b = add(2, 0, 20);
  app_.add_edge(a, b, 4);
  Capacities caps(cat_.size(), 1);
  Schedule s(2);
  s.items[a] = {0, 0};
  s.items[b] = {3, 0};
  const SimReport rep = simulate_shared(app_, s, caps);
  EXPECT_TRUE(rep.ok);
  EXPECT_EQ(rep.messages_delivered, 0u);  // co-located: nothing on the ICN
}

TEST_F(SimTest, BusContentionBreaksContentionFreeSchedules) {
  // Two senders complete at t = 3 and message two receivers scheduled under
  // the paper's contention-free assumption (arrivals at 7). On a 1-link bus
  // one message queues until 11, so one receiver starts before its input.
  const TaskId s1 = add(3, 0, 40);
  const TaskId s2 = add(3, 0, 40);
  const TaskId r1 = add(2, 0, 40);
  const TaskId r2 = add(2, 0, 40);
  app_.add_edge(s1, r1, 4);
  app_.add_edge(s2, r2, 4);
  Capacities caps(cat_.size(), 4);
  Schedule s(4);
  s.items[s1] = {0, 0};
  s.items[s2] = {0, 1};
  s.items[r1] = {7, 2};
  s.items[r2] = {7, 3};

  const SimReport free_net = simulate_shared(app_, s, caps);
  EXPECT_TRUE(free_net.ok);
  EXPECT_EQ(free_net.network_queued, 0);

  SimOptions bus;
  bus.network_links = 1;
  const SimReport contended = simulate_shared(app_, s, caps, bus);
  EXPECT_FALSE(contended.ok);
  EXPECT_EQ(contended.network_queued, 4);
  EXPECT_NE(contended.violations[0].find("before the message"), std::string::npos);

  // Two links restore the paper's model for this schedule.
  bus.network_links = 2;
  EXPECT_TRUE(simulate_shared(app_, s, caps, bus).ok);
}

TEST_F(SimTest, CatchesEarlyStartBeforeMessage) {
  const TaskId a = add(3, 0, 20);
  const TaskId b = add(2, 0, 20);
  app_.add_edge(a, b, 4);
  Capacities caps(cat_.size(), 2);
  Schedule s(2);
  s.items[a] = {0, 0};
  s.items[b] = {5, 1};  // message lands at 7
  const SimReport rep = simulate_shared(app_, s, caps);
  EXPECT_FALSE(rep.ok);
  EXPECT_NE(rep.violations[0].find("message"), std::string::npos);
}

TEST_F(SimTest, CatchesDeadlineMiss) {
  const TaskId a = add(5, 0, 4);
  Capacities caps(cat_.size(), 1);
  Schedule s(1);
  s.items[a] = {0, 0};
  const SimReport rep = simulate_shared(app_, s, caps);
  EXPECT_FALSE(rep.ok);
  EXPECT_NE(rep.violations[0].find("deadline"), std::string::npos);
}

TEST_F(SimTest, CatchesResourceOverCapacityAndTracksPeak) {
  const TaskId a = add(4, 0, 20, {r_});
  const TaskId b = add(4, 0, 20, {r_});
  Capacities caps(cat_.size(), 2);
  caps.set(r_, 1);
  Schedule s(2);
  s.items[a] = {0, 0};
  s.items[b] = {2, 1};
  const SimReport rep = simulate_shared(app_, s, caps);
  EXPECT_FALSE(rep.ok);
  EXPECT_EQ(rep.peak_usage[r_], 2);
  caps.set(r_, 2);
  const SimReport rep2 = simulate_shared(app_, s, caps);
  EXPECT_TRUE(rep2.ok);
}

TEST_F(SimTest, CatchesBusyCpu) {
  const TaskId a = add(4, 0, 20);
  const TaskId b = add(4, 0, 20);
  Capacities caps(cat_.size(), 1);
  Schedule s(2);
  s.items[a] = {0, 0};
  s.items[b] = {2, 0};
  const SimReport rep = simulate_shared(app_, s, caps);
  EXPECT_FALSE(rep.ok);
  EXPECT_NE(rep.violations[0].find("busy"), std::string::npos);
}

TEST_F(SimTest, UnplacedTaskIsViolation) {
  add(2, 0, 9);
  Capacities caps(cat_.size(), 1);
  Schedule s(1);
  const SimReport rep = simulate_shared(app_, s, caps);
  EXPECT_FALSE(rep.ok);
  EXPECT_NE(rep.violations[0].find("not placed"), std::string::npos);
}

TEST_F(SimTest, DedicatedRunAndHostViolation) {
  const TaskId a = add(3, 0, 20, {r_});
  DedicatedPlatform plat;
  plat.add_node_type(NodeType{"rich", p_, {{r_, 1}}, 5});
  plat.add_node_type(NodeType{"bare", p_, {}, 2});
  DedicatedConfig config;
  config.instance_types = {0, 1};
  Schedule s(1);
  s.items[a] = {0, 0};
  EXPECT_TRUE(simulate_dedicated(app_, s, plat, config).ok);
  s.items[a] = {0, 1};
  const SimReport rep = simulate_dedicated(app_, s, plat, config);
  EXPECT_FALSE(rep.ok);
  EXPECT_NE(rep.violations[0].find("cannot host"), std::string::npos);
}

TEST(SimCrossCheck, SimulatorAgreesWithStaticValidator) {
  // On random workloads, run the list scheduler and compare the simulator's
  // verdict with check_shared on both the intact schedule and a corrupted
  // copy.
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    WorkloadParams params;
    params.seed = seed;
    params.num_tasks = 18;
    params.laxity = 3.0;
    ProblemInstance inst = generate_workload(params);
    Capacities caps(inst.catalog->size(), 3);
    const ListScheduleResult r = list_schedule_shared(*inst.app, caps);
    if (!r.feasible) continue;
    EXPECT_TRUE(check_shared(*inst.app, r.schedule, caps).empty());
    EXPECT_TRUE(simulate_shared(*inst.app, r.schedule, caps).ok) << "seed " << seed;

    Schedule broken = r.schedule;
    broken.items[0].start += 1;  // nudge one task; both checkers must agree
    const bool static_ok = check_shared(*inst.app, broken, caps).empty();
    const bool dynamic_ok = simulate_shared(*inst.app, broken, caps).ok;
    EXPECT_EQ(static_ok, dynamic_ok) << "seed " << seed;
  }
}

TEST(SimPaper, MinimalPaperMachineIsActuallyFeasible) {
  // The step-4 ILP says no machine cheaper than (2,1,2) can work; this
  // hand-derived schedule proves (2,1,2) itself DOES work -- i.e. the
  // paper's cost bound is tight on its own example. (The EDF heuristic
  // cannot find this schedule; it needs deliberate co-location clusters,
  // which is precisely the optimality gap the bounds are meant to expose.)
  ProblemInstance inst = paper_example();
  DedicatedConfig config;
  config.instance_types = {0, 0, 1, 2, 2};  // 2x{P1,r1}, 1x{P1}, 2x{P2}

  const Application& app = *inst.app;
  Schedule s(app.num_tasks());
  auto place = [&](const char* name, Time start, int inst_id) {
    s.items[app.find_task(name)] = {start, inst_id};
  };
  // Node 0 ({P1,r1}): the T2 -> T5 -> T9 -> T14 -> T13 cluster.
  place("T2", 0, 0);
  place("T5", 6, 0);
  place("T9", 16, 0);
  place("T14", 19, 0);
  place("T13", 24, 0);
  // Node 1 ({P1,r1}): T1 -> T4, then the T11/T10 -> T15 cluster.
  place("T1", 0, 1);
  place("T4", 3, 1);
  place("T11", 20, 1);
  place("T10", 22, 1);
  place("T15", 30, 1);
  // Node 2 ({P1}): the resource-free P1 tasks.
  place("T3", 3, 2);
  place("T12", 25, 2);
  // Nodes 3-4 ({P2}).
  place("T6", 11, 3);
  place("T8", 18, 3);
  place("T7", 10, 4);

  const auto violations = check_dedicated(app, s, inst.platform, config);
  EXPECT_TRUE(violations.empty()) << (violations.empty() ? "" : violations[0]);
  const SimReport rep = simulate_dedicated(app, s, inst.platform, config);
  EXPECT_TRUE(rep.ok) << (rep.violations.empty() ? "" : rep.violations[0]);
  EXPECT_EQ(rep.finish_time, 36);
}

}  // namespace
}  // namespace rtlb
