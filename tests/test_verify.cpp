// Certificate layer: emission, JSON round-trip, the independent checker, and
// the mutation-rejection contract.
//
// The load-bearing property: for every result the pipeline produces, the
// emitted certificate passes check_certificate() -- across models, engine
// configurations (serial / multi-threaded / memoized session), and random
// workload shapes. And the dual property: corrupting any single field of a
// valid certificate is REJECTED with the pinpointed side-condition, so the
// checker cannot be fooled by a certificate that merely looks right.
#include <gtest/gtest.h>

#include <fstream>
#include <functional>
#include <sstream>
#include <string>
#include <vector>

#include "src/core/analysis.hpp"
#include "src/core/report.hpp"
#include "src/core/session.hpp"
#include "src/model/io.hpp"
#include "src/verify/certificate.hpp"
#include "src/verify/checker.hpp"
#include "src/verify/emit.hpp"
#include "src/workload/paper_example.hpp"
#include "src/workload/taskset_gen.hpp"

namespace rtlb {
namespace {

bool has_rule(const CheckReport& report, std::string_view rule_fragment) {
  for (const CheckFailure& f : report.failures) {
    if (f.rule.find(rule_fragment) != std::string::npos) return true;
  }
  return false;
}

std::string rules_of(const CheckReport& report) {
  std::string out;
  for (const CheckFailure& f : report.failures) out += f.rule + " ";
  return out;
}

AnalysisOptions checked_options(SystemModel model, bool joint = false) {
  AnalysisOptions options;
  options.model = model;
  options.joint_bounds = joint;
  options.check_certificates = true;
  return options;
}

// ---------------------------------------------------------------------------
// The paper's 15-task example: every configuration must self-certify.

TEST(CertifyPaper, EveryConfigurationSelfCertifies) {
  ProblemInstance inst = paper_example();
  for (const SystemModel model : {SystemModel::Shared, SystemModel::Dedicated}) {
    for (const bool joint : {false, true}) {
      const AnalysisResult result =
          analyze(*inst.app, checked_options(model, joint), &inst.platform);
      ASSERT_TRUE(result.certificate.has_value());
      ASSERT_TRUE(result.certificate_check.has_value());
      EXPECT_TRUE(result.certificate_check->valid)
          << result.certificate_check->summary();
      // The checker independently re-derived the paper's headline numbers.
      EXPECT_EQ(result.bounds[0].bound, paper_expected_bounds().lb_p1);
    }
  }
}

TEST(CertifyPaper, ReportSurfacesTheVerdict) {
  ProblemInstance inst = paper_example();
  const AnalysisResult checked =
      analyze(*inst.app, checked_options(SystemModel::Dedicated), &inst.platform);
  const Json report = report_json(*inst.app, checked);
  const Json* cert = report.find("certificate");
  ASSERT_NE(cert, nullptr);
  EXPECT_TRUE(cert->find("emitted")->as_bool());
  EXPECT_TRUE(cert->find("checked")->as_bool());
  EXPECT_TRUE(cert->find("valid")->as_bool());
  EXPECT_EQ(cert->find("failures")->size(), 0u);

  // With the feature off the key is absent and the report is unchanged.
  const AnalysisResult plain = analyze(*inst.app, {}, &inst.platform);
  EXPECT_EQ(report_json(*inst.app, plain).find("certificate"), nullptr);
}

// ---------------------------------------------------------------------------
// JSON round-trip: serialize -> parse -> re-check, and dump stability.

TEST(CertifyRoundTrip, PaperCertificateSurvivesJson) {
  ProblemInstance inst = paper_example();
  const AnalysisResult result =
      analyze(*inst.app, checked_options(SystemModel::Dedicated, true), &inst.platform);
  const Json doc = certificate_json(*result.certificate);
  const Certificate reparsed = parse_certificate_text(doc.dump(2));
  const CheckReport report = check_certificate(reparsed, *inst.app, &inst.platform);
  EXPECT_TRUE(report.valid) << report.summary();
  // Serialization is deterministic and lossless at the JSON level.
  EXPECT_EQ(certificate_json(reparsed).dump(2), doc.dump(2));
}

TEST(CertifyRoundTrip, GeneratedWorkloadsSurviveJson) {
  for (const GraphShape shape :
       {GraphShape::Layered, GraphShape::ForkJoin, GraphShape::Pipeline}) {
    WorkloadParams params;
    params.seed = 7 + static_cast<std::uint64_t>(shape);
    params.shape = shape;
    params.num_tasks = 16;
    params.preemptive_prob = 0.3;
    ProblemInstance inst = generate_workload(params);
    const AnalysisResult result =
        analyze(*inst.app, checked_options(SystemModel::Dedicated, true), &inst.platform);
    const Certificate reparsed =
        parse_certificate_text(certificate_json(*result.certificate).dump(2));
    const CheckReport report = check_certificate(reparsed, *inst.app, &inst.platform);
    EXPECT_TRUE(report.valid) << report.summary();
  }
}

// ---------------------------------------------------------------------------
// Every shipped example instance validates under check_certificates.

void check_shipped_instance(const std::string& name) {
  const std::string path = std::string(RTLB_SOURCE_DIR) + "/examples/instances/" + name;
  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << path;
  ProblemInstance inst = parse_instance(in);
  const DedicatedPlatform* platform =
      inst.platform.num_node_types() > 0 ? &inst.platform : nullptr;
  const SystemModel model = platform ? SystemModel::Dedicated : SystemModel::Shared;
  for (const bool joint : {false, true}) {
    const AnalysisResult result =
        analyze(*inst.app, checked_options(model, joint), platform);
    EXPECT_TRUE(result.certificate_check->valid)
        << name << ": " << result.certificate_check->summary();
  }
}

TEST(CertifyShipped, EveryExampleInstanceValidates) {
  check_shipped_instance("paper.rtlb");
  check_shipped_instance("avionics.rtlb");
  check_shipped_instance("radar.rtlb");
}

// ---------------------------------------------------------------------------
// Randomized corpus: 3 configurations x 3 seeds, certified on the serial,
// multi-threaded, and session-warm paths, with bit-identical bounds across
// all three.

TEST(CertifyCorpus, SerialParallelAndSessionAgreeAndCertify) {
  struct Config {
    SystemModel model;
    bool joint;
    GraphShape shape;
  };
  const Config configs[] = {
      {SystemModel::Shared, false, GraphShape::Random},
      {SystemModel::Dedicated, false, GraphShape::Layered},
      {SystemModel::Dedicated, true, GraphShape::SeriesParallel},
  };
  for (const Config& config : configs) {
    for (const std::uint64_t seed : {11u, 12u, 13u}) {
      WorkloadParams params;
      params.seed = seed;
      params.shape = config.shape;
      params.num_tasks = 18;
      params.preemptive_prob = 0.25;
      params.release_spread = 0.3;
      ProblemInstance inst = generate_workload(params);
      const DedicatedPlatform* platform =
          config.model == SystemModel::Dedicated ? &inst.platform : nullptr;

      AnalysisOptions serial = checked_options(config.model, config.joint);
      serial.lower_bound.num_threads = 1;
      AnalysisOptions threaded = serial;
      threaded.lower_bound.num_threads = 4;
      threaded.lower_bound.enable_pruning = true;

      const AnalysisResult cold = analyze(*inst.app, serial, platform);
      const AnalysisResult parallel = analyze(*inst.app, threaded, platform);

      // Session path: a cold query, a cache-hit query (re-judged), and a
      // no-op delta that exercises the revalidation path.
      AnalysisSession session(*inst.app, serial, platform);
      const AnalysisResult& warm1 = session.analyze();
      EXPECT_TRUE(warm1.certificate_check->valid);
      session.set_comp(0, inst.app->task(0).comp);  // no-op: stays cached
      const AnalysisResult& warm2 = session.analyze();
      EXPECT_TRUE(warm2.certificate_check->valid);

      ASSERT_EQ(cold.bounds.size(), parallel.bounds.size());
      ASSERT_EQ(cold.bounds.size(), warm2.bounds.size());
      for (std::size_t i = 0; i < cold.bounds.size(); ++i) {
        EXPECT_EQ(cold.bounds[i].bound, parallel.bounds[i].bound);
        EXPECT_EQ(cold.bounds[i].bound, warm2.bounds[i].bound);
        EXPECT_EQ(cold.bounds[i].witness_t1, warm2.bounds[i].witness_t1);
        EXPECT_EQ(cold.bounds[i].witness_t2, warm2.bounds[i].witness_t2);
      }
      EXPECT_TRUE(cold.certificate_check->valid) << cold.certificate_check->summary();
      EXPECT_TRUE(parallel.certificate_check->valid);
    }
  }
}

// ---------------------------------------------------------------------------
// Mutation rejection: corrupting any field of a valid certificate must be
// caught, with the failure pinpointing the violated side-condition.

class CertifyMutations : public ::testing::Test {
 protected:
  CertifyMutations() : inst_(paper_example()) {
    AnalysisOptions options;
    options.model = SystemModel::Dedicated;
    options.joint_bounds = true;
    options.emit_certificates = true;
    result_ = analyze(*inst_.app, options, &inst_.platform);
    cert_ = *result_.certificate;
  }

  /// Apply `mutate` to a copy of the valid certificate and expect the checker
  /// to reject it with a failure whose rule starts with `rule_prefix`.
  void expect_rejected(const std::string& label, std::string_view rule_prefix,
                       const std::function<void(Certificate&)>& mutate) {
    Certificate broken = cert_;
    mutate(broken);
    const CheckReport report = check_certificate(broken, *inst_.app, &inst_.platform);
    EXPECT_FALSE(report.valid) << label << ": mutation was accepted";
    EXPECT_TRUE(has_rule(report, rule_prefix))
        << label << ": expected a " << rule_prefix << " failure, got: " << rules_of(report);
  }

  ProblemInstance inst_;
  AnalysisResult result_;
  Certificate cert_;
};

TEST_F(CertifyMutations, ValidBaseline) {
  const CheckReport report = check_certificate(cert_, *inst_.app, &inst_.platform);
  EXPECT_TRUE(report.valid) << report.summary();
}

TEST_F(CertifyMutations, MetaFields) {
  expect_rejected("num_tasks", "meta.num-tasks", [](Certificate& c) { c.num_tasks += 1; });
  expect_rejected("window count", "meta.windows",
                  [](Certificate& c) { c.windows.pop_back(); });
  expect_rejected("est out of range", "meta.range",
                  [](Certificate& c) { c.windows[0].est = kTimeMax * 2; });
  // A dedicated certificate checked without a platform is a meta mismatch.
  const CheckReport report = check_certificate(cert_, *inst_.app, nullptr);
  EXPECT_FALSE(report.valid);
  EXPECT_TRUE(has_rule(report, "meta.platform")) << rules_of(report);
}

TEST_F(CertifyMutations, WindowFacts) {
  expect_rejected("est bumped", "T1.", [](Certificate& c) { c.windows[4].est += 1; });
  expect_rejected("est lowered", "T1.", [](Certificate& c) { c.windows[4].est -= 1; });
  expect_rejected("lct bumped", "T2.", [](Certificate& c) { c.windows[4].lct += 1; });
  expect_rejected("lct lowered", "T2.", [](Certificate& c) { c.windows[4].lct -= 1; });
  expect_rejected("bogus merge pred", "T1.",
                  [](Certificate& c) { c.windows[0].merged_pred.push_back(1); });
  // Task 14 merges preds {9, 10} (Section 8); claiming the empty set instead
  // must fail the prefix-minimality side-condition.
  expect_rejected("dropped merge set", "T1.",
                  [](Certificate& c) { c.windows[14].merged_pred.clear(); });
}

TEST_F(CertifyMutations, PartitionFacts) {
  expect_rejected("task dropped from block", "T5.",
                  [](Certificate& c) { c.partitions[0].blocks[0].pop_back(); });
  expect_rejected("task duplicated across blocks", "T5.", [](Certificate& c) {
    c.partitions[0].blocks.back().push_back(c.partitions[0].blocks[0][0]);
  });
  expect_rejected("separation fact tampered", "T5.separation",
                  [](Certificate& c) { c.partitions[0].separations[0].later_start -= 1; });
  expect_rejected("resource list tampered", "T5.resources",
                  [](Certificate& c) { c.partitions.pop_back(); });
}

TEST_F(CertifyMutations, BoundWitnesses) {
  expect_rejected("bound bumped", "E6.3.ceil", [](Certificate& c) { c.bounds[0].bound += 1; });
  expect_rejected("negative bound", "E6.3.",
                  [](Certificate& c) { c.bounds[0].bound = -1; });
  expect_rejected("witness removed", "E6.3.witness-missing",
                  [](Certificate& c) { c.bounds[0].witness.reset(); });
  expect_rejected("psi term inflated", ".psi",
                  [](Certificate& c) { c.bounds[0].witness->terms[0].psi += 1; });
  expect_rejected("demand inflated", "E6.3.theta-sum",
                  [](Certificate& c) { c.bounds[0].witness->demand += 1; });
  expect_rejected("duplicate term", "E6.3.term-dup", [](Certificate& c) {
    c.bounds[0].witness->terms.push_back(c.bounds[0].witness->terms[0]);
  });
  expect_rejected("interval inverted", "E6.3.interval", [](Certificate& c) {
    std::swap(c.bounds[0].witness->t1, c.bounds[0].witness->t2);
  });
}

TEST_F(CertifyMutations, JointFacts) {
  ASSERT_TRUE(cert_.has_joint);
  ASSERT_FALSE(cert_.joint.empty());
  expect_rejected("joint bound bumped", "E6.3.ceil",
                  [](Certificate& c) { c.joint[0].bound += 1; });
  expect_rejected("joint pair inverted", "E6.3.pair",
                  [](Certificate& c) { std::swap(c.joint[0].a, c.joint[0].b); });
}

TEST_F(CertifyMutations, SharedCost) {
  expect_rejected("total inflated", "E7.1.sum",
                  [](Certificate& c) { c.shared_cost.total += 1; });
  expect_rejected("units tampered", "E7.1.term",
                  [](Certificate& c) { c.shared_cost.terms[0].units += 1; });
  expect_rejected("unit cost tampered", "E7.1.",
                  [](Certificate& c) { c.shared_cost.terms[0].unit_cost += 1; });
}

TEST_F(CertifyMutations, DedicatedCost) {
  ASSERT_TRUE(cert_.dedicated_cost.has_value());
  expect_rejected("total lowered", "E7.2.primal",
                  [](Certificate& c) { c.dedicated_cost->total -= 1; });
  expect_rejected("assembly tampered", "E7.2.primal",
                  [](Certificate& c) { c.dedicated_cost->node_counts[0] = 0; });
  expect_rejected("dual inflated", "E7.2.dual",
                  [](Certificate& c) { c.dedicated_cost->dual[0] += 1000.0; });
  expect_rejected("negative dual", "E7.2.dual",
                  [](Certificate& c) { c.dedicated_cost->dual[0] = -1.0; });
  expect_rejected("relaxation overstated", "E7.2.dual-value",
                  [](Certificate& c) { c.dedicated_cost->relaxation += 1.0; });
  expect_rejected("uncertifiable infeasibility", "E7.2.reason", [](Certificate& c) {
    c.dedicated_cost->feasible = false;
    c.dedicated_cost->infeasible_reason = "ilp-node-limit";
  });
  expect_rejected("bogus infeasibility claim", "E7.2.", [](Certificate& c) {
    c.dedicated_cost->feasible = false;
    c.dedicated_cost->infeasible_reason = "task-unhostable";
    c.dedicated_cost->detail_task = 0;
  });
}

// ---------------------------------------------------------------------------
// Structural rejection happens at parse time (exit 2 territory for the CLI),
// before the checker ever sees values.

TEST(CertifyFormat, ParseRejectsStructuralDamage) {
  ProblemInstance inst = paper_example();
  AnalysisOptions options;
  options.model = SystemModel::Dedicated;
  options.emit_certificates = true;
  const AnalysisResult result = analyze(*inst.app, options, &inst.platform);
  Json doc = certificate_json(*result.certificate);

  Json bad_version = Json::parse(doc.dump(0));
  bad_version.set("version", 99);
  EXPECT_THROW(parse_certificate(bad_version), CertificateFormatError);

  Json bad_model = Json::parse(doc.dump(0));
  bad_model.set("model", "hybrid");
  EXPECT_THROW(parse_certificate(bad_model), CertificateFormatError);

  Json bad_type = Json::parse(doc.dump(0));
  bad_type.set("num_tasks", "fifteen");
  EXPECT_THROW(parse_certificate(bad_type), CertificateFormatError);

  EXPECT_THROW(parse_certificate_text("{\"version\": 1"), JsonParseError);
}

}  // namespace
}  // namespace rtlb
