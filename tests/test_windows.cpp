// Property suite for the flattened windows engine (src/core/est_lct.cpp).
//
// Three families of claims, each over generated workloads AND a hand-built
// tie-heavy fixture:
//  (1) Equivalence: compute_windows() == compute_windows_reference() -- the
//      arena/incremental-packing engine against the verbatim Figure 2/3
//      implementation, field for field (est, lct, merged_pred, merged_succ).
//  (2) Determinism: serial and parallel sweeps are bit-identical at 1, 2, 4
//      and 8 workers. The merge loop's tie rules (candidate order, packing
//      order, tie-correction continue/break) are exactly where a refactor
//      would silently diverge, so the fixture stacks duplicate EST/LCT keys.
//  (3) Certificates: the emitted WindowFacts survive an emit -> serialize ->
//      parse -> independent-check round trip, and their JSON is
//      byte-identical across the serial, parallel, and warm-session paths.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/core/analysis.hpp"
#include "src/core/est_lct.hpp"
#include "src/core/session.hpp"
#include "src/verify/certificate.hpp"
#include "src/verify/checker.hpp"
#include "src/workload/taskset_gen.hpp"

namespace rtlb {
namespace {

/// The generator configs the suite sweeps (x3 seeds each): a dense layered
/// DAG with tight deadlines (the bench shape), a fork-join with heavy
/// messages (merge-set churn on both sides), and a sparse random DAG with
/// spread releases (deep topological levels for the parallel rounds).
std::vector<WorkloadParams> suite_configs() {
  std::vector<WorkloadParams> configs;
  {
    WorkloadParams p;
    p.shape = GraphShape::Layered;
    p.num_tasks = 64;
    p.num_layers = 5;
    p.edge_prob = 0.3;
    p.laxity = 1.3;
    configs.push_back(p);
  }
  {
    WorkloadParams p;
    p.shape = GraphShape::ForkJoin;
    p.num_tasks = 48;
    p.msg_max = 12;
    p.laxity = 2.0;
    configs.push_back(p);
  }
  {
    WorkloadParams p;
    p.shape = GraphShape::Random;
    p.num_tasks = 80;
    p.edge_prob = 0.1;
    p.laxity = 1.6;
    p.release_spread = 0.5;
    configs.push_back(p);
  }
  return configs;
}

constexpr std::uint64_t kSeeds[] = {1, 2, 3};

TEST(WindowsProperty, FlatEngineMatchesReference) {
  for (const WorkloadParams& base : suite_configs()) {
    for (std::uint64_t seed : kSeeds) {
      WorkloadParams p = base;
      p.seed = seed;
      const ProblemInstance inst = generate_workload(p);
      SharedMergeOracle oracle;
      const TaskWindows flat = compute_windows(*inst.app, oracle);
      const TaskWindows ref = compute_windows_reference(*inst.app, oracle);
      EXPECT_EQ(flat, ref) << "shape " << static_cast<int>(p.shape) << " seed " << seed;
    }
  }
}

TEST(WindowsProperty, SerialEqualsParallelBitForBit) {
  for (const WorkloadParams& base : suite_configs()) {
    for (std::uint64_t seed : kSeeds) {
      WorkloadParams p = base;
      p.seed = seed;
      const ProblemInstance inst = generate_workload(p);
      SharedMergeOracle oracle;
      const TaskWindows serial = compute_windows(*inst.app, oracle, 1);
      for (int threads : {2, 4, 8}) {
        EXPECT_EQ(serial, compute_windows(*inst.app, oracle, threads))
            << "shape " << static_cast<int>(p.shape) << " seed " << seed << " threads "
            << threads;
      }
    }
  }
}

TEST(WindowsProperty, CertificateRoundTripsPerInstance) {
  AnalysisOptions options;
  options.emit_certificates = true;
  for (const WorkloadParams& base : suite_configs()) {
    for (std::uint64_t seed : kSeeds) {
      WorkloadParams p = base;
      p.seed = seed;
      const ProblemInstance inst = generate_workload(p);
      const AnalysisResult result = analyze(*inst.app, options);
      ASSERT_TRUE(result.certificate.has_value());
      const Certificate reparsed =
          parse_certificate_text(certificate_json(*result.certificate).dump(2));
      const CheckReport report = check_certificate(reparsed, *inst.app, nullptr);
      EXPECT_TRUE(report.valid) << "shape " << static_cast<int>(p.shape) << " seed "
                                << seed << ": " << report.summary();
    }
  }
}

/// Fixture with deliberately duplicated EST/LCT keys: four identical fork
/// branches (same comp, release, deadline, message size, processor type)
/// between a common source and sink. Every candidate-sort key, packing key,
/// and merge-gain comparison ties across the branches, so the windows -- and
/// the merge sets the certificate reports -- are determined purely by the
/// documented id tie-breaks.
class WindowsTieBreakTest : public ::testing::Test {
 protected:
  WindowsTieBreakTest() : app_(cat_) {
    const ResourceId p1 = cat_.add_processor_type("P1");
    Task src;
    src.name = "src";
    src.comp = 3;
    src.release = 0;
    src.deadline = 60;
    src.proc = p1;
    const TaskId a = app_.add_task(std::move(src));
    std::vector<TaskId> mid;
    for (int k = 0; k < 4; ++k) {
      Task t;
      t.name = "m" + std::to_string(k);
      t.comp = 2;
      t.release = 0;
      t.deadline = 40;
      t.proc = p1;
      mid.push_back(app_.add_task(std::move(t)));
    }
    Task sink;
    sink.name = "sink";
    sink.comp = 2;
    sink.release = 0;
    sink.deadline = 60;
    sink.proc = p1;
    const TaskId z = app_.add_task(std::move(sink));
    for (TaskId m : mid) {
      app_.add_edge(a, m, 10);  // large message: merging pays on the LCT side
      app_.add_edge(m, z, 10);  // and on the EST side
    }
  }

  ResourceCatalog cat_;
  Application app_;
};

TEST_F(WindowsTieBreakTest, DuplicateKeysResolveIdenticallyAcrossPaths) {
  SharedMergeOracle oracle;
  const TaskWindows serial = compute_windows(app_, oracle, 1);
  // The reference implementation pins the documented tie-break semantics.
  EXPECT_EQ(serial, compute_windows_reference(app_, oracle));
  for (int threads : {2, 4, 8}) {
    EXPECT_EQ(serial, compute_windows(app_, oracle, threads)) << "threads " << threads;
  }
}

TEST_F(WindowsTieBreakTest, CertificatesByteIdenticalAcrossSerialParallelAndWarmSession) {
  AnalysisOptions serial_options;
  serial_options.emit_certificates = true;
  const AnalysisResult cold = analyze(app_, serial_options);
  ASSERT_TRUE(cold.certificate.has_value());
  const std::string cold_cert = certificate_json(*cold.certificate).dump(2);

  AnalysisOptions parallel_options = serial_options;
  parallel_options.lower_bound.num_threads = 4;
  const AnalysisResult parallel = analyze(app_, parallel_options);
  ASSERT_TRUE(parallel.certificate.has_value());
  EXPECT_EQ(cold.windows, parallel.windows);
  EXPECT_EQ(cold_cert, certificate_json(*parallel.certificate).dump(2));

  // Warm-session path: perturb a deadline (invalidating the memoized
  // windows), revert it, and re-query -- the recomputed-in-session result
  // must be byte-identical to the cold one.
  AnalysisSession session(app_, parallel_options);
  session.analyze();
  session.set_deadline(1, 50);
  session.analyze();
  session.set_deadline(1, 40);
  const AnalysisResult& warm = session.analyze();
  ASSERT_TRUE(warm.certificate.has_value());
  EXPECT_EQ(cold.windows, warm.windows);
  EXPECT_EQ(cold_cert, certificate_json(*warm.certificate).dump(2));
}

}  // namespace
}  // namespace rtlb
