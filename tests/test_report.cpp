#include <gtest/gtest.h>

#include "src/common/json.hpp"
#include "src/core/report.hpp"
#include "src/workload/paper_example.hpp"

namespace rtlb {
namespace {

TEST(Json, Scalars) {
  EXPECT_EQ(Json().dump(), "null");
  EXPECT_EQ(Json(true).dump(), "true");
  EXPECT_EQ(Json(false).dump(), "false");
  EXPECT_EQ(Json(42).dump(), "42");
  EXPECT_EQ(Json(std::int64_t{-7}).dump(), "-7");
  EXPECT_EQ(Json(2.5).dump(), "2.5");
  EXPECT_EQ(Json("hi").dump(), "\"hi\"");
}

TEST(Json, StringEscaping) {
  EXPECT_EQ(Json("a\"b").dump(), "\"a\\\"b\"");
  EXPECT_EQ(Json("line\nbreak").dump(), "\"line\\nbreak\"");
  EXPECT_EQ(Json("back\\slash").dump(), "\"back\\\\slash\"");
  EXPECT_EQ(Json(std::string("ctrl\x01")).dump(), "\"ctrl\\u0001\"");
}

TEST(Json, ObjectsKeepInsertionOrder) {
  Json obj = Json::object();
  obj.set("z", 1).set("a", 2);
  EXPECT_EQ(obj.dump(), "{\"z\":1,\"a\":2}");
}

TEST(Json, ArraysAndNesting) {
  Json arr = Json::array();
  arr.push(1).push("two");
  Json obj = Json::object();
  obj.set("list", std::move(arr)).set("empty", Json::array());
  EXPECT_EQ(obj.dump(), "{\"list\":[1,\"two\"],\"empty\":[]}");
}

TEST(Json, PrettyPrinting) {
  Json obj = Json::object();
  obj.set("k", 1);
  EXPECT_EQ(obj.dump(2), "{\n  \"k\": 1\n}");
}

TEST(Json, NonFiniteDoublesBecomeNull) {
  EXPECT_EQ(Json(std::numeric_limits<double>::infinity()).dump(), "null");
}

TEST(Json, TypeMisuseThrows) {
  Json scalar(1);
  EXPECT_THROW(scalar.set("k", 2), std::logic_error);
  EXPECT_THROW(scalar.push(2), std::logic_error);
}

TEST(Report, PaperExampleReportCarriesTheHeadlineNumbers) {
  ProblemInstance inst = paper_example();
  AnalysisOptions options;
  options.model = SystemModel::Dedicated;
  const AnalysisResult result = analyze(*inst.app, options, &inst.platform);
  const std::string json = report_string(*inst.app, result);

  // Structure and the step-3/4 headline values.
  EXPECT_NE(json.find("\"tasks\""), std::string::npos);
  EXPECT_NE(json.find("\"partitions\""), std::string::npos);
  EXPECT_NE(json.find("\"bounds\""), std::string::npos);
  EXPECT_NE(json.find("\"resource\": \"P1\""), std::string::npos);
  EXPECT_NE(json.find("\"bound\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"bound\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"dedicated_cost\""), std::string::npos);
  EXPECT_NE(json.find("\"total\": 42"), std::string::npos);
  EXPECT_NE(json.find("\"infeasible\": false"), std::string::npos);
  // Task windows present (T9's E=16/L=19).
  EXPECT_NE(json.find("\"name\": \"T9\""), std::string::npos);
  EXPECT_NE(json.find("\"est\": 16"), std::string::npos);
  EXPECT_NE(json.find("\"lct\": 19"), std::string::npos);
}

TEST(Report, CompactDumpIsSingleLine) {
  ProblemInstance inst = paper_example();
  const AnalysisResult result = analyze(*inst.app);
  const std::string compact = report_json(*inst.app, result).dump(0);
  EXPECT_EQ(compact.find('\n'), std::string::npos);
}

}  // namespace
}  // namespace rtlb
