#include <gtest/gtest.h>

#include "src/core/analysis.hpp"
#include "src/model/builder.hpp"

namespace rtlb {
namespace {

class BuilderTest : public ::testing::Test {
 protected:
  BuilderTest() {
    cpu_ = cat_.add_processor_type("CPU", 10);
    dsp_ = cat_.add_processor_type("DSP", 20);
    sensor_ = cat_.add_resource("sensor", 5);
  }

  ResourceCatalog cat_;
  ResourceId cpu_, dsp_, sensor_;
};

TEST_F(BuilderTest, BuildsTheDocumentedExample) {
  AppBuilder b(cat_);
  b.task("sense").comp(2).deadline(20).on(cpu_).needs(sensor_);
  b.task("filter").comp(5).deadline(14).on(dsp_);
  b.edge("sense", "filter", 3);
  const Application app = b.build();

  ASSERT_EQ(app.num_tasks(), 2u);
  const TaskId s = app.find_task("sense");
  const TaskId f = app.find_task("filter");
  EXPECT_EQ(app.task(s).comp, 2);
  EXPECT_EQ(app.task(s).resources, std::vector<ResourceId>{sensor_});
  EXPECT_EQ(app.task(f).proc, dsp_);
  EXPECT_EQ(app.message(s, f), 3);

  // The built application flows straight into the analysis.
  const AnalysisResult res = analyze(app);
  EXPECT_EQ(res.bounds.size(), 3u);
}

TEST_F(BuilderTest, DefaultsAreSane) {
  AppBuilder b(cat_);
  b.task("t").on(cpu_);
  const Application app = b.build();
  EXPECT_EQ(app.task(0).comp, 1);
  EXPECT_EQ(app.task(0).release, 0);
  EXPECT_EQ(app.task(0).deadline, kTimeMax);
  EXPECT_FALSE(app.task(0).preemptive);
}

TEST_F(BuilderTest, PreemptiveFlagAndMultipleResources) {
  const ResourceId extra = cat_.add_resource("extra");
  AppBuilder b(cat_);
  b.task("t").comp(2).deadline(9).on(cpu_).needs(sensor_).needs(extra).preemptive();
  const Application app = b.build();
  EXPECT_TRUE(app.task(0).preemptive);
  EXPECT_EQ(app.task(0).resources.size(), 2u);
}

TEST_F(BuilderTest, ManyTasksSurviveContainerGrowth) {
  // TaskRef pointers must stay valid while dozens of tasks are staged.
  AppBuilder b(cat_);
  std::vector<AppBuilder::TaskRef> refs;
  for (int i = 0; i < 50; ++i) {
    refs.push_back(b.task("t" + std::to_string(i)).on(cpu_));
  }
  for (auto& ref : refs) ref.comp(3).deadline(500);
  const Application app = b.build();
  ASSERT_EQ(app.num_tasks(), 50u);
  for (TaskId i = 0; i < 50; ++i) EXPECT_EQ(app.task(i).comp, 3);
}

TEST_F(BuilderTest, RejectsMissingProcessor) {
  AppBuilder b(cat_);
  b.task("orphan").comp(2).deadline(9);
  EXPECT_THROW(b.build(), ModelError);
}

TEST_F(BuilderTest, RejectsDuplicateNamesAndUnknownEdges) {
  AppBuilder b(cat_);
  b.task("x").on(cpu_);
  b.task("x").on(cpu_);
  EXPECT_THROW(b.build(), ModelError);

  AppBuilder b2(cat_);
  b2.task("a").on(cpu_);
  b2.edge("a", "ghost", 1);
  EXPECT_THROW(b2.build(), ModelError);
}

TEST_F(BuilderTest, BuildValidates) {
  AppBuilder b(cat_);
  b.task("tight").comp(9).release(5).deadline(10).on(cpu_);  // window < comp
  EXPECT_THROW(b.build(), ModelError);
}

}  // namespace
}  // namespace rtlb
