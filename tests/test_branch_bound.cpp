#include <gtest/gtest.h>

#include <memory>

#include "src/common/random.hpp"
#include "src/core/analysis.hpp"
#include "src/model/io.hpp"
#include "src/sched/branch_bound.hpp"
#include "src/sched/feasibility.hpp"

namespace rtlb {
namespace {

class BranchBoundTest : public ::testing::Test {
 protected:
  BranchBoundTest() : app_(cat_) {
    p_ = cat_.add_processor_type("P");
    r_ = cat_.add_resource("r");
  }

  TaskId add(Time comp, Time rel, Time deadline, std::vector<ResourceId> res = {}) {
    Task t;
    t.name = "t" + std::to_string(app_.num_tasks());
    t.comp = comp;
    t.release = rel;
    t.deadline = deadline;
    t.proc = p_;
    t.resources = std::move(res);
    return app_.add_task(std::move(t));
  }

  ResourceCatalog cat_;
  Application app_;
  ResourceId p_, r_;
};

TEST_F(BranchBoundTest, FindsFeasibleWithValidWitness) {
  add(3, 0, 10);
  add(2, 0, 10);
  Capacities caps(cat_.size(), 1);
  Schedule witness(0);
  BranchBoundStats stats;
  EXPECT_TRUE(exists_feasible_schedule_bb(app_, caps, {}, &witness, &stats));
  EXPECT_TRUE(check_shared(app_, witness, caps).empty());
  EXPECT_GT(stats.nodes_explored, 0);
}

TEST_F(BranchBoundTest, DensityPruneCutsObviousOverload) {
  // 3 tasks filling [0,4] on one CPU: the density test fires at the root, so
  // the search dies without enumerating placements of the later tasks.
  add(4, 0, 4);
  add(4, 0, 4);
  add(4, 0, 4);
  Capacities caps(cat_.size(), 1);
  BranchBoundStats stats;
  EXPECT_FALSE(exists_feasible_schedule_bb(app_, caps, {}, nullptr, &stats));
  EXPECT_GT(stats.pruned_by_density, 0);
  EXPECT_EQ(stats.nodes_explored, 0);  // cut before the first placement
}

TEST_F(BranchBoundTest, WindowPruneFiresOnChains) {
  const TaskId a = add(5, 0, 20);
  const TaskId b = add(5, 0, 8);  // needs a done by 3; a can't finish before 5
  app_.add_edge(a, b, 0);
  Capacities caps(cat_.size(), 2);
  BranchBoundStats stats;
  EXPECT_FALSE(exists_feasible_schedule_bb(app_, caps, {}, nullptr, &stats));
  EXPECT_GT(stats.pruned_by_window, 0);
}

TEST_F(BranchBoundTest, AgreesWithPlainExhaustiveOnRandomInstances) {
  Rng rng(515);
  int feasible = 0, infeasible = 0;
  for (int trial = 0; trial < 30; ++trial) {
    ResourceCatalog cat;
    const ResourceId p = cat.add_processor_type("P");
    const ResourceId r = cat.add_resource("r");
    Application app(cat);
    const int n = static_cast<int>(rng.uniform(3, 5));
    for (int i = 0; i < n; ++i) {
      Task t;
      t.name = "t" + std::to_string(i);
      t.comp = rng.uniform(1, 3);
      t.release = rng.uniform(0, 2);
      t.deadline = t.release + t.comp + rng.uniform(0, 3);
      t.proc = p;
      if (rng.chance(0.4)) t.resources = {r};
      app.add_task(std::move(t));
    }
    for (TaskId u = 0; u + 1 < app.num_tasks(); ++u) {
      if (rng.chance(0.3)) {
        app.add_edge(u, u + 1, rng.uniform(0, 2));
        Task& v = app.task(u + 1);
        v.deadline = std::max(v.deadline, app.task(u).release + app.task(u).comp +
                                              app.message(u, u + 1) + v.comp + 1);
      }
    }
    app.validate();
    Capacities caps(cat.size(), static_cast<int>(rng.uniform(1, 2)));
    SearchLimits limits;
    limits.max_window = 40;
    const bool plain = exists_feasible_schedule_shared(app, caps, limits);
    BranchBoundStats stats;
    const bool bb = exists_feasible_schedule_bb(app, caps, limits, nullptr, &stats);
    EXPECT_EQ(plain, bb) << "trial " << trial;
    (plain ? feasible : infeasible) += 1;
  }
  EXPECT_GT(feasible, 5);
  EXPECT_GT(infeasible, 5);
}

TEST_F(BranchBoundTest, PruningNeverIncreasesNodeCount) {
  // On infeasible instances the pruned search must do no more placement work
  // than the blind one (it may do strictly less).
  add(4, 0, 6, {r_});
  add(4, 0, 6, {r_});
  add(2, 0, 6);
  Capacities caps(cat_.size(), 2);
  caps.set(r_, 1);
  SearchLimits limits;
  limits.max_window = 40;
  limits.max_nodes = 5'000'000;
  BranchBoundStats stats;
  const bool bb = exists_feasible_schedule_bb(app_, caps, limits, nullptr, &stats);
  const bool plain = exists_feasible_schedule_shared(app_, caps, limits);
  EXPECT_EQ(bb, plain);
  EXPECT_FALSE(bb);  // 8 ticks of r-work in a 6-tick window
  EXPECT_GT(stats.pruned_by_density, 0);
}

}  // namespace
}  // namespace rtlb
