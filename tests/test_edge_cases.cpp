// Edge-of-the-envelope cases across the whole pipeline: degenerate sizes,
// extreme values, and boundary geometries that individual module suites do
// not stress.
#include <gtest/gtest.h>

#include "src/core/analysis.hpp"
#include "src/core/overlap.hpp"
#include "src/sched/feasibility.hpp"
#include "src/sched/list_scheduler.hpp"
#include "src/sim/simulator.hpp"
#include "src/workload/taskset_gen.hpp"

namespace rtlb {
namespace {

class EdgeCases : public ::testing::Test {
 protected:
  EdgeCases() : app_(cat_) { p_ = cat_.add_processor_type("P", 1); }

  TaskId add(Time comp, Time rel, Time deadline) {
    Task t;
    t.name = "t" + std::to_string(app_.num_tasks());
    t.comp = comp;
    t.release = rel;
    t.deadline = deadline;
    t.proc = p_;
    return app_.add_task(std::move(t));
  }

  ResourceCatalog cat_;
  Application app_;
  ResourceId p_;
};

TEST_F(EdgeCases, EmptyApplicationAnalyzes) {
  const AnalysisResult res = analyze(app_);
  EXPECT_TRUE(res.bounds.empty());
  EXPECT_EQ(res.shared_cost.total, 0);
  EXPECT_FALSE(res.infeasible(app_));
}

TEST_F(EdgeCases, SingleTaskEverything) {
  add(5, 3, 20);
  const AnalysisResult res = analyze(app_);
  EXPECT_EQ(res.windows.est[0], 3);
  EXPECT_EQ(res.windows.lct[0], 20);
  EXPECT_EQ(res.bound_for(p_), 1);
  ASSERT_EQ(res.partitions.size(), 1u);
  EXPECT_EQ(res.partitions[0].blocks.size(), 1u);

  Capacities caps(cat_.size(), 1);
  const ListScheduleResult sched = list_schedule_shared(app_, caps);
  ASSERT_TRUE(sched.feasible);
  EXPECT_EQ(sched.schedule.items[0].start, 3);
  EXPECT_TRUE(simulate_shared(app_, sched.schedule, caps).ok);
}

TEST_F(EdgeCases, ZeroSlackTaskSitsExactly) {
  add(7, 2, 9);  // window exactly C wide
  const AnalysisResult res = analyze(app_);
  EXPECT_EQ(res.windows.slack(app_, 0), 0);
  EXPECT_FALSE(res.infeasible(app_));
  Capacities caps(cat_.size(), 1);
  const ListScheduleResult sched = list_schedule_shared(app_, caps);
  ASSERT_TRUE(sched.feasible);
  EXPECT_EQ(sched.schedule.items[0].start, 2);
}

TEST_F(EdgeCases, UnconstrainedDeadlinesDoNotOverflow) {
  // kTimeMax deadlines flow through lms arithmetic (subtractions) safely.
  const TaskId a = add(3, 0, kTimeMax);
  const TaskId b = add(4, 0, kTimeMax);
  app_.add_edge(a, b, 1000000);
  const AnalysisResult res = analyze(app_);
  EXPECT_GT(res.windows.lct[a], 0);
  EXPECT_GE(res.windows.lct[b], res.windows.lct[a]);
  EXPECT_EQ(res.bound_for(p_), 1);
}

TEST_F(EdgeCases, LargeTickValuesStayExact) {
  // Billions of ticks: the 128-bit density comparison must not overflow.
  const Time big = 1'000'000'000;
  add(big, 0, big);
  add(big, 0, big);
  const AnalysisResult res = analyze(app_);
  EXPECT_EQ(res.bound_for(p_), 2);
  EXPECT_EQ(res.bounds[0].peak_density.num, 2 * big);
  EXPECT_EQ(res.bounds[0].peak_density.den, big);
}

TEST_F(EdgeCases, ZeroSizeMessagesAreFreeButOrdering) {
  const TaskId a = add(3, 0, 30);
  const TaskId b = add(3, 0, 30);
  app_.add_edge(a, b, 0);
  Capacities caps(cat_.size(), 2);
  const ListScheduleResult sched = list_schedule_shared(app_, caps);
  ASSERT_TRUE(sched.feasible);
  // Cross-unit start at end_a + 0 is legal; before it is not.
  Schedule s = sched.schedule;
  s.items[b] = {sched.schedule.end_of(app_, a), 1 - sched.schedule.items[a].unit};
  EXPECT_TRUE(check_shared(app_, s, caps).empty());
  s.items[b].start -= 1;
  EXPECT_FALSE(check_shared(app_, s, caps).empty());
}

TEST_F(EdgeCases, SelfContainedDiamondWithAllZeroMessages) {
  const TaskId a = add(2, 0, 40);
  const TaskId b = add(2, 0, 40);
  const TaskId c = add(2, 0, 40);
  const TaskId d = add(2, 0, 40);
  app_.add_edge(a, b, 0);
  app_.add_edge(a, c, 0);
  app_.add_edge(b, d, 0);
  app_.add_edge(c, d, 0);
  const AnalysisResult res = analyze(app_);
  EXPECT_EQ(res.windows.est[a], 0);
  EXPECT_EQ(res.windows.est[d], 4);  // two levels of work, no messages
  EXPECT_FALSE(res.infeasible(app_));
}

TEST_F(EdgeCases, WideFanInStressesTheMergeLoop) {
  // 12 predecessors into one sink: the greedy must stay O(k^2) and exact.
  std::vector<TaskId> preds;
  for (int k = 0; k < 12; ++k) preds.push_back(add(2 + k % 3, 0, 200));
  const TaskId sink = add(3, 0, 200);
  for (TaskId j : preds) app_.add_edge(j, sink, 3 + static_cast<Time>(j) % 5);
  SharedMergeOracle oracle;
  const TaskWindows w = compute_windows(app_, oracle);
  EXPECT_EQ(w.est[sink], est_exhaustive(app_, oracle, w.est, sink));
}

TEST_F(EdgeCases, OverlapAtExactBoundaries) {
  // mu() boundary semantics: a window touching the interval edge contributes
  // nothing (t2 == E or t1 == L).
  EXPECT_EQ(overlap_preemptive(3, 5, 9, 2, 5), 0);
  EXPECT_EQ(overlap_preemptive(3, 5, 9, 9, 12), 0);
  EXPECT_EQ(overlap_nonpreemptive(3, 5, 9, 2, 5), 0);
  EXPECT_EQ(overlap_nonpreemptive(3, 5, 9, 9, 12), 0);
  // One tick inside is enough to matter when the window is tight.
  EXPECT_EQ(overlap_nonpreemptive(4, 5, 9, 2, 6), 1);
}

TEST_F(EdgeCases, ManyEqualWindowsPartitionIntoOneBlock) {
  for (int k = 0; k < 20; ++k) add(1, 0, 10);
  const AnalysisResult res = analyze(app_);
  ASSERT_EQ(res.partitions.size(), 1u);
  EXPECT_EQ(res.partitions[0].blocks.size(), 1u);
  EXPECT_EQ(res.bound_for(p_), 2);  // 20 ticks of work in a 10-tick window
}

TEST(EdgeCaseWorkloads, OneTaskWorkload) {
  WorkloadParams params;
  params.seed = 1;
  params.num_tasks = 1;
  params.num_layers = 1;
  ProblemInstance inst = generate_workload(params);
  EXPECT_EQ(inst.app->num_tasks(), 1u);
  const AnalysisResult res = analyze(*inst.app);
  EXPECT_EQ(res.bounds.size(), inst.app->resource_set().size());
}

TEST(EdgeCaseWorkloads, AllTasksOnOneProcessorType) {
  WorkloadParams params;
  params.seed = 5;
  params.num_tasks = 12;
  params.num_proc_types = 1;
  params.num_resources = 0;
  ProblemInstance inst = generate_workload(params);
  EXPECT_EQ(inst.app->resource_set().size(), 1u);
  // Dedicated platform still hosts everything (bare node).
  for (TaskId i = 0; i < inst.app->num_tasks(); ++i) {
    EXPECT_FALSE(inst.platform.hosts_for(inst.app->task(i)).empty());
  }
}

}  // namespace
}  // namespace rtlb
