#include <gtest/gtest.h>

#include "src/sched/feasibility.hpp"
#include "src/sched/list_scheduler.hpp"
#include "src/workload/taskset_gen.hpp"

namespace rtlb {
namespace {

class ListSchedulerTest : public ::testing::Test {
 protected:
  ListSchedulerTest() : app_(cat_) {
    p_ = cat_.add_processor_type("P");
    r_ = cat_.add_resource("r");
  }

  TaskId add(Time comp, Time rel, Time deadline, std::vector<ResourceId> res = {}) {
    Task t;
    t.name = "t" + std::to_string(app_.num_tasks());
    t.comp = comp;
    t.release = rel;
    t.deadline = deadline;
    t.proc = p_;
    t.resources = std::move(res);
    return app_.add_task(std::move(t));
  }

  ResourceCatalog cat_;
  Application app_;
  ResourceId p_, r_;
};

TEST_F(ListSchedulerTest, SchedulesIndependentTasksAcrossUnits) {
  add(4, 0, 4);
  add(4, 0, 4);
  Capacities caps(cat_.size(), 2);
  const ListScheduleResult r = list_schedule_shared(app_, caps);
  ASSERT_TRUE(r.feasible);
  EXPECT_TRUE(check_shared(app_, r.schedule, caps).empty());
  EXPECT_NE(r.schedule.items[0].unit, r.schedule.items[1].unit);
}

TEST_F(ListSchedulerTest, FailsWhenUnitsInsufficient) {
  add(4, 0, 4);
  add(4, 0, 4);
  Capacities caps(cat_.size(), 1);
  const ListScheduleResult r = list_schedule_shared(app_, caps);
  EXPECT_FALSE(r.feasible);
  EXPECT_NE(r.failed_task, kInvalidTask);
  EXPECT_NE(r.failure.find("deadline"), std::string::npos);
}

TEST_F(ListSchedulerTest, FailsFastWithZeroCapacity) {
  add(1, 0, 9);
  Capacities caps(cat_.size(), 1);
  caps.set(p_, 0);
  const ListScheduleResult r = list_schedule_shared(app_, caps);
  EXPECT_FALSE(r.feasible);
  EXPECT_NE(r.failure.find("no units"), std::string::npos);
}

TEST_F(ListSchedulerTest, RespectsReleaseTimes) {
  const TaskId a = add(2, 5, 20);
  Capacities caps(cat_.size(), 1);
  const ListScheduleResult r = list_schedule_shared(app_, caps);
  ASSERT_TRUE(r.feasible);
  EXPECT_GE(r.schedule.items[a].start, 5);
}

TEST_F(ListSchedulerTest, CoLocationAvoidsMessage) {
  const TaskId a = add(3, 0, 20);
  const TaskId b = add(2, 0, 20);
  app_.add_edge(a, b, 10);
  Capacities caps(cat_.size(), 2);
  const ListScheduleResult r = list_schedule_shared(app_, caps);
  ASSERT_TRUE(r.feasible);
  // Co-locating b with a (start 3) beats paying the 10-tick message on the
  // idle second unit (start 13).
  EXPECT_EQ(r.schedule.items[b].unit, r.schedule.items[a].unit);
  EXPECT_EQ(r.schedule.items[b].start, 3);
}

TEST_F(ListSchedulerTest, ResourceContentionSerializes) {
  add(3, 0, 20, {r_});
  add(3, 0, 20, {r_});
  Capacities caps(cat_.size(), 2);
  caps.set(r_, 1);
  const ListScheduleResult r = list_schedule_shared(app_, caps);
  ASSERT_TRUE(r.feasible);
  EXPECT_TRUE(check_shared(app_, r.schedule, caps).empty());
  // With one unit of r the two tasks cannot overlap.
  const Time end0 = r.schedule.end_of(app_, 0);
  const Time end1 = r.schedule.end_of(app_, 1);
  EXPECT_TRUE(r.schedule.items[0].start >= end1 || r.schedule.items[1].start >= end0);
}

TEST_F(ListSchedulerTest, EdfPicksUrgentFirst) {
  const TaskId lax = add(3, 0, 30);
  const TaskId urgent = add(3, 0, 3);
  Capacities caps(cat_.size(), 1);
  const ListScheduleResult r = list_schedule_shared(app_, caps);
  ASSERT_TRUE(r.feasible);
  EXPECT_EQ(r.schedule.items[urgent].start, 0);
  EXPECT_EQ(r.schedule.items[lax].start, 3);
}

TEST_F(ListSchedulerTest, DedicatedSchedulesAndValidates) {
  const TaskId a = add(3, 0, 20, {r_});
  const TaskId b = add(2, 0, 20);
  app_.add_edge(a, b, 1);
  DedicatedPlatform plat;
  plat.add_node_type(NodeType{"rich", p_, {{r_, 1}}, 5});
  plat.add_node_type(NodeType{"bare", p_, {}, 2});
  DedicatedConfig config;
  config.instance_types = {0, 1};
  const ListScheduleResult r = list_schedule_dedicated(app_, plat, config);
  ASSERT_TRUE(r.feasible);
  EXPECT_TRUE(check_dedicated(app_, r.schedule, plat, config).empty());
}

TEST_F(ListSchedulerTest, DedicatedFailsWithoutHost) {
  add(3, 0, 20, {r_});
  DedicatedPlatform plat;
  plat.add_node_type(NodeType{"bare", p_, {}, 2});
  DedicatedConfig config;
  config.instance_types = {0};
  const ListScheduleResult r = list_schedule_dedicated(app_, plat, config);
  EXPECT_FALSE(r.feasible);
  EXPECT_NE(r.failure.find("host"), std::string::npos);
}

TEST_F(ListSchedulerTest, ProvisioningGrowsToFeasibility) {
  add(4, 0, 4);
  add(4, 0, 4);
  add(4, 0, 4);
  Capacities start(cat_.size(), 1);
  start.set(r_, 0);
  const ProvisioningResult r = provision_shared(app_, start, 20);
  ASSERT_TRUE(r.feasible);
  EXPECT_EQ(r.caps.of(p_), 3);
  EXPECT_GT(r.rounds, 1);
}

TEST_F(ListSchedulerTest, ProvisioningGivesUpAtCap) {
  add(4, 0, 4);
  add(4, 0, 4);
  Capacities start(cat_.size(), 1);
  const ProvisioningResult r = provision_shared(app_, start, 2);  // cap too low to grow
  EXPECT_FALSE(r.feasible);
}

TEST(ListSchedulerRandom, ScheduleAlwaysPassesValidator) {
  // Whatever the list scheduler outputs -- feasible or not -- placed
  // prefixes must respect structure; when it reports feasible the validator
  // must fully agree.
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    WorkloadParams params;
    params.seed = seed;
    params.num_tasks = 25;
    params.laxity = 3.0;
    ProblemInstance inst = generate_workload(params);
    Capacities caps(inst.catalog->size(), 3);
    const ListScheduleResult r = list_schedule_shared(*inst.app, caps);
    if (r.feasible) {
      EXPECT_TRUE(check_shared(*inst.app, r.schedule, caps).empty()) << "seed " << seed;
    }
  }
}

}  // namespace
}  // namespace rtlb
