#include <gtest/gtest.h>

#include "src/core/analysis.hpp"
#include "src/model/io.hpp"
#include "src/workload/taskset_gen.hpp"

namespace rtlb {
namespace {

TEST(Workload, GeneratesValidatedInstances) {
  WorkloadParams params;
  params.seed = 1;
  params.num_tasks = 30;
  ProblemInstance inst = generate_workload(params);
  EXPECT_EQ(inst.app->num_tasks(), 30u);
  inst.app->validate();  // must not throw
}

TEST(Workload, DeterministicPerSeed) {
  WorkloadParams params;
  params.seed = 42;
  params.num_tasks = 20;
  ProblemInstance a = generate_workload(params);
  ProblemInstance b = generate_workload(params);
  EXPECT_EQ(serialize_instance(*a.app, a.platform), serialize_instance(*b.app, b.platform));
  params.seed = 43;
  ProblemInstance c = generate_workload(params);
  EXPECT_NE(serialize_instance(*a.app, a.platform), serialize_instance(*c.app, c.platform));
}

TEST(Workload, RespectsParameterRanges) {
  WorkloadParams params;
  params.seed = 7;
  params.num_tasks = 40;
  params.comp_min = 3;
  params.comp_max = 5;
  params.msg_min = 1;
  params.msg_max = 2;
  params.num_proc_types = 3;
  params.num_resources = 2;
  ProblemInstance inst = generate_workload(params);
  for (TaskId i = 0; i < inst.app->num_tasks(); ++i) {
    const Task& t = inst.app->task(i);
    EXPECT_GE(t.comp, 3);
    EXPECT_LE(t.comp, 5);
    EXPECT_TRUE(inst.catalog->is_processor(t.proc));
    for (TaskId j : inst.app->successors(i)) {
      EXPECT_GE(inst.app->message(i, j), 1);
      EXPECT_LE(inst.app->message(i, j), 2);
    }
  }
}

TEST(Workload, LaxityOneIsStillWindowFeasible) {
  // laxity = 1 gives every task exactly its earliest-completion deadline:
  // tight but valid windows.
  WorkloadParams params;
  params.seed = 5;
  params.num_tasks = 15;
  params.laxity = 1.0;
  ProblemInstance inst = generate_workload(params);
  inst.app->validate();
  const AnalysisResult res = analyze(*inst.app);
  EXPECT_FALSE(res.infeasible(*inst.app));
}

TEST(Workload, ReleaseSpreadAddsReleases) {
  WorkloadParams params;
  params.seed = 9;
  params.num_tasks = 25;
  params.release_spread = 0.8;
  ProblemInstance inst = generate_workload(params);
  bool any_release = false;
  for (TaskId i = 0; i < inst.app->num_tasks(); ++i) {
    if (inst.app->task(i).release > 0) any_release = true;
  }
  EXPECT_TRUE(any_release);
  inst.app->validate();
}

TEST(Workload, PreemptiveProbabilityProducesMix) {
  WorkloadParams params;
  params.seed = 11;
  params.num_tasks = 40;
  params.preemptive_prob = 0.5;
  ProblemInstance inst = generate_workload(params);
  int preemptive = 0;
  for (TaskId i = 0; i < inst.app->num_tasks(); ++i) {
    if (inst.app->task(i).preemptive) ++preemptive;
  }
  EXPECT_GT(preemptive, 5);
  EXPECT_LT(preemptive, 35);
}

TEST(Workload, PlatformHostsEveryTask) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    WorkloadParams params;
    params.seed = seed;
    params.num_tasks = 20;
    params.num_proc_types = 2;
    params.num_resources = 2;
    ProblemInstance inst = generate_workload(params);
    for (TaskId i = 0; i < inst.app->num_tasks(); ++i) {
      EXPECT_FALSE(inst.platform.hosts_for(inst.app->task(i)).empty())
          << "seed " << seed << " task " << i;
    }
  }
}

TEST(Workload, EveryShapeGenerates) {
  for (GraphShape shape : {GraphShape::Layered, GraphShape::Random, GraphShape::ForkJoin,
                           GraphShape::SeriesParallel, GraphShape::Pipeline,
                           GraphShape::OutTree}) {
    WorkloadParams params;
    params.seed = 3;
    params.shape = shape;
    params.num_tasks = 18;
    ProblemInstance inst = generate_workload(params);
    EXPECT_GE(inst.app->num_tasks(), 18u);
    inst.app->validate();
    // And the full analysis runs on every shape.
    const AnalysisResult res = analyze(*inst.app);
    EXPECT_EQ(res.bounds.size(), inst.app->resource_set().size());
  }
}

TEST(Workload, CcrKnobHitsTheTargetRatio) {
  for (double target : {0.2, 1.0, 3.0}) {
    WorkloadParams params;
    params.seed = 31;
    params.num_tasks = 40;
    params.edge_prob = 0.4;
    params.ccr = target;
    ProblemInstance inst = generate_workload(params);
    Time comp = 0, msg = 0;
    for (TaskId i = 0; i < inst.app->num_tasks(); ++i) {
      comp += inst.app->task(i).comp;
      for (TaskId j : inst.app->successors(i)) msg += inst.app->message(i, j);
    }
    ASSERT_GT(comp, 0);
    const double achieved = static_cast<double>(msg) / static_cast<double>(comp);
    EXPECT_NEAR(achieved, target, target * 0.15 + 0.05) << "target " << target;
  }
}

TEST(Workload, CcrZeroLeavesRawDraws) {
  WorkloadParams params;
  params.seed = 31;
  params.num_tasks = 20;
  params.msg_min = 2;
  params.msg_max = 2;
  params.ccr = 0.0;
  ProblemInstance inst = generate_workload(params);
  for (TaskId i = 0; i < inst.app->num_tasks(); ++i) {
    for (TaskId j : inst.app->successors(i)) {
      EXPECT_EQ(inst.app->message(i, j), 2);
    }
  }
}

TEST(Workload, SerializedWorkloadReparses) {
  WorkloadParams params;
  params.seed = 21;
  params.num_tasks = 12;
  ProblemInstance inst = generate_workload(params);
  const std::string text = serialize_instance(*inst.app, inst.platform);
  ProblemInstance again = parse_instance_string(text);
  EXPECT_EQ(again.app->num_tasks(), inst.app->num_tasks());
  // Analysis results are identical through the round trip.
  const AnalysisResult a = analyze(*inst.app);
  const AnalysisResult b = analyze(*again.app);
  EXPECT_EQ(a.windows.est, b.windows.est);
  EXPECT_EQ(a.windows.lct, b.windows.lct);
  for (std::size_t k = 0; k < a.bounds.size(); ++k) {
    EXPECT_EQ(a.bounds[k].bound, b.bounds[k].bound);
  }
}

}  // namespace
}  // namespace rtlb
