#include <gtest/gtest.h>

#include "src/sched/list_scheduler.hpp"
#include "src/sched/svg.hpp"
#include "src/workload/paper_example.hpp"

namespace rtlb {
namespace {

class SvgTest : public ::testing::Test {
 protected:
  SvgTest() : app_(cat_) { p_ = cat_.add_processor_type("CPU"); }

  TaskId add(const std::string& name, Time comp, Time deadline) {
    Task t;
    t.name = name;
    t.comp = comp;
    t.deadline = deadline;
    t.proc = p_;
    return app_.add_task(std::move(t));
  }

  ResourceCatalog cat_;
  Application app_;
  ResourceId p_;
};

TEST_F(SvgTest, ProducesWellFormedDocument) {
  const TaskId a = add("alpha", 3, 20);
  const TaskId b = add("beta", 2, 20);
  Capacities caps(cat_.size(), 2);
  Schedule s(2);
  s.items[a] = {0, 0};
  s.items[b] = {1, 1};
  const std::string svg = render_svg_shared(app_, s, caps);
  EXPECT_EQ(svg.rfind("<svg ", 0), 0u);
  EXPECT_NE(svg.find("</svg>"), std::string::npos);
  EXPECT_NE(svg.find("CPU[0]"), std::string::npos);
  EXPECT_NE(svg.find("CPU[1]"), std::string::npos);
  EXPECT_NE(svg.find("<title>alpha [0,3) unit 0</title>"), std::string::npos);
  // One rect per task.
  std::size_t rects = 0, pos = 0;
  while ((pos = svg.find("<rect", pos)) != std::string::npos) {
    ++rects;
    ++pos;
  }
  EXPECT_EQ(rects, 2u);
}

TEST_F(SvgTest, EscapesXmlInNames) {
  const TaskId a = add("a<b>&\"c", 3, 20);
  Capacities caps(cat_.size(), 1);
  Schedule s(1);
  s.items[a] = {0, 0};
  const std::string svg = render_svg_shared(app_, s, caps);
  EXPECT_EQ(svg.find("a<b>"), std::string::npos);
  EXPECT_NE(svg.find("a&lt;b&gt;&amp;&quot;c"), std::string::npos);
}

TEST_F(SvgTest, DeadlineWhiskersToggle) {
  const TaskId a = add("t", 3, 15);
  Capacities caps(cat_.size(), 1);
  Schedule s(1);
  s.items[a] = {0, 0};
  SvgOptions with;
  with.show_deadlines = true;
  SvgOptions without;
  without.show_deadlines = false;
  EXPECT_NE(render_svg_shared(app_, s, caps, with).find("stroke-dasharray"),
            std::string::npos);
  EXPECT_EQ(render_svg_shared(app_, s, caps, without).find("stroke-dasharray"),
            std::string::npos);
}

TEST(SvgPaper, PaperScheduleRendersDedicated) {
  ProblemInstance inst = paper_example();
  Capacities caps(inst.catalog->size(), 3);
  const ListScheduleResult r = list_schedule_shared(*inst.app, caps);
  ASSERT_TRUE(r.feasible);
  const std::string svg = render_svg_shared(*inst.app, r.schedule, caps);
  EXPECT_NE(svg.find("P1[0]"), std::string::npos);
  EXPECT_NE(svg.find("T15"), std::string::npos);
  // 15 task rects.
  std::size_t rects = 0, pos = 0;
  while ((pos = svg.find("<rect", pos)) != std::string::npos) {
    ++rects;
    ++pos;
  }
  EXPECT_EQ(rects, 15u);
}

}  // namespace
}  // namespace rtlb
