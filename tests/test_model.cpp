#include <gtest/gtest.h>

#include "src/model/application.hpp"
#include "src/model/platform.hpp"

namespace rtlb {
namespace {

TEST(ResourceCatalog, InternsAndLooksUp) {
  ResourceCatalog cat;
  const ResourceId p = cat.add_processor_type("P1", 5);
  const ResourceId r = cat.add_resource("sensor", 2);
  EXPECT_EQ(cat.size(), 2u);
  EXPECT_TRUE(cat.is_processor(p));
  EXPECT_FALSE(cat.is_processor(r));
  EXPECT_EQ(cat.name(p), "P1");
  EXPECT_EQ(cat.cost(r), 2);
  EXPECT_EQ(cat.find("sensor"), r);
  EXPECT_EQ(cat.find("absent"), kInvalidResource);
  cat.set_cost(r, 9);
  EXPECT_EQ(cat.cost(r), 9);
}

TEST(ResourceCatalog, RejectsDuplicateNames) {
  ResourceCatalog cat;
  cat.add_resource("x");
  EXPECT_THROW(cat.add_resource("x"), ModelError);
  EXPECT_THROW(cat.add_processor_type("x"), ModelError);
}

TEST(NodeType, UnitsAndCoverage) {
  ResourceCatalog cat;
  const ResourceId p = cat.add_processor_type("P");
  const ResourceId a = cat.add_resource("a");
  const ResourceId b = cat.add_resource("b");
  NodeType n;
  n.proc = p;
  n.resources = {{a, 2}};
  EXPECT_EQ(n.units_of(p), 1);
  EXPECT_EQ(n.units_of(a), 2);
  EXPECT_EQ(n.units_of(b), 0);
  EXPECT_TRUE(n.provides_all({a}));
  EXPECT_FALSE(n.provides_all({a, b}));
  EXPECT_TRUE(n.provides_all({}));
  EXPECT_TRUE(n.can_host(p, {a}));
  EXPECT_FALSE(n.can_host(p, {b}));
}

TEST(DedicatedPlatform, HostsForAndSomeNodeHosts) {
  ResourceCatalog cat;
  const ResourceId p1 = cat.add_processor_type("P1");
  const ResourceId p2 = cat.add_processor_type("P2");
  const ResourceId r = cat.add_resource("r");

  DedicatedPlatform plat;
  plat.add_node_type(NodeType{"bare", p1, {}, 3});
  plat.add_node_type(NodeType{"rich", p1, {{r, 1}}, 7});
  plat.add_node_type(NodeType{"other", p2, {}, 4});

  Task t;
  t.proc = p1;
  t.resources = {r};
  EXPECT_EQ(plat.hosts_for(t), std::vector<std::size_t>{1});
  t.resources.clear();
  EXPECT_EQ(plat.hosts_for(t), (std::vector<std::size_t>{0, 1}));
  EXPECT_TRUE(plat.some_node_hosts(p2, {}));
  EXPECT_FALSE(plat.some_node_hosts(p2, {r}));
}

TEST(DedicatedPlatform, RejectsBadNodeTypes) {
  ResourceCatalog cat;
  const ResourceId p = cat.add_processor_type("P");
  const ResourceId r = cat.add_resource("r");
  DedicatedPlatform plat;
  EXPECT_THROW(plat.add_node_type(NodeType{"no-proc", kInvalidResource, {}, 1}),
               std::logic_error);
  EXPECT_THROW(plat.add_node_type(NodeType{"zero-units", p, {{r, 0}}, 1}), std::logic_error);
  EXPECT_THROW(plat.add_node_type(NodeType{"proc-as-res", p, {{p, 1}}, 1}), std::logic_error);
}

class ApplicationTest : public ::testing::Test {
 protected:
  ApplicationTest() : app_(cat_) {
    p1_ = cat_.add_processor_type("P1");
    p2_ = cat_.add_processor_type("P2");
    r_ = cat_.add_resource("r");
  }

  TaskId add(const std::string& name, ResourceId proc, std::vector<ResourceId> res = {},
             Time comp = 2) {
    Task t;
    t.name = name;
    t.comp = comp;
    t.deadline = 100;
    t.proc = proc;
    t.resources = std::move(res);
    return app_.add_task(std::move(t));
  }

  ResourceCatalog cat_;
  Application app_;
  ResourceId p1_, p2_, r_;
};

TEST_F(ApplicationTest, ResourceSetIsUnionWithProcTypes) {
  add("a", p1_, {r_});
  add("b", p2_);
  const auto res = app_.resource_set();
  EXPECT_EQ(res, (std::vector<ResourceId>{p1_, p2_, r_}));
}

TEST_F(ApplicationTest, TasksUsingCountsProcessorAndResource) {
  const TaskId a = add("a", p1_, {r_});
  const TaskId b = add("b", p1_);
  const TaskId c = add("c", p2_, {r_});
  EXPECT_EQ(app_.tasks_using(p1_), (std::vector<TaskId>{a, b}));
  EXPECT_EQ(app_.tasks_using(r_), (std::vector<TaskId>{a, c}));
  EXPECT_EQ(app_.total_demand(p1_), 4);
  EXPECT_EQ(app_.total_demand(r_), 4);
}

TEST_F(ApplicationTest, ResourcesAreCanonicalized) {
  Task t;
  t.name = "x";
  t.comp = 1;
  t.deadline = 10;
  t.proc = p1_;
  t.resources = {r_, r_};
  const TaskId id = app_.add_task(std::move(t));
  EXPECT_EQ(app_.task(id).resources, std::vector<ResourceId>{r_});
}

TEST_F(ApplicationTest, EdgesAndMessages) {
  const TaskId a = add("a", p1_);
  const TaskId b = add("b", p1_);
  app_.add_edge(a, b, 5);
  EXPECT_EQ(app_.message(a, b), 5);
  EXPECT_EQ(app_.successors(a), std::vector<std::uint32_t>{b});
  EXPECT_EQ(app_.predecessors(b), std::vector<std::uint32_t>{a});
  EXPECT_THROW(app_.add_edge(a, b, -1), ModelError);  // duplicate is also rejected
}

TEST_F(ApplicationTest, RejectsNegativeMessage) {
  const TaskId a = add("a", p1_);
  const TaskId b = add("b", p1_);
  EXPECT_THROW(app_.add_edge(b, a, -3), ModelError);
}

TEST_F(ApplicationTest, FindTask) {
  const TaskId a = add("alpha", p1_);
  EXPECT_EQ(app_.find_task("alpha"), a);
  EXPECT_EQ(app_.find_task("beta"), kInvalidTask);
}

TEST_F(ApplicationTest, ValidateCatchesViolations) {
  add("ok", p1_, {r_});
  app_.validate();

  // Non-positive computation time.
  Task bad;
  bad.name = "bad";
  bad.comp = 0;
  bad.deadline = 10;
  bad.proc = p1_;
  Application app2(cat_);
  app2.add_task(bad);
  EXPECT_THROW(app2.validate(), ModelError);

  // Deadline window shorter than computation.
  Task tight;
  tight.name = "tight";
  tight.comp = 5;
  tight.release = 8;
  tight.deadline = 10;
  tight.proc = p1_;
  Application app3(cat_);
  app3.add_task(tight);
  EXPECT_THROW(app3.validate(), ModelError);

  // phi_i must be a processor type.
  Task wrong;
  wrong.name = "wrong";
  wrong.comp = 1;
  wrong.deadline = 10;
  wrong.proc = r_;
  Application app4(cat_);
  app4.add_task(wrong);
  EXPECT_THROW(app4.validate(), ModelError);

  // R_i must not contain processor types.
  Task mixed;
  mixed.name = "mixed";
  mixed.comp = 1;
  mixed.deadline = 10;
  mixed.proc = p1_;
  mixed.resources = {p2_};
  Application app5(cat_);
  app5.add_task(mixed);
  EXPECT_THROW(app5.validate(), ModelError);
}

TEST_F(ApplicationTest, TaskUsesOwnProcType) {
  const TaskId a = add("a", p1_, {r_});
  EXPECT_TRUE(app_.task(a).uses(p1_));
  EXPECT_TRUE(app_.task(a).uses(r_));
  EXPECT_FALSE(app_.task(a).uses(p2_));
}

}  // namespace
}  // namespace rtlb
