// End-to-end pipelines over generated workloads: analysis -> provisioning ->
// scheduling -> simulation, plus the bracket LB_r <= optimal <= list-scheduler
// that the paper positions the bounds for.
#include <gtest/gtest.h>

#include "src/baselines/trivial_bounds.hpp"
#include "src/core/analysis.hpp"
#include "src/sched/feasibility.hpp"
#include "src/sched/list_scheduler.hpp"
#include "src/sim/simulator.hpp"
#include "src/synth/synthesis.hpp"
#include "src/workload/workload.hpp"
#include "src/workload/taskset_gen.hpp"

namespace rtlb {
namespace {

class Pipeline : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Pipeline, AnalyzeProvisionScheduleSimulate) {
  const std::uint64_t seed = GetParam();
  WorkloadParams params;
  params.seed = seed;
  params.num_tasks = 20;
  params.num_proc_types = 2;
  params.num_resources = 2;
  params.laxity = 2.0 + 0.5 * static_cast<double>(seed % 3);
  params.release_spread = (seed % 2 == 0) ? 0.3 : 0.0;
  ProblemInstance inst = generate_workload(params);

  // Step A: the analysis.
  const AnalysisResult res = analyze(*inst.app);
  ASSERT_EQ(res.bounds.size(), inst.app->resource_set().size());
  for (const ResourceBound& b : res.bounds) {
    EXPECT_GE(b.bound, 1) << "every used resource needs at least one unit";
  }
  if (res.infeasible(*inst.app)) return;

  // Step B: provision starting FROM the bounds (their intended use).
  Capacities start(inst.catalog->size(), 0);
  for (const ResourceBound& b : res.bounds) {
    start.set(b.resource, static_cast<int>(b.bound));
  }
  const ProvisioningResult prov = provision_shared(*inst.app, start, 60);
  if (!prov.feasible) return;  // EDF heuristic may fail on tight instances

  // Provisioned capacities respect the bounds by construction (they only
  // grow) -- and the resulting schedule is valid and simulates cleanly.
  for (const ResourceBound& b : res.bounds) {
    EXPECT_GE(prov.caps.of(b.resource), b.bound);
  }
  const ListScheduleResult sched = list_schedule_shared(*inst.app, prov.caps);
  ASSERT_TRUE(sched.feasible);
  EXPECT_TRUE(check_shared(*inst.app, sched.schedule, prov.caps).empty()) << "seed " << seed;
  const SimReport rep = simulate_shared(*inst.app, sched.schedule, prov.caps);
  EXPECT_TRUE(rep.ok) << "seed " << seed << ": "
                      << (rep.violations.empty() ? "" : rep.violations[0]);

  // The simulator's observed peak usage is itself capacity-bounded and at
  // least... note: the LB is about mandatory demand, not observed peaks, so
  // only the upper relation holds.
  for (ResourceId r : inst.app->resource_set()) {
    EXPECT_LE(rep.peak_usage[r], prov.caps.of(r)) << "seed " << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Pipeline, ::testing::Range<std::uint64_t>(1, 16));

TEST(Bracket, LowerBoundNeverExceedsListSchedulerProvision) {
  // LB_r <= (any feasible provisioning found by the heuristic): the
  // "baseline for evaluating scheduling heuristics" claim, operationally.
  int checked = 0;
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    WorkloadParams params;
    params.seed = seed * 7;
    params.num_tasks = 16;
    params.laxity = 2.5;
    ProblemInstance inst = generate_workload(params);
    const AnalysisResult res = analyze(*inst.app);
    if (res.infeasible(*inst.app)) continue;
    const ProvisioningResult prov =
        provision_shared(*inst.app, Capacities(inst.catalog->size(), 1), 60);
    if (!prov.feasible) continue;
    ++checked;
    for (const ResourceBound& b : res.bounds) {
      EXPECT_LE(b.bound, prov.caps.of(b.resource))
          << "seed " << seed << " resource " << inst.catalog->name(b.resource);
    }
  }
  EXPECT_GT(checked, 5);
}

TEST(Bracket, WorkBoundNeverExceedsPaperBound) {
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    WorkloadParams params;
    params.seed = seed * 13;
    params.num_tasks = 22;
    params.preemptive_prob = 0.3;
    ProblemInstance inst = generate_workload(params);
    const AnalysisResult res = analyze(*inst.app);
    const auto rs = inst.app->resource_set();
    const auto wb = all_work_bounds(*inst.app, res.windows);
    for (std::size_t k = 0; k < rs.size(); ++k) {
      EXPECT_LE(wb[k], res.bound_for(rs[k])) << "seed " << seed;
    }
  }
}

TEST(ModelComparison, DedicatedWindowsNeverLooserThanShared) {
  // Dedicated-model mergeability is a subset of shared-model mergeability,
  // so dedicated windows can only be tighter (E >= E_shared, L <= L_shared)
  // and bounds can only be at least as large.
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    WorkloadParams params;
    params.seed = seed * 3 + 1;
    params.num_tasks = 18;
    params.num_resources = 2;
    params.resource_prob = 0.6;
    ProblemInstance inst = generate_workload(params);

    const AnalysisResult shared = analyze(*inst.app);
    AnalysisOptions opts;
    opts.model = SystemModel::Dedicated;
    const AnalysisResult dedicated = analyze(*inst.app, opts, &inst.platform);

    for (TaskId i = 0; i < inst.app->num_tasks(); ++i) {
      EXPECT_GE(dedicated.windows.est[i], shared.windows.est[i]) << "seed " << seed;
      EXPECT_LE(dedicated.windows.lct[i], shared.windows.lct[i]) << "seed " << seed;
    }
    // (No per-resource bound comparison: tighter windows shift the candidate
    // interval endpoints, so LB'_r is not formally monotone across models --
    // only the windows are.)
  }
}

TEST(DedicatedPipeline, AnalyzeSynthesizeScheduleSimulate) {
  // The dedicated-model end-to-end: analysis -> cost bound -> synthesis ->
  // concrete machine -> schedule -> discrete-event execution, with the cost
  // bound bracketing the synthesized machine from below throughout.
  int completed = 0;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    WorkloadParams params;
    params.seed = seed * 31 + 2;
    params.num_tasks = 14;
    params.num_proc_types = 2;
    params.num_resources = 1;
    params.laxity = 2.5;
    ProblemInstance inst = generate_workload(params);

    AnalysisOptions opts;
    opts.model = SystemModel::Dedicated;
    const AnalysisResult res = analyze(*inst.app, opts, &inst.platform);
    if (res.infeasible(*inst.app)) continue;
    ASSERT_TRUE(res.dedicated_cost.has_value());

    SynthesisOptions sopts;
    sopts.max_instances_per_type = 4;
    const SynthesisResult synth =
        synthesize_dedicated(*inst.app, inst.platform, res.bounds, sopts);
    if (!synth.found) continue;
    ++completed;

    if (res.dedicated_cost->feasible) {
      EXPECT_GE(synth.cost, res.dedicated_cost->total) << "seed " << seed;
    }
    const DedicatedConfig config = expand_counts(synth.counts);
    EXPECT_TRUE(check_dedicated(*inst.app, synth.schedule, inst.platform, config).empty())
        << "seed " << seed;
    const SimReport rep =
        simulate_dedicated(*inst.app, synth.schedule, inst.platform, config);
    EXPECT_TRUE(rep.ok) << "seed " << seed << ": "
                        << (rep.violations.empty() ? "" : rep.violations[0]);
  }
  EXPECT_GT(completed, 3);
}

TEST(PeriodicPipeline, UnrollAnalyzeScheduleOverTheHyperperiod) {
  ResourceCatalog cat;
  const ResourceId p1 = cat.add_processor_type("P1", 5);
  const ResourceId p2 = cat.add_processor_type("P2", 8);

  Transaction fast;
  fast.name = "fast";
  fast.period = 12;
  fast.tasks = {PeriodicTask{"a", 3, 0, 0, p1, {}, false},
                PeriodicTask{"b", 2, 0, 0, p2, {}, false}};
  fast.edges = {{0, 1, 1}};
  Transaction slow;
  slow.name = "slow";
  slow.period = 36;
  slow.tasks = {PeriodicTask{"s", 8, 0, 0, p1, {}, false}};

  const Application app = unroll(cat, {fast, slow});
  EXPECT_EQ(app.num_tasks(), 3u * 2u + 1u);

  const AnalysisResult res = analyze(app);
  EXPECT_FALSE(res.infeasible(app));

  Capacities start(cat.size(), 0);
  for (const ResourceBound& b : res.bounds) start.set(b.resource, static_cast<int>(b.bound));
  const ProvisioningResult prov = provision_shared(app, start, 20);
  ASSERT_TRUE(prov.feasible);
  const ListScheduleResult sched = list_schedule_shared(app, prov.caps);
  ASSERT_TRUE(sched.feasible);
  const SimReport rep = simulate_shared(app, sched.schedule, prov.caps);
  EXPECT_TRUE(rep.ok) << (rep.violations.empty() ? "" : rep.violations[0]);
  EXPECT_LE(rep.finish_time, 36);  // everything inside the hyperperiod
}

TEST(Formatting, ReportRenderersProduceStableOutput) {
  WorkloadParams params;
  params.seed = 2;
  params.num_tasks = 8;
  ProblemInstance inst = generate_workload(params);
  const AnalysisResult res = analyze(*inst.app);
  const std::string table = format_windows_table(*inst.app, res.windows);
  EXPECT_NE(table.find("Task i"), std::string::npos);
  EXPECT_NE(table.find("E_i"), std::string::npos);
  const std::string parts = format_partitions(*inst.app, res.partitions);
  EXPECT_NE(parts.find("ST_"), std::string::npos);
  const std::string bounds = format_bounds(*inst.app, res.bounds);
  EXPECT_NE(bounds.find("LB_r"), std::string::npos);
}

}  // namespace
}  // namespace rtlb
