#include <gtest/gtest.h>

#include <algorithm>

#include "src/baselines/al_mohummed.hpp"
#include "src/baselines/fernandez_bussell.hpp"
#include "src/baselines/long_paths.hpp"
#include "src/baselines/trivial_bounds.hpp"
#include "src/core/analysis.hpp"
#include "src/workload/taskset_gen.hpp"

namespace rtlb {
namespace {

class BaselineTest : public ::testing::Test {
 protected:
  BaselineTest() : app_(cat_) { p_ = cat_.add_processor_type("P"); }

  TaskId add(Time comp, Time rel = 0, Time deadline = 1000) {
    Task t;
    t.name = "t" + std::to_string(app_.num_tasks());
    t.comp = comp;
    t.release = rel;
    t.deadline = deadline;
    t.proc = p_;
    return app_.add_task(std::move(t));
  }

  ResourceCatalog cat_;
  Application app_;
  ResourceId p_;
};

TEST_F(BaselineTest, FernandezBussellOnIndependentTasks) {
  // Four independent unit tasks, critical time 1: all must run in parallel.
  for (int i = 0; i < 4; ++i) add(1);
  const FernandezBussellResult r = fernandez_bussell_bound(app_);
  EXPECT_EQ(r.critical_time, 1);
  EXPECT_EQ(r.processors, 4);
}

TEST_F(BaselineTest, FernandezBussellChainNeedsOne) {
  const TaskId a = add(3);
  const TaskId b = add(2);
  app_.add_edge(a, b, 0);
  const FernandezBussellResult r = fernandez_bussell_bound(app_);
  EXPECT_EQ(r.critical_time, 5);
  EXPECT_EQ(r.processors, 1);
}

TEST_F(BaselineTest, FernandezBussellHorizonRelaxes) {
  for (int i = 0; i < 4; ++i) add(2);
  EXPECT_EQ(fernandez_bussell_bound(app_, 0).processors, 4);   // within t_c = 2
  EXPECT_EQ(fernandez_bussell_bound(app_, 8).processors, 1);   // plenty of slack
  EXPECT_EQ(fernandez_bussell_bound(app_, 4).processors, 2);   // 8 work / 4 time
}

TEST_F(BaselineTest, FernandezBussellIgnoresCommunication) {
  const TaskId a = add(3);
  const TaskId b = add(2);
  app_.add_edge(a, b, 100);  // huge message, invisible to the 1973 model
  const FernandezBussellResult r = fernandez_bussell_bound(app_);
  EXPECT_EQ(r.critical_time, 5);
}

TEST_F(BaselineTest, AlMohummedSeesCommunication) {
  // Join: {x, y} -> c, each edge carrying m = 4. Co-locating c with only one
  // predecessor still pays the other message (E_c = 7); co-locating with
  // BOTH serializes x and y but avoids every message (E_c = 6) -- the
  // optimum the merge recursion must find (it requires merging through the
  // emr tie; see the Figure-3 tie correction in est_lct.cpp). Either way the
  // communication-aware critical time exceeds the zero-comm value of 5.
  const TaskId x = add(3);
  const TaskId y = add(3);
  const TaskId c = add(2);
  app_.add_edge(x, c, 4);
  app_.add_edge(y, c, 4);
  const AlMohummedResult r = al_mohummed_bound(app_);
  EXPECT_EQ(r.critical_time, 8);  // E_c = ect({x, y}) = 6, C_c = 2
  const FernandezBussellResult fb = fernandez_bussell_bound(app_);
  EXPECT_EQ(fb.critical_time, 5);  // the 1973 model cannot see the messages
  EXPECT_GE(r.processors, 1);
}

TEST_F(BaselineTest, AlMohummedEqualsFernandezBussellAtZeroComm) {
  const TaskId a = add(3);
  const TaskId b = add(4);
  const TaskId c = add(2);
  app_.add_edge(a, b, 0);
  app_.add_edge(a, c, 0);
  const AlMohummedResult am = al_mohummed_bound(app_);
  const FernandezBussellResult fb = fernandez_bussell_bound(app_);
  EXPECT_EQ(am.critical_time, fb.critical_time);
  // Same windows; AM's non-preemptive overlap can only match or beat FB's
  // preemptive overlap.
  EXPECT_GE(am.processors, fb.processors);
}

TEST_F(BaselineTest, WorkBoundIsSingleIntervalDensity) {
  add(4, 0, 4);
  add(4, 0, 4);
  add(4, 0, 4);
  SharedMergeOracle oracle;
  const TaskWindows w = compute_windows(app_, oracle);
  EXPECT_EQ(work_bound(app_, w, p_), 3);  // 12 work over [0, 4]
}

TEST_F(BaselineTest, WorkBoundZeroForUnusedResource) {
  const ResourceId unused = cat_.add_resource("unused");
  add(2, 0, 9);
  SharedMergeOracle oracle;
  const TaskWindows w = compute_windows(app_, oracle);
  EXPECT_EQ(work_bound(app_, w, unused), 0);
}

TEST_F(BaselineTest, CriticalPathInfeasibility) {
  const TaskId a = add(5, 0, 20);
  const TaskId b = add(5, 0, 9);
  app_.add_edge(a, b, 0);
  EXPECT_TRUE(critical_path_infeasible(app_));

  Application ok(cat_);
  Task t;
  t.comp = 3;
  t.deadline = 10;
  t.proc = p_;
  t.name = "x";
  ok.add_task(t);
  EXPECT_FALSE(critical_path_infeasible(ok));
}

TEST_F(BaselineTest, LongPathsChainIsOnePath) {
  const TaskId a = add(3);
  const TaskId b = add(2);
  app_.add_edge(a, b, 0);
  const LongPathsDecomposition d = long_paths_decompose(app_);
  EXPECT_EQ(d.critical_path, 5);
  EXPECT_EQ(d.volume, 5);
  ASSERT_EQ(d.paths.size(), 1u);
  EXPECT_EQ(d.paths[0], 5);
  EXPECT_EQ(long_paths_response_time(d, 1), 5);
  EXPECT_EQ(long_paths_response_time(d, 4), 5);
  EXPECT_EQ(long_paths_min_processors(d, 5), 1);
  EXPECT_EQ(long_paths_min_processors(d, 4), 0);  // below the critical path
}

TEST_F(BaselineTest, LongPathsIndependentTasksDecomposeToUnitPaths) {
  for (int i = 0; i < 4; ++i) add(1);
  const LongPathsDecomposition d = long_paths_decompose(app_);
  EXPECT_EQ(d.critical_path, 1);
  EXPECT_EQ(d.volume, 4);
  ASSERT_EQ(d.paths.size(), 4u);
  EXPECT_EQ(long_paths_response_time(d, 1), 4);  // clamped by ceil(vol/m)
  EXPECT_EQ(long_paths_response_time(d, 2), 2);  // 1 + (4 - 2) / 2
  EXPECT_EQ(long_paths_response_time(d, 4), 1);  // every path on its own proc
  EXPECT_EQ(long_paths_min_processors(d, 1), 4);
  EXPECT_EQ(long_paths_min_processors(d, 2), 2);
}

TEST_F(BaselineTest, LongPathsSharpensGrahamOnADiamond) {
  // src(1) -> {x(3), y(3)} -> sink(1): the critical path src-x-sink covers
  // 5 of the 8 units; the disjoint path {y} covers the other 3, so at m = 2
  // the interference term vanishes entirely: R = 5. Graham's bound charges
  // (8 - 5) / 2 extra.
  const TaskId src = add(1);
  const TaskId x = add(3);
  const TaskId y = add(3);
  const TaskId sink = add(1);
  app_.add_edge(src, x, 0);
  app_.add_edge(src, y, 0);
  app_.add_edge(x, sink, 0);
  app_.add_edge(y, sink, 0);
  const LongPathsDecomposition d = long_paths_decompose(app_);
  EXPECT_EQ(d.critical_path, 5);
  EXPECT_EQ(d.volume, 8);
  ASSERT_EQ(d.paths.size(), 2u);
  EXPECT_EQ(d.paths[0], 5);
  EXPECT_EQ(d.paths[1], 3);
  EXPECT_EQ(long_paths_response_time(d, 2), 5);
  EXPECT_EQ(long_paths_min_processors(d, 5), 2);
}

TEST_F(BaselineTest, LongPathsDecompositionCoversEveryVertexOnce) {
  for (const GraphShape shape :
       {GraphShape::Layered, GraphShape::ForkJoin, GraphShape::Random}) {
    for (std::uint64_t seed = 1; seed <= 4; ++seed) {
      WorkloadParams params;
      params.seed = seed * 3;
      params.shape = shape;
      params.num_tasks = 20;
      ProblemInstance inst = generate_workload(params);
      const LongPathsDecomposition d = long_paths_decompose(*inst.app);
      Time covered = 0;
      for (std::size_t i = 0; i < d.paths.size(); ++i) {
        covered += d.paths[i];
        if (i > 0) {
          EXPECT_LE(d.paths[i], d.paths[i - 1]);  // longest first
        }
      }
      EXPECT_EQ(covered, d.volume);  // vertex-disjoint and exhaustive
      ASSERT_FALSE(d.paths.empty());
      EXPECT_EQ(d.paths[0], d.critical_path);
      // More processors never hurt; the bound never beats the trivial LBs.
      Time prev = long_paths_response_time(d, 1);
      for (int m = 2; m <= 6; ++m) {
        const Time r = long_paths_response_time(d, m);
        EXPECT_LE(r, prev);
        EXPECT_GE(r, d.critical_path);
        EXPECT_GE(r, (d.volume + m - 1) / m);
        prev = r;
      }
    }
  }
}

TEST(BaselineDominance, LongPathsSufficiencySandwichesThePaperNecessity) {
  // The two faces of the requirement: the paper's LB_P is NECESSARY (below
  // it no schedule exists), the long-paths count is SUFFICIENT (at it the
  // response-time bound meets the deadline) -- on the common model (one
  // processor type, no resources, no messages, one shared deadline) the
  // necessary face can never exceed the sufficient one.
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    WorkloadParams params;
    params.seed = seed * 19;
    params.num_tasks = 16;
    params.num_proc_types = 1;
    params.num_resources = 0;
    params.msg_min = params.msg_max = 0;
    params.laxity = 1.5;
    ProblemInstance inst = generate_workload(params);
    Time horizon = 0;
    for (TaskId i = 0; i < inst.app->num_tasks(); ++i) {
      horizon = std::max(horizon, inst.app->task(i).deadline);
    }
    for (TaskId i = 0; i < inst.app->num_tasks(); ++i) {
      inst.app->task(i).release = 0;
      inst.app->task(i).deadline = horizon;
    }
    const AnalysisResult res = analyze(*inst.app);
    const LongPathsDecomposition d = long_paths_decompose(*inst.app);
    const int sufficient = long_paths_min_processors(d, horizon);
    ASSERT_GE(sufficient, 1) << "seed " << seed;
    EXPECT_LE(res.bound_for(inst.catalog->find("P1")), sufficient) << "seed " << seed;
  }
}

TEST(BaselineDominance, PaperBoundDominatesOnItsOwnModel) {
  // On workloads inside the baselines' models, the paper's LB_r must be at
  // least as tight (Section 1's positioning).
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    WorkloadParams params;
    params.seed = seed;
    params.num_tasks = 16;
    params.num_proc_types = 1;
    params.num_resources = 0;
    params.msg_min = params.msg_max = 0;  // F-B's model
    params.laxity = 1.0;                  // deadline == critical time
    ProblemInstance inst = generate_workload(params);
    const AnalysisResult res = analyze(*inst.app);
    const FernandezBussellResult fb = fernandez_bussell_bound(*inst.app);
    const ResourceId p = inst.catalog->find("P1");
    EXPECT_GE(res.bound_for(p), fb.processors) << "seed " << seed;

    const std::vector<std::int64_t> wb = all_work_bounds(*inst.app, res.windows);
    const auto rs = inst.app->resource_set();
    for (std::size_t k = 0; k < rs.size(); ++k) {
      EXPECT_GE(res.bound_for(rs[k]), wb[k]) << "seed " << seed;
    }
  }
}

TEST(BaselineDominance, PaperBoundDominatesAlMohummedModel) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    WorkloadParams params;
    params.seed = seed * 11;
    params.num_tasks = 14;
    params.num_proc_types = 1;
    params.num_resources = 0;
    params.msg_min = 0;
    params.msg_max = 6;
    params.laxity = 1.0;
    ProblemInstance inst = generate_workload(params);
    // Give every task the same global deadline (= max deadline): that is the
    // 1990 model AM analyzes; then LB_P must dominate AM's bound at that
    // horizon.
    Time horizon = 0;
    for (TaskId i = 0; i < inst.app->num_tasks(); ++i) {
      horizon = std::max(horizon, inst.app->task(i).deadline);
    }
    for (TaskId i = 0; i < inst.app->num_tasks(); ++i) {
      inst.app->task(i).deadline = horizon;
    }
    const AnalysisResult res = analyze(*inst.app);
    const AlMohummedResult am = al_mohummed_bound(*inst.app, horizon);
    const ResourceId p = inst.catalog->find("P1");
    EXPECT_GE(res.bound_for(p), am.processors) << "seed " << seed;
  }
}

}  // namespace
}  // namespace rtlb
