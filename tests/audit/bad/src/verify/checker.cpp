// PLANTED VIOLATION CORPUS -- never compiled. tests/test_audit.cpp asserts
// the exact file:line of every finding below; do not renumber lines.
//
// The independent checker reaching back into core/ trips BOTH the layering
// rule (verify -> core is not a declared DAG edge and checker.cpp is not a
// listed gateway) and the checker-independence rule RTLB-A002.
#include "src/verify/checker.hpp"

#include "src/core/lower_bound.hpp"

namespace rtlb {}
