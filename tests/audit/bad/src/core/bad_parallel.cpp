// PLANTED VIOLATION CORPUS -- never compiled. tests/test_audit.cpp asserts
// the exact file:line of every finding below; do not renumber lines.
#include "src/common/thread_pool.hpp"
#include "src/common/types.hpp"

#include <vector>

namespace rtlb {

void broken_parallel_scan(ThreadPool& pool, const std::vector<Time>& items,
                          std::vector<Time>& out, std::vector<int>& log) {
  Time total = 0;
  pool.parallel_for(items.size(), [&](std::size_t i) {
    out[i] = items[i];
    total += items[i];
    log.push_back(static_cast<int>(i));
  });
  (void)total;
}

}  // namespace rtlb
