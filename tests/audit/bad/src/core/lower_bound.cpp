// PLANTED VIOLATION CORPUS -- never compiled. tests/test_audit.cpp asserts
// the exact file:line of every finding below; do not renumber lines.
#include "src/common/types.hpp"

namespace rtlb {

Time planted_numeric(Time comp, Time span, Time weight) {
  double approx = 0.5;
  (void)approx;
  Time product = comp * span;
  Time widened = static_cast<Time>(static_cast<__int128>(comp) * span);
  Time sum = 0;
  sum += product;
  // audit-ok: RTLB-A302 planted suppression proving the audit-ok path works
  sum += widened;
  sum += weight;  // audit-ok: RTLB-A302
  return sum;
}

}  // namespace rtlb
