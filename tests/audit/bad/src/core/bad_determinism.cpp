// PLANTED VIOLATION CORPUS -- never compiled. tests/test_audit.cpp asserts
// the exact file:line of every finding below; do not renumber lines.
#include "src/common/types.hpp"

#include <chrono>
#include <cstdlib>
#include <map>
#include <unordered_map>

namespace rtlb {

int unordered_iteration(const std::unordered_map<int, Time>& demand) {
  int n = 0;
  for (const auto& [task, comp] : demand) {
    n += static_cast<int>(comp);
  }
  for (auto it = demand.begin(); it != demand.end(); ++it) {
    ++n;
  }
  return n;
}

long banned_clock_and_rand() {
  const auto t0 = std::chrono::steady_clock::now();
  (void)t0;
  return std::rand();
}

struct Task;
std::map<const Task*, Time> pointer_keyed_order;

}  // namespace rtlb
