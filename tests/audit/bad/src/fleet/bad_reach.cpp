// PLANTED VIOLATION CORPUS -- never compiled. tests/test_audit.cpp asserts
// the exact file:line of every finding below; do not renumber lines.
//
// fleet/ evaluates scenarios through core/'s analysis entry points; pulling
// the simulator or the synthesis loop in directly is a layering break.
#include "src/fleet/runner.hpp"

#include "src/sim/simulator.hpp"
#include "src/synth/synthesis.hpp"

namespace rtlb {}
