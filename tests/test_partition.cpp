#include <gtest/gtest.h>

#include "src/core/partition.hpp"
#include "src/workload/paper_example.hpp"
#include "src/workload/taskset_gen.hpp"

namespace rtlb {
namespace {

class PartitionTest : public ::testing::Test {
 protected:
  PartitionTest() : app_(cat_) { p_ = cat_.add_processor_type("P"); }

  TaskId add(Time est, Time lct) {
    Task t;
    t.name = "t" + std::to_string(app_.num_tasks());
    t.comp = 1;
    t.release = est;
    t.deadline = lct;
    t.proc = p_;
    const TaskId id = app_.add_task(std::move(t));
    windows_.est.push_back(est);
    windows_.lct.push_back(lct);
    windows_.merged_pred.emplace_back();
    windows_.merged_succ.emplace_back();
    return id;
  }

  ResourceCatalog cat_;
  Application app_;
  TaskWindows windows_;
  ResourceId p_;
};

TEST_F(PartitionTest, DisjointWindowsSplit) {
  add(0, 5);
  add(6, 10);
  add(11, 20);
  const ResourcePartition part = partition_tasks(app_, windows_, p_);
  ASSERT_EQ(part.blocks.size(), 3u);
  EXPECT_EQ(part.blocks[0].tasks, std::vector<TaskId>{0});
  EXPECT_EQ(part.blocks[1].tasks, std::vector<TaskId>{1});
  EXPECT_EQ(part.blocks[2].tasks, std::vector<TaskId>{2});
  EXPECT_TRUE(is_valid_partition(app_, windows_, part));
}

TEST_F(PartitionTest, OverlappingWindowsStayTogether) {
  add(0, 10);
  add(5, 15);
  add(9, 20);
  const ResourcePartition part = partition_tasks(app_, windows_, p_);
  ASSERT_EQ(part.blocks.size(), 1u);
  EXPECT_EQ(part.blocks[0].tasks.size(), 3u);
  EXPECT_EQ(part.blocks[0].start, 0);
  EXPECT_EQ(part.blocks[0].finish, 20);
  EXPECT_TRUE(is_valid_partition(app_, windows_, part));
}

TEST_F(PartitionTest, TouchingWindowsSplit) {
  // E_i == max L_j: Figure 4's strict '<' opens a new block.
  add(0, 5);
  add(5, 9);
  const ResourcePartition part = partition_tasks(app_, windows_, p_);
  EXPECT_EQ(part.blocks.size(), 2u);
  EXPECT_TRUE(is_valid_partition(app_, windows_, part));
}

TEST_F(PartitionTest, ChainedOverlapMergesTransitively) {
  // [0,4] and [8,12] are disjoint but [3,9] bridges them.
  add(0, 4);
  add(8, 12);
  add(3, 9);
  const ResourcePartition part = partition_tasks(app_, windows_, p_);
  ASSERT_EQ(part.blocks.size(), 1u);
  EXPECT_TRUE(is_valid_partition(app_, windows_, part));
}

TEST_F(PartitionTest, EmptyResourceGivesEmptyPartition) {
  const ResourceId unused = cat_.add_resource("unused");
  add(0, 5);
  const ResourcePartition part = partition_tasks(app_, windows_, unused);
  EXPECT_TRUE(part.blocks.empty());
}

TEST_F(PartitionTest, ValidatorCatchesBadPartition) {
  add(0, 5);
  add(6, 10);
  ResourcePartition bogus;
  bogus.resource = p_;
  // One block missing a task.
  bogus.blocks.push_back(PartitionBlock{{0}, 0, 5});
  EXPECT_FALSE(is_valid_partition(app_, windows_, bogus));
  // Duplicated task.
  bogus.blocks.push_back(PartitionBlock{{0, 1}, 0, 10});
  EXPECT_FALSE(is_valid_partition(app_, windows_, bogus));
}

TEST(PartitionRandom, AllPartitionsValidOnGeneratedWorkloads) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    WorkloadParams params;
    params.seed = seed;
    params.num_tasks = 30;
    params.laxity = 1.5 + 0.2 * static_cast<double>(seed % 3);
    ProblemInstance inst = generate_workload(params);
    SharedMergeOracle oracle;
    const TaskWindows w = compute_windows(*inst.app, oracle);
    for (const ResourcePartition& part : partition_all(*inst.app, w)) {
      EXPECT_TRUE(is_valid_partition(*inst.app, w, part))
          << "seed " << seed << " resource " << part.resource;
    }
  }
}

TEST(PartitionPaper, MatchesSectionEight) {
  ProblemInstance inst = paper_example();
  DedicatedMergeOracle oracle(inst.platform);
  const TaskWindows w = compute_windows(*inst.app, oracle);
  for (const ResourcePartition& part : partition_all(*inst.app, w)) {
    EXPECT_TRUE(is_valid_partition(*inst.app, w, part));
  }
}

}  // namespace
}  // namespace rtlb
