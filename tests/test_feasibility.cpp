#include <gtest/gtest.h>

#include "src/sched/feasibility.hpp"

namespace rtlb {
namespace {

class FeasibilityTest : public ::testing::Test {
 protected:
  FeasibilityTest() : app_(cat_) {
    p1_ = cat_.add_processor_type("P1");
    p2_ = cat_.add_processor_type("P2");
    r_ = cat_.add_resource("r");
  }

  TaskId add(Time comp, Time rel, Time deadline, ResourceId proc,
             std::vector<ResourceId> res = {}) {
    Task t;
    t.name = "t" + std::to_string(app_.num_tasks());
    t.comp = comp;
    t.release = rel;
    t.deadline = deadline;
    t.proc = proc;
    t.resources = std::move(res);
    return app_.add_task(std::move(t));
  }

  ResourceCatalog cat_;
  Application app_;
  ResourceId p1_, p2_, r_;
};

TEST_F(FeasibilityTest, AcceptsValidSchedule) {
  const TaskId a = add(3, 0, 20, p1_);
  const TaskId b = add(2, 0, 20, p1_);
  app_.add_edge(a, b, 4);
  Capacities caps(cat_.size(), 1);
  Schedule s(2);
  s.items[a] = {0, 0};
  s.items[b] = {3, 0};  // co-located: no message latency needed
  EXPECT_TRUE(check_shared(app_, s, caps).empty());
}

TEST_F(FeasibilityTest, CatchesMissingPlacement) {
  add(3, 0, 20, p1_);
  Capacities caps(cat_.size(), 1);
  Schedule s(1);
  const auto v = check_shared(app_, s, caps);
  ASSERT_EQ(v.size(), 1u);
  EXPECT_NE(v[0].find("not placed"), std::string::npos);
}

TEST_F(FeasibilityTest, CatchesReleaseAndDeadline) {
  const TaskId a = add(3, 5, 9, p1_);
  Capacities caps(cat_.size(), 1);
  Schedule s(1);
  s.items[a] = {4, 0};  // starts 1 early but still ends by 7 < 9
  auto v = check_shared(app_, s, caps);
  ASSERT_EQ(v.size(), 1u);
  EXPECT_NE(v[0].find("release"), std::string::npos);
  s.items[a] = {7, 0};  // ends at 10 > 9
  v = check_shared(app_, s, caps);
  ASSERT_EQ(v.size(), 1u);
  EXPECT_NE(v[0].find("deadline"), std::string::npos);
}

TEST_F(FeasibilityTest, MessageLatencyRequiredAcrossUnits) {
  const TaskId a = add(3, 0, 20, p1_);
  const TaskId b = add(2, 0, 20, p1_);
  app_.add_edge(a, b, 4);
  Capacities caps(cat_.size(), 2);
  Schedule s(2);
  s.items[a] = {0, 0};
  s.items[b] = {3, 1};  // different unit: must wait until 3 + 4
  auto v = check_shared(app_, s, caps);
  ASSERT_EQ(v.size(), 1u);
  EXPECT_NE(v[0].find("message"), std::string::npos);
  s.items[b] = {7, 1};
  EXPECT_TRUE(check_shared(app_, s, caps).empty());
}

TEST_F(FeasibilityTest, SameUnitNumberOfDifferentTypesIsNotCoLocation) {
  const TaskId a = add(3, 0, 20, p1_);
  const TaskId b = add(2, 0, 20, p2_);
  app_.add_edge(a, b, 4);
  Capacities caps(cat_.size(), 1);
  Schedule s(2);
  s.items[a] = {0, 0};
  s.items[b] = {3, 0};  // unit 0 of P2 != unit 0 of P1: message required
  const auto v = check_shared(app_, s, caps);
  ASSERT_EQ(v.size(), 1u);
  EXPECT_NE(v[0].find("message"), std::string::npos);
}

TEST_F(FeasibilityTest, CatchesCpuOverlapAndOvercapacity) {
  const TaskId a = add(3, 0, 20, p1_);
  const TaskId b = add(3, 0, 20, p1_);
  Capacities caps(cat_.size(), 1);
  Schedule s(2);
  s.items[a] = {0, 0};
  s.items[b] = {1, 0};  // overlaps on the single CPU
  auto v = check_shared(app_, s, caps);
  ASSERT_EQ(v.size(), 1u);
  EXPECT_NE(v[0].find("overlap"), std::string::npos);
  s.items[b] = {1, 1};  // unit 1 does not exist
  v = check_shared(app_, s, caps);
  ASSERT_EQ(v.size(), 1u);
  EXPECT_NE(v[0].find("exist"), std::string::npos);
}

TEST_F(FeasibilityTest, BackToBackOnOneCpuIsFine) {
  const TaskId a = add(3, 0, 20, p1_);
  const TaskId b = add(3, 0, 20, p1_);
  Capacities caps(cat_.size(), 1);
  Schedule s(2);
  s.items[a] = {0, 0};
  s.items[b] = {3, 0};  // half-open intervals: [0,3) then [3,6)
  EXPECT_TRUE(check_shared(app_, s, caps).empty());
}

TEST_F(FeasibilityTest, CatchesResourceOverCapacity) {
  const TaskId a = add(3, 0, 20, p1_, {r_});
  const TaskId b = add(3, 0, 20, p1_, {r_});
  Capacities caps(cat_.size(), 2);
  caps.set(r_, 1);
  Schedule s(2);
  s.items[a] = {0, 0};
  s.items[b] = {1, 1};  // different CPUs but r is over capacity
  const auto v = check_shared(app_, s, caps);
  ASSERT_EQ(v.size(), 1u);
  EXPECT_NE(v[0].find("concurrent"), std::string::npos);
  caps.set(r_, 2);
  EXPECT_TRUE(check_shared(app_, s, caps).empty());
}

TEST_F(FeasibilityTest, DedicatedHostingAndSerialization) {
  const TaskId a = add(3, 0, 20, p1_, {r_});
  const TaskId b = add(3, 0, 20, p1_);
  DedicatedPlatform plat;
  plat.add_node_type(NodeType{"bare", p1_, {}, 1});
  plat.add_node_type(NodeType{"rich", p1_, {{r_, 1}}, 2});
  DedicatedConfig config;
  config.instance_types = {0, 1};

  Schedule s(2);
  s.items[a] = {0, 0};  // bare node cannot host the r-task
  s.items[b] = {0, 1};
  auto v = check_dedicated(app_, s, plat, config);
  ASSERT_EQ(v.size(), 1u);
  EXPECT_NE(v[0].find("cannot host"), std::string::npos);

  s.items[a] = {0, 1};
  s.items[b] = {1, 1};  // both on node 1: overlap on its single CPU
  v = check_dedicated(app_, s, plat, config);
  ASSERT_EQ(v.size(), 1u);
  EXPECT_NE(v[0].find("overlap"), std::string::npos);

  s.items[b] = {0, 0};
  EXPECT_TRUE(check_dedicated(app_, s, plat, config).empty());
}

TEST_F(FeasibilityTest, DedicatedCoLocationSkipsMessage) {
  const TaskId a = add(3, 0, 20, p1_);
  const TaskId b = add(2, 0, 20, p1_);
  app_.add_edge(a, b, 6);
  DedicatedPlatform plat;
  plat.add_node_type(NodeType{"bare", p1_, {}, 1});
  DedicatedConfig config;
  config.instance_types = {0, 0};

  Schedule s(2);
  s.items[a] = {0, 0};
  s.items[b] = {3, 0};  // same instance: fine
  EXPECT_TRUE(check_dedicated(app_, s, plat, config).empty());
  s.items[b] = {3, 1};  // different instance: needs the message
  EXPECT_FALSE(check_dedicated(app_, s, plat, config).empty());
  s.items[b] = {9, 1};
  EXPECT_TRUE(check_dedicated(app_, s, plat, config).empty());
}

TEST_F(FeasibilityTest, DedicatedNonexistentInstance) {
  const TaskId a = add(3, 0, 20, p1_);
  DedicatedPlatform plat;
  plat.add_node_type(NodeType{"bare", p1_, {}, 1});
  DedicatedConfig config;
  config.instance_types = {0};
  Schedule s(1);
  s.items[a] = {0, 5};
  const auto v = check_dedicated(app_, s, plat, config);
  ASSERT_EQ(v.size(), 1u);
  EXPECT_NE(v[0].find("nonexistent"), std::string::npos);
}

}  // namespace
}  // namespace rtlb
