#include <gtest/gtest.h>

#include "src/core/analysis.hpp"
#include "src/core/lower_bound.hpp"
#include "src/core/overlap.hpp"
#include "src/workload/taskset_gen.hpp"

namespace rtlb {
namespace {

class LowerBoundTest : public ::testing::Test {
 protected:
  LowerBoundTest() : app_(cat_) { p_ = cat_.add_processor_type("P", 1); }

  TaskId add(Time comp, Time rel, Time deadline, bool preemptive = false) {
    Task t;
    t.name = "t" + std::to_string(app_.num_tasks());
    t.comp = comp;
    t.release = rel;
    t.deadline = deadline;
    t.proc = p_;
    t.preemptive = preemptive;
    return app_.add_task(std::move(t));
  }

  ResourceBound bound(bool partitioned = true) {
    SharedMergeOracle oracle;
    const TaskWindows w = compute_windows(app_, oracle);
    LowerBoundOptions opts;
    opts.use_partitioning = partitioned;
    return resource_lower_bound(app_, w, p_, opts);
  }

  ResourceCatalog cat_;
  Application app_;
  ResourceId p_;
};

TEST_F(LowerBoundTest, SingleTaskNeedsOneUnit) {
  add(3, 0, 10);
  const ResourceBound b = bound();
  EXPECT_EQ(b.bound, 1);
}

TEST_F(LowerBoundTest, UnusedResourceBoundsToZero) {
  const ResourceId unused = cat_.add_resource("unused");
  add(3, 0, 10);
  SharedMergeOracle oracle;
  const TaskWindows w = compute_windows(app_, oracle);
  EXPECT_EQ(resource_lower_bound(app_, w, unused).bound, 0);
}

TEST_F(LowerBoundTest, ParallelDeadlinesForceParallelUnits) {
  // Three tasks each filling [0, 4] completely: no single CPU can do 12
  // ticks of work in 4 ticks.
  add(4, 0, 4);
  add(4, 0, 4);
  add(4, 0, 4);
  const ResourceBound b = bound();
  EXPECT_EQ(b.bound, 3);
  EXPECT_EQ(b.witness_t1, 0);
  EXPECT_EQ(b.witness_t2, 4);
  EXPECT_EQ(b.witness_demand, 12);
}

TEST_F(LowerBoundTest, SlackAllowsSequencing) {
  // Same three tasks but with deadline 12: one CPU suffices and the density
  // never exceeds 1.
  add(4, 0, 12);
  add(4, 0, 12);
  add(4, 0, 12);
  EXPECT_EQ(bound().bound, 1);
}

TEST_F(LowerBoundTest, PreemptiveTasksCanDodgeNarrowIntervals) {
  // Windows [0, 12], C = 8 each, two tasks. Non-preemptive: any [4, 8]
  // placement overlaps [4, 8] by >= 4, demand 8 over width 4 -> bound 2.
  // Preemptive: both can split around the middle, and the peak density over
  // the whole window is 16/12 -> bound 2 as well... use distinct geometry:
  const TaskId a = add(8, 0, 12, /*preemptive=*/true);
  const TaskId b = add(8, 0, 12, /*preemptive=*/true);
  (void)a;
  (void)b;
  const ResourceBound pre = bound();
  EXPECT_EQ(pre.bound, 2);  // 16 ticks of work in a 12-tick window

  Application app2(cat_);
  Task t;
  t.comp = 8;
  t.release = 0;
  t.deadline = 12;
  t.proc = p_;
  t.preemptive = false;
  t.name = "x";
  app2.add_task(t);
  t.name = "y";
  app2.add_task(t);
  SharedMergeOracle oracle;
  const TaskWindows w2 = compute_windows(app2, oracle);
  const ResourceBound non = resource_lower_bound(app2, w2, p_);
  // Non-preemptive demand in any sub-interval is at least as large.
  EXPECT_GE(non.bound, pre.bound);
}

TEST_F(LowerBoundTest, PartitionedEqualsNaive) {
  add(4, 0, 4);
  add(3, 0, 9);
  add(5, 10, 18);
  add(2, 12, 15);
  add(6, 20, 30);
  const ResourceBound with = bound(true);
  const ResourceBound without = bound(false);
  EXPECT_EQ(with.bound, without.bound);
  EXPECT_TRUE(with.peak_density == without.peak_density);
  // Theorem 5's point: fewer intervals evaluated.
  EXPECT_LT(with.intervals_evaluated, without.intervals_evaluated);
}

TEST_F(LowerBoundTest, WitnessIntervalIsConsistent) {
  add(4, 0, 4);
  add(4, 0, 4);
  const ResourceBound b = bound();
  SharedMergeOracle oracle;
  const TaskWindows w = compute_windows(app_, oracle);
  const std::vector<TaskId> st = app_.tasks_using(p_);
  EXPECT_EQ(demand(app_, w, st, b.witness_t1, b.witness_t2), b.witness_demand);
  EXPECT_TRUE((Ratio{b.witness_demand, b.witness_t2 - b.witness_t1}) == b.peak_density);
  EXPECT_EQ(ceil_div(b.witness_demand, b.witness_t2 - b.witness_t1), b.bound);
}

TEST(LowerBoundTheorem5, PartitionedEqualsNaiveOnRandomWorkloads) {
  // Theorem 5 on generated workloads: per-block evaluation must give exactly
  // the same bound as scanning the whole range of ST_r.
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    WorkloadParams params;
    params.seed = seed;
    params.num_tasks = 24;
    params.laxity = 1.3 + 0.3 * static_cast<double>(seed % 4);
    params.release_spread = (seed % 2 == 0) ? 0.5 : 0.0;
    params.preemptive_prob = (seed % 3 == 0) ? 0.5 : 0.0;
    ProblemInstance inst = generate_workload(params);
    SharedMergeOracle oracle;
    const TaskWindows w = compute_windows(*inst.app, oracle);
    for (ResourceId r : inst.app->resource_set()) {
      LowerBoundOptions part, naive;
      part.use_partitioning = true;
      naive.use_partitioning = false;
      const ResourceBound a = resource_lower_bound(*inst.app, w, r, part);
      const ResourceBound b = resource_lower_bound(*inst.app, w, r, naive);
      EXPECT_EQ(a.bound, b.bound) << "seed " << seed << " r " << r;
      EXPECT_TRUE(a.peak_density == b.peak_density) << "seed " << seed << " r " << r;
      EXPECT_LE(a.intervals_evaluated, b.intervals_evaluated);
    }
  }
}

TEST(LowerBoundOverSets, DensityBoundOverMatchesResourceBound) {
  // density_bound_over on exactly ST_r must reproduce resource_lower_bound.
  WorkloadParams params;
  params.seed = 41;
  params.num_tasks = 24;
  params.laxity = 1.4;
  ProblemInstance inst = generate_workload(params);
  SharedMergeOracle oracle;
  const TaskWindows w = compute_windows(*inst.app, oracle);
  for (ResourceId r : inst.app->resource_set()) {
    const ResourceBound direct = resource_lower_bound(*inst.app, w, r);
    const ResourceBound over = density_bound_over(*inst.app, w, inst.app->tasks_using(r));
    EXPECT_EQ(direct.bound, over.bound);
    EXPECT_TRUE(direct.peak_density == over.peak_density);
  }
  // And on a subset it can only be <= (fewer contributors pointwise, though
  // candidate points shift, the empty-vs-full sanity holds):
  const ResourceId p = inst.catalog->find("P1");
  std::vector<TaskId> st = inst.app->tasks_using(p);
  ASSERT_GT(st.size(), 2u);
  st.resize(st.size() / 2);
  const ResourceBound half = density_bound_over(*inst.app, w, st);
  EXPECT_GE(half.bound, 0);
  EXPECT_EQ(density_bound_over(*inst.app, w, {}).bound, 0);
}

TEST(LowerBoundAnalysis, BoundNeverBelowWorkDensity) {
  // LB_r >= the single-interval work bound by construction (the work bound
  // is one of the candidate intervals).
  WorkloadParams params;
  params.seed = 77;
  params.num_tasks = 30;
  ProblemInstance inst = generate_workload(params);
  const AnalysisResult res = analyze(*inst.app);
  for (const ResourceBound& b : res.bounds) {
    const std::vector<TaskId> st = inst.app->tasks_using(b.resource);
    if (st.empty()) continue;
    Time work = 0, lo = kTimeMax, hi = kTimeMin;
    for (TaskId i : st) {
      work += inst.app->task(i).comp;
      lo = std::min(lo, res.windows.est[i]);
      hi = std::max(hi, res.windows.lct[i]);
    }
    EXPECT_GE(b.bound, ceil_div(work, hi - lo));
  }
}

}  // namespace
}  // namespace rtlb
