#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "src/common/random.hpp"
#include "src/lp/ilp.hpp"

namespace rtlb {
namespace {

using Rel = LinearProgram::Relation;

TEST(Ilp, IntegralLpNeedsNoBranching) {
  // min x + y st x >= 2, y >= 3: LP optimum is already integral.
  LinearProgram lp;
  lp.objective = {1, 1};
  lp.add_constraint({1, 0}, Rel::GreaterEq, 2);
  lp.add_constraint({0, 1}, Rel::GreaterEq, 3);
  const IlpResult r = solve_ilp(lp);
  ASSERT_EQ(r.status, IlpResult::Status::Optimal);
  EXPECT_EQ(r.x, (std::vector<std::int64_t>{2, 3}));
  EXPECT_NEAR(r.objective, 5.0, 1e-7);
  EXPECT_NEAR(r.relaxation_objective, 5.0, 1e-7);
}

TEST(Ilp, FractionalRelaxationGetsRounded) {
  // min x st 2x >= 5: LP gives 2.5, ILP must give 3.
  LinearProgram lp;
  lp.objective = {1};
  lp.add_constraint({2}, Rel::GreaterEq, 5);
  const IlpResult r = solve_ilp(lp);
  ASSERT_EQ(r.status, IlpResult::Status::Optimal);
  EXPECT_EQ(r.x, std::vector<std::int64_t>{3});
  EXPECT_NEAR(r.relaxation_objective, 2.5, 1e-7);
  EXPECT_GT(r.objective, r.relaxation_objective);
}

TEST(Ilp, CoveringProblem) {
  // Set cover: items {A, B, C}; sets S1={A,B} cost 3, S2={B,C} cost 3,
  // S3={A,C} cost 3, S4={A,B,C} cost 5. Optimum: S4 at 5 (any two singles
  // cost 6).
  LinearProgram lp;
  lp.objective = {3, 3, 3, 5};
  lp.add_constraint({1, 0, 1, 1}, Rel::GreaterEq, 1);  // A
  lp.add_constraint({1, 1, 0, 1}, Rel::GreaterEq, 1);  // B
  lp.add_constraint({0, 1, 1, 1}, Rel::GreaterEq, 1);  // C
  const IlpResult r = solve_ilp(lp);
  ASSERT_EQ(r.status, IlpResult::Status::Optimal);
  EXPECT_NEAR(r.objective, 5.0, 1e-7);
  EXPECT_EQ(r.x[3], 1);
  // The LP relaxation of this cover is 4.5 (x1=x2=x3=0.5): strictly weaker.
  EXPECT_NEAR(r.relaxation_objective, 4.5, 1e-7);
}

TEST(Ilp, InfeasibleDetected) {
  LinearProgram lp;
  lp.objective = {1};
  lp.add_constraint({1}, Rel::LessEq, 2);
  lp.add_constraint({1}, Rel::GreaterEq, 5);
  EXPECT_EQ(solve_ilp(lp).status, IlpResult::Status::Infeasible);
}

TEST(Ilp, IntegerInfeasibleWithinFeasibleLp) {
  // 2 <= 4x <= 3 has the LP point x = 0.625 but no integer point.
  LinearProgram lp;
  lp.objective = {1};
  lp.add_constraint({4}, Rel::GreaterEq, 2);
  lp.add_constraint({4}, Rel::LessEq, 3);
  EXPECT_EQ(solve_ilp(lp).status, IlpResult::Status::Infeasible);
}

TEST(Ilp, MatchesExhaustiveOnRandomCoveringProblems) {
  Rng rng(321);
  for (int trial = 0; trial < 60; ++trial) {
    const int vars = static_cast<int>(rng.uniform(2, 4));
    const int rows = static_cast<int>(rng.uniform(1, 3));
    LinearProgram lp;
    for (int v = 0; v < vars; ++v) {
      lp.objective.push_back(static_cast<double>(rng.uniform(1, 9)));
    }
    std::vector<std::vector<std::int64_t>> a(rows, std::vector<std::int64_t>(vars));
    std::vector<std::int64_t> rhs(rows);
    for (int k = 0; k < rows; ++k) {
      std::vector<double> row(vars);
      bool nonzero = false;
      for (int v = 0; v < vars; ++v) {
        a[k][v] = rng.uniform(0, 3);
        row[v] = static_cast<double>(a[k][v]);
        nonzero |= a[k][v] > 0;
      }
      if (!nonzero) {
        a[k][0] = 1;
        row[0] = 1;
      }
      rhs[k] = rng.uniform(1, 12);
      lp.add_constraint(row, Rel::GreaterEq, static_cast<double>(rhs[k]));
    }

    const IlpResult r = solve_ilp(lp);
    ASSERT_EQ(r.status, IlpResult::Status::Optimal) << "trial " << trial;

    // Exhaustive over x in [0, 15]^vars.
    double best = std::numeric_limits<double>::infinity();
    std::vector<std::int64_t> x(vars, 0);
    std::function<void(int)> enumerate = [&](int v) {
      if (v == vars) {
        for (int k = 0; k < rows; ++k) {
          std::int64_t lhs = 0;
          for (int u = 0; u < vars; ++u) lhs += a[k][u] * x[u];
          if (lhs < rhs[k]) return;
        }
        double cost = 0;
        for (int u = 0; u < vars; ++u) cost += lp.objective[u] * static_cast<double>(x[u]);
        best = std::min(best, cost);
        return;
      }
      for (x[v] = 0; x[v] <= 15; ++x[v]) enumerate(v + 1);
      x[v] = 0;
    };
    enumerate(0);
    ASSERT_TRUE(std::isfinite(best)) << "trial " << trial;
    EXPECT_NEAR(r.objective, best, 1e-6) << "trial " << trial;
    // And the relaxation is a valid lower bound.
    EXPECT_LE(r.relaxation_objective, r.objective + 1e-6);
  }
}

}  // namespace
}  // namespace rtlb
