#include <gtest/gtest.h>

#include "src/core/analysis.hpp"
#include "src/synth/pareto.hpp"
#include "src/workload/taskset_gen.hpp"

namespace rtlb {
namespace {

class ParetoTest : public ::testing::Test {
 protected:
  ParetoTest() : app_(cat_) {
    p_ = cat_.add_processor_type("P", 5);
    plat_.add_node_type(NodeType{"node", p_, {}, 5});
  }

  void add(Time comp, Time deadline) {
    Task t;
    t.name = "t" + std::to_string(app_.num_tasks());
    t.comp = comp;
    t.deadline = deadline;
    t.proc = p_;
    app_.add_task(std::move(t));
  }

  std::vector<ParetoPoint> run(ParetoOptions options = {}) {
    const AnalysisResult res = analyze(app_);
    return pareto_frontier(app_, plat_, res.bounds, options);
  }

  ResourceCatalog cat_;
  Application app_;
  DedicatedPlatform plat_;
  ResourceId p_;
};

TEST_F(ParetoTest, MoreNodesBuyShorterSchedules) {
  // Four independent 4-tick tasks with loose deadlines: 1 node -> 16 ticks,
  // 2 -> 8, 4 -> 4 (the critical-path floor).
  for (int i = 0; i < 4; ++i) add(4, 100);
  const auto frontier = run();
  ASSERT_GE(frontier.size(), 3u);
  EXPECT_EQ(frontier.front().cost, 5);
  EXPECT_EQ(frontier.front().makespan, 16);
  EXPECT_EQ(frontier.back().makespan, 4);
  // Strictly increasing cost, strictly decreasing makespan.
  for (std::size_t k = 0; k + 1 < frontier.size(); ++k) {
    EXPECT_LT(frontier[k].cost, frontier[k + 1].cost);
    EXPECT_GT(frontier[k].makespan, frontier[k + 1].makespan);
  }
}

TEST_F(ParetoTest, GoodEnoughStopsEarly) {
  for (int i = 0; i < 4; ++i) add(4, 100);
  ParetoOptions options;
  options.good_enough = 8;
  const auto frontier = run(options);
  ASSERT_FALSE(frontier.empty());
  EXPECT_EQ(frontier.back().makespan, 8);  // stopped before buying node #4
}

TEST_F(ParetoTest, DeadlinesGateTheCheapEnd) {
  // Deadline 8 rules out the single-node machine entirely.
  for (int i = 0; i < 4; ++i) add(4, 8);
  const auto frontier = run();
  ASSERT_FALSE(frontier.empty());
  EXPECT_GE(frontier.front().counts[0], 2);
}

TEST_F(ParetoTest, EmptyMenuGivesEmptyFrontier) {
  add(2, 10);
  DedicatedPlatform empty;
  const AnalysisResult res = analyze(app_);
  EXPECT_TRUE(pareto_frontier(app_, empty, res.bounds).empty());
}

TEST(ParetoRandom, FrontierIsMonotoneOnWorkloads) {
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    WorkloadParams params;
    params.seed = seed * 3;
    params.num_tasks = 12;
    params.num_proc_types = 1;
    params.num_resources = 1;
    params.laxity = 4.0;
    ProblemInstance inst = generate_workload(params);
    const AnalysisResult res = analyze(*inst.app);
    ParetoOptions options;
    options.max_instances_per_type = 3;
    const auto frontier = pareto_frontier(*inst.app, inst.platform, res.bounds, options);
    for (std::size_t k = 0; k + 1 < frontier.size(); ++k) {
      EXPECT_LT(frontier[k].cost, frontier[k + 1].cost) << "seed " << seed;
      EXPECT_GT(frontier[k].makespan, frontier[k + 1].makespan) << "seed " << seed;
    }
  }
}

}  // namespace
}  // namespace rtlb
