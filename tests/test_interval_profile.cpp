#include <gtest/gtest.h>

#include "src/sched/interval_profile.hpp"

namespace rtlb {
namespace {

TEST(IntervalProfile, EmptyFitsAtTheLowerBound) {
  IntervalProfile p;
  EXPECT_EQ(p.earliest_fit(0, 5, 1), 0);
  EXPECT_EQ(p.earliest_fit(7, 2, 1), 7);
}

TEST(IntervalProfile, SkipsBusyIntervalAtCapacityOne) {
  IntervalProfile p;
  p.add(2, 6);
  EXPECT_EQ(p.earliest_fit(0, 2, 1), 0);   // fits before
  EXPECT_EQ(p.earliest_fit(0, 3, 1), 6);   // would collide -> after
  EXPECT_EQ(p.earliest_fit(3, 1, 1), 6);
  EXPECT_EQ(p.earliest_fit(6, 4, 1), 6);   // half-open: start at the end
}

TEST(IntervalProfile, FindsGapsBetweenCommitments) {
  IntervalProfile p;
  p.add(0, 3);
  p.add(7, 10);
  EXPECT_EQ(p.earliest_fit(0, 4, 1), 3);   // the [3, 7) gap
  EXPECT_EQ(p.earliest_fit(0, 5, 1), 10);  // too wide for the gap
}

TEST(IntervalProfile, CapacityTwoAllowsOneOverlap) {
  IntervalProfile p;
  p.add(0, 5);
  EXPECT_EQ(p.earliest_fit(0, 3, 2), 0);
  p.add(0, 5);
  EXPECT_EQ(p.earliest_fit(0, 3, 2), 5);  // both units busy
  EXPECT_EQ(p.earliest_fit(4, 3, 2), 5);
}

TEST(IntervalProfile, PeakCountsOverlapsInWindow) {
  IntervalProfile p;
  p.add(0, 4);
  p.add(2, 6);
  p.add(5, 9);
  EXPECT_EQ(p.peak_in(0, 10), 2);
  EXPECT_EQ(p.peak_in(4, 5), 1);
  EXPECT_EQ(p.peak_in(9, 12), 0);
}

TEST(EffectiveDeadlines, PropagateBackwardThroughMessages) {
  ResourceCatalog cat;
  const ResourceId p = cat.add_processor_type("P");
  Application app(cat);
  Task t;
  t.comp = 5;
  t.deadline = 100;
  t.proc = p;
  t.name = "head";
  const TaskId head = app.add_task(t);
  t.name = "tail";
  t.comp = 6;
  t.deadline = 30;
  const TaskId tail = app.add_task(t);
  app.add_edge(head, tail, 4);
  const std::vector<Time> d = effective_deadlines(app);
  EXPECT_EQ(d[tail], 30);
  EXPECT_EQ(d[head], 30 - 6 - 4);  // leave room for tail + message
}

TEST(EffectiveDeadlines, TakeTheTightestSuccessorPath) {
  ResourceCatalog cat;
  const ResourceId p = cat.add_processor_type("P");
  Application app(cat);
  auto mk = [&](const char* name, Time comp, Time deadline) {
    Task t;
    t.name = name;
    t.comp = comp;
    t.deadline = deadline;
    t.proc = p;
    return app.add_task(std::move(t));
  };
  const TaskId src = mk("src", 2, 100);
  const TaskId loose = mk("loose", 3, 90);
  const TaskId tight = mk("tight", 3, 20);
  app.add_edge(src, loose, 1);
  app.add_edge(src, tight, 1);
  const std::vector<Time> d = effective_deadlines(app);
  EXPECT_EQ(d[src], 20 - 3 - 1);
}

}  // namespace
}  // namespace rtlb
