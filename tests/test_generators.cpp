#include <gtest/gtest.h>

#include "src/graph/generators.hpp"

namespace rtlb {
namespace {

TEST(Generators, LayeredDagShape) {
  Rng rng(1);
  const Dag g = layered_dag(rng, 40, 5, 0.3);
  EXPECT_EQ(g.num_vertices(), 40u);
  EXPECT_TRUE(g.is_acyclic());
  // Every non-source vertex has a predecessor in the previous layer.
  const auto levels = g.levels();
  for (std::uint32_t v = 0; v < g.num_vertices(); ++v) {
    if (!g.predecessors(v).empty()) {
      EXPECT_GE(levels[v], 1u);
    }
  }
}

TEST(Generators, LayeredDagIsDeterministicPerSeed) {
  Rng a(9), b(9);
  const Dag g1 = layered_dag(a, 30, 4, 0.4);
  const Dag g2 = layered_dag(b, 30, 4, 0.4);
  EXPECT_EQ(g1.num_edges(), g2.num_edges());
  for (std::uint32_t v = 0; v < 30; ++v) {
    EXPECT_EQ(g1.successors(v), g2.successors(v));
  }
}

TEST(Generators, RandomDagEdgeCountScalesWithP) {
  Rng rng(2);
  const Dag sparse = random_dag(rng, 40, 0.05);
  const Dag dense = random_dag(rng, 40, 0.5);
  EXPECT_TRUE(sparse.is_acyclic());
  EXPECT_TRUE(dense.is_acyclic());
  EXPECT_LT(sparse.num_edges(), dense.num_edges());
  // p = 1 gives the complete DAG on the upper triangle.
  const Dag complete = random_dag(rng, 10, 1.0);
  EXPECT_EQ(complete.num_edges(), 45u);
}

TEST(Generators, ForkJoinStructure) {
  const Dag g = fork_join(3, 2);
  EXPECT_EQ(g.num_vertices(), 8u);
  EXPECT_EQ(g.sources(), std::vector<std::uint32_t>{0});
  EXPECT_EQ(g.sinks(), std::vector<std::uint32_t>{7});
  EXPECT_EQ(g.out_degree(0), 3u);
  EXPECT_EQ(g.in_degree(7), 3u);
  EXPECT_TRUE(g.is_acyclic());
}

TEST(Generators, PipelineIsAChain) {
  const Dag g = pipeline(5);
  EXPECT_EQ(g.num_edges(), 4u);
  for (std::uint32_t v = 0; v + 1 < 5; ++v) EXPECT_TRUE(g.has_edge(v, v + 1));
}

TEST(Generators, OutTreeParents) {
  const Dag g = out_tree(7, 2);
  EXPECT_EQ(g.num_edges(), 6u);
  EXPECT_EQ(g.sources(), std::vector<std::uint32_t>{0});
  for (std::uint32_t v = 1; v < 7; ++v) EXPECT_EQ(g.in_degree(v), 1u);
}

TEST(Generators, InTreeIsMirrored) {
  const Dag g = in_tree(7, 2);
  EXPECT_EQ(g.num_edges(), 6u);
  EXPECT_EQ(g.sinks(), std::vector<std::uint32_t>{6});
  for (std::uint32_t v = 0; v < 6; ++v) EXPECT_EQ(g.out_degree(v), 1u);
  EXPECT_TRUE(g.is_acyclic());
}

TEST(Generators, SeriesParallelIsAcyclicSingleSourceSink) {
  Rng rng(3);
  for (int trial = 0; trial < 10; ++trial) {
    const Dag g = series_parallel(rng, 20);
    EXPECT_EQ(g.num_vertices(), 20u);
    EXPECT_TRUE(g.is_acyclic());
    EXPECT_EQ(g.sources(), std::vector<std::uint32_t>{0});
    EXPECT_EQ(g.sinks(), std::vector<std::uint32_t>{1});
  }
}

}  // namespace
}  // namespace rtlb
