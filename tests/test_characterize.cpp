#include <gtest/gtest.h>

#include "src/core/analysis.hpp"
#include "src/workload/characterize.hpp"
#include "src/workload/paper_example.hpp"
#include "src/workload/taskset_gen.hpp"

namespace rtlb {
namespace {

TEST(Characterize, HandComputedSmallInstance) {
  ResourceCatalog cat;
  const ResourceId p = cat.add_processor_type("P");
  const ResourceId r = cat.add_resource("r");
  Application app(cat);
  auto mk = [&](const char* name, Time comp, Time deadline, bool with_r) {
    Task t;
    t.name = name;
    t.comp = comp;
    t.deadline = deadline;
    t.proc = p;
    if (with_r) t.resources = {r};
    return app.add_task(std::move(t));
  };
  const TaskId a = mk("a", 4, 10, true);
  const TaskId b = mk("b", 2, 10, false);
  app.add_edge(a, b, 3);

  SharedMergeOracle oracle;
  const TaskWindows w = compute_windows(app, oracle);
  const WorkloadProfile profile = characterize(app, w);

  EXPECT_EQ(profile.tasks, 2u);
  EXPECT_EQ(profile.edges, 1u);
  EXPECT_EQ(profile.depth, 2u);
  EXPECT_EQ(profile.width, 1u);
  EXPECT_EQ(profile.ccr_pct, 50);  // 3 message ticks / 6 comp ticks
  ASSERT_EQ(profile.loads.size(), 2u);
  // P is used by both tasks; r by one.
  EXPECT_EQ(profile.loads[0].resource, p);
  EXPECT_EQ(profile.loads[0].tasks, 2u);
  EXPECT_EQ(profile.loads[0].work, 6);
  EXPECT_EQ(profile.loads[1].resource, r);
  EXPECT_EQ(profile.loads[1].tasks, 1u);

  const std::string text = format_profile(app, profile);
  EXPECT_NE(text.find("2 tasks"), std::string::npos);
  EXPECT_NE(text.find("utilization"), std::string::npos);
}

TEST(Characterize, Over100PercentUtilizationImpliesBoundAboveOne) {
  // The screening metric and the real bound must agree on the direction:
  // utilization > 100% forces LB_r >= 2 (the single widest interval is one
  // of the candidate intervals).
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    WorkloadParams params;
    params.seed = seed * 11;
    params.num_tasks = 18;
    params.laxity = 1.2;
    ProblemInstance inst = generate_workload(params);
    const AnalysisResult res = analyze(*inst.app);
    const WorkloadProfile profile = characterize(*inst.app, res.windows);
    for (const ResourceLoad& load : profile.loads) {
      if (load.utilization_pct > 100) {
        EXPECT_GE(res.bound_for(load.resource), 2) << "seed " << seed;
      }
      // And never the reverse gap: utilization <= LB * 100 always.
      EXPECT_LE(load.utilization_pct, res.bound_for(load.resource).value() * 100)
          << "seed " << seed;
    }
  }
}

TEST(Characterize, MinSlackMatchesInfeasibilityFlag) {
  ResourceCatalog cat;
  const ResourceId p = cat.add_processor_type("P");
  const ResourceId q = cat.add_processor_type("Q");
  Application app(cat);
  Task t;
  t.name = "a";
  t.comp = 5;
  t.deadline = 20;
  t.proc = p;
  const TaskId a = app.add_task(t);
  t.name = "b";
  t.comp = 5;
  t.deadline = 9;
  t.proc = q;
  const TaskId b = app.add_task(t);
  app.add_edge(a, b, 4);
  const AnalysisResult res = analyze(app);
  const WorkloadProfile profile = characterize(app, res.windows);
  EXPECT_LT(profile.min_slack, 0);
  EXPECT_TRUE(res.infeasible(app));
}

TEST(Characterize, PaperExampleProfile) {
  ProblemInstance inst = paper_example();
  const AnalysisResult res = analyze(*inst.app);
  const WorkloadProfile profile = characterize(*inst.app, res.windows);
  EXPECT_EQ(profile.tasks, 15u);
  EXPECT_EQ(profile.edges, 16u);
  EXPECT_EQ(profile.min_slack, 0);  // several zero-slack tasks (T4, T12, ...)
  // P1's block-1 peak is what drives LB_P1 = 3; whole-span utilization is
  // lower but must still exceed 100% / LB consistency in both directions.
  for (const ResourceLoad& load : profile.loads) {
    EXPECT_LE(load.utilization_pct, res.bound_for(load.resource).value() * 100);
  }
}

}  // namespace
}  // namespace rtlb
