// Streaming fleet aggregates: everything the runner keeps per instance is
// folded into these counters immediately, so a 10^6-instance run holds one
// instance (per worker) in memory at a time.
//
// Mergeability contract: every field is either an exact integer counter/sum
// or a list of records keyed by global instance index. Counters commute and
// associate, and to_json() sorts the record lists, so aggregates produced
// by ANY sharding of the same index set serialize byte-identically -- the
// property the checkpoint/resume and shard-merge tests pin.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/json.hpp"
#include "src/fleet/scenario.hpp"

namespace rtlb {

/// Integer histogram over per-mille values with fixed upper-edge buckets;
/// counts[i] holds values v with v < edges[i] (first matching i), the last
/// bucket is the overflow.
struct Histogram {
  std::vector<std::int64_t> edges;
  std::vector<std::uint64_t> counts;

  Histogram() = default;
  explicit Histogram(std::vector<std::int64_t> upper_edges);

  void add(std::int64_t per_mille);
  void merge(const Histogram& other);  // RTLB_CHECKs equal edges
  std::uint64_t total() const;

  Json to_json() const;
  static Histogram from_json(const Json& doc);
};

/// The tightness histogram's shared bucket layout: LB_paper / LB_work in
/// per-mille, buckets at 1.0x .. >10x. Defined once so every shard agrees.
Histogram make_tightness_histogram();

/// One divergence or certificate-check failure, with the full reproducer
/// coordinates: regenerate with generate_workload(spec.instance_params(
/// cells()[cell_index], instance_index)) -- `seed` is recorded redundantly
/// as a cross-check.
struct DivergenceRecord {
  std::uint64_t global_index = 0;
  std::uint64_t cell_index = 0;
  std::uint64_t instance_index = 0;
  std::uint64_t seed = 0;
  std::string cell;        ///< cell label at record time
  std::string oracle;      ///< "parallel", "session", "certificate",
                           ///< "cert-roundtrip", "lint", "exception"
  std::string detail;
  std::string reproducer;  ///< path of the minimized .rtlb, when written

  Json to_json() const;
  static DivergenceRecord from_json(const Json& doc);
};

struct CellAggregate {
  std::string label;  ///< from the spec's cell enumeration
  std::uint64_t instances = 0;
  std::uint64_t lint_errors = 0;
  std::uint64_t lint_warnings = 0;
  std::uint64_t lint_notes = 0;
  std::uint64_t lint_clean_instances = 0;
  std::uint64_t infeasible_instances = 0;
  /// Resources with a non-trivial single-interval work bound -- the
  /// denominator population of the tightness histogram.
  std::uint64_t resources_measured = 0;
  std::int64_t tightness_per_mille_sum = 0;
  std::int64_t bound_sum = 0;  ///< sum of LB_r over all measured resources
  std::uint64_t divergences = 0;
  std::uint64_t check_failures = 0;
  Histogram tightness = make_tightness_histogram();

  void merge(const CellAggregate& other);
  Json to_json() const;
  static CellAggregate from_json(const Json& doc);
};

struct FleetAggregates {
  std::uint64_t instances = 0;
  std::uint64_t analyses = 0;  ///< pipeline runs incl. oracle re-analyses
  std::vector<CellAggregate> cells;
  std::vector<DivergenceRecord> divergences;

  /// Sized-and-labelled for a spec (one CellAggregate per cell, in order).
  static FleetAggregates for_spec(const ScenarioSpec& spec);

  void merge(const FleetAggregates& other);  // RTLB_CHECKs equal cell count
  bool clean() const { return divergences.empty(); }

  /// Exact serialization (checkpoint + shard exchange + final report). The
  /// derived convenience fields ("mean_tightness") are emitted for readers
  /// but recomputed, never parsed back.
  Json to_json() const;
  static FleetAggregates from_json(const Json& doc);
};

}  // namespace rtlb
