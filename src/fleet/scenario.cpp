#include "src/fleet/scenario.hpp"

#include <cmath>
#include <cstdio>

namespace rtlb {

namespace {

/// Render a laxity value the way the spec author wrote it: integral values
/// without a trailing ".0" noise beyond one digit, else shortest %g.
std::string laxity_str(double laxity) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%g", laxity);
  return buf;
}

double number_field(const Json& obj, const char* key, double fallback) {
  const Json* v = obj.find(key);
  if (v == nullptr) return fallback;
  if (!v->is_number()) throw ModelError(std::string("scenario: '") + key + "' must be a number");
  return v->as_double();
}

std::int64_t int_field(const Json& obj, const char* key, std::int64_t fallback) {
  const Json* v = obj.find(key);
  if (v == nullptr) return fallback;
  if (!v->is_int()) throw ModelError(std::string("scenario: '") + key + "' must be an integer");
  return v->as_int();
}

}  // namespace

std::string shape_name(GraphShape shape) {
  switch (shape) {
    case GraphShape::Layered: return "layered";
    case GraphShape::Random: return "random";
    case GraphShape::ForkJoin: return "fork_join";
    case GraphShape::SeriesParallel: return "series_parallel";
    case GraphShape::Pipeline: return "pipeline";
    case GraphShape::OutTree: return "out_tree";
  }
  throw ModelError("scenario: unknown graph shape enum value");
}

GraphShape shape_from_name(const std::string& name) {
  if (name == "layered") return GraphShape::Layered;
  if (name == "random") return GraphShape::Random;
  if (name == "fork_join") return GraphShape::ForkJoin;
  if (name == "series_parallel") return GraphShape::SeriesParallel;
  if (name == "pipeline") return GraphShape::Pipeline;
  if (name == "out_tree") return GraphShape::OutTree;
  throw ModelError("scenario: unknown shape '" + name + "'");
}

std::string model_name(SystemModel model) {
  return model == SystemModel::Shared ? "shared" : "dedicated";
}

SystemModel model_from_name(const std::string& name) {
  if (name == "shared") return SystemModel::Shared;
  if (name == "dedicated") return SystemModel::Dedicated;
  throw ModelError("scenario: unknown model '" + name + "'");
}

std::string workload_form_name(WorkloadForm form) {
  switch (form) {
    case WorkloadForm::Flat: return "flat";
    case WorkloadForm::Periodic: return "periodic";
    case WorkloadForm::Sporadic: return "sporadic";
  }
  throw ModelError("scenario: unknown workload form enum value");
}

WorkloadForm workload_form_from_name(const std::string& name) {
  if (name == "flat") return WorkloadForm::Flat;
  if (name == "periodic") return WorkloadForm::Periodic;
  if (name == "sporadic") return WorkloadForm::Sporadic;
  throw ModelError("scenario: unknown workload form '" + name + "'");
}

std::string ScenarioCell::label() const {
  // The workload segment appears only for recurrent cells, keeping the
  // historical labels (and every recorded divergence key) of flat-only
  // scenarios byte-stable.
  const std::string workload_segment =
      workload == WorkloadForm::Flat ? "" : workload_form_name(workload) + "/";
  return shape_name(shape) + "/n" + std::to_string(num_tasks) + "/lax" + laxity_str(laxity) +
         "/" + workload_segment + model_name(model);
}

ScenarioSpec ScenarioSpec::from_text(const std::string& text) {
  return from_json(Json::parse(text));
}

ScenarioSpec ScenarioSpec::from_json(const Json& doc) {
  if (!doc.is_object()) throw ModelError("scenario: document must be a JSON object");
  ScenarioSpec spec;
  if (const Json* v = doc.find("name")) {
    if (!v->is_string()) throw ModelError("scenario: 'name' must be a string");
    spec.name = v->as_string();
  }
  spec.seed = static_cast<std::uint64_t>(int_field(doc, "seed", 1));
  const std::int64_t per_cell = int_field(doc, "instances_per_cell", 1);
  if (per_cell < 1) throw ModelError("scenario: instances_per_cell must be >= 1");
  spec.instances_per_cell = static_cast<std::size_t>(per_cell);

  if (const Json* axes = doc.find("axes")) {
    if (!axes->is_object()) throw ModelError("scenario: 'axes' must be an object");
    if (const Json* a = axes->find("shape")) {
      if (!a->is_array() || a->size() == 0) throw ModelError("scenario: axes.shape must be a non-empty array");
      spec.shapes.clear();
      for (std::size_t i = 0; i < a->size(); ++i) spec.shapes.push_back(shape_from_name(a->at(i).as_string()));
    }
    if (const Json* a = axes->find("num_tasks")) {
      if (!a->is_array() || a->size() == 0) throw ModelError("scenario: axes.num_tasks must be a non-empty array");
      spec.task_counts.clear();
      for (std::size_t i = 0; i < a->size(); ++i) {
        const std::int64_t n = a->at(i).as_int();
        if (n < 1) throw ModelError("scenario: axes.num_tasks values must be >= 1");
        spec.task_counts.push_back(static_cast<std::size_t>(n));
      }
    }
    if (const Json* a = axes->find("laxity")) {
      if (!a->is_array() || a->size() == 0) throw ModelError("scenario: axes.laxity must be a non-empty array");
      spec.laxities.clear();
      for (std::size_t i = 0; i < a->size(); ++i) {
        const double lax = a->at(i).as_double();
        if (!(lax >= 1.0)) throw ModelError("scenario: axes.laxity values must be >= 1");
        spec.laxities.push_back(lax);
      }
    }
    if (const Json* a = axes->find("workload")) {
      if (!a->is_array() || a->size() == 0) throw ModelError("scenario: axes.workload must be a non-empty array");
      spec.workloads.clear();
      for (std::size_t i = 0; i < a->size(); ++i) spec.workloads.push_back(workload_form_from_name(a->at(i).as_string()));
    }
    if (const Json* a = axes->find("model")) {
      if (!a->is_array() || a->size() == 0) throw ModelError("scenario: axes.model must be a non-empty array");
      spec.models.clear();
      for (std::size_t i = 0; i < a->size(); ++i) spec.models.push_back(model_from_name(a->at(i).as_string()));
    }
    static const char* known_axes[] = {"shape", "num_tasks", "laxity", "workload", "model"};
    for (std::size_t i = 0; i < axes->size(); ++i) {
      const std::string& key = axes->member(i).first;
      bool ok = false;
      for (const char* k : known_axes) ok |= key == k;
      if (!ok) throw ModelError("scenario: unknown axis '" + key + "'");
    }
  }

  WorkloadParams& d = spec.defaults;
  if (const Json* defs = doc.find("defaults")) {
    if (!defs->is_object()) throw ModelError("scenario: 'defaults' must be an object");
    d.num_layers = static_cast<std::size_t>(int_field(*defs, "num_layers", static_cast<std::int64_t>(d.num_layers)));
    d.edge_prob = number_field(*defs, "edge_prob", d.edge_prob);
    d.comp_min = int_field(*defs, "comp_min", d.comp_min);
    d.comp_max = int_field(*defs, "comp_max", d.comp_max);
    d.msg_min = int_field(*defs, "msg_min", d.msg_min);
    d.msg_max = int_field(*defs, "msg_max", d.msg_max);
    d.ccr = number_field(*defs, "ccr", d.ccr);
    d.num_proc_types = static_cast<std::size_t>(int_field(*defs, "num_proc_types", static_cast<std::int64_t>(d.num_proc_types)));
    d.num_resources = static_cast<std::size_t>(int_field(*defs, "num_resources", static_cast<std::int64_t>(d.num_resources)));
    d.resource_prob = number_field(*defs, "resource_prob", d.resource_prob);
    d.release_spread = number_field(*defs, "release_spread", d.release_spread);
    d.preemptive_prob = number_field(*defs, "preemptive_prob", d.preemptive_prob);
    d.proc_cost_min = int_field(*defs, "proc_cost_min", d.proc_cost_min);
    d.proc_cost_max = int_field(*defs, "proc_cost_max", d.proc_cost_max);
    d.res_cost_min = int_field(*defs, "res_cost_min", d.res_cost_min);
    d.res_cost_max = int_field(*defs, "res_cost_max", d.res_cost_max);
    static const char* known[] = {"num_layers", "edge_prob", "comp_min", "comp_max",
                                  "msg_min", "msg_max", "ccr", "num_proc_types",
                                  "num_resources", "resource_prob", "release_spread",
                                  "preemptive_prob", "proc_cost_min", "proc_cost_max",
                                  "res_cost_min", "res_cost_max"};
    for (std::size_t i = 0; i < defs->size(); ++i) {
      const std::string& key = defs->member(i).first;
      bool ok = false;
      for (const char* k : known) ok |= key == k;
      if (!ok) throw ModelError("scenario: unknown default '" + key + "'");
    }
  }
  if (d.comp_min < 1 || d.comp_max < d.comp_min) throw ModelError("scenario: bad comp range");
  if (d.msg_min < 0 || d.msg_max < d.msg_min) throw ModelError("scenario: bad msg range");
  if (d.num_proc_types < 1) throw ModelError("scenario: need at least one processor type");

  static const char* known_top[] = {"name", "seed", "instances_per_cell", "axes", "defaults"};
  for (std::size_t i = 0; i < doc.size(); ++i) {
    const std::string& key = doc.member(i).first;
    bool ok = false;
    for (const char* k : known_top) ok |= key == k;
    if (!ok) throw ModelError("scenario: unknown key '" + key + "'");
  }
  return spec;
}

Json ScenarioSpec::to_json() const {
  Json axes = Json::object();
  Json shapes_j = Json::array();
  for (GraphShape s : shapes) shapes_j.push(shape_name(s));
  Json tasks_j = Json::array();
  for (std::size_t n : task_counts) tasks_j.push(static_cast<std::int64_t>(n));
  Json lax_j = Json::array();
  for (double lax : laxities) lax_j.push(lax);
  Json workloads_j = Json::array();
  for (WorkloadForm w : workloads) workloads_j.push(workload_form_name(w));
  Json models_j = Json::array();
  for (SystemModel m : models) models_j.push(model_name(m));
  axes.set("shape", std::move(shapes_j))
      .set("num_tasks", std::move(tasks_j))
      .set("laxity", std::move(lax_j))
      .set("workload", std::move(workloads_j))
      .set("model", std::move(models_j));

  Json defs = Json::object();
  defs.set("num_layers", static_cast<std::int64_t>(defaults.num_layers))
      .set("edge_prob", defaults.edge_prob)
      .set("comp_min", defaults.comp_min)
      .set("comp_max", defaults.comp_max)
      .set("msg_min", defaults.msg_min)
      .set("msg_max", defaults.msg_max)
      .set("ccr", defaults.ccr)
      .set("num_proc_types", static_cast<std::int64_t>(defaults.num_proc_types))
      .set("num_resources", static_cast<std::int64_t>(defaults.num_resources))
      .set("resource_prob", defaults.resource_prob)
      .set("release_spread", defaults.release_spread)
      .set("preemptive_prob", defaults.preemptive_prob)
      .set("proc_cost_min", defaults.proc_cost_min)
      .set("proc_cost_max", defaults.proc_cost_max)
      .set("res_cost_min", defaults.res_cost_min)
      .set("res_cost_max", defaults.res_cost_max);

  Json doc = Json::object();
  doc.set("name", name)
      .set("seed", static_cast<std::int64_t>(seed))
      .set("instances_per_cell", static_cast<std::int64_t>(instances_per_cell))
      .set("axes", std::move(axes))
      .set("defaults", std::move(defs));
  return doc;
}

std::uint64_t ScenarioSpec::fingerprint() const {
  const std::string canon = to_json().dump();
  // FNV-1a folded through splitmix64 for avalanche on short documents.
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : canon) h = (h ^ c) * 0x100000001b3ULL;
  return split_seed(h, canon.size());
}

std::vector<ScenarioCell> ScenarioSpec::cells() const {
  std::vector<ScenarioCell> out;
  out.reserve(num_cells());
  std::size_t index = 0;
  for (GraphShape shape : shapes) {
    for (std::size_t n : task_counts) {
      for (double laxity : laxities) {
        for (WorkloadForm workload : workloads) {
          for (SystemModel model : models) {
            ScenarioCell cell;
            cell.index = index++;
            cell.shape = shape;
            cell.num_tasks = n;
            cell.laxity = laxity;
            cell.workload = workload;
            cell.model = model;
            out.push_back(cell);
          }
        }
      }
    }
  }
  return out;
}

std::uint64_t ScenarioSpec::instance_seed(std::size_t cell_index, std::size_t k) const {
  return split_seed(seed, cell_index, k);
}

WorkloadParams ScenarioSpec::instance_params(const ScenarioCell& cell, std::size_t k) const {
  WorkloadParams p = defaults;
  p.seed = instance_seed(cell.index, k);
  p.shape = cell.shape;
  p.num_tasks = cell.num_tasks;
  p.laxity = cell.laxity;
  return p;
}

}  // namespace rtlb
