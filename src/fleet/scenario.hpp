// Declarative fleet scenario specs.
//
// A scenario describes a GRID of workload families -- the Cartesian product
// of graph shape x task count x laxity x system model -- plus a fixed set of
// generator defaults and an instance count per grid cell. The fleet runner
// (src/fleet/runner.hpp) streams every instance of every cell through the
// differential oracles; this module owns the spec format, the deterministic
// grid enumeration, and the per-instance seed derivation.
//
// Seeds: instance k of cell c has seed split_seed(spec.seed, c, k)
// (src/common/random.hpp), so an instance's bytes are a pure function of
// (spec, cell index, instance index) -- independent of sharding, worker
// scheduling, and checkpoint resumes. That is what makes a divergence
// record's (cell, instance) pair a complete reproducer.
//
// JSON format (parse with ScenarioSpec::from_json; axes and defaults may be
// omitted, single-element axes collapse the dimension):
//
//   {
//     "name": "smoke",
//     "seed": 7,
//     "instances_per_cell": 5,
//     "axes": {
//       "shape": ["layered", "random", "fork_join", "series_parallel",
//                 "pipeline", "out_tree"],
//       "num_tasks": [10, 20, 40],
//       "laxity": [1.2, 2.0, 4.0],
//       "model": ["shared", "dedicated"]
//     },
//     "defaults": { "edge_prob": 0.3, "num_layers": 4, "comp_min": 1,
//                   "comp_max": 10, "msg_min": 0, "msg_max": 5, "ccr": 0,
//                   "num_proc_types": 2, "num_resources": 2,
//                   "resource_prob": 0.4, "release_spread": 0,
//                   "preemptive_prob": 0.2 }
//   }
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/json.hpp"
#include "src/core/analysis.hpp"
#include "src/workload/taskset_gen.hpp"

namespace rtlb {

/// The `workload` axis: how a cell's instances are generated. Flat cells
/// call generate_workload(); Periodic/Sporadic cells call
/// generate_recurrent_instance() and the oracles run over the LOWERED
/// application -- the same differential contract, now exercised end-to-end
/// through the workload front door.
enum class WorkloadForm {
  Flat,
  Periodic,
  Sporadic,
};

/// One grid point. `index` is the cell's position in the deterministic
/// enumeration order (shape-major, then num_tasks, laxity, workload, model)
/// -- it is part of every instance's seed, so the axis order is a frozen
/// contract.
struct ScenarioCell {
  std::size_t index = 0;
  GraphShape shape = GraphShape::Layered;
  std::size_t num_tasks = 20;
  double laxity = 2.0;
  WorkloadForm workload = WorkloadForm::Flat;
  SystemModel model = SystemModel::Shared;

  /// Stable human-readable key, e.g. "layered/n20/lax2/shared"; the workload
  /// segment is rendered only for recurrent cells
  /// ("layered/n20/lax2/periodic/shared"), so flat-only scenarios keep their
  /// historical labels.
  std::string label() const;
};

struct ScenarioSpec {
  std::string name = "scenario";
  std::uint64_t seed = 1;
  std::size_t instances_per_cell = 1;

  // Axes, each in spec order (deduplication is the author's job).
  std::vector<GraphShape> shapes{GraphShape::Layered};
  std::vector<std::size_t> task_counts{20};
  std::vector<double> laxities{2.0};
  std::vector<WorkloadForm> workloads{WorkloadForm::Flat};
  std::vector<SystemModel> models{SystemModel::Shared};

  /// Generator knobs shared by every cell; the cell's own axes overwrite
  /// seed/shape/num_tasks/laxity on top of this.
  WorkloadParams defaults;

  /// Throws ModelError on unknown keys/axis values or structural nonsense
  /// (empty axes, zero instances) -- specs are user input.
  static ScenarioSpec from_json(const Json& doc);
  static ScenarioSpec from_text(const std::string& text);

  /// Canonical JSON (stable key order, every field explicit); equal specs
  /// dump byte-identically, which is what fingerprint() hashes.
  Json to_json() const;

  /// Content hash of the canonical dump; checkpoints and shard aggregates
  /// embed it so a resume or merge against a different spec is refused.
  std::uint64_t fingerprint() const;

  std::vector<ScenarioCell> cells() const;
  std::size_t num_cells() const {
    return shapes.size() * task_counts.size() * laxities.size() * workloads.size() *
           models.size();
  }
  std::size_t total_instances() const { return num_cells() * instances_per_cell; }

  std::uint64_t instance_seed(std::size_t cell_index, std::size_t k) const;

  /// Full generator parameters for instance k of `cell` (defaults + the
  /// cell's axis values + the derived seed).
  WorkloadParams instance_params(const ScenarioCell& cell, std::size_t k) const;
};

/// Axis-value names used by the JSON format ("layered", ..., "shared").
std::string shape_name(GraphShape shape);
std::string model_name(SystemModel model);
std::string workload_form_name(WorkloadForm form);
GraphShape shape_from_name(const std::string& name);    // ModelError on unknown
SystemModel model_from_name(const std::string& name);   // ModelError on unknown
WorkloadForm workload_form_from_name(const std::string& name);  // ModelError on unknown

}  // namespace rtlb
