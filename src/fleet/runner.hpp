// The differential-testing fleet runner.
//
// run_fleet() streams every instance of a scenario grid through a
// configurable set of DIFFERENTIAL ORACLES and folds the outcomes into
// FleetAggregates without ever holding more than one chunk of outcome PODs
// in memory:
//
//   baseline      serial analyze() (1 thread, lint kReport, certificate
//                 emitted) -- the reference every oracle compares against
//   parallel      multi-threaded analyze() must reproduce the baseline
//                 report + certificate BYTE-IDENTICALLY (engine options are
//                 normalized out of the report before comparison)
//   session       a warm AnalysisSession driven through a mutate/revert
//                 delta cycle must land back on the baseline bytes
//   certificate   the emitted certificate must survive JSON serialize ->
//                 parse byte-identically AND be re-judged valid by the
//                 independent checker (src/verify/checker.hpp)
//   lint          the standalone linter must agree with the in-pipeline
//                 gate's findings, and an instance with error findings must
//                 actually be refused at LintLevel::kErrors
//
// Any disagreement, checker failure, or unexpected exception becomes a
// DivergenceRecord carrying the full reproducer coordinates; when a repro
// directory is configured the runner additionally delta-minimizes the
// instance (greedy task removal while the failing oracle still fails) and
// writes the shrunken .rtlb next to the record.
//
// Scale-out happens on two levels. Within a shard, instances are evaluated
// by the existing ThreadPool with the repo's standard determinism
// discipline: workers write into per-index slots, the fold walks slots in
// index order. Across processes, --shards S / --shard k partitions the
// global index space by residue (instance g belongs to shard g % S); shard
// aggregates merge commutatively, so the merged report is byte-identical
// to a single-process run. Checkpointing writes the aggregates plus cursor
// atomically after every chunk; a killed run resumes from the last chunk
// boundary and produces byte-identical final aggregates.
#pragma once

#include <cstdint>
#include <string>

#include "src/fleet/aggregate.hpp"
#include "src/fleet/scenario.hpp"

namespace rtlb {

struct FleetOracles {
  bool parallel = true;
  bool session = true;
  bool certificate = true;
  bool lint = true;
  /// Worker count of the parallel-oracle engine (the point is a different
  /// decomposition, not speed; 4 exercises multi-chunk merges even on a
  /// single hardware thread).
  int parallel_threads = 4;
};

inline constexpr std::uint64_t kNoCorruption = ~std::uint64_t{0};

struct FleetOptions {
  FleetOracles oracles;

  /// Workers inside this shard (ThreadPool semantics: <= 0 means one per
  /// hardware thread).
  int threads = 1;

  /// Process-level sharding: this process evaluates global indices g with
  /// g % shards == shard.
  int shards = 1;
  int shard = 0;

  /// Checkpoint file; empty disables checkpointing. An existing, matching
  /// checkpoint is resumed; a checkpoint for a different spec/sharding is
  /// refused (ModelError) rather than silently restarted.
  std::string checkpoint_path;
  /// Instances folded between checkpoint writes (also the slot-buffer and
  /// progress granularity).
  std::size_t checkpoint_every = 512;

  /// Stop (after checkpointing) once this many instances were processed in
  /// THIS run; 0 = run to completion. This is the test hook standing in for
  /// kill -9: the state left behind is exactly a killed run's, since
  /// checkpoints are only written at chunk boundaries either way.
  std::uint64_t stop_after = 0;

  /// Directory for minimized divergence reproducers; empty disables
  /// minimization. At most max_reproducers files are written per run.
  std::string repro_dir;
  std::size_t max_reproducers = 16;

  /// Fault-injection hook for the oracle tests: corrupt the parallel
  /// engine's result for exactly this global instance index (bumps the
  /// first resource bound by one). The fleet must flag exactly this
  /// instance; kNoCorruption disables the hook.
  std::uint64_t corrupt_instance = kNoCorruption;

  /// Serve the baseline analysis of every instance from a pool of warm
  /// AnalysisSessions (replace_application keeps the content-keyed block
  /// cache across instances). Results are bit-identical by the session
  /// contract -- the fleet asserts aggregate equality in tests -- so this
  /// is purely a throughput mode (BENCH_fleet.json records both).
  bool warm_sessions = false;

  /// Print a progress line to stderr after every chunk.
  bool progress = false;
};

struct FleetRunResult {
  FleetAggregates aggregates;
  /// False when stop_after cut the run short (aggregates cover only the
  /// instances processed so far; the checkpoint carries the cursor).
  bool complete = true;
  std::uint64_t processed_this_run = 0;
  bool resumed = false;
};

FleetRunResult run_fleet(const ScenarioSpec& spec, const FleetOptions& options);

/// The shard-exchange/report envelope around FleetAggregates: adds the spec
/// (verbatim), its fingerprint, and the shard coordinates, so merge can
/// refuse mismatched shards. `complete` mirrors FleetRunResult::complete.
Json fleet_report_json(const ScenarioSpec& spec, const FleetAggregates& aggregates,
                       int shards, int shard, bool complete);

/// Merge shard reports (each produced by fleet_report_json) into one
/// combined report; ModelError on fingerprint or shard-layout mismatches.
Json merge_fleet_reports(const std::vector<Json>& shard_reports);

}  // namespace rtlb
