#include "src/fleet/aggregate.hpp"

#include <algorithm>

namespace rtlb {

namespace {

std::uint64_t u64_field(const Json& obj, const char* key) {
  const Json* v = obj.find(key);
  if (v == nullptr || !v->is_int()) {
    throw ModelError(std::string("fleet aggregates: missing integer '") + key + "'");
  }
  return static_cast<std::uint64_t>(v->as_int());
}

std::int64_t i64_field(const Json& obj, const char* key) {
  const Json* v = obj.find(key);
  if (v == nullptr || !v->is_int()) {
    throw ModelError(std::string("fleet aggregates: missing integer '") + key + "'");
  }
  return v->as_int();
}

std::string string_field(const Json& obj, const char* key) {
  const Json* v = obj.find(key);
  if (v == nullptr || !v->is_string()) {
    throw ModelError(std::string("fleet aggregates: missing string '") + key + "'");
  }
  return v->as_string();
}

}  // namespace

Histogram::Histogram(std::vector<std::int64_t> upper_edges)
    : edges(std::move(upper_edges)), counts(edges.size() + 1, 0) {
  RTLB_CHECK(std::is_sorted(edges.begin(), edges.end()), "histogram edges must ascend");
}

void Histogram::add(std::int64_t per_mille) {
  std::size_t i = 0;
  while (i < edges.size() && per_mille >= edges[i]) ++i;
  ++counts[i];
}

void Histogram::merge(const Histogram& other) {
  RTLB_CHECK(edges == other.edges, "histogram merge: bucket layouts differ");
  for (std::size_t i = 0; i < counts.size(); ++i) counts[i] += other.counts[i];
}

std::uint64_t Histogram::total() const {
  std::uint64_t t = 0;
  for (std::uint64_t c : counts) t += c;
  return t;
}

Json Histogram::to_json() const {
  Json e = Json::array();
  for (std::int64_t x : edges) e.push(x);
  Json c = Json::array();
  for (std::uint64_t x : counts) c.push(static_cast<std::int64_t>(x));
  Json doc = Json::object();
  doc.set("edges_per_mille", std::move(e)).set("counts", std::move(c));
  return doc;
}

Histogram Histogram::from_json(const Json& doc) {
  const Json* e = doc.find("edges_per_mille");
  const Json* c = doc.find("counts");
  if (e == nullptr || !e->is_array() || c == nullptr || !c->is_array() ||
      c->size() != e->size() + 1) {
    throw ModelError("fleet aggregates: malformed histogram");
  }
  std::vector<std::int64_t> edges;
  for (std::size_t i = 0; i < e->size(); ++i) edges.push_back(e->at(i).as_int());
  Histogram h(std::move(edges));
  for (std::size_t i = 0; i < c->size(); ++i) {
    h.counts[i] = static_cast<std::uint64_t>(c->at(i).as_int());
  }
  return h;
}

Histogram make_tightness_histogram() {
  // Upper edges in per-mille of LB_paper / LB_work: exactly-1.0x (the paper
  // bound adds nothing over the single-interval work bound), then
  // geometric-ish steps to the >10x overflow bucket.
  return Histogram({1001, 1100, 1250, 1500, 2000, 3000, 5000, 10000});
}

Json DivergenceRecord::to_json() const {
  Json doc = Json::object();
  doc.set("global_index", static_cast<std::int64_t>(global_index))
      .set("cell_index", static_cast<std::int64_t>(cell_index))
      .set("instance_index", static_cast<std::int64_t>(instance_index))
      .set("seed", static_cast<std::int64_t>(seed))
      .set("cell", cell)
      .set("oracle", oracle)
      .set("detail", detail)
      .set("reproducer", reproducer);
  return doc;
}

DivergenceRecord DivergenceRecord::from_json(const Json& doc) {
  DivergenceRecord r;
  r.global_index = u64_field(doc, "global_index");
  r.cell_index = u64_field(doc, "cell_index");
  r.instance_index = u64_field(doc, "instance_index");
  r.seed = u64_field(doc, "seed");
  r.cell = string_field(doc, "cell");
  r.oracle = string_field(doc, "oracle");
  r.detail = string_field(doc, "detail");
  r.reproducer = string_field(doc, "reproducer");
  return r;
}

void CellAggregate::merge(const CellAggregate& other) {
  RTLB_CHECK(label == other.label, "cell merge: labels differ");
  instances += other.instances;
  lint_errors += other.lint_errors;
  lint_warnings += other.lint_warnings;
  lint_notes += other.lint_notes;
  lint_clean_instances += other.lint_clean_instances;
  infeasible_instances += other.infeasible_instances;
  resources_measured += other.resources_measured;
  tightness_per_mille_sum += other.tightness_per_mille_sum;
  bound_sum += other.bound_sum;
  divergences += other.divergences;
  check_failures += other.check_failures;
  tightness.merge(other.tightness);
}

Json CellAggregate::to_json() const {
  Json doc = Json::object();
  doc.set("cell", label)
      .set("instances", static_cast<std::int64_t>(instances))
      .set("lint_errors", static_cast<std::int64_t>(lint_errors))
      .set("lint_warnings", static_cast<std::int64_t>(lint_warnings))
      .set("lint_notes", static_cast<std::int64_t>(lint_notes))
      .set("lint_clean_instances", static_cast<std::int64_t>(lint_clean_instances))
      .set("infeasible_instances", static_cast<std::int64_t>(infeasible_instances))
      .set("resources_measured", static_cast<std::int64_t>(resources_measured))
      .set("tightness_per_mille_sum", tightness_per_mille_sum)
      .set("bound_sum", bound_sum)
      .set("divergences", static_cast<std::int64_t>(divergences))
      .set("check_failures", static_cast<std::int64_t>(check_failures))
      .set("tightness", tightness.to_json());
  // Derived, for readers only (never parsed back): mean tightness ratio.
  if (resources_measured > 0) {
    doc.set("mean_tightness",
            static_cast<double>(tightness_per_mille_sum) /
                (1000.0 * static_cast<double>(resources_measured)));
  }
  return doc;
}

CellAggregate CellAggregate::from_json(const Json& doc) {
  CellAggregate c;
  c.label = string_field(doc, "cell");
  c.instances = u64_field(doc, "instances");
  c.lint_errors = u64_field(doc, "lint_errors");
  c.lint_warnings = u64_field(doc, "lint_warnings");
  c.lint_notes = u64_field(doc, "lint_notes");
  c.lint_clean_instances = u64_field(doc, "lint_clean_instances");
  c.infeasible_instances = u64_field(doc, "infeasible_instances");
  c.resources_measured = u64_field(doc, "resources_measured");
  c.tightness_per_mille_sum = i64_field(doc, "tightness_per_mille_sum");
  c.bound_sum = i64_field(doc, "bound_sum");
  c.divergences = u64_field(doc, "divergences");
  c.check_failures = u64_field(doc, "check_failures");
  const Json* h = doc.find("tightness");
  if (h == nullptr) throw ModelError("fleet aggregates: cell missing 'tightness'");
  c.tightness = Histogram::from_json(*h);
  return c;
}

FleetAggregates FleetAggregates::for_spec(const ScenarioSpec& spec) {
  FleetAggregates agg;
  agg.cells.reserve(spec.num_cells());
  for (const ScenarioCell& cell : spec.cells()) {
    CellAggregate c;
    c.label = cell.label();
    agg.cells.push_back(std::move(c));
  }
  return agg;
}

void FleetAggregates::merge(const FleetAggregates& other) {
  RTLB_CHECK(cells.size() == other.cells.size(), "fleet merge: cell counts differ");
  instances += other.instances;
  analyses += other.analyses;
  for (std::size_t i = 0; i < cells.size(); ++i) cells[i].merge(other.cells[i]);
  divergences.insert(divergences.end(), other.divergences.begin(), other.divergences.end());
}

Json FleetAggregates::to_json() const {
  Json cells_j = Json::array();
  for (const CellAggregate& c : cells) cells_j.push(c.to_json());

  std::vector<DivergenceRecord> sorted = divergences;
  std::sort(sorted.begin(), sorted.end(),
            [](const DivergenceRecord& a, const DivergenceRecord& b) {
              return a.global_index < b.global_index;
            });
  Json div_j = Json::array();
  for (const DivergenceRecord& r : sorted) div_j.push(r.to_json());

  Json doc = Json::object();
  doc.set("instances", static_cast<std::int64_t>(instances))
      .set("analyses", static_cast<std::int64_t>(analyses))
      .set("divergence_count", static_cast<std::int64_t>(sorted.size()))
      .set("cells", std::move(cells_j))
      .set("divergences", std::move(div_j));
  return doc;
}

FleetAggregates FleetAggregates::from_json(const Json& doc) {
  FleetAggregates agg;
  agg.instances = u64_field(doc, "instances");
  agg.analyses = u64_field(doc, "analyses");
  const Json* cells_j = doc.find("cells");
  if (cells_j == nullptr || !cells_j->is_array()) {
    throw ModelError("fleet aggregates: missing 'cells'");
  }
  for (std::size_t i = 0; i < cells_j->size(); ++i) {
    agg.cells.push_back(CellAggregate::from_json(cells_j->at(i)));
  }
  const Json* div_j = doc.find("divergences");
  if (div_j == nullptr || !div_j->is_array()) {
    throw ModelError("fleet aggregates: missing 'divergences'");
  }
  for (std::size_t i = 0; i < div_j->size(); ++i) {
    agg.divergences.push_back(DivergenceRecord::from_json(div_j->at(i)));
  }
  return agg;
}

}  // namespace rtlb
