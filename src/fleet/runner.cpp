#include "src/fleet/runner.hpp"

#include <algorithm>
#include <cstdio>
#include <memory>
#include <mutex>
#include <vector>

#include "src/baselines/trivial_bounds.hpp"
#include "src/common/checkpoint.hpp"
#include "src/common/thread_pool.hpp"
#include "src/core/report.hpp"
#include "src/core/session.hpp"
#include "src/model/io.hpp"
#include "src/verify/checker.hpp"
#include "src/workload/taskset_gen.hpp"

namespace rtlb {

namespace {

constexpr int kCheckpointVersion = 1;

/// Baseline analysis configuration: the serial reference every oracle is
/// differenced against. One definition so the minimizer replays exactly
/// what the fleet ran.
AnalysisOptions baseline_options(SystemModel model) {
  AnalysisOptions base;
  base.model = model;
  base.lower_bound.num_threads = 1;
  base.lint_level = LintLevel::kReport;
  base.emit_certificates = true;
  return base;
}

/// "byte 217: ...expected... != ...actual..." -- enough context to triage a
/// report divergence without shipping both full documents.
std::string first_diff(const std::string& expected, const std::string& actual) {
  std::size_t i = 0;
  const std::size_t n = std::min(expected.size(), actual.size());
  while (i < n && expected[i] == actual[i]) ++i;
  if (i == n && expected.size() == actual.size()) return "documents equal";
  const std::size_t from = i > 30 ? i - 30 : 0;
  auto window = [&](const std::string& s) {
    return s.substr(from, std::min<std::size_t>(60, s.size() - std::min(from, s.size())));
  };
  return "byte " + std::to_string(i) + ": expected ..." + window(expected) +
         "... got ..." + window(actual) + "...";
}

/// Pool of warm AnalysisSessions for FleetOptions::warm_sessions, one
/// freelist per system model (a session's options are fixed at
/// construction). Workers check a session out, replace its application, and
/// return it -- the content-keyed BlockScanCache survives across
/// instances, which is the entire point of the mode.
class SessionPool {
 public:
  AnalysisResult analyze(const Application& app, SystemModel model,
                         const DedicatedPlatform* platform) {
    std::unique_ptr<AnalysisSession> session = take(model);
    if (!session) {
      session = std::make_unique<AnalysisSession>(app, baseline_options(model), platform);
    } else {
      session->replace_application(app);
      if (model == SystemModel::Dedicated) session->set_platform(platform);
    }
    AnalysisResult result = session->analyze();  // copy; session is reused
    give_back(model, std::move(session));
    return result;
  }

 private:
  std::unique_ptr<AnalysisSession> take(SystemModel model) {
    std::lock_guard<std::mutex> lock(mutex_);
    auto& pool = model == SystemModel::Shared ? shared_ : dedicated_;
    if (pool.empty()) return nullptr;
    std::unique_ptr<AnalysisSession> s = std::move(pool.back());
    pool.pop_back();
    return s;
  }
  void give_back(SystemModel model, std::unique_ptr<AnalysisSession> s) {
    std::lock_guard<std::mutex> lock(mutex_);
    (model == SystemModel::Shared ? shared_ : dedicated_).push_back(std::move(s));
  }

  std::mutex mutex_;
  std::vector<std::unique_ptr<AnalysisSession>> shared_;
  std::vector<std::unique_ptr<AnalysisSession>> dedicated_;
};

/// Per-instance outcome POD: exact counter deltas plus any divergence
/// records, written into its own slot by the worker and folded in index
/// order by the (serial) chunk fold -- the repo's standard determinism
/// discipline.
struct Outcome {
  std::size_t cell_index = 0;
  std::uint64_t analyses = 0;
  std::uint64_t lint_errors = 0, lint_warnings = 0, lint_notes = 0;
  bool lint_clean = false;
  bool infeasible = false;
  std::vector<std::int64_t> tightness_pm;
  std::int64_t bound_sum = 0;
  std::uint64_t check_failures = 0;
  std::vector<DivergenceRecord> divergences;
};

using OracleFailure = std::pair<std::string, std::string>;  // (oracle, detail)

/// Run the configured oracles against the baseline result. Returns every
/// disagreement; `analyses` and `check_failures` accumulate bookkeeping.
std::vector<OracleFailure> run_oracles(const Application& app,
                                       const DedicatedPlatform* platform,
                                       SystemModel model, const FleetOracles& oracles,
                                       bool corrupt_parallel, const AnalysisResult& ref,
                                       const std::string& ref_report,
                                       const std::string& ref_cert,
                                       std::uint64_t* analyses,
                                       std::uint64_t* check_failures) {
  std::vector<OracleFailure> failures;
  const AnalysisOptions base = baseline_options(model);

  if (oracles.parallel) {
    AnalysisOptions par = base;
    par.lower_bound.num_threads = oracles.parallel_threads;
    AnalysisResult r = analyze(app, par, platform);
    ++*analyses;
    if (corrupt_parallel && !r.bounds.empty()) {
      r.bounds.front().bound += 1;  // fault injection: see FleetOptions
      r.rebuild_bound_index();
    }
    // The engine configuration is recorded on the result (and hence the
    // report) by design; normalize it away so the comparison covers the
    // VALUES only.
    r.lb_options = ref.lb_options;
    const std::string rep = report_json(app, r).dump();
    if (rep != ref_report) {
      failures.emplace_back("parallel",
                            std::to_string(oracles.parallel_threads) +
                                "-thread engine diverged from serial: " +
                                first_diff(ref_report, rep));
    }
  }

  if (oracles.session) {
    AnalysisSession session(app, base, platform);
    session.analyze();
    ++*analyses;
    // Drive one mutate/revert delta cycle so the final query is served from
    // the warm invalidation path, not the cold first compute. The perturbed
    // intermediate query may legitimately refuse (comp no longer fits the
    // window); only the reverted query must reproduce the baseline.
    const Time c0 = app.task(0).comp;
    session.set_comp(0, c0 > 1 ? c0 - 1 : c0 + 1);
    try {
      session.analyze();
      ++*analyses;
    } catch (const ModelError&) {
    }
    session.set_comp(0, c0);
    const AnalysisResult& warm = session.analyze();
    ++*analyses;
    const std::string rep = report_json(app, warm).dump();
    if (rep != ref_report) {
      failures.emplace_back("session", "warm-session result diverged from cold analyze: " +
                                           first_diff(ref_report, rep));
    }
  }

  if (oracles.certificate) {
    try {
      const Certificate parsed = parse_certificate_text(ref_cert);
      const std::string round = certificate_json(parsed).dump();
      if (round != ref_cert) {
        failures.emplace_back("cert-roundtrip",
                              "certificate JSON round-trip not byte-identical: " +
                                  first_diff(ref_cert, round));
      }
      const CheckReport report = check_certificate(parsed, app, platform);
      if (!report.valid) {
        ++*check_failures;
        std::string summary = report.summary();
        if (summary.size() > 400) summary.resize(400);
        failures.emplace_back("certificate", "independent checker rejected: " + summary);
      }
    } catch (const std::exception& e) {
      ++*check_failures;
      failures.emplace_back("certificate", std::string("emit->check round-trip threw: ") + e.what());
    }
  }

  if (oracles.lint) {
    const LintResult direct = lint(app, platform);
    RTLB_CHECK(ref.lint.has_value(), "baseline ran at kReport; lint must be recorded");
    if (lint_json(direct).dump() != lint_json(*ref.lint).dump()) {
      failures.emplace_back("lint", "standalone linter disagrees with the pipeline gate");
    }
    if (direct.has_errors()) {
      AnalysisOptions strict = base;
      strict.lint_level = LintLevel::kErrors;
      strict.emit_certificates = false;
      bool refused = false;
      try {
        analyze(app, strict, platform);
      } catch (const LintGateError&) {
        refused = true;
      }
      ++*analyses;
      if (!refused) {
        failures.emplace_back("lint",
                              "kErrors gate accepted an instance with error findings");
      }
    }
  }

  return failures;
}

Outcome evaluate_instance(const ScenarioSpec& spec, const ScenarioCell& cell,
                          std::size_t k, std::uint64_t global_index,
                          const FleetOptions& opts, SessionPool* sessions) {
  Outcome out;
  out.cell_index = cell.index;
  const std::uint64_t seed = spec.instance_seed(cell.index, k);
  auto record = [&](std::string oracle, std::string detail) {
    DivergenceRecord r;
    r.global_index = global_index;
    r.cell_index = cell.index;
    r.instance_index = k;
    r.seed = seed;
    r.cell = cell.label();
    r.oracle = std::move(oracle);
    r.detail = std::move(detail);
    out.divergences.push_back(std::move(r));
  };

  try {
    // Recurrent cells generate templates and lower them; the oracles then
    // run over the lowered application exactly like a flat cell's.
    const WorkloadParams params = spec.instance_params(cell, k);
    const ProblemInstance inst =
        cell.workload == WorkloadForm::Flat
            ? generate_workload(params)
            : generate_recurrent_instance(params, cell.workload == WorkloadForm::Periodic
                                                      ? ReleaseKind::kPeriodic
                                                      : ReleaseKind::kSporadic);
    const DedicatedPlatform* platform =
        cell.model == SystemModel::Dedicated ? &inst.platform : nullptr;

    AnalysisResult ref;
    if (opts.warm_sessions) {
      ref = sessions->analyze(*inst.app, cell.model, platform);
    } else {
      ref = analyze(*inst.app, baseline_options(cell.model), platform);
    }
    ++out.analyses;
    const std::string ref_report = report_json(*inst.app, ref).dump();
    RTLB_CHECK(ref.certificate.has_value(), "baseline emits certificates");
    const std::string ref_cert = certificate_json(*ref.certificate).dump();

    // Streaming statistics from the baseline.
    RTLB_CHECK(ref.lint.has_value(), "baseline runs the lint gate at kReport");
    out.lint_errors = static_cast<std::uint64_t>(ref.lint->errors);
    out.lint_warnings = static_cast<std::uint64_t>(ref.lint->warnings);
    out.lint_notes = static_cast<std::uint64_t>(ref.lint->notes);
    out.lint_clean = ref.lint->clean();
    out.infeasible = ref.infeasible(*inst.app);
    const std::vector<std::int64_t> work = all_work_bounds(*inst.app, ref.windows);
    RTLB_CHECK(work.size() == ref.bounds.size(), "work bounds align with resource_set");
    for (std::size_t i = 0; i < work.size(); ++i) {
      if (work[i] <= 0) continue;
      out.tightness_pm.push_back(ref.bounds[i].bound * 1000 / work[i]);
      out.bound_sum += ref.bounds[i].bound;
    }

    const bool corrupt = global_index == opts.corrupt_instance;
    for (OracleFailure& f :
         run_oracles(*inst.app, platform, cell.model, opts.oracles, corrupt, ref,
                     ref_report, ref_cert, &out.analyses, &out.check_failures)) {
      record(std::move(f.first), std::move(f.second));
    }
  } catch (const std::exception& e) {
    record("exception", e.what());
  }
  return out;
}

/// Rebuild `app` without task `victim` (edges incident to it dropped, all
/// other attributes preserved). Shares the original catalog.
Application without_task(const Application& app, TaskId victim) {
  Application out(app.catalog());
  std::vector<TaskId> remap(app.num_tasks(), kInvalidTask);
  for (TaskId i = 0; i < app.num_tasks(); ++i) {
    if (i == victim) continue;
    remap[i] = out.add_task(app.task(i));
  }
  for (const auto& [edge, msg] : app.messages()) {
    const TaskId from = remap[edge.first], to = remap[edge.second];
    if (from != kInvalidTask && to != kInvalidTask) out.add_edge(from, to, msg);
  }
  return out;
}

/// True when the named oracle still fails on `app` -- the minimizer's test
/// function. Replays the baseline and just that oracle.
bool oracle_still_fails(const Application& app, const DedicatedPlatform* platform,
                        SystemModel model, const FleetOracles& all,
                        const std::string& oracle, bool corrupt) {
  FleetOracles only;
  only.parallel = oracle == "parallel";
  only.session = oracle == "session";
  only.certificate = oracle == "certificate" || oracle == "cert-roundtrip";
  only.lint = oracle == "lint";
  only.parallel_threads = all.parallel_threads;
  try {
    const AnalysisResult ref = analyze(app, baseline_options(model), platform);
    const std::string ref_report = report_json(app, ref).dump();
    const std::string ref_cert = certificate_json(*ref.certificate).dump();
    std::uint64_t analyses = 0, check_failures = 0;
    const auto failures = run_oracles(app, platform, model, only, corrupt, ref,
                                      ref_report, ref_cert, &analyses, &check_failures);
    for (const OracleFailure& f : failures) {
      if (f.first == oracle) return true;
    }
    return false;
  } catch (const std::exception&) {
    // The baseline itself failing still reproduces an "exception" record.
    return oracle == "exception";
  }
}

/// Greedy delta-minimization: repeatedly drop any task whose removal keeps
/// the oracle failing, to a fixpoint. Returns the shrunken application
/// (possibly the original).
Application minimize_failure(const Application& app, const DedicatedPlatform* platform,
                             SystemModel model, const FleetOracles& oracles,
                             const std::string& oracle, bool corrupt) {
  Application current = app;
  bool improved = true;
  while (improved && current.num_tasks() > 1) {
    improved = false;
    // Descending victim order keeps earlier candidates' ids stable across
    // one sweep and biases toward dropping sink-side tasks first.
    for (TaskId victim = static_cast<TaskId>(current.num_tasks()); victim-- > 0;) {
      if (current.num_tasks() <= 1) break;
      Application candidate = without_task(current, victim);
      try {
        candidate.validate();
        if (oracle_still_fails(candidate, platform, model, oracles, oracle, corrupt)) {
          current = std::move(candidate);
          improved = true;
        }
      } catch (const std::exception&) {
        // Removal produced an invalid or differently-failing instance; keep
        // the task.
      }
    }
  }
  return current;
}

struct Checkpoint {
  std::uint64_t owned_done = 0;
  FleetAggregates aggregates;
};

std::string checkpoint_text(const ScenarioSpec& spec, const FleetOptions& opts,
                            std::uint64_t owned_done, const FleetAggregates& agg) {
  Json doc = Json::object();
  doc.set("fleet_checkpoint", kCheckpointVersion)
      .set("fingerprint", static_cast<std::int64_t>(spec.fingerprint()))
      .set("shards", opts.shards)
      .set("shard", opts.shard)
      .set("owned_done", static_cast<std::int64_t>(owned_done))
      .set("aggregates", agg.to_json());
  return doc.dump(2) + "\n";
}

Checkpoint load_checkpoint(const std::string& text, const ScenarioSpec& spec,
                           const FleetOptions& opts) {
  const Json doc = Json::parse(text);
  const Json* version = doc.find("fleet_checkpoint");
  if (version == nullptr || !version->is_int() || version->as_int() != kCheckpointVersion) {
    throw ModelError("fleet checkpoint: unknown version");
  }
  const Json* fp = doc.find("fingerprint");
  if (fp == nullptr || !fp->is_int() ||
      static_cast<std::uint64_t>(fp->as_int()) != spec.fingerprint()) {
    throw ModelError("fleet checkpoint: written for a different scenario spec");
  }
  const Json* shards = doc.find("shards");
  const Json* shard = doc.find("shard");
  if (shards == nullptr || shard == nullptr || shards->as_int() != opts.shards ||
      shard->as_int() != opts.shard) {
    throw ModelError("fleet checkpoint: written for a different shard layout");
  }
  const Json* done = doc.find("owned_done");
  const Json* agg = doc.find("aggregates");
  if (done == nullptr || !done->is_int() || agg == nullptr) {
    throw ModelError("fleet checkpoint: malformed");
  }
  Checkpoint cp;
  cp.owned_done = static_cast<std::uint64_t>(done->as_int());
  cp.aggregates = FleetAggregates::from_json(*agg);
  return cp;
}

std::uint64_t count_written_reproducers(const FleetAggregates& agg) {
  std::uint64_t n = 0;
  for (const DivergenceRecord& r : agg.divergences) n += !r.reproducer.empty();
  return n;
}

}  // namespace

FleetRunResult run_fleet(const ScenarioSpec& spec, const FleetOptions& opts) {
  RTLB_CHECK(opts.shards >= 1, "fleet: shards must be >= 1");
  RTLB_CHECK(opts.shard >= 0 && opts.shard < opts.shards, "fleet: shard out of range");
  RTLB_CHECK(opts.checkpoint_every >= 1, "fleet: checkpoint_every must be >= 1");

  const std::vector<ScenarioCell> cells = spec.cells();
  const std::uint64_t total = spec.total_instances();
  const std::uint64_t shards = static_cast<std::uint64_t>(opts.shards);
  const std::uint64_t shard = static_cast<std::uint64_t>(opts.shard);
  // Owned indices are g = shard + t * shards for t in [0, owned_total).
  const std::uint64_t owned_total = total / shards + (shard < total % shards ? 1 : 0);

  FleetRunResult run;
  run.aggregates = FleetAggregates::for_spec(spec);
  std::uint64_t owned_done = 0;

  if (!opts.checkpoint_path.empty()) {
    if (std::optional<std::string> text = read_file_text(opts.checkpoint_path)) {
      Checkpoint cp = load_checkpoint(*text, spec, opts);
      owned_done = cp.owned_done;
      run.aggregates = std::move(cp.aggregates);
      run.resumed = true;
    }
  }

  ThreadPool pool(ThreadPool::resolve_threads(opts.threads));
  SessionPool sessions;
  std::uint64_t reproducers_written = count_written_reproducers(run.aggregates);
  std::vector<Outcome> slots;

  while (owned_done < owned_total) {
    std::uint64_t chunk = std::min<std::uint64_t>(opts.checkpoint_every, owned_total - owned_done);
    if (opts.stop_after > 0) {
      if (run.processed_this_run >= opts.stop_after) break;
      chunk = std::min(chunk, opts.stop_after - run.processed_this_run);
    }

    slots.assign(static_cast<std::size_t>(chunk), Outcome{});
    pool.parallel_for(static_cast<std::size_t>(chunk), [&](std::size_t j) {
      const std::uint64_t g = shard + (owned_done + j) * shards;
      const std::size_t cell_index = static_cast<std::size_t>(g / spec.instances_per_cell);
      const std::size_t k = static_cast<std::size_t>(g % spec.instances_per_cell);
      slots[j] = evaluate_instance(spec, cells[cell_index], k, g, opts, &sessions);
    });

    // Serial fold in index order -- aggregates are commutative counters, but
    // divergence minimization (budgeted) must pick victims deterministically.
    for (Outcome& out : slots) {
      CellAggregate& cell = run.aggregates.cells[out.cell_index];
      ++run.aggregates.instances;
      run.aggregates.analyses += out.analyses;
      ++cell.instances;
      cell.lint_errors += out.lint_errors;
      cell.lint_warnings += out.lint_warnings;
      cell.lint_notes += out.lint_notes;
      cell.lint_clean_instances += out.lint_clean ? 1 : 0;
      cell.infeasible_instances += out.infeasible ? 1 : 0;
      for (std::int64_t pm : out.tightness_pm) {
        ++cell.resources_measured;
        cell.tightness_per_mille_sum += pm;
        cell.tightness.add(pm);
      }
      cell.bound_sum += out.bound_sum;
      cell.check_failures += out.check_failures;
      for (DivergenceRecord& rec : out.divergences) {
        ++cell.divergences;
        if (!opts.repro_dir.empty() && reproducers_written < opts.max_reproducers) {
          try {
            const ScenarioCell& sc = cells[rec.cell_index];
            const ProblemInstance inst =
                generate_workload(spec.instance_params(sc, rec.instance_index));
            const bool corrupt = rec.global_index == opts.corrupt_instance;
            const DedicatedPlatform* platform =
                sc.model == SystemModel::Dedicated ? &inst.platform : nullptr;
            const Application minimized = minimize_failure(
                *inst.app, platform, sc.model, opts.oracles, rec.oracle, corrupt);
            const std::string path = opts.repro_dir + "/" + spec.name + "_g" +
                                     std::to_string(rec.global_index) + "_" + rec.oracle +
                                     ".rtlb";
            std::string text = "# rtlb_fleet reproducer (minimized from " +
                               std::to_string(inst.app->num_tasks()) + " to " +
                               std::to_string(minimized.num_tasks()) + " tasks)\n# scenario " +
                               spec.name + " cell " + rec.cell + " instance " +
                               std::to_string(rec.instance_index) + " seed " +
                               std::to_string(rec.seed) + "\n# oracle " + rec.oracle + ": " +
                               rec.detail + "\n" +
                               serialize_instance(minimized, inst.platform);
            if (atomic_write_file(path, text)) {
              rec.reproducer = path;
              ++reproducers_written;
            }
          } catch (const std::exception&) {
            // Minimization is best-effort; the record without a reproducer
            // still carries the full seed coordinates.
          }
        }
        run.aggregates.divergences.push_back(std::move(rec));
      }
    }

    owned_done += chunk;
    run.processed_this_run += chunk;

    if (!opts.checkpoint_path.empty()) {
      const std::string text = checkpoint_text(spec, opts, owned_done, run.aggregates);
      if (!atomic_write_file(opts.checkpoint_path, text)) {
        throw ModelError("fleet: cannot write checkpoint " + opts.checkpoint_path);
      }
    }
    if (opts.progress) {
      std::fprintf(stderr, "rtlb_fleet: shard %d/%d %llu/%llu instances, %zu divergences\n",
                   opts.shard, opts.shards, static_cast<unsigned long long>(owned_done),
                   static_cast<unsigned long long>(owned_total),
                   run.aggregates.divergences.size());
    }
  }

  run.complete = owned_done >= owned_total;
  return run;
}

Json fleet_report_json(const ScenarioSpec& spec, const FleetAggregates& aggregates,
                       int shards, int shard, bool complete) {
  Json doc = Json::object();
  doc.set("fleet", spec.name)
      .set("fingerprint", static_cast<std::int64_t>(spec.fingerprint()))
      .set("shards", shards)
      .set("shard", shard)
      .set("complete", complete)
      .set("total_instances", static_cast<std::int64_t>(spec.total_instances()))
      .set("spec", spec.to_json())
      .set("aggregates", aggregates.to_json());
  return doc;
}

Json merge_fleet_reports(const std::vector<Json>& shard_reports) {
  if (shard_reports.empty()) throw ModelError("fleet merge: no shard reports");
  const Json* spec_doc = shard_reports.front().find("spec");
  if (spec_doc == nullptr) throw ModelError("fleet merge: report missing 'spec'");
  const ScenarioSpec spec = ScenarioSpec::from_json(*spec_doc);
  const std::int64_t fingerprint = static_cast<std::int64_t>(spec.fingerprint());

  std::vector<const Json*> by_shard(shard_reports.size(), nullptr);
  for (const Json& report : shard_reports) {
    const Json* fp = report.find("fingerprint");
    const Json* shards = report.find("shards");
    const Json* shard = report.find("shard");
    const Json* complete = report.find("complete");
    if (fp == nullptr || shards == nullptr || shard == nullptr || complete == nullptr) {
      throw ModelError("fleet merge: malformed shard report");
    }
    if (fp->as_int() != fingerprint) {
      throw ModelError("fleet merge: shard reports disagree on the scenario spec");
    }
    if (shards->as_int() != static_cast<std::int64_t>(shard_reports.size())) {
      throw ModelError("fleet merge: expected " + std::to_string(shard_reports.size()) +
                       " shards, report says " + std::to_string(shards->as_int()));
    }
    if (!complete->as_bool()) {
      throw ModelError("fleet merge: shard " + std::to_string(shard->as_int()) +
                       " is incomplete");
    }
    const std::int64_t s = shard->as_int();
    if (s < 0 || s >= static_cast<std::int64_t>(by_shard.size()) ||
        by_shard[static_cast<std::size_t>(s)] != nullptr) {
      throw ModelError("fleet merge: duplicate or out-of-range shard index " +
                       std::to_string(s));
    }
    by_shard[static_cast<std::size_t>(s)] = &report;
  }

  FleetAggregates merged = FleetAggregates::for_spec(spec);
  for (const Json* report : by_shard) {
    const Json* agg = report->find("aggregates");
    if (agg == nullptr) throw ModelError("fleet merge: report missing 'aggregates'");
    merged.merge(FleetAggregates::from_json(*agg));
  }
  return fleet_report_json(spec, merged, 1, 0, true);
}

}  // namespace rtlb
