#include "src/verify/checker.hpp"

#include <algorithm>
#include <cmath>
#include <span>

// NOTE: no src/core includes, by design (see checker.hpp). Everything the
// checks need is re-derived here from the paper against src/model only.

namespace rtlb {

std::string CheckReport::summary() const {
  std::string out;
  for (const CheckFailure& f : failures) {
    out += f.stage + "/" + f.rule + " " + f.subject + ": " + f.detail + "\n";
  }
  return out;
}

namespace {

/// Wide intermediate for every derived quantity: certificate values are
/// untrusted int64, so sums/differences are formed in 128 bits and compared
/// there — no overflow, no wraparound-driven false verdicts.
using I128 = __int128;

std::string i128_str(I128 v) {
  if (v == 0) return "0";
  const bool neg = v < 0;
  std::string digits;
  while (v != 0) {
    const int d = static_cast<int>(neg ? -(v % 10) : (v % 10));
    digits += static_cast<char>('0' + d);
    v /= 10;
  }
  if (neg) digits += '-';
  std::reverse(digits.begin(), digits.end());
  return digits;
}

I128 max0(I128 x) { return x > 0 ? x : 0; }

/// ceil(a / b) for a >= 0, b > 0, in 128 bits.
I128 ceil_div_wide(I128 a, I128 b) { return a / b + (a % b != 0 ? 1 : 0); }

class Checker {
 public:
  Checker(const Certificate& cert, const Application& app, const DedicatedPlatform* platform)
      : cert_(cert), app_(app), platform_(platform) {}

  CheckReport run() {
    if (check_meta()) {
      check_windows();
      check_partitions();
      check_bounds();
      check_joint();
      check_shared_cost();
      check_dedicated_cost();
    }
    report_.valid = report_.failures.empty();
    return std::move(report_);
  }

 private:
  void fail(std::string stage, std::string rule, std::string subject, std::string detail) {
    report_.failures.push_back(
        {std::move(stage), std::move(rule), std::move(subject), std::move(detail)});
  }

  std::string task_name(TaskId i) const {
    return "task " + std::to_string(i) +
           (app_.task(i).name.empty() ? "" : " (" + app_.task(i).name + ")");
  }

  std::string res_name(ResourceId r) const {
    return "resource " + std::to_string(r) + " (" + app_.catalog().name(r) + ")";
  }

  // ---- Definitions 1/2, re-derived from the model ------------------------

  bool merge_ok(std::span<const TaskId> tasks) const {
    if (tasks.size() <= 1 && !cert_.dedicated) return true;
    if (tasks.empty()) return true;
    const ResourceId proc = app_.task(tasks[0]).proc;
    for (TaskId t : tasks) {
      if (app_.task(t).proc != proc) return false;
    }
    if (!cert_.dedicated) return true;
    std::vector<ResourceId> required;
    for (TaskId t : tasks) {
      const auto& res = app_.task(t).resources;
      required.insert(required.end(), res.begin(), res.end());
    }
    std::sort(required.begin(), required.end());
    required.erase(std::unique(required.begin(), required.end()), required.end());
    return platform_->some_node_hosts(proc, required);
  }

  // ---- Section 4 folds over the CERTIFICATE windows ----------------------

  /// ect(A): earliest completion of A run sequentially, each task starting
  /// no earlier than its (certified) EST.
  I128 ect(std::span<const TaskId> tasks) const {
    std::vector<TaskId> order(tasks.begin(), tasks.end());
    std::sort(order.begin(), order.end(), [&](TaskId a, TaskId b) {
      if (est_[a] != est_[b]) return est_[a] < est_[b];
      return a < b;
    });
    I128 completion = static_cast<I128>(est_[order[0]]) + app_.task(order[0]).comp;
    for (std::size_t k = 1; k < order.size(); ++k) {
      const I128 start = std::max<I128>(completion, est_[order[k]]);
      completion = start + app_.task(order[k]).comp;
    }
    return completion;
  }

  /// lst(A): latest start of A run sequentially, each completing by its
  /// (certified) LCT.
  I128 lst(std::span<const TaskId> tasks) const {
    std::vector<TaskId> order(tasks.begin(), tasks.end());
    std::sort(order.begin(), order.end(), [&](TaskId a, TaskId b) {
      if (lct_[a] != lct_[b]) return lct_[a] > lct_[b];
      return a < b;
    });
    I128 start = static_cast<I128>(lct_[order[0]]) - app_.task(order[0]).comp;
    for (std::size_t k = 1; k < order.size(); ++k) {
      const I128 completion = std::min<I128>(start, lct_[order[k]]);
      start = completion - app_.task(order[k]).comp;
    }
    return start;
  }

  I128 emr(TaskId j, TaskId i) const {  // earliest message receipt j -> i
    return static_cast<I128>(est_[j]) + app_.task(j).comp + app_.message(j, i);
  }

  I128 lms(TaskId i, TaskId j) const {  // latest message send i -> j
    return static_cast<I128>(lct_[j]) - app_.task(j).comp - app_.message(i, j);
  }

  // ---- Theorems 3/4 over the certificate windows -------------------------

  I128 psi(TaskId i, I128 t1, I128 t2) const {
    const I128 c = app_.task(i).comp;
    const I128 e = est_[i];
    const I128 l = lct_[i];
    if (l - t1 <= 0 || t2 - e <= 0) return 0;  // the mu(.)mu(.) guard
    if (app_.task(i).preemptive) {
      // Equation 6.1.
      return std::min(std::min(c, max0(c - (t1 - e))),
                      std::min(max0(c - (l - t2)), max0(c - (l - t2) - (t1 - e))));
    }
    // Equation 6.2.
    return std::min(std::min(c, max0(c - (t1 - e))),
                    std::min(max0(c - (l - t2)), t2 - t1));
  }

  // ---- stage checks ------------------------------------------------------

  /// Structural fit between certificate and instance. Returns false when the
  /// mismatch is so fundamental that value checks would be meaningless.
  bool check_meta() {
    if (cert_.num_tasks != app_.num_tasks()) {
      fail("meta", "meta.num-tasks", "certificate",
           "claims " + std::to_string(cert_.num_tasks) + " tasks, instance has " +
               std::to_string(app_.num_tasks()));
      return false;
    }
    if (cert_.dedicated && platform_ == nullptr) {
      fail("meta", "meta.platform", "certificate",
           "claims the dedicated model but no platform was supplied");
      return false;
    }
    if (cert_.dedicated_cost && platform_ == nullptr) {
      fail("meta", "meta.platform", "certificate",
           "carries a dedicated cost section but no platform was supplied");
      return false;
    }
    if (cert_.windows.size() != app_.num_tasks()) {
      fail("meta", "meta.windows", "certificate",
           "expected one window fact per task, got " + std::to_string(cert_.windows.size()));
      return false;
    }
    est_.resize(app_.num_tasks());
    lct_.resize(app_.num_tasks());
    for (TaskId i = 0; i < app_.num_tasks(); ++i) {
      const WindowFact& w = cert_.windows[i];
      if (w.task != i) {
        fail("meta", "meta.windows", "windows[" + std::to_string(i) + "]",
             "facts must be sorted by task id");
        return false;
      }
      if (w.est < kTimeMin || w.est > kTimeMax || w.lct < kTimeMin || w.lct > kTimeMax) {
        fail("meta", "meta.range", task_name(i), "window endpoint outside [-kTimeMax, kTimeMax]");
        return false;
      }
      est_[i] = w.est;
      lct_[i] = w.lct;
    }
    return true;
  }

  /// Figure 3 (EST) re-judged for one task: the certified E_i must be the
  /// minimum of Eq. 4.5 over the mergeable PREFIXES of the candidate order,
  /// which (strict-rise argument, see est_lct.cpp) equals what the greedy
  /// committed to. Theorem 1's guarantee rides on exactly this minimum.
  void check_est(TaskId i) {
    const auto& pred = app_.predecessors(i);
    const I128 claimed = est_[i];
    if (pred.empty()) {
      if (claimed != app_.task(i).release) {
        fail("windows", "T1.source", task_name(i),
             "no predecessors: E must equal the release time " +
                 std::to_string(app_.task(i).release));
      }
      if (!cert_.windows[i].merged_pred.empty()) {
        fail("windows", "T1.merge-set", task_name(i),
             "no predecessors: M must be empty");
      }
      return;
    }

    // Candidate order of Figure 3: individually mergeable predecessors by
    // decreasing emr, ties by id.
    std::vector<TaskId> mp;
    I128 e0 = app_.task(i).release;
    for (TaskId j : pred) {
      const TaskId pair[] = {i, j};
      if (merge_ok(pair)) {
        mp.push_back(j);
      } else {
        e0 = std::max(e0, emr(j, i));
      }
    }
    std::sort(mp.begin(), mp.end(), [&](TaskId a, TaskId b) {
      const I128 ea = emr(a, i);
      const I128 eb = emr(b, i);
      if (ea != eb) return ea > eb;
      return a < b;
    });

    // Eq. 4.5 over every mergeable prefix P_k (mergeability is subset-closed
    // for both oracles, so prefixes past the first non-mergeable one are out).
    bool found = false;
    I128 best = 0;
    std::vector<TaskId> prefix{i};  // includes i for the oracle
    for (std::size_t k = 0; k <= mp.size(); ++k) {
      if (k > 0) {
        prefix.push_back(mp[k - 1]);
        if (!merge_ok(prefix)) break;
      }
      I128 value = e0;
      for (std::size_t m = k; m < mp.size(); ++m) value = std::max(value, emr(mp[m], i));
      if (k > 0) value = std::max(value, ect(std::span(prefix).subspan(1)));
      if (!found || value < best) {
        best = value;
        found = true;
      }
    }
    if (claimed != best) {
      fail("windows", "T1.min-prefix", task_name(i),
           "E = " + i128_str(claimed) + " but the minimum of Eq. 4.5 over mergeable merge-set prefixes is " +
               i128_str(best));
    }

    // The recorded M_i must itself be a mergeable predecessor subset whose
    // Eq. 4.5 value attains E_i.
    const std::vector<TaskId>& merged = cert_.windows[i].merged_pred;
    std::vector<TaskId> sorted_pred(pred.begin(), pred.end());
    std::sort(sorted_pred.begin(), sorted_pred.end());
    std::vector<TaskId> sorted_merged(merged.begin(), merged.end());
    std::sort(sorted_merged.begin(), sorted_merged.end());
    if (std::adjacent_find(sorted_merged.begin(), sorted_merged.end()) != sorted_merged.end() ||
        !std::includes(sorted_pred.begin(), sorted_pred.end(), sorted_merged.begin(),
                       sorted_merged.end())) {
      fail("windows", "T1.merge-set", task_name(i),
           "M is not a duplicate-free subset of the predecessors");
      return;
    }
    std::vector<TaskId> with_i{i};
    with_i.insert(with_i.end(), merged.begin(), merged.end());
    if (!merge_ok(with_i)) {
      fail("windows", "T1.merge-set", task_name(i), "M u {i} is not mergeable (Definition 1/2)");
      return;
    }
    I128 attained = e0;
    for (TaskId j : mp) {
      if (!std::binary_search(sorted_merged.begin(), sorted_merged.end(), j)) {
        attained = std::max(attained, emr(j, i));
      }
    }
    if (!merged.empty()) attained = std::max(attained, ect(merged));
    if (attained != claimed) {
      fail("windows", "T1.attained", task_name(i),
           "Eq. 4.5 over the recorded M gives " + i128_str(attained) + ", not E = " +
               i128_str(claimed));
    }
  }

  /// Figure 2 (LCT), the mirror image: maximum of Eq. 4.1 over mergeable
  /// prefixes (Theorem 2).
  void check_lct(TaskId i) {
    const auto& succ = app_.successors(i);
    const I128 claimed = lct_[i];
    if (succ.empty()) {
      if (claimed != app_.task(i).deadline) {
        fail("windows", "T2.sink", task_name(i),
             "no successors: L must equal the deadline " +
                 std::to_string(app_.task(i).deadline));
      }
      if (!cert_.windows[i].merged_succ.empty()) {
        fail("windows", "T2.merge-set", task_name(i),
             "no successors: G must be empty");
      }
      return;
    }

    std::vector<TaskId> ms;
    I128 l0 = app_.task(i).deadline;
    for (TaskId j : succ) {
      const TaskId pair[] = {i, j};
      if (merge_ok(pair)) {
        ms.push_back(j);
      } else {
        l0 = std::min(l0, lms(i, j));
      }
    }
    std::sort(ms.begin(), ms.end(), [&](TaskId a, TaskId b) {
      const I128 la = lms(i, a);
      const I128 lb = lms(i, b);
      if (la != lb) return la < lb;
      return a < b;
    });

    bool found = false;
    I128 best = 0;
    std::vector<TaskId> prefix{i};
    for (std::size_t k = 0; k <= ms.size(); ++k) {
      if (k > 0) {
        prefix.push_back(ms[k - 1]);
        if (!merge_ok(prefix)) break;
      }
      I128 value = l0;
      for (std::size_t m = k; m < ms.size(); ++m) value = std::min(value, lms(i, ms[m]));
      if (k > 0) value = std::min(value, lst(std::span(prefix).subspan(1)));
      if (!found || value > best) {
        best = value;
        found = true;
      }
    }
    if (claimed != best) {
      fail("windows", "T2.min-prefix", task_name(i),
           "L = " + i128_str(claimed) + " but the maximum of Eq. 4.1 over mergeable merge-set prefixes is " +
               i128_str(best));
    }

    const std::vector<TaskId>& merged = cert_.windows[i].merged_succ;
    std::vector<TaskId> sorted_succ(succ.begin(), succ.end());
    std::sort(sorted_succ.begin(), sorted_succ.end());
    std::vector<TaskId> sorted_merged(merged.begin(), merged.end());
    std::sort(sorted_merged.begin(), sorted_merged.end());
    if (std::adjacent_find(sorted_merged.begin(), sorted_merged.end()) != sorted_merged.end() ||
        !std::includes(sorted_succ.begin(), sorted_succ.end(), sorted_merged.begin(),
                       sorted_merged.end())) {
      fail("windows", "T2.merge-set", task_name(i),
           "G is not a duplicate-free subset of the successors");
      return;
    }
    std::vector<TaskId> with_i{i};
    with_i.insert(with_i.end(), merged.begin(), merged.end());
    if (!merge_ok(with_i)) {
      fail("windows", "T2.merge-set", task_name(i), "G u {i} is not mergeable (Definition 1/2)");
      return;
    }
    I128 attained = l0;
    for (TaskId j : ms) {
      if (!std::binary_search(sorted_merged.begin(), sorted_merged.end(), j)) {
        attained = std::min(attained, lms(i, j));
      }
    }
    if (!merged.empty()) attained = std::min(attained, lst(merged));
    if (attained != claimed) {
      fail("windows", "T2.attained", task_name(i),
           "Eq. 4.1 over the recorded G gives " + i128_str(attained) + ", not L = " +
               i128_str(claimed));
    }
  }

  void check_windows() {
    for (TaskId i = 0; i < app_.num_tasks(); ++i) {
      check_est(i);
      check_lct(i);
    }
  }

  void check_partitions() {
    const std::vector<ResourceId> res = app_.resource_set();
    if (cert_.partitions.size() != res.size()) {
      fail("partition", "T5.resources", "certificate",
           "expected one partition per analyzed resource (" + std::to_string(res.size()) +
               "), got " + std::to_string(cert_.partitions.size()));
      return;
    }
    for (std::size_t k = 0; k < res.size(); ++k) {
      const PartitionCert& p = cert_.partitions[k];
      if (p.resource != res[k]) {
        fail("partition", "T5.resources", "partitions[" + std::to_string(k) + "]",
             "resources must appear in RES order; expected " + res_name(res[k]));
        continue;
      }

      // Conditions (i)+(ii) of Section 5: the blocks cover ST_r exactly,
      // each task once.
      std::vector<TaskId> st = app_.tasks_using(p.resource);
      std::vector<TaskId> listed;
      bool empty_block = false;
      for (const std::vector<TaskId>& b : p.blocks) {
        if (b.empty()) empty_block = true;
        listed.insert(listed.end(), b.begin(), b.end());
      }
      if (empty_block) {
        fail("partition", "T5.cover", res_name(p.resource), "partition contains an empty block");
      }
      std::sort(listed.begin(), listed.end());
      if (std::adjacent_find(listed.begin(), listed.end()) != listed.end()) {
        fail("partition", "T5.disjoint", res_name(p.resource),
             "a task appears in more than one block");
        continue;
      }
      if (listed != st) {
        fail("partition", "T5.cover", res_name(p.resource),
             "the blocks do not cover ST_r exactly");
        continue;
      }

      // Condition (iii) / Theorem 5: every block boundary is separated --
      // all earlier tasks complete before any later task may start.
      I128 running_finish = 0;
      bool have_finish = false;
      for (std::size_t b = 0; b + 1 < p.blocks.size(); ++b) {
        for (TaskId t : p.blocks[b]) {
          const I128 l = lct_[t];
          running_finish = have_finish ? std::max(running_finish, l) : l;
          have_finish = true;
        }
        I128 next_start = 0;
        bool have_start = false;
        for (TaskId t : p.blocks[b + 1]) {
          const I128 e = est_[t];
          next_start = have_start ? std::min(next_start, e) : e;
          have_start = true;
        }
        const SeparationFact& s = p.separations[b];
        const std::string subject = res_name(p.resource) + " boundary " + std::to_string(b);
        if (!have_finish || !have_start) continue;  // empty block already failed
        if (s.earlier_finish != running_finish || s.later_start != next_start) {
          fail("partition", "T5.separation-fact", subject,
               "recorded (finish " + std::to_string(s.earlier_finish) + ", start " +
                   std::to_string(s.later_start) + ") but the windows give (finish " +
                   i128_str(running_finish) + ", start " + i128_str(next_start) + ")");
          continue;
        }
        if (running_finish > next_start) {
          fail("partition", "T5.separation", subject,
               "blocks are not separated: an earlier task may still run at " +
                   i128_str(running_finish) + " after a later task may start at " +
                   i128_str(next_start));
        }
      }
    }
  }

  /// One witness interval (Eq. 6.3) against a task universe: every Psi term
  /// re-derived from Theorems 3/4, the sum re-added, the ceiling re-taken.
  /// `universe` is sorted; `stage` is "bound" or "joint".
  void check_witness(const std::string& stage, const std::string& subject,
                     std::int64_t claimed_bound, const IntervalWitness& w,
                     const std::vector<TaskId>& universe) {
    if (w.t1 >= w.t2) {
      fail(stage, "E6.3.interval", subject,
           "witness interval [" + std::to_string(w.t1) + ", " + std::to_string(w.t2) +
               ") is empty");
      return;
    }
    std::vector<TaskId> seen;
    I128 sum = 0;
    bool terms_ok = true;
    for (const PsiTerm& term : w.terms) {
      if (term.task >= app_.num_tasks() ||
          !std::binary_search(universe.begin(), universe.end(), term.task)) {
        fail(stage, "E6.3.term-task", subject,
             "Psi term for task " + std::to_string(term.task) +
                 " which is outside the bound's task set");
        terms_ok = false;
        continue;
      }
      seen.push_back(term.task);
      const I128 expect = psi(term.task, w.t1, w.t2);
      if (term.psi != expect) {
        fail(stage, app_.task(term.task).preemptive ? "T3.psi" : "T4.psi",
             subject + ", " + task_name(term.task),
             "recorded Psi = " + std::to_string(term.psi) + " but Eq. 6." +
                 (app_.task(term.task).preemptive ? "1" : "2") + " gives " + i128_str(expect));
        terms_ok = false;
      }
      sum += term.psi;
    }
    std::sort(seen.begin(), seen.end());
    if (std::adjacent_find(seen.begin(), seen.end()) != seen.end()) {
      fail(stage, "E6.3.term-dup", subject, "a task contributes two Psi terms");
      terms_ok = false;
    }
    if (!terms_ok) return;
    if (sum != w.demand) {
      fail(stage, "E6.3.theta-sum", subject,
           "witness demand " + std::to_string(w.demand) + " but the Psi terms sum to " +
               i128_str(sum));
      return;
    }
    if (w.demand < 0) {
      fail(stage, "E6.3.theta-sum", subject, "witness demand is negative");
      return;
    }
    const I128 width = static_cast<I128>(w.t2) - w.t1;
    const I128 forced = ceil_div_wide(w.demand, width);
    if (forced != claimed_bound) {
      fail(stage, "E6.3.ceil", subject,
           "bound " + std::to_string(claimed_bound) + " but ceil(" +
               std::to_string(w.demand) + " / " + i128_str(width) + ") = " + i128_str(forced));
    }
  }

  void check_bounds() {
    const std::vector<ResourceId> res = app_.resource_set();
    if (cert_.bounds.size() != res.size()) {
      fail("bound", "E6.3.resources", "certificate",
           "expected one bound per analyzed resource (" + std::to_string(res.size()) +
               "), got " + std::to_string(cert_.bounds.size()));
      return;
    }
    for (std::size_t k = 0; k < res.size(); ++k) {
      const BoundCert& b = cert_.bounds[k];
      if (b.resource != res[k]) {
        fail("bound", "E6.3.resources", "bounds[" + std::to_string(k) + "]",
             "resources must appear in RES order; expected " + res_name(res[k]));
        continue;
      }
      if (b.bound < 0) {
        fail("bound", "E6.3.negative", res_name(b.resource), "LB must be non-negative");
        continue;
      }
      if (b.bound == 0) continue;  // claims nothing; no evidence needed
      if (!b.witness) {
        fail("bound", "E6.3.witness-missing", res_name(b.resource),
             "LB = " + std::to_string(b.bound) + " requires a witness interval");
        continue;
      }
      check_witness("bound", res_name(b.resource), b.bound, *b.witness,
                    app_.tasks_using(b.resource));
    }
  }

  void check_joint() {
    if (!cert_.has_joint) return;
    for (std::size_t k = 0; k < cert_.joint.size(); ++k) {
      const JointCert& j = cert_.joint[k];
      const std::string subject =
          "pair (" + std::to_string(j.a) + ", " + std::to_string(j.b) + ")";
      if (j.a >= j.b) {
        fail("joint", "E6.3.pair", subject, "pair must be ordered a < b");
        continue;
      }
      if (j.bound <= 0) {
        fail("joint", "E6.3.negative", subject, "joint bounds are only recorded when positive");
        continue;
      }
      if (!j.witness) {
        fail("joint", "E6.3.witness-missing", subject,
             "LB = " + std::to_string(j.bound) + " requires a witness interval");
        continue;
      }
      // The task universe is ST_a intersect ST_b: only a task using BOTH
      // members occupies a pair-capable node for its whole execution.
      std::vector<TaskId> both;
      for (TaskId i = 0; i < app_.num_tasks(); ++i) {
        if (app_.task(i).uses(j.a) && app_.task(i).uses(j.b)) both.push_back(i);
      }
      check_witness("joint", subject, j.bound, *j.witness, both);
    }
  }

  void check_shared_cost() {
    const SharedCostCert& s = cert_.shared_cost;
    if (s.terms.size() != cert_.bounds.size()) {
      fail("cost", "E7.1.term", "shared cost",
           "expected one term per bound, got " + std::to_string(s.terms.size()));
      return;
    }
    I128 sum = 0;
    bool ok = true;
    for (std::size_t k = 0; k < s.terms.size(); ++k) {
      const SharedCostTerm& t = s.terms[k];
      const BoundCert& b = cert_.bounds[k];
      const std::string subject = "shared cost term " + std::to_string(k);
      if (t.resource != b.resource || t.units != b.bound) {
        fail("cost", "E7.1.term", subject,
             "term (" + res_name(t.resource) + ", " + std::to_string(t.units) +
                 " units) does not restate the certified bound (" + res_name(b.resource) +
                 ", " + std::to_string(b.bound) + ")");
        ok = false;
        continue;
      }
      if (t.unit_cost != app_.catalog().cost(t.resource)) {
        fail("cost", "E7.1.cost", subject,
             "unit cost " + std::to_string(t.unit_cost) + " but CostR(" + res_name(t.resource) +
                 ") = " + std::to_string(app_.catalog().cost(t.resource)));
        ok = false;
        continue;
      }
      sum += static_cast<I128>(t.units) * t.unit_cost;
    }
    if (ok && sum != s.total) {
      fail("cost", "E7.1.sum", "shared cost",
           "total " + std::to_string(s.total) + " but the Eq. 7.1 terms sum to " + i128_str(sum));
    }
  }

  // ---- Eq. 7.2 rows, re-derived canonically ------------------------------

  struct Row {
    std::vector<I128> coeffs;  // one per node type
    I128 rhs = 0;
    std::string label;
  };

  /// Rebuild the Section-7 constraint rows in the producer's canonical
  /// order: per-resource covering rows (bounds order, bound > 0), then the
  /// conjunctive pair rows (joint order, when the program used them), then
  /// the hosting rows (task id order, first-seen deduplication of identical
  /// eta sets). Returns std::nullopt after reporting if a row cannot be
  /// built (which the certificate must then claim as infeasibility).
  std::optional<std::vector<Row>> build_rows(bool joint_rows) {
    const std::size_t num_types = platform_->num_node_types();
    std::vector<Row> rows;
    for (const BoundCert& b : cert_.bounds) {
      if (b.bound <= 0) continue;
      Row row;
      row.coeffs.assign(num_types, 0);
      bool any = false;
      for (std::size_t n = 0; n < num_types; ++n) {
        const int units = platform_->node_type(n).units_of(b.resource);
        if (units > 0) {
          row.coeffs[n] = units;
          any = true;
        }
      }
      if (!any) return std::nullopt;
      row.rhs = b.bound;
      row.label = "covering row for " + res_name(b.resource);
      rows.push_back(std::move(row));
    }
    if (joint_rows) {
      for (const JointCert& j : cert_.joint) {
        Row row;
        row.coeffs.assign(num_types, 0);
        bool any = false;
        for (std::size_t n = 0; n < num_types; ++n) {
          const NodeType& node = platform_->node_type(n);
          if (node.units_of(j.a) > 0 && node.units_of(j.b) > 0) {
            row.coeffs[n] = 1;
            any = true;
          }
        }
        if (!any) return std::nullopt;
        row.rhs = j.bound;
        row.label = "pair row (" + std::to_string(j.a) + ", " + std::to_string(j.b) + ")";
        rows.push_back(std::move(row));
      }
    }
    std::vector<std::vector<std::size_t>> seen;
    for (TaskId i = 0; i < app_.num_tasks(); ++i) {
      std::vector<std::size_t> eta = platform_->hosts_for(app_.task(i));
      if (eta.empty()) return std::nullopt;
      if (std::find(seen.begin(), seen.end(), eta) != seen.end()) continue;
      Row row;
      row.coeffs.assign(num_types, 0);
      for (std::size_t n : eta) row.coeffs[n] = 1;
      row.rhs = 1;
      row.label = "hosting row for " + task_name(i);
      rows.push_back(std::move(row));
      seen.push_back(std::move(eta));
    }
    return rows;
  }

  void check_dedicated_infeasible(const DedicatedCostCert& d) {
    const std::string& reason = d.infeasible_reason;
    if (reason == "no-node-types") {
      if (platform_->num_node_types() != 0) {
        fail("cost", "E7.2.reason", "dedicated cost",
             "claims an empty node-type menu but the platform has " +
                 std::to_string(platform_->num_node_types()) + " types");
      }
      return;
    }
    if (reason == "task-unhostable") {
      if (d.detail_task >= app_.num_tasks()) {
        fail("cost", "E7.2.unhostable", "dedicated cost", "detail_task is out of range");
        return;
      }
      if (!platform_->hosts_for(app_.task(d.detail_task)).empty()) {
        fail("cost", "E7.2.unhostable", task_name(d.detail_task),
             "claimed unhostable but eta is non-empty");
      }
      return;
    }
    if (reason == "uncovered-resource") {
      bool positive = false;
      for (const BoundCert& b : cert_.bounds) {
        if (b.resource == d.detail_resource && b.bound > 0) positive = true;
      }
      if (!positive) {
        fail("cost", "E7.2.uncovered", res_name(d.detail_resource),
             "claimed uncovered but its certified bound is not positive");
        return;
      }
      for (std::size_t n = 0; n < platform_->num_node_types(); ++n) {
        if (platform_->node_type(n).units_of(d.detail_resource) > 0) {
          fail("cost", "E7.2.uncovered", res_name(d.detail_resource),
               "claimed uncovered but node type " + std::to_string(n) + " supplies it");
          return;
        }
      }
      return;
    }
    if (reason == "uncovered-pair") {
      bool listed = false;
      for (const JointCert& j : cert_.joint) {
        if (j.a == d.detail_resource && j.b == d.detail_resource_b && j.bound > 0) listed = true;
      }
      if (!d.joint_rows || !listed) {
        fail("cost", "E7.2.uncovered", "dedicated cost",
             "claimed uncovered pair is not a certified positive joint bound");
        return;
      }
      for (std::size_t n = 0; n < platform_->num_node_types(); ++n) {
        const NodeType& node = platform_->node_type(n);
        if (node.units_of(d.detail_resource) > 0 && node.units_of(d.detail_resource_b) > 0) {
          fail("cost", "E7.2.uncovered", "dedicated cost",
               "claimed uncovered pair but node type " + std::to_string(n) + " carries both");
          return;
        }
      }
      return;
    }
    // Anything else -- e.g. a branch-and-bound node-limit abort -- is not a
    // checkable fact about the instance.
    fail("cost", "E7.2.reason", "dedicated cost",
         "infeasibility reason \"" + reason + "\" is not certifiable");
  }

  void check_dedicated_cost() {
    if (!cert_.dedicated_cost) return;
    const DedicatedCostCert& d = *cert_.dedicated_cost;
    if (d.joint_rows && !cert_.has_joint) {
      fail("cost", "E7.2.rows", "dedicated cost",
           "claims joint-strengthened rows but the certificate has no joint section");
      return;
    }
    if (!d.feasible) {
      check_dedicated_infeasible(d);
      return;
    }

    const std::size_t num_types = platform_->num_node_types();
    if (d.node_counts.size() != num_types) {
      fail("cost", "E7.2.primal-shape", "dedicated cost",
           "node_counts has " + std::to_string(d.node_counts.size()) + " entries for " +
               std::to_string(num_types) + " node types");
      return;
    }
    std::optional<std::vector<Row>> rows = build_rows(d.joint_rows);
    if (!rows) {
      fail("cost", "E7.2.row", "dedicated cost",
           "the program is infeasible (a row has no supplier) yet the certificate claims "
           "feasibility");
      return;
    }

    // Primal witness: an integral assembly satisfying every row, with
    // objective exactly `total` -- proof the claimed optimum is attainable.
    for (std::int64_t x : d.node_counts) {
      if (x < 0) {
        fail("cost", "E7.2.primal-feasible", "dedicated cost", "negative node count");
        return;
      }
    }
    for (std::size_t r = 0; r < rows->size(); ++r) {
      const Row& row = (*rows)[r];
      I128 lhs = 0;
      for (std::size_t n = 0; n < num_types; ++n) lhs += row.coeffs[n] * d.node_counts[n];
      if (lhs < row.rhs) {
        fail("cost", "E7.2.primal-feasible", row.label,
             "assembly provides " + i128_str(lhs) + " < required " + i128_str(row.rhs));
      }
    }
    I128 objective = 0;
    for (std::size_t n = 0; n < num_types; ++n) {
      objective += static_cast<I128>(platform_->node_type(n).cost) * d.node_counts[n];
    }
    if (objective != d.total) {
      fail("cost", "E7.2.primal-value", "dedicated cost",
           "assembly costs " + i128_str(objective) + " but the certificate claims " +
               std::to_string(d.total));
    }

    // Dual witness: y >= 0 with A^T y <= c proves every x >= 0 satisfying
    // Ax >= b costs at least y.b -- the Eq. 7.2 relaxation, certified
    // without trusting the solver.
    if (d.dual.size() != rows->size()) {
      fail("cost", "E7.2.dual-shape", "dedicated cost",
           "dual has " + std::to_string(d.dual.size()) + " entries for " +
               std::to_string(rows->size()) + " rows");
      return;
    }
    const auto tol = [](double scale) { return 1e-6 * std::max(1.0, std::fabs(scale)); };
    for (std::size_t r = 0; r < rows->size(); ++r) {
      if (!(d.dual[r] >= -1e-9) || !std::isfinite(d.dual[r])) {
        fail("cost", "E7.2.dual-sign", (*rows)[r].label, "dual multiplier must be >= 0");
        return;
      }
    }
    for (std::size_t n = 0; n < num_types; ++n) {
      double reduced = 0;
      for (std::size_t r = 0; r < rows->size(); ++r) {
        reduced += d.dual[r] * static_cast<double>((*rows)[r].coeffs[n]);
      }
      const double cost_n = static_cast<double>(platform_->node_type(n).cost);
      if (reduced > cost_n + tol(cost_n)) {
        fail("cost", "E7.2.dual-feasible", "node type " + std::to_string(n),
             "dual column value " + std::to_string(reduced) + " exceeds the node cost " +
                 std::to_string(cost_n));
      }
    }
    double dual_value = 0;
    for (std::size_t r = 0; r < rows->size(); ++r) {
      dual_value += d.dual[r] * static_cast<double>((*rows)[r].rhs);
    }
    if (std::fabs(dual_value - d.relaxation) > tol(d.relaxation)) {
      fail("cost", "E7.2.dual-value", "dedicated cost",
           "dual objective " + std::to_string(dual_value) +
               " does not match the claimed relaxation " + std::to_string(d.relaxation));
    }
    if (d.relaxation > static_cast<double>(d.total) + tol(static_cast<double>(d.total))) {
      fail("cost", "E7.2.gap", "dedicated cost",
           "claimed relaxation " + std::to_string(d.relaxation) +
               " exceeds the integral total " + std::to_string(d.total));
    }
  }

  const Certificate& cert_;
  const Application& app_;
  const DedicatedPlatform* platform_;
  std::vector<Time> est_, lct_;
  CheckReport report_;
};

}  // namespace

CheckReport check_certificate(const Certificate& cert, const Application& app,
                              const DedicatedPlatform* platform) {
  return Checker(cert, app, platform).run();
}

}  // namespace rtlb
