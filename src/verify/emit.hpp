// Certificate emission: restate an AnalysisResult as checkable facts.
//
// This is the PRODUCER side of src/verify: it may (and does) use src/core to
// decompose the result into witnesses — the per-task Psi terms behind each
// bound's witness interval, the Theorem 5 boundary facts, and the explicit
// dual vector for the Eq. 7.2 relaxation (obtained by solving the dual LP,
// since the primal solver does not expose multipliers). The independence
// claim lives entirely on the checker side (src/verify/checker.{hpp,cpp}).
#pragma once

#include "src/core/analysis.hpp"
#include "src/verify/certificate.hpp"

namespace rtlb {

/// Build the certificate for `result`, which must have been produced by
/// analyze(app, options, platform) (same arguments). Deterministic: equal
/// results yield byte-identical certificate JSON.
Certificate build_certificate(const Application& app, const AnalysisOptions& options,
                              const DedicatedPlatform* platform, const AnalysisResult& result);

}  // namespace rtlb
