// Independent certificate checker.
//
// check_certificate() re-judges every fact of a Certificate against the
// theorem side-conditions using ONLY the problem model (src/model) and the
// scalar helpers of src/common. It deliberately shares no code with the
// src/core producers: mergeability (Definitions 1/2), the ect/lst folds of
// Section 4, the Psi formulas of Theorems 3/4, and the Eq. 7.2 constraint
// rows are all re-implemented here from the paper. A bug in the optimized
// pipeline (parallel scan units, memoized sessions, cache keys) therefore
// cannot also hide in the checker.
//
// Cost: O(certificate size) with small per-fact factors — prefix
// re-enumeration for a window fact is quadratic in the task's fan-in/out,
// everything else is linear passes.
#pragma once

#include <string>
#include <vector>

#include "src/model/application.hpp"
#include "src/model/platform.hpp"
#include "src/verify/certificate.hpp"

namespace rtlb {

/// One violated side-condition, pinpointed: which pipeline stage, which rule
/// (stable machine-readable name like "T3.psi" or "E7.2.dual-feasible"),
/// which subject (task/resource/row), and a human-readable detail.
struct CheckFailure {
  std::string stage;    ///< "windows", "partition", "bound", "joint", "cost"
  std::string rule;     ///< stable rule id, see docs/CERTIFICATES.md
  std::string subject;  ///< e.g. "task 3", "resource 1", "row 4"
  std::string detail;
};

struct CheckReport {
  bool valid = true;
  std::vector<CheckFailure> failures;  ///< every violation found, in stage order

  /// One line per failure: "stage/rule subject: detail".
  std::string summary() const;
};

/// Check `cert` against the instance. `platform` is required iff the
/// certificate claims the dedicated model (a mismatch is itself a failure).
/// Never throws on bad certificate VALUES — all violations are collected in
/// the report; only an inconsistent model (broken Application) can throw.
CheckReport check_certificate(const Certificate& cert, const Application& app,
                              const DedicatedPlatform* platform);

}  // namespace rtlb
