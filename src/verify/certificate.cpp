#include "src/verify/certificate.hpp"

#include <limits>
#include <utility>

namespace rtlb {

namespace {

Json task_list_json(const std::vector<TaskId>& tasks) {
  Json arr = Json::array();
  for (TaskId t : tasks) arr.push(static_cast<std::int64_t>(t));
  return arr;
}

Json witness_json(const IntervalWitness& w) {
  Json obj = Json::object();
  obj.set("t1", w.t1);
  obj.set("t2", w.t2);
  obj.set("demand", w.demand);
  Json terms = Json::array();
  for (const PsiTerm& term : w.terms) {
    terms.push(Json::object()
                   .set("task", static_cast<std::int64_t>(term.task))
                   .set("psi", term.psi));
  }
  obj.set("terms", std::move(terms));
  return obj;
}

// ---- parse helpers -------------------------------------------------------

[[noreturn]] void bad(const std::string& where, const std::string& why) {
  throw CertificateFormatError("certificate: " + where + ": " + why);
}

const Json& field(const Json& obj, const char* key, const std::string& where) {
  if (!obj.is_object()) bad(where, "expected an object");
  const Json* v = obj.find(key);
  if (v == nullptr) bad(where, std::string("missing field \"") + key + "\"");
  return *v;
}

std::int64_t int_field(const Json& obj, const char* key, const std::string& where) {
  const Json& v = field(obj, key, where);
  if (!v.is_int()) bad(where, std::string("field \"") + key + "\" must be an integer");
  return v.as_int();
}

double number_field(const Json& obj, const char* key, const std::string& where) {
  const Json& v = field(obj, key, where);
  if (!v.is_number()) bad(where, std::string("field \"") + key + "\" must be a number");
  return v.as_double();
}

bool bool_field(const Json& obj, const char* key, const std::string& where) {
  const Json& v = field(obj, key, where);
  if (!v.is_bool()) bad(where, std::string("field \"") + key + "\" must be a boolean");
  return v.as_bool();
}

std::string string_field(const Json& obj, const char* key, const std::string& where) {
  const Json& v = field(obj, key, where);
  if (!v.is_string()) bad(where, std::string("field \"") + key + "\" must be a string");
  return v.as_string();
}

const Json& array_field(const Json& obj, const char* key, const std::string& where) {
  const Json& v = field(obj, key, where);
  if (!v.is_array()) bad(where, std::string("field \"") + key + "\" must be an array");
  return v;
}

TaskId parse_task_id(const Json& v, const std::string& where) {
  if (!v.is_int()) bad(where, "task id must be an integer");
  const std::int64_t raw = v.as_int();
  if (raw < 0 || raw >= std::numeric_limits<TaskId>::max()) bad(where, "task id out of range");
  return static_cast<TaskId>(raw);
}

ResourceId parse_resource_id(std::int64_t raw, const std::string& where) {
  if (raw < 0 || raw >= std::numeric_limits<ResourceId>::max()) {
    bad(where, "resource id out of range");
  }
  return static_cast<ResourceId>(raw);
}

std::vector<TaskId> parse_task_list(const Json& arr, const std::string& where) {
  std::vector<TaskId> out;
  out.reserve(arr.size());
  for (std::size_t i = 0; i < arr.size(); ++i) out.push_back(parse_task_id(arr.at(i), where));
  return out;
}

IntervalWitness parse_witness(const Json& obj, const std::string& where) {
  IntervalWitness w;
  w.t1 = int_field(obj, "t1", where);
  w.t2 = int_field(obj, "t2", where);
  w.demand = int_field(obj, "demand", where);
  const Json& terms = array_field(obj, "terms", where);
  w.terms.reserve(terms.size());
  for (std::size_t i = 0; i < terms.size(); ++i) {
    const Json& t = terms.at(i);
    PsiTerm term;
    term.task = parse_task_id(field(t, "task", where), where);
    term.psi = int_field(t, "psi", where);
    w.terms.push_back(term);
  }
  return w;
}

}  // namespace

Json certificate_json(const Certificate& cert) {
  Json doc = Json::object();
  doc.set("version", static_cast<std::int64_t>(cert.version));
  doc.set("model", cert.dedicated ? "dedicated" : "shared");
  doc.set("num_tasks", static_cast<std::int64_t>(cert.num_tasks));

  Json windows = Json::array();
  for (const WindowFact& w : cert.windows) {
    windows.push(Json::object()
                     .set("task", static_cast<std::int64_t>(w.task))
                     .set("est", w.est)
                     .set("lct", w.lct)
                     .set("merged_pred", task_list_json(w.merged_pred))
                     .set("merged_succ", task_list_json(w.merged_succ)));
  }
  doc.set("windows", std::move(windows));

  Json partitions = Json::array();
  for (const PartitionCert& p : cert.partitions) {
    Json blocks = Json::array();
    for (const std::vector<TaskId>& b : p.blocks) blocks.push(task_list_json(b));
    Json separations = Json::array();
    for (const SeparationFact& s : p.separations) {
      separations.push(Json::object()
                           .set("earlier_finish", s.earlier_finish)
                           .set("later_start", s.later_start));
    }
    partitions.push(Json::object()
                        .set("resource", static_cast<std::int64_t>(p.resource))
                        .set("blocks", std::move(blocks))
                        .set("separations", std::move(separations)));
  }
  doc.set("partitions", std::move(partitions));

  Json bounds = Json::array();
  for (const BoundCert& b : cert.bounds) {
    Json obj = Json::object();
    obj.set("resource", static_cast<std::int64_t>(b.resource));
    obj.set("bound", b.bound);
    if (b.witness) obj.set("witness", witness_json(*b.witness));
    bounds.push(std::move(obj));
  }
  doc.set("bounds", std::move(bounds));

  if (cert.has_joint) {
    Json joint = Json::array();
    for (const JointCert& j : cert.joint) {
      Json obj = Json::object();
      obj.set("a", static_cast<std::int64_t>(j.a));
      obj.set("b", static_cast<std::int64_t>(j.b));
      obj.set("bound", j.bound);
      if (j.witness) obj.set("witness", witness_json(*j.witness));
      joint.push(std::move(obj));
    }
    doc.set("joint", std::move(joint));
  }

  Json shared = Json::object();
  shared.set("total", cert.shared_cost.total);
  Json terms = Json::array();
  for (const SharedCostTerm& t : cert.shared_cost.terms) {
    terms.push(Json::object()
                   .set("resource", static_cast<std::int64_t>(t.resource))
                   .set("units", t.units)
                   .set("unit_cost", t.unit_cost));
  }
  shared.set("terms", std::move(terms));
  doc.set("shared_cost", std::move(shared));

  if (cert.dedicated_cost) {
    const DedicatedCostCert& d = *cert.dedicated_cost;
    Json obj = Json::object();
    obj.set("feasible", d.feasible);
    if (!d.feasible) {
      obj.set("infeasible_reason", d.infeasible_reason);
      if (d.detail_task != kInvalidTask) {
        obj.set("detail_task", static_cast<std::int64_t>(d.detail_task));
      }
      if (d.detail_resource != kInvalidResource) {
        obj.set("detail_resource", static_cast<std::int64_t>(d.detail_resource));
      }
      if (d.detail_resource_b != kInvalidResource) {
        obj.set("detail_resource_b", static_cast<std::int64_t>(d.detail_resource_b));
      }
    } else {
      obj.set("total", d.total);
      Json counts = Json::array();
      for (std::int64_t x : d.node_counts) counts.push(x);
      obj.set("node_counts", std::move(counts));
      obj.set("relaxation", d.relaxation);
      Json dual = Json::array();
      for (double y : d.dual) dual.push(y);
      obj.set("dual", std::move(dual));
      obj.set("joint_rows", d.joint_rows);
    }
    doc.set("dedicated_cost", std::move(obj));
  }

  return doc;
}

Certificate parse_certificate(const Json& doc) {
  if (!doc.is_object()) bad("root", "expected a JSON object");
  Certificate cert;

  cert.version = static_cast<int>(int_field(doc, "version", "root"));
  if (cert.version != kCertificateVersion) {
    bad("root", "unknown certificate version " + std::to_string(cert.version));
  }
  const std::string model = string_field(doc, "model", "root");
  if (model == "shared") {
    cert.dedicated = false;
  } else if (model == "dedicated") {
    cert.dedicated = true;
  } else {
    bad("root", "model must be \"shared\" or \"dedicated\"");
  }
  const std::int64_t num_tasks = int_field(doc, "num_tasks", "root");
  if (num_tasks < 0) bad("root", "num_tasks must be non-negative");
  cert.num_tasks = static_cast<std::size_t>(num_tasks);

  const Json& windows = array_field(doc, "windows", "root");
  cert.windows.reserve(windows.size());
  for (std::size_t i = 0; i < windows.size(); ++i) {
    const std::string where = "windows[" + std::to_string(i) + "]";
    const Json& w = windows.at(i);
    WindowFact fact;
    fact.task = parse_task_id(field(w, "task", where), where);
    fact.est = int_field(w, "est", where);
    fact.lct = int_field(w, "lct", where);
    fact.merged_pred = parse_task_list(array_field(w, "merged_pred", where), where);
    fact.merged_succ = parse_task_list(array_field(w, "merged_succ", where), where);
    cert.windows.push_back(std::move(fact));
  }

  const Json& partitions = array_field(doc, "partitions", "root");
  cert.partitions.reserve(partitions.size());
  for (std::size_t i = 0; i < partitions.size(); ++i) {
    const std::string where = "partitions[" + std::to_string(i) + "]";
    const Json& p = partitions.at(i);
    PartitionCert part;
    part.resource = parse_resource_id(int_field(p, "resource", where), where);
    const Json& blocks = array_field(p, "blocks", where);
    part.blocks.reserve(blocks.size());
    for (std::size_t k = 0; k < blocks.size(); ++k) {
      if (!blocks.at(k).is_array()) bad(where, "each block must be an array of task ids");
      part.blocks.push_back(parse_task_list(blocks.at(k), where));
    }
    const Json& separations = array_field(p, "separations", where);
    part.separations.reserve(separations.size());
    for (std::size_t k = 0; k < separations.size(); ++k) {
      const Json& s = separations.at(k);
      SeparationFact fact;
      fact.earlier_finish = int_field(s, "earlier_finish", where);
      fact.later_start = int_field(s, "later_start", where);
      part.separations.push_back(fact);
    }
    if (!part.blocks.empty() && part.separations.size() != part.blocks.size() - 1) {
      bad(where, "separations must have one entry per block boundary");
    }
    cert.partitions.push_back(std::move(part));
  }

  const Json& bounds = array_field(doc, "bounds", "root");
  cert.bounds.reserve(bounds.size());
  for (std::size_t i = 0; i < bounds.size(); ++i) {
    const std::string where = "bounds[" + std::to_string(i) + "]";
    const Json& b = bounds.at(i);
    BoundCert bc;
    bc.resource = parse_resource_id(int_field(b, "resource", where), where);
    bc.bound = int_field(b, "bound", where);
    if (const Json* w = b.find("witness")) bc.witness = parse_witness(*w, where);
    cert.bounds.push_back(std::move(bc));
  }

  if (const Json* joint = doc.find("joint")) {
    if (!joint->is_array()) bad("root", "field \"joint\" must be an array");
    cert.has_joint = true;
    cert.joint.reserve(joint->size());
    for (std::size_t i = 0; i < joint->size(); ++i) {
      const std::string where = "joint[" + std::to_string(i) + "]";
      const Json& j = joint->at(i);
      JointCert jc;
      jc.a = parse_resource_id(int_field(j, "a", where), where);
      jc.b = parse_resource_id(int_field(j, "b", where), where);
      jc.bound = int_field(j, "bound", where);
      if (const Json* w = j.find("witness")) jc.witness = parse_witness(*w, where);
      cert.joint.push_back(std::move(jc));
    }
  }

  const Json& shared = field(doc, "shared_cost", "root");
  cert.shared_cost.total = int_field(shared, "total", "shared_cost");
  const Json& terms = array_field(shared, "terms", "shared_cost");
  cert.shared_cost.terms.reserve(terms.size());
  for (std::size_t i = 0; i < terms.size(); ++i) {
    const std::string where = "shared_cost.terms[" + std::to_string(i) + "]";
    const Json& t = terms.at(i);
    SharedCostTerm term;
    term.resource = parse_resource_id(int_field(t, "resource", where), where);
    term.units = int_field(t, "units", where);
    term.unit_cost = int_field(t, "unit_cost", where);
    cert.shared_cost.terms.push_back(term);
  }

  if (const Json* ded = doc.find("dedicated_cost")) {
    const std::string where = "dedicated_cost";
    DedicatedCostCert d;
    d.feasible = bool_field(*ded, "feasible", where);
    if (!d.feasible) {
      d.infeasible_reason = string_field(*ded, "infeasible_reason", where);
      if (const Json* t = ded->find("detail_task")) d.detail_task = parse_task_id(*t, where);
      if (const Json* r = ded->find("detail_resource")) {
        if (!r->is_int()) bad(where, "detail_resource must be an integer");
        d.detail_resource = parse_resource_id(r->as_int(), where);
      }
      if (const Json* r = ded->find("detail_resource_b")) {
        if (!r->is_int()) bad(where, "detail_resource_b must be an integer");
        d.detail_resource_b = parse_resource_id(r->as_int(), where);
      }
    } else {
      d.total = int_field(*ded, "total", where);
      const Json& counts = array_field(*ded, "node_counts", where);
      d.node_counts.reserve(counts.size());
      for (std::size_t i = 0; i < counts.size(); ++i) {
        if (!counts.at(i).is_int()) bad(where, "node_counts entries must be integers");
        d.node_counts.push_back(counts.at(i).as_int());
      }
      d.relaxation = number_field(*ded, "relaxation", where);
      const Json& dual = array_field(*ded, "dual", where);
      d.dual.reserve(dual.size());
      for (std::size_t i = 0; i < dual.size(); ++i) {
        if (!dual.at(i).is_number()) bad(where, "dual entries must be numbers");
        d.dual.push_back(dual.at(i).as_double());
      }
      d.joint_rows = bool_field(*ded, "joint_rows", where);
    }
    cert.dedicated_cost = std::move(d);
  }

  return cert;
}

Certificate parse_certificate_text(std::string_view text) {
  return parse_certificate(Json::parse(text));
}

}  // namespace rtlb
