#include "src/verify/emit.hpp"

#include <algorithm>
#include <utility>

#include "src/core/overlap.hpp"
#include "src/lp/simplex.hpp"

namespace rtlb {

namespace {

/// Psi decomposition of a witness interval over `tasks` (zero terms omitted;
/// their absence never weakens the certified demand).
IntervalWitness make_witness(const Application& app, const TaskWindows& windows,
                             const std::vector<TaskId>& tasks, Time t1, Time t2) {
  IntervalWitness w;
  w.t1 = t1;
  w.t2 = t2;
  w.demand = 0;
  for (TaskId i : tasks) {
    const Time psi = overlap(app, windows, i, t1, t2);
    if (psi > 0) {
      w.terms.push_back({i, psi});
      w.demand += psi;
    }
  }
  return w;
}

/// The Eq. 7.2 constraint system in its canonical row order (mirrors
/// dedicated_cost_bound / dedicated_cost_bound_joint exactly). Returns false
/// after filling `cert` with the checkable infeasibility reason when a row
/// has no supplier.
bool build_program(const Application& app, const DedicatedPlatform& platform,
                   const AnalysisResult& result, bool joint_rows, LinearProgram& lp,
                   DedicatedCostCert& cert) {
  const std::size_t num_types = platform.num_node_types();
  if (num_types == 0) {
    cert.infeasible_reason = "no-node-types";
    return false;
  }
  lp.sense = LinearProgram::Sense::Minimize;
  lp.objective.resize(num_types);
  for (std::size_t n = 0; n < num_types; ++n) {
    lp.objective[n] = static_cast<double>(platform.node_type(n).cost);
  }
  for (const ResourceBound& b : result.bounds) {
    if (b.bound <= 0) continue;
    std::vector<double> row(num_types, 0.0);
    bool any = false;
    for (std::size_t n = 0; n < num_types; ++n) {
      const int units = platform.node_type(n).units_of(b.resource);
      if (units > 0) {
        row[n] = units;
        any = true;
      }
    }
    if (!any) {
      cert.infeasible_reason = "uncovered-resource";
      cert.detail_resource = b.resource;
      return false;
    }
    lp.add_constraint(std::move(row), LinearProgram::Relation::GreaterEq,
                      static_cast<double>(b.bound));
  }
  if (joint_rows) {
    for (const JointBound& jb : result.joint) {
      std::vector<double> row(num_types, 0.0);
      bool any = false;
      for (std::size_t n = 0; n < num_types; ++n) {
        const NodeType& node = platform.node_type(n);
        if (node.units_of(jb.a) > 0 && node.units_of(jb.b) > 0) {
          row[n] = 1.0;
          any = true;
        }
      }
      if (!any) {
        cert.infeasible_reason = "uncovered-pair";
        cert.detail_resource = jb.a;
        cert.detail_resource_b = jb.b;
        return false;
      }
      lp.add_constraint(std::move(row), LinearProgram::Relation::GreaterEq,
                        static_cast<double>(jb.bound));
    }
  }
  std::vector<std::vector<std::size_t>> seen;
  for (TaskId i = 0; i < app.num_tasks(); ++i) {
    std::vector<std::size_t> eta = platform.hosts_for(app.task(i));
    if (eta.empty()) {
      cert.infeasible_reason = "task-unhostable";
      cert.detail_task = i;
      return false;
    }
    if (std::find(seen.begin(), seen.end(), eta) != seen.end()) continue;
    std::vector<double> row(num_types, 0.0);
    for (std::size_t n : eta) row[n] = 1.0;
    lp.add_constraint(std::move(row), LinearProgram::Relation::GreaterEq, 1.0);
    seen.push_back(std::move(eta));
  }
  return true;
}

/// Solve the explicit dual of min{c.x : Ax >= b, x >= 0}:
/// max{b.y : A^T y <= c, y >= 0}. The primal solver exposes no multipliers,
/// so the certificate's dual witness is produced by this second solve; its
/// objective (== the relaxation value, by strong duality) is what gets
/// recorded, keeping the certificate internally consistent to the last bit.
std::pair<std::vector<double>, double> solve_dual(const LinearProgram& primal) {
  LinearProgram dual;
  dual.sense = LinearProgram::Sense::Maximize;
  dual.objective.reserve(primal.constraints.size());
  for (const LinearProgram::Constraint& c : primal.constraints) dual.objective.push_back(c.rhs);
  for (std::size_t n = 0; n < primal.num_vars(); ++n) {
    std::vector<double> col(primal.constraints.size(), 0.0);
    for (std::size_t r = 0; r < primal.constraints.size(); ++r) {
      const auto& coeffs = primal.constraints[r].coeffs;
      if (n < coeffs.size()) col[r] = coeffs[n];
    }
    dual.add_constraint(std::move(col), LinearProgram::Relation::LessEq, primal.objective[n]);
  }
  const LpResult res = solve_lp(dual);
  if (res.status != LpResult::Status::Optimal) {
    // The primal is feasible and bounded below by 0, so this cannot happen
    // with exact arithmetic; fall back to the trivially feasible y = 0
    // (which certifies the weaker relaxation 0 <= cost).
    return {std::vector<double>(primal.constraints.size(), 0.0), 0.0};
  }
  std::vector<double> y = res.x;
  y.resize(primal.constraints.size(), 0.0);
  for (double& v : y) {
    if (v < 0 && v > -1e-12) v = 0;  // scrub solver noise off the witness
  }
  return {std::move(y), res.objective};
}

DedicatedCostCert build_dedicated_cert(const Application& app,
                                       const DedicatedPlatform& platform,
                                       const AnalysisResult& result, bool joint_rows) {
  DedicatedCostCert cert;
  cert.joint_rows = joint_rows;
  const DedicatedCostBound& cost = *result.dedicated_cost;
  LinearProgram lp;
  if (!build_program(app, platform, result, joint_rows, lp, cert)) {
    cert.feasible = false;
    return cert;  // reason + detail filled by build_program
  }
  if (!cost.feasible) {
    // Every row has a supplier, so the program itself is feasible; the only
    // remaining producer failure is the branch-and-bound node budget. Not a
    // fact about the instance -- the checker rejects it as uncertifiable.
    cert.feasible = false;
    cert.infeasible_reason = "ilp-node-limit";
    return cert;
  }
  cert.feasible = true;
  cert.total = cost.total;
  cert.node_counts = cost.node_counts;
  auto [dual, relaxation] = solve_dual(lp);
  cert.dual = std::move(dual);
  cert.relaxation = relaxation;
  return cert;
}

}  // namespace

Certificate build_certificate(const Application& app, const AnalysisOptions& options,
                              const DedicatedPlatform* platform,
                              const AnalysisResult& result) {
  Certificate cert;
  cert.version = kCertificateVersion;
  cert.dedicated = options.model == SystemModel::Dedicated;
  cert.num_tasks = app.num_tasks();

  // Step 1: windows with their merge sets, verbatim from the result. The
  // merge sets are copied in the engine's merge order (the improved prefix
  // of the Figure 2/3 candidate order, ids breaking ties) -- NOT re-sorted
  // here, so equal windows yield byte-identical WindowFacts whichever path
  // (serial, parallel rounds, warm session) produced them. The tie-break
  // suite in tests/test_windows.cpp pins this.
  cert.windows.reserve(app.num_tasks());
  for (TaskId i = 0; i < app.num_tasks(); ++i) {
    WindowFact fact;
    fact.task = i;
    fact.est = result.windows.est[i];
    fact.lct = result.windows.lct[i];
    fact.merged_pred = result.windows.merged_pred[i];
    fact.merged_succ = result.windows.merged_succ[i];
    cert.windows.push_back(std::move(fact));
  }

  // Step 2: block membership plus the Theorem 5 boundary facts.
  cert.partitions.reserve(result.partitions.size());
  for (const ResourcePartition& p : result.partitions) {
    PartitionCert pc;
    pc.resource = p.resource;
    pc.blocks.reserve(p.blocks.size());
    for (const PartitionBlock& b : p.blocks) pc.blocks.push_back(b.tasks);
    Time running_finish = 0;
    bool have_finish = false;
    for (std::size_t b = 0; b + 1 < p.blocks.size(); ++b) {
      for (TaskId t : p.blocks[b].tasks) {
        const Time l = result.windows.lct[t];
        running_finish = have_finish ? std::max(running_finish, l) : l;
        have_finish = true;
      }
      Time next_start = 0;
      bool have_start = false;
      for (TaskId t : p.blocks[b + 1].tasks) {
        const Time e = result.windows.est[t];
        next_start = have_start ? std::min(next_start, e) : e;
        have_start = true;
      }
      pc.separations.push_back({running_finish, next_start});
    }
    cert.partitions.push_back(std::move(pc));
  }

  // Step 3: each positive bound gets its witness interval with the Psi
  // decomposition over ST_r.
  cert.bounds.reserve(result.bounds.size());
  for (const ResourceBound& b : result.bounds) {
    BoundCert bc;
    bc.resource = b.resource;
    bc.bound = b.bound;
    if (b.bound > 0) {
      bc.witness = make_witness(app, result.windows, app.tasks_using(b.resource),
                                b.witness_t1, b.witness_t2);
    }
    cert.bounds.push_back(std::move(bc));
  }

  // EXTENSION: conjunctive pair bounds over ST_a intersect ST_b.
  cert.has_joint = options.joint_bounds;
  if (options.joint_bounds) {
    cert.joint.reserve(result.joint.size());
    for (const JointBound& jb : result.joint) {
      JointCert jc;
      jc.a = jb.a;
      jc.b = jb.b;
      jc.bound = jb.bound;
      std::vector<TaskId> both;
      for (TaskId i = 0; i < app.num_tasks(); ++i) {
        if (app.task(i).uses(jb.a) && app.task(i).uses(jb.b)) both.push_back(i);
      }
      jc.witness = make_witness(app, result.windows, both, jb.witness_t1, jb.witness_t2);
      cert.joint.push_back(std::move(jc));
    }
  }

  // Step 4: Eq. 7.1 verbatim; Eq. 7.2 with primal + dual witnesses.
  cert.shared_cost.total = result.shared_cost.total;
  cert.shared_cost.terms.reserve(result.shared_cost.terms.size());
  for (const SharedCostBound::Term& t : result.shared_cost.terms) {
    cert.shared_cost.terms.push_back({t.resource, t.units, t.unit_cost});
  }
  if (result.dedicated_cost && platform != nullptr) {
    cert.dedicated_cost =
        build_dedicated_cert(app, *platform, result, options.joint_bounds);
  }
  return cert;
}

}  // namespace rtlb
