// Certificates: the analysis pipeline's results re-stated as checkable facts.
//
// Each of the four steps of Section 3 emits its side of the bargain:
//   step 1  window facts   — [E_i, L_i] plus the merge sets M_i / G_i the
//                            Figure 2/3 greedies committed to (Theorems 1/2),
//   step 2  partitions     — block membership plus the Theorem 5 separation
//                            witnesses (earlier blocks finish before later
//                            blocks may start),
//   step 3  bound witness  — the interval (t1, t2) whose Psi terms (Theorems
//                            3/4) sum to the demand that forces LB_r via
//                            Eq. 6.3,
//   step 4  cost facts     — the Eq. 7.1 weight sum, and for the dedicated
//                            model the primal assembly + LP dual vector
//                            certifying the Eq. 7.2 relaxation.
//
// A certificate carries VALUES, never code: src/verify/checker.hpp re-judges
// every fact against the theorem side-conditions using only the model
// (src/model), deliberately sharing nothing with the src/core producers. The
// JSON (de)serialization here is what tools/rtlb_check exchanges on disk.
#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/json.hpp"
#include "src/common/types.hpp"
#include "src/model/platform.hpp"

namespace rtlb {

/// Certificate JSON that cannot be understood at all (missing/ill-typed
/// fields, unknown version). Distinct from a WELL-FORMED certificate whose
/// facts are false — that is the checker's verdict, not a parse error.
class CertificateFormatError : public std::runtime_error {
 public:
  explicit CertificateFormatError(const std::string& what) : std::runtime_error(what) {}
};

/// Bumped when the JSON layout changes incompatibly.
inline constexpr int kCertificateVersion = 1;

/// Step 1: one task's window with the merge sets that justify it.
struct WindowFact {
  TaskId task = kInvalidTask;
  Time est = 0;  ///< E_i (Theorem 1: no schedule starts i earlier)
  Time lct = 0;  ///< L_i (Theorem 2: no schedule completes i later)
  /// M_i: predecessors merged when evaluating E_i (a prefix of the Figure 3
  /// candidate order attaining the minimum).
  std::vector<TaskId> merged_pred;
  /// G_i: successors merged when evaluating L_i (Figure 2 likewise).
  std::vector<TaskId> merged_succ;
};

/// Step 2: the Theorem 5 fact separating one block boundary: every task of
/// the blocks before the boundary completes by `earlier_finish`, and no task
/// after it may start before `later_start`.
struct SeparationFact {
  Time earlier_finish = 0;  ///< max L_i over all earlier blocks
  Time later_start = 0;     ///< min E_j over the next block
};

/// Step 2: the partition of ST_r with its boundary witnesses.
struct PartitionCert {
  ResourceId resource = kInvalidResource;
  std::vector<std::vector<TaskId>> blocks;
  /// One fact per boundary: size == blocks.size() - 1 (empty for <= 1 block).
  std::vector<SeparationFact> separations;
};

/// Step 3: one task's contribution Psi_i(t1, t2) to a witness interval.
struct PsiTerm {
  TaskId task = kInvalidTask;
  Time psi = 0;
};

/// Step 3: the interval achieving the Eq. 6.3 peak, with its Theta decomposed
/// into per-task Psi terms (zero terms omitted).
struct IntervalWitness {
  Time t1 = 0;
  Time t2 = 0;
  /// Theta: total demand forced into [t1, t2]; equals the sum of `terms`.
  Time demand = 0;
  std::vector<PsiTerm> terms;
};

/// Step 3: LB_r with its witness. `witness` is required whenever bound > 0
/// (bound == 0 claims nothing and needs no evidence).
struct BoundCert {
  ResourceId resource = kInvalidResource;
  std::int64_t bound = 0;
  std::optional<IntervalWitness> witness;
};

/// EXTENSION: a conjunctive pair bound LB_{a,b} (same witness scheme; every
/// term's task must use BOTH a and b).
struct JointCert {
  ResourceId a = kInvalidResource;
  ResourceId b = kInvalidResource;
  std::int64_t bound = 0;
  std::optional<IntervalWitness> witness;
};

/// Step 4, Eq. 7.1: cost >= sum of units * unit_cost, one term per analyzed
/// resource (in the same order as `Certificate::bounds`).
struct SharedCostTerm {
  ResourceId resource = kInvalidResource;
  std::int64_t units = 0;
  Cost unit_cost = 0;
};

struct SharedCostCert {
  Cost total = 0;
  std::vector<SharedCostTerm> terms;
};

/// Step 4, Eq. 7.2 (dedicated model). When feasible, `node_counts` is an
/// integral assembly satisfying every covering/hosting row with objective
/// exactly `total`, and `dual` is a feasible dual vector of the LP
/// relaxation whose value is `relaxation` — a machine-checkable proof that
/// EVERY system costs at least `relaxation`. (Exact ILP optimality of
/// `total` rests on the branch-and-bound solver and is outside the
/// certificate; the checker certifies relaxation <= cost and that `total`
/// is attained by a real assembly.) When infeasible, `infeasible_reason`
/// names a checkable cause.
struct DedicatedCostCert {
  bool feasible = false;

  /// One of: "task-unhostable" (detail_task has empty eta_i),
  /// "uncovered-resource" (detail_resource has bound > 0 but no node type
  /// supplies it), "uncovered-pair" (no node type carries both
  /// detail_resource and detail_resource_b), "no-node-types". Anything else
  /// — e.g. a solver node-limit abort — is NOT certifiable and is rejected.
  std::string infeasible_reason;
  TaskId detail_task = kInvalidTask;
  ResourceId detail_resource = kInvalidResource;
  ResourceId detail_resource_b = kInvalidResource;

  Cost total = 0;
  std::vector<std::int64_t> node_counts;  ///< primal witness x, one per node type
  double relaxation = 0;
  std::vector<double> dual;  ///< dual witness y, one per canonical row

  /// True when the program included the conjunctive pair rows (the
  /// joint-strengthened Eq. 7.2); determines the canonical row order the
  /// `dual` vector is indexed by.
  bool joint_rows = false;
};

/// The full pipeline certificate for one analyze() run.
struct Certificate {
  int version = kCertificateVersion;
  /// "shared" or "dedicated" — must match how the instance is checked.
  bool dedicated = false;
  std::size_t num_tasks = 0;

  std::vector<WindowFact> windows;          ///< one per task, ascending id
  std::vector<PartitionCert> partitions;    ///< resource_set() order
  std::vector<BoundCert> bounds;            ///< resource_set() order
  bool has_joint = false;                   ///< joint_bounds extension ran
  std::vector<JointCert> joint;             ///< pair order (a < b)
  SharedCostCert shared_cost;
  std::optional<DedicatedCostCert> dedicated_cost;
};

/// Serialize to the on-disk JSON layout (see docs/CERTIFICATES.md).
Json certificate_json(const Certificate& cert);

/// Rebuild a Certificate from parsed JSON. Throws CertificateFormatError on
/// any structural problem (wrong types, missing fields, unknown version,
/// out-of-range numbers). Values are NOT judged here — that is the checker.
Certificate parse_certificate(const Json& doc);

/// Convenience: JSON text -> Certificate. Throws JsonParseError on malformed
/// JSON and CertificateFormatError on a structurally bad document.
Certificate parse_certificate_text(std::string_view text);

}  // namespace rtlb
