// Step 1 of the lower-bound analysis: earliest start times (EST, Figure 3)
// and latest completion times (LCT, Figure 2) under merging.
//
// For every task the algorithms greedily decide which immediate
// predecessors/successors would be co-located with it (avoiding the message
// latency m_ij at the price of sequential execution), and return the loosest
// window [E_i, L_i] any feasible schedule can give the task. Theorems 1 and 2
// prove E_i is a lower bound on the start and L_i an upper bound on the
// completion of task i in ANY schedule meeting all constraints.
#pragma once

#include <span>
#include <vector>

#include "src/core/mergeable.hpp"
#include "src/model/application.hpp"

namespace rtlb {

/// Result of the EST/LCT pass over a whole application.
struct TaskWindows {
  /// E_i: earliest start times, indexed by TaskId.
  std::vector<Time> est;
  /// L_i: latest completion times, indexed by TaskId.
  std::vector<Time> lct;
  /// M_i: predecessors merged with i when evaluating E_i (Table 1 column).
  std::vector<std::vector<TaskId>> merged_pred;
  /// G_i: successors merged with i when evaluating L_i (Table 1 column).
  std::vector<std::vector<TaskId>> merged_succ;

  /// Width of task i's window; a negative value proves infeasibility.
  Time slack(const Application& app, TaskId i) const {
    return lct[i] - est[i] - app.task(i).comp;
  }
};

/// lst(A) (Sec 4.1): latest time a single processor/node could *start* the
/// sequential execution of `tasks`, each completing by its LCT. `tasks` may
/// be in any order; must be non-empty.
Time latest_start_of_set(const Application& app, const std::vector<Time>& lct,
                         std::span<const TaskId> tasks);

/// ect(A) (Sec 4.2): earliest time a single processor/node could *complete*
/// the sequential execution of `tasks`, each starting no earlier than its
/// EST. `tasks` may be in any order; must be non-empty.
Time earliest_completion_of_set(const Application& app, const std::vector<Time>& est,
                                std::span<const TaskId> tasks);

/// Run Figures 2 and 3 over the whole application (LCT in reverse
/// topological order, EST in topological order).
TaskWindows compute_windows(const Application& app, const MergeOracle& oracle);

/// Brute-force references used by the tests: evaluate Equations 4.1/4.5 over
/// EVERY mergeable subset A of successors/predecessors and take the best.
/// Exponential; only for small fan-in/out.
Time lct_exhaustive(const Application& app, const MergeOracle& oracle,
                    const std::vector<Time>& lct, TaskId i);
Time est_exhaustive(const Application& app, const MergeOracle& oracle,
                    const std::vector<Time>& est, TaskId i);

}  // namespace rtlb
