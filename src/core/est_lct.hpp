// Step 1 of the lower-bound analysis: earliest start times (EST, Figure 3)
// and latest completion times (LCT, Figure 2) under merging.
//
// For every task the algorithms greedily decide which immediate
// predecessors/successors would be co-located with it (avoiding the message
// latency m_ij at the price of sequential execution), and return the loosest
// window [E_i, L_i] any feasible schedule can give the task. Theorems 1 and 2
// prove E_i is a lower bound on the start and L_i an upper bound on the
// completion of task i in ANY schedule meeting all constraints.
//
// ENGINE. compute_windows() runs both figures over arena-backed flat
// structures: the task attributes the recurrences read (C_i, r_i, d_i and
// the per-edge message sizes) are snapshotted once into contiguous SoA
// arrays, each candidate's lms/emr term is evaluated exactly once (with a
// suffix-min/max array replacing the quadratic "remaining candidates" rescan
// of the figures as printed), and the greedy merge loop maintains its
// lst(G)/ect(M) packing INCREMENTALLY -- successive candidate sets differ by
// one task, so each step splices the new task into the kept packing order
// and refolds only the affected suffix instead of re-sorting and re-packing
// the whole set. All scratch lives in a per-worker arena reused across tasks
// and candidate sets; the steady-state merge search allocates nothing.
//
// With num_threads != 1 the two sweeps run as parallel source/sink rounds:
// round r processes every task at forward depth r (EST) and backward depth r
// (LCT) -- two independent value arrays, so the rounds interleave freely --
// chunked over the shared ThreadPool. Every task's window is a pure function
// of the model and its neighbors' already-final values, so the result is
// bit-identical at any thread count (same discipline as the bound engine).
//
// Verification: compute_windows_reference() preserves the original
// direct-from-the-figures implementation. Building with
// -DRTLB_WINDOWS_REFERENCE=ON (or setting the RTLB_WINDOWS_REFERENCE
// environment variable) cross-checks every compute_windows() call against it
// field for field -- the test-only tripwire for the flattened engine.
#pragma once

#include <span>
#include <vector>

#include "src/core/mergeable.hpp"
#include "src/model/application.hpp"

namespace rtlb {

/// Result of the EST/LCT pass over a whole application.
struct TaskWindows {
  /// E_i: earliest start times, indexed by TaskId.
  std::vector<Time> est;
  /// L_i: latest completion times, indexed by TaskId.
  std::vector<Time> lct;
  /// M_i: predecessors merged with i when evaluating E_i (Table 1 column).
  std::vector<std::vector<TaskId>> merged_pred;
  /// G_i: successors merged with i when evaluating L_i (Table 1 column).
  std::vector<std::vector<TaskId>> merged_succ;

  /// Width of task i's window; a negative value proves infeasibility.
  Time slack(const Application& app, TaskId i) const {
    return lct[i] - est[i] - app.task(i).comp;
  }

  /// Exact value equality over every field -- what session revalidation and
  /// the reference cross-check compare.
  bool operator==(const TaskWindows&) const = default;
};

/// lst(A) (Sec 4.1): latest time a single processor/node could *start* the
/// sequential execution of `tasks`, each completing by its LCT. `tasks` may
/// be in any order; must be non-empty.
Time latest_start_of_set(const Application& app, const std::vector<Time>& lct,
                         std::span<const TaskId> tasks);

/// ect(A) (Sec 4.2): earliest time a single processor/node could *complete*
/// the sequential execution of `tasks`, each starting no earlier than its
/// EST. `tasks` may be in any order; must be non-empty.
Time earliest_completion_of_set(const Application& app, const std::vector<Time>& est,
                                std::span<const TaskId> tasks);

/// Run Figures 2 and 3 over the whole application (LCT in reverse
/// topological order, EST in topological order). `num_threads` follows the
/// bound-engine convention: 1 = serial (default), 0 = one worker per
/// hardware thread, n > 1 = exactly n workers; the windows are bit-identical
/// at every value.
TaskWindows compute_windows(const Application& app, const MergeOracle& oracle,
                            int num_threads = 1);

/// The original per-merge-churn implementation, kept verbatim as the
/// reference for the flattened engine. Test/verification use only (see the
/// RTLB_WINDOWS_REFERENCE flag above); always serial.
TaskWindows compute_windows_reference(const Application& app, const MergeOracle& oracle);

/// Brute-force references used by the tests: evaluate Equations 4.1/4.5 over
/// EVERY mergeable subset A of successors/predecessors and take the best.
/// Exponential; only for small fan-in/out.
Time lct_exhaustive(const Application& app, const MergeOracle& oracle,
                    const std::vector<Time>& lct, TaskId i);
Time est_exhaustive(const Application& app, const MergeOracle& oracle,
                    const std::vector<Time>& est, TaskId i);

}  // namespace rtlb
