#include "src/core/partition.hpp"

#include <algorithm>

namespace rtlb {

ResourcePartition partition_tasks(const Application& app, const TaskWindows& windows,
                                  ResourceId r) {
  ResourcePartition out;
  out.resource = r;
  std::vector<TaskId> st = app.tasks_using(r);
  if (st.empty()) return out;

  // Figure 4 step 1: ascending EST (ties by id for determinism).
  std::sort(st.begin(), st.end(), [&](TaskId a, TaskId b) {
    if (windows.est[a] != windows.est[b]) return windows.est[a] < windows.est[b];
    return a < b;
  });

  PartitionBlock block;
  auto open = [&](TaskId i) {
    block.tasks = {i};
    block.start = windows.est[i];
    block.finish = windows.lct[i];
  };
  open(st[0]);
  for (std::size_t k = 1; k < st.size(); ++k) {
    const TaskId i = st[k];
    if (windows.est[i] < block.finish) {  // E_i < max_{j in P_rk} L_j
      block.tasks.push_back(i);
      block.start = std::min(block.start, windows.est[i]);
      block.finish = std::max(block.finish, windows.lct[i]);
    } else {
      out.blocks.push_back(std::move(block));
      open(i);
    }
  }
  out.blocks.push_back(std::move(block));
  return out;
}

std::vector<ResourcePartition> partition_all(const Application& app,
                                             const TaskWindows& windows) {
  std::vector<ResourcePartition> out;
  for (ResourceId r : app.resource_set()) {
    out.push_back(partition_tasks(app, windows, r));
  }
  return out;
}

bool is_valid_partition(const Application& app, const TaskWindows& windows,
                        const ResourcePartition& partition) {
  // (i) blocks cover ST_r and (ii) are disjoint.
  std::vector<TaskId> covered;
  for (const PartitionBlock& b : partition.blocks) {
    covered.insert(covered.end(), b.tasks.begin(), b.tasks.end());
  }
  std::vector<TaskId> sorted = covered;
  std::sort(sorted.begin(), sorted.end());
  if (std::adjacent_find(sorted.begin(), sorted.end()) != sorted.end()) return false;
  std::vector<TaskId> st = app.tasks_using(partition.resource);
  std::sort(st.begin(), st.end());
  if (sorted != st) return false;

  // (iii) ordering: max L of block k <= min E of every later block, and the
  // cached [start, finish] windows are consistent.
  for (std::size_t k = 0; k < partition.blocks.size(); ++k) {
    const PartitionBlock& b = partition.blocks[k];
    if (b.tasks.empty()) return false;
    Time lo = kTimeMax, hi = kTimeMin;
    for (TaskId i : b.tasks) {
      lo = std::min(lo, windows.est[i]);
      hi = std::max(hi, windows.lct[i]);
    }
    if (lo != b.start || hi != b.finish) return false;
    for (std::size_t l = k + 1; l < partition.blocks.size(); ++l) {
      for (TaskId j : partition.blocks[l].tasks) {
        if (windows.est[j] < hi) return false;
      }
    }
  }
  return true;
}

}  // namespace rtlb
