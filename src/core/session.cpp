#include "src/core/session.hpp"

#include <cstdlib>
#include <string>
#include <string_view>
#include <utility>

#include "src/core/pipeline.hpp"
#include "src/core/report.hpp"
#include "src/lint/recurrent.hpp"
#include "src/model/io.hpp"
#include "src/workload/workload.hpp"

namespace rtlb {

namespace {

/// Compile-time default (RTLB_SESSION_VERIFY, the ctest cross-check build)
/// or the environment variable of the same name.
bool default_verify() {
#ifdef RTLB_SESSION_VERIFY
  return true;
#else
  const char* env = std::getenv("RTLB_SESSION_VERIFY");
  return env != nullptr && *env != '\0' && std::string_view(env) != "0";
#endif
}

bool same_windows(const TaskWindows& a, const TaskWindows& b) {
  return a == b;  // TaskWindows::operator==: every field, exact values
}

/// The rows the Section-7 ILP reads from the bound stage: (resource, LB_r)
/// per resource. Witnesses and work counters do not feed the program.
bool same_bound_rows(const std::vector<ResourceBound>& a,
                     const std::vector<ResourceBound>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].resource != b[i].resource || a[i].bound != b[i].bound) return false;
  }
  return true;
}

/// The conjunctive rows the joint ILP reads: (a, b, LB_{a,b}).
bool same_joint_rows(const std::vector<JointBound>& a, const std::vector<JointBound>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].a != b[i].a || a[i].b != b[i].b || a[i].bound != b[i].bound) return false;
  }
  return true;
}

/// Exact joint comparison for the verify cross-check (the JSON report does
/// not serialize the joint rows, so they are compared field by field).
bool same_joint_exact(const std::vector<JointBound>& a, const std::vector<JointBound>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].a != b[i].a || a[i].b != b[i].b || a[i].bound != b[i].bound ||
        a[i].witness_t1 != b[i].witness_t1 || a[i].witness_t2 != b[i].witness_t2) {
      return false;
    }
  }
  return true;
}

/// Which lint passes a given dirty-flag state invalidates. Conservative by
/// pass NAME (unknown/custom passes are always dirty): the platform pass
/// reads task sets + menu only, so timing sweeps keep it clean; structural
/// and numeric read model scalars but never the platform; everything that
/// (directly or through the windows/absint context) depends on the merge
/// oracle is also platform-sensitive -- lint windows use the dedicated
/// oracle whenever a platform is PRESENT, regardless of options.model.
std::vector<bool> lint_dirty_mask(const Linter& linter, bool windows_dirty,
                                  bool demand_dirty, bool structure_dirty,
                                  bool platform_dirty) {
  std::vector<bool> dirty;
  dirty.reserve(linter.passes().size());
  for (const LintPass& pass : linter.passes()) {
    bool d = true;
    if (pass.name == "platform-coverage") {
      d = structure_dirty || platform_dirty;
    } else if (pass.name == "structural" || pass.name == "numeric-safety") {
      d = windows_dirty || demand_dirty || structure_dirty;
    } else if (pass.name == "temporal" || pass.name == "absint" ||
               pass.name == "dataflow" || pass.name == "hygiene") {
      d = windows_dirty || demand_dirty || structure_dirty || platform_dirty;
    }
    dirty.push_back(d);
  }
  return dirty;
}

/// The session's answers to the pipeline's per-stage reuse questions: dirty
/// FLAGS (what might have changed) plus value COMPARISON against the last
/// completed result (what actually did). Constructed per query, so it
/// captures the flags exactly as the mutators left them.
class SessionStageCache final : public StageCache {
 public:
  SessionStageCache(const AnalysisResult* prev, bool windows_dirty, bool demand_dirty,
                    bool structure_dirty, bool platform_dirty, BlockScanCache& blocks,
                    LintPassSlices& lint_slices, SessionStats& stats)
      : prev_(prev),
        windows_dirty_(windows_dirty),
        demand_dirty_(demand_dirty),
        structure_dirty_(structure_dirty),
        platform_dirty_(platform_dirty),
        blocks_(&blocks),
        lint_slices_(&lint_slices),
        stats_(&stats) {}

  std::optional<LintResult> serve_lint(const Application& app,
                                       const DedicatedPlatform* platform) override {
    // Always answered through the incremental driver: clean passes are
    // served from the stored slices, dirty ones re-run, and the slices are
    // recommitted -- so even a fully dirty gate run warms the next query.
    const Linter& linter = default_linter();
    const std::vector<bool> dirty = lint_dirty_mask(
        linter, windows_dirty_, demand_dirty_, structure_dirty_, platform_dirty_);
    return linter.run_with_reuse(app, platform, nullptr, *lint_slices_, dirty,
                                 &stats_->lint_pass_hits, &stats_->lint_pass_misses);
  }

  const TaskWindows* cached_windows() override {
    if (prev_ != nullptr && !windows_dirty_ && !structure_dirty_) return &prev_->windows;
    return nullptr;
  }

  bool revalidate_windows(const TaskWindows& fresh) override {
    // A delta that left every window value unchanged (a deadline already
    // clipped to the same tick, a message on a non-critical path)
    // revalidates everything downstream of the windows.
    return prev_ != nullptr && !structure_dirty_ && same_windows(fresh, prev_->windows);
  }

  const std::vector<ResourcePartition>* cached_partitions(bool windows_unchanged) override {
    if (windows_unchanged && prev_ != nullptr && !structure_dirty_) {
      return &prev_->partitions;
    }
    return nullptr;
  }

  const std::vector<ResourceBound>* cached_bounds(bool windows_unchanged) override {
    // Same windows and same Theta inputs mean the whole stage is a replay.
    if (windows_unchanged && prev_ != nullptr && !demand_dirty_ && !structure_dirty_) {
      return &prev_->bounds;
    }
    return nullptr;
  }

  const std::vector<JointBound>* cached_joint(bool windows_unchanged) override {
    if (windows_unchanged && prev_ != nullptr && !demand_dirty_ && !structure_dirty_) {
      return &prev_->joint;
    }
    return nullptr;
  }

  BlockScanCache* block_cache() override { return blocks_; }

  const DedicatedCostBound* cached_dedicated_cost(
      const std::vector<ResourceBound>& bounds,
      const std::vector<JointBound>& joint) override {
    // The ILP is only re-solved when a row it reads actually changed
    // (bounds plateau under many deltas, so synthesis/annealing loops skip
    // most solves).
    if (prev_ != nullptr && prev_->dedicated_cost.has_value() && !platform_dirty_ &&
        !structure_dirty_ && same_bound_rows(prev_->bounds, bounds) &&
        same_joint_rows(prev_->joint, joint)) {
      return &*prev_->dedicated_cost;
    }
    return nullptr;
  }

  void record(Stage stage, bool hit) override {
    switch (stage) {
      case Stage::kLintGate: ++stats_->gate_runs; break;
      case Stage::kWindows: ++(hit ? stats_->window_hits : stats_->window_misses); break;
      case Stage::kPartitions:
        ++(hit ? stats_->partition_hits : stats_->partition_misses);
        break;
      case Stage::kBounds: ++(hit ? stats_->bound_hits : stats_->bound_misses); break;
      case Stage::kCosts: ++(hit ? stats_->cost_hits : stats_->cost_misses); break;
    }
  }

  void record_joint(bool hit) override {
    ++(hit ? stats_->joint_hits : stats_->joint_misses);
  }

 private:
  const AnalysisResult* prev_;  ///< last completed result; null before the first
  bool windows_dirty_;
  bool demand_dirty_;
  bool structure_dirty_;
  bool platform_dirty_;
  BlockScanCache* blocks_;
  LintPassSlices* lint_slices_;  ///< the session's per-pass slice store
  SessionStats* stats_;
};

}  // namespace

AnalysisSession::AnalysisSession(Application app, AnalysisOptions options,
                                 const DedicatedPlatform* platform)
    : app_(std::move(app)),
      options_(options),
      platform_(platform ? std::optional<DedicatedPlatform>(*platform) : std::nullopt),
      verify_(default_verify()) {}

namespace {

/// The session's lowering path: template lint first (E5xx always refuses,
/// mirroring analyze(catalog, workload, ...)), then a validation-free
/// lowering of the now-known-clean templates.
Application lint_and_lower(const ResourceCatalog& catalog, const Workload& workload,
                           const DedicatedPlatform* platform) {
  LintResult wl = lint_workload(catalog, workload, platform);
  if (wl.has_errors()) throw LintGateError(std::move(wl));
  LowerOptions lower;
  lower.validate = false;
  Application app = lower_workload(catalog, workload, lower);
  app.validate();
  return app;
}

/// The no-op detector's currency: the lowered application's bytes (an empty
/// platform keeps the comparison app-only -- platform deltas have their own
/// mutator).
std::string lowered_fingerprint(const Application& app) {
  return serialize_instance(app, DedicatedPlatform{});
}

}  // namespace

AnalysisSession::AnalysisSession(const ResourceCatalog& catalog, Workload workload,
                                 AnalysisOptions options, const DedicatedPlatform* platform)
    : catalog_(std::make_unique<ResourceCatalog>(catalog)),
      workload_(std::move(workload)),
      app_(lint_and_lower(*catalog_, *workload_, platform)),
      options_(options),
      platform_(platform ? std::optional<DedicatedPlatform>(*platform) : std::nullopt),
      verify_(default_verify()) {
  lowered_bytes_ = lowered_fingerprint(app_);
}

Transaction& AnalysisSession::require_transaction(const std::string& name) {
  if (!workload_) {
    throw ModelError("template delta on a session over a flat Application");
  }
  for (Transaction& tr : workload_->transactions) {
    if (tr.name == name) return tr;
  }
  throw ModelError("unknown transaction '" + name + "'");
}

void AnalysisSession::relower_workload() {
  Application app = lint_and_lower(*catalog_, *workload_, platform());
  std::string bytes = lowered_fingerprint(app);
  if (bytes == lowered_bytes_) return;  // lowers identically: keep everything
  lowered_bytes_ = std::move(bytes);
  replace_application(std::move(app));
}

void AnalysisSession::set_transaction_period(const std::string& transaction, Time period) {
  Transaction& tr = require_transaction(transaction);
  if (tr.period == period) return;
  const Time previous = tr.period;
  tr.period = period;
  try {
    relower_workload();
  } catch (...) {
    tr.period = previous;  // keep the session consistent on refusal
    throw;
  }
}

void AnalysisSession::set_transaction_offset(const std::string& transaction, Time offset) {
  Transaction& tr = require_transaction(transaction);
  if (tr.offset == offset) return;
  const Time previous = tr.offset;
  tr.offset = offset;
  try {
    relower_workload();
  } catch (...) {
    tr.offset = previous;
    throw;
  }
}

void AnalysisSession::set_template_comp(const std::string& transaction, const std::string& task,
                                        Time comp) {
  Transaction& tr = require_transaction(transaction);
  TemplateTask* target = nullptr;
  for (TemplateTask& t : tr.tasks) {
    if (t.name == task) target = &t;
  }
  if (!target) {
    throw ModelError("unknown template task '" + task + "' in transaction '" + transaction +
                     "'");
  }
  if (target->comp == comp) return;
  const Time previous = target->comp;
  target->comp = comp;
  try {
    relower_workload();
  } catch (...) {
    target->comp = previous;
    throw;
  }
}

void AnalysisSession::require_valid_task(TaskId i) const {
  if (i >= app_.num_tasks()) {
    throw ModelError("AnalysisSession: task id out of range");
  }
}

void AnalysisSession::set_comp(TaskId i, Time comp) {
  require_valid_task(i);
  if (app_.task(i).comp == comp) return;
  app_.task(i).comp = comp;
  windows_dirty_ = true;  // C_i feeds the EST/LCT recurrences...
  demand_dirty_ = true;   // ...and Theta directly.
}

void AnalysisSession::set_release(TaskId i, Time release) {
  require_valid_task(i);
  if (app_.task(i).release == release) return;
  app_.task(i).release = release;
  windows_dirty_ = true;
}

void AnalysisSession::set_deadline(TaskId i, Time deadline) {
  require_valid_task(i);
  if (app_.task(i).deadline == deadline) return;
  app_.task(i).deadline = deadline;
  windows_dirty_ = true;
}

void AnalysisSession::set_preemptive(TaskId i, bool preemptive) {
  require_valid_task(i);
  if (app_.task(i).preemptive == preemptive) return;
  app_.task(i).preemptive = preemptive;
  demand_dirty_ = true;  // Theorem 3 vs 4 overlap; the windows never read it.
}

void AnalysisSession::set_message(TaskId from, TaskId to, Time msg_size) {
  require_valid_task(from);
  require_valid_task(to);
  bool exists = false;
  for (TaskId s : app_.successors(from)) exists |= s == to;
  if (!exists) {
    throw ModelError("set_message: no edge " + std::to_string(from) + " -> " +
                     std::to_string(to));
  }
  if (app_.message(from, to) == msg_size) return;
  app_.set_message(from, to, msg_size);
  windows_dirty_ = true;
}

void AnalysisSession::set_platform(const DedicatedPlatform* platform) {
  platform_ = platform ? std::optional<DedicatedPlatform>(*platform) : std::nullopt;
  platform_dirty_ = true;
  // Only the dedicated merge oracle consults the menu; under the shared
  // model a platform swap re-solves the ILP against unchanged bounds.
  if (options_.model == SystemModel::Dedicated) windows_dirty_ = true;
}

void AnalysisSession::replace_application(Application app) {
  app_ = std::move(app);
  windows_dirty_ = true;
  demand_dirty_ = true;
  structure_dirty_ = true;
}

const AnalysisResult& AnalysisSession::analyze() {
  const bool dedicated = options_.model == SystemModel::Dedicated;
  if (dedicated && !platform_) {
    throw ModelError("analyze: dedicated model requires a platform");
  }

  if (have_result_ && !windows_dirty_ && !demand_dirty_ && !structure_dirty_ &&
      !platform_dirty_) {
    ++stats_.queries;
    ++stats_.query_hits;
    // The tripwire covers served-from-cache queries too: re-judge the cached
    // certificate against the live model so a stale or corrupted cache entry
    // cannot be handed out as verified.
    if (options_.check_certificates && result_.certificate) {
      CheckReport report = check_certificate(*result_.certificate, app_, platform());
      if (!report.valid) throw CertificateCheckError(std::move(report));
      result_.certificate_check = std::move(report);
    }
    return result_;
  }

  // Everything else -- the pre-flight gate (which runs on every non-hit
  // query so refusals and their exception types match a cold call exactly),
  // stage sequencing, certificate emit/check -- is the shared pipeline; the
  // session only answers its reuse questions through SessionStageCache.
  // run_pipeline() builds a fresh result and throws before returning it on
  // any refusal, so `result_` stays untouched until the query completes and
  // a refused query leaves the session serving its last completed state.
  SessionStageCache cache(have_result_ ? &result_ : nullptr, windows_dirty_,
                          demand_dirty_, structure_dirty_, platform_dirty_,
                          block_cache_, lint_slices_, stats_);
  AnalysisResult next = run_pipeline(app_, options_, platform(), cache);

  if (verify_) {
    // The cross-check must not re-trace: a traced cold run would double
    // every span in the caller's Trace.
    AnalysisOptions cold_options = options_;
    cold_options.trace = nullptr;
    const AnalysisResult cold = rtlb::analyze(app_, cold_options, platform());
    RTLB_CHECK(report_string(app_, next) == report_string(app_, cold),
               "AnalysisSession result diverged from cold analyze()");
    RTLB_CHECK(same_joint_exact(next.joint, cold.joint),
               "AnalysisSession joint bounds diverged from cold analyze()");
    ++stats_.verified;
  }

  result_ = std::move(next);
  have_result_ = true;
  windows_dirty_ = demand_dirty_ = structure_dirty_ = platform_dirty_ = false;
  ++stats_.queries;
  return result_;
}

SessionStats AnalysisSession::stats() const {
  SessionStats s = stats_;
  s.block_hits = block_cache_.hits();
  s.block_misses = block_cache_.misses();
  return s;
}

}  // namespace rtlb
