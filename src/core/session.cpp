#include "src/core/session.hpp"

#include <cstdlib>
#include <string>
#include <string_view>
#include <utility>

#include "src/core/report.hpp"
#include "src/verify/emit.hpp"

namespace rtlb {

namespace {

/// Compile-time default (RTLB_SESSION_VERIFY, the ctest cross-check build)
/// or the environment variable of the same name.
bool default_verify() {
#ifdef RTLB_SESSION_VERIFY
  return true;
#else
  const char* env = std::getenv("RTLB_SESSION_VERIFY");
  return env != nullptr && *env != '\0' && std::string_view(env) != "0";
#endif
}

bool same_windows(const TaskWindows& a, const TaskWindows& b) {
  return a.est == b.est && a.lct == b.lct && a.merged_pred == b.merged_pred &&
         a.merged_succ == b.merged_succ;
}

/// The rows the Section-7 ILP reads from the bound stage: (resource, LB_r)
/// per resource. Witnesses and work counters do not feed the program.
bool same_bound_rows(const std::vector<ResourceBound>& a,
                     const std::vector<ResourceBound>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].resource != b[i].resource || a[i].bound != b[i].bound) return false;
  }
  return true;
}

/// The conjunctive rows the joint ILP reads: (a, b, LB_{a,b}).
bool same_joint_rows(const std::vector<JointBound>& a, const std::vector<JointBound>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].a != b[i].a || a[i].b != b[i].b || a[i].bound != b[i].bound) return false;
  }
  return true;
}

/// Exact joint comparison for the verify cross-check (the JSON report does
/// not serialize the joint rows, so they are compared field by field).
bool same_joint_exact(const std::vector<JointBound>& a, const std::vector<JointBound>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].a != b[i].a || a[i].b != b[i].b || a[i].bound != b[i].bound ||
        a[i].witness_t1 != b[i].witness_t1 || a[i].witness_t2 != b[i].witness_t2) {
      return false;
    }
  }
  return true;
}

}  // namespace

AnalysisSession::AnalysisSession(Application app, AnalysisOptions options,
                                 const DedicatedPlatform* platform)
    : app_(std::move(app)),
      options_(options),
      platform_(platform ? std::optional<DedicatedPlatform>(*platform) : std::nullopt),
      verify_(default_verify()) {}

void AnalysisSession::require_valid_task(TaskId i) const {
  if (i >= app_.num_tasks()) {
    throw ModelError("AnalysisSession: task id out of range");
  }
}

void AnalysisSession::set_comp(TaskId i, Time comp) {
  require_valid_task(i);
  if (app_.task(i).comp == comp) return;
  app_.task(i).comp = comp;
  windows_dirty_ = true;  // C_i feeds the EST/LCT recurrences...
  demand_dirty_ = true;   // ...and Theta directly.
}

void AnalysisSession::set_release(TaskId i, Time release) {
  require_valid_task(i);
  if (app_.task(i).release == release) return;
  app_.task(i).release = release;
  windows_dirty_ = true;
}

void AnalysisSession::set_deadline(TaskId i, Time deadline) {
  require_valid_task(i);
  if (app_.task(i).deadline == deadline) return;
  app_.task(i).deadline = deadline;
  windows_dirty_ = true;
}

void AnalysisSession::set_preemptive(TaskId i, bool preemptive) {
  require_valid_task(i);
  if (app_.task(i).preemptive == preemptive) return;
  app_.task(i).preemptive = preemptive;
  demand_dirty_ = true;  // Theorem 3 vs 4 overlap; the windows never read it.
}

void AnalysisSession::set_message(TaskId from, TaskId to, Time msg_size) {
  require_valid_task(from);
  require_valid_task(to);
  bool exists = false;
  for (TaskId s : app_.successors(from)) exists |= s == to;
  if (!exists) {
    throw ModelError("set_message: no edge " + std::to_string(from) + " -> " +
                     std::to_string(to));
  }
  if (app_.message(from, to) == msg_size) return;
  app_.set_message(from, to, msg_size);
  windows_dirty_ = true;
}

void AnalysisSession::set_platform(const DedicatedPlatform* platform) {
  platform_ = platform ? std::optional<DedicatedPlatform>(*platform) : std::nullopt;
  platform_dirty_ = true;
  // Only the dedicated merge oracle consults the menu; under the shared
  // model a platform swap re-solves the ILP against unchanged bounds.
  if (options_.model == SystemModel::Dedicated) windows_dirty_ = true;
}

void AnalysisSession::replace_application(Application app) {
  app_ = std::move(app);
  windows_dirty_ = true;
  demand_dirty_ = true;
  structure_dirty_ = true;
}

const AnalysisResult& AnalysisSession::analyze() {
  const bool dedicated = options_.model == SystemModel::Dedicated;
  if (dedicated && !platform_) {
    throw ModelError("analyze: dedicated model requires a platform");
  }

  if (have_result_ && !windows_dirty_ && !demand_dirty_ && !structure_dirty_ &&
      !platform_dirty_) {
    ++stats_.queries;
    ++stats_.query_hits;
    // The tripwire covers served-from-cache queries too: re-judge the cached
    // certificate against the live model so a stale or corrupted cache entry
    // cannot be handed out as verified.
    if (options_.check_certificates && result_.certificate) {
      CheckReport report = check_certificate(*result_.certificate, app_, platform());
      if (!report.valid) throw CertificateCheckError(std::move(report));
      result_.certificate_check = std::move(report);
    }
    return result_;
  }

  // Pre-flight gate, replicated from analyze() verbatim -- it runs on every
  // non-hit query so refusals (and their exception types) match a cold call
  // exactly. `result_` stays untouched until the query completes, so a
  // refused query leaves the session serving its last completed state.
  std::optional<LintResult> lint_result;
  if (options_.lint_level == LintLevel::kOff) {
    app_.validate();
  } else {
    LintResult lr = lint(app_, platform());
    bool refused = false;
    switch (options_.lint_level) {
      case LintLevel::kOff: break;
      case LintLevel::kReport:
        for (const Diagnostic& d : lr.diagnostics) {
          refused |= d.severity == Severity::kError && d.code.starts_with("RTLB-E0");
        }
        break;
      case LintLevel::kErrors: refused = lr.has_errors(); break;
      case LintLevel::kWarnings: refused = lr.has_errors() || lr.warnings > 0; break;
    }
    if (refused) throw LintGateError(std::move(lr));
    lint_result = std::move(lr);
  }

  const AnalysisResult& prev = result_;
  AnalysisResult next;
  next.lint = std::move(lint_result);
  next.lb_options = options_.lower_bound;

  // Step 1: EST/LCT. Even when the recompute cannot be skipped, compare the
  // content: a delta that left every window value unchanged (a deadline
  // already clipped to the same tick, a message on a non-critical path)
  // revalidates everything downstream of the windows.
  bool windows_same = false;
  if (have_result_ && !windows_dirty_ && !structure_dirty_) {
    next.windows = prev.windows;
    windows_same = true;
    ++stats_.window_hits;
  } else {
    if (dedicated) {
      DedicatedMergeOracle oracle(*platform_);
      next.windows = compute_windows(app_, oracle);
    } else {
      SharedMergeOracle oracle;
      next.windows = compute_windows(app_, oracle);
    }
    ++stats_.window_misses;
    windows_same =
        have_result_ && !structure_dirty_ && same_windows(next.windows, prev.windows);
  }

  // Step 2: partitions are a pure function of the task sets and windows.
  if (windows_same && !structure_dirty_) {
    next.partitions = prev.partitions;
    ++stats_.partition_hits;
  } else {
    next.partitions = partition_all(app_, next.windows);
    ++stats_.partition_misses;
  }

  // Step 3: bounds. Same windows and same Theta inputs mean the whole stage
  // is a replay; otherwise the block cache reuses every partition block the
  // delta left value-unchanged (Theorem 5 independence).
  if (windows_same && !demand_dirty_ && !structure_dirty_) {
    next.bounds = prev.bounds;
  } else {
    next.bounds = all_resource_bounds_cached(app_, next.windows, options_.lower_bound,
                                             block_cache_);
  }
  if (options_.joint_bounds) {
    if (windows_same && !demand_dirty_ && !structure_dirty_) {
      next.joint = prev.joint;
    } else {
      next.joint = joint_lower_bounds(app_, next.windows);
    }
  }

  // Step 4: Eq. 7.1 is a trivial sum; the dedicated ILP is only re-solved
  // when a row it reads actually changed (bounds plateau under many deltas,
  // so synthesis/annealing loops skip most solves).
  next.shared_cost = shared_cost_bound(app_, next.bounds);
  if (platform_) {
    const bool rows_same = have_result_ && prev.dedicated_cost.has_value() &&
                           !platform_dirty_ && !structure_dirty_ &&
                           same_bound_rows(prev.bounds, next.bounds) &&
                           same_joint_rows(prev.joint, next.joint);
    if (rows_same) {
      next.dedicated_cost = prev.dedicated_cost;
      ++stats_.cost_hits;
    } else {
      next.dedicated_cost =
          options_.joint_bounds
              ? dedicated_cost_bound_joint(app_, *platform_, next.bounds, next.joint)
              : dedicated_cost_bound(app_, *platform_, next.bounds);
      ++stats_.cost_misses;
    }
  }

  // Certificate layer, mirroring the cold analyze() exactly (the emitted
  // facts are pure functions of the result, so a bit-identical `next` yields
  // a bit-identical certificate -- which the verify_ cross-check relies on).
  if (options_.emit_certificates || options_.check_certificates) {
    next.certificate = build_certificate(app_, options_, platform(), next);
    if (options_.check_certificates) {
      CheckReport report = check_certificate(*next.certificate, app_, platform());
      if (!report.valid) throw CertificateCheckError(std::move(report));
      next.certificate_check = std::move(report);
    }
  }

  if (verify_) {
    const AnalysisResult cold = rtlb::analyze(app_, options_, platform());
    RTLB_CHECK(report_string(app_, next) == report_string(app_, cold),
               "AnalysisSession result diverged from cold analyze()");
    RTLB_CHECK(same_joint_exact(next.joint, cold.joint),
               "AnalysisSession joint bounds diverged from cold analyze()");
    ++stats_.verified;
  }

  result_ = std::move(next);
  have_result_ = true;
  windows_dirty_ = demand_dirty_ = structure_dirty_ = platform_dirty_ = false;
  ++stats_.queries;
  return result_;
}

SessionStats AnalysisSession::stats() const {
  SessionStats s = stats_;
  s.block_hits = block_cache_.hits();
  s.block_misses = block_cache_.misses();
  return s;
}

}  // namespace rtlb
