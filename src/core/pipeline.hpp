// The unified analysis pipeline: one typed, instrumented stage sequence
// shared by every driver.
//
// The paper's analysis is an explicitly staged computation -- EST/LCT
// merging (Figs. 2-3), partitioning (Fig. 4), per-resource LB_r
// maximization (Eq. 6.3), then cost bounds (Eqs. 7.1/7.2) -- and before
// this module existed the stage sequencing lived in three diverging places
// (cold analyze(), the AnalysisSession refresh, and their certificate
// glue), kept bit-identical by convention and test alone. run_pipeline()
// is now the ONLY place that sequences stages:
//
//   kLintGate    pre-flight gate (Application::validate at kOff, else the
//                linter + the refusal policy of lint_gate_refuses)
//   kWindows     EST/LCT under the model's merge oracle
//   kPartitions  per-resource window-disjoint blocks (Theorem 5)
//   kBounds      LB_r per resource (+ conjunctive joint rows if asked)
//   kCosts       Eq. 7.1 sum and, with a platform, the Section-7 ILP
//
// with certificate emit/check as a post-stage (not a Stage: it restates the
// result, it does not produce analysis values).
//
// Reuse is delegated to a StageCache: before recomputing a stage the
// pipeline offers the cache a chance to serve the previous artifact, and
// after recomputing it reports the fresh value so the cache can revalidate
// downstream decisions by VALUE (a recompute that changed nothing keeps
// every later stage reusable). The default StageCache caches nothing --
// that is the cold analyze() path; AnalysisSession passes its
// dirty-flag/value-comparison cache. Either way the computed values are
// bit-identical by construction: a cache may only serve an artifact that is
// value-equal to what the recompute would produce.
//
// Instrumentation: when AnalysisOptions::trace names a Trace, the run
// records a "pipeline" root span with one child span per stage and work
// counters (tasks, blocks, intervals evaluated, block-cache hits,
// thread-pool tasks dispatched, ILP nodes). Stage names are exported via
// stage_names() so tools can check emitted traces exhaustively.
#pragma once

#include <optional>
#include <span>

#include "src/core/analysis.hpp"

namespace rtlb {

/// The five pipeline stages, in execution order.
enum class Stage {
  kLintGate = 0,
  kWindows,
  kPartitions,
  kBounds,
  kCosts,
};

inline constexpr int kNumStages = 5;

/// Stable stage name ("lint_gate", "windows", "partitions", "bounds",
/// "costs") -- also the span names an instrumented run emits.
const char* stage_name(Stage stage);

/// All five names in Stage order, for tools that validate traces.
std::span<const char* const> stage_names();

// -- Per-stage artifact structs. Each stage's output, exactly as it lands
// -- on the AnalysisResult; the structs exist so caches and tests can talk
// -- about one stage's product without carrying a whole result around.

struct LintGateArtifact {
  /// Diagnostics recorded on the result; nullopt at LintLevel::kOff.
  std::optional<LintResult> lint;
};

struct WindowsArtifact {
  TaskWindows windows;
  /// True when a StageCache established the windows are value-identical to
  /// the previous query's (served verbatim OR recomputed equal), which is
  /// what downstream reuse decisions key on.
  bool unchanged = false;
};

struct PartitionsArtifact {
  std::vector<ResourcePartition> partitions;
};

struct BoundsArtifact {
  std::vector<ResourceBound> bounds;
  std::vector<JointBound> joint;  ///< empty unless options.joint_bounds
};

struct CostsArtifact {
  SharedCostBound shared;
  std::optional<DedicatedCostBound> dedicated;
};

/// Per-stage reuse policy. run_pipeline() consults it before and after each
/// stage; every default answers "nothing cached", which is the cold path.
///
/// CONTRACT: a cache may only return an artifact that is value-equal to
/// what the stage recompute would produce for the current inputs -- reuse
/// must be a proof, not a heuristic (AnalysisSession derives its proofs
/// from dirty flags plus value comparison; see src/core/session.hpp).
class StageCache {
 public:
  virtual ~StageCache() = default;

  /// kLintGate: serve a full LintResult -- bit-identical to a fresh
  /// lint(app, platform) -- assembled from cached per-pass slices, or
  /// nullopt to run the linter cold. Only consulted at lint levels other
  /// than kOff (kOff never lints); the refusal policy is applied to the
  /// served result exactly as to a fresh one.
  virtual std::optional<LintResult> serve_lint(const Application& app,
                                               const DedicatedPlatform* platform) {
    (void)app;
    (void)platform;
    return std::nullopt;
  }

  /// kWindows: previous windows to serve verbatim, or nullptr to recompute.
  virtual const TaskWindows* cached_windows() { return nullptr; }

  /// Called after a windows recompute with the fresh value; return true
  /// when it is value-equal to the previous query's windows (and the task
  /// structure is unchanged), re-enabling downstream reuse.
  virtual bool revalidate_windows(const TaskWindows& fresh) {
    (void)fresh;
    return false;
  }

  /// kPartitions / kBounds: previous artifacts, offered only the pipeline's
  /// windows_unchanged verdict (a cache must still fold in its own
  /// structure/demand knowledge).
  virtual const std::vector<ResourcePartition>* cached_partitions(bool windows_unchanged) {
    (void)windows_unchanged;
    return nullptr;
  }
  virtual const std::vector<ResourceBound>* cached_bounds(bool windows_unchanged) {
    (void)windows_unchanged;
    return nullptr;
  }
  virtual const std::vector<JointBound>* cached_joint(bool windows_unchanged) {
    (void)windows_unchanged;
    return nullptr;
  }

  /// Block-level memo table for bound recomputes; null scans uncached.
  /// (Stage-level reuse above skips the scan entirely; this reuses
  /// individual untouched blocks when the stage does rescan.)
  virtual BlockScanCache* block_cache() { return nullptr; }

  /// kCosts: previous dedicated solve, offered the freshly computed rows it
  /// would read -- return it only when those match the previous query's.
  /// Only consulted when a platform is present.
  virtual const DedicatedCostBound* cached_dedicated_cost(
      const std::vector<ResourceBound>& bounds, const std::vector<JointBound>& joint) {
    (void)bounds;
    (void)joint;
    return nullptr;
  }

  /// Accounting hook: called once per stage decision (kLintGate always
  /// misses -- the gate is never cached; kCosts only reports when a
  /// dedicated solve decision was made, matching the historical counters).
  virtual void record(Stage stage, bool hit) {
    (void)stage;
    (void)hit;
  }

  /// Accounting for the conjunctive joint rows (a sub-product of kBounds);
  /// called only when options.joint_bounds is set.
  virtual void record_joint(bool hit) { (void)hit; }
};

/// The kLintGate refusal policy -- the ONE place the four LintLevel
/// policies live (analyze(), AnalysisSession, rtlb_lint, and rtlb_check all
/// judge through this): kOff never refuses here (validate() handles it),
/// kReport refuses structural (RTLB-E0xx) errors only -- the same refusal
/// set as Application::validate() -- kErrors refuses any error-level
/// finding, kWarnings refuses warnings too.
bool lint_gate_refuses(const LintResult& result, LintLevel level);

/// Run the kLintGate stage standalone, exactly as the pipeline does:
/// Application::validate() at kOff (throws ModelError), otherwise lint the
/// instance and throw LintGateError when lint_gate_refuses(). `lines` (may
/// be null) attributes findings to source lines, as rtlb_lint does.
LintGateArtifact run_lint_gate(const Application& app, const DedicatedPlatform* platform,
                               LintLevel level, const SourceMap* lines = nullptr);

/// Run all stages (plus the certificate post-stage) through `cache`,
/// tracing into options.trace when set. This is the only function in the
/// library that sequences compute_windows / partition_all /
/// all_resource_bounds* / *cost_bound* / joint_lower_bounds.
AnalysisResult run_pipeline(const Application& app, const AnalysisOptions& options,
                            const DedicatedPlatform* platform, StageCache& cache);

/// Cold run: an empty StageCache (what analyze() forwards to).
AnalysisResult run_pipeline(const Application& app, const AnalysisOptions& options = {},
                            const DedicatedPlatform* platform = nullptr);

}  // namespace rtlb
