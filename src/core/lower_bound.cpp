#include "src/core/lower_bound.hpp"

#include <algorithm>
#include <limits>
#include <utility>

#include "src/common/thread_pool.hpp"
#include "src/core/overlap.hpp"

namespace rtlb {

namespace {

/// Target number of (t1, t2) pairs per scan unit without pruning. Rows are
/// grouped into units by pair count (row l of an n-point block holds n-1-l
/// pairs) so the units are load-balanced.
constexpr std::uint64_t kPairsPerUnit = 4096;

/// Target number of SURVIVING pairs per scan unit with pruning on. The
/// nominal pair count wildly overstates a pruned unit's real work: the
/// probe-seeded floor breaks out of most rows after a few pairs, so units
/// sized by nominal pairs degenerate into a few units holding nearly all of
/// the surviving work -- the pool idles and parallel+prune used to run no
/// faster than serial+prune. Pruned units are therefore sized by the number
/// of pairs that survive the probe floor (see plan_block_units), which
/// spreads the real work evenly. The grain is smaller than kPairsPerUnit
/// because surviving pairs all pay a full Theta evaluation, where nominal
/// pairs are mostly a single pruned comparison.
constexpr std::uint64_t kSurvivingPairsPerUnit = 256;

/// What one unit (or a block's probe pass) reports back; merged in
/// deterministic order afterwards. Public as BlockScanResult so the cached
/// query path can store folded per-block copies.
using UnitResult = BlockScanResult;

/// Accumulate `r` into `acc` with the engine's reduction rule: work adds up,
/// the peak is the maximum, and the witness is the FIRST result (in fold
/// order) that attains the peak -- a strictly-greater test, so later ties
/// never displace an earlier witness. Folding a block's units into one
/// UnitResult and absorbing that is therefore equivalent to absorbing the
/// units one by one, which is what makes per-block caching exact.
void fold_unit(UnitResult& acc, const UnitResult& r) {
  acc.evaluated += r.evaluated;
  if (r.has_witness && r.peak > acc.peak) {
    acc.peak = r.peak;
    acc.witness_t1 = r.witness_t1;
    acc.witness_t2 = r.witness_t2;
    acc.witness_demand = r.witness_demand;
    acc.has_witness = true;
  }
}

/// One partition block prepared for scanning: its task set, the sorted
/// unique candidate endpoints {E_i, L_i}, the block's total computation
/// time (an upper bound on Theta over ANY interval), and -- when pruning is
/// on -- the probe result that seeds every unit's prune floor.
struct BlockScan {
  std::vector<TaskId> tasks;
  std::vector<Time> points;
  Time total_demand = 0;
  UnitResult probe;
  /// The scan loop's working set, flattened: Psi reads (comp, E, L,
  /// preemptive) per task and nothing else, so the inner loop walks four
  /// contiguous arrays instead of pointer-chasing Task structs and separate
  /// window vectors per pair. Original block.tasks order (the overflow
  /// slow path iterates it to keep historical behaviour exactly).
  std::vector<Time> comp, est, lct;
  std::vector<char> preemptive;
  /// The same four attributes re-sorted by EST ascending: a task overlaps
  /// [t1, t2] only if E_i < t2 AND L_i > t1, and L_i <= E_i + max_window
  /// bounds the second condition by E_i > t1 - max_window, so each Theta
  /// evaluation walks one contiguous EST range (two binary searches)
  /// instead of branching through the whole block. The tighter the windows,
  /// the smaller the range -- exactly the instances whose scans are big.
  std::vector<Time> comp_by_est, est_by_est, lct_by_est;
  std::vector<char> preemptive_by_est;
  Time max_window = 0;  ///< max over tasks of L_i - E_i
};

/// Theta over a block from its flat arrays; value-identical to
/// demand(app, windows, block.tasks, ...) -- the same multiset of Psi terms
/// (zero terms dropped, which cannot change an exact sum) and the same
/// overflow rejection.
///
/// Fast path: Psi_i <= C_i, so every partial sum is bounded by Sum C_i =
/// total_demand. When that total itself did not saturate, no Theta sum can
/// overflow, the per-add check is provably dead, and the sum is
/// order-independent -- which is what licenses the EST-sorted iteration
/// order and the E_i >= t2 prefix cut. A saturated total falls back to the
/// original order WITH the per-add check, preserving the historical
/// first-overflow behaviour.
/// Index range [begin, end) into the *_by_est arrays of the tasks that can
/// overlap [t1, t2]: E_i < t2 directly, and L_i > t1 requires
/// E_i > t1 - max_window (windows are at most max_window wide); t1 is a
/// window endpoint, so no underflow.
struct EstRange {
  std::size_t begin = 0;
  std::size_t end = 0;
};

EstRange est_range(const BlockScan& block, Time t1, Time t2) {
  const auto first = block.est_by_est.begin();
  const auto hi = std::lower_bound(first, block.est_by_est.end(), t2);
  const auto lo = std::upper_bound(first, hi, t1 - block.max_window);
  return {static_cast<std::size_t>(lo - first), static_cast<std::size_t>(hi - first)};
}

Time demand_est_range(const BlockScan& block, EstRange r, Time t1, Time t2) {
  Time sum = 0;
  for (std::size_t i = r.begin; i < r.end; ++i) {
    // Each overlap term is <= C_i, so the sum is <= the block's total
    // demand, which the cache construction already proved within Time via
    // __builtin_add_overflow (BlockScan::total_demand).
    // audit-ok: RTLB-A302 sum bounded by total_demand, proved at cache build
    sum += block.preemptive_by_est[i]
               ? overlap_preemptive(block.comp_by_est[i], block.est_by_est[i],
                                    block.lct_by_est[i], t1, t2)
               : overlap_nonpreemptive(block.comp_by_est[i], block.est_by_est[i],
                                       block.lct_by_est[i], t1, t2);
  }
  return sum;
}

Time demand_flat(const BlockScan& block, Time t1, Time t2) {
  if (block.total_demand != std::numeric_limits<Time>::max()) {
    return demand_est_range(block, est_range(block, t1, t2), t1, t2);
  }
  Time sum = 0;
  for (std::size_t i = 0; i < block.comp.size(); ++i) {
    const Time psi = block.preemptive[i]
                         ? overlap_preemptive(block.comp[i], block.est[i], block.lct[i], t1, t2)
                         : overlap_nonpreemptive(block.comp[i], block.est[i], block.lct[i], t1, t2);
    if (__builtin_add_overflow(sum, psi, &sum)) {
      throw ModelError("demand: accumulated Theta overflows Time");
    }
  }
  return sum;
}

/// A chunk of consecutive left endpoints [l_begin, l_end) of one block.
struct ScanUnit {
  std::size_t block = 0;
  std::size_t l_begin = 0;
  std::size_t l_end = 0;
};

/// The full decomposition of one density maximization.
struct ScanPlan {
  std::vector<BlockScan> blocks;
  std::vector<ScanUnit> units;
};

/// The pruning probe: evaluate each task's own [E_i, L_i] window (these are
/// genuine candidate intervals, and a stacked burst of tasks shows its full
/// density over any member's window). The result is a lower bound on the
/// block's true peak that every unit can prune against from its first row --
/// crucial because units scan with fresh incumbents. Runs once per block,
/// deterministically, so results stay thread-count independent.
UnitResult probe_block(const Application& app, const TaskWindows& windows,
                       const BlockScan& block) {
  (void)app;
  (void)windows;
  UnitResult res;
  for (std::size_t k = 0; k < block.tasks.size(); ++k) {
    const Time t1 = block.est[k];
    const Time t2 = block.lct[k];
    if (t1 >= t2) continue;
    const Time theta = demand_flat(block, t1, t2);
    ++res.evaluated;
    if (Ratio{theta, t2 - t1} > res.peak) {
      res.peak = Ratio{theta, t2 - t1};
      res.witness_t1 = t1;
      res.witness_t2 = t2;
      res.witness_demand = theta;
      res.has_witness = true;
    }
  }
  return res;
}

/// Append one block (geometry only) to the plan. Scan units are built later
/// by plan_block_units, AFTER the pruning probe has run, because pruned
/// units are sized by how much work survives the probe floor. The probe is
/// not run here either -- callers that scan the block run it themselves (the
/// cached query path skips it entirely on a cache hit).
void add_block(ScanPlan& plan, const Application& app, const TaskWindows& windows,
               std::vector<TaskId> tasks) {
  if (tasks.empty()) return;
  BlockScan block;
  block.points.reserve(tasks.size() * 2);
  block.comp.reserve(tasks.size());
  block.est.reserve(tasks.size());
  block.lct.reserve(tasks.size());
  block.preemptive.reserve(tasks.size());
  for (TaskId i : tasks) {
    const Task& t = app.task(i);
    block.points.push_back(windows.est[i]);
    block.points.push_back(windows.lct[i]);
    block.comp.push_back(t.comp);
    block.est.push_back(windows.est[i]);
    block.lct.push_back(windows.lct[i]);
    block.preemptive.push_back(t.preemptive ? 1 : 0);
    block.max_window = std::max(block.max_window, windows.lct[i] - windows.est[i]);
    // Saturating sum: an overflowed total would only weaken pruning, never
    // the bound, but keep it a valid upper bound on Theta anyway.
    if (__builtin_add_overflow(block.total_demand, t.comp, &block.total_demand)) {
      block.total_demand = std::numeric_limits<Time>::max();
    }
  }
  std::sort(block.points.begin(), block.points.end());
  block.points.erase(std::unique(block.points.begin(), block.points.end()),
                     block.points.end());
  std::vector<std::size_t> by_est(block.comp.size());
  for (std::size_t k = 0; k < by_est.size(); ++k) by_est[k] = k;
  std::sort(by_est.begin(), by_est.end(), [&](std::size_t a, std::size_t b) {
    if (block.est[a] != block.est[b]) return block.est[a] < block.est[b];
    return a < b;  // deterministic order; the Theta sum is order-independent
  });
  block.comp_by_est.reserve(by_est.size());
  block.est_by_est.reserve(by_est.size());
  block.lct_by_est.reserve(by_est.size());
  block.preemptive_by_est.reserve(by_est.size());
  for (std::size_t k : by_est) {
    block.comp_by_est.push_back(block.comp[k]);
    block.est_by_est.push_back(block.est[k]);
    block.lct_by_est.push_back(block.lct[k]);
    block.preemptive_by_est.push_back(block.preemptive[k]);
  }
  block.tasks = std::move(tasks);
  plan.blocks.push_back(std::move(block));
}

/// Build the scan units of block `block_index` and append them to the plan.
///
/// Without pruning, rows are grouped by nominal pair count. With pruning the
/// nominal count is the wrong currency: the floor check in scan_unit breaks
/// out of row l at the first k whose best-possible density
/// Ratio{total_demand, points[k] - points[l]} cannot strictly beat the probe
/// floor, and since the width grows monotonically along the row, the pairs
/// that survive the probe floor form a prefix whose length one binary search
/// finds exactly. Pruned rows are therefore grouped by SURVIVING pair count
/// (the unit's own incumbent can only break earlier, so this is a true upper
/// bound on the unit's Theta evaluations), which spreads the post-pruning
/// work evenly across units where nominal grouping collapsed it into one or
/// two. Rows with zero survivors still join a unit -- they cost one floor
/// comparison each.
///
/// The grouping depends only on the block geometry and the (deterministic)
/// probe, never on the thread count, so the unit list -- and therefore the
/// reduced result -- is identical between serial and parallel execution.
/// MUST run after the block's probe when pruning is on; with an empty probe
/// (Ratio 0/1) every positive-demand pair "survives" and the grouping
/// quietly degenerates to nominal.
void plan_block_units(ScanPlan& plan, std::size_t block_index, bool pruning) {
  const BlockScan& block = plan.blocks[block_index];
  const std::size_t n = block.points.size();
  const Ratio floor = block.probe.peak;
  const auto surviving_pairs = [&](std::size_t l) -> std::uint64_t {
    if (!pruning) return static_cast<std::uint64_t>(n - 1 - l);
    // First k > l whose pair fails the scan_unit floor test; survivors are
    // the prefix [l + 1, k).
    std::size_t lo = l + 1;
    std::size_t hi = n;
    while (lo < hi) {
      const std::size_t mid = lo + (hi - lo) / 2;
      const Time width = block.points[mid] - block.points[l];
      const bool survives = static_cast<__int128>(block.total_demand) * floor.den >
                            static_cast<__int128>(floor.num) * width;
      if (survives) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return static_cast<std::uint64_t>(lo - (l + 1));
  };
  const std::uint64_t grain = pruning ? kSurvivingPairsPerUnit : kPairsPerUnit;
  std::size_t l = 0;
  while (l + 1 < n) {
    std::uint64_t pairs = 0;
    const std::size_t begin = l;
    while (l + 1 < n && pairs < grain) {
      pairs += surviving_pairs(l);
      ++l;
    }
    plan.units.push_back({block_index, begin, l});
  }
}

/// plan_block_units over every block, in block order (merge_blocks relies on
/// units being grouped by block in block order).
void plan_all_units(ScanPlan& plan, bool pruning) {
  for (std::size_t b = 0; b < plan.blocks.size(); ++b) plan_block_units(plan, b, pruning);
}

/// Run the pruning probe of every block in `plan` (cold-path behaviour; the
/// cached path probes only its cache misses).
void probe_all_blocks(ScanPlan& plan, const Application& app, const TaskWindows& windows) {
  for (BlockScan& block : plan.blocks) block.probe = probe_block(app, windows, block);
}

ScanPlan make_plan(const Application& app, const TaskWindows& windows, ResourceId r,
                   const LowerBoundOptions& opts, bool run_probes) {
  ScanPlan plan;
  std::vector<TaskId> st = app.tasks_using(r);
  if (st.empty()) return plan;
  if (opts.use_partitioning) {
    ResourcePartition partition = partition_tasks(app, windows, r);
    for (PartitionBlock& block : partition.blocks) {
      add_block(plan, app, windows, std::move(block.tasks));
    }
  } else {
    add_block(plan, app, windows, std::move(st));
  }
  if (run_probes) {
    if (opts.enable_pruning) probe_all_blocks(plan, app, windows);
    plan_all_units(plan, opts.enable_pruning);
  }
  // run_probes=false (the cached query path): units are NOT built here --
  // the caller builds them after it has resolved probes for its cache
  // misses, so pruned unit sizing sees the same floors as the cold path.
  return plan;
}

UnitResult scan_unit(const Application& app, const TaskWindows& windows,
                     const BlockScan& block, const ScanUnit& unit, bool prune) {
  (void)app;
  (void)windows;
  UnitResult res;
  for (std::size_t l = unit.l_begin; l < unit.l_end; ++l) {
    for (std::size_t k = l + 1; k < block.points.size(); ++k) {
      const Time t1 = block.points[l];
      const Time t2 = block.points[k];
      // Theta <= total_demand, and the width only grows with k, so once the
      // best-possible density cannot strictly beat the prune floor neither
      // this pair nor the rest of the row can change the result. The floor
      // is the better of the unit's own incumbent and the block probe --
      // a pair that only TIES the floor is skippable because a witness at
      // that density is already recorded (by the probe or by this unit).
      if (prune) {
        const Ratio& floor =
            block.probe.peak > res.peak ? block.probe.peak : res.peak;
        if (!(Ratio{block.total_demand, t2 - t1} > floor)) break;
      }
      const Time theta = demand_flat(block, t1, t2);
      ++res.evaluated;
      if (Ratio{theta, t2 - t1} > res.peak) {
        res.peak = Ratio{theta, t2 - t1};
        res.witness_t1 = t1;
        res.witness_t2 = t2;
        res.witness_demand = theta;
        res.has_witness = true;
      }
    }
  }
  return res;
}

/// Execute every unit of `plan`, serially or across a pool. Each unit writes
/// its own slot, so execution order is irrelevant to the merged result.
std::vector<UnitResult> execute_plan(const Application& app, const TaskWindows& windows,
                                     const ScanPlan& plan, const LowerBoundOptions& opts) {
  std::vector<UnitResult> results(plan.units.size());
  auto run_one = [&](std::size_t i) {
    results[i] = scan_unit(app, windows, plan.blocks[plan.units[i].block], plan.units[i],
                           opts.enable_pruning);
  };
  const unsigned workers =
      opts.num_threads == 1 ? 1 : ThreadPool::resolve_threads(opts.num_threads);
  if (workers <= 1 || plan.units.size() <= 1) {
    for (std::size_t i = 0; i < plan.units.size(); ++i) run_one(i);
  } else {
    ThreadPool pool(workers);
    pool.parallel_for(plan.units.size(), run_one);
  }
  return results;
}

/// Reduce results in a fixed deterministic order -- block probes first (in
/// block order), then unit results (in unit order): peak = max, witness =
/// the first result that attains the peak, work = sum. A tie across units
/// therefore keeps a witness whose density EQUALS the reported peak -- never
/// a stale witness from a lower-density block. With pruning off every probe
/// is empty, so the reduction degenerates to the plain unit-order merge.
ResourceBound merge_units(const Application& app, const TaskWindows& windows,
                          const ScanPlan& plan, const std::vector<UnitResult>& results) {
  ResourceBound out;
  const BlockScan* winner_block = nullptr;
  auto absorb = [&](const UnitResult& r, const BlockScan& block) {
    out.intervals_evaluated += r.evaluated;
    if (r.has_witness && r.peak > out.peak_density) {
      out.peak_density = r.peak;
      out.witness_t1 = r.witness_t1;
      out.witness_t2 = r.witness_t2;
      out.witness_demand = r.witness_demand;
      winner_block = &block;
    }
  };
  for (const BlockScan& block : plan.blocks) absorb(block.probe, block);
  for (std::size_t i = 0; i < results.size(); ++i) {
    absorb(results[i], plan.blocks[plan.units[i].block]);
  }
  out.bound = out.peak_density.ceil();
#ifndef NDEBUG
  if (winner_block != nullptr) {
    const Time check =
        demand(app, windows, winner_block->tasks, out.witness_t1, out.witness_t2);
    RTLB_CHECK(check == out.witness_demand, "witness demand inconsistent with its interval");
    RTLB_CHECK((Ratio{check, out.witness_t2 - out.witness_t1} == out.peak_density),
               "witness density disagrees with peak_density");
  }
#else
  (void)winner_block;
  (void)app;
  (void)windows;
  (void)plan;
#endif
  return out;
}

}  // namespace

ResourceBound resource_lower_bound(const Application& app, const TaskWindows& windows,
                                   ResourceId r, const LowerBoundOptions& opts) {
  const ScanPlan plan = make_plan(app, windows, r, opts, /*run_probes=*/true);
  ResourceBound out = merge_units(app, windows, plan, execute_plan(app, windows, plan, opts));
  out.resource = r;
  return out;
}

ResourceBound density_bound_over(const Application& app, const TaskWindows& windows,
                                 std::vector<TaskId> tasks, const LowerBoundOptions& opts) {
  ScanPlan plan;
  if (tasks.empty()) return ResourceBound{};
  // Figure-4 blocks over the given set (same rule as partition_tasks, which
  // is tied to a ResourceId and so not reusable directly).
  std::sort(tasks.begin(), tasks.end(), [&](TaskId a, TaskId b) {
    if (windows.est[a] != windows.est[b]) return windows.est[a] < windows.est[b];
    return a < b;
  });
  std::vector<TaskId> block;
  Time block_finish = kTimeMin;
  for (TaskId i : tasks) {
    if (!block.empty() && windows.est[i] >= block_finish) {
      add_block(plan, app, windows, std::move(block));
      block.clear();
    }
    block.push_back(i);
    block_finish = std::max(block_finish, windows.lct[i]);
  }
  add_block(plan, app, windows, std::move(block));
  if (opts.enable_pruning) probe_all_blocks(plan, app, windows);
  plan_all_units(plan, opts.enable_pruning);
  return merge_units(app, windows, plan, execute_plan(app, windows, plan, opts));
}

std::vector<ResourceBound> all_resource_bounds(const Application& app,
                                               const TaskWindows& windows,
                                               const LowerBoundOptions& opts) {
  const std::vector<ResourceId> resources = app.resource_set();
  std::vector<ScanPlan> plans;
  plans.reserve(resources.size());
  for (ResourceId r : resources) {
    plans.push_back(make_plan(app, windows, r, opts, /*run_probes=*/true));
  }

  // Pool the scan units of every resource into one flat work list so a
  // resource with one big block does not serialize the whole sweep.
  struct GlobalUnit {
    std::size_t plan;
    std::size_t unit;
  };
  std::vector<GlobalUnit> work;
  for (std::size_t p = 0; p < plans.size(); ++p) {
    for (std::size_t u = 0; u < plans[p].units.size(); ++u) work.push_back({p, u});
  }

  std::vector<UnitResult> results(work.size());
  auto run_one = [&](std::size_t i) {
    const ScanPlan& plan = plans[work[i].plan];
    const ScanUnit& unit = plan.units[work[i].unit];
    results[i] = scan_unit(app, windows, plan.blocks[unit.block], unit, opts.enable_pruning);
  };
  const unsigned workers =
      opts.num_threads == 1 ? 1 : ThreadPool::resolve_threads(opts.num_threads);
  if (workers <= 1 || work.size() <= 1) {
    for (std::size_t i = 0; i < work.size(); ++i) run_one(i);
  } else {
    ThreadPool pool(workers);
    pool.parallel_for(work.size(), run_one);
  }

  // Re-slice the flat result list back into per-resource runs (work is
  // ordered by plan, then unit) and reduce each run in unit order.
  std::vector<ResourceBound> out;
  out.reserve(resources.size());
  std::size_t cursor = 0;
  for (std::size_t p = 0; p < plans.size(); ++p) {
    std::vector<UnitResult> slice(results.begin() + static_cast<std::ptrdiff_t>(cursor),
                                  results.begin() + static_cast<std::ptrdiff_t>(
                                                        cursor + plans[p].units.size()));
    cursor += plans[p].units.size();
    ResourceBound b = merge_units(app, windows, plans[p], slice);
    b.resource = resources[p];
    out.push_back(b);
  }
  return out;
}

namespace {

/// Reduce one resource from per-block folded results, replicating
/// merge_units' canonical order exactly: every block's probe first (in block
/// order), then every block's folded units (units are created grouped by
/// block in block order, and fold_unit preserves first-attainment, so this
/// equals the flat unit-order merge of the uncached path bit for bit).
ResourceBound merge_blocks(const Application& app, const TaskWindows& windows,
                           const ScanPlan& plan, const std::vector<UnitResult>& probes,
                           const std::vector<UnitResult>& scans) {
  UnitResult acc;
  const BlockScan* winner_block = nullptr;
  auto absorb = [&](const UnitResult& r, const BlockScan& block) {
    if (r.has_witness && r.peak > acc.peak) winner_block = &block;
    fold_unit(acc, r);
  };
  for (std::size_t b = 0; b < plan.blocks.size(); ++b) absorb(probes[b], plan.blocks[b]);
  for (std::size_t b = 0; b < plan.blocks.size(); ++b) absorb(scans[b], plan.blocks[b]);

  ResourceBound out;
  out.peak_density = acc.peak;
  out.witness_t1 = acc.witness_t1;
  out.witness_t2 = acc.witness_t2;
  out.witness_demand = acc.witness_demand;
  out.intervals_evaluated = acc.evaluated;
  out.bound = acc.peak.ceil();
#ifndef NDEBUG
  if (winner_block != nullptr) {
    const Time check =
        demand(app, windows, winner_block->tasks, out.witness_t1, out.witness_t2);
    RTLB_CHECK(check == out.witness_demand, "witness demand inconsistent with its interval");
    RTLB_CHECK((Ratio{check, out.witness_t2 - out.witness_t1} == out.peak_density),
               "witness density disagrees with peak_density");
  }
#else
  (void)winner_block;
  (void)app;
  (void)windows;
#endif
  return out;
}

}  // namespace

std::vector<ResourceBound> all_resource_bounds_cached(const Application& app,
                                                      const TaskWindows& windows,
                                                      const LowerBoundOptions& opts,
                                                      BlockScanCache& cache) {
  const std::vector<ResourceId> resources = app.resource_set();
  std::vector<ScanPlan> plans;
  plans.reserve(resources.size());
  for (ResourceId r : resources) {
    plans.push_back(make_plan(app, windows, r, opts, /*run_probes=*/false));
  }

  // Resolve every block against the cache. Misses get their pruning probe
  // computed here (the cold path runs it inside make_plan) and their scan
  // units queued; hits are materialized as values so later cache maintenance
  // can never invalidate them.
  struct GlobalUnit {
    std::size_t plan;
    std::size_t unit;
  };
  struct BlockRef {
    std::size_t plan;
    std::size_t block;
  };
  std::vector<std::vector<BlockScanCache::Key>> keys(plans.size());
  std::vector<std::vector<UnitResult>> probes(plans.size());
  std::vector<std::vector<UnitResult>> scans(plans.size());
  std::vector<std::vector<char>> missed(plans.size());
  std::vector<BlockRef> miss_list;
  std::vector<GlobalUnit> work;
  for (std::size_t p = 0; p < plans.size(); ++p) {
    const std::size_t num_blocks = plans[p].blocks.size();
    keys[p].resize(num_blocks);
    probes[p].resize(num_blocks);
    scans[p].resize(num_blocks);
    missed[p].assign(num_blocks, 0);
    for (std::size_t b = 0; b < num_blocks; ++b) {
      BlockScan& block = plans[p].blocks[b];
      BlockScanCache::Key& key = keys[p][b];
      key.reserve(2 + 4 * block.tasks.size());
      key.push_back(opts.enable_pruning ? 1 : 0);
      key.push_back(static_cast<std::int64_t>(block.tasks.size()));
      for (TaskId t : block.tasks) {
        key.push_back(windows.est[t]);
        key.push_back(windows.lct[t]);
        key.push_back(app.task(t).comp);
        key.push_back(app.task(t).preemptive ? 1 : 0);
      }
      const auto it = cache.map_.find(key);
      if (it != cache.map_.end()) {
        ++cache.hits_;
        probes[p][b] = it->second.probe;
        scans[p][b] = it->second.scan;
      } else {
        ++cache.misses_;
        missed[p][b] = 1;
        miss_list.push_back({p, b});
        if (opts.enable_pruning) block.probe = probe_block(app, windows, block);
        probes[p][b] = block.probe;
      }
    }
    // Units are built only now, so the missed blocks' pruned unit sizing
    // sees the probes resolved above -- identical floors, therefore
    // identical unit boundaries, to the cold path. Hit blocks get nominal
    // units (their probe slot is empty) but those are filtered out below
    // and merge_blocks never reads them.
    plan_all_units(plans[p], opts.enable_pruning);
    for (std::size_t u = 0; u < plans[p].units.size(); ++u) {
      if (missed[p][plans[p].units[u].block]) work.push_back({p, u});
    }
  }

  // Execute the missed units exactly like the uncached path (flat list over
  // one pool, own slot per unit, deterministic fold afterwards).
  std::vector<UnitResult> results(work.size());
  auto run_one = [&](std::size_t i) {
    const ScanPlan& plan = plans[work[i].plan];
    const ScanUnit& unit = plan.units[work[i].unit];
    results[i] = scan_unit(app, windows, plan.blocks[unit.block], unit, opts.enable_pruning);
  };
  const unsigned workers =
      opts.num_threads == 1 ? 1 : ThreadPool::resolve_threads(opts.num_threads);
  if (workers <= 1 || work.size() <= 1) {
    for (std::size_t i = 0; i < work.size(); ++i) run_one(i);
  } else {
    ThreadPool pool(workers);
    pool.parallel_for(work.size(), run_one);
  }
  // `work` is ordered (plan, unit) ascending, so this folds each missed
  // block's units in unit order.
  for (std::size_t i = 0; i < work.size(); ++i) {
    fold_unit(scans[work[i].plan][plans[work[i].plan].units[work[i].unit].block], results[i]);
  }

  // Record the misses. The occasional wholesale clear (safety valve against
  // unbounded growth) only costs future hits; the values merged below were
  // copied out already.
  for (const BlockRef& m : miss_list) {
    if (cache.map_.size() >= BlockScanCache::kMaxEntries) cache.map_.clear();
    cache.map_.emplace(std::move(keys[m.plan][m.block]),
                       BlockScanCache::Entry{probes[m.plan][m.block], scans[m.plan][m.block]});
  }

  std::vector<ResourceBound> out;
  out.reserve(resources.size());
  for (std::size_t p = 0; p < plans.size(); ++p) {
    ResourceBound b = merge_blocks(app, windows, plans[p], probes[p], scans[p]);
    b.resource = resources[p];
    out.push_back(b);
  }
  return out;
}

}  // namespace rtlb
