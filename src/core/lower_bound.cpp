#include "src/core/lower_bound.hpp"

#include <algorithm>

#include "src/core/overlap.hpp"

namespace rtlb {

namespace {

/// Evaluate the density maximization over one set of tasks, using their
/// ESTs/LCTs as the candidate interval endpoints a_0 < a_1 < ... < a_N.
void scan_block(const Application& app, const TaskWindows& windows,
                std::span<const TaskId> tasks, ResourceBound& acc) {
  std::vector<Time> points;
  points.reserve(tasks.size() * 2);
  for (TaskId i : tasks) {
    points.push_back(windows.est[i]);
    points.push_back(windows.lct[i]);
  }
  std::sort(points.begin(), points.end());
  points.erase(std::unique(points.begin(), points.end()), points.end());

  MaxRatio best;
  best.update(acc.peak_density.num, acc.peak_density.den);
  for (std::size_t l = 0; l + 1 < points.size(); ++l) {
    for (std::size_t k = l + 1; k < points.size(); ++k) {
      const Time t1 = points[l];
      const Time t2 = points[k];
      const Time theta = demand(app, windows, tasks, t1, t2);
      ++acc.intervals_evaluated;
      if (Ratio{theta, t2 - t1} > best.best()) {
        best.update(theta, t2 - t1);
        acc.witness_t1 = t1;
        acc.witness_t2 = t2;
        acc.witness_demand = theta;
      }
    }
  }
  acc.peak_density = best.best();
}

}  // namespace

ResourceBound resource_lower_bound(const Application& app, const TaskWindows& windows,
                                   ResourceId r, const LowerBoundOptions& opts) {
  ResourceBound out;
  out.resource = r;
  const std::vector<TaskId> st = app.tasks_using(r);
  if (st.empty()) return out;

  if (opts.use_partitioning) {
    const ResourcePartition partition = partition_tasks(app, windows, r);
    for (const PartitionBlock& block : partition.blocks) {
      scan_block(app, windows, block.tasks, out);
    }
  } else {
    scan_block(app, windows, st, out);
  }
  out.bound = out.peak_density.ceil();
  return out;
}

ResourceBound density_bound_over(const Application& app, const TaskWindows& windows,
                                 std::vector<TaskId> tasks) {
  ResourceBound out;
  if (tasks.empty()) return out;
  // Figure-4 blocks over the given set (same rule as partition_tasks, which
  // is tied to a ResourceId and so not reusable directly).
  std::sort(tasks.begin(), tasks.end(), [&](TaskId a, TaskId b) {
    if (windows.est[a] != windows.est[b]) return windows.est[a] < windows.est[b];
    return a < b;
  });
  std::vector<TaskId> block;
  Time block_finish = kTimeMin;
  auto flush = [&] {
    if (!block.empty()) scan_block(app, windows, block, out);
    block.clear();
  };
  for (TaskId i : tasks) {
    if (!block.empty() && windows.est[i] >= block_finish) flush();
    block.push_back(i);
    block_finish = std::max(block_finish, windows.lct[i]);
  }
  flush();
  out.bound = out.peak_density.ceil();
  return out;
}

std::vector<ResourceBound> all_resource_bounds(const Application& app,
                                               const TaskWindows& windows,
                                               const LowerBoundOptions& opts) {
  std::vector<ResourceBound> out;
  for (ResourceId r : app.resource_set()) {
    out.push_back(resource_lower_bound(app, windows, r, opts));
  }
  return out;
}

}  // namespace rtlb
