#include "src/core/cost_bound.hpp"

#include <algorithm>
#include <cmath>

namespace rtlb {

SharedCostBound shared_cost_bound(const Application& app,
                                  const std::vector<ResourceBound>& bounds) {
  SharedCostBound out;
  for (const ResourceBound& b : bounds) {
    const Cost unit_cost = app.catalog().cost(b.resource);
    out.terms.push_back({b.resource, b.bound, unit_cost});
    out.total += unit_cost * b.bound;
  }
  return out;
}

DedicatedCostBound dedicated_cost_bound(const Application& app,
                                        const DedicatedPlatform& platform,
                                        const std::vector<ResourceBound>& bounds) {
  DedicatedCostBound out;
  const std::size_t num_types = platform.num_node_types();
  if (num_types == 0) return out;

  LinearProgram lp;
  lp.sense = LinearProgram::Sense::Minimize;
  lp.objective.resize(num_types);
  for (std::size_t n = 0; n < num_types; ++n) {
    lp.objective[n] = static_cast<double>(platform.node_type(n).cost);
  }

  // Resource covering rows: sum_n gamma_nr x_n >= LB_r.
  for (const ResourceBound& b : bounds) {
    if (b.bound <= 0) continue;
    std::vector<double> row(num_types, 0.0);
    bool any = false;
    for (std::size_t n = 0; n < num_types; ++n) {
      const int units = platform.node_type(n).units_of(b.resource);
      if (units > 0) {
        row[n] = units;
        any = true;
      }
    }
    if (!any) return out;  // no node type supplies r at all
    lp.add_constraint(std::move(row), LinearProgram::Relation::GreaterEq,
                      static_cast<double>(b.bound));
  }

  // Hosting rows: sum_{n in eta_i} x_n >= 1. Deduplicate identical eta sets.
  std::vector<std::vector<std::size_t>> seen;
  for (TaskId i = 0; i < app.num_tasks(); ++i) {
    std::vector<std::size_t> eta = platform.hosts_for(app.task(i));
    if (eta.empty()) return out;  // task cannot run anywhere
    if (std::find(seen.begin(), seen.end(), eta) != seen.end()) continue;
    std::vector<double> row(num_types, 0.0);
    for (std::size_t n : eta) row[n] = 1.0;
    lp.add_constraint(std::move(row), LinearProgram::Relation::GreaterEq, 1.0);
    seen.push_back(std::move(eta));
  }

  IlpResult ilp = solve_ilp(lp);
  if (ilp.status != IlpResult::Status::Optimal) return out;

  out.feasible = true;
  out.total = static_cast<Cost>(std::llround(ilp.objective));
  out.node_counts = std::move(ilp.x);
  out.relaxation = ilp.relaxation_objective;
  out.ilp_nodes = ilp.nodes_explored;
  return out;
}

}  // namespace rtlb
