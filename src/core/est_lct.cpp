#include "src/core/est_lct.hpp"

#include <algorithm>
#include <cstdlib>
#include <limits>
#include <memory>
#include <string_view>

#include "src/common/thread_pool.hpp"

namespace rtlb {

Time latest_start_of_set(const Application& app, const std::vector<Time>& lct,
                         std::span<const TaskId> tasks) {
  RTLB_CHECK(!tasks.empty(), "lst of empty set");
  // Schedule in non-increasing LCT order, each task completing as late as its
  // own LCT and the start of the previously placed task allow.
  std::vector<TaskId> order(tasks.begin(), tasks.end());
  std::sort(order.begin(), order.end(), [&](TaskId a, TaskId b) {
    if (lct[a] != lct[b]) return lct[a] > lct[b];
    return a < b;
  });
  Time start = lct[order[0]] - app.task(order[0]).comp;
  for (std::size_t k = 1; k < order.size(); ++k) {
    const Time completion = std::min(start, lct[order[k]]);
    start = completion - app.task(order[k]).comp;
  }
  return start;
}

Time earliest_completion_of_set(const Application& app, const std::vector<Time>& est,
                                std::span<const TaskId> tasks) {
  RTLB_CHECK(!tasks.empty(), "ect of empty set");
  // Mirror of lst: non-decreasing EST order, each task starting as early as
  // its own EST and the completion of the previously placed task allow.
  std::vector<TaskId> order(tasks.begin(), tasks.end());
  std::sort(order.begin(), order.end(), [&](TaskId a, TaskId b) {
    if (est[a] != est[b]) return est[a] < est[b];
    return a < b;
  });
  Time completion = est[order[0]] + app.task(order[0]).comp;
  for (std::size_t k = 1; k < order.size(); ++k) {
    const Time start = std::max(completion, est[order[k]]);
    completion = start + app.task(order[k]).comp;
  }
  return completion;
}

namespace {

/// Read-only SoA snapshot of everything the recurrences read: the scalar
/// task attributes as contiguous arrays (a Task is a wide struct -- name,
/// resource vector -- so walking Task objects in the merge loop thrashes
/// cache lines for three ints) and the per-edge message sizes as CSR arrays
/// aligned with the DAG adjacency lists (Application::message is a std::map
/// lookup; the old code paid it once per SORT COMPARISON).
struct FlatModel {
  std::vector<Time> comp, release, deadline;
  std::vector<std::size_t> succ_off, pred_off;  ///< n+1 CSR offsets
  std::vector<Time> succ_msg, pred_msg;         ///< aligned with adjacency order
};

FlatModel flatten(const Application& app) {
  const std::size_t n = app.num_tasks();
  FlatModel m;
  m.comp.resize(n);
  m.release.resize(n);
  m.deadline.resize(n);
  m.succ_off.resize(n + 1, 0);
  m.pred_off.resize(n + 1, 0);
  for (TaskId i = 0; i < n; ++i) {
    const Task& t = app.task(i);
    m.comp[i] = t.comp;
    m.release[i] = t.release;
    m.deadline[i] = t.deadline;
    m.succ_off[i + 1] = m.succ_off[i] + app.successors(i).size();
    m.pred_off[i + 1] = m.pred_off[i] + app.predecessors(i).size();
  }
  m.succ_msg.resize(m.succ_off[n]);
  m.pred_msg.resize(m.pred_off[n]);
  // One ordered pass over the edge map (vs one map lookup per adjacency
  // entry); the adjacency lists are short, so locating each edge's slot by
  // linear scan is a handful of contiguous int compares.
  for (const auto& [key, msg] : app.messages()) {
    const auto [from, to] = key;
    const auto& succ = app.successors(from);
    const auto& pred = app.predecessors(to);
    const auto si = std::find(succ.begin(), succ.end(), to) - succ.begin();
    const auto pi = std::find(pred.begin(), pred.end(), from) - pred.begin();
    m.succ_msg[m.succ_off[from] + static_cast<std::size_t>(si)] = msg;
    m.pred_msg[m.pred_off[to] + static_cast<std::size_t>(pi)] = msg;
  }
  return m;
}

/// A merge candidate: its lms/emr term and the task, in the sort key order
/// of Figures 2/3 ((key, id) -- the id tie-break keeps every downstream
/// value, merge set, and certificate byte-identical on duplicate keys).
struct Candidate {
  Time key;
  TaskId id;
};

/// Per-worker arena: every container the merge search touches, reused across
/// tasks (and across candidate sets within a task), so the steady state
/// allocates nothing.
struct SweepScratch {
  std::vector<Candidate> cand;  ///< MS_i / MP_i in sort order
  std::vector<Time> suffix;     ///< suffix min/max of cand keys
  std::vector<TaskId> order;    ///< group in MERGE order (the reported set)
  std::vector<TaskId> packed;   ///< group in PACKING order
  std::vector<Time> packval;    ///< packed-prefix folds (lst/ect prefixes)
  std::unique_ptr<MergeOracle::Cursor> cursor;
};

/// Figure 2 for one task (successor LCTs already final). The candidate set
/// grows by one task per step, so the lst(G) packing is maintained
/// incrementally: splice the new task into the kept (lct desc, id asc)
/// order and refold the prefix values from the splice point only.
void lct_one_task(const Application& app, const FlatModel& m, TaskId i, SweepScratch& s,
                  std::vector<Time>& lct, std::vector<std::vector<TaskId>>& merged_succ) {
  const auto& succ = app.successors(i);
  if (succ.empty()) {  // step 1
    lct[i] = m.deadline[i];
    return;
  }

  // Step 2: split Succ_i into MS_i (pairwise mergeable, with lms evaluated
  // exactly once) and the rest, whose lms terms bind L unconditionally.
  s.cand.clear();
  Time l0 = m.deadline[i];
  for (std::size_t k = 0; k < succ.size(); ++k) {
    const TaskId j = succ[k];
    const Time lms = lct[j] - m.comp[j] - m.succ_msg[m.succ_off[i] + k];
    s.cursor->reset(i);
    if (s.cursor->try_add(j)) {
      s.cand.push_back({lms, j});
    } else {
      l0 = std::min(l0, lms);
    }
  }
  std::sort(s.cand.begin(), s.cand.end(), [](const Candidate& a, const Candidate& b) {
    if (a.key != b.key) return a.key < b.key;
    return a.id < b.id;
  });

  // suffix[k] = min lms over candidates k.. -- the "not yet merged
  // candidates still need their message" term of step (c), precomputed once
  // instead of rescanned per step.
  const std::size_t d = s.cand.size();
  s.suffix.resize(d + 1);
  s.suffix[d] = std::numeric_limits<Time>::max();
  for (std::size_t k = d; k-- > 0;) {
    s.suffix[k] = std::min(s.suffix[k + 1], s.cand[k].key);
  }

  // L_i^0 = lct_i(empty set): with nothing merged, i must message EVERY
  // successor, mergeable or not (see the reference implementation's note on
  // the Section 8 walkthrough).
  Time best = l0;
  if (d > 0) best = std::min(best, s.cand.front().key);
  // Step 3, with the tie correction of the reference implementation: only a
  // strict drop of L^k (necessarily from the monotone lst term) is final;
  // ties must keep merging so a whole lms tie group can be absorbed.
  s.cursor->reset(i);
  s.order.clear();
  s.packed.clear();
  s.packval.clear();
  std::size_t improved_prefix = 0;  // reported G_i: last strictly-improving prefix
  for (std::size_t k = 0; k < d; ++k) {
    const TaskId t = s.cand[k].id;          // (a): least lms among MS - G
    if (!s.cursor->try_add(t)) break;       // (b)
    s.order.push_back(t);
    // (c): splice t into the packing order and refold the affected suffix.
    const auto before = [&](TaskId a, TaskId b) {
      if (lct[a] != lct[b]) return lct[a] > lct[b];
      return a < b;
    };
    const auto pos_it = std::lower_bound(s.packed.begin(), s.packed.end(), t, before);
    const std::size_t pos = static_cast<std::size_t>(pos_it - s.packed.begin());
    s.packed.insert(pos_it, t);
    s.packval.resize(s.packed.size());
    for (std::size_t q = pos; q < s.packed.size(); ++q) {
      const TaskId x = s.packed[q];
      s.packval[q] =
          (q == 0 ? lct[x] : std::min(s.packval[q - 1], lct[x])) - m.comp[x];
    }
    const Time lk = std::min({l0, s.packval.back(), s.suffix[k + 1]});
    if (lk < best) break;  // (d): strict drop is final
    if (lk > best) {
      best = lk;
      improved_prefix = s.order.size();
    }
  }
  lct[i] = best;  // step 4
  merged_succ[i].assign(s.order.begin(),
                        s.order.begin() + static_cast<std::ptrdiff_t>(improved_prefix));
}

/// Figure 3 for one task (predecessor ESTs already final); exact mirror.
void est_one_task(const Application& app, const FlatModel& m, TaskId i, SweepScratch& s,
                  std::vector<Time>& est, std::vector<std::vector<TaskId>>& merged_pred) {
  const auto& pred = app.predecessors(i);
  if (pred.empty()) {  // step 1
    est[i] = m.release[i];
    return;
  }

  s.cand.clear();
  Time e0 = m.release[i];  // step 2
  for (std::size_t k = 0; k < pred.size(); ++k) {
    const TaskId j = pred[k];
    const Time emr = est[j] + m.comp[j] + m.pred_msg[m.pred_off[i] + k];
    s.cursor->reset(i);
    if (s.cursor->try_add(j)) {
      s.cand.push_back({emr, j});
    } else {
      e0 = std::max(e0, emr);
    }
  }
  std::sort(s.cand.begin(), s.cand.end(), [](const Candidate& a, const Candidate& b) {
    if (a.key != b.key) return a.key > b.key;
    return a.id < b.id;
  });

  const std::size_t d = s.cand.size();
  s.suffix.resize(d + 1);
  s.suffix[d] = std::numeric_limits<Time>::lowest();
  for (std::size_t k = d; k-- > 0;) {
    s.suffix[k] = std::max(s.suffix[k + 1], s.cand[k].key);
  }

  Time best = e0;
  if (d > 0) best = std::max(best, s.cand.front().key);
  s.cursor->reset(i);
  s.order.clear();
  s.packed.clear();
  s.packval.clear();
  std::size_t improved_prefix = 0;
  for (std::size_t k = 0; k < d; ++k) {  // step 3
    const TaskId t = s.cand[k].id;       // (a): greatest emr among MP - M
    if (!s.cursor->try_add(t)) break;    // (b)
    s.order.push_back(t);
    // (c): splice into (est asc, id asc) order, refold ect prefixes.
    const auto before = [&](TaskId a, TaskId b) {
      if (est[a] != est[b]) return est[a] < est[b];
      return a < b;
    };
    const auto pos_it = std::lower_bound(s.packed.begin(), s.packed.end(), t, before);
    const std::size_t pos = static_cast<std::size_t>(pos_it - s.packed.begin());
    s.packed.insert(pos_it, t);
    s.packval.resize(s.packed.size());
    for (std::size_t q = pos; q < s.packed.size(); ++q) {
      const TaskId x = s.packed[q];
      s.packval[q] =
          (q == 0 ? est[x] : std::max(s.packval[q - 1], est[x])) + m.comp[x];
    }
    const Time ek = std::max({e0, s.packval.back(), s.suffix[k + 1]});
    if (ek > best) break;  // (d): strict rise is final
    if (ek < best) {
      best = ek;
      improved_prefix = s.order.size();
    }
  }
  est[i] = best;  // step 4
  merged_pred[i].assign(s.order.begin(),
                        s.order.begin() + static_cast<std::ptrdiff_t>(improved_prefix));
}

/// The parallel sweep decomposition: round r of the source sweep holds the
/// tasks at forward depth r (every predecessor in an earlier round), round r
/// of the sink sweep those at backward depth r. The two sweeps write
/// disjoint arrays (est/merged_pred vs lct/merged_succ) and never read each
/// other, so round r of BOTH sweeps forms one independent work list.
struct SweepPlan {
  std::vector<std::vector<TaskId>> est_rounds, lct_rounds;
};

SweepPlan make_sweep_plan(const Application& app, std::span<const TaskId> topo) {
  const std::size_t n = app.num_tasks();
  SweepPlan plan;
  std::vector<std::uint32_t> fwd(n, 0), bwd(n, 0);
  std::uint32_t fwd_depth = 0, bwd_depth = 0;
  for (TaskId i : topo) {
    for (TaskId j : app.predecessors(i)) fwd[i] = std::max(fwd[i], fwd[j] + 1);
    fwd_depth = std::max(fwd_depth, fwd[i]);
  }
  for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
    for (TaskId j : app.successors(*it)) bwd[*it] = std::max(bwd[*it], bwd[j] + 1);
    bwd_depth = std::max(bwd_depth, bwd[*it]);
  }
  plan.est_rounds.resize(fwd_depth + 1);
  plan.lct_rounds.resize(bwd_depth + 1);
  for (TaskId i : topo) plan.est_rounds[fwd[i]].push_back(i);
  for (TaskId i : topo) plan.lct_rounds[bwd[i]].push_back(i);
  return plan;
}

TaskWindows compute_windows_impl(const Application& app, const MergeOracle& oracle,
                                 int num_threads) {
  const std::size_t n = app.num_tasks();
  TaskWindows w;
  w.est.assign(n, 0);
  w.lct.assign(n, 0);
  w.merged_pred.resize(n);
  w.merged_succ.resize(n);

  const auto topo = app.dag().topological_order();
  if (!topo) throw ModelError("compute_windows: precedence graph has a cycle");

  const FlatModel m = flatten(app);
  const unsigned workers =
      num_threads == 1 ? 1 : ThreadPool::resolve_threads(num_threads);

  if (workers <= 1 || n < 2) {
    SweepScratch scratch;
    scratch.cursor = oracle.cursor(app);
    for (TaskId i : *topo) est_one_task(app, m, i, scratch, w.est, w.merged_pred);
    for (auto it = topo->rbegin(); it != topo->rend(); ++it) {
      lct_one_task(app, m, *it, scratch, w.lct, w.merged_succ);
    }
    return w;
  }

  const SweepPlan plan = make_sweep_plan(app, *topo);
  ThreadPool pool(workers);
  std::vector<SweepScratch> scratch(workers);
  for (SweepScratch& s : scratch) s.cursor = oracle.cursor(app);

  // One item = one task on one side; every item writes only its own slots,
  // so values are thread-count independent by construction.
  struct Item {
    TaskId task;
    bool lct_side;
  };
  std::vector<Item> items;
  const std::size_t rounds = std::max(plan.est_rounds.size(), plan.lct_rounds.size());
  for (std::size_t r = 0; r < rounds; ++r) {
    items.clear();
    if (r < plan.est_rounds.size()) {
      for (TaskId i : plan.est_rounds[r]) items.push_back({i, false});
    }
    if (r < plan.lct_rounds.size()) {
      for (TaskId i : plan.lct_rounds[r]) items.push_back({i, true});
    }
    auto run_item = [&](const Item& item, SweepScratch& s) {
      if (item.lct_side) {
        lct_one_task(app, m, item.task, s, w.lct, w.merged_succ);
      } else {
        est_one_task(app, m, item.task, s, w.est, w.merged_pred);
      }
    };
    // Chunked over the pool: worker c owns a contiguous slice and its own
    // arena. Tiny rounds (chains, narrow layers) run inline -- pool dispatch
    // would cost more than the round.
    const std::size_t chunks = std::min<std::size_t>(workers, items.size());
    if (chunks <= 1 || items.size() < 8) {
      for (const Item& item : items) run_item(item, scratch[0]);
      continue;
    }
    pool.parallel_for(chunks, [&](std::size_t c) {
      const std::size_t begin = items.size() * c / chunks;
      const std::size_t end = items.size() * (c + 1) / chunks;
      for (std::size_t x = begin; x < end; ++x) run_item(items[x], scratch[c]);
    });
  }
  return w;
}

/// RTLB_WINDOWS_REFERENCE: compile-time option (CMake) or environment
/// variable; either cross-checks every compute_windows() call against the
/// reference implementation. Same switch idiom as RTLB_SESSION_VERIFY.
bool reference_check_enabled() {
#ifdef RTLB_WINDOWS_REFERENCE
  return true;
#else
  static const bool enabled = [] {
    const char* env = std::getenv("RTLB_WINDOWS_REFERENCE");
    return env != nullptr && *env != '\0' && std::string_view(env) != "0";
  }();
  return enabled;
#endif
}

}  // namespace

TaskWindows compute_windows(const Application& app, const MergeOracle& oracle,
                            int num_threads) {
  TaskWindows w = compute_windows_impl(app, oracle, num_threads);
  if (reference_check_enabled()) {
    RTLB_CHECK(w == compute_windows_reference(app, oracle),
               "compute_windows diverged from the reference implementation");
  }
  return w;
}

}  // namespace rtlb
