// One-call facade over the analysis stages of Section 3:
//   1. EST/LCT evaluation (est_lct)
//   2. partitioning (partition)
//   3. resource lower bounds (lower_bound)
//   4. cost lower bounds (cost_bound)
//
// This is the main entry point of the public API; the example programs and
// most benches go through analyze(). Since the pipeline refactor, analyze()
// is a thin driver over run_pipeline() (src/core/pipeline.hpp) with an
// empty stage cache -- the staged sequencing, the pre-flight lint gate, the
// certificate post-stage, and the per-stage instrumentation all live there,
// shared bit-for-bit with the memoized AnalysisSession.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "src/core/cost_bound.hpp"
#include "src/core/est_lct.hpp"
#include "src/core/joint_bound.hpp"
#include "src/core/lower_bound.hpp"
#include "src/core/partition.hpp"
#include "src/lint/linter.hpp"
#include "src/model/application.hpp"
#include "src/model/platform.hpp"
#include "src/model/recurrent.hpp"
#include "src/verify/certificate.hpp"
#include "src/verify/checker.hpp"

namespace rtlb {

class Trace;  // src/obs/trace.hpp; options carry only a non-owning pointer

enum class SystemModel {
  /// All resources reachable from all processors (Figure 1(b)).
  Shared,
  /// System assembled from node types with dedicated resources (Figure 1(a)).
  Dedicated,
};

/// Pre-flight lint gate of analyze(): how much static analysis runs before
/// the bound engine, and what it refuses. Lint never mutates the model, so
/// for a lint-clean instance the analysis output is byte-identical at every
/// level.
enum class LintLevel {
  /// No lint. Only the historical Application::validate() first-error check.
  kOff,
  /// Run the linter and record its diagnostics on the result; refuse only
  /// structurally broken instances (same refusal set as validate(), but as a
  /// batched LintGateError instead of a first-error ModelError).
  kReport,
  /// Also refuse instances with ANY error-level finding -- e.g. a task whose
  /// derived window cannot contain it, or a dedicated-model task no node
  /// type can host. Prunes provably hopeless instances before bounding.
  kErrors,
  /// Refuse warnings too (the --werror gate).
  kWarnings,
};

struct AnalysisOptions {
  SystemModel model = SystemModel::Shared;
  LowerBoundOptions lower_bound;
  /// EXTENSION: also compute conjunctive pair bounds (src/core/joint_bound.hpp)
  /// and use them to strengthen the dedicated cost ILP. Off by default to
  /// keep the default pipeline exactly the paper's.
  bool joint_bounds = false;
  /// Pre-flight lint gate; kOff keeps the historical pipeline exactly.
  /// Refusals throw LintGateError (carrying the whole diagnostic batch).
  LintLevel lint_level = LintLevel::kOff;

  /// Emit the pipeline certificate (src/verify) on AnalysisResult::certificate
  /// -- the witnesses behind every stage, serializable for tools/rtlb_check.
  bool emit_certificates = false;

  /// Also run the independent checker in-process after every analyze() (and
  /// every session-served query): the certificate is re-judged against the
  /// theorem side-conditions, the verdict lands on
  /// AnalysisResult::certificate_check, and an INVALID certificate throws
  /// CertificateCheckError -- a regression tripwire for the parallel and
  /// memoized paths. Implies emit_certificates.
  bool check_certificates = false;

  /// Observability sink (non-owning, may be null -- the default, which costs
  /// nothing but one branch per stage). When set, every pipeline run records
  /// a "pipeline" span with one child span per stage plus work counters;
  /// export with Trace::chrome_json() or attach to reports via
  /// report_json(app, result, trace). The pointer is configuration, not
  /// analysis input: it never affects any computed value.
  Trace* trace = nullptr;
};

/// check_certificates found a violated side-condition: the pipeline produced
/// a result its own certificate cannot justify. Carries the full report with
/// every pinpointed failure.
class CertificateCheckError : public std::runtime_error {
 public:
  explicit CertificateCheckError(CheckReport report)
      : std::runtime_error("certificate check failed:\n" + report.summary()),
        report_(std::move(report)) {}

  const CheckReport& report() const { return report_; }

 private:
  CheckReport report_;
};

struct AnalysisResult {
  /// Step 1 output: [E_i, L_i] windows and the merge sets M_i / G_i.
  TaskWindows windows;
  /// Step 2 output: per-resource partitions, in resource_set() order.
  std::vector<ResourcePartition> partitions;
  /// Step 3 output: LB_r per resource, in resource_set() order.
  std::vector<ResourceBound> bounds;
  /// Step 4 output, shared model (always computed; for the dedicated model it
  /// is still a valid statement about resource units).
  SharedCostBound shared_cost;
  /// Step 4 output, dedicated model; present iff a platform was supplied.
  /// With options.joint_bounds set, this is the strengthened (joint-row)
  /// program.
  std::optional<DedicatedCostBound> dedicated_cost;

  /// EXTENSION output: conjunctive pair bounds (empty unless
  /// options.joint_bounds was set).
  std::vector<JointBound> joint;

  /// Pre-flight lint diagnostics; present iff options.lint_level != kOff.
  /// Instances that pass the gate can still carry warnings and notes here
  /// (they are also embedded in the JSON report).
  std::optional<LintResult> lint;

  /// Pipeline certificate; present iff options.emit_certificates (or
  /// check_certificates) was set. Serialize with certificate_json().
  std::optional<Certificate> certificate;

  /// Checker verdict; present iff options.check_certificates was set. When
  /// analyze() returned normally this is always valid (an invalid verdict
  /// throws CertificateCheckError instead), so its value in a live result is
  /// the positive statement "this result was independently re-judged".
  std::optional<CheckReport> certificate_check;

  /// The lower-bound engine configuration this result was computed with
  /// (recorded so reports can state how the numbers were produced).
  LowerBoundOptions lb_options;

  /// Sorted (resource, bound) lookup index over `bounds`, rebuilt by the
  /// pipeline whenever the bound stage completes. bound_for() sits inside
  /// the synthesis/annealing hot loops, so it binary-searches this instead
  /// of scanning `bounds`; hand-assembled results that never called
  /// rebuild_bound_index() fall back to the linear scan (detected by a size
  /// mismatch), so the index can never serve stale answers silently.
  std::vector<std::pair<ResourceId, std::int64_t>> bound_index;
  void rebuild_bound_index();

  /// Lookup of the bound for a resource id; std::nullopt when the resource
  /// was not analyzed (not in RES), so "bound is 0" and "never analyzed"
  /// are distinguishable. O(log #resources) via bound_index.
  std::optional<std::int64_t> bound_for(ResourceId r) const;

  /// True if some task window cannot even contain the task ([E, L] shorter
  /// than C) -- a certificate that NO system meets the constraints.
  bool infeasible(const Application& app) const;
};

/// Run all four steps. For SystemModel::Dedicated a platform is required;
/// for Shared it may be null (then only Eq. 7.1 is produced).
AnalysisResult analyze(const Application& app, const AnalysisOptions& options = {},
                       const DedicatedPlatform* platform = nullptr);

/// The recurrent front door: lint the workload templates, lower them over
/// the shared hyperperiod (src/workload/workload.hpp), and analyze the flat
/// instance. Template-level errors (RTLB-E5xx) ALWAYS refuse -- lowering a
/// broken template is meaningless -- regardless of lint_level; with
/// lint_level != kOff the template diagnostics are additionally merged in
/// front of the application-level batch on AnalysisResult::lint. Refusals
/// throw LintGateError carrying the template findings.
AnalysisResult analyze(const ResourceCatalog& catalog, const Workload& workload,
                       const AnalysisOptions& options = {},
                       const DedicatedPlatform* platform = nullptr);

/// Render the step-1 table in the layout of the paper's Table 1.
std::string format_windows_table(const Application& app, const TaskWindows& windows);

/// Render partitions ("ST_r = {..} < {..}") in the layout of Section 8 step 2.
std::string format_partitions(const Application& app,
                              const std::vector<ResourcePartition>& partitions);

/// Render the bounds with their witness intervals.
std::string format_bounds(const Application& app, const std::vector<ResourceBound>& bounds);

}  // namespace rtlb
