// Infeasibility certificates -- the designer-facing "why".
//
// The analysis can prove two kinds of impossibility, and both deserve a
// human-readable explanation rather than a bare boolean:
//
//  * WINDOW COLLAPSE (any system): a task's [E_i, L_i] window cannot hold
//    its computation time. The certificate walks the binding chain -- which
//    release/message path forces E_i, which deadline/message path forces
//    L_i -- so the designer sees the constraint cycle to relax.
//
//  * CAPACITY VIOLATION (a given system): some interval's mandatory demand
//    Theta(r, t1, t2) exceeds caps_r * (t2 - t1) (Section 6 read in
//    reverse). The certificate names the interval, the contributing tasks
//    and their minimum overlaps.
#pragma once

#include <string>
#include <vector>

#include "src/core/est_lct.hpp"
#include "src/core/lower_bound.hpp"
#include "src/sched/schedule.hpp"

namespace rtlb {

struct WindowCollapse {
  TaskId task = kInvalidTask;
  Time est = 0;
  Time lct = 0;
  /// Chain of task names from a binding source (release or deadline anchor)
  /// to `task`, forward for the EST side and backward for the LCT side.
  std::vector<std::string> est_chain;
  std::vector<std::string> lct_chain;
};

struct CapacityViolation {
  ResourceId resource = kInvalidResource;
  int capacity = 0;
  Time t1 = 0;
  Time t2 = 0;
  Time demand = 0;  // > capacity * (t2 - t1)
  /// (task, mandatory overlap) pairs with non-zero contribution.
  std::vector<std::pair<TaskId, Time>> contributions;
};

struct InfeasibilityReport {
  bool feasible_windows = true;   // false if any window collapsed
  bool feasible_capacity = true;  // false if any interval over-demands
  std::vector<WindowCollapse> collapses;
  std::vector<CapacityViolation> violations;

  bool any() const { return !feasible_windows || !feasible_capacity; }
};

/// Diagnose `app` in isolation (window collapses) and, when `caps` is
/// non-null, against a concrete shared system (capacity violations). The
/// capacity scan reuses the lower-bound engine knobs: opts.num_threads fans
/// the per-(resource, block) interval scans out over a pool (violations are
/// still reported in deterministic resource/block order) and
/// opts.enable_pruning skips intervals that cannot hold the block's worst
/// excess. opts.use_partitioning is ignored -- the certificate search is
/// always block-local.
InfeasibilityReport diagnose(const Application& app, const TaskWindows& windows,
                             const Capacities* caps = nullptr,
                             const LowerBoundOptions& opts = {});

/// Render the report as readable prose.
std::string explain(const Application& app, const InfeasibilityReport& report);

/// The binding constraint chain behind one task's E_i, as task ids: walk the
/// EST provenance backward (merged predecessors contribute their completion,
/// remote ones completion + message) until a release time anchors, and
/// return the chain source-first, ending at `i`. Shared by the
/// WindowCollapse certificates above and the lint dataflow pass
/// (src/lint/dataflow.hpp), which names the dominating chain per diagnostic.
std::vector<TaskId> binding_est_chain(const Application& app, const TaskWindows& windows,
                                      TaskId i);

/// Mirror for the LCT side: walk the successor whose send-deadline dominates
/// L_i until a deadline anchors. Returned starting at `i`, sink-last.
std::vector<TaskId> binding_lct_chain(const Application& app, const TaskWindows& windows,
                                      TaskId i);

}  // namespace rtlb
