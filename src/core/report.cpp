#include "src/core/report.hpp"

#include "src/obs/trace.hpp"

namespace rtlb {

namespace {

Json task_name_array(const Application& app, const std::vector<TaskId>& ids) {
  Json arr = Json::array();
  for (TaskId t : ids) arr.push(app.task(t).name);
  return arr;
}

}  // namespace

Json report_json(const Application& app, const AnalysisResult& result) {
  const ResourceCatalog& cat = app.catalog();
  Json root = Json::object();

  Json tasks = Json::array();
  for (TaskId i = 0; i < app.num_tasks(); ++i) {
    const Task& t = app.task(i);
    Json item = Json::object();
    item.set("name", t.name)
        .set("comp", t.comp)
        .set("release", t.release)
        .set("deadline", t.deadline)
        .set("proc", cat.name(t.proc))
        .set("preemptive", t.preemptive)
        .set("est", result.windows.est[i])
        .set("lct", result.windows.lct[i])
        .set("merged_pred", task_name_array(app, result.windows.merged_pred[i]))
        .set("merged_succ", task_name_array(app, result.windows.merged_succ[i]));
    Json res = Json::array();
    for (ResourceId r : t.resources) res.push(cat.name(r));
    item.set("resources", std::move(res));
    tasks.push(std::move(item));
  }
  root.set("tasks", std::move(tasks));

  Json partitions = Json::array();
  for (const ResourcePartition& p : result.partitions) {
    Json entry = Json::object();
    entry.set("resource", cat.name(p.resource));
    Json blocks = Json::array();
    for (const PartitionBlock& b : p.blocks) {
      Json block = Json::object();
      block.set("start", b.start)
          .set("finish", b.finish)
          .set("tasks", task_name_array(app, b.tasks));
      blocks.push(std::move(block));
    }
    entry.set("blocks", std::move(blocks));
    partitions.push(std::move(entry));
  }
  root.set("partitions", std::move(partitions));

  Json bounds = Json::array();
  for (const ResourceBound& b : result.bounds) {
    Json entry = Json::object();
    entry.set("resource", cat.name(b.resource))
        .set("bound", b.bound)
        .set("peak_density_num", b.peak_density.num)
        .set("peak_density_den", b.peak_density.den)
        .set("witness_t1", b.witness_t1)
        .set("witness_t2", b.witness_t2)
        .set("witness_demand", b.witness_demand)
        .set("intervals_evaluated", static_cast<std::int64_t>(b.intervals_evaluated));
    bounds.push(std::move(entry));
  }
  root.set("bounds", std::move(bounds));

  Json engine = Json::object();
  engine.set("use_partitioning", result.lb_options.use_partitioning)
      .set("num_threads", result.lb_options.num_threads)
      .set("enable_pruning", result.lb_options.enable_pruning);
  root.set("lower_bound_engine", std::move(engine));

  Json shared = Json::object();
  shared.set("total", result.shared_cost.total);
  Json terms = Json::array();
  for (const SharedCostBound::Term& term : result.shared_cost.terms) {
    Json entry = Json::object();
    entry.set("resource", cat.name(term.resource))
        .set("units", term.units)
        .set("unit_cost", term.unit_cost);
    terms.push(std::move(entry));
  }
  shared.set("terms", std::move(terms));
  root.set("shared_cost", std::move(shared));

  if (result.dedicated_cost) {
    Json ded = Json::object();
    ded.set("feasible", result.dedicated_cost->feasible)
        .set("total", result.dedicated_cost->total)
        .set("relaxation", result.dedicated_cost->relaxation)
        .set("ilp_nodes", result.dedicated_cost->ilp_nodes);
    Json counts = Json::array();
    for (std::int64_t c : result.dedicated_cost->node_counts) counts.push(c);
    ded.set("node_counts", std::move(counts));
    root.set("dedicated_cost", std::move(ded));
  }

  if (result.lint) root.set("lint", lint_json(*result.lint));

  // Certificate verdict: "emitted" whenever the layer ran; "valid" only when
  // the independent checker re-judged the result (an invalid verdict never
  // reaches a report -- analyze() throws instead -- so false here can only
  // come from a caller running the checker by hand on a foreign result).
  if (result.certificate) {
    Json cert = Json::object();
    cert.set("emitted", true);
    if (result.certificate_check) {
      cert.set("checked", true).set("valid", result.certificate_check->valid);
      Json failures = Json::array();
      for (const CheckFailure& f : result.certificate_check->failures) {
        failures.push(Json::object()
                          .set("stage", f.stage)
                          .set("rule", f.rule)
                          .set("subject", f.subject)
                          .set("detail", f.detail));
      }
      cert.set("failures", std::move(failures));
    } else {
      cert.set("checked", false);
    }
    root.set("certificate", std::move(cert));
  }

  root.set("infeasible", result.infeasible(app));
  return root;
}

Json report_json(const Application& app, const AnalysisResult& result,
                 const Trace* trace) {
  Json root = report_json(app, result);
  if (trace != nullptr) root.set("timing", trace->json());
  return root;
}

std::string report_string(const Application& app, const AnalysisResult& result) {
  return report_json(app, result).dump(2);
}

Json session_stats_json(const SessionStats& stats) {
  Json out = Json::object();
  out.set("queries", static_cast<std::int64_t>(stats.queries))
      .set("query_hits", static_cast<std::int64_t>(stats.query_hits))
      .set("gate_runs", static_cast<std::int64_t>(stats.gate_runs))
      .set("lint_pass_hits", static_cast<std::int64_t>(stats.lint_pass_hits))
      .set("lint_pass_misses", static_cast<std::int64_t>(stats.lint_pass_misses))
      .set("window_hits", static_cast<std::int64_t>(stats.window_hits))
      .set("window_misses", static_cast<std::int64_t>(stats.window_misses))
      .set("partition_hits", static_cast<std::int64_t>(stats.partition_hits))
      .set("partition_misses", static_cast<std::int64_t>(stats.partition_misses))
      .set("bound_hits", static_cast<std::int64_t>(stats.bound_hits))
      .set("bound_misses", static_cast<std::int64_t>(stats.bound_misses))
      .set("block_hits", static_cast<std::int64_t>(stats.block_hits))
      .set("block_misses", static_cast<std::int64_t>(stats.block_misses))
      .set("joint_hits", static_cast<std::int64_t>(stats.joint_hits))
      .set("joint_misses", static_cast<std::int64_t>(stats.joint_misses))
      .set("cost_hits", static_cast<std::int64_t>(stats.cost_hits))
      .set("cost_misses", static_cast<std::int64_t>(stats.cost_misses))
      .set("verified", static_cast<std::int64_t>(stats.verified));
  return out;
}

Json report_json(AnalysisSession& session) {
  const AnalysisResult& result = session.analyze();
  Json root = report_json(session.app(), result);
  root.set("session", session_stats_json(session.stats()));
  return root;
}

}  // namespace rtlb
