// Memoized repeated-query analysis (the AnalysisSession).
//
// Every repeated-query driver in the repo -- the sensitivity sweeps, the
// menu variants, the synthesis search, annealing -- perturbs one scalar and
// re-runs the four-step pipeline. A cold analyze() recomputes everything;
// an AnalysisSession recomputes only what the delta invalidated:
//
//   stage          inputs (the fingerprint)                 reused when
//   -----          ------------------------                 -----------
//   lint gate      app + platform + lint_level              never (cheap)
//   EST/LCT        comp, release, deadline, messages, DAG,  none of those
//                  model (+ platform when Dedicated)        changed
//   partitions     task sets + window VALUES                windows content-
//                                                           equal, structure
//                                                           unchanged
//   block scans    per-block (est, lct, comp, preemptive)   value-equal block
//                  tuples -- task identity excluded         in BlockScanCache
//   joint bounds   windows + demand inputs + structure      all unchanged
//   shared cost    bounds (recomputed, trivial)             --
//   dedicated ILP  platform + structure + (resource, bound) all unchanged
//                  rows + joint rows
//
// Two mechanisms make the reuse exact rather than heuristic. Dirty FLAGS
// (set by the mutators, with no-op deltas detected and ignored) decide what
// to recompute; value COMPARISON decides what the recomputation actually
// changed -- e.g. a deadline delta always recomputes the windows, but if
// the new windows are value-equal the partitions, bounds, and joint rows
// are reused verbatim. The block cache goes further: its keys are the exact
// per-task geometry, so a hit is a proof of equality (see
// lower_bound.hpp::BlockScanCache) and even a query that changes SOME
// windows reuses every block it left untouched -- Theorem 5 makes that
// sound, since a block's contribution depends on nothing outside it.
//
// Every reuse path is therefore bit-identical to a cold analyze() by
// construction; set_verify(true) (or building with RTLB_SESSION_VERIFY, or
// setting the environment variable of the same name) additionally
// cross-checks every query against a cold analyze() and aborts on any
// mismatch. The property test (tests/test_session.cpp) drives randomized
// delta sequences through both paths.
//
// Since the pipeline refactor the session no longer sequences stages
// itself: a non-hit query runs run_pipeline() (src/core/pipeline.hpp) with
// a StageCache implementation that answers the pipeline's reuse questions
// from the table above -- the same stage code, in the same order, as a cold
// analyze(); only the cache policy differs.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "src/core/analysis.hpp"

namespace rtlb {

/// Per-stage reuse counters of one AnalysisSession, fed by the pipeline's
/// StageCache accounting hooks (src/core/pipeline.hpp) -- every stage of
/// every non-hit query records exactly one hit or miss. "Hit" means the
/// stage's previous output was served without recomputation (for blocks:
/// served from the BlockScanCache); a query that short-circuits entirely
/// (query_hits) does not also count per-stage hits.
struct SessionStats {
  std::uint64_t queries = 0;      ///< analyze() calls that completed
  std::uint64_t query_hits = 0;   ///< ... of which returned the cached result

  /// kLintGate executions that passed (refused queries throw before being
  /// counted). Since the incremental-lint refactor the gate's RESULT may be
  /// assembled from cached per-pass slices -- gate_runs still counts every
  /// execution; the per-pass counters below break it down.
  std::uint64_t gate_runs = 0;

  /// Per-pass incremental lint reuse: every gate run at a lint level other
  /// than kOff counts one hit (slice served verbatim) or miss (pass re-run)
  /// per registered lint pass. Always zero at LintLevel::kOff.
  std::uint64_t lint_pass_hits = 0;
  std::uint64_t lint_pass_misses = 0;

  std::uint64_t window_hits = 0;  ///< kWindows served verbatim
  std::uint64_t window_misses = 0;

  std::uint64_t partition_hits = 0;  ///< kPartitions reused (windows value-equal)
  std::uint64_t partition_misses = 0;

  std::uint64_t bound_hits = 0;    ///< kBounds whole-stage replays
  std::uint64_t bound_misses = 0;  ///< ... vs stage recomputes (which may
                                   ///< still reuse individual blocks below)

  std::uint64_t block_hits = 0;    ///< BlockScanCache hits (per block)
  std::uint64_t block_misses = 0;  ///< ... and misses (scans actually run)

  std::uint64_t joint_hits = 0;    ///< conjunctive joint rows reused
  std::uint64_t joint_misses = 0;  ///< ... vs recomputed (joint_bounds only)

  std::uint64_t cost_hits = 0;    ///< dedicated ILP solves skipped
  std::uint64_t cost_misses = 0;  ///< dedicated ILP solves run

  std::uint64_t verified = 0;  ///< queries cross-checked against cold analyze()
};

/// A stateful wrapper over (Application, AnalysisOptions, platform) serving
/// analyze()-equivalent queries with memoization. Mutate through the
/// set_* deltas, then call analyze(); results are bit-identical to
/// rtlb::analyze(app(), options(), platform()) at every query, including
/// thrown ModelError / LintGateError. NOT thread-safe; drivers that fan
/// sweep points over a pool use one session per worker.
class AnalysisSession {
 public:
  /// The session owns copies of everything it wraps, so callers may mutate
  /// or destroy their originals freely.
  explicit AnalysisSession(Application app, AnalysisOptions options = {},
                           const DedicatedPlatform* platform = nullptr);

  /// Recurrent front door: lint `workload`'s templates (throwing
  /// LintGateError on any RTLB-E5xx finding, exactly like
  /// analyze(catalog, workload, ...)), lower it over the shared hyperperiod,
  /// and wrap the lowered Application. Sessions built this way additionally
  /// accept the template-level deltas below; the catalog is copied so the
  /// caller's may go away.
  AnalysisSession(const ResourceCatalog& catalog, Workload workload,
                  AnalysisOptions options = {}, const DedicatedPlatform* platform = nullptr);

  const Application& app() const { return app_; }
  const AnalysisOptions& options() const { return options_; }
  const DedicatedPlatform* platform() const {
    return platform_ ? &*platform_ : nullptr;
  }

  // -- Deltas. Each detects no-ops (new value == current) and invalidates
  // -- nothing in that case, so a sweep point at factor 1.0 is a query hit.

  void set_comp(TaskId i, Time comp);
  void set_release(TaskId i, Time release);
  void set_deadline(TaskId i, Time deadline);
  void set_preemptive(TaskId i, bool preemptive);
  /// Resize the message on an existing edge from -> to (ModelError if the
  /// edge does not exist; deltas never change the DAG shape).
  void set_message(TaskId from, TaskId to, Time msg_size);
  /// Swap the platform menu (nullptr removes it). Invalidates the windows
  /// only under the dedicated model, where the merge oracle consults it.
  void set_platform(const DedicatedPlatform* platform);
  /// Replace the wrapped application wholesale. Invalidates every stage --
  /// except the block cache, whose keys are task-identity-free and so
  /// survive even regeneration of a value-similar workload.
  void replace_application(Application app);

  // -- Template-level deltas (workload sessions only; ModelError otherwise).
  // -- Each mutates the template, re-lints it (LintGateError on E5xx), and
  // -- re-lowers. The lowered instance is byte-compared against the current
  // -- one: a no-op delta (e.g. a period set to its current value, or a
  // -- change that lowers identically) invalidates nothing, and a real
  // -- change goes through replace_application() -- so the block cache still
  // -- serves every activation slot the delta left untouched, and the next
  // -- analyze() is byte-identical to a cold re-analysis of the mutated
  // -- workload by construction.

  /// The wrapped template set; nullptr for sessions over a flat Application.
  const Workload* workload() const { return workload_ ? &*workload_ : nullptr; }

  /// Change a transaction's period (minimum inter-arrival for sporadic).
  void set_transaction_period(const std::string& transaction, Time period);
  /// Change a transaction's release offset.
  void set_transaction_offset(const std::string& transaction, Time offset);
  /// Change one template task's computation time (every activation follows).
  void set_template_comp(const std::string& transaction, const std::string& task, Time comp);

  /// Serve the query. The reference is valid until the next mutation or
  /// query. Throws exactly what a cold analyze() would (dedicated model
  /// without platform, validate()/lint gate refusals).
  const AnalysisResult& analyze();

  /// Cross-check every query against a cold analyze() (bit-for-bit, via the
  /// JSON report plus the joint rows). Defaults to on when built with
  /// RTLB_SESSION_VERIFY or run with the RTLB_SESSION_VERIFY environment
  /// variable set to a non-empty value other than "0".
  void set_verify(bool verify) { verify_ = verify; }
  bool verify() const { return verify_; }

  /// Reuse counters (block hits/misses reflect the engine cache).
  SessionStats stats() const;

 private:
  void require_valid_task(TaskId i) const;
  void mark_timing_changed();
  Transaction& require_transaction(const std::string& name);
  void relower_workload();

  /// Workload sessions own their catalog (stable address for re-lowering);
  /// flat sessions leave both empty. Declared before app_: the delegating
  /// constructor lowers against *catalog_.
  std::unique_ptr<ResourceCatalog> catalog_;
  std::optional<Workload> workload_;
  /// serialize_instance() bytes of the current lowered application -- the
  /// no-op detector for template deltas.
  std::string lowered_bytes_;

  Application app_;
  AnalysisOptions options_;
  std::optional<DedicatedPlatform> platform_;

  // Dirty flags since the last completed query.
  bool windows_dirty_ = true;    ///< EST/LCT inputs changed
  bool demand_dirty_ = true;     ///< comp / preemptive changed (Theta inputs)
  bool structure_dirty_ = true;  ///< task sets / DAG / catalog ids changed
  bool platform_dirty_ = true;   ///< the menu itself changed
  bool have_result_ = false;     ///< result_ answers the current inputs

  AnalysisResult result_;
  BlockScanCache block_cache_;
  /// Last lint run's per-pass diagnostic slices; a pass whose inputs no
  /// dirty flag touches is served from here on the next gate run
  /// (bit-identical by construction -- see Linter::run_with_reuse).
  LintPassSlices lint_slices_;
  bool verify_ = false;
  SessionStats stats_;
};

}  // namespace rtlb
