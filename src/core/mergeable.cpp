#include "src/core/mergeable.hpp"

#include <algorithm>

namespace rtlb {

namespace {

/// All tasks on the same processor type (condition (i) of both definitions).
bool same_proc_type(const Application& app, std::span<const TaskId> tasks) {
  for (std::size_t i = 1; i < tasks.size(); ++i) {
    if (app.task(tasks[i]).proc != app.task(tasks[0]).proc) return false;
  }
  return true;
}

}  // namespace

bool SharedMergeOracle::mergeable(const Application& app, std::span<const TaskId> tasks) const {
  return tasks.size() <= 1 || same_proc_type(app, tasks);
}

bool DedicatedMergeOracle::mergeable(const Application& app,
                                     std::span<const TaskId> tasks) const {
  if (tasks.empty()) return true;
  if (!same_proc_type(app, tasks)) return false;
  // Union of the tasks' resource sets (condition (ii)).
  std::vector<ResourceId> required;
  for (TaskId t : tasks) {
    const auto& res = app.task(t).resources;
    required.insert(required.end(), res.begin(), res.end());
  }
  std::sort(required.begin(), required.end());
  required.erase(std::unique(required.begin(), required.end()), required.end());
  return platform_->some_node_hosts(app.task(tasks[0]).proc, required);
}

}  // namespace rtlb
