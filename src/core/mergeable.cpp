#include "src/core/mergeable.hpp"

#include <algorithm>
#include <vector>

namespace rtlb {

namespace {

/// All tasks on the same processor type (condition (i) of both definitions).
bool same_proc_type(const Application& app, std::span<const TaskId> tasks) {
  for (std::size_t i = 1; i < tasks.size(); ++i) {
    if (app.task(tasks[i]).proc != app.task(tasks[0]).proc) return false;
  }
  return true;
}

/// Fallback cursor: materialize the set and re-ask mergeable() per step.
class GenericCursor final : public MergeOracle::Cursor {
 public:
  GenericCursor(const MergeOracle& oracle, const Application& app)
      : oracle_(&oracle), app_(&app) {}

  void reset(TaskId seed) override {
    set_.clear();
    set_.push_back(seed);
  }

  bool try_add(TaskId t) override {
    set_.push_back(t);
    if (oracle_->mergeable(*app_, set_)) return true;
    set_.pop_back();
    return false;
  }

 private:
  const MergeOracle* oracle_;
  const Application* app_;
  std::vector<TaskId> set_;
};

/// Definition 1 incrementally: only the seed's processor type matters.
class SharedCursor final : public MergeOracle::Cursor {
 public:
  explicit SharedCursor(const Application& app) : app_(&app) {}

  void reset(TaskId seed) override { proc_ = app_->task(seed).proc; }

  bool try_add(TaskId t) override { return app_->task(t).proc == proc_; }

 private:
  const Application* app_;
  ResourceId proc_ = kInvalidResource;
};

/// Definition 2 incrementally: carry the sorted resource union across steps;
/// an extension merges the candidate's (already canonicalized) resource list
/// into a tentative union and asks the platform once.
class DedicatedCursor final : public MergeOracle::Cursor {
 public:
  DedicatedCursor(const Application& app, const DedicatedPlatform& platform)
      : app_(&app), platform_(&platform) {}

  void reset(TaskId seed) override {
    proc_ = app_->task(seed).proc;
    union_ = app_->task(seed).resources;  // canonical: sorted, deduplicated
  }

  bool try_add(TaskId t) override {
    const Task& task = app_->task(t);
    if (task.proc != proc_) return false;
    tentative_.clear();
    std::set_union(union_.begin(), union_.end(), task.resources.begin(),
                   task.resources.end(), std::back_inserter(tentative_));
    if (!platform_->some_node_hosts(proc_, tentative_)) return false;
    union_.swap(tentative_);
    return true;
  }

 private:
  const Application* app_;
  const DedicatedPlatform* platform_;
  ResourceId proc_ = kInvalidResource;
  std::vector<ResourceId> union_;
  std::vector<ResourceId> tentative_;
};

}  // namespace

std::unique_ptr<MergeOracle::Cursor> MergeOracle::cursor(const Application& app) const {
  return std::make_unique<GenericCursor>(*this, app);
}

bool SharedMergeOracle::mergeable(const Application& app, std::span<const TaskId> tasks) const {
  return tasks.size() <= 1 || same_proc_type(app, tasks);
}

std::unique_ptr<MergeOracle::Cursor> SharedMergeOracle::cursor(const Application& app) const {
  return std::make_unique<SharedCursor>(app);
}

bool DedicatedMergeOracle::mergeable(const Application& app,
                                     std::span<const TaskId> tasks) const {
  if (tasks.empty()) return true;
  if (!same_proc_type(app, tasks)) return false;
  // Union of the tasks' resource sets (condition (ii)).
  std::vector<ResourceId> required;
  for (TaskId t : tasks) {
    const auto& res = app.task(t).resources;
    required.insert(required.end(), res.begin(), res.end());
  }
  std::sort(required.begin(), required.end());
  required.erase(std::unique(required.begin(), required.end()), required.end());
  return platform_->some_node_hosts(app.task(tasks[0]).proc, required);
}

std::unique_ptr<MergeOracle::Cursor> DedicatedMergeOracle::cursor(
    const Application& app) const {
  return std::make_unique<DedicatedCursor>(app, *platform_);
}

}  // namespace rtlb
