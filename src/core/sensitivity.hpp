// Design-sensitivity analysis -- the workflow the paper's conclusion
// sketches: "a designer can modify the set of resources dedicated to a
// processor and quickly estimate its effect on the overall system cost."
//
// Three sweeps are provided:
//  * deadline laxity: scale every deadline window and watch LB_r fall from
//    the parallelism-forced peak to the work-bound floor;
//  * message scaling: scale every m_ij and watch communication pressure
//    move the bounds (merging soaks up part of it);
//  * node-menu variants: add/remove node types from Lambda and recompute the
//    dedicated cost bound for each variant.
#pragma once

#include <string>
#include <vector>

#include "src/core/analysis.hpp"
#include "src/model/application.hpp"
#include "src/model/platform.hpp"

namespace rtlb {

struct SweepPoint {
  double factor = 1.0;
  /// True if some task window became infeasible at this factor.
  bool infeasible = false;
  /// LB_r per resource, in resource_set() order.
  std::vector<std::int64_t> bounds;
  /// Eq. 7.1 cost floor.
  Cost shared_cost = 0;
};

/// Scale every deadline's slack: D'_i = rel_i + ceil(factor * (D_i - rel_i)).
/// Factors < 1 tighten, > 1 relax. The application itself is not modified.
std::vector<SweepPoint> deadline_laxity_sweep(const Application& app,
                                              const std::vector<double>& factors,
                                              const AnalysisOptions& options = {},
                                              const DedicatedPlatform* platform = nullptr);

/// Scale every message size: m'_ij = round(factor * m_ij).
std::vector<SweepPoint> message_scale_sweep(const Application& app,
                                            const std::vector<double>& factors,
                                            const AnalysisOptions& options = {},
                                            const DedicatedPlatform* platform = nullptr);

struct MenuVariantResult {
  std::string name;
  bool feasible = false;
  Cost dedicated_cost = 0;
  double relaxation = 0;
};

/// Evaluate the dedicated cost bound for each candidate node menu.
std::vector<MenuVariantResult> menu_variants(
    const Application& app,
    const std::vector<std::pair<std::string, DedicatedPlatform>>& menus);

}  // namespace rtlb
