// Design-sensitivity analysis -- the workflow the paper's conclusion
// sketches: "a designer can modify the set of resources dedicated to a
// processor and quickly estimate its effect on the overall system cost."
//
// Three sweeps are provided:
//  * deadline laxity: scale every deadline window and watch LB_r fall from
//    the parallelism-forced peak to the work-bound floor;
//  * message scaling: scale every m_ij and watch communication pressure
//    move the bounds (merging soaks up part of it);
//  * node-menu variants: add/remove node types from Lambda and recompute the
//    dedicated cost bound for each variant.
//
// All sweeps run through a memoized AnalysisSession (src/core/session.hpp),
// so consecutive points recompute only what the factor actually changed, and
// fan independent points over the thread pool when
// options.lower_bound.num_threads asks for more than one worker (each point
// then runs a serial inner engine). Results are identical at any thread
// count.
//
// Rounding rule (shared by BOTH scaling sweeps): scaled tick counts go
// through scale_time() -- round half away from zero, saturate to
// [0, kTimeMax] -- so arbitrarily large factors are well-defined instead of
// an undefined double->int64 cast.
#pragma once

#include <string>
#include <vector>

#include "src/core/analysis.hpp"
#include "src/model/application.hpp"
#include "src/model/platform.hpp"

namespace rtlb {

struct SweepPoint {
  double factor = 1.0;
  /// True if some task window became infeasible at this factor.
  bool infeasible = false;
  /// LB_r per resource, in resource_set() order.
  std::vector<std::int64_t> bounds;
  /// Eq. 7.1 cost floor.
  Cost shared_cost = 0;
};

/// Scale every deadline's slack: D'_i = rel_i + scale_time(factor, D_i - rel_i),
/// clipped up to rel_i + C_i (the point is then flagged infeasible).
/// Factors < 1 tighten, > 1 relax. The application itself is not modified.
std::vector<SweepPoint> deadline_laxity_sweep(const Application& app,
                                              const std::vector<double>& factors,
                                              const AnalysisOptions& options = {},
                                              const DedicatedPlatform* platform = nullptr);

/// Scale every message size: m'_ij = scale_time(factor, m_ij).
std::vector<SweepPoint> message_scale_sweep(const Application& app,
                                            const std::vector<double>& factors,
                                            const AnalysisOptions& options = {},
                                            const DedicatedPlatform* platform = nullptr);

struct MenuVariantResult {
  std::string name;
  bool feasible = false;
  Cost dedicated_cost = 0;
  double relaxation = 0;
};

/// Evaluate the dedicated cost bound for each candidate node menu. The
/// caller's options are honoured (lb_options, lint_level, joint_bounds);
/// options.model is forced to Dedicated.
std::vector<MenuVariantResult> menu_variants(
    const Application& app,
    const std::vector<std::pair<std::string, DedicatedPlatform>>& menus,
    const AnalysisOptions& options = {});

}  // namespace rtlb
