// Minimum-overlap functions Psi (Theorems 3 and 4) and interval demand Theta.
//
// Psi(i, t1, t2) is the least amount of execution of task i that EVERY
// feasible schedule must place inside [t1, t2], given that i executes
// somewhere in its window [E_i, L_i]. Preemptive tasks may split around the
// interval (Theorem 3); non-preemptive tasks execute in one contiguous block
// (Theorem 4), so their overlap is never more than (t2 - t1) but can exceed
// the preemptive value.
#pragma once

#include <algorithm>
#include <span>

#include "src/core/est_lct.hpp"
#include "src/model/application.hpp"

namespace rtlb {

/// Theorem 3: minimum overlap of a preemptive task with window [e, l],
/// computation c, against the interval [t1, t2] (t1 < t2). Inline: this is
/// the innermost operation of the density scan (once per task per candidate
/// interval), so it must fold into its callers' loops.
inline Time overlap_preemptive(Time c, Time e, Time l, Time t1, Time t2) {
  RTLB_CHECK(t1 < t2, "overlap: empty interval");
  // Equation 6.1.
  if (mu(l - t1) * mu(t2 - e) == 0) return 0;
  return std::min({c,
                   alpha(c - (t1 - e)),
                   alpha(c - (l - t2)),
                   alpha(c - (l - t2) - (t1 - e))});
}

/// Theorem 4: minimum overlap of a non-preemptive task.
inline Time overlap_nonpreemptive(Time c, Time e, Time l, Time t1, Time t2) {
  RTLB_CHECK(t1 < t2, "overlap: empty interval");
  // Equation 6.2.
  if (mu(l - t1) * mu(t2 - e) == 0) return 0;
  return std::min({c,
                   alpha(c - (t1 - e)),
                   alpha(c - (l - t2)),
                   t2 - t1});
}

/// Psi for a task, dispatching on its preemptive flag.
Time overlap(const Application& app, const TaskWindows& windows, TaskId i, Time t1, Time t2);

/// Theta(r, t1, t2) restricted to the given tasks: total execution the tasks
/// must place in [t1, t2].
Time demand(const Application& app, const TaskWindows& windows, std::span<const TaskId> tasks,
            Time t1, Time t2);

/// Brute-force reference for the tests: slide a contiguous (non-preemptive)
/// or split (preemptive, via two fragments around the interval) placement of
/// the task over all integer start times in its window and take the minimum
/// overlap with [t1, t2]. Exact for integer parameters.
Time overlap_brute_force(Time c, Time e, Time l, Time t1, Time t2, bool preemptive);

}  // namespace rtlb
