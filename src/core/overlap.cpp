#include "src/core/overlap.hpp"

#include <algorithm>

namespace rtlb {

Time overlap(const Application& app, const TaskWindows& windows, TaskId i, Time t1, Time t2) {
  const Task& t = app.task(i);
  return t.preemptive
             ? overlap_preemptive(t.comp, windows.est[i], windows.lct[i], t1, t2)
             : overlap_nonpreemptive(t.comp, windows.est[i], windows.lct[i], t1, t2);
}

Time demand(const Application& app, const TaskWindows& windows, std::span<const TaskId> tasks,
            Time t1, Time t2) {
  Time sum = 0;
  for (TaskId i : tasks) {
    if (__builtin_add_overflow(sum, overlap(app, windows, i, t1, t2), &sum)) {
      throw ModelError("demand: accumulated Theta overflows Time");
    }
  }
  return sum;
}

Time overlap_brute_force(Time c, Time e, Time l, Time t1, Time t2, bool preemptive) {
  RTLB_CHECK(l - e >= c, "overlap_brute_force: window too small for the task");
  if (preemptive) {
    // A preemptive task can push work into the parts of its window outside
    // [t1, t2]; whatever does not fit there must overlap the interval.
    const Time before = alpha(std::min(l, t1) - e);
    const Time after = alpha(l - std::max(e, t2));
    return alpha(c - before - after);
  }
  // Non-preemptive: slide the contiguous block over every integer start.
  Time best = kTimeMax;
  for (Time s = e; s + c <= l; ++s) {
    const Time ov = alpha(std::min(s + c, t2) - std::max(s, t1));
    best = std::min(best, ov);
  }
  return best;
}

}  // namespace rtlb
