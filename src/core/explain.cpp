#include "src/core/explain.hpp"

#include <algorithm>
#include <optional>
#include <sstream>

#include "src/common/thread_pool.hpp"
#include "src/core/overlap.hpp"
#include "src/core/partition.hpp"

namespace rtlb {

std::vector<TaskId> binding_est_chain(const Application& app, const TaskWindows& w,
                                      TaskId i) {
  std::vector<TaskId> chain{i};
  TaskId cur = i;
  for (std::size_t guard = 0; guard <= app.num_tasks(); ++guard) {
    TaskId binding = kInvalidTask;
    Time best = app.task(cur).release;
    for (TaskId j : app.predecessors(cur)) {
      const bool merged =
          std::find(w.merged_pred[cur].begin(), w.merged_pred[cur].end(), j) !=
          w.merged_pred[cur].end();
      const Time contribution =
          w.est[j] + app.task(j).comp + (merged ? 0 : app.message(j, cur));
      if (contribution > best) {
        best = contribution;
        binding = j;
      }
    }
    if (binding == kInvalidTask) break;  // the release time anchors the chain
    chain.push_back(binding);
    cur = binding;
  }
  std::reverse(chain.begin(), chain.end());
  return chain;
}

std::vector<TaskId> binding_lct_chain(const Application& app, const TaskWindows& w,
                                      TaskId i) {
  std::vector<TaskId> chain{i};
  TaskId cur = i;
  for (std::size_t guard = 0; guard <= app.num_tasks(); ++guard) {
    TaskId binding = kInvalidTask;
    Time best = app.task(cur).deadline;
    for (TaskId j : app.successors(cur)) {
      const bool merged =
          std::find(w.merged_succ[cur].begin(), w.merged_succ[cur].end(), j) !=
          w.merged_succ[cur].end();
      const Time contribution =
          w.lct[j] - app.task(j).comp - (merged ? 0 : app.message(cur, j));
      if (contribution < best) {
        best = contribution;
        binding = j;
      }
    }
    if (binding == kInvalidTask) break;  // the deadline anchors the chain
    chain.push_back(binding);
    cur = binding;
  }
  return chain;
}

namespace {

/// The worst over-capacity interval of one partition block, or nullopt. One
/// (resource, block) pair is one unit of the diagnose fan-out.
std::optional<CapacityViolation> worst_block_violation(const Application& app,
                                                       const TaskWindows& windows,
                                                       ResourceId r, int cap,
                                                       const PartitionBlock& block,
                                                       bool prune) {
  std::vector<Time> points;
  Time total_demand = 0;
  for (TaskId i : block.tasks) {
    points.push_back(windows.est[i]);
    points.push_back(windows.lct[i]);
    total_demand += app.task(i).comp;
  }
  std::sort(points.begin(), points.end());
  points.erase(std::unique(points.begin(), points.end()), points.end());

  CapacityViolation worst;
  Time worst_excess = 0;
  for (std::size_t x = 0; x + 1 < points.size(); ++x) {
    for (std::size_t y = x + 1; y < points.size(); ++y) {
      const Time width = points[y] - points[x];
      // Theta <= total_demand and the supply cap * width only grows with y,
      // so the best-possible excess of the rest of the row is below the
      // incumbent: skip it.
      if (prune && !(static_cast<__int128>(total_demand) -
                         static_cast<__int128>(cap) * width >
                     worst_excess)) {
        break;
      }
      const Time theta = demand(app, windows, block.tasks, points[x], points[y]);
      const Time excess = theta - static_cast<Time>(cap) * width;
      if (excess > worst_excess) {
        worst_excess = excess;
        worst.resource = r;
        worst.capacity = cap;
        worst.t1 = points[x];
        worst.t2 = points[y];
        worst.demand = theta;
      }
    }
  }
  if (worst_excess <= 0) return std::nullopt;
  for (TaskId i : block.tasks) {
    const Time psi = overlap(app, windows, i, worst.t1, worst.t2);
    if (psi > 0) worst.contributions.emplace_back(i, psi);
  }
  return worst;
}

}  // namespace

InfeasibilityReport diagnose(const Application& app, const TaskWindows& windows,
                             const Capacities* caps, const LowerBoundOptions& opts) {
  InfeasibilityReport report;

  for (TaskId i = 0; i < app.num_tasks(); ++i) {
    if (windows.slack(app, i) < 0) {
      report.feasible_windows = false;
      WindowCollapse c;
      c.task = i;
      c.est = windows.est[i];
      c.lct = windows.lct[i];
      for (TaskId t : binding_est_chain(app, windows, i)) {
        c.est_chain.push_back(app.task(t).name);
      }
      for (TaskId t : binding_lct_chain(app, windows, i)) {
        c.lct_chain.push_back(app.task(t).name);
      }
      report.collapses.push_back(std::move(c));
    }
  }

  if (caps != nullptr) {
    // Materialize the (resource, block) units first, then scan them serially
    // or across a pool; results land in per-unit slots and are appended in
    // unit order, so the report is identical at any thread count.
    std::vector<ResourcePartition> partitions;
    for (ResourceId r : app.resource_set()) {
      partitions.push_back(partition_tasks(app, windows, r));
    }
    struct Unit {
      ResourceId resource;
      int cap;
      const PartitionBlock* block;
    };
    std::vector<Unit> units;
    for (const ResourcePartition& p : partitions) {
      for (const PartitionBlock& b : p.blocks) {
        units.push_back({p.resource, caps->of(p.resource), &b});
      }
    }

    std::vector<std::optional<CapacityViolation>> found(units.size());
    auto run_one = [&](std::size_t i) {
      found[i] = worst_block_violation(app, windows, units[i].resource, units[i].cap,
                                       *units[i].block, opts.enable_pruning);
    };
    const unsigned workers =
        opts.num_threads == 1 ? 1 : ThreadPool::resolve_threads(opts.num_threads);
    if (workers <= 1 || units.size() <= 1) {
      for (std::size_t i = 0; i < units.size(); ++i) run_one(i);
    } else {
      ThreadPool pool(workers);
      pool.parallel_for(units.size(), run_one);
    }

    for (std::optional<CapacityViolation>& v : found) {
      if (!v) continue;
      report.feasible_capacity = false;
      report.violations.push_back(std::move(*v));
    }
  }
  return report;
}

std::string explain(const Application& app, const InfeasibilityReport& report) {
  std::ostringstream out;
  if (!report.any()) {
    out << "no infeasibility detected: every window holds its task";
    if (report.violations.empty() && report.feasible_capacity) {
      out << " and no interval over-demands any resource";
    }
    out << ".\n";
    return out.str();
  }
  for (const WindowCollapse& c : report.collapses) {
    const Task& t = app.task(c.task);
    out << "task '" << t.name << "' cannot fit: its window [" << c.est << ", " << c.lct
        << "] holds " << (c.lct - c.est) << " tick(s) but the task needs " << t.comp
        << ".\n  earliest start " << c.est << " is forced by the chain ";
    for (std::size_t k = 0; k < c.est_chain.size(); ++k) {
      out << (k ? " -> " : "") << c.est_chain[k];
    }
    out << "\n  latest completion " << c.lct << " is forced by the chain ";
    for (std::size_t k = 0; k < c.lct_chain.size(); ++k) {
      out << (k ? " -> " : "") << c.lct_chain[k];
    }
    out << "\n";
  }
  for (const CapacityViolation& v : report.violations) {
    out << "resource '" << app.catalog().name(v.resource) << "' (" << v.capacity
        << " unit(s)) is over-committed in [" << v.t1 << ", " << v.t2 << "]: mandatory demand "
        << v.demand << " > " << v.capacity << " x " << (v.t2 - v.t1) << ".\n  contributors:";
    for (const auto& [task, psi] : v.contributions) {
      out << " " << app.task(task).name << "(" << psi << ")";
    }
    out << "\n";
  }
  return out.str();
}

}  // namespace rtlb
