#include "src/core/analysis.hpp"

#include <algorithm>
#include <sstream>

#include "src/common/strings.hpp"
#include "src/common/table.hpp"
#include "src/core/pipeline.hpp"
#include "src/lint/recurrent.hpp"
#include "src/workload/workload.hpp"

namespace rtlb {

void AnalysisResult::rebuild_bound_index() {
  bound_index.clear();
  bound_index.reserve(bounds.size());
  for (const ResourceBound& b : bounds) bound_index.emplace_back(b.resource, b.bound);
  std::sort(bound_index.begin(), bound_index.end());
}

std::optional<std::int64_t> AnalysisResult::bound_for(ResourceId r) const {
  if (bound_index.size() == bounds.size()) {
    const auto it = std::lower_bound(
        bound_index.begin(), bound_index.end(), r,
        [](const std::pair<ResourceId, std::int64_t>& entry, ResourceId key) {
          return entry.first < key;
        });
    if (it != bound_index.end() && it->first == r) return it->second;
    return std::nullopt;
  }
  // Hand-assembled result that never went through the pipeline: fall back
  // to the scan rather than trust a stale index.
  for (const ResourceBound& b : bounds) {
    if (b.resource == r) return b.bound;
  }
  return std::nullopt;
}

bool AnalysisResult::infeasible(const Application& app) const {
  for (TaskId i = 0; i < app.num_tasks(); ++i) {
    if (windows.slack(app, i) < 0) return true;
  }
  return false;
}

AnalysisResult analyze(const Application& app, const AnalysisOptions& options,
                       const DedicatedPlatform* platform) {
  // Thin driver: the staged sequencing (pre-flight gate, EST/LCT,
  // partitions, bounds, costs, certificate post-stage) lives solely in
  // run_pipeline(); a cold call is the pipeline with an empty stage cache.
  return run_pipeline(app, options, platform);
}

AnalysisResult analyze(const ResourceCatalog& catalog, const Workload& workload,
                       const AnalysisOptions& options, const DedicatedPlatform* platform) {
  if (options.lint_level == LintLevel::kOff) {
    // Historical contract: no batching, first template error throws
    // ModelError from validate_workload() inside the lowering.
    return run_pipeline(lower_workload(catalog, workload), options, platform);
  }
  LintResult wl = lint_workload(catalog, workload, platform);
  // Template errors always refuse: lowering a broken template is
  // meaningless, so E5xx behaves like the structural refusal set even at
  // kReport. Warnings (W510) follow the configured policy.
  if (wl.has_errors() || lint_gate_refuses(wl, options.lint_level)) {
    throw LintGateError(std::move(wl));
  }
  LowerOptions lower;
  lower.validate = false;  // the template batch above IS the validation
  Application app = lower_workload(catalog, workload, lower);
  app.validate();
  AnalysisResult result = run_pipeline(app, options, platform);
  if (result.lint.has_value()) {
    result.lint = merge_lint_results(std::move(wl), std::move(*result.lint));
  } else {
    result.lint = std::move(wl);
  }
  return result;
}

namespace {

std::string task_names(const Application& app, const std::vector<TaskId>& ids) {
  std::vector<std::string> names;
  names.reserve(ids.size());
  for (TaskId t : ids) names.push_back(app.task(t).name);
  return brace_set(names);
}

}  // namespace

std::string format_windows_table(const Application& app, const TaskWindows& windows) {
  Table table({"Task i", "E_i", "M_i", "L_i", "G_i"});
  for (TaskId i = 0; i < app.num_tasks(); ++i) {
    table.add(app.task(i).name, windows.est[i], task_names(app, windows.merged_pred[i]),
              windows.lct[i], task_names(app, windows.merged_succ[i]));
  }
  return table.to_string();
}

std::string format_partitions(const Application& app,
                              const std::vector<ResourcePartition>& partitions) {
  std::ostringstream out;
  for (const ResourcePartition& p : partitions) {
    out << "ST_" << app.catalog().name(p.resource) << " = ";
    for (std::size_t k = 0; k < p.blocks.size(); ++k) {
      if (k) out << " < ";
      std::vector<std::string> names;
      for (TaskId t : p.blocks[k].tasks) names.push_back(app.task(t).name);
      out << "{" << join(names, ",") << "}";
    }
    if (p.blocks.empty()) out << "{}";
    out << "\n";
  }
  return out.str();
}

std::string format_bounds(const Application& app, const std::vector<ResourceBound>& bounds) {
  Table table({"Resource r", "LB_r", "peak density", "witness [t1,t2]", "Theta"});
  for (const ResourceBound& b : bounds) {
    std::ostringstream density;
    density << b.peak_density.num << "/" << b.peak_density.den;
    std::ostringstream witness;
    witness << "[" << b.witness_t1 << "," << b.witness_t2 << "]";
    table.add(app.catalog().name(b.resource), b.bound, density.str(), witness.str(),
              b.witness_demand);
  }
  return table.to_string();
}

}  // namespace rtlb
