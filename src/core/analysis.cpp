#include "src/core/analysis.hpp"

#include <sstream>

#include "src/common/strings.hpp"
#include "src/common/table.hpp"
#include "src/verify/emit.hpp"

namespace rtlb {

std::optional<std::int64_t> AnalysisResult::bound_for(ResourceId r) const {
  for (const ResourceBound& b : bounds) {
    if (b.resource == r) return b.bound;
  }
  return std::nullopt;
}

bool AnalysisResult::infeasible(const Application& app) const {
  for (TaskId i = 0; i < app.num_tasks(); ++i) {
    if (windows.slack(app, i) < 0) return true;
  }
  return false;
}

AnalysisResult analyze(const Application& app, const AnalysisOptions& options,
                       const DedicatedPlatform* platform) {
  if (options.model == SystemModel::Dedicated && platform == nullptr) {
    throw ModelError("analyze: dedicated model requires a platform");
  }

  AnalysisResult result;

  // Pre-flight gate: batch-diagnose the instance before spending bound-scan
  // time on it. The linter subsumes validate() (its structural pass IS
  // validate's check set), so the separate call is only needed at kOff.
  if (options.lint_level == LintLevel::kOff) {
    app.validate();
  } else {
    LintResult lint_result = lint(app, platform);
    bool refused = false;
    switch (options.lint_level) {
      case LintLevel::kOff: break;
      case LintLevel::kReport:
        // Same refusal set as validate(): structural (RTLB-E0xx) errors
        // only. Semantic errors (window collapse, uncoverable tasks) are
        // recorded but analyzed, as the historical pipeline did.
        for (const Diagnostic& d : lint_result.diagnostics) {
          refused |= d.severity == Severity::kError && d.code.starts_with("RTLB-E0");
        }
        break;
      case LintLevel::kErrors: refused = lint_result.has_errors(); break;
      case LintLevel::kWarnings:
        refused = lint_result.has_errors() || lint_result.warnings > 0;
        break;
    }
    if (refused) throw LintGateError(std::move(lint_result));
    result.lint = std::move(lint_result);
  }

  // Step 1: EST/LCT under the model's mergeability notion.
  if (options.model == SystemModel::Dedicated) {
    DedicatedMergeOracle oracle(*platform);
    result.windows = compute_windows(app, oracle);
  } else {
    SharedMergeOracle oracle;
    result.windows = compute_windows(app, oracle);
  }

  // Step 2: partitions (recorded even when the bound evaluation is asked to
  // run unpartitioned, so callers can always inspect them).
  result.partitions = partition_all(app, result.windows);

  // Step 3: LB_r for every r in RES.
  result.lb_options = options.lower_bound;
  result.bounds = all_resource_bounds(app, result.windows, options.lower_bound);

  // Step 4: cost bounds (with the conjunctive extension rows if asked).
  result.shared_cost = shared_cost_bound(app, result.bounds);
  if (options.joint_bounds) {
    result.joint = joint_lower_bounds(app, result.windows);
  }
  if (platform != nullptr) {
    result.dedicated_cost =
        options.joint_bounds
            ? dedicated_cost_bound_joint(app, *platform, result.bounds, result.joint)
            : dedicated_cost_bound(app, *platform, result.bounds);
  }

  // Certificate layer: restate the result as checkable facts, and (under
  // check_certificates) have the independent checker re-judge them before
  // the result is allowed out.
  if (options.emit_certificates || options.check_certificates) {
    result.certificate = build_certificate(app, options, platform, result);
    if (options.check_certificates) {
      CheckReport report = check_certificate(*result.certificate, app, platform);
      if (!report.valid) throw CertificateCheckError(std::move(report));
      result.certificate_check = std::move(report);
    }
  }
  return result;
}

namespace {

std::string task_names(const Application& app, const std::vector<TaskId>& ids) {
  std::vector<std::string> names;
  names.reserve(ids.size());
  for (TaskId t : ids) names.push_back(app.task(t).name);
  return brace_set(names);
}

}  // namespace

std::string format_windows_table(const Application& app, const TaskWindows& windows) {
  Table table({"Task i", "E_i", "M_i", "L_i", "G_i"});
  for (TaskId i = 0; i < app.num_tasks(); ++i) {
    table.add(app.task(i).name, windows.est[i], task_names(app, windows.merged_pred[i]),
              windows.lct[i], task_names(app, windows.merged_succ[i]));
  }
  return table.to_string();
}

std::string format_partitions(const Application& app,
                              const std::vector<ResourcePartition>& partitions) {
  std::ostringstream out;
  for (const ResourcePartition& p : partitions) {
    out << "ST_" << app.catalog().name(p.resource) << " = ";
    for (std::size_t k = 0; k < p.blocks.size(); ++k) {
      if (k) out << " < ";
      std::vector<std::string> names;
      for (TaskId t : p.blocks[k].tasks) names.push_back(app.task(t).name);
      out << "{" << join(names, ",") << "}";
    }
    if (p.blocks.empty()) out << "{}";
    out << "\n";
  }
  return out.str();
}

std::string format_bounds(const Application& app, const std::vector<ResourceBound>& bounds) {
  Table table({"Resource r", "LB_r", "peak density", "witness [t1,t2]", "Theta"});
  for (const ResourceBound& b : bounds) {
    std::ostringstream density;
    density << b.peak_density.num << "/" << b.peak_density.den;
    std::ostringstream witness;
    witness << "[" << b.witness_t1 << "," << b.witness_t2 << "]";
    table.add(app.catalog().name(b.resource), b.bound, density.str(), witness.str(),
              b.witness_demand);
  }
  return table.to_string();
}

}  // namespace rtlb
