// Step 4: lower bounds on system cost (Section 7).
//
// Shared model: cost >= sum over r of CostR(r) * LB_r (Eq. 7.1).
// Dedicated model: minimize sum CostN(n) * x_n subject to the resource
// covering constraints sum_n x_n * gamma_nr >= LB_r and the hosting
// constraints sum_{n in eta_i} x_n >= 1, solved exactly as an ILP; the LP
// relaxation is also reported (a weaker but still valid bound, as the paper
// notes).
#pragma once

#include <optional>
#include <vector>

#include "src/core/lower_bound.hpp"
#include "src/lp/ilp.hpp"
#include "src/model/application.hpp"
#include "src/model/platform.hpp"

namespace rtlb {

struct SharedCostBound {
  Cost total = 0;
  /// (resource, LB_r, CostR(r)) terms of Eq. 7.1, in resource_set() order.
  struct Term {
    ResourceId resource;
    std::int64_t units;
    Cost unit_cost;
  };
  std::vector<Term> terms;
};

SharedCostBound shared_cost_bound(const Application& app,
                                  const std::vector<ResourceBound>& bounds);

struct DedicatedCostBound {
  /// False if no assembly of node types can host every task (some eta_i is
  /// empty or the covering ILP is infeasible).
  bool feasible = false;
  /// Exact ILP optimum of the Section-7 program.
  Cost total = 0;
  /// x_n per node type, the ILP minimizer.
  std::vector<std::int64_t> node_counts;
  /// LP-relaxation value (weaker valid bound).
  double relaxation = 0;
  /// Branch-and-bound nodes used.
  std::int64_t ilp_nodes = 0;
};

DedicatedCostBound dedicated_cost_bound(const Application& app,
                                        const DedicatedPlatform& platform,
                                        const std::vector<ResourceBound>& bounds);

}  // namespace rtlb
