#include "src/core/sensitivity.hpp"

#include <algorithm>

#include "src/common/thread_pool.hpp"
#include "src/core/session.hpp"

namespace rtlb {

namespace {

/// Scale every deadline window of `session` to `factor` times the BASE
/// window (never the previous point's, so factors may come in any order).
/// Windows too small to hold their task are clipped up to C_i -- validate()
/// would refuse them otherwise -- and the clip is reported back HERE, by the
/// same code that rewrites the deadline, so the flag cannot drift from the
/// rewrite (the old implementation re-derived the condition from the
/// original app after the fact).
bool apply_laxity(AnalysisSession& session, const Application& base, double factor) {
  bool clipped = false;
  for (TaskId i = 0; i < base.num_tasks(); ++i) {
    const Task& t = base.task(i);
    Time window = scale_time(factor, t.deadline - t.release);
    if (window < t.comp) {
      window = t.comp;
      clipped = true;
    }
    session.set_deadline(i, t.release + window);
  }
  return clipped;
}

/// Scale every message of `session` to `factor` times the BASE size.
void apply_messages(AnalysisSession& session, const Application& base, double factor) {
  for (TaskId i = 0; i < base.num_tasks(); ++i) {
    for (TaskId j : base.successors(i)) {
      session.set_message(i, j, scale_time(factor, base.message(i, j)));
    }
  }
}

/// Both sweeps: run every factor through a memoized session. With
/// options.lower_bound.num_threads requesting more than one worker the
/// factor list is split into contiguous chunks, one session (and one
/// serial inner engine) per chunk -- points are independent, so warm reuse
/// within a chunk plus chunk-level parallelism beats parallelizing each
/// point's scan. Each point writes its own slot, so the output is identical
/// at any thread count.
std::vector<SweepPoint> run_sweep(const Application& app, const std::vector<double>& factors,
                                  const AnalysisOptions& options,
                                  const DedicatedPlatform* platform, bool laxity) {
  for (double factor : factors) {
    if (laxity) {
      RTLB_CHECK(factor > 0, "laxity factor must be positive");
    } else {
      RTLB_CHECK(factor >= 0, "message factor must be non-negative");
    }
  }

  std::vector<SweepPoint> out(factors.size());
  AnalysisOptions point_options = options;
  point_options.lower_bound.num_threads = 1;

  auto run_chunk = [&](std::size_t begin, std::size_t end) {
    AnalysisSession session(app, point_options, platform);
    for (std::size_t k = begin; k < end; ++k) {
      const double factor = factors[k];
      bool clipped = false;
      if (laxity) {
        clipped = apply_laxity(session, app, factor);
      } else {
        apply_messages(session, app, factor);
      }
      const AnalysisResult& res = session.analyze();
      SweepPoint point;
      point.factor = factor;
      point.infeasible = res.infeasible(session.app()) || clipped;
      for (const ResourceBound& b : res.bounds) point.bounds.push_back(b.bound);
      point.shared_cost = res.shared_cost.total;
      out[k] = std::move(point);
    }
  };

  const unsigned workers = ThreadPool::resolve_threads(options.lower_bound.num_threads);
  if (workers <= 1 || factors.size() <= 1) {
    run_chunk(0, factors.size());
  } else {
    const std::size_t chunks = std::min<std::size_t>(workers, factors.size());
    ThreadPool pool(static_cast<unsigned>(chunks));
    pool.parallel_for(chunks, [&](std::size_t c) {
      run_chunk(c * factors.size() / chunks, (c + 1) * factors.size() / chunks);
    });
  }
  return out;
}

}  // namespace

std::vector<SweepPoint> deadline_laxity_sweep(const Application& app,
                                              const std::vector<double>& factors,
                                              const AnalysisOptions& options,
                                              const DedicatedPlatform* platform) {
  return run_sweep(app, factors, options, platform, /*laxity=*/true);
}

std::vector<SweepPoint> message_scale_sweep(const Application& app,
                                            const std::vector<double>& factors,
                                            const AnalysisOptions& options,
                                            const DedicatedPlatform* platform) {
  return run_sweep(app, factors, options, platform, /*laxity=*/false);
}

std::vector<MenuVariantResult> menu_variants(
    const Application& app,
    const std::vector<std::pair<std::string, DedicatedPlatform>>& menus,
    const AnalysisOptions& options) {
  std::vector<MenuVariantResult> out;
  if (menus.empty()) return out;
  AnalysisOptions opts = options;
  opts.model = SystemModel::Dedicated;
  // One session across the whole menu list: variants whose merge behaviour
  // coincides share windows, partitions, and every block scan; only the
  // (cheap) covering ILP is re-solved per variant.
  AnalysisSession session(app, opts, &menus.front().second);
  for (const auto& [name, platform] : menus) {
    session.set_platform(&platform);
    MenuVariantResult result;
    result.name = name;
    const AnalysisResult& res = session.analyze();
    if (res.dedicated_cost && res.dedicated_cost->feasible) {
      result.feasible = true;
      result.dedicated_cost = res.dedicated_cost->total;
      result.relaxation = res.dedicated_cost->relaxation;
    }
    out.push_back(std::move(result));
  }
  return out;
}

}  // namespace rtlb
