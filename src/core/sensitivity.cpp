#include "src/core/sensitivity.hpp"

#include <cmath>
#include <functional>

namespace rtlb {

namespace {

/// Copy an application (same catalog) applying a per-task/per-edge rewrite.
Application clone_with(const Application& app,
                       const std::function<void(Task&)>& task_rewrite,
                       const std::function<Time(Time)>& msg_rewrite) {
  Application out(app.catalog());
  for (TaskId i = 0; i < app.num_tasks(); ++i) {
    Task t = app.task(i);
    task_rewrite(t);
    out.add_task(std::move(t));
  }
  for (TaskId i = 0; i < app.num_tasks(); ++i) {
    for (TaskId j : app.successors(i)) {
      out.add_edge(i, j, msg_rewrite(app.message(i, j)));
    }
  }
  return out;
}

SweepPoint analyze_point(const Application& scaled, double factor,
                         const AnalysisOptions& options, const DedicatedPlatform* platform) {
  SweepPoint point;
  point.factor = factor;
  const AnalysisResult res = analyze(scaled, options, platform);
  point.infeasible = res.infeasible(scaled);
  for (const ResourceBound& b : res.bounds) point.bounds.push_back(b.bound);
  point.shared_cost = res.shared_cost.total;
  return point;
}

}  // namespace

std::vector<SweepPoint> deadline_laxity_sweep(const Application& app,
                                              const std::vector<double>& factors,
                                              const AnalysisOptions& options,
                                              const DedicatedPlatform* platform) {
  std::vector<SweepPoint> out;
  for (double factor : factors) {
    RTLB_CHECK(factor > 0, "laxity factor must be positive");
    Application scaled = clone_with(
        app,
        [factor](Task& t) {
          const Time window = t.deadline - t.release;
          Time scaled_window = static_cast<Time>(
              std::ceil(factor * static_cast<double>(window)));
          // Keep the window large enough to hold the task so validate()
          // accepts it; the per-point `infeasible` flag still reports when
          // the ORIGINAL scaling would have been impossible.
          const bool clipped = scaled_window < t.comp;
          if (clipped) scaled_window = t.comp;
          t.deadline = t.release + scaled_window;
        },
        [](Time m) { return m; });
    SweepPoint point = analyze_point(scaled, factor, options, platform);
    // Flag windows the scaling had to clip as infeasible-at-this-factor.
    for (TaskId i = 0; i < app.num_tasks(); ++i) {
      const Time window = app.task(i).deadline - app.task(i).release;
      if (static_cast<Time>(std::ceil(factor * static_cast<double>(window))) <
          app.task(i).comp) {
        point.infeasible = true;
      }
    }
    out.push_back(std::move(point));
  }
  return out;
}

std::vector<SweepPoint> message_scale_sweep(const Application& app,
                                            const std::vector<double>& factors,
                                            const AnalysisOptions& options,
                                            const DedicatedPlatform* platform) {
  std::vector<SweepPoint> out;
  for (double factor : factors) {
    RTLB_CHECK(factor >= 0, "message factor must be non-negative");
    Application scaled = clone_with(
        app, [](Task&) {},
        [factor](Time m) {
          return static_cast<Time>(std::llround(factor * static_cast<double>(m)));
        });
    out.push_back(analyze_point(scaled, factor, options, platform));
  }
  return out;
}

std::vector<MenuVariantResult> menu_variants(
    const Application& app,
    const std::vector<std::pair<std::string, DedicatedPlatform>>& menus) {
  std::vector<MenuVariantResult> out;
  for (const auto& [name, platform] : menus) {
    MenuVariantResult result;
    result.name = name;
    AnalysisOptions options;
    options.model = SystemModel::Dedicated;
    const AnalysisResult res = analyze(app, options, &platform);
    if (res.dedicated_cost && res.dedicated_cost->feasible) {
      result.feasible = true;
      result.dedicated_cost = res.dedicated_cost->total;
      result.relaxation = res.dedicated_cost->relaxation;
    }
    out.push_back(std::move(result));
  }
  return out;
}

}  // namespace rtlb
