// The original EST/LCT implementation, preserved verbatim as the reference
// for the flattened engine in est_lct.cpp (plus the exponential subset-
// enumeration checks of Equations 4.1/4.5). Test and verification use only:
// compute_windows() cross-checks against compute_windows_reference() when
// the RTLB_WINDOWS_REFERENCE flag (CMake option or environment variable) is
// set, and tests/test_windows.cpp compares the two on randomized instances.
//
// This file deliberately keeps the historical per-merge behaviour -- a fresh
// sort and a fresh std::vector per lst/ect evaluation, a quadratic rescan of
// the remaining candidates' lms/emr terms -- so the reference stays an
// independent transcription of Figures 2 and 3 rather than a copy of the
// optimized engine's structure.
#include "src/core/est_lct.hpp"

#include <algorithm>

namespace rtlb {

namespace {

/// lms_j for a fixed task i: latest time i may finish and still get its
/// message to an off-node successor j in time (Sec 4.1).
Time latest_msg_send(const Application& app, const std::vector<Time>& lct, TaskId i, TaskId j) {
  return lct[j] - app.task(j).comp - app.message(i, j);
}

/// emr_j for a fixed task i: earliest time an off-node predecessor j's
/// message can reach i (Sec 4.2).
Time earliest_msg_recv(const Application& app, const std::vector<Time>& est, TaskId j, TaskId i) {
  return est[j] + app.task(j).comp + app.message(j, i);
}

/// Evaluate Equation 4.1 for a given merge set A (any subset of Succ_i with
/// A u {i} mergeable). `others` must be Succ_i - A.
Time lct_for_merge_set(const Application& app, const std::vector<Time>& lct, TaskId i,
                       std::span<const TaskId> merged, std::span<const TaskId> others) {
  Time L = app.task(i).deadline;
  for (TaskId j : others) L = std::min(L, latest_msg_send(app, lct, i, j));
  if (!merged.empty()) L = std::min(L, latest_start_of_set(app, lct, merged));
  return L;
}

/// Evaluate Equation 4.5 for a given merge set A of predecessors.
Time est_for_merge_set(const Application& app, const std::vector<Time>& est, TaskId i,
                       std::span<const TaskId> merged, std::span<const TaskId> others) {
  Time E = app.task(i).release;
  for (TaskId j : others) E = std::max(E, earliest_msg_recv(app, est, j, i));
  if (!merged.empty()) E = std::max(E, earliest_completion_of_set(app, est, merged));
  return E;
}

/// Figure 2 for one task (successor LCTs already known).
void lct_one_task(const Application& app, const MergeOracle& oracle, TaskId i,
                  std::vector<Time>& lct, std::vector<std::vector<TaskId>>& merged_succ) {
  const auto& succ = app.successors(i);
  if (succ.empty()) {  // step 1
    lct[i] = app.task(i).deadline;
    return;
  }

  // MS_i: successors individually mergeable with i, in increasing lms order.
  std::vector<TaskId> ms;
  Time l0 = app.task(i).deadline;  // step 2
  for (TaskId j : succ) {
    const TaskId pair[] = {i, j};
    if (oracle.mergeable(app, pair)) {
      ms.push_back(j);
    } else {
      l0 = std::min(l0, latest_msg_send(app, lct, i, j));
    }
  }
  std::sort(ms.begin(), ms.end(), [&](TaskId a, TaskId b) {
    const Time la = latest_msg_send(app, lct, i, a);
    const Time lb = latest_msg_send(app, lct, i, b);
    if (la != lb) return la < lb;
    return a < b;
  });

  std::vector<TaskId> group;           // tasks merged so far (incl. tie merges)
  std::vector<TaskId> group_with_i{i}; // scratch: G u {T} u {i} for the oracle
  // L_i^0 = lct_i(empty set): with nothing merged, i must message EVERY
  // successor, mergeable or not. (Figure 2's step 2 prints the minimum over
  // Succ_i - MS_i only, but Section 8's own walkthrough of task 9 -- "if no
  // tasks are merged with task 9, then its LCT will be 18", which is
  // lms_14 -- confirms the mergeable successors' lms terms belong here.)
  Time best = l0;                      // incumbent L
  if (!ms.empty()) best = std::min(best, latest_msg_send(app, lct, i, ms.front()));
  // Tie correction to Figure 2's step (d): stopping on L^k == L^{k-1} is NOT
  // safe -- when several candidates share the binding lms, merging the first
  // leaves L unchanged (the twin still caps it) and only merging the whole
  // tie group improves L. A strict DROP, by contrast, can only come from
  // lst(G), which is non-increasing in G, so no later merge can recover:
  // stop there. Without this correction the returned value can overshoot
  // the true maximum and the window -- hence the final bound -- would be
  // unsound (regression: EdgeCases.WideFanInStressesTheMergeLoop).
  std::size_t improved_prefix = 0;  // reported G_i: last strictly-improving prefix
  for (std::size_t k = 0; k < ms.size(); ++k) {  // step 3
    const TaskId t = ms[k];  // (a): least lms among MS - G
    group_with_i.push_back(t);
    if (!oracle.mergeable(app, group_with_i)) break;  // (b)
    group.push_back(t);
    // (c): L_i^k over the candidate group.
    Time lk = std::min(l0, latest_start_of_set(app, lct, group));
    for (std::size_t m = k + 1; m < ms.size(); ++m) {
      lk = std::min(lk, latest_msg_send(app, lct, i, ms[m]));
    }
    if (lk < best) break;  // (d) corrected: strict drop is final
    if (lk > best) {
      best = lk;
      improved_prefix = group.size();
    }
  }
  lct[i] = best;  // step 4
  group.resize(improved_prefix);
  merged_succ[i] = std::move(group);
}

/// Figure 3 for one task (predecessor ESTs already known).
void est_one_task(const Application& app, const MergeOracle& oracle, TaskId i,
                  std::vector<Time>& est, std::vector<std::vector<TaskId>>& merged_pred) {
  const auto& pred = app.predecessors(i);
  if (pred.empty()) {  // step 1
    est[i] = app.task(i).release;
    return;
  }

  // MP_i: predecessors individually mergeable with i, in decreasing emr order.
  std::vector<TaskId> mp;
  Time e0 = app.task(i).release;  // step 2
  for (TaskId j : pred) {
    const TaskId pair[] = {i, j};
    if (oracle.mergeable(app, pair)) {
      mp.push_back(j);
    } else {
      e0 = std::max(e0, earliest_msg_recv(app, est, j, i));
    }
  }
  std::sort(mp.begin(), mp.end(), [&](TaskId a, TaskId b) {
    const Time ea = earliest_msg_recv(app, est, a, i);
    const Time eb = earliest_msg_recv(app, est, b, i);
    if (ea != eb) return ea > eb;
    return a < b;
  });

  std::vector<TaskId> group;
  std::vector<TaskId> group_with_i{i};
  // E_i^0 = est_i(empty set): symmetric to the LCT case, the mergeable
  // predecessors' emr terms count until they are actually merged.
  Time best = e0;
  if (!mp.empty()) best = std::max(best, earliest_msg_recv(app, est, mp.front(), i));
  // Same tie correction as the LCT side: continue through E^k == best (a
  // tied twin may still cap E until the whole tie group is merged), stop
  // only on a strict rise, which can only come from the monotone ect term.
  std::size_t improved_prefix = 0;
  for (std::size_t k = 0; k < mp.size(); ++k) {  // step 3
    const TaskId t = mp[k];  // (a): greatest emr among MP - M
    group_with_i.push_back(t);
    if (!oracle.mergeable(app, group_with_i)) break;  // (b)
    group.push_back(t);
    Time ek = std::max(e0, earliest_completion_of_set(app, est, group));  // (c)
    for (std::size_t m = k + 1; m < mp.size(); ++m) {
      ek = std::max(ek, earliest_msg_recv(app, est, mp[m], i));
    }
    if (ek > best) break;  // (d) corrected: strict rise is final
    if (ek < best) {
      best = ek;
      improved_prefix = group.size();
    }
  }
  est[i] = best;  // step 4
  group.resize(improved_prefix);
  merged_pred[i] = std::move(group);
}

}  // namespace

TaskWindows compute_windows_reference(const Application& app, const MergeOracle& oracle) {
  const std::size_t n = app.num_tasks();
  TaskWindows w;
  w.est.assign(n, 0);
  w.lct.assign(n, 0);
  w.merged_pred.resize(n);
  w.merged_succ.resize(n);

  auto topo = app.dag().topological_order();
  if (!topo) throw ModelError("compute_windows: precedence graph has a cycle");

  for (TaskId i : *topo) est_one_task(app, oracle, i, w.est, w.merged_pred);
  for (auto it = topo->rbegin(); it != topo->rend(); ++it) {
    lct_one_task(app, oracle, *it, w.lct, w.merged_succ);
  }
  return w;
}

Time lct_exhaustive(const Application& app, const MergeOracle& oracle,
                    const std::vector<Time>& lct, TaskId i) {
  const auto& succ = app.successors(i);
  if (succ.empty()) return app.task(i).deadline;
  RTLB_CHECK(succ.size() <= 20, "lct_exhaustive: fan-out too large");
  Time best = kTimeMin;
  for (std::uint32_t mask = 0; mask < (1u << succ.size()); ++mask) {
    std::vector<TaskId> merged{i};  // include i for the mergeability test
    std::vector<TaskId> others;
    for (std::size_t b = 0; b < succ.size(); ++b) {
      if (mask & (1u << b)) merged.push_back(succ[b]);
      else others.push_back(succ[b]);
    }
    if (!oracle.mergeable(app, merged)) continue;
    merged.erase(merged.begin());  // drop i: Eq 4.1's A excludes it
    best = std::max(best, lct_for_merge_set(app, lct, i, merged, others));
  }
  return best;
}

Time est_exhaustive(const Application& app, const MergeOracle& oracle,
                    const std::vector<Time>& est, TaskId i) {
  const auto& pred = app.predecessors(i);
  if (pred.empty()) return app.task(i).release;
  RTLB_CHECK(pred.size() <= 20, "est_exhaustive: fan-in too large");
  Time best = kTimeMax;
  for (std::uint32_t mask = 0; mask < (1u << pred.size()); ++mask) {
    std::vector<TaskId> merged{i};
    std::vector<TaskId> others;
    for (std::size_t b = 0; b < pred.size(); ++b) {
      if (mask & (1u << b)) merged.push_back(pred[b]);
      else others.push_back(pred[b]);
    }
    if (!oracle.mergeable(app, merged)) continue;
    merged.erase(merged.begin());
    best = std::min(best, est_for_merge_set(app, est, i, merged, others));
  }
  return best;
}

}  // namespace rtlb
