// EXTENSION (not in the paper): conjunctive lower bounds.
//
// Section 6 bounds each processor type / resource in isolation. But a task
// that needs BOTH r and s occupies, for its whole execution, something that
// provides both -- in the dedicated model, a node carrying both (and a node
// runs one task at a time). Applying the same interval-density analysis to
// ST_{r AND s} = { i : task i uses r and s } yields LB_{r,s}, a lower bound
// on the number of PAIR-CAPABLE NODES, which adds covering rows
//
//     sum over { n : gamma_nr > 0 and gamma_ns > 0 } x_n  >=  LB_{r,s}
//
// to the Section-7 program. These rows are not implied by the per-resource
// rows whenever a pair's supply is split across node types (e.g. menu
// {P,a}, {P,b}, {P,a,b}: two concurrent {a,b}-tasks force two {P,a,b}
// nodes, but the per-resource rows are satisfied by one of each type).
// The proof of validity is the paper's own Theorems 3-5 applied verbatim to
// the restricted task set.
#pragma once

#include <vector>

#include "src/core/cost_bound.hpp"
#include "src/core/est_lct.hpp"
#include "src/core/lower_bound.hpp"
#include "src/model/application.hpp"

namespace rtlb {

struct JointBound {
  /// The conjunction (a < b); either may be a processor type.
  ResourceId a = kInvalidResource;
  ResourceId b = kInvalidResource;
  /// Minimum number of co-located (a AND b) slots any feasible system needs.
  std::int64_t bound = 0;
  /// Witness interval, as in ResourceBound.
  Time witness_t1 = 0;
  Time witness_t2 = 0;
};

/// Compute LB_{a,b} for every pair of RES members some task uses together.
/// Pairs whose bound does not exceed 0 are omitted.
std::vector<JointBound> joint_lower_bounds(const Application& app, const TaskWindows& windows);

/// The Section-7 dedicated cost bound with the conjunctive rows added.
/// Always >= dedicated_cost_bound's result (more constraints can only raise
/// the optimum); equal when the pair rows are implied.
DedicatedCostBound dedicated_cost_bound_joint(const Application& app,
                                              const DedicatedPlatform& platform,
                                              const std::vector<ResourceBound>& bounds,
                                              const std::vector<JointBound>& joint);

}  // namespace rtlb
