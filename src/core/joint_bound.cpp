#include "src/core/joint_bound.hpp"

#include <algorithm>
#include <cmath>

#include "src/lp/ilp.hpp"

namespace rtlb {

std::vector<JointBound> joint_lower_bounds(const Application& app, const TaskWindows& windows) {
  std::vector<JointBound> out;
  const std::vector<ResourceId> res = app.resource_set();
  for (std::size_t x = 0; x < res.size(); ++x) {
    for (std::size_t y = x + 1; y < res.size(); ++y) {
      const ResourceId a = res[x];
      const ResourceId b = res[y];
      std::vector<TaskId> both;
      for (TaskId i = 0; i < app.num_tasks(); ++i) {
        if (app.task(i).uses(a) && app.task(i).uses(b)) both.push_back(i);
      }
      if (both.empty()) continue;
      const ResourceBound rb = density_bound_over(app, windows, std::move(both));
      if (rb.bound <= 0) continue;
      JointBound jb;
      jb.a = a;
      jb.b = b;
      jb.bound = rb.bound;
      jb.witness_t1 = rb.witness_t1;
      jb.witness_t2 = rb.witness_t2;
      out.push_back(jb);
    }
  }
  return out;
}

DedicatedCostBound dedicated_cost_bound_joint(const Application& app,
                                              const DedicatedPlatform& platform,
                                              const std::vector<ResourceBound>& bounds,
                                              const std::vector<JointBound>& joint) {
  DedicatedCostBound out;
  const std::size_t num_types = platform.num_node_types();
  if (num_types == 0) return out;

  LinearProgram lp;
  lp.sense = LinearProgram::Sense::Minimize;
  lp.objective.resize(num_types);
  for (std::size_t n = 0; n < num_types; ++n) {
    lp.objective[n] = static_cast<double>(platform.node_type(n).cost);
  }

  // Per-resource covering rows (identical to dedicated_cost_bound).
  for (const ResourceBound& b : bounds) {
    if (b.bound <= 0) continue;
    std::vector<double> row(num_types, 0.0);
    bool any = false;
    for (std::size_t n = 0; n < num_types; ++n) {
      const int units = platform.node_type(n).units_of(b.resource);
      if (units > 0) {
        row[n] = units;
        any = true;
      }
    }
    if (!any) return out;
    lp.add_constraint(std::move(row), LinearProgram::Relation::GreaterEq,
                      static_cast<double>(b.bound));
  }

  // Conjunctive rows: a node serves a pair iff it carries both members, and
  // its single processor limits it to one pair-task at a time.
  for (const JointBound& jb : joint) {
    std::vector<double> row(num_types, 0.0);
    bool any = false;
    for (std::size_t n = 0; n < num_types; ++n) {
      const NodeType& node = platform.node_type(n);
      if (node.units_of(jb.a) > 0 && node.units_of(jb.b) > 0) {
        row[n] = 1.0;
        any = true;
      }
    }
    if (!any) return out;  // some pair of needs no node type can serve
    lp.add_constraint(std::move(row), LinearProgram::Relation::GreaterEq,
                      static_cast<double>(jb.bound));
  }

  // Hosting rows, deduplicated (as in dedicated_cost_bound).
  std::vector<std::vector<std::size_t>> seen;
  for (TaskId i = 0; i < app.num_tasks(); ++i) {
    std::vector<std::size_t> eta = platform.hosts_for(app.task(i));
    if (eta.empty()) return out;
    if (std::find(seen.begin(), seen.end(), eta) != seen.end()) continue;
    std::vector<double> row(num_types, 0.0);
    for (std::size_t n : eta) row[n] = 1.0;
    lp.add_constraint(std::move(row), LinearProgram::Relation::GreaterEq, 1.0);
    seen.push_back(std::move(eta));
  }

  IlpResult ilp = solve_ilp(lp);
  if (ilp.status != IlpResult::Status::Optimal) return out;
  out.feasible = true;
  out.total = static_cast<Cost>(std::llround(ilp.objective));
  out.node_counts = std::move(ilp.x);
  out.relaxation = ilp.relaxation_objective;
  out.ilp_nodes = ilp.nodes_explored;
  return out;
}

}  // namespace rtlb
